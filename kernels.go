package pochoir

import (
	"pochoir/internal/core"
	"pochoir/internal/zoid"
)

// Kernel is the dimension-generic point kernel of the Phase-1 path
// (Pochoir_Kernel_dimD): it is invoked once per space-time point with the
// kernel time coordinate t and the true spatial coordinates x, and updates
// the registered arrays through their checked accessors. The x slice is
// reused between invocations and must not be retained.
type Kernel func(t int, x []int)

// K1 adapts a 1D point kernel to the generic Kernel type.
func K1(f func(t, x int)) Kernel {
	return func(t int, x []int) { f(t, x[0]) }
}

// K2 adapts a 2D point kernel to the generic Kernel type.
func K2(f func(t, x, y int)) Kernel {
	return func(t int, x []int) { f(t, x[0], x[1]) }
}

// K3 adapts a 3D point kernel to the generic Kernel type.
func K3(f func(t, x, y, z int)) Kernel {
	return func(t int, x []int) { f(t, x[0], x[1], x[2]) }
}

// K4 adapts a 4D point kernel to the generic Kernel type.
func K4(f func(t, x, y, z, w int)) Kernel {
	return func(t int, x []int) { f(t, x[0], x[1], x[2], x[3]) }
}

func modIdx(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

// pointExecutor builds the generic base case: walk every space-time point
// of the zoid in time order (Fig. 2, lines 20–28), reduce virtual
// coordinates to true coordinates modulo the grid extents (§4, unified
// boundary handling), and invoke the point kernel. Off-domain neighbor
// accesses inside the kernel are served by the arrays' boundary functions.
func (s *Stencil[T]) pointExecutor(kern Kernel) core.BaseFunc {
	return s.executor(kern, false)
}

// checkedPointExecutor additionally establishes the home point on every
// registered array before each kernel application so accesses can be
// verified against the declared shape (the Pochoir Guarantee).
func (s *Stencil[T]) checkedPointExecutor(kern Kernel) core.BaseFunc {
	return s.executor(kern, true)
}

func (s *Stencil[T]) executor(kern Kernel, checked bool) core.BaseFunc {
	d := s.shape.NDims
	homeDT := s.shape.HomeDT()
	var sizes [MaxDims]int
	copy(sizes[:], s.sizes)
	arrays := s.arrays
	return func(z zoid.Zoid) {
		var lo, hi, vx, x [MaxDims]int
		for i := 0; i < d; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		xs := x[:d]
		for t := z.T0; t < z.T1; t++ {
			kt := t - homeDT // kernel time argument: kernel writes kt+homeDT == t
			empty := false
			for i := 0; i < d; i++ {
				if lo[i] >= hi[i] {
					empty = true
					break
				}
			}
			if !empty {
				for i := 0; i < d; i++ {
					vx[i] = lo[i]
					x[i] = modIdx(vx[i], sizes[i])
				}
				for {
					if checked {
						for _, a := range arrays {
							a.SetHome(kt, xs)
						}
					}
					kern(kt, xs)
					// Odometer increment, maintaining both virtual
					// and true coordinates.
					i := d - 1
					for ; i >= 0; i-- {
						vx[i]++
						if vx[i] < hi[i] {
							x[i]++
							if x[i] == sizes[i] {
								x[i] = 0
							}
							break
						}
						vx[i] = lo[i]
						x[i] = modIdx(lo[i], sizes[i])
					}
					if i < 0 {
						break
					}
				}
			}
			for i := 0; i < d; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}
}
