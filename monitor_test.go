package pochoir_test

// Public-API coverage of the live monitor: the embedded server's endpoints,
// the Prometheus exposition's self-consistency across scrapes of a working
// stencil, and the ISSUE-4 acceptance property that the progress estimator's
// percent is monotone non-decreasing through a faulted-then-recovered
// supervised run and reaches exactly 100 at the end.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"pochoir"
	"pochoir/internal/faultpoint"
)

// scrape GETs a monitor URL and returns the body.
func scrape(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return body
}

// metricValue sums every sample of the named family in a Prometheus text
// exposition (one sample for an unlabeled metric, all label combinations for
// a labeled one). It fails the test if the family has no samples.
func metricValue(t *testing.T, expo []byte, name string) float64 {
	t.Helper()
	var sum float64
	found := false
	for _, line := range strings.Split(string(expo), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sample := line[:strings.IndexByte(line+" ", ' ')]
		if brace := strings.IndexByte(sample, '{'); brace >= 0 {
			sample = sample[:brace]
		}
		if sample != name {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("metric %s not found in exposition:\n%s", name, expo)
	}
	return sum
}

// TestMonitorLiveEndpoints drives the embedded monitor through the public
// API: every endpoint answers, the exposition validates and shows the
// decomposition counters advancing monotonically across scrapes, the point
// counter matches the exact steps x grid-volume work partition, and
// /progressz reports the finished run at 100%.
func TestMonitorLiveEndpoints(t *testing.T) {
	const X, Y, steps, seed = 64, 64, 8, 3
	reg := pochoir.NewMetrics()
	mon, err := pochoir.ServeMonitor("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	st, _, kern := heatStencil(t, pochoir.Options{Metrics: reg}, X, Y, seed)
	if err := st.Run(steps, kern); err != nil {
		t.Fatal(err)
	}

	expo1 := scrape(t, mon.URL()+"/metrics")
	if err := pochoir.CheckMetricsExposition(expo1); err != nil {
		t.Fatalf("first scrape invalid: %v\n%s", err, expo1)
	}
	zoids1 := metricValue(t, expo1, "pochoir_zoids_total")
	points1 := metricValue(t, expo1, "pochoir_base_points_total")
	if zoids1 <= 0 {
		t.Fatalf("pochoir_zoids_total = %v after a run, want > 0", zoids1)
	}
	if want := float64(steps * X * Y); points1 != want {
		t.Fatalf("pochoir_base_points_total = %v, want exactly %v", points1, want)
	}

	if err := st.Run(steps, kern); err != nil {
		t.Fatal(err)
	}
	expo2 := scrape(t, mon.URL()+"/metrics")
	if err := pochoir.CheckMetricsExposition(expo2); err != nil {
		t.Fatalf("second scrape invalid: %v", err)
	}
	zoids2 := metricValue(t, expo2, "pochoir_zoids_total")
	points2 := metricValue(t, expo2, "pochoir_base_points_total")
	if zoids2 <= zoids1 {
		t.Fatalf("zoid counter not increasing: %v then %v", zoids1, zoids2)
	}
	if want := float64(2 * steps * X * Y); points2 != want {
		t.Fatalf("pochoir_base_points_total = %v after two runs, want %v", points2, want)
	}
	if runs := metricValue(t, expo2, "pochoir_runs_started_total"); runs != 2 {
		t.Fatalf("pochoir_runs_started_total = %v, want 2", runs)
	}
	if active := metricValue(t, expo2, "pochoir_runs_active"); active != 0 {
		t.Fatalf("pochoir_runs_active = %v between runs, want 0", active)
	}

	var status struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(scrape(t, mon.URL()+"/statusz"), &status); err != nil {
		t.Fatalf("/statusz is not valid JSON: %v", err)
	}

	var progress struct {
		Runs []pochoir.ProgressStat `json:"runs"`
	}
	if err := json.Unmarshal(scrape(t, mon.URL()+"/progressz"), &progress); err != nil {
		t.Fatalf("/progressz is not valid JSON: %v", err)
	}
	if len(progress.Runs) != 2 {
		t.Fatalf("/progressz reports %d runs, want 2", len(progress.Runs))
	}
	for _, r := range progress.Runs {
		if r.Active || !r.OK || r.Percent != 100 {
			t.Fatalf("finished run not at 100%%: %+v", r)
		}
		if r.PointsDone != int64(steps*X*Y) || r.PointsTotal != int64(steps*X*Y) {
			t.Fatalf("run points %d/%d, want %d/%d", r.PointsDone, r.PointsTotal, steps*X*Y, steps*X*Y)
		}
	}

	var vars struct {
		Memstats json.RawMessage `json:"memstats"`
	}
	if err := json.Unmarshal(scrape(t, mon.URL()+"/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if len(vars.Memstats) == 0 {
		t.Fatal("/debug/vars missing memstats")
	}
	scrape(t, mon.URL()+"/debug/pprof/")
	if idx := scrape(t, mon.URL()+"/"); !strings.Contains(string(idx), "/metrics") {
		t.Fatalf("index page does not list endpoints:\n%s", idx)
	}
}

// TestSupervisedProgressMonotone is the progress-estimator acceptance test:
// a supervised run that panics mid-segment, restores its checkpoint, and
// recovers must publish a percent-complete series that never decreases —
// redone work counts again rather than rewinding the estimate — and must
// finish at exactly 100 with a bit-identical grid.
func TestSupervisedProgressMonotone(t *testing.T) {
	const X, Y, steps, seed = 48, 48, 12, 17
	opts := pochoir.Options{Grain: 1, TimeCutoff: 2, SpaceCutoff: []int{16, 16}}
	want := unfaultedHeat2D(t, opts, X, Y, steps, seed)

	reg := pochoir.NewMetrics()
	opts.Metrics = reg
	st, u, kern := heatStencil(t, opts, X, Y, seed)

	faultpoint.Arm(faultpoint.SiteBase, faultpoint.Spec{
		Kind: faultpoint.KindPanic, Depth: faultpoint.AnyDepth, After: 5, Times: 1,
	})
	defer faultpoint.DisarmAll()

	// Sample the supervised run's published percent while it executes.
	stop := make(chan struct{})
	samplesCh := make(chan []float64, 1)
	go func() {
		var samples []float64
		for {
			for _, p := range reg.ProgressSnapshot() {
				if p.Label == "supervised" {
					samples = append(samples, p.Percent)
					break
				}
			}
			select {
			case <-stop:
				samplesCh <- samples
				return
			default:
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	rep, err := st.RunSupervised(context.Background(), steps, kern,
		pochoir.SupervisePolicy{SegmentSteps: 4, BaseDelay: time.Microsecond})
	close(stop)
	samples := <-samplesCh
	if err != nil {
		t.Fatalf("supervised run did not recover: %v", err)
	}
	if rep.Retries < 1 || rep.Restores < 1 {
		t.Fatalf("fault not exercised: %d retries, %d restores", rep.Retries, rep.Restores)
	}
	mustMatch(t, u, steps, want)

	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Fatalf("percent decreased at sample %d: %v -> %v (series %v)",
				i, samples[i-1], samples[i], samples)
		}
	}

	var final *pochoir.ProgressStat
	for _, p := range reg.ProgressSnapshot() {
		if p.Label == "supervised" {
			final = &p
			break
		}
	}
	if final == nil {
		t.Fatal("no supervised run in progress snapshot")
	}
	if final.Active || !final.OK || final.Percent != 100 {
		t.Fatalf("recovered run should be finished at 100%%: %+v", *final)
	}
	if final.PointsDone < final.PointsTotal {
		t.Fatalf("points done %d < total %d after success", final.PointsDone, final.PointsTotal)
	}

	// The supervisor counters must surface on a scrape of the same registry.
	rr := httptest.NewRecorder()
	pochoir.MonitorHandler(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	expo := rr.Body.Bytes()
	if err := pochoir.CheckMetricsExposition(expo); err != nil {
		t.Fatalf("post-recovery scrape invalid: %v", err)
	}
	if v := metricValue(t, expo, "pochoir_sup_retries_total"); v < 1 {
		t.Fatalf("pochoir_sup_retries_total = %v, want >= 1", v)
	}
	if v := metricValue(t, expo, "pochoir_sup_restores_total"); v < 1 {
		t.Fatalf("pochoir_sup_restores_total = %v, want >= 1", v)
	}
	if v := metricValue(t, expo, "pochoir_sup_segments_total"); v < float64(steps)/4 {
		t.Fatalf("pochoir_sup_segments_total = %v, want >= %v", v, float64(steps)/4)
	}
	if v := metricValue(t, expo, "pochoir_progress_percent"); v != 100 {
		t.Fatalf("pochoir_progress_percent = %v after recovery, want 100", v)
	}
}
