package pochoir_test

// Supervised-resilience suite: the RunSupervised supervisor against the
// fault-injection harness — panics at both walker sites, watchdog
// deadlines, late-run faults, the engine degradation ladder, and shadow
// verification. Every recovered run must be bit-identical to an unfaulted
// one: each point update is a pure function of older time slots, so TRAP,
// STRAP, and LOOPS produce bitwise-equal floating-point results and a
// retried segment recomputes exactly what the faulted attempt would have.

import (
	"context"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"pochoir"
	"pochoir/internal/faultpoint"
)

// unfaultedHeat2D computes the bit-exact expected grid with a plain Run on
// a fresh stencil in the same regime.
func unfaultedHeat2D(t *testing.T, opts pochoir.Options, X, Y, steps int, seed int64) []float64 {
	t.Helper()
	faultpoint.DisarmAll()
	st, u, kern := heatStencil(t, opts, X, Y, seed)
	if err := st.Run(steps, kern); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, X*Y)
	if err := u.CopyOut(steps, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// mustMatch asserts got is bitwise-identical to want.
func mustMatch(t *testing.T, u *pochoir.Array[float64], steps int, want []float64) {
	t.Helper()
	got := make([]float64, len(want))
	if err := u.CopyOut(steps, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered run diverged at %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRunSupervisedFaultMatrix drives supervised runs through the injected
// failure modes of the hardened-execution harness and requires every one to
// complete bit-identically to an unfaulted run.
func TestRunSupervisedFaultMatrix(t *testing.T) {
	const X, Y, steps, seed = 48, 48, 12, 17
	scenarios := []struct {
		name string
		opts pochoir.Options
		pol  pochoir.SupervisePolicy
		arm  func()
	}{
		{
			// An engine panic in the decomposition: one cut-site fire, so
			// the first retry of the failed segment succeeds. The cutoffs
			// force real cuts inside each 4-step segment — under the
			// defaults a 48x48x4 segment is a single base case and the
			// cut site is never reached.
			name: "panic-at-cut-site",
			opts: pochoir.Options{Grain: 1, TimeCutoff: 2, SpaceCutoff: []int{16, 16}},
			pol:  pochoir.SupervisePolicy{SegmentSteps: 4, BaseDelay: time.Microsecond},
			arm: func() {
				faultpoint.Arm(faultpoint.SiteCut,
					faultpoint.Spec{Kind: faultpoint.KindPanic, Depth: faultpoint.AnyDepth, After: 2, Times: 1})
			},
		},
		{
			// A kernel-adjacent panic at a base case, mid-run. The small
			// cutoffs yield many base cases per segment so After:5 lands
			// inside a segment.
			name: "panic-at-base-site",
			opts: pochoir.Options{Grain: 1, TimeCutoff: 2, SpaceCutoff: []int{16, 16}},
			pol:  pochoir.SupervisePolicy{SegmentSteps: 4, BaseDelay: time.Microsecond},
			arm: func() {
				faultpoint.Arm(faultpoint.SiteBase,
					faultpoint.Spec{Kind: faultpoint.KindPanic, Depth: faultpoint.AnyDepth, After: 5, Times: 1})
			},
		},
		{
			// Stalled base cases blow the per-segment watchdog; the stall
			// budget (3 fires) is consumed on the first attempt, so the
			// retry runs at full speed.
			name: "segment-timeout",
			opts: pochoir.Options{Serial: true, TimeCutoff: 1, SpaceCutoff: []int{16, 16}},
			pol: pochoir.SupervisePolicy{
				SegmentSteps:   4,
				SegmentTimeout: 50 * time.Millisecond,
				BaseDelay:      time.Microsecond,
				MaxAttempts:    5,
			},
			arm: func() {
				faultpoint.Arm(faultpoint.SiteBase,
					faultpoint.Spec{Kind: faultpoint.KindSleep, Depth: faultpoint.AnyDepth,
						Sleep: 20 * time.Millisecond, Times: 3})
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			defer faultpoint.DisarmAll()
			want := unfaultedHeat2D(t, sc.opts, X, Y, steps, seed)
			st, u, kern := heatStencil(t, sc.opts, X, Y, seed)
			sc.arm()
			rep, err := st.RunSupervised(context.Background(), steps, kern, sc.pol)
			faultpoint.DisarmAll()
			if err != nil {
				t.Fatalf("supervised run failed: %v (report %+v)", err, rep)
			}
			if rep.Retries < 1 {
				t.Fatalf("fault did not trigger a retry: %+v", rep)
			}
			if rep.StepsDone != steps || st.StepsRun() != steps {
				t.Fatalf("StepsDone = %d, want %d", rep.StepsDone, steps)
			}
			mustMatch(t, u, steps, want)
		})
	}
}

// TestRunSupervisedFaultAtEndOfRun is the acceptance scenario: a kernel
// panic beyond 90% progress costs one segment retry, not the run.
func TestRunSupervisedFaultAtEndOfRun(t *testing.T) {
	const X, Y, steps, seed = 48, 48, 20, 23
	opts := pochoir.Options{Grain: 1}
	want := unfaultedHeat2D(t, opts, X, Y, steps, seed)

	st, u, _ := heatStencil(t, opts, X, Y, seed)
	var tripped atomic.Bool
	kern := pochoir.K2(func(tt, x, y int) {
		if tt == steps-1 && tripped.CompareAndSwap(false, true) {
			panic("blown gasket at 95% progress")
		}
		c := u.Get(tt, x, y)
		u.Set(tt+1, c+
			cx*(u.Get(tt, x+1, y)-2*c+u.Get(tt, x-1, y))+
			cy*(u.Get(tt, x, y+1)-2*c+u.Get(tt, x, y-1)), x, y)
	})
	rep, err := st.RunSupervised(context.Background(), steps, kern, pochoir.SupervisePolicy{
		SegmentSteps: 2, // 10 segments; the fault lands in the last one
		BaseDelay:    time.Microsecond,
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if len(rep.Segments) != 10 || rep.Retries != 1 {
		t.Fatalf("segments = %d, retries = %d, want 10 and 1", len(rep.Segments), rep.Retries)
	}
	for i, seg := range rep.Segments[:9] {
		if seg.Attempts != 1 {
			t.Fatalf("segment %d re-ran (%d attempts); only the last may retry", i, seg.Attempts)
		}
	}
	if last := rep.Segments[9]; last.Attempts != 2 || len(last.Failures) != 1 {
		t.Fatalf("last segment = %+v, want exactly one failed attempt", last)
	}
	mustMatch(t, u, steps, want)
}

// TestRunSupervisedDegradesToLoops arms an unlimited cut-site panic: both
// recursive engines are broken, and only the LOOPS rung — which never
// decomposes — completes the run. Also the report/telemetry acceptance
// test: every decision must be visible in both.
func TestRunSupervisedDegradesToLoops(t *testing.T) {
	defer faultpoint.DisarmAll()
	const X, Y, steps, seed = 40, 40, 8, 31
	opts := pochoir.Options{Grain: 1}
	want := unfaultedHeat2D(t, opts, X, Y, steps, seed)

	rec := pochoir.NewRecorder()
	st, u, kern := heatStencil(t, opts, X, Y, seed)
	faultpoint.Arm(faultpoint.SiteCut,
		faultpoint.Spec{Kind: faultpoint.KindPanic, Depth: faultpoint.AnyDepth})
	rep, err := st.RunSupervised(context.Background(), steps, kern, pochoir.SupervisePolicy{
		MaxAttempts:  6,
		DegradeAfter: 2,
		BaseDelay:    time.Microsecond,
		Telemetry:    rec,
	})
	faultpoint.DisarmAll()
	if err != nil {
		t.Fatalf("supervised run failed: %v (report %+v)", err, rep)
	}
	if rep.FinalEngine != pochoir.EngineLoops || rep.Degradations != 2 {
		t.Fatalf("final engine %v after %d degradations, want LOOPS after 2", rep.FinalEngine, rep.Degradations)
	}
	if rep.Segments[0].Attempts != 5 || rep.Retries != 4 {
		t.Fatalf("attempts = %d, retries = %d, want 5 and 4", rep.Segments[0].Attempts, rep.Retries)
	}
	mustMatch(t, u, steps, want)

	// The decision log reached both the report and the recorder, with the
	// checkpoint, failure, restore, backoff, and degradation steps typed.
	if len(rep.Events) == 0 || len(rec.SupervisorEvents()) != len(rep.Events) {
		t.Fatalf("events: report %d, recorder %d", len(rep.Events), len(rec.SupervisorEvents()))
	}
	counts := map[string]int{}
	for _, ev := range rep.Events {
		counts[ev.Kind.String()]++
	}
	for kind, n := range map[string]int{
		"segment-start": 1, "checkpoint": 1, "segment-fail": 4,
		"restore": 4, "retry-backoff": 4, "degrade": 2, "segment-done": 1,
	} {
		if counts[kind] != n {
			t.Fatalf("event counts = %v, want %d %s", counts, n, kind)
		}
	}
	if st.Poisoned() {
		t.Fatal("stencil left poisoned after a recovered run")
	}
}

// TestLoopsEngineMatchesRecursive: the LOOPS rung is selectable as a plain
// Options.Algorithm and produces bit-identical results.
func TestLoopsEngineMatchesRecursive(t *testing.T) {
	const X, Y, steps, seed = 37, 29, 15, 5
	want := unfaultedHeat2D(t, pochoir.Options{}, X, Y, steps, seed)
	st, u, kern := heatStencil(t, pochoir.Options{Algorithm: 2, Serial: true}, X, Y, seed)
	if err := st.Run(steps, kern); err != nil {
		t.Fatal(err)
	}
	mustMatch(t, u, steps, want)
}

// TestRunSupervisedShadowVerifyCatchesCorruption: a kernel that silently
// corrupts one full sweep — no panic, no error — is caught by the shadow
// recompute, rolled back, and retried clean.
func TestRunSupervisedShadowVerifyCatchesCorruption(t *testing.T) {
	const X, Y, steps, seed = 32, 32, 8, 13
	opts := pochoir.Options{Serial: true}
	want := unfaultedHeat2D(t, opts, X, Y, steps, seed)

	st, u, _ := heatStencil(t, opts, X, Y, seed)
	// Corrupt every point of the tt==1 sweep, exactly once: the counter
	// expires after X*Y applications, so the shadow recompute (and the
	// retry) see a clean kernel.
	var corrupted atomic.Int64
	kern := pochoir.K2(func(tt, x, y int) {
		c := u.Get(tt, x, y)
		v := c +
			cx*(u.Get(tt, x+1, y)-2*c+u.Get(tt, x-1, y)) +
			cy*(u.Get(tt, x, y+1)-2*c+u.Get(tt, x, y-1))
		if tt == 1 && corrupted.Add(1) <= X*Y {
			v *= 2 // silent corruption: in-range, plausible, wrong
		}
		u.Set(tt+1, v, x, y)
	})
	rep, err := st.RunSupervised(context.Background(), steps, kern, pochoir.SupervisePolicy{
		SegmentSteps: 4,
		BaseDelay:    time.Microsecond,
		Verify:       pochoir.VerifyPolicy{Enabled: true},
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (report %+v)", err, rep)
	}
	if rep.VerifyMismatches != 1 {
		t.Fatalf("VerifyMismatches = %d, want 1", rep.VerifyMismatches)
	}
	if rep.Verified == 0 || rep.Retries != 1 {
		t.Fatalf("report = %+v, want a passed verify and one retry", rep)
	}
	if !rep.Segments[0].VerifyMismatch {
		t.Fatalf("segment 0 = %+v, want the mismatch recorded", rep.Segments[0])
	}
	mustMatch(t, u, steps, want)
}

// TestRunSupervisedHappyPathIsPlainRun: with checkpointing disabled and no
// faults, the supervisor adds bookkeeping only — same result, one segment,
// no checkpoint copies.
func TestRunSupervisedHappyPathIsPlainRun(t *testing.T) {
	const X, Y, steps, seed = 48, 48, 10, 3
	want := unfaultedHeat2D(t, pochoir.Options{}, X, Y, steps, seed)
	st, u, kern := heatStencil(t, pochoir.Options{}, X, Y, seed)
	rep, err := st.RunSupervised(context.Background(), steps, kern,
		pochoir.SupervisePolicy{NoCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checkpoints != 0 || rep.Attempts != 1 || len(rep.Segments) != 1 {
		t.Fatalf("report = %+v, want one uncheckpointed attempt", rep)
	}
	mustMatch(t, u, steps, want)
}

// TestSupervisedSoakEnvFaults is the CI soak: when POCHOIR_FAULTPOINTS is
// set (e.g. walker/base=p:0.01), a supervised run must survive whatever the
// environment throws and still produce the bit-exact result. Skipped when
// the variable is empty.
func TestSupervisedSoakEnvFaults(t *testing.T) {
	env := os.Getenv(faultpoint.EnvVar)
	if env == "" {
		t.Skipf("%s not set", faultpoint.EnvVar)
	}
	defer faultpoint.DisarmAll()
	const X, Y, steps, seed = 64, 64, 24, 41
	// Small cutoffs force real decomposition so probabilistic faults at the
	// cut and base sites get many visits per segment to fire at.
	opts := pochoir.Options{Grain: 1, TimeCutoff: 2, SpaceCutoff: []int{16, 16}}
	want := unfaultedHeat2D(t, opts, X, Y, steps, seed) // disarms first
	st, u, kern := heatStencil(t, opts, X, Y, seed)
	if err := faultpoint.ArmFromSpec(env); err != nil {
		t.Fatal(err)
	}
	rep, err := st.RunSupervised(context.Background(), steps, kern, pochoir.SupervisePolicy{
		SegmentSteps: 2,
		MaxAttempts:  10,
		BaseDelay:    time.Microsecond,
		MaxDelay:     time.Millisecond,
	})
	faultpoint.DisarmAll()
	if err != nil {
		t.Fatalf("soak run failed: %v (report %+v)", err, rep)
	}
	t.Logf("soak: %d segments, %d retries, %d degradations, final engine %v",
		len(rep.Segments), rep.Retries, rep.Degradations, rep.FinalEngine)
	mustMatch(t, u, steps, want)
}
