package pochoir_test

// Hardened-execution suite: panic isolation, context cancellation,
// run-state poisoning, and checkpoint/restore, exercised across the full
// regime matrix (TRAP/STRAP × serial/parallel) with the fault-injection
// harness in internal/faultpoint. Run under -race (`make race`): panic
// draining and the cancellation watcher are exactly the paths where a
// data race would hide.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pochoir"
	"pochoir/internal/faultpoint"
)

// regimes is the decomposition/scheduling matrix every failure mode is
// tested against. Grain 1 forces the parallel regimes to actually spawn at
// every level even on small test grids.
var regimes = []struct {
	name string
	opts pochoir.Options
}{
	{"TRAP-parallel", pochoir.Options{Grain: 1}},
	{"TRAP-serial", pochoir.Options{Serial: true}},
	{"STRAP-parallel", pochoir.Options{Algorithm: 1, Grain: 1}},
	{"STRAP-serial", pochoir.Options{Algorithm: 1, Serial: true}},
}

// heatStencil builds a periodic 2D heat stencil over an X×Y grid seeded
// with deterministic data, returning the stencil, its array, and the
// standard five-point kernel.
func heatStencil(t testing.TB, opts pochoir.Options, X, Y int, seed int64) (*pochoir.Stencil[float64], *pochoir.Array[float64], pochoir.Kernel) {
	t.Helper()
	sh := heat2DShape()
	st := pochoir.NewWithOptions[float64](sh, opts)
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	st.MustRegisterArray(u)
	if err := u.CopyIn(0, randomGrid(X*Y, seed)); err != nil {
		t.Fatal(err)
	}
	kern := pochoir.K2(func(tt, x, y int) {
		c := u.Get(tt, x, y)
		u.Set(tt+1, c+
			cx*(u.Get(tt, x+1, y)-2*c+u.Get(tt, x-1, y))+
			cy*(u.Get(tt, x, y+1)-2*c+u.Get(tt, x, y-1)), x, y)
	})
	return st, u, kern
}

func TestKernelPanicReturnsStructuredError(t *testing.T) {
	const X, Y, steps = 48, 48, 12
	for _, rg := range regimes {
		t.Run(rg.name, func(t *testing.T) {
			st, u, _ := heatStencil(t, rg.opts, X, Y, 7)
			boom := errors.New("kernel exploded")
			kern := pochoir.K2(func(tt, x, y int) {
				if tt == 5 && x == 17 && y == 23 {
					panic(boom)
				}
				u.Set(tt+1, u.Get(tt, x, y), x, y)
			})
			err := st.Run(steps, kern)
			var kp *pochoir.KernelPanicError
			if !errors.As(err, &kp) {
				t.Fatalf("Run returned %T %v, want *KernelPanicError", err, err)
			}
			if kp.Value != boom {
				t.Fatalf("Value = %v, want the kernel's panic value", kp.Value)
			}
			if len(kp.Stack) == 0 || !strings.Contains(string(kp.Stack), "goroutine") {
				t.Fatalf("stack not captured: %q", kp.Stack)
			}
			if kp.Zoid.N != 2 || kp.Zoid.Height() < 1 {
				t.Fatalf("zoid location not captured: %+v", kp.Zoid)
			}
			// The panicking kernel application writes home time 6
			// (tt+1); the zoid must cover it.
			if kp.Zoid.T0 > 6 || 6 >= kp.Zoid.T1 {
				t.Fatalf("zoid time range [%d,%d) does not cover the panic at t=6", kp.Zoid.T0, kp.Zoid.T1)
			}
			// errors.Is sees through to the panic value when it was an error.
			if !errors.Is(err, boom) {
				t.Fatal("errors.Is(err, boom) = false")
			}
			if !st.Poisoned() {
				t.Fatal("stencil not poisoned after a kernel panic")
			}
		})
	}
}

func TestPoisonedStencilRefusesRunsUntilReset(t *testing.T) {
	const X, Y, steps = 48, 48, 8
	st, u, kern := heatStencil(t, pochoir.Options{Grain: 1}, X, Y, 11)
	init := make([]float64, X*Y)
	if err := u.CopyOut(0, init); err != nil {
		t.Fatal(err)
	}
	bad := pochoir.K2(func(tt, x, y int) { panic("dead") })
	if err := st.Run(steps, bad); err == nil {
		t.Fatal("panicking run returned nil")
	}
	if err := st.Run(steps, kern); !errors.Is(err, pochoir.ErrPoisoned) {
		t.Fatalf("poisoned Run returned %v, want ErrPoisoned", err)
	}
	if _, err := st.Checkpoint(); !errors.Is(err, pochoir.ErrPoisoned) {
		t.Fatalf("poisoned Checkpoint returned %v, want ErrPoisoned", err)
	}
	// Reset + re-initialize: the stencil runs again and matches the
	// independent reference.
	st.Reset()
	if st.Poisoned() || st.StepsRun() != 0 {
		t.Fatal("Reset did not clear state")
	}
	if err := u.CopyIn(0, init); err != nil {
		t.Fatal(err)
	}
	if err := st.Run(steps, kern); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
	got := make([]float64, X*Y)
	if err := u.CopyOut(steps, got); err != nil {
		t.Fatal(err)
	}
	want := refHeat2D(init, X, Y, steps, true, 0)
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("post-Reset results diverge from reference: %g", d)
	}
}

func TestFaultInjectedPanicsAtBothSites(t *testing.T) {
	const X, Y, steps = 48, 48, 12
	// Fine cutoffs guarantee a deep decomposition, so depth-targeted
	// failpoints have depths to hit.
	fine := pochoir.Options{Grain: 1, TimeCutoff: 2, SpaceCutoff: []int{16, 16}}
	t.Run("base", func(t *testing.T) {
		defer faultpoint.DisarmAll()
		faultpoint.Arm(faultpoint.SiteBase, faultpoint.Spec{
			Kind: faultpoint.KindPanic, Depth: faultpoint.AnyDepth, After: 2,
		})
		st, _, kern := heatStencil(t, fine, X, Y, 13)
		err := st.Run(steps, kern)
		var kp *pochoir.KernelPanicError
		if !errors.As(err, &kp) {
			t.Fatalf("base-site fault returned %T %v, want *KernelPanicError", err, err)
		}
		var inj *faultpoint.Injected
		if !errors.As(err, &inj) || inj.Site != faultpoint.SiteBase {
			t.Fatalf("panic value = %v, want *faultpoint.Injected at the base site", kp.Value)
		}
		if !st.Poisoned() {
			t.Fatal("not poisoned")
		}
	})
	t.Run("cut", func(t *testing.T) {
		defer faultpoint.DisarmAll()
		faultpoint.Arm(faultpoint.SiteCut, faultpoint.Spec{
			Kind: faultpoint.KindPanic, Depth: 2,
		})
		st, _, kern := heatStencil(t, fine, X, Y, 17)
		err := st.Run(steps, kern)
		// A cut-site panic happens outside any base case: it surfaces as
		// an engine panic, not a kernel panic.
		var ep *pochoir.EnginePanicError
		if !errors.As(err, &ep) {
			t.Fatalf("cut-site fault returned %T %v, want *EnginePanicError", err, err)
		}
		var inj *faultpoint.Injected
		if !errors.As(err, &inj) || inj.Site != faultpoint.SiteCut || inj.Depth != 2 {
			t.Fatalf("panic value = %v, want *faultpoint.Injected at cut depth 2", ep.Value)
		}
		if !st.Poisoned() {
			t.Fatal("not poisoned")
		}
	})
}

func TestRunContextCancelAndDeadline(t *testing.T) {
	const X, Y, steps = 64, 64, 16
	opts := pochoir.Options{Grain: 1}
	t.Run("cancel", func(t *testing.T) {
		defer faultpoint.DisarmAll()
		// Stall every base case so the run is long enough to cancel.
		faultpoint.Arm(faultpoint.SiteBase, faultpoint.Spec{
			Kind: faultpoint.KindSleep, Depth: faultpoint.AnyDepth, Sleep: 10 * time.Millisecond,
		})
		st, _, kern := heatStencil(t, opts, X, Y, 19)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(25 * time.Millisecond)
			cancel()
		}()
		if err := st.RunContext(ctx, steps, kern); !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext returned %v, want context.Canceled", err)
		}
		if !st.Poisoned() {
			t.Fatal("cancelled run did not poison")
		}
	})
	t.Run("deadline", func(t *testing.T) {
		defer faultpoint.DisarmAll()
		faultpoint.Arm(faultpoint.SiteBase, faultpoint.Spec{
			Kind: faultpoint.KindSleep, Depth: faultpoint.AnyDepth, Sleep: 10 * time.Millisecond,
		})
		st, _, kern := heatStencil(t, opts, X, Y, 23)
		ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
		defer cancel()
		if err := st.RunContext(ctx, steps, kern); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("RunContext returned %v, want context.DeadlineExceeded", err)
		}
		if !st.Poisoned() {
			t.Fatal("deadlined run did not poison")
		}
	})
	t.Run("dead-on-arrival", func(t *testing.T) {
		st, _, kern := heatStencil(t, opts, X, Y, 29)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := st.RunContext(ctx, steps, kern); !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext returned %v, want context.Canceled", err)
		}
		// Nothing ran: the stencil must stay clean.
		if st.Poisoned() {
			t.Fatal("dead-on-arrival context poisoned the stencil")
		}
		if err := st.Run(steps, kern); err != nil {
			t.Fatalf("Run after dead-on-arrival cancel: %v", err)
		}
	})
}

// TestCancellationLatency bounds how promptly a cancelled run returns: the
// walker checks the flag once per zoid, so the run must unwind within about
// one base-case duration. Every base case is stalled to a known 20ms by a
// sleep failpoint; the whole uncancelled run would take many seconds (the
// time-cut recursion serializes dozens of slabs even in parallel mode), and
// the test requires return within a few base-case durations of the cancel.
func TestCancellationLatency(t *testing.T) {
	const (
		X, Y      = 128, 128
		steps     = 64
		baseSleep = 20 * time.Millisecond
		cancelAt  = 30 * time.Millisecond
		bound     = 400 * time.Millisecond
	)
	for _, rg := range regimes {
		t.Run(rg.name, func(t *testing.T) {
			defer faultpoint.DisarmAll()
			faultpoint.Arm(faultpoint.SiteBase, faultpoint.Spec{
				Kind: faultpoint.KindSleep, Depth: faultpoint.AnyDepth, Sleep: baseSleep,
			})
			opts := rg.opts
			// Fine cutoffs: many small base cases, so the latency bound
			// measures the walker's responsiveness, not one huge zoid.
			opts.TimeCutoff = 2
			opts.SpaceCutoff = []int{16, 16}
			st, _, kern := heatStencil(t, opts, X, Y, 31)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(cancelAt)
				cancel()
			}()
			start := time.Now()
			err := st.RunContext(ctx, steps, kern)
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext returned %v, want context.Canceled", err)
			}
			if elapsed > bound {
				t.Fatalf("cancelled run took %v, want < %v (≈ cancel point + one base-case duration)", elapsed, bound)
			}
		})
	}
}

func TestCheckpointRestoreRetryAfterFailure(t *testing.T) {
	const X, Y = 48, 48
	const half = 8
	for _, rg := range regimes {
		t.Run(rg.name, func(t *testing.T) {
			defer faultpoint.DisarmAll()
			st, u, kern := heatStencil(t, rg.opts, X, Y, 37)
			init := make([]float64, X*Y)
			if err := u.CopyOut(0, init); err != nil {
				t.Fatal(err)
			}

			if err := st.Run(half, kern); err != nil {
				t.Fatalf("first half: %v", err)
			}
			cp, err := st.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if cp.StepsRun() != half {
				t.Fatalf("checkpoint cursor = %d, want %d", cp.StepsRun(), half)
			}

			// Second half dies partway through.
			faultpoint.Arm(faultpoint.SiteBase, faultpoint.Spec{
				Kind: faultpoint.KindPanic, Depth: faultpoint.AnyDepth, After: 1,
			})
			if err := st.Run(half, kern); err == nil {
				t.Fatal("fault-injected run returned nil")
			}
			faultpoint.DisarmAll()
			if err := st.Run(half, kern); !errors.Is(err, pochoir.ErrPoisoned) {
				t.Fatalf("poisoned Run returned %v, want ErrPoisoned", err)
			}

			// Rewind to the checkpoint and retry: the resumed computation
			// must match an uninterrupted 2×half-step reference.
			if err := st.Restore(cp); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if st.Poisoned() || st.StepsRun() != half {
				t.Fatalf("after Restore: poisoned=%v stepsRun=%d", st.Poisoned(), st.StepsRun())
			}
			if err := st.Run(half, kern); err != nil {
				t.Fatalf("retry: %v", err)
			}
			got := make([]float64, X*Y)
			if err := u.CopyOut(2*half, got); err != nil {
				t.Fatal(err)
			}
			want := refHeat2D(init, X, Y, 2*half, true, 0)
			if d := maxAbsDiff(got, want); d > 1e-12 {
				t.Fatalf("retried run diverges from reference: %g", d)
			}
			// The checkpoint is reusable: a second restore still works.
			if err := st.Restore(cp); err != nil {
				t.Fatalf("second Restore: %v", err)
			}
			if st.StepsRun() != half {
				t.Fatalf("second Restore cursor = %d", st.StepsRun())
			}
		})
	}
}

func TestRestoreRejectsMismatchedCheckpoint(t *testing.T) {
	stA, _, _ := heatStencil(t, pochoir.Options{}, 32, 32, 41)
	stB, _, _ := heatStencil(t, pochoir.Options{}, 48, 48, 43)
	cp, err := stA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := stB.Restore(cp); err == nil {
		t.Fatal("Restore accepted a checkpoint with mismatched geometry")
	}
	if err := stB.Restore(nil); err == nil {
		t.Fatal("Restore accepted a nil checkpoint")
	}
}

func TestRegisterArrayRejectsDepthMismatch(t *testing.T) {
	sh := heat2DShape() // depth 1
	st := pochoir.New[float64](sh)
	deep := pochoir.MustArray[float64](sh.Depth()+1, 16, 16)
	if err := st.RegisterArray(deep); err == nil {
		t.Fatal("array with temporal depth 2 accepted by a depth-1 shape")
	} else if !strings.Contains(err.Error(), "depth") {
		t.Fatalf("unhelpful error: %v", err)
	}
	ok := pochoir.MustArray[float64](sh.Depth(), 16, 16)
	if err := st.RegisterArray(ok); err != nil {
		t.Fatalf("matching depth rejected: %v", err)
	}
}

func TestRegisterArrayRejectsDoubleRegistration(t *testing.T) {
	sh := heat2DShape()
	st := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), 16, 16)
	if err := st.RegisterArray(u); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterArray(u); err == nil {
		t.Fatal("same *Array registered twice")
	}
	// A distinct array of the same geometry is still welcome.
	v := pochoir.MustArray[float64](sh.Depth(), 16, 16)
	if err := st.RegisterArray(v); err != nil {
		t.Fatalf("distinct array rejected: %v", err)
	}
}

func TestResetClearsLastStats(t *testing.T) {
	rec := pochoir.NewRecorder()
	st, _, kern := heatStencil(t, pochoir.Options{Telemetry: rec}, 32, 32, 47)
	if err := st.Run(4, kern); err != nil {
		t.Fatal(err)
	}
	if st.LastRunStats() == nil {
		t.Fatal("LastRunStats nil after an instrumented run")
	}
	st.Reset()
	if st.LastRunStats() != nil {
		t.Fatal("Reset left stale LastRunStats")
	}
}

func TestFailedRunTelemetryStaysConsistent(t *testing.T) {
	defer faultpoint.DisarmAll()
	rec := pochoir.NewRecorder()
	faultpoint.Arm(faultpoint.SiteBase, faultpoint.Spec{
		Kind: faultpoint.KindPanic, Depth: faultpoint.AnyDepth, After: 4,
	})
	st, _, kern := heatStencil(t, pochoir.Options{
		Telemetry: rec, Grain: 1, TimeCutoff: 2, SpaceCutoff: []int{16, 16},
	}, 64, 64, 53)
	if err := st.Run(16, kern); err == nil {
		t.Fatal("fault-injected run returned nil")
	}
	// The failed run still published a stats delta...
	stats := st.LastRunStats()
	if stats == nil {
		t.Fatal("failed run left no LastRunStats")
	}
	if stats.Bases == 0 {
		t.Fatal("failed run recorded no base cases despite After=4")
	}
	// ...and the trace it exports is balanced: every span a panic tore
	// through was closed on shard release.
	var sb strings.Builder
	if err := rec.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	trace := sb.String()
	begins := strings.Count(trace, `"ph":"B"`)
	ends := strings.Count(trace, `"ph":"E"`)
	if begins == 0 || begins != ends {
		t.Fatalf("unbalanced trace after failed run: %d begins, %d ends", begins, ends)
	}
	// The recorder survives for the next (recovered) run.
	faultpoint.DisarmAll()
	st.Reset()
	if err := st.Run(4, kern); err != nil {
		t.Fatalf("instrumented run after failure: %v", err)
	}
}
