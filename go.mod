module pochoir

go 1.24
