// Package pochoir is a Go implementation of the Pochoir stencil compiler
// and runtime system (Tang, Chowdhury, Kuszmaul, Luk, Leiserson,
// "The Pochoir Stencil Compiler", SPAA 2011).
//
// A stencil computation repeatedly updates every point of a d-dimensional
// grid as a function of itself and its near neighbors. Pochoir executes such
// computations with TRAP, a parallel cache-oblivious algorithm based on
// trapezoidal decompositions extended with hyperspace cuts, which yields
// asymptotically more parallelism than earlier decompositions at the same
// cache complexity.
//
// The package mirrors the paper's two-phase methodology:
//
//   - Phase 1 ("template library"): declare a Shape, allocate Arrays,
//     register a Boundary function, write the kernel as an ordinary Go
//     function, and call Run. The kernel executes through checked
//     accessors; RunChecked additionally enforces the Pochoir Guarantee
//     (every access must lie within the declared shape).
//
//   - Phase 2 ("compiled"): obtain specialized base-case kernels — either
//     hand-written or emitted by the stencil compiler in internal/compiler
//     (driver: cmd/pochoirgen) — and call RunSpecialized. The engine,
//     decomposition, and scheduling are identical; only the base case is
//     faster, exactly as in the paper.
//
// A minimal 2D heat equation (the paper's Fig. 6 program):
//
//	sh := pochoir.MustShape(2, [][]int{{1, 0, 0}, {0, 0, 0},
//	        {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1}})
//	heat := pochoir.New[float64](sh)
//	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
//	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
//	heat.RegisterArray(u)
//	kern := pochoir.K2(func(t, x, y int) {
//	        u.Set(t+1, u.Get(t, x, y)+
//	                cx*(u.Get(t, x+1, y)-2*u.Get(t, x, y)+u.Get(t, x-1, y))+
//	                cy*(u.Get(t, x, y+1)-2*u.Get(t, x, y)+u.Get(t, x, y-1)), x, y)
//	})
//	if err := heat.Run(T, kern); err != nil { ... }
//	// results are read from u at time T+sh.Depth()-1
package pochoir

import (
	"context"
	"errors"
	"fmt"

	"pochoir/internal/core"
	"pochoir/internal/flight"
	"pochoir/internal/grid"
	"pochoir/internal/metrics"
	"pochoir/internal/sched"
	"pochoir/internal/shape"
	"pochoir/internal/telemetry"
	"pochoir/internal/zoid"
)

// ErrPoisoned is returned by Run (and variants) after a previous run failed
// or was cancelled: the registered arrays are partially updated, so running
// further steps would compute on inconsistent state. Reset restarts from
// scratch (after the caller re-initializes the arrays); Restore rewinds to
// a Checkpoint and resumes from there.
var ErrPoisoned = errors.New("pochoir: stencil poisoned by a failed or cancelled run; Reset or Restore before running again")

// KernelPanicError is returned by Run (and variants) when a user kernel
// panics mid-run: the panic value, the panicking goroutine's stack, and the
// space-time zoid whose base case was executing. The engine converts the
// panic into this error instead of crashing the process — sibling tasks
// drain cleanly at their fork-join sync points first — and the stencil is
// left poisoned (see ErrPoisoned).
type KernelPanicError = core.KernelPanicError

// EnginePanicError is returned by Run (and variants) for a panic recovered
// outside a base-case kernel (including fault-injected engine panics): the
// panic value and the panicking goroutine's stack.
type EnginePanicError = sched.PanicError

// MaxDims is the maximum number of spatial dimensions supported.
const MaxDims = zoid.MaxDims

// Zoid is the space-time hypertrapezoid handed to base-case kernels: its
// spatial bounds at time t are Lo[i]+DLo[i]*(t-T0) <= x < Hi[i]+DHi[i]*(t-T0).
// Specialized (Phase-2) base kernels receive zoids and must walk their time
// steps in order, advancing the bounds by the slopes after each step.
type Zoid = zoid.Zoid

// BaseFunc executes the base case of the recursion over one zoid.
type BaseFunc = core.BaseFunc

// Shape describes a stencil's memory footprint (Pochoir_Shape_dimD).
type Shape = shape.Shape

// Array is a Pochoir array (Pochoir_Array_dimD): a d-dimensional spatial
// grid with a circular temporal buffer.
type Array[T any] = grid.Array[T]

// Boundary supplies values for off-domain accesses (Pochoir_Boundary_dimD).
type Boundary[T any] = grid.Boundary[T]

// Recorder is the execution-telemetry recorder: pass one via
// Options.Telemetry to capture every decomposition decision of a run —
// cut kinds, hyperspace-cut fanout and dependency levels, base-case
// volumes and clone dispatch, spawn decisions, and per-worker busy time.
// Export with Recorder.WriteChromeTrace (a chrome://tracing / Perfetto
// loadable span tree, one track per worker) or aggregate with
// Recorder.Snapshot; Stencil.LastRunStats summarizes the most recent Run.
type Recorder = telemetry.Recorder

// RunStats is the aggregate telemetry of a run; see Recorder.
type RunStats = telemetry.Stats

// NewRecorder creates an empty telemetry recorder.
func NewRecorder() *Recorder { return telemetry.New() }

// NewShape validates and builds a stencil shape from its cells, each cell a
// time offset followed by ndims spatial offsets. The first cell is the home
// cell (the point written).
func NewShape(ndims int, cells [][]int) (*Shape, error) { return shape.New(ndims, cells) }

// MustShape is NewShape, panicking on error.
func MustShape(ndims int, cells [][]int) *Shape { return shape.MustNew(ndims, cells) }

// NewArray allocates a Pochoir array with depth+1 time slots and the given
// spatial sizes (slowest-varying dimension first, unit-stride last).
func NewArray[T any](depth int, sizes ...int) (*Array[T], error) {
	return grid.NewArray[T](depth, sizes...)
}

// MustArray is NewArray, panicking on error.
func MustArray[T any](depth int, sizes ...int) *Array[T] {
	return grid.MustNewArray[T](depth, sizes...)
}

// Stencil holds the static information about a stencil computation
// (Pochoir_dimD): the shape, the registered arrays, and execution options.
type Stencil[T any] struct {
	shape  *Shape
	arrays []*Array[T]
	sizes  []int

	opts      Options
	stepsRun  int
	lastStats *RunStats
	// metSet is the walker instrument set resolved against metReg; both
	// are managed by runMetrics (see monitor.go). activeProg, when
	// non-nil, is a run-spanning progress estimator (set by RunSupervised
	// around its segments) that per-segment runs feed instead of starting
	// their own.
	metReg     *MetricsRegistry
	metSet     *metrics.RunMetrics
	activeProg *metrics.Progress
	// flightRec caches the stencil-private recorder a positive
	// Options.FlightRing creates (see flightRecorder in postmortem.go);
	// inSupervise suppresses per-attempt post-mortem bundles inside
	// RunSupervised, which bundles once on the terminal error instead.
	flightRec   *flight.Recorder
	inSupervise bool
	// poisoned latches after a failed or cancelled run: the arrays hold a
	// partially updated state, so further runs are refused with
	// ErrPoisoned until Reset or Restore re-establishes consistency.
	poisoned bool
}

// Options control how the engine decomposes and schedules the computation.
// The zero value requests the paper's defaults: the TRAP algorithm with
// hyperspace cuts, parallel execution, and the §4 coarsening heuristic.
type Options struct {
	// Algorithm selects TRAP (default) or STRAP decomposition.
	Algorithm core.Algorithm
	// Serial disables parallel execution (Pochoir on 1 core).
	Serial bool
	// TimeCutoff and SpaceCutoff override base-case coarsening; zero
	// values select the paper's heuristic (§4): 100x100 space chunks
	// with 5 time steps for 2D, 1000x3x3 with 3 time steps for 3D and
	// above (never cutting the unit-stride dimension), and uncoarsened
	// time with width 100 for 1D.
	TimeCutoff  int
	SpaceCutoff []int
	// Grain is the minimum approximate subzoid volume processed on a
	// fresh goroutine; zero selects core.DefaultGrain.
	Grain int64
	// NoUnifiedPeriodic disables the §4 virtual-coordinate circle cuts
	// and decomposes the grid as a plain box. This is only valid for
	// stencils with no wraparound dependencies (nonperiodic boundary
	// functions); it exists for the ablation experiments.
	NoUnifiedPeriodic bool
	// Telemetry, when non-nil, records the run's decomposition decisions
	// into the recorder (see Recorder). Nil — the default — keeps the
	// engine entirely uninstrumented: the only cost is one pointer check.
	Telemetry *Recorder
	// Metrics, when non-nil, arms the live metrics registry: zoid, cut,
	// and base-case counters, point throughput, worker activity, and a
	// run-progress estimator, all scrapeable mid-run through ServeMonitor.
	// Nil — the default — costs one pointer check per instrumentation
	// point, like Telemetry.
	Metrics *MetricsRegistry
	// ProgressLabel overrides the label under which this stencil's runs
	// appear in the registry's /progressz snapshot (default "run", or
	// "supervised" for RunSupervised). A service executing many stencils
	// against one shared registry labels each run with its job id so a
	// per-job progress view can find it.
	ProgressLabel string
	// FlightRecorder overrides the black-box flight recorder this stencil
	// records into. Nil — the default — uses the process-wide recorder,
	// which is always on (POCHOIR_FLIGHT=off disables it; the
	// POCHOIR_FLIGHT_RING variable resizes it). Unlike Telemetry and
	// Metrics the recorder needs no arming: every run appends its recent
	// events, and any terminal failure automatically freezes the rings and
	// writes a pochoir-postmortem/v1 bundle (see PostmortemBundle).
	FlightRecorder *FlightRecorder
	// FlightRing, when positive, sizes a stencil-private flight recorder
	// (events per worker lane, rounded up to a power of two) used instead
	// of the process-wide one. Ignored when FlightRecorder is set.
	FlightRing int
	// NoFlightRecorder disables black-box recording and automatic
	// post-mortem bundles for this stencil only.
	NoFlightRecorder bool
	// Trace, when non-nil, is the causal trace this stencil's supervised
	// runs record into: RunSupervised opens a "supervised-run" span and
	// grows a child span per segment attempt (with retry, degradation,
	// spill, and verify causes) as the supervisor decides. The serving
	// gateway threads each job's ActiveTrace through here; library users
	// may pass their own (see NewTracer). Nil — the default — keeps runs
	// untraced at the cost of one pointer check.
	Trace *ActiveTrace
	// TraceParent, when Trace is set, parents the supervised-run span
	// under an enclosing span (the gateway's per-job root); zero attaches
	// to the trace's root span.
	TraceParent TraceSpanID
}

// New creates a stencil object for the given shape.
func New[T any](sh *Shape) *Stencil[T] {
	return &Stencil[T]{shape: sh}
}

// NewWithOptions creates a stencil object with explicit execution options.
func NewWithOptions[T any](sh *Shape, opts Options) *Stencil[T] {
	return &Stencil[T]{shape: sh, opts: opts}
}

// SetOptions replaces the execution options.
func (s *Stencil[T]) SetOptions(opts Options) {
	s.opts = opts
	s.flightRec = nil // re-resolve a FlightRing-sized recorder next run
}

// Shape returns the stencil's shape.
func (s *Stencil[T]) Shape() *Shape { return s.shape }

// RegisterArray informs the stencil that the array participates in its
// computation (§2, Register_Array). All registered arrays must share the
// stencil's dimensionality, the same spatial extents, and a temporal depth
// matching the shape's; registering the same array twice is rejected.
func (s *Stencil[T]) RegisterArray(a *Array[T]) error {
	if a.NDims() != s.shape.NDims {
		return fmt.Errorf("pochoir: array has %d dimensions, stencil shape has %d", a.NDims(), s.shape.NDims)
	}
	if got, want := a.Slots()-1, s.shape.Depth(); got != want {
		return fmt.Errorf("pochoir: array has temporal depth %d, stencil shape has depth %d", got, want)
	}
	for _, prev := range s.arrays {
		if prev == a {
			return fmt.Errorf("pochoir: array already registered")
		}
	}
	if s.sizes == nil {
		s.sizes = a.Sizes()
	} else {
		for i, n := range a.Sizes() {
			if n != s.sizes[i] {
				return fmt.Errorf("pochoir: array size %v differs from previously registered %v", a.Sizes(), s.sizes)
			}
		}
	}
	s.arrays = append(s.arrays, a)
	return nil
}

// MustRegisterArray is RegisterArray, panicking on error.
func (s *Stencil[T]) MustRegisterArray(a *Array[T]) {
	if err := s.RegisterArray(a); err != nil {
		panic(err)
	}
}

// Arrays returns the registered arrays.
func (s *Stencil[T]) Arrays() []*Array[T] { return s.arrays }

// Sizes returns the spatial extents of the computing domain.
func (s *Stencil[T]) Sizes() []int { return append([]int(nil), s.sizes...) }

// newWalker assembles the decomposition engine for this stencil, after
// validating the execution options.
func (s *Stencil[T]) newWalker() (*core.Walker, error) {
	if len(s.arrays) == 0 {
		return nil, fmt.Errorf("pochoir: no arrays registered")
	}
	d := s.shape.NDims
	if s.opts.TimeCutoff < 0 {
		return nil, fmt.Errorf("pochoir: negative TimeCutoff %d", s.opts.TimeCutoff)
	}
	if s.opts.Grain < 0 {
		return nil, fmt.Errorf("pochoir: negative Grain %d", s.opts.Grain)
	}
	if s.opts.SpaceCutoff != nil && len(s.opts.SpaceCutoff) != d {
		return nil, fmt.Errorf("pochoir: SpaceCutoff has %d entries, stencil has %d dimensions",
			len(s.opts.SpaceCutoff), d)
	}
	for i, c := range s.opts.SpaceCutoff {
		if c < 0 {
			return nil, fmt.Errorf("pochoir: negative SpaceCutoff[%d] = %d", i, c)
		}
	}
	w := &core.Walker{
		NDims:     d,
		Serial:    s.opts.Serial,
		Algorithm: s.opts.Algorithm,
		Grain:     s.opts.Grain,
		Rec:       s.opts.Telemetry,
		Flight:    s.flightRecorder(),
	}
	for i := 0; i < d; i++ {
		w.Slopes[i] = s.shape.Slope(i)
		w.Reach[i] = s.shape.Reach(i)
		w.Sizes[i] = s.sizes[i]
		// The unified scheme (§4) treats every dimension as periodic;
		// nonperiodic behaviour comes from the boundary function.
		w.Periodic[i] = !s.opts.NoUnifiedPeriodic
	}
	timeCut, spaceCut := s.coarsening()
	w.TimeCutoff = timeCut
	copy(w.SpaceCutoff[:], spaceCut)
	return w, nil
}

// coarsening returns the effective (time, per-dim space) base-case cutoffs:
// the user's overrides when set, otherwise the paper's §4 heuristic.
func (s *Stencil[T]) coarsening() (timeCut int, spaceCut []int) {
	defTime, defSpace := DefaultCoarsening(s.shape.NDims)
	spaceCut = defSpace
	if s.opts.SpaceCutoff != nil {
		copy(spaceCut, s.opts.SpaceCutoff)
	}
	timeCut = s.opts.TimeCutoff
	if timeCut == 0 {
		timeCut = defTime
	}
	return timeCut, spaceCut
}

// DefaultCoarsening returns the paper's §4 base-case coarsening heuristic
// for a d-dimensional stencil: the time cutoff and per-dimension space
// cutoffs a zero-valued Options selects. Exported so analytical replays of
// the decomposition (the work/span analyzer, the cache-trace simulator, the
// benchmark lab) can build walker geometries identical to the engine's.
func DefaultCoarsening(d int) (timeCut int, spaceCut []int) {
	spaceCut = make([]int, d)
	switch {
	case d == 1:
		spaceCut[0] = 1000
	case d == 2:
		spaceCut[0], spaceCut[1] = 100, 100
	default:
		// Never cut the unit-stride dimension; keep the rest small
		// hypercubes ("1000x3x3 with 3 time steps").
		for i := 0; i < d-1; i++ {
			spaceCut[i] = 3
		}
		spaceCut[d-1] = 1 << 30 // effectively: never cut
	}
	switch {
	case d == 1:
		timeCut = 100
	case d == 2:
		timeCut = 5
	default:
		timeCut = 3
	}
	return timeCut, spaceCut
}

// Run executes the stencil computation for steps time steps using the
// point kernel kern — the Phase-1 "template library" path: correct for any
// Pochoir-compliant kernel, with accesses routed through the checked Array
// API. Results are read from the registered arrays at time steps
// steps .. steps+depth-1 (the last computed states).
//
// Run may be called again to resume the computation for additional steps
// (§2, name.Run).
func (s *Stencil[T]) Run(steps int, kern Kernel) error {
	return s.RunContext(context.Background(), steps, kern)
}

// RunContext is Run under a context: the walker checks cancellation
// cooperatively once per zoid (never inside a base case, so the fast path
// stays one atomic load amortized over a whole zoid) and returns ctx.Err()
// promptly — within about one base-case duration — on cancel or deadline.
// A cancelled run leaves the arrays partially updated and the stencil
// poisoned; see ErrPoisoned.
func (s *Stencil[T]) RunContext(ctx context.Context, steps int, kern Kernel) error {
	w, err := s.newWalker()
	if err != nil {
		return err
	}
	exec := s.pointExecutor(kern)
	w.Boundary = exec
	// The generic point executor always reduces coordinates and goes
	// through checked accessors, so it is safe to use for interior zoids
	// too; a specialized interior clone is what Phase 2 adds.
	w.Interior = exec
	return s.runWalker(ctx, w, steps)
}

// RunChecked is Run with the Pochoir Guarantee enforced: every access the
// kernel makes is verified against the declared shape, and the first
// violation is returned as a *grid.ShapeError. This is the Phase-1
// compliance check; it is substantially slower and intended for debugging.
func (s *Stencil[T]) RunChecked(steps int, kern Kernel) error {
	return s.RunCheckedContext(context.Background(), steps, kern)
}

// RunCheckedContext is RunChecked under a context; see RunContext.
func (s *Stencil[T]) RunCheckedContext(ctx context.Context, steps int, kern Kernel) error {
	for _, a := range s.arrays {
		a.EnableShapeCheck(s.shape)
	}
	defer func() {
		for _, a := range s.arrays {
			a.DisableShapeCheck()
		}
	}()
	w, err := s.newWalker()
	if err != nil {
		return err
	}
	// Shape checking mutates per-array state (the home point), so force
	// serial execution.
	w.Serial = true
	exec := s.checkedPointExecutor(kern)
	w.Boundary = exec
	w.Interior = exec
	if err := s.runWalker(ctx, w, steps); err != nil {
		return err
	}
	for _, a := range s.arrays {
		if err := a.CheckErr(); err != nil {
			return err
		}
	}
	return nil
}

// BaseKernels carries the specialized base-case clones of a compiled
// stencil: the fast interior clone and the checked boundary clone
// (§4, code cloning). Either may be produced by hand or by the Phase-2
// stencil compiler. A nil Interior routes every zoid through the boundary
// clone (useful for the paper's modular-indexing ablation).
type BaseKernels struct {
	Interior BaseFunc
	Boundary BaseFunc
}

// GenericBase wraps the point kernel in the generic checked base-case
// executor: virtual coordinates are reduced modulo the grid extents and all
// accesses go through the boundary-aware Array API. It is the natural
// boundary clone to pair with a hand- or compiler-specialized interior
// clone in RunSpecialized.
func (s *Stencil[T]) GenericBase(kern Kernel) BaseFunc {
	return s.pointExecutor(kern)
}

// RunSpecialized executes the stencil for steps time steps using compiled
// base-case kernels — the Phase-2 path.
func (s *Stencil[T]) RunSpecialized(steps int, b BaseKernels) error {
	return s.RunSpecializedContext(context.Background(), steps, b)
}

// RunSpecializedContext is RunSpecialized under a context; see RunContext.
func (s *Stencil[T]) RunSpecializedContext(ctx context.Context, steps int, b BaseKernels) error {
	if b.Boundary == nil {
		return fmt.Errorf("pochoir: RunSpecialized requires a boundary clone")
	}
	w, err := s.newWalker()
	if err != nil {
		return err
	}
	w.Interior = b.Interior
	w.Boundary = b.Boundary
	return s.runWalker(ctx, w, steps)
}

// cursor tracks how many steps have been run so resumed Runs continue
// where the previous call stopped. A run that fails — kernel panic,
// engine panic, cancellation, deadline — poisons the stencil: the arrays
// are partially updated, so further runs are refused until Reset or
// Restore. Telemetry stays consistent either way: a failed run still
// closes its spans and publishes its (partial) stats to LastRunStats.
func (s *Stencil[T]) runWalker(ctx context.Context, w *core.Walker, steps int) error {
	if s.poisoned {
		return ErrPoisoned
	}
	if steps < 0 {
		return fmt.Errorf("pochoir: negative step count %d", steps)
	}
	// A context that is dead on arrival has not touched the arrays, so it
	// does not poison.
	if err := ctx.Err(); err != nil {
		return err
	}
	depth := s.shape.Depth()
	t0 := depth + s.stepsRun
	t1 := t0 + steps

	// Arm the metrics instruments and the progress estimator. A supervised
	// run spans many walker invocations, so RunSupervised pre-installs a
	// run-wide estimator in activeProg; a plain Run owns its own, finished
	// (success raises done to the predicted total) when the walk returns.
	met := s.runMetrics()
	w.Met = met
	prog := s.activeProg
	ownProg := met != nil && prog == nil
	if ownProg {
		prog = s.opts.Metrics.StartProgress(s.progressLabel("run"), int64(steps)*s.gridVolume())
	}
	w.Prog = prog

	var pre RunStats
	if s.opts.Telemetry != nil {
		pre = s.opts.Telemetry.Snapshot()
	}
	err := w.RunContext(ctx, t0, t1)
	if s.opts.Telemetry != nil {
		st := s.opts.Telemetry.Snapshot().Delta(pre)
		s.lastStats = &st
		if met != nil {
			// Bridge the aggregate run stats — only computable from the
			// quiescent telemetry shards — into scrapeable gauges at the
			// run/segment boundary.
			met.LastParallelism.Set(st.AchievedParallelism())
			met.LastWallSeconds.Set(st.Wall.Seconds())
			met.LastWorkers.Set(float64(st.Workers))
		}
	}
	if ownProg {
		prog.Finish(err == nil)
	}
	if err != nil {
		s.poisoned = true
		// Terminal for an unsupervised run: freeze the black box and write
		// the post-mortem bundle. Under RunSupervised a failed segment is
		// not terminal — the supervisor retries — so bundling waits for the
		// supervisor's own give-up.
		if !s.inSupervise {
			s.writePostmortem(err, nil)
		}
		return err
	}
	s.stepsRun += steps
	return nil
}

// LastRunStats returns the telemetry summary of the most recent successful
// Run/RunChecked/RunSpecialized call — only that call's activity, even when
// the recorder is shared across resumed runs or stencils. It returns nil
// when Options.Telemetry was not set.
func (s *Stencil[T]) LastRunStats() *RunStats { return s.lastStats }

// StepsRun returns the total number of time steps executed so far.
func (s *Stencil[T]) StepsRun() int { return s.stepsRun }

// Reset clears the resume cursor so the next Run starts from time 0 again
// (after the caller re-initializes the arrays). It also clears the
// poisoned state left by a failed or cancelled run and drops the previous
// run's telemetry summary.
func (s *Stencil[T]) Reset() {
	s.stepsRun = 0
	s.lastStats = nil
	s.poisoned = false
}

// Poisoned reports whether a failed or cancelled run has left the stencil
// refusing further runs (see ErrPoisoned).
func (s *Stencil[T]) Poisoned() bool { return s.poisoned }

// ArrayCheckpoint is a deep copy of one array's temporal buffer; see
// Stencil.Checkpoint and Array.Checkpoint.
type ArrayCheckpoint[T any] = grid.ArrayCheckpoint[T]

// Checkpoint captures the live state of the computation — a deep copy of
// every registered array's time slots plus the resume cursor — so a later
// failure can be rolled back with Restore instead of restarting from
// scratch. Checkpointing a poisoned stencil is refused: its arrays hold a
// torn state not worth preserving.
type Checkpoint[T any] struct {
	stepsRun int
	arrays   []*ArrayCheckpoint[T]
}

// StepsRun returns the resume cursor the checkpoint was taken at.
func (cp *Checkpoint[T]) StepsRun() int { return cp.stepsRun }

// Checkpoint deep-copies the stencil's live state; see the Checkpoint type.
func (s *Stencil[T]) Checkpoint() (*Checkpoint[T], error) {
	if s.poisoned {
		return nil, ErrPoisoned
	}
	cp := &Checkpoint[T]{stepsRun: s.stepsRun}
	for _, a := range s.arrays {
		cp.arrays = append(cp.arrays, a.Checkpoint())
	}
	return cp, nil
}

// Restore rewinds the stencil to a checkpoint: every registered array's
// temporal buffer is overwritten with the checkpoint's copy, the resume
// cursor rewinds to the checkpointed step count, and the poisoned state is
// cleared — the retry-after-failure path. The stencil must have the same
// registered arrays (count and geometry) as when the checkpoint was taken.
func (s *Stencil[T]) Restore(cp *Checkpoint[T]) error {
	if cp == nil {
		return fmt.Errorf("pochoir: Restore of a nil checkpoint")
	}
	if len(cp.arrays) != len(s.arrays) {
		return fmt.Errorf("pochoir: checkpoint holds %d arrays, stencil has %d registered",
			len(cp.arrays), len(s.arrays))
	}
	// Validate geometry for every array before mutating any, so a failed
	// Restore never leaves a half-restored state.
	for i, a := range s.arrays {
		got, want := a.Sizes(), cp.arrays[i].Sizes()
		if len(got) != len(want) {
			return fmt.Errorf("pochoir: checkpoint array %d has %d dimensions, registered array has %d",
				i, len(want), len(got))
		}
		for j := range got {
			if got[j] != want[j] {
				return fmt.Errorf("pochoir: checkpoint array %d sizes %v differ from registered %v",
					i, want, got)
			}
		}
		if a.Slots() != cp.arrays[i].Slots() {
			return fmt.Errorf("pochoir: checkpoint array %d has %d time slots, registered array has %d",
				i, cp.arrays[i].Slots(), a.Slots())
		}
	}
	for i, a := range s.arrays {
		if err := a.Restore(cp.arrays[i]); err != nil {
			return err
		}
	}
	s.stepsRun = cp.stepsRun
	s.lastStats = nil
	s.poisoned = false
	return nil
}
