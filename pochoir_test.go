package pochoir_test

import (
	"math"
	"math/rand"
	"testing"

	"pochoir"
)

// heat2DShape is the paper's Fig. 6 five-point shape.
func heat2DShape() *pochoir.Shape {
	return pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
}

const cx, cy = 0.125, 0.125

// refHeat2D advances a 2D heat grid for steps, either periodic or with a
// constant Dirichlet halo, entirely independently of the engine under test.
func refHeat2D(init []float64, X, Y, steps int, periodic bool, halo float64) []float64 {
	cur := append([]float64(nil), init...)
	next := make([]float64, len(init))
	at := func(g []float64, x, y int) float64 {
		if periodic {
			x = ((x % X) + X) % X
			y = ((y % Y) + Y) % Y
		} else if x < 0 || x >= X || y < 0 || y >= Y {
			return halo
		}
		return g[x*Y+y]
	}
	for s := 0; s < steps; s++ {
		for x := 0; x < X; x++ {
			for y := 0; y < Y; y++ {
				c := at(cur, x, y)
				next[x*Y+y] = c +
					cx*(at(cur, x+1, y)-2*c+at(cur, x-1, y)) +
					cy*(at(cur, x, y+1)-2*c+at(cur, x, y-1))
			}
		}
		cur, next = next, cur
	}
	return cur
}

func randomGrid(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	g := make([]float64, n)
	for i := range g {
		g[i] = rng.Float64()
	}
	return g
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func runHeat2D(t *testing.T, X, Y, steps int, periodic bool, opts pochoir.Options) []float64 {
	t.Helper()
	sh := heat2DShape()
	st := pochoir.NewWithOptions[float64](sh, opts)
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
	if periodic {
		u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	} else {
		u.RegisterBoundary(pochoir.ConstBoundary(0.5))
	}
	st.MustRegisterArray(u)
	init := randomGrid(X*Y, 42)
	if err := u.CopyIn(0, init); err != nil {
		t.Fatal(err)
	}
	kern := pochoir.K2(func(tt, x, y int) {
		c := u.Get(tt, x, y)
		u.Set(tt+1, c+
			cx*(u.Get(tt, x+1, y)-2*c+u.Get(tt, x-1, y))+
			cy*(u.Get(tt, x, y+1)-2*c+u.Get(tt, x, y-1)), x, y)
	})
	if err := st.Run(steps, kern); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, X*Y)
	if err := u.CopyOut(steps, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHeat2DMatchesReferencePeriodic(t *testing.T) {
	X, Y, steps := 37, 29, 40
	want := refHeat2D(randomGrid(X*Y, 42), X, Y, steps, true, 0)
	for _, opts := range []pochoir.Options{
		{},             // TRAP parallel, default coarsening
		{Serial: true}, // TRAP serial
		{Algorithm: 1}, // STRAP parallel
		{TimeCutoff: 1, SpaceCutoff: []int{1, 1}}, // uncoarsened
		{TimeCutoff: 3, SpaceCutoff: []int{7, 9}, Grain: 1},
	} {
		got := runHeat2D(t, X, Y, steps, true, opts)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Fatalf("opts %+v: max diff %g vs reference", opts, d)
		}
	}
}

func TestHeat2DMatchesReferenceDirichlet(t *testing.T) {
	X, Y, steps := 31, 33, 35
	want := refHeat2D(randomGrid(X*Y, 42), X, Y, steps, false, 0.5)
	for _, opts := range []pochoir.Options{
		{},
		{Serial: true},
		{NoUnifiedPeriodic: true}, // box decomposition is valid for nonperiodic
		{Algorithm: 1, Grain: 1},
	} {
		got := runHeat2D(t, X, Y, steps, false, opts)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Fatalf("opts %+v: max diff %g vs reference", opts, d)
		}
	}
}

func TestRunResume(t *testing.T) {
	X, Y := 24, 24
	want := refHeat2D(randomGrid(X*Y, 42), X, Y, 30, true, 0)

	sh := heat2DShape()
	st := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	st.MustRegisterArray(u)
	if err := u.CopyIn(0, randomGrid(X*Y, 42)); err != nil {
		t.Fatal(err)
	}
	kern := pochoir.K2(func(tt, x, y int) {
		c := u.Get(tt, x, y)
		u.Set(tt+1, c+
			cx*(u.Get(tt, x+1, y)-2*c+u.Get(tt, x-1, y))+
			cy*(u.Get(tt, x, y+1)-2*c+u.Get(tt, x, y-1)), x, y)
	})
	// Run 10 + 20 steps; results must be indistinguishable from one run
	// of 30 (§2: name.Run may be called repeatedly to resume).
	if err := st.Run(10, kern); err != nil {
		t.Fatal(err)
	}
	if st.StepsRun() != 10 {
		t.Fatalf("StepsRun = %d", st.StepsRun())
	}
	if err := st.Run(20, kern); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, X*Y)
	if err := u.CopyOut(30, got); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("resumed run differs from single run by %g", d)
	}
}

func TestRunCheckedAcceptsCompliantKernel(t *testing.T) {
	X, Y, steps := 16, 16, 8
	sh := heat2DShape()
	st := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	st.MustRegisterArray(u)
	if err := u.CopyIn(0, randomGrid(X*Y, 1)); err != nil {
		t.Fatal(err)
	}
	kern := pochoir.K2(func(tt, x, y int) {
		c := u.Get(tt, x, y)
		u.Set(tt+1, c+
			cx*(u.Get(tt, x+1, y)-2*c+u.Get(tt, x-1, y))+
			cy*(u.Get(tt, x, y+1)-2*c+u.Get(tt, x, y-1)), x, y)
	})
	if err := st.RunChecked(steps, kern); err != nil {
		t.Fatalf("compliant kernel rejected: %v", err)
	}
	// And the checked run must produce correct values too.
	want := refHeat2D(randomGrid(X*Y, 1), X, Y, steps, true, 0)
	got := make([]float64, X*Y)
	if err := u.CopyOut(steps, got); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("checked run wrong by %g", d)
	}
}

func TestRunCheckedRejectsShapeViolation(t *testing.T) {
	X, Y := 16, 16
	sh := heat2DShape()
	st := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	st.MustRegisterArray(u)
	// Kernel reads a diagonal neighbor not declared in the shape: the
	// Pochoir Guarantee must flag it during Phase 1.
	kern := pochoir.K2(func(tt, x, y int) {
		u.Set(tt+1, u.Get(tt, x+1, y+1), x, y)
	})
	if err := st.RunChecked(4, kern); err == nil {
		t.Fatal("undeclared diagonal access must violate the Pochoir Guarantee")
	}
}

func TestRegisterArrayValidation(t *testing.T) {
	sh := heat2DShape()
	st := pochoir.New[float64](sh)
	bad := pochoir.MustArray[float64](1, 8) // 1D array for 2D stencil
	if err := st.RegisterArray(bad); err == nil {
		t.Fatal("dimension mismatch should be rejected")
	}
	a := pochoir.MustArray[float64](1, 8, 8)
	if err := st.RegisterArray(a); err != nil {
		t.Fatal(err)
	}
	b := pochoir.MustArray[float64](1, 8, 9)
	if err := st.RegisterArray(b); err == nil {
		t.Fatal("size mismatch should be rejected")
	}
	// A second compatible array is fine (multiple arrays per object, §2).
	c := pochoir.MustArray[float64](1, 8, 8)
	if err := st.RegisterArray(c); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithoutArrays(t *testing.T) {
	st := pochoir.New[float64](heat2DShape())
	if err := st.Run(1, func(t int, x []int) {}); err == nil {
		t.Fatal("running with no arrays should error")
	}
}

func TestNegativeSteps(t *testing.T) {
	sh := heat2DShape()
	st := pochoir.New[float64](sh)
	a := pochoir.MustArray[float64](1, 8, 8)
	a.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	st.MustRegisterArray(a)
	if err := st.Run(-1, func(t int, x []int) {}); err == nil {
		t.Fatal("negative steps should error")
	}
}

// TestHeat1DDepth2 exercises a depth-2 stencil (wave-like) end to end: the
// temporal circular buffer must hold three slots and the engine must honor
// the deeper dependency.
func TestHeat1DDepth2(t *testing.T) {
	N, steps := 50, 30
	sh := pochoir.MustShape(1, [][]int{{1, 0}, {0, 0}, {0, 1}, {0, -1}, {-1, 0}})
	if sh.Depth() != 2 {
		t.Fatalf("depth = %d", sh.Depth())
	}
	st := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), N)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	st.MustRegisterArray(u)
	init0 := randomGrid(N, 5)
	init1 := randomGrid(N, 6)
	if err := u.CopyIn(0, init0); err != nil {
		t.Fatal(err)
	}
	if err := u.CopyIn(1, init1); err != nil {
		t.Fatal(err)
	}
	const c2 = 0.3
	kern := pochoir.K1(func(tt, x int) {
		u.Set(tt+1, 2*u.Get(tt, x)-u.Get(tt-1, x)+
			c2*(u.Get(tt, x+1)-2*u.Get(tt, x)+u.Get(tt, x-1)), x)
	})
	if err := st.Run(steps, kern); err != nil {
		t.Fatal(err)
	}

	// Reference: straightforward three-buffer loop.
	prev := append([]float64(nil), init0...)
	cur := append([]float64(nil), init1...)
	next := make([]float64, N)
	for s := 0; s < steps; s++ {
		for x := 0; x < N; x++ {
			xm, xp := (x-1+N)%N, (x+1)%N
			next[x] = 2*cur[x] - prev[x] + c2*(cur[xp]-2*cur[x]+cur[xm])
		}
		prev, cur, next = cur, next, prev
	}
	got := make([]float64, N)
	// After `steps` additional steps the newest state lives at time
	// steps+depth-1 = steps+1.
	if err := u.CopyOut(steps+1, got); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, cur); d > 1e-12 {
		t.Fatalf("depth-2 stencil differs from reference by %g", d)
	}
}
