package pochoir

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strconv"

	"pochoir/internal/core"
	"pochoir/internal/resilience"
	"pochoir/internal/telemetry"
	"pochoir/internal/trace"
	"pochoir/internal/wire"
	"pochoir/internal/zoid"
)

// SupervisePolicy configures a supervised run; see RunSupervised and
// internal/resilience for the knobs (segment size, retry budget, backoff,
// degradation ladder, watchdog, shadow verification). The zero value is a
// usable default: one segment, 3 attempts, jittered 10ms–1s exponential
// backoff.
type SupervisePolicy = resilience.Policy

// VerifyPolicy configures shadow verification of a supervised run's
// segments; see SupervisePolicy.Verify.
type VerifyPolicy = resilience.VerifyPolicy

// RunReport summarizes a supervised run: steps completed, per-segment
// attempts and failures, retries, degradations, backoff spent, shadow
// verifications, and the full ordered supervisor decision log.
type RunReport = resilience.Report

// SegmentReport describes one segment of a supervised run.
type SegmentReport = resilience.SegmentReport

// VerifyError reports a shadow-verification mismatch in a supervised run.
type VerifyError = resilience.VerifyError

// SupervisorEvent is one typed supervisor decision; RunReport.Events holds
// them in order, and they are also emitted through the run's Recorder.
type SupervisorEvent = telemetry.SupEvent

// SupervisorEngine names a rung of the degradation ladder.
type SupervisorEngine = resilience.Engine

// The degradation ladder rungs, in default order: the configured recursive
// engine, the serial-space-cut decomposition, and the time-serial checked
// loop engine of last resort.
const (
	EngineFull  = resilience.EngineFull
	EngineSTRAP = resilience.EngineSTRAP
	EngineLoops = resilience.EngineLoops
)

// RunSupervised executes steps time steps of the Phase-1 point kernel under
// the resilience supervisor: the run is split into time segments with a
// checkpoint before each; a segment that fails — kernel panic, engine
// panic, injected fault, cancellation, or watchdog deadline — is restored
// from its checkpoint and retried under jittered exponential backoff, and
// repeated failures walk the engine degradation ladder (TRAP → STRAP →
// serial checked loops). With p.Verify.Enabled, a sampled sub-box of each
// completed segment is re-executed from the segment's checkpoint with the
// generic checked executor and compared within the tolerance; a mismatch is
// treated as a segment failure.
//
// The returned RunReport is non-nil in all cases and records every
// supervisor decision; the same events flow to p.Telemetry (defaulted to
// Options.Telemetry). On success the stencil has advanced by steps, exactly
// as after Run. On failure the error is also recorded in the report and the
// stencil is left poisoned at the failed segment's start (restored state),
// except with p.NoCheckpoint where the torn state stays.
func (s *Stencil[T]) RunSupervised(ctx context.Context, steps int, kern Kernel, p SupervisePolicy) (rep *RunReport, err error) {
	if steps < 0 {
		return nil, fmt.Errorf("pochoir: negative step count %d", steps)
	}
	if len(s.arrays) == 0 {
		return nil, fmt.Errorf("pochoir: no arrays registered")
	}
	if p.Telemetry == nil {
		p.Telemetry = s.opts.Telemetry
	}
	if p.Metrics == nil {
		p.Metrics = s.opts.Metrics
	}
	if p.Flight == nil {
		p.Flight = s.flightRecorder()
	}
	if reg := s.opts.Metrics; reg != nil {
		// One progress estimator spans the whole supervised run: segments
		// feed it through runWalker, retries of a restored segment re-add
		// their points (the counter is cumulative, so the published percent
		// stays monotone), and shadow verification bypasses the walker
		// entirely so verification work never inflates it.
		prog := reg.StartProgress(s.progressLabel("supervised"), int64(steps)*s.gridVolume())
		s.activeProg = prog
		defer func() {
			s.activeProg = nil
			prog.Finish(err == nil)
		}()
	}
	// Resolve the policy defaults here, not just inside Supervise: the verify
	// closure below reads the effective BoxSide/Every/Tolerance and Rand.
	p = p.WithDefaults()
	if tr := s.opts.Trace; tr != nil {
		// The supervised run gets its own span, and the supervisor's
		// decision stream grows segment/attempt spans under it live — so a
		// post-mortem snapshot of a run that dies mid-segment still shows
		// the attempt it died in. Chain rather than replace any caller
		// OnEvent.
		runSpan := tr.StartSpan("supervised-run", s.opts.TraceParent,
			trace.Attr{Key: "steps", Value: strconv.Itoa(steps)},
			trace.Attr{Key: "algorithm", Value: s.opts.Algorithm.String()})
		spanSink := trace.SupervisorSpans(tr, runSpan)
		prevSink := p.OnEvent
		p.OnEvent = func(ev telemetry.SupEvent) {
			spanSink(ev)
			if prevSink != nil {
				prevSink(ev)
			}
		}
		defer func() {
			status := trace.StatusOK
			switch {
			case err == nil:
			case errors.Is(err, context.DeadlineExceeded):
				status = trace.StatusDeadline
			default:
				status = trace.StatusError
			}
			attrs := []trace.Attr(nil)
			if rep != nil {
				attrs = append(attrs,
					trace.Attr{Key: "attempts", Value: strconv.Itoa(rep.Attempts)},
					trace.Attr{Key: "engine", Value: rep.FinalEngine.String()})
			}
			tr.EndSpan(runSpan, status, attrs...)
		}()
	}
	exec := s.pointExecutor(kern)
	var cpStart *Checkpoint[T]
	d := resilience.Driver{
		Steps: steps,
		Run: func(ctx context.Context, eng resilience.Engine, fromStep, n int) error {
			return s.runSegment(ctx, eng, exec, n)
		},
		Checkpoint: func() error {
			cp, err := s.Checkpoint()
			if err != nil {
				return err
			}
			cpStart = cp
			return nil
		},
		Restore: func() error { return s.Restore(cpStart) },
	}
	if p.SpillDir != "" {
		// Durable spilling: every segment checkpoint also goes to the
		// crash-safe journal, so a killed process resumes from the newest
		// good entry via ResumeSupervised. Opening the journal is the only
		// fatal step — durability was explicitly requested, so an unusable
		// directory is a configuration error; individual spill failures
		// later are recorded by the supervisor and never fail the run.
		jour, jerr := wire.OpenJournal(p.SpillDir, p.SpillKeep)
		if jerr != nil {
			return nil, fmt.Errorf("pochoir: open spill journal: %w", jerr)
		}
		d.Spill = func(segment, fromStep int) (string, int64, error) {
			wcp, werr := wireCheckpoint(cpStart)
			if werr != nil {
				return "", 0, werr
			}
			ent, aerr := jour.Append(wcp)
			if aerr != nil {
				return "", 0, aerr
			}
			return ent.Path, ent.Bytes, nil
		}
	}
	if p.Verify.Enabled {
		vp := p.Verify
		d.Verify = func(ctx context.Context, segIdx, fromStep, n int) error {
			return s.shadowVerify(ctx, exec, vp, p.Rand, cpStart, segIdx, n)
		}
	}
	// Per-attempt failures are the supervisor's to retry, so runWalker must
	// not bundle them; only the supervisor's terminal error — give-up,
	// cancellation, a failed checkpoint/restore — freezes the black box and
	// writes the post-mortem bundle, supervisor decision log included.
	s.inSupervise = true
	defer func() { s.inSupervise = false }()
	rep, err = resilience.Supervise(ctx, d, p)
	if err != nil {
		s.writePostmortem(err, rep)
	}
	return rep, err
}

// runSegment executes n time steps with the engine the supervisor selected.
// EngineFull keeps the stencil's configured options; the lower rungs
// override the decomposition — and for LOOPS also force serial execution,
// so the last rung shares nothing with the failure modes above it.
func (s *Stencil[T]) runSegment(ctx context.Context, eng resilience.Engine, exec BaseFunc, n int) error {
	w, err := s.newWalker()
	if err != nil {
		return err
	}
	switch eng {
	case resilience.EngineSTRAP:
		w.Algorithm = core.STRAP
	case resilience.EngineLoops:
		w.Algorithm = core.LOOPS
		w.Serial = true
	}
	w.Boundary = exec
	w.Interior = exec
	return s.runWalker(ctx, w, n)
}

// shadowVerify re-executes the dependency cone of a sampled sub-box of the
// just-completed segment from the segment's checkpoint, serially through the
// generic checked executor, and compares the box's final-state values with
// what the segment produced. The cone is an inverted trapezoid: at the
// segment's first step it is the box widened by reach*(n-1) per side, and it
// narrows by the stencil's reach each step so exactly the box remains at the
// final step. When the cone's base would exceed a dimension's extent the
// whole extent is swept at every step instead (slopes 0), which subsumes the
// cone. On success the segment-end state is restored and the run resumes.
func (s *Stencil[T]) shadowVerify(ctx context.Context, exec BaseFunc, vp VerifyPolicy, rnd func() float64, cpStart *Checkpoint[T], segIdx, n int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if cpStart == nil {
		return fmt.Errorf("pochoir: shadow verify without a segment checkpoint")
	}
	d := s.shape.NDims
	depth := s.shape.Depth()
	tFinal := s.stepsRun + depth - 1 // newest computed state

	// Place the sampled box. The jitter source doubles as the sampler so a
	// fixed Policy.Rand makes placement deterministic under test.
	var bLo, bHi [MaxDims]int
	for i := 0; i < d; i++ {
		side := vp.BoxSide
		if side > s.sizes[i] {
			side = s.sizes[i]
		}
		off := 0
		if span := s.sizes[i] - side; span > 0 && rnd != nil {
			off = int(rnd() * float64(span+1))
			if off > span {
				off = span
			}
		}
		bLo[i], bHi[i] = off, off+side
	}

	// The segment's answer for the box, captured before rewinding.
	idx := make([]int, d)
	var got []T
	forBox := func(visit func(idx []int)) {
		for i := 0; i < d; i++ {
			idx[i] = bLo[i]
		}
		for {
			visit(idx)
			i := d - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < bHi[i] {
					break
				}
				idx[i] = bLo[i]
			}
			if i < 0 {
				return
			}
		}
	}
	a0 := s.arrays[0]
	forBox(func(idx []int) { got = append(got, a0.Get(tFinal, idx...)) })

	// Rewind to the segment start, recompute the cone, compare, and put the
	// segment-end state back whatever the verdict.
	cpEnd, err := s.Checkpoint()
	if err != nil {
		return fmt.Errorf("pochoir: shadow verify checkpoint: %w", err)
	}
	if err := s.Restore(cpStart); err != nil {
		return fmt.Errorf("pochoir: shadow verify restore: %w", err)
	}
	z := zoid.Zoid{N: d, T0: depth + s.stepsRun, T1: depth + s.stepsRun + n}
	for i := 0; i < d; i++ {
		reach := s.shape.Reach(i)
		base := (bHi[i] - bLo[i]) + 2*reach*(n-1)
		if base >= s.sizes[i] {
			// Cone base exceeds the extent: sweep the whole dimension at
			// every step. Clamping the trapezoid instead would starve the
			// box of wrapped dependencies.
			z.Lo[i], z.Hi[i] = 0, s.sizes[i]
			continue
		}
		z.Lo[i], z.Hi[i] = bLo[i]-reach*(n-1), bHi[i]+reach*(n-1)
		z.DLo[i], z.DHi[i] = reach, -reach
	}
	exec(z)

	var verr error
	pos := 0
	forBox(func(idx []int) {
		want := a0.Get(tFinal, idx...)
		if verr == nil {
			if diff, ok := valueDiff(got[pos], want); !ok || diff > 0 && !withinTolerance(diff, got[pos], want, vp.Tolerance) {
				verr = &VerifyError{
					Segment: segIdx,
					Step:    s.stepsRun + n,
					Index:   append([]int(nil), idx...),
					Diff:    diff,
					Detail:  fmt.Sprintf("got %v, want %v", got[pos], want),
				}
			}
		}
		pos++
	})
	if err := s.Restore(cpEnd); err != nil {
		return fmt.Errorf("pochoir: shadow verify resume: %w", err)
	}
	if verr != nil {
		// The run is rolled back to the segment's start so the supervisor's
		// retry recomputes the corrupted segment.
		s.poisoned = true
	}
	return verr
}

// valueDiff returns the absolute difference of two element values when they
// are a known numeric type. For non-numeric element types it falls back to
// deep equality, reporting 0 for equal and ok=false for different.
func valueDiff[T any](got, want T) (diff float64, ok bool) {
	g, gok := toFloat(got)
	w, wok := toFloat(want)
	if gok && wok {
		if g == w {
			return 0, true
		}
		return math.Abs(g - w), true
	}
	if reflect.DeepEqual(got, want) {
		return 0, true
	}
	return math.NaN(), false
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int8:
		return float64(x), true
	case int16:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint:
		return float64(x), true
	case uint8:
		return float64(x), true
	case uint16:
		return float64(x), true
	case uint32:
		return float64(x), true
	case uint64:
		return float64(x), true
	}
	return 0, false
}

// withinTolerance applies the verify tolerance both absolutely and relative
// to the larger magnitude; zero tolerance demands exact equality (already
// handled by the diff==0 fast path).
func withinTolerance[T any](diff float64, got, want T, tol float64) bool {
	if tol <= 0 {
		return false
	}
	if diff <= tol {
		return true
	}
	g, _ := toFloat(got)
	w, _ := toFloat(want)
	return diff <= tol*math.Max(math.Abs(g), math.Abs(w))
}
