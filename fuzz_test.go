package pochoir_test

// Randomized whole-engine validation: generate arbitrary stencil shapes
// (random dimensionality, depth, slopes, and cell sets), run them through
// the TRAP and STRAP decompositions with randomized coarsening under both
// periodic and Dirichlet boundaries, and compare against a naive reference
// evaluator that shares nothing with the engine. This is the broadest
// correctness net in the suite: anything the hand-picked benchmarks miss —
// unusual slopes, deep stencils, asymmetric cells, degenerate extents —
// shows up here.

import (
	"math/rand"
	"testing"

	"pochoir"
)

type fuzzCell struct {
	dt int
	dx []int
	w  float64
}

type fuzzStencil struct {
	dims     int
	sizes    []int
	depth    int
	periodic bool
	cells    []fuzzCell // read cells; the write is at t+1, offset 0
	steps    int
}

func genFuzzStencil(rng *rand.Rand) fuzzStencil {
	f := fuzzStencil{
		dims:     1 + rng.Intn(3),
		periodic: rng.Intn(2) == 0,
		depth:    1 + rng.Intn(2),
	}
	f.sizes = make([]int, f.dims)
	for i := range f.sizes {
		f.sizes[i] = 6 + rng.Intn(10*(4-f.dims))
	}
	f.steps = 3 + rng.Intn(12)
	ncells := 2 + rng.Intn(5)
	seen := map[string]bool{}
	// Bound the rejection sampling: low-dimensional shallow stencils have
	// fewer than ncells distinct cells available.
	for tries := 0; len(f.cells) < ncells && tries < 200; tries++ {
		dt := -(1 + rng.Intn(f.depth)) // relative to the write at t+1: dt in [t-depth+1, t]
		dx := make([]int, f.dims)
		for i := range dx {
			// Offsets up to 2 cells, but never exceeding the reach a
			// slope-2 stencil implies for this dt.
			dx[i] = rng.Intn(5) - 2
		}
		key := ""
		for _, v := range append([]int{dt}, dx...) {
			key += string(rune('a'+v+8)) + ","
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		f.cells = append(f.cells, fuzzCell{dt: dt, dx: dx, w: 0.1 + 0.2*rng.Float64()})
	}
	return f
}

// shapeCells renders the stencil as Pochoir shape cells (home first).
func (f fuzzStencil) shapeCells() [][]int {
	cells := [][]int{append([]int{1}, make([]int, f.dims)...)}
	for _, c := range f.cells {
		cells = append(cells, append([]int{1 + c.dt}, c.dx...))
	}
	return cells
}

// reference advances the stencil naively: flat buffers per time step.
func (f fuzzStencil) reference(init [][]float64) []float64 {
	total := 1
	for _, s := range f.sizes {
		total *= s
	}
	// states[k] is the grid at time k.
	states := make([][]float64, f.depth+f.steps)
	for k := 0; k < f.depth; k++ {
		states[k] = append([]float64(nil), init[k]...)
	}
	idx := func(x []int) (int, bool) {
		off := 0
		for i, v := range x {
			if f.periodic {
				v = ((v % f.sizes[i]) + f.sizes[i]) % f.sizes[i]
			} else if v < 0 || v >= f.sizes[i] {
				return 0, false
			}
			off = off*f.sizes[i] + v
		}
		return off, true
	}
	x := make([]int, f.dims)
	nb := make([]int, f.dims)
	for w := f.depth; w < f.depth+f.steps; w++ {
		next := make([]float64, total)
		var rec func(d int)
		rec = func(d int) {
			if d < f.dims {
				for v := 0; v < f.sizes[d]; v++ {
					x[d] = v
					rec(d + 1)
				}
				return
			}
			acc := 0.0
			for _, c := range f.cells {
				for i := range nb {
					nb[i] = x[i] + c.dx[i]
				}
				src := states[w+c.dt] // c.dt relative to write time w... see note below
				if off, ok := idx(nb); ok {
					acc += c.w * src[off]
				}
			}
			off, _ := idx(x)
			next[off] = acc
		}
		rec(0)
		states[w] = next
	}
	return states[f.depth+f.steps-1]
}

func TestFuzzEngineAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	iters := 150
	if testing.Short() {
		iters = 12
	}
	for iter := 0; iter < iters; iter++ {
		f := genFuzzStencil(rng)
		sh, err := pochoir.NewShape(f.dims, f.shapeCells())
		if err != nil {
			t.Fatalf("iter %d: shape rejected: %v (%+v)", iter, err, f)
		}
		if sh.Depth() != f.depth {
			// The random cells may not reach the full depth; accept the
			// inferred one.
			f.depth = sh.Depth()
		}
		total := 1
		for _, s := range f.sizes {
			total *= s
		}
		init := make([][]float64, f.depth)
		for k := range init {
			init[k] = randomGrid(total, int64(1000+iter*10+k))
		}
		want := f.reference(init)

		opts := []pochoir.Options{
			{},
			{Serial: true},
			{Algorithm: 1, Grain: 1},
			{TimeCutoff: 1 + rng.Intn(4), SpaceCutoff: randCutoffs(rng, f.dims), Grain: 1},
		}
		for oi, o := range opts {
			st := pochoir.NewWithOptions[float64](sh, o)
			u := pochoir.MustArray[float64](f.depth, f.sizes...)
			if f.periodic {
				u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
			} else {
				u.RegisterBoundary(pochoir.ZeroBoundary[float64]())
			}
			st.MustRegisterArray(u)
			for k := 0; k < f.depth; k++ {
				if err := u.CopyIn(k, init[k]); err != nil {
					t.Fatal(err)
				}
			}
			cells := f.cells
			kern := func(tt int, x []int) {
				acc := 0.0
				nb := make([]int, len(x))
				for _, c := range cells {
					for i := range nb {
						nb[i] = x[i] + c.dx[i]
					}
					acc += c.w * u.Get(tt+1+c.dt, nb...)
				}
				u.Set(tt+1, acc, x...)
			}
			if err := st.Run(f.steps, kern); err != nil {
				t.Fatalf("iter %d opts %d: %v", iter, oi, err)
			}
			got := make([]float64, total)
			if err := u.CopyOut(f.depth+f.steps-1, got); err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(got, want); d > 1e-11 {
				t.Fatalf("iter %d opts %d (%+v): diff %g\nstencil: %+v",
					iter, oi, o, d, f)
			}
		}
	}
}

func randCutoffs(rng *rand.Rand, dims int) []int {
	out := make([]int, dims)
	for i := range out {
		out[i] = 1 + rng.Intn(12)
	}
	return out
}
