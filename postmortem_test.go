package pochoir_test

// Flight-recorder and post-mortem forensics suite: the always-on black box
// must turn every terminal failure into a parseable pochoir-postmortem/v1
// bundle with a non-empty recent-event window, the failing zoid attributed,
// and the incident served live at /debug/flightz and summarized in /statusz.
// The faultpoint-driven tests are determinism tests: the same armed spec must
// yield a bundle on every run, not just when the scheduler cooperates.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pochoir"
	"pochoir/internal/faultpoint"
	"pochoir/internal/flight"
)

// bundleDir redirects this test's bundles into a private directory and
// clears the process-wide last-incident record so assertions see only what
// the test itself produced.
func bundleDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	t.Setenv(flight.DirEnvVar, dir)
	flight.ResetLastIncident()
	t.Cleanup(flight.ResetLastIncident)
	return dir
}

// bundleFiles lists the post-mortem bundles written into dir.
func bundleFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "postmortem-") && strings.HasSuffix(e.Name(), ".json") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// kindCounts tallies a bundle's event window by kind.
func kindCounts(evs []pochoir.FlightEvent) map[flight.Kind]int {
	m := make(map[flight.Kind]int)
	for _, ev := range evs {
		m[ev.Kind]++
	}
	return m
}

// TestFaultpointFailureWritesBundle is the determinism test of the issue's
// acceptance criteria: a faultpoint-forced kernel panic must always produce
// a parseable bundle whose event window is non-empty and whose cause carries
// the failing zoid.
func TestFaultpointFailureWritesBundle(t *testing.T) {
	const X, Y, steps = 48, 48, 12
	dir := bundleDir(t)
	defer faultpoint.DisarmAll()
	// Fine cutoffs force a deep decomposition so the ring holds a rich
	// window (cuts, bases, the fault trip) by the time the panic lands.
	fine := pochoir.Options{Grain: 1, TimeCutoff: 2, SpaceCutoff: []int{16, 16}}
	faultpoint.Arm(faultpoint.SiteBase, faultpoint.Spec{
		Kind: faultpoint.KindPanic, Depth: faultpoint.AnyDepth, After: 40,
	})
	st, _, kern := heatStencil(t, fine, X, Y, 13)
	if err := st.Run(steps, kern); err == nil {
		t.Fatal("faulted run returned nil")
	}

	files := bundleFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("got %d bundles, want exactly 1: %v", len(files), files)
	}
	b, err := pochoir.ReadPostmortemBundle(files[0])
	if err != nil {
		t.Fatalf("ReadPostmortemBundle: %v", err)
	}
	if b.Schema != flight.Schema {
		t.Fatalf("schema = %q, want %q", b.Schema, flight.Schema)
	}
	if b.Cause.Kind != "kernel-panic" {
		t.Fatalf("cause kind = %q, want kernel-panic", b.Cause.Kind)
	}
	if b.Cause.Zoid == nil || len(b.Cause.Zoid.Lo) != 2 || b.Cause.Zoid.T1 <= b.Cause.Zoid.T0 {
		t.Fatalf("cause zoid not attributed: %+v", b.Cause.Zoid)
	}
	if !strings.Contains(b.Cause.Error, "injected panic") {
		t.Fatalf("cause error %q does not name the injected fault", b.Cause.Error)
	}
	if len(b.Events) == 0 {
		t.Fatal("bundle event window is empty")
	}
	if b.TotalEvents < uint64(len(b.Events)) {
		t.Fatalf("TotalEvents %d < window %d", b.TotalEvents, len(b.Events))
	}
	counts := kindCounts(b.Events)
	if counts[flight.EvBase] == 0 || counts[flight.EvCut] == 0 {
		t.Fatalf("window missing decomposition events: %v", counts)
	}
	if counts[flight.EvFault] == 0 {
		t.Fatalf("window missing the faultpoint trip: %v", counts)
	}
	if counts[flight.EvPanic] == 0 {
		t.Fatalf("window missing the panic marker: %v", counts)
	}
	if b.Run.NDims != 2 || b.Run.Supervised {
		t.Fatalf("run info wrong: %+v", b.Run)
	}
	if b.Host.PID != os.Getpid() {
		t.Fatalf("host PID = %d, want %d", b.Host.PID, os.Getpid())
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Fatal("goroutine dump missing")
	}
	// Every event must render; Describe is what cmd/blackbox prints.
	for _, ev := range b.Events {
		if ev.Describe() == "" {
			t.Fatalf("event %+v renders empty", ev)
		}
	}
	inc := pochoir.LastIncident()
	if inc == nil || inc.Path != files[0] || inc.Bundle == nil {
		t.Fatalf("LastIncident = %+v, want in-memory bundle at %s", inc, files[0])
	}
	if inc.Cause.Kind != "kernel-panic" {
		t.Fatalf("incident cause = %q", inc.Cause.Kind)
	}
}

// TestNoFlightRecorderSkipsBundle: opting out disables both recording and
// automatic bundles.
func TestNoFlightRecorderSkipsBundle(t *testing.T) {
	const X, Y, steps = 32, 32, 8
	dir := bundleDir(t)
	defer faultpoint.DisarmAll()
	faultpoint.Arm(faultpoint.SiteBase, faultpoint.Spec{
		Kind: faultpoint.KindPanic, Depth: faultpoint.AnyDepth, After: 2,
	})
	st, _, kern := heatStencil(t, pochoir.Options{NoFlightRecorder: true, Grain: 1, TimeCutoff: 2, SpaceCutoff: []int{16, 16}}, X, Y, 5)
	if err := st.Run(steps, kern); err == nil {
		t.Fatal("faulted run returned nil")
	}
	if files := bundleFiles(t, dir); len(files) != 0 {
		t.Fatalf("bundle written despite NoFlightRecorder: %v", files)
	}
	if inc := pochoir.LastIncident(); inc != nil {
		t.Fatalf("incident published despite NoFlightRecorder: %+v", inc)
	}
}

// TestPrivateRecorderCapturesRunLifecycle: an explicit Options.FlightRecorder
// isolates the black box, and a healthy run brackets its window with
// run-start/run-end markers.
func TestPrivateRecorderCapturesRunLifecycle(t *testing.T) {
	const X, Y, steps = 32, 32, 4
	fr := pochoir.NewFlightRecorder(256)
	st, _, kern := heatStencil(t, pochoir.Options{FlightRecorder: fr}, X, Y, 3)
	if err := st.Run(steps, kern); err != nil {
		t.Fatal(err)
	}
	if fr.TotalRecorded() == 0 {
		t.Fatal("private recorder saw no events")
	}
	counts := kindCounts(fr.Snapshot())
	if counts[flight.EvRunStart] != 1 || counts[flight.EvRunEnd] != 1 {
		t.Fatalf("run lifecycle not bracketed: %v", counts)
	}
	if counts[flight.EvBase] == 0 {
		t.Fatalf("no base-case events: %v", counts)
	}
	evs := fr.Snapshot()
	last := evs[len(evs)-1]
	if last.Kind != flight.EvRunEnd || last.A0 != 0 {
		t.Fatalf("last event = %+v, want successful EvRunEnd", last)
	}
}

// TestSupervisedGiveUpBundleIncludesReport: a supervised run that exhausts
// its retry budget writes exactly one bundle — the supervisor's terminal
// give-up, not one per attempt — and embeds the decision log.
func TestSupervisedGiveUpBundleIncludesReport(t *testing.T) {
	const X, Y, steps = 32, 32, 8
	dir := bundleDir(t)
	st, _, _ := heatStencil(t, pochoir.Options{Grain: 1}, X, Y, 9)
	// A kernel that always panics defeats every rung of the degradation
	// ladder, forcing the supervisor to give up.
	bad := pochoir.K2(func(tt, x, y int) { panic("always broken") })
	rep, err := st.RunSupervised(context.Background(), steps, bad, pochoir.SupervisePolicy{
		SegmentSteps: 4,
		MaxAttempts:  2,
		BaseDelay:    time.Microsecond,
		MaxDelay:     10 * time.Microsecond,
	})
	if err == nil {
		t.Fatal("doomed supervised run returned nil")
	}
	if rep == nil || len(rep.Events) == 0 {
		t.Fatal("no supervisor report")
	}
	files := bundleFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("got %d bundles, want exactly 1 (terminal give-up only): %v", len(files), files)
	}
	b, rerr := pochoir.ReadPostmortemBundle(files[0])
	if rerr != nil {
		t.Fatal(rerr)
	}
	if b.Cause.Kind != "kernel-panic" {
		t.Fatalf("cause = %q, want kernel-panic", b.Cause.Kind)
	}
	if !b.Run.Supervised {
		t.Fatal("bundle not marked supervised")
	}
	if len(b.Supervisor) == 0 {
		t.Fatal("bundle missing the supervisor section")
	}
	var gotRep pochoir.RunReport
	if err := json.Unmarshal(b.Supervisor, &gotRep); err != nil {
		t.Fatalf("supervisor section does not round-trip: %v", err)
	}
	if len(gotRep.Events) != len(rep.Events) {
		t.Fatalf("decision log truncated: %d != %d", len(gotRep.Events), len(rep.Events))
	}
	if gotRep.Err == nil {
		t.Fatal("report error lost in the bundle")
	}
	counts := kindCounts(b.Events)
	if counts[flight.EvSup] == 0 {
		t.Fatalf("window missing supervisor events: %v", counts)
	}
}

// TestMonitorServesLastIncident: after a failure, /debug/flightz serves the
// full bundle and /statusz carries the last_incident summary.
func TestMonitorServesLastIncident(t *testing.T) {
	const X, Y, steps = 32, 32, 8
	bundleDir(t)
	defer faultpoint.DisarmAll()

	reg := pochoir.NewMetrics()
	mon, err := pochoir.ServeMonitor("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	get := func(path string, wantStatus int) []byte {
		t.Helper()
		resp, err := http.Get(mon.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantStatus)
		}
		var buf strings.Builder
		if _, err := io.Copy(&buf, resp.Body); err != nil {
			t.Fatal(err)
		}
		return []byte(buf.String())
	}

	// Before any incident the endpoint 404s with a JSON body.
	body := get("/debug/flightz", http.StatusNotFound)
	if !strings.Contains(string(body), "no incident recorded") {
		t.Fatalf("empty-incident body = %s", body)
	}

	faultpoint.Arm(faultpoint.SiteBase, faultpoint.Spec{
		Kind: faultpoint.KindPanic, Depth: faultpoint.AnyDepth, After: 2,
	})
	st, _, kern := heatStencil(t, pochoir.Options{Grain: 1, TimeCutoff: 2, SpaceCutoff: []int{16, 16}, Metrics: reg}, X, Y, 7)
	if err := st.Run(steps, kern); err == nil {
		t.Fatal("faulted run returned nil")
	}
	faultpoint.DisarmAll()

	var b pochoir.PostmortemBundle
	if err := json.Unmarshal(get("/debug/flightz", http.StatusOK), &b); err != nil {
		t.Fatalf("flightz did not serve a bundle: %v", err)
	}
	if b.Schema != flight.Schema || b.Cause.Kind != "kernel-panic" || len(b.Events) == 0 {
		t.Fatalf("served bundle wrong: schema=%q cause=%q events=%d", b.Schema, b.Cause.Kind, len(b.Events))
	}

	var status struct {
		LastIncident *flight.IncidentSummary `json:"last_incident"`
	}
	if err := json.Unmarshal(get("/statusz", http.StatusOK), &status); err != nil {
		t.Fatal(err)
	}
	if status.LastIncident == nil {
		t.Fatal("statusz missing last_incident")
	}
	if status.LastIncident.Cause != "kernel-panic" || status.LastIncident.Path == "" {
		t.Fatalf("last_incident = %+v", status.LastIncident)
	}
}
