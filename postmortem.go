package pochoir

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"

	"pochoir/internal/flight"
	"pochoir/internal/profile"
	"pochoir/internal/trace"
)

// FlightRecorder is the always-on black-box recorder: a bounded,
// per-worker-sharded ring buffer of recent execution events (cuts, base-case
// entries, engine transitions, supervisor decisions, faultpoint trips,
// cancellation and panic markers) that every run appends to through a
// lock-free write path. Unlike Options.Telemetry it is cheap enough to leave
// enabled everywhere; it is only ever read when a run dies, at which point
// its frozen window becomes the core of the post-mortem bundle. See
// Options.FlightRecorder.
type FlightRecorder = flight.Recorder

// FlightEvent is one decoded flight-recorder entry; FlightEvent.Describe
// renders it as a log line.
type FlightEvent = flight.Event

// PostmortemBundle is the schema-versioned ("pochoir-postmortem/v1") crash
// artifact written automatically on any terminal failure: the merged
// time-ordered recent event window, the failure cause with zoid attribution,
// run geometry, telemetry and metrics snapshots, the supervisor decision
// log, a goroutine dump, and host + commit provenance. cmd/blackbox loads
// and renders these.
type PostmortemBundle = flight.Bundle

// PostmortemCause classifies the terminal failure of a bundle.
type PostmortemCause = flight.Cause

// Incident is the in-memory record of this process's most recent
// post-mortem bundle; the monitor serves it at /debug/flightz and summarizes
// it under last_incident in /statusz.
type Incident = flight.Incident

// NewFlightRecorder creates a private flight recorder with ringSize events
// per worker lane (<= 0 selects flight.DefaultRing); pass it via
// Options.FlightRecorder to isolate a stencil's black box from the
// process-wide one.
func NewFlightRecorder(ringSize int) *FlightRecorder { return flight.New(ringSize) }

// DefaultFlightRecorder returns the process-wide always-on recorder, or nil
// when disabled with POCHOIR_FLIGHT=off.
func DefaultFlightRecorder() *FlightRecorder { return flight.Default() }

// LastIncident returns the most recent post-mortem incident of this
// process, or nil if no run has failed.
func LastIncident() *Incident { return flight.LastIncident() }

// ReadPostmortemBundle loads and validates a bundle written by a previous
// failure (see flight.ReportIncident for where they are written).
func ReadPostmortemBundle(path string) (*PostmortemBundle, error) {
	return flight.ReadBundle(path)
}

// flightRecorder resolves the black-box recorder in effect for this
// stencil: an explicit Options.FlightRecorder wins, then a stencil-private
// recorder sized by Options.FlightRing, then the process-wide default.
// NoFlightRecorder (or POCHOIR_FLIGHT=off) resolves to nil, which disables
// both recording and automatic bundles — nil is safe everywhere downstream.
func (s *Stencil[T]) flightRecorder() *flight.Recorder {
	if s.opts.NoFlightRecorder {
		return nil
	}
	if s.opts.FlightRecorder != nil {
		return s.opts.FlightRecorder
	}
	if s.opts.FlightRing > 0 {
		if s.flightRec == nil {
			s.flightRec = flight.New(s.opts.FlightRing)
		}
		return s.flightRec
	}
	return flight.Default()
}

// classifyCause maps a terminal run error onto the bundle cause taxonomy.
// Kernel panics carry the failing zoid; the other kinds are matched through
// errors.As/Is so wrapping never hides them.
func classifyCause(err error) flight.Cause {
	c := flight.Cause{Kind: "error", Error: err.Error()}
	var kp *KernelPanicError
	var ve *VerifyError
	var ep *EnginePanicError
	switch {
	case errors.As(err, &kp):
		c.Kind = "kernel-panic"
		z := kp.Zoid
		c.Zoid = &flight.ZoidInfo{
			T0: z.T0, T1: z.T1,
			Lo: append([]int(nil), z.Lo[:z.N]...),
			Hi: append([]int(nil), z.Hi[:z.N]...),
		}
	case errors.As(err, &ve):
		c.Kind = "verify-mismatch"
	case errors.As(err, &ep):
		c.Kind = "engine-panic"
	case errors.Is(err, context.Canceled):
		c.Kind = "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		c.Kind = "deadline"
	case errors.Is(err, ErrPoisoned):
		c.Kind = "poisoned"
	}
	return c
}

// writePostmortem assembles and publishes the post-mortem bundle for a
// terminal failure: the rings are frozen so the incident window survives the
// dump, every armed diagnostic layer contributes its section, and the bundle
// is written to the diagnostics directory (POCHOIR_POSTMORTEM_DIR, default
// under the OS temp dir; "off" keeps it in memory only). Failures here are
// deliberately swallowed — post-mortem capture must never mask the run's own
// error. rep is the supervisor report of a supervised run, nil otherwise.
func (s *Stencil[T]) writePostmortem(err error, rep *RunReport) {
	fr := s.flightRecorder()
	if fr == nil {
		return
	}
	fr.Freeze()
	defer fr.Unfreeze()
	b := &flight.Bundle{
		Cause: classifyCause(err),
		Host:  flight.CollectHost(),
		Run: flight.RunInfo{
			NDims:      s.shape.NDims,
			Sizes:      s.Sizes(),
			StepsRun:   s.stepsRun,
			Algorithm:  s.opts.Algorithm.String(),
			Supervised: rep != nil,
		},
		TotalEvents: fr.TotalRecorded(),
		Lanes:       fr.Lanes(),
		Events:      fr.Snapshot(),
		Goroutines:  flight.CaptureGoroutines(),
	}
	if st := s.lastStats; st != nil {
		if data, jerr := json.Marshal(st.Summary()); jerr == nil {
			b.RunStats = data
		}
	}
	if reg := s.opts.Metrics; reg != nil {
		if data, jerr := json.Marshal(reg.Snapshot()); jerr == nil {
			b.Metrics = data
		}
	}
	if tr := s.opts.Trace; tr != nil {
		// Snapshot the live trace — it may never be finalized (the job
		// layer above decides that), but the incident's span tree down to
		// the failing attempt belongs in the bundle, and /statusz links the
		// ID at /tracez/<id>.
		if snap := tr.Snapshot(); snap != nil {
			b.TraceID = snap.ID.String()
			if data, jerr := trace.MarshalExport(snap); jerr == nil {
				b.Trace = data
			}
		}
	}
	if p := profile.Global(); p != nil {
		// The process-wide continuous profiler (installed by the gateway)
		// contributes the incident window's CPU attribution.
		if agg := p.Aggregate(); agg != nil {
			if data, jerr := json.Marshal(agg); jerr == nil {
				b.Profile = data
			}
		}
	}
	if rep != nil {
		if data, jerr := json.Marshal(rep); jerr == nil {
			b.Supervisor = data
		}
		if rep.LastSpillPath != "" {
			// The run had durable spilling on: point the bundle at the
			// newest durable checkpoint so the operator (or cmd/blackbox)
			// knows exactly where a fresh process resumes from.
			b.Resume = &flight.ResumeHint{
				Dir:  filepath.Dir(rep.LastSpillPath),
				Path: rep.LastSpillPath,
				Step: rep.LastSpillStep,
			}
		}
	}
	_, _ = flight.ReportIncident(b, "")
}
