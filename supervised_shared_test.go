package pochoir_test

// Shared-infrastructure supervision suite: many concurrent RunSupervised
// jobs — the serving gateway's steady state — funneled through ONE metrics
// registry and ONE flight recorder, under -race. The instruments are
// designed for exactly this (atomic counters, lock-free seqlock rings,
// per-run progress entries keyed by label), and this test is the executable
// proof: no data race, no cross-talk between jobs' results, a parseable
// exposition afterwards, and a deadline-cancelled job failing cleanly while
// its neighbours finish.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pochoir"
)

func TestSupervisedConcurrentSharedRegistry(t *testing.T) {
	const X, Y, steps = 48, 48, 24
	reg := pochoir.NewMetrics()
	fr := pochoir.NewFlightRecorder(4096)

	// Reference checksums, one per seed, computed serially and unshared.
	want := make(map[int64][]float64)
	for seed := int64(0); seed < 4; seed++ {
		want[seed] = unfaultedHeat2D(t, pochoir.Options{}, X, Y, steps, seed)
	}

	var wg sync.WaitGroup
	errs := make([]error, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 4 {
				// The fifth job is cancelled by a deadline it cannot meet;
				// it must fail with context.DeadlineExceeded and must not
				// disturb the other four.
				st, _, kern := heatStencil(t, pochoir.Options{
					Metrics:        reg,
					FlightRecorder: fr,
					ProgressLabel:  "job-deadline",
				}, 128, 128, 99)
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
				defer cancel()
				_, err := st.RunSupervised(ctx, 20000, kern, pochoir.SupervisePolicy{SegmentSteps: 4})
				if err == nil {
					errs[i] = errors.New("20000-step run beat a 5ms deadline")
				} else if !errors.Is(err, context.DeadlineExceeded) {
					errs[i] = fmt.Errorf("deadline job failed with %v, want DeadlineExceeded", err)
				}
				return
			}
			seed := int64(i)
			st, u, kern := heatStencil(t, pochoir.Options{
				Metrics:        reg,
				FlightRecorder: fr,
				ProgressLabel:  fmt.Sprintf("job-%d", i),
			}, X, Y, seed)
			rep, err := st.RunSupervised(context.Background(), steps, kern,
				pochoir.SupervisePolicy{SegmentSteps: 8})
			if err != nil {
				errs[i] = err
				return
			}
			if rep.StepsDone != steps {
				errs[i] = fmt.Errorf("job %d: %d steps done, want %d", i, rep.StepsDone, steps)
				return
			}
			got := make([]float64, X*Y)
			if err := u.CopyOut(steps, got); err != nil {
				errs[i] = err
				return
			}
			for k := range got {
				if got[k] != want[seed][k] {
					errs[i] = fmt.Errorf("job %d diverged from its serial reference at %d", i, k)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}

	// The shared registry survived five concurrent writers: the exposition
	// still parses and each job's progress entry is distinguishable by its
	// per-job label.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := pochoir.CheckMetricsExposition(buf.Bytes()); err != nil {
		t.Fatalf("shared exposition corrupted: %v", err)
	}
	seen := map[string]bool{}
	for _, p := range reg.ProgressSnapshot() {
		seen[p.Label] = true
	}
	for _, label := range []string{"job-0", "job-1", "job-2", "job-3", "job-deadline"} {
		if !seen[label] {
			t.Errorf("no progress entry labelled %q in the shared registry", label)
		}
	}
	if fr.TotalRecorded() == 0 {
		t.Fatal("shared flight recorder saw no events")
	}
}
