package pochoir

import (
	"pochoir/internal/trace"
)

// Tracer is the causal tracer behind end-to-end job tracing: 128-bit W3C
// trace IDs, span trees from admission through every supervised segment
// attempt, tail-based sampling (errors, sheds, deadline blowouts, and the
// slowest tail are always kept), and a bounded retained store served at
// /tracez. See internal/trace for the recording design.
type Tracer = trace.Tracer

// TracerConfig tunes a Tracer; the zero value gets sensible defaults
// (256 retained traces, 5% probabilistic keep, p99 tail keep).
type TracerConfig = trace.Config

// ActiveTrace is one in-flight trace: the handle spans are recorded
// against. All methods are nil-safe, so an untraced run passes nil around
// freely.
type ActiveTrace = trace.Active

// TraceContext is the W3C propagation pair (trace ID + parent span),
// parsed from and rendered to `traceparent` headers.
type TraceContext = trace.Context

// TraceSpanID identifies one span within a trace.
type TraceSpanID = trace.SpanID

// NewTracer creates a causal tracer; pass it to the serving gateway
// (gateway.Config.Trace) or drive it directly via StartTrace for library
// use.
func NewTracer(cfg TracerConfig) *Tracer { return trace.New(cfg) }

// ParseTraceparent decodes a W3C traceparent header value; the empty
// string decodes to the zero context (no trace).
func ParseTraceparent(s string) (TraceContext, error) { return trace.ParseTraceparent(s) }
