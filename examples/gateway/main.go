// Gateway: stencil-as-a-service end to end, in one process. The program
// starts the serving gateway on an ephemeral port (the same engine behind
// cmd/pochoird), then plays a client against it over real HTTP:
//
//  1. submits a heat-kernel job and waits for its checksum;
//  2. submits the identical job twice while it is in flight and shows the
//     second submission coalescing onto the first — one execution, two
//     callers;
//  3. bursts far past queue capacity and counts the 429 + Retry-After
//     sheds — overload is refused, never buffered without bound;
//  4. scrapes the gateway's own /metrics for the job counters;
//  5. drains gracefully, the SIGTERM path of the daemon.
//
// Run from the repository root with:
//
//	go run ./examples/gateway
//
// For the long-running daemon itself, see cmd/pochoird.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"pochoir/internal/gateway"
)

const spec = `stencil heat { dims: 1; array u; boundary u: periodic;
kernel { u(t+1,x) = 0.25*u(t,x-1) + 0.5*u(t,x) + 0.25*u(t,x+1); } }`

func post(base string, sub gateway.Submission) (int, *gateway.JobStatus, string) {
	body, _ := json.Marshal(sub)
	req, _ := http.NewRequest("POST", base+"/jobs", bytes.NewReader(body))
	req.Header.Set("X-Tenant", "example")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var shed struct {
			Reason string `json:"reason"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&shed)
		return resp.StatusCode, nil, resp.Header.Get("Retry-After")
	}
	var st gateway.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return resp.StatusCode, &st, ""
}

func wait(base, id string) *gateway.JobStatus {
	for {
		resp, err := http.Get(base + "/jobs/" + id + "?wait_ms=2000")
		if err != nil {
			log.Fatal(err)
		}
		var st gateway.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if st.State == gateway.StateDone || st.State == gateway.StateFailed {
			return &st
		}
	}
}

func main() {
	g := gateway.New(gateway.Config{
		Workers:             2,
		QueueDepth:          4,
		TenantBurst:         1000,
		TenantMaxConcurrent: 1000,
	})
	srv, err := gateway.Serve("127.0.0.1:0", g)
	if err != nil {
		log.Fatal(err)
	}
	base := srv.URL()
	fmt.Printf("gateway listening on %s\n\n", base)

	// 1. One job, submit to checksum.
	_, st, _ := post(base, gateway.Submission{Spec: spec, Sizes: []int{4096}, Steps: 256, Seed: 1})
	fin := wait(base, st.ID)
	fmt.Printf("job %s: %s in %.0fms, checksum %s\n", fin.ID, fin.State, fin.RunSeconds*1000, fin.Checksum)

	// 2. Coalescing: identical submissions while the first is in flight.
	long := gateway.Submission{Spec: spec, Sizes: []int{1 << 14}, Steps: 400, Seed: 2}
	_, first, _ := post(base, long)
	_, second, _ := post(base, long)
	fmt.Printf("identical resubmission joined job %s (coalesced=%d, same id: %v)\n",
		second.ID, second.Coalesced, second.ID == first.ID)
	wait(base, first.ID)

	// 3. Overload: saturate the pool (2 workers) and the queue (4 slots)
	// with slow jobs, then burst — the excess must shed with 429, never
	// buffer without bound.
	for i := 0; i < 6; i++ {
		post(base, gateway.Submission{Spec: spec, Sizes: []int{512}, Steps: 4000, Seed: int64(10 + i)})
	}
	accepted, shed := 0, 0
	retryAfter := ""
	for i := 0; i < 12; i++ {
		code, _, ra := post(base, gateway.Submission{Spec: spec, Sizes: []int{512}, Steps: 32, Seed: int64(100 + i)})
		if code == http.StatusAccepted {
			accepted++
		} else {
			shed++
			retryAfter = ra
		}
	}
	fmt.Printf("burst of 12 at a full queue: %d accepted, %d shed with 429 (Retry-After: %ss)\n", accepted, shed, retryAfter)

	// 4. Self-scrape: the gateway's own counters from its own listener.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "pochoir_gateway_jobs_") && !strings.HasPrefix(line, "#") {
			fmt.Printf("  %s\n", line)
		}
	}

	// 5. Graceful drain — what SIGTERM does to cmd/pochoird.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum := g.Drain(ctx)
	fmt.Printf("drained: %d completed, %d failed, timed out: %v\n", sum.Completed, sum.Failed, sum.TimedOut)
	_ = srv.Close()
}
