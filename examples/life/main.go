// Life: Conway's Game of Life on a torus through the Pochoir API — the
// paper's "Life 2p" benchmark as a runnable demo. A glider cruises across
// a small board (printed), then a large random board is timed against a
// straightforward loop implementation.
//
// Run with:
//
//	go run ./examples/life
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pochoir"
)

func lifeShape() *pochoir.Shape {
	cells := [][]int{{1, 0, 0}, {0, 0, 0}}
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			if dx != 0 || dy != 0 {
				cells = append(cells, []int{0, dx, dy})
			}
		}
	}
	return pochoir.MustShape(2, cells)
}

func newBoard(n int) (*pochoir.Stencil[uint8], *pochoir.Array[uint8], pochoir.Kernel) {
	sh := lifeShape()
	st := pochoir.New[uint8](sh)
	u := pochoir.MustArray[uint8](sh.Depth(), n, n)
	u.RegisterBoundary(pochoir.PeriodicBoundary[uint8]())
	st.MustRegisterArray(u)
	kern := pochoir.K2(func(t, x, y int) {
		nbrs := u.Get(t, x-1, y-1) + u.Get(t, x-1, y) + u.Get(t, x-1, y+1) +
			u.Get(t, x, y-1) + u.Get(t, x, y+1) +
			u.Get(t, x+1, y-1) + u.Get(t, x+1, y) + u.Get(t, x+1, y+1)
		alive := uint8(0)
		if nbrs == 3 || (nbrs == 2 && u.Get(t, x, y) == 1) {
			alive = 1
		}
		u.Set(t+1, alive, x, y)
	})
	return st, u, kern
}

func show(u *pochoir.Array[uint8], t, n int) {
	for x := 0; x < n; x++ {
		row := make([]byte, n)
		for y := 0; y < n; y++ {
			row[y] = '.'
			if u.Get(t, x, y) == 1 {
				row[y] = '#'
			}
		}
		fmt.Println(string(row))
	}
	fmt.Println()
}

func main() {
	// Part 1: a glider, generation by generation.
	const n = 10
	st, u, kern := newBoard(n)
	for _, p := range [][2]int{{1, 2}, {2, 3}, {3, 1}, {3, 2}, {3, 3}} {
		u.Set(0, 1, p[0], p[1])
	}
	fmt.Println("glider, generation 0:")
	show(u, 0, n)
	for g := 0; g < 2; g++ {
		if err := st.Run(4, kern); err != nil { // Run resumes (§2)
			log.Fatal(err)
		}
		fmt.Printf("generation %d (translated one cell diagonally per 4 gens):\n", (g+1)*4)
		show(u, (g+1)*4, n)
	}

	// Part 2: timing on a large random torus vs a plain loop nest, using
	// the Phase-2 path: hand-specialized interior and boundary clones (the
	// code shape the Pochoir compiler generates).
	const big, steps = 1024, 64
	stB, uB, _ := newBoard(big)
	rng := rand.New(rand.NewSource(7))
	cur := make([]uint8, big*big)
	for i := range cur {
		if rng.Float64() < 0.35 {
			cur[i] = 1
		}
	}
	if err := uB.CopyIn(0, cur); err != nil {
		log.Fatal(err)
	}
	rule := func(c, n uint8) uint8 {
		if n == 3 || (n == 2 && c == 1) {
			return 1
		}
		return 0
	}
	interior := func(z pochoir.Zoid) {
		lo0, hi0 := z.Lo[0], z.Hi[0]
		lo1, hi1 := z.Lo[1], z.Hi[1]
		for t := z.T0; t < z.T1; t++ {
			w, r := uB.Slot(t), uB.Slot(t-1)
			for x := lo0; x < hi0; x++ {
				base := x * big
				dst := w[base+lo1 : base+hi1]
				up := r[base-big+lo1-1:]
				mid := r[base+lo1-1:]
				dn := r[base+big+lo1-1:]
				for i := range dst {
					n := up[i] + up[i+1] + up[i+2] + mid[i] + mid[i+2] +
						dn[i] + dn[i+1] + dn[i+2]
					dst[i] = rule(mid[i+1], n)
				}
			}
			lo0 += z.DLo[0]
			hi0 += z.DHi[0]
			lo1 += z.DLo[1]
			hi1 += z.DHi[1]
		}
	}
	wrap := func(v int) int { return ((v % big) + big) % big }
	boundary := func(z pochoir.Zoid) {
		lo0, hi0 := z.Lo[0], z.Hi[0]
		lo1, hi1 := z.Lo[1], z.Hi[1]
		for t := z.T0; t < z.T1; t++ {
			w, r := uB.Slot(t), uB.Slot(t-1)
			for x := lo0; x < hi0; x++ {
				tx := wrap(x)
				row, rowM, rowP := tx*big, wrap(tx-1)*big, wrap(tx+1)*big
				for y := lo1; y < hi1; y++ {
					ty := wrap(y)
					ym, yp := wrap(ty-1), wrap(ty+1)
					n := r[rowM+ym] + r[rowM+ty] + r[rowM+yp] +
						r[row+ym] + r[row+yp] +
						r[rowP+ym] + r[rowP+ty] + r[rowP+yp]
					w[row+ty] = rule(r[row+ty], n)
				}
			}
			lo0 += z.DLo[0]
			hi0 += z.DHi[0]
			lo1 += z.DLo[1]
			hi1 += z.DHi[1]
		}
	}
	start := time.Now()
	if err := stB.RunSpecialized(steps, pochoir.BaseKernels{Interior: interior, Boundary: boundary}); err != nil {
		log.Fatal(err)
	}
	pochoirTime := time.Since(start)

	// Loop baseline with modular indexing.
	next := make([]uint8, big*big)
	start = time.Now()
	for t := 0; t < steps; t++ {
		for x := 0; x < big; x++ {
			xm, xp := (x-1+big)%big, (x+1)%big
			for y := 0; y < big; y++ {
				ym, yp := (y-1+big)%big, (y+1)%big
				nbrs := cur[xm*big+ym] + cur[xm*big+y] + cur[xm*big+yp] +
					cur[x*big+ym] + cur[x*big+yp] +
					cur[xp*big+ym] + cur[xp*big+y] + cur[xp*big+yp]
				alive := uint8(0)
				if nbrs == 3 || (nbrs == 2 && cur[x*big+y] == 1) {
					alive = 1
				}
				next[x*big+y] = alive
			}
		}
		cur, next = next, cur
	}
	loopTime := time.Since(start)

	// Cross-check populations.
	popP, popL := 0, 0
	for x := 0; x < big; x++ {
		for y := 0; y < big; y++ {
			popP += int(uB.Get(steps, x, y))
			popL += int(cur[x*big+y])
		}
	}
	fmt.Printf("%dx%d torus, %d generations: pochoir %v, loops %v (%.1fx)\n",
		big, big, steps, pochoirTime, loopTime, loopTime.Seconds()/pochoirTime.Seconds())
	fmt.Printf("final population: pochoir %d, loops %d\n", popP, popL)
	if popP != popL {
		log.Fatal("population mismatch between implementations")
	}
	fmt.Println("ok")
}
