// Durable checkpoints: a run that survives its own process.
//
// SupervisePolicy.SpillDir makes the supervisor persist every segment
// checkpoint to a crash-safe journal: the versioned binary wire format
// (pochoir-checkpoint/v1) is written to a temp file, fsynced, and renamed
// into place, so a crash mid-write can never corrupt an older entry. A
// fresh process then calls ResumeSupervised on the same directory: the
// newest CRC-valid entry is decoded and restored, torn or corrupted tails
// are skipped, and only the remaining time steps are recomputed.
//
// This example runs Heat 2D under a kernel that becomes persistently
// broken at 60% progress. The supervisor exhausts its retries and gives
// up — as a real process would if it were OOM-killed or lost power — but
// the journal keeps the checkpoints it spilled on the way. A second,
// fresh stencil resumes from the journal with a healthy kernel and
// finishes the run; the result is bit-identical to an uninterrupted
// reference run.
//
// Run with:
//
//	go run ./examples/durable
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pochoir"
)

const (
	X, Y  = 128, 128
	T     = 48
	cx_   = 0.125
	cy_   = 0.125
	crash = T * 6 / 10
)

func newHeat() (*pochoir.Stencil[float64], *pochoir.Array[float64]) {
	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	st := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	st.MustRegisterArray(u)
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			u.Set(0, float64((x*31+y*17)%97)/97, x, y)
		}
	}
	return st, u
}

func heatKernel(u *pochoir.Array[float64], broken bool) pochoir.Kernel {
	return pochoir.K2(func(t, x, y int) {
		if broken && t >= crash && x == X/2 && y == Y/2 {
			panic("power supply browning out") // persistent: retries can't help
		}
		c := u.Get(t, x, y)
		u.Set(t+1, c+
			cx_*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
			cy_*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
	})
}

func main() {
	dir, err := os.MkdirTemp("", "pochoir-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Reference: the uninterrupted run this whole dance must reproduce.
	ref, refU := newHeat()
	if err := ref.Run(T, heatKernel(refU, false)); err != nil {
		log.Fatal(err)
	}

	// Act I: a spilling run that dies at 60% progress. MaxAttempts is kept
	// low and the degradation ladder cut to a single rung so the persistent
	// fault actually kills the process-equivalent instead of being walked
	// around (the kernel itself is broken, so no engine could save it —
	// the short ladder just makes the give-up fast).
	fmt.Printf("act I: supervised run with SpillDir=%s, kernel breaks at step %d\n", dir, crash)
	first, firstU := newHeat()
	rep, err := first.RunSupervised(context.Background(), T, heatKernel(firstU, true),
		pochoir.SupervisePolicy{
			SegmentSteps: 6,
			MaxAttempts:  2,
			Ladder:       []pochoir.SupervisorEngine{pochoir.EngineFull},
			SpillDir:     dir,
		})
	if err == nil {
		log.Fatal("expected the broken kernel to defeat supervision")
	}
	fmt.Printf("  run died as designed: %v\n", err)
	if rep != nil {
		fmt.Printf("  journal holds the progress: %d spills, %d bytes, newest at step %d (%s)\n",
			rep.Spills, rep.SpillBytes, rep.LastSpillStep, rep.LastSpillPath)
	}

	entries, err := pochoir.ListSpillJournal(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n  journal contents:")
	for _, e := range entries {
		fmt.Printf("    step %4d  %7d bytes  %s\n", e.Steps, e.Bytes, e.Path)
	}

	// Act II: a fresh stencil — think "new process after the crash" — with
	// a healthy kernel resumes from the newest good entry and finishes.
	fmt.Println("\nact II: fresh stencil resumes from the journal")
	second, secondU := newHeat()
	rep2, err := second.ResumeSupervised(context.Background(), T, heatKernel(secondU, false),
		pochoir.SupervisePolicy{SegmentSteps: 6, SpillDir: dir})
	if err != nil {
		log.Fatalf("resume failed: %v", err)
	}
	fmt.Printf("  recomputed only %d of %d steps\n", rep2.StepsDone, T)
	fmt.Println("\n  supervisor decision log:")
	for _, ev := range rep2.Events {
		fmt.Printf("    %s\n", ev)
	}

	// The resumed grid must be bit-identical to the uninterrupted one.
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			if got, want := secondU.Get(T, x, y), refU.Get(T, x, y); got != want {
				log.Fatalf("divergence at (%d,%d): resumed %v, reference %v", x, y, got, want)
			}
		}
	}
	fmt.Printf("\nresumed result is bit-identical to the uninterrupted %d-step run\n", T)
}
