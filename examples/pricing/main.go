// Pricing: American put option valuation by explicit finite differences —
// the paper's APOP benchmark as a standalone application. Demonstrates a
// kernel with a per-point max (the early-exercise condition), a
// time-dependent Dirichlet boundary function, and resuming Run.
//
// Run with:
//
//	go run ./examples/pricing
package main

import (
	"fmt"
	"log"
	"math"

	"pochoir"
)

const (
	strike = 100.0
	sigma  = 0.3
	rate   = 0.05
	nGrid  = 20000
	halfW  = 4.0
)

func main() {
	x0 := math.Log(strike) - halfW
	dx := 2 * halfW / float64(nGrid-1)
	dt := 0.8 * dx * dx / (sigma * sigma) // explicit-scheme stability bound
	nu := rate - 0.5*sigma*sigma
	d2 := sigma * sigma / (dx * dx)
	ca := 0.5 * dt * (d2 - nu/dx)
	cb := 1 - dt*(d2+rate)
	cc := 0.5 * dt * (d2 + nu/dx)

	payoff := func(i int) float64 {
		return math.Max(0, strike-math.Exp(x0+float64(i)*dx))
	}

	sh := pochoir.MustShape(1, [][]int{{1, 0}, {0, 0}, {0, 1}, {0, -1}})
	st := pochoir.New[float64](sh)
	v := pochoir.MustArray[float64](sh.Depth(), nGrid)
	// Beyond the grid the option value is the extended payoff: ~strike
	// deep in the money, zero far out of the money.
	v.RegisterBoundary(pochoir.DirichletBoundary(func(t int, idx []int) float64 {
		return payoff(idx[0])
	}))
	st.MustRegisterArray(v)
	for i := 0; i < nGrid; i++ {
		v.Set(0, payoff(i), i)
	}

	kern := pochoir.K1(func(t, i int) {
		cont := ca*v.Get(t, i-1) + cb*v.Get(t, i) + cc*v.Get(t, i+1)
		v.Set(t+1, math.Max(payoff(i), cont), i)
	})

	// Price at a few maturities by resuming the same computation.
	atm := int((math.Log(strike) - x0) / dx)
	spots := []float64{80, 90, 100, 110, 120}
	fmt.Printf("American put, K=%.0f, sigma=%.2f, r=%.2f (explicit FD, %d nodes, dt=%.2e)\n",
		strike, sigma, rate, nGrid, dt)
	fmt.Printf("%12s", "T (years)")
	for _, s := range spots {
		fmt.Printf("  S=%-7.0f", s)
	}
	fmt.Println()
	stepsSoFar := 0
	for _, horizon := range []float64{0.01, 0.05, 0.1} {
		steps := int(horizon/dt) - stepsSoFar
		if err := st.Run(steps, kern); err != nil {
			log.Fatal(err)
		}
		stepsSoFar += steps
		fmt.Printf("%12.2f", float64(stepsSoFar)*dt)
		for _, s := range spots {
			i := int((math.Log(s) - x0) / dx)
			fmt.Printf("  %-9.4f", v.Get(stepsSoFar, i))
		}
		fmt.Println()
	}

	// Sanity: American value >= payoff everywhere; at-the-money value
	// grows with maturity.
	for i := 0; i < nGrid; i++ {
		if v.Get(stepsSoFar, i) < payoff(i)-1e-9 {
			log.Fatalf("early-exercise bound violated at node %d", i)
		}
	}
	fmt.Printf("at-the-money value after %.2fy: %.4f (>0, <= strike)\n",
		float64(stepsSoFar)*dt, v.Get(stepsSoFar, atm))
	fmt.Println("ok: early-exercise bound holds at every node")
}
