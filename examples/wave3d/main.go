// Wave3D: the 3D finite-difference wave equation (the paper's "Wave 3"
// benchmark) through the public API, demonstrating a depth-2 stencil and
// the Phase-2 specialized path: a hand-written split-pointer interior
// clone paired with the generic boundary clone — exactly the pairing the
// stencil compiler emits.
//
// Run with:
//
//	go run ./examples/wave3d
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"pochoir"
)

const (
	n     = 96
	steps = 48
	c2    = 0.12
)

func main() {
	sh := pochoir.MustShape(3, [][]int{
		{1, 0, 0, 0}, {0, 0, 0, 0}, {-1, 0, 0, 0},
		{0, 1, 0, 0}, {0, -1, 0, 0},
		{0, 0, 1, 0}, {0, 0, -1, 0},
		{0, 0, 0, 1}, {0, 0, 0, -1},
	})
	fmt.Printf("wave equation: depth %d, slopes %v\n", sh.Depth(), sh.Slopes())

	st := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), n, n, n)
	u.RegisterBoundary(pochoir.ZeroBoundary[float64]()) // fixed (Dirichlet) walls
	st.MustRegisterArray(u)

	// A Gaussian pulse at the center, stationary at t=0 and t=1.
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				dx, dy, dz := float64(x-n/2), float64(y-n/2), float64(z-n/2)
				v := math.Exp(-(dx*dx + dy*dy + dz*dz) / 40)
				u.Set(0, v, x, y, z)
				u.Set(1, v, x, y, z)
			}
		}
	}

	// Phase-2 path: a hand-specialized interior clone (split-pointer
	// style) plus the generic checked boundary clone.
	point := pochoir.K3(func(t, x, y, z int) {
		c := u.Get(t, x, y, z)
		u.Set(t+1, 2*c-u.Get(t-1, x, y, z)+
			c2*(u.Get(t, x+1, y, z)+u.Get(t, x-1, y, z)+
				u.Get(t, x, y+1, z)+u.Get(t, x, y-1, z)+
				u.Get(t, x, y, z+1)+u.Get(t, x, y, z-1)-6*c), x, y, z)
	})
	s0, s1 := u.Stride(0), u.Stride(1)
	interior := func(z pochoir.Zoid) {
		var lo, hi [3]int
		for i := 0; i < 3; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		for t := z.T0; t < z.T1; t++ {
			w, r, rr := u.Slot(t), u.Slot(t-1), u.Slot(t-2)
			for a := lo[0]; a < hi[0]; a++ {
				for b := lo[1]; b < hi[1]; b++ {
					base := a*s0 + b*s1
					dst := w[base+lo[2] : base+hi[2]]
					cc := r[base+lo[2]:]
					pp := rr[base+lo[2]:]
					am, ap := r[base-s0+lo[2]:], r[base+s0+lo[2]:]
					bm, bp := r[base-s1+lo[2]:], r[base+s1+lo[2]:]
					cm, cp := r[base+lo[2]-1:], r[base+lo[2]+1:]
					for i := range dst {
						c := cc[i]
						dst[i] = 2*c - pp[i] + c2*(ap[i]+am[i]+bp[i]+bm[i]+cp[i]+cm[i]-6*c)
					}
				}
			}
			for i := 0; i < 3; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}

	start := time.Now()
	err := st.RunSpecialized(steps, pochoir.BaseKernels{
		Interior: interior,
		Boundary: st.GenericBase(point),
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// The pulse should have propagated outward: amplitude at the center
	// drops, and a shell of displacement appears at radius ~ c*steps.
	center := u.Get(steps+1, n/2, n/2, n/2)
	var total float64
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				total += math.Abs(u.Get(steps+1, x, y, z))
			}
		}
	}
	updates := float64(n) * n * n * steps
	fmt.Printf("%d^3 grid, %d steps in %v (%.1f Mpoints/s)\n",
		n, steps, elapsed, updates/elapsed.Seconds()/1e6)
	fmt.Printf("center amplitude: 1.0 -> %.4f; total |u| = %.1f\n", center, total)
	if center > 0.9 {
		log.Fatal("pulse did not propagate — engine error")
	}
	fmt.Println("ok: wavefront propagated outward")
}
