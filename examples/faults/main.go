// Faults: the failure model of the hardened execution engine.
//
// A Pochoir run can fail three ways — a kernel panics, the context is
// cancelled, or the caller injects a fault while testing — and all three
// surface the same way: Run returns an error, the process survives, and
// the stencil is poisoned until the caller decides what state to resume
// from. This example walks the full arc: checkpoint, crash mid-run on a
// worker goroutine, inspect the structured error, restore, retry.
//
// Run with:
//
//	go run ./examples/faults
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"pochoir"
)

func main() {
	const X, Y, T = 128, 128, 40
	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	heat := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	heat.MustRegisterArray(u)
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			u.Set(0, float64((x*31+y*17)%97)/97, x, y)
		}
	}

	kernel := func(crashAt int) pochoir.Kernel {
		return pochoir.K2(func(t, x, y int) {
			if t == crashAt && x == X/2 && y == Y/2 {
				panic("sensor dropout") // stands in for any kernel bug
			}
			c := u.Get(t, x, y)
			u.Set(t+1, c+
				0.125*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
				0.125*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
		})
	}

	// Snapshot the initial condition so the failed run can be retried.
	cp, err := heat.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}

	// 1. The kernel panics mid-run on some worker goroutine. Instead of
	// crashing the process, Run drains the sibling tasks and returns the
	// first panic as a *KernelPanicError carrying the panic value, the
	// panicking goroutine's stack, and the zoid being executed.
	err = heat.Run(T, kernel(T/2))
	var kp *pochoir.KernelPanicError
	if !errors.As(err, &kp) {
		log.Fatalf("expected a kernel panic error, got %v", err)
	}
	fmt.Printf("run failed as expected: %v\n", kp.Value)
	fmt.Printf("  while executing zoid t=[%d,%d)\n", kp.Zoid.T0, kp.Zoid.T1)

	// 2. The stencil is now poisoned: the grid holds a half-written mix of
	// time steps, so further runs refuse with ErrPoisoned.
	if err := heat.Run(T, kernel(-1)); !errors.Is(err, pochoir.ErrPoisoned) {
		log.Fatalf("expected ErrPoisoned, got %v", err)
	}
	fmt.Println("stencil poisoned: further runs refuse until Reset or Restore")

	// 3. Restore the checkpoint and retry without the fault.
	if err := heat.Restore(cp); err != nil {
		log.Fatal(err)
	}
	if err := heat.Run(T, kernel(-1)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored and retried: %d steps complete, u[%d][%d]=%.4f\n",
		heat.StepsRun(), X/2, Y/2, u.Get(T, X/2, Y/2))

	// 4. Cancellation works the same way: RunContext checks the context
	// once per zoid, so a cancelled run returns within about one base case.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = heat.RunContext(ctx, T*100, kernel(-1))
	fmt.Printf("cancelled run returned %q after %v; poisoned=%v\n",
		err, time.Since(start).Round(time.Millisecond), heat.Poisoned())
}
