// Resilience: supervised runs that survive their own kernels.
//
// RunSupervised splits a long stencil run into checkpointed time segments.
// A segment that fails — kernel panic, injected fault, watchdog deadline —
// is restored from its checkpoint and retried under jittered exponential
// backoff; repeated failures walk a degradation ladder of execution
// engines (TRAP → STRAP → serial checked loops), so a bug in the recursive
// decomposition degrades service instead of denying it. Optional shadow
// verification re-executes a sampled sub-box of each segment with the
// reference executor and treats a mismatch like a failure: restore,
// retry, degrade.
//
// This example crashes a Heat 2D kernel at 90% progress and lets the
// supervisor recover — one segment recomputed, not fifty time steps —
// then prints the supervisor's full decision log.
//
// Run with:
//
//	go run ./examples/resilience
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pochoir"
)

func main() {
	const X, Y, T = 128, 128, 50
	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	heat := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	heat.MustRegisterArray(u)
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			u.Set(0, float64((x*31+y*17)%97)/97, x, y)
		}
	}

	// The kernel fails once, at 90% progress. An unsupervised Run would
	// return a *KernelPanicError and leave the stencil poisoned; under the
	// supervisor the fault costs one segment retry.
	crashed := false
	kern := pochoir.K2(func(t, x, y int) {
		if t == T*9/10 && x == X/2 && y == Y/2 && !crashed {
			crashed = true
			panic("sensor dropout")
		}
		c := u.Get(t, x, y)
		u.Set(t+1, c+
			0.125*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
			0.125*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
	})

	rep, err := heat.RunSupervised(context.Background(), T, kern, pochoir.SupervisePolicy{
		SegmentSteps: 10,                    // checkpoint every 10 steps
		MaxAttempts:  3,                     // per segment, first try included
		BaseDelay:    10 * time.Millisecond, // jittered exponential backoff
		Verify:       pochoir.VerifyPolicy{Enabled: true},
	})
	if err != nil {
		log.Fatalf("run failed despite supervision: %v", err)
	}

	fmt.Printf("completed %d steps in %d segments: %d attempts, %d retries, "+
		"%d checkpoints, %d verified, final engine %v\n",
		rep.StepsDone, len(rep.Segments), rep.Attempts, rep.Retries,
		rep.Checkpoints, rep.Verified, rep.FinalEngine)
	fmt.Println("\nsupervisor decision log:")
	for _, ev := range rep.Events {
		fmt.Printf("  %s\n", ev)
	}

	var total float64
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			total += u.Get(T, x, y)
		}
	}
	fmt.Printf("\ntotal heat after %d steps: %.6f (conserved by the periodic boundary)\n", T, total)
}
