// Blackbox: the always-on flight recorder and automatic crash bundles.
//
// Every run appends its recent execution events — cuts, base cases, panics,
// supervisor decisions — to a bounded black-box ring buffer, by default and
// at negligible cost. Nothing is written anywhere while runs succeed. When a
// run dies, the rings freeze and a pochoir-postmortem/v1 JSON bundle lands
// in the diagnostics directory: the failure cause with the failing zoid, the
// merged recent-event window, a goroutine dump, and host provenance. This
// example crashes a run on purpose, then reads its own crash bundle back the
// way `cmd/blackbox` (or an operator, or a dashboard) would.
//
// Run with:
//
//	go run ./examples/blackbox
//
// and render the printed bundle path with:
//
//	go run ./cmd/blackbox show <path>
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pochoir"
)

func main() {
	// Bundles default under the OS temp dir; keep this demo's private.
	dir, err := os.MkdirTemp("", "blackbox-example")
	if err != nil {
		log.Fatal(err)
	}
	os.Setenv("POCHOIR_POSTMORTEM_DIR", dir)

	const X, Y, T = 128, 128, 40
	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	heat := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	heat.MustRegisterArray(u)
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			u.Set(0, float64((x*31+y*17)%97)/97, x, y)
		}
	}

	// A kernel with a bug nobody was watching for: it panics deep into the
	// run, on some worker goroutine, at 90% of the way through.
	kern := pochoir.K2(func(t, x, y int) {
		if t == T*9/10 && x == X/3 && y == Y/3 {
			panic("numerical guard tripped")
		}
		c := u.Get(t, x, y)
		u.Set(t+1, c+
			0.125*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
			0.125*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
	})

	fmt.Println("running a doomed stencil (flight recorder on by default)...")
	if err := heat.Run(T, kern); err != nil {
		fmt.Printf("run failed: %v\n\n", err)
	}

	// The black box already did its job: the last incident is in memory and
	// the bundle is on disk. A crashed service's *next* process would find
	// the file; a live one serves it at /debug/flightz on the monitor.
	inc := pochoir.LastIncident()
	if inc == nil {
		log.Fatal("no incident recorded")
	}
	fmt.Printf("incident at %s, cause %s\n", inc.Time.Format("15:04:05.000"), inc.Cause.Kind)
	fmt.Printf("bundle: %s\n\n", inc.Path)

	b, err := pochoir.ReadPostmortemBundle(inc.Path)
	if err != nil {
		log.Fatal(err)
	}
	if z := b.Cause.Zoid; z != nil {
		fmt.Printf("the panic was executing zoid t=[%d,%d) lo=%v hi=%v\n", z.T0, z.T1, z.Lo, z.Hi)
	}
	fmt.Printf("window: %d recent events across %d worker lanes; the last few:\n", len(b.Events), b.Lanes)
	tail := 6
	if tail > len(b.Events) {
		tail = len(b.Events)
	}
	for _, ev := range b.Events[len(b.Events)-tail:] {
		fmt.Printf("  w%d  %s\n", ev.Worker, ev.Describe())
	}
	fmt.Printf("\nrender it fully with: go run ./cmd/blackbox show %s\n", filepath.Join(dir, filepath.Base(inc.Path)))
}
