// Monitor: watching a Pochoir run live. The heat equation again, but with a
// metrics registry armed through Options.Metrics and the embedded monitor
// server listening: while the run executes, any HTTP client can scrape
//
//	/metrics        Prometheus text exposition (zoids, cuts, base-case
//	                points, per-engine throughput, supervisor counters)
//	/statusz        JSON snapshot of every metric + process vitals
//	/progressz      live percent-complete, point rate, and ETA
//	/debug/pprof/   the standard Go runtime profiles
//	/debug/vars     expvar
//
// This program runs repeated supervised iterations of the workload so there
// is something live to watch, prints its own progress samples, and keeps
// the server up until the iterations finish — point a browser or
//
//	curl http://<addr>/metrics
//	curl http://<addr>/progressz
//
// at the printed address while it runs.
//
// Run with:
//
//	go run ./examples/monitor                      # ephemeral port
//	go run ./examples/monitor -addr 127.0.0.1:8080 # fixed port
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"pochoir"
)

func main() {
	var (
		n     = flag.Int("n", 384, "grid side length")
		steps = flag.Int("steps", 64, "time steps per iteration")
		iters = flag.Int("iters", 3, "supervised iterations to run")
		addr  = flag.String("addr", "127.0.0.1:0", "monitor listen address")
	)
	flag.Parse()
	const cx, cy = 0.125, 0.125

	// One registry can outlive and span any number of runs and stencils;
	// counters are cumulative across all of them.
	reg := pochoir.NewMetrics()
	mon, err := pochoir.ServeMonitor(*addr, reg)
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	fmt.Printf("monitor: %s  (try: curl %s/metrics; curl %s/progressz)\n\n",
		mon.URL(), mon.URL(), mon.URL())

	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	heat := pochoir.NewWithOptions[float64](sh, pochoir.Options{Metrics: reg})
	u := pochoir.MustArray[float64](sh.Depth(), *n, *n)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	heat.MustRegisterArray(u)

	rng := rand.New(rand.NewSource(1))
	for x := 0; x < *n; x++ {
		for y := 0; y < *n; y++ {
			u.Set(0, rng.Float64(), x, y)
		}
	}
	kern := pochoir.K2(func(t, x, y int) {
		c := u.Get(t, x, y)
		u.Set(t+1, c+
			cx*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
			cy*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
	})

	// Print the same progress any scraper of /progressz would see.
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				for _, p := range reg.ProgressSnapshot() {
					if p.Active {
						fmt.Printf("  %s: %5.1f%%  %6.1f Mpts/s  ETA %.2fs\n",
							p.Label, p.Percent, p.RateMpts, p.ETASeconds)
					}
					break
				}
			}
		}
	}()

	for i := 0; i < *iters; i++ {
		rep, err := heat.RunSupervised(context.Background(), *steps, kern,
			pochoir.SupervisePolicy{SegmentSteps: *steps / 4})
		if err != nil {
			log.Fatalf("iteration %d: %v", i, err)
		}
		fmt.Printf("iteration %d done: %d steps in %d segments\n", i, rep.StepsDone, len(rep.Segments))
	}
	close(done)

	fmt.Printf("\nfinal /progressz view:\n")
	for _, p := range reg.ProgressSnapshot() {
		fmt.Printf("  run %d (%s): %.0f%% of %d points, ok=%v\n",
			p.ID, p.Label, p.Percent, p.PointsTotal, p.OK)
	}
	fmt.Printf("\nscrape %s/metrics for the cumulative counters (%d iterations of %d steps).\n",
		mon.URL(), *iters, *steps)
}
