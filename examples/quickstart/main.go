// Quickstart: the paper's Fig. 6 program — a 2D heat equation on a
// periodic torus — written against the public pochoir API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pochoir"
)

func main() {
	const X, Y, T = 256, 256, 200
	const cx, cy = 0.125, 0.125

	// Declare the Pochoir shape of the stencil (Fig. 6, line 7): the home
	// cell written at t+1 and the five points read at t.
	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})

	// Create the stencil object and its Pochoir array (lines 8-9).
	heat := pochoir.New[float64](sh)
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)

	// Register the periodic boundary function and the array (lines 10-11).
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	heat.MustRegisterArray(u)

	// Initialize time step 0 (lines 15-17).
	rng := rand.New(rand.NewSource(1))
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			u.Set(0, rng.Float64(), x, y)
		}
	}
	var before float64
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			before += u.Get(0, x, y)
		}
	}

	// Define the kernel function (lines 12-14) and run (line 18).
	kern := pochoir.K2(func(t, x, y int) {
		c := u.Get(t, x, y)
		u.Set(t+1, c+
			cx*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
			cy*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
	})
	if err := heat.Run(T, kern); err != nil {
		log.Fatal(err)
	}

	// Read the results at time T (lines 19-21). On a torus, diffusion
	// conserves total heat; verify it as a sanity check.
	var after, minV, maxV float64 = 0, math.Inf(1), math.Inf(-1)
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			v := u.Get(T, x, y)
			after += v
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	fmt.Printf("2D heat, %dx%d torus, %d steps\n", X, Y, T)
	fmt.Printf("total heat before: %.6f  after: %.6f  (drift %.2e)\n",
		before, after, math.Abs(after-before)/before)
	fmt.Printf("value range after diffusion: [%.4f, %.4f] (started at [0,1))\n", minV, maxV)
	if math.Abs(after-before)/before > 1e-9 {
		log.Fatal("heat not conserved — something is wrong")
	}
	fmt.Println("ok: heat conserved, field smoothed")
}
