package gen

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pochoir"
	"pochoir/internal/compiler"
)

// TestGeneratedMatchesInterpreted: for every generated stencil, the
// compiled Phase-2 path must produce bit-identical results to the Phase-1
// interpreted path — the Pochoir Guarantee made executable.
func TestGeneratedHeat2dMatchesInterpreted(t *testing.T) {
	const X, Y, steps = 45, 37, 26
	init := make([]float64, X*Y)
	rng := rand.New(rand.NewSource(21))
	for i := range init {
		init[i] = rng.Float64()
	}
	run := func(interpreted bool) []float64 {
		s, err := NewHeat2d(X, Y)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.U.CopyIn(0, init); err != nil {
			t.Fatal(err)
		}
		if interpreted {
			err = s.RunInterpreted(steps)
		} else {
			err = s.Run(steps)
		}
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, X*Y)
		if err := s.U.CopyOut(steps, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("compiled and interpreted paths differ at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestGeneratedWave1dMatchesReference(t *testing.T) {
	const N, steps = 200, 60
	s, err := NewWave1d(N)
	if err != nil {
		t.Fatal(err)
	}
	init0 := make([]float64, N)
	init1 := make([]float64, N)
	rng := rand.New(rand.NewSource(22))
	for i := range init0 {
		init0[i] = rng.Float64()
		init1[i] = 0.95 * init0[i]
	}
	if err := s.U.CopyIn(0, init0); err != nil {
		t.Fatal(err)
	}
	if err := s.U.CopyIn(1, init1); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(steps); err != nil {
		t.Fatal(err)
	}

	// Independent reference with clamped edges.
	prev := append([]float64(nil), init0...)
	cur := append([]float64(nil), init1...)
	next := make([]float64, N)
	clamp := func(g []float64, i int) float64 {
		if i < 0 {
			i = 0
		}
		if i >= N {
			i = N - 1
		}
		return g[i]
	}
	const C = 0.3
	for st := 0; st < steps; st++ {
		for x := 0; x < N; x++ {
			next[x] = ((2*cur[x] - prev[x]) + C*((clamp(cur, x+1)-2*cur[x])+clamp(cur, x-1)))
		}
		prev, cur, next = cur, next, prev
	}
	got := make([]float64, N)
	if err := s.U.CopyOut(steps+1, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != cur[i] {
			t.Fatalf("wave1d mismatch at %d: %g vs %g", i, got[i], cur[i])
		}
	}
}

func TestGeneratedApop1dProperties(t *testing.T) {
	const N, steps = 500, 200
	s, err := NewApop1d(N)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		s.V.Set(0, 0.8+0.2*float64(i)/float64(N), i)
	}
	if err := s.Run(steps); err != nil {
		t.Fatal(err)
	}
	// The max(FLOOR, ...) in the kernel must hold pointwise.
	for i := 0; i < N; i++ {
		if v := s.V.Get(steps, i); v < 0.8 {
			t.Fatalf("floor violated at %d: %g", i, v)
		}
	}
	// And the compiled path must match the interpreted path.
	s2, err := NewApop1d(N)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		s2.V.Set(0, 0.8+0.2*float64(i)/float64(N), i)
	}
	if err := s2.RunInterpreted(steps); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		if s.V.Get(steps, i) != s2.V.Get(steps, i) {
			t.Fatalf("apop paths differ at %d", i)
		}
	}
}

// TestGeneratedFilesUpToDate regenerates each committed file from its spec
// and requires byte equality — guarding against compiler drift.
func TestGeneratedFilesUpToDate(t *testing.T) {
	cases := []struct {
		spec, out string
		style     compiler.Style
	}{
		{"heat2d.pch", "heat2d_gen.go", compiler.SplitPointer},
		{"wave1d.pch", "wave1d_gen.go", compiler.SplitMacroShadow},
		{"apop1d.pch", "apop1d_gen.go", compiler.SplitPointer},
	}
	for _, c := range cases {
		src, err := os.ReadFile(filepath.Join("..", "specs", c.spec))
		if err != nil {
			t.Fatal(err)
		}
		checked, err := compiler.CompileSource(string(src))
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		want, err := compiler.Codegen(checked, "gen", c.style)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		got, err := os.ReadFile(c.out)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s is stale; regenerate with: go run ./cmd/pochoirgen -pkg gen -style %s -o examples/dsl/gen/%s examples/dsl/specs/%s",
				c.out, map[compiler.Style]string{compiler.SplitPointer: "pointer", compiler.SplitMacroShadow: "macro"}[c.style], c.out, c.spec)
		}
	}
}

// TestGeneratedChecked runs the generated kernels under the Pochoir
// Guarantee: the shape the compiler inferred must accept its own kernel.
func TestGeneratedChecked(t *testing.T) {
	s, err := NewHeat2d(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stencil.RunChecked(4, s.PointKernel()); err != nil {
		t.Fatalf("generated kernel violates its own shape: %v", err)
	}
	_ = pochoir.MaxDims // keep the pochoir import for documentation symmetry
}
