// DSL: the two-phase compilation methodology end to end. The stencil
// specification in specs/heat2d.pch is
//
//	Phase 1: parsed, checked (shape inference + the Pochoir Guarantee),
//	         and executed directly by the interpreter; then
//	Phase 2: the committed output of `pochoirgen` (gen/heat2d_gen.go) runs
//	         the same computation with the compiled split-pointer kernel,
//
// and the program verifies the two produce bit-identical results while
// timing both — the compiled path is the same algorithm, only faster.
//
// Run from the repository root with:
//
//	go run ./examples/dsl
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"pochoir"
	"pochoir/examples/dsl/gen"
	"pochoir/internal/compiler"
)

const (
	xSize, ySize = 400, 400
	steps        = 100
)

func initField() []float64 {
	rng := rand.New(rand.NewSource(99))
	f := make([]float64, xSize*ySize)
	for i := range f {
		f[i] = rng.Float64()
	}
	return f
}

func main() {
	src, err := os.ReadFile("examples/dsl/specs/heat2d.pch")
	if err != nil {
		log.Fatal("run from the repository root: ", err)
	}

	// Phase 1: compile the specification and report what was inferred.
	checked, err := compiler.CompileSource(string(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stencil %q: dims=%d depth=%d\n", checked.Prog.Name, checked.Prog.Dims, checked.Depth)
	fmt.Printf("inferred shape: %s\n", checked.Shape)
	fmt.Printf("slopes: %v\n\n", checked.Shape.Slopes())

	inst, err := checked.NewInstance(xSize, ySize)
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.Arrays["u"].CopyIn(0, initField()); err != nil {
		log.Fatal(err)
	}
	// The Pochoir Guarantee: run a few steps with every access verified
	// against the inferred shape.
	if err := inst.RunChecked(2); err != nil {
		log.Fatal("Phase-1 compliance check failed: ", err)
	}
	fmt.Println("Phase 1: specification is Pochoir-compliant (2 checked steps)")

	// Interpreted execution of the remaining steps.
	start := time.Now()
	if err := inst.Run(steps-2, pochoir.Options{}); err != nil {
		log.Fatal(err)
	}
	interpTime := time.Since(start)
	want := make([]float64, xSize*ySize)
	if err := inst.Arrays["u"].CopyOut(steps, want); err != nil {
		log.Fatal(err)
	}

	// Phase 2: the committed pochoirgen output.
	compiled, err := gen.NewHeat2d(xSize, ySize)
	if err != nil {
		log.Fatal(err)
	}
	if err := compiled.U.CopyIn(0, initField()); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if err := compiled.Run(steps); err != nil {
		log.Fatal(err)
	}
	compiledTime := time.Since(start)
	got := make([]float64, xSize*ySize)
	if err := compiled.U.CopyOut(steps, got); err != nil {
		log.Fatal(err)
	}

	for i := range got {
		if got[i] != want[i] {
			log.Fatalf("compiled and interpreted paths diverge at %d: %g vs %g", i, got[i], want[i])
		}
	}
	fmt.Printf("Phase 2: compiled output matches the interpreter bit for bit\n\n")
	fmt.Printf("interpreted (template library): %v\n", interpTime)
	fmt.Printf("compiled (split-pointer):       %v  (%.1fx faster)\n",
		compiledTime, interpTime.Seconds()/compiledTime.Seconds())
}
