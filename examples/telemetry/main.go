// Telemetry: observing a Pochoir run. The Fig. 6 heat equation again, but
// executed with an execution-telemetry recorder attached: the engine logs
// every cut decision, base-case invocation, and spawn choice into
// per-worker shards, and this program prints the aggregate stats report
// (decomposition counters, base-case volume histogram, achieved
// parallelism) and optionally writes a Chrome trace-event JSON showing the
// recursive decomposition as a span tree, one track per worker.
//
// Run with:
//
//	go run ./examples/telemetry                    # stats report only
//	go run ./examples/telemetry -trace trace.json  # + Perfetto-loadable trace
//
// Load the trace at chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"pochoir"
)

func main() {
	var (
		n     = flag.Int("n", 256, "grid side length")
		steps = flag.Int("steps", 64, "time steps")
		trace = flag.String("trace", "", "write a Chrome trace-event JSON to `FILE`")
	)
	flag.Parse()
	const cx, cy = 0.125, 0.125

	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})

	// Attach a recorder through Options.Telemetry; everything else is the
	// ordinary quickstart program.
	rec := pochoir.NewRecorder()
	heat := pochoir.NewWithOptions[float64](sh, pochoir.Options{Telemetry: rec})
	u := pochoir.MustArray[float64](sh.Depth(), *n, *n)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	heat.MustRegisterArray(u)

	rng := rand.New(rand.NewSource(1))
	for x := 0; x < *n; x++ {
		for y := 0; y < *n; y++ {
			u.Set(0, rng.Float64(), x, y)
		}
	}

	kern := pochoir.K2(func(t, x, y int) {
		c := u.Get(t, x, y)
		u.Set(t+1, c+
			cx*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
			cy*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
	})
	if err := heat.Run(*steps, kern); err != nil {
		log.Fatal(err)
	}

	// LastRunStats summarizes just this Run (the recorder itself keeps
	// accumulating across resumed runs).
	st := heat.LastRunStats()
	fmt.Printf("2D heat, %dx%d torus, %d steps — instrumented run\n\n", *n, *n, *steps)
	st.WriteReport(os.Stdout)

	want := int64(*n) * int64(*n) * int64(*steps)
	if st.BasePoints != want {
		log.Fatalf("decomposition did not cover space-time: %d point updates, want %d", st.BasePoints, want)
	}
	fmt.Printf("\nok: base cases covered exactly steps x grid volume = %d point updates\n", want)

	if *trace != "" {
		if err := rec.WriteChromeTraceFile(*trace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s — load it at chrome://tracing or https://ui.perfetto.dev\n", *trace)
	}
}
