package pochoir_test

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation. Workloads are sized so `go test -bench=. -benchmem` finishes
// in minutes; cmd/experiments runs the larger scaled workloads and prints
// paper-style rows. The custom metric Mpts/s is millions of grid-point
// updates per second, the stencil-throughput unit behind the paper's
// GStencil/s numbers.

import (
	"context"
	"testing"
	"time"

	"pochoir"
	"pochoir/internal/benchdef"
	"pochoir/internal/cachesim"
	"pochoir/internal/cilkview"
	"pochoir/internal/core"
	"pochoir/internal/profile"
	"pochoir/internal/shape"
	"pochoir/internal/stencils"
)

// benchJob times the Compute phase of a stencil job.
func benchJob(b *testing.B, mk func() stencils.Job, updatesPerRun float64) {
	b.Helper()
	b.ReportAllocs()
	jobs := make([]stencils.Job, b.N)
	for i := range jobs {
		jobs[i] = mk()
		jobs[i].Setup()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs[i].Compute()
	}
	b.StopTimer()
	b.ReportMetric(updatesPerRun*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpts/s")
}

// benchInstance builds instances of a benchmark at its shared bench-profile
// workload (internal/benchdef, the same table cmd/benchlab's full profile
// uses).
func benchInstance(b *testing.B, name string) func() stencils.Instance {
	b.Helper()
	f, ok := stencils.Lookup(name)
	if !ok {
		b.Fatalf("unknown benchmark %q", name)
	}
	w, ok := benchdef.Bench(name)
	if !ok {
		b.Fatalf("no bench workload defined for %q", name)
	}
	return func() stencils.Instance { return f.New(w.Sizes, w.Steps) }
}

func updates(inst stencils.Instance) float64 {
	return float64(inst.Points()) * float64(inst.Steps())
}

// BenchmarkIntroHeat reproduces the §1 headline comparison.
func BenchmarkIntroHeat(b *testing.B) {
	mk := benchInstance(b, "Heat 2p")
	up := updates(mk())
	b.Run("Loops", func(b *testing.B) {
		benchJob(b, func() stencils.Job { return mk().LoopsParallel() }, up)
	})
	b.Run("Pochoir", func(b *testing.B) {
		benchJob(b, func() stencils.Job { return mk().Pochoir(pochoir.Options{}) }, up)
	})
}

// BenchmarkHeat2D is the telemetry acceptance benchmark. NoTelemetry runs
// with a nil recorder and must match seed throughput (the disabled path is
// a single pointer comparison per instrumentation point); Telemetry runs
// the same workload with a recorder attached and reports the decomposition
// counters (base cases, zoids, spawns per run) as custom metrics.
func BenchmarkHeat2D(b *testing.B) {
	f := stencils.NewHeat2DFactory(true)
	sizes, steps := benchdef.AblationHeat2D.Sizes, benchdef.AblationHeat2D.Steps
	up := float64(benchdef.AblationHeat2D.Updates())
	b.Run("NoTelemetry", func(b *testing.B) {
		benchJob(b, func() stencils.Job {
			return f.New(sizes, steps).Pochoir(pochoir.Options{})
		}, up)
	})
	b.Run("Telemetry", func(b *testing.B) {
		rec := pochoir.NewRecorder()
		benchJob(b, func() stencils.Job {
			return f.New(sizes, steps).Pochoir(pochoir.Options{Telemetry: rec})
		}, up)
		st := rec.Snapshot()
		n := float64(b.N)
		b.ReportMetric(float64(st.Bases)/n, "bases/op")
		b.ReportMetric(float64(st.Zoids())/n, "zoids/op")
		b.ReportMetric(float64(st.Spawns)/n, "spawns/op")
	})
}

// BenchmarkHeat2DMonitored is the monitoring acceptance benchmark: the same
// Heat 2D workload as BenchmarkHeat2D but with a metrics registry armed and
// the embedded monitor server listening (unscrapped — the cost measured is
// the instrumentation itself: striped atomic counter updates at every cut,
// base case, and scheduler decision, plus the progress estimator).
func BenchmarkHeat2DMonitored(b *testing.B) {
	f := stencils.NewHeat2DFactory(true)
	sizes, steps := benchdef.AblationHeat2D.Sizes, benchdef.AblationHeat2D.Steps
	up := float64(benchdef.AblationHeat2D.Updates())
	reg := pochoir.NewMetrics()
	mon, err := pochoir.ServeMonitor("127.0.0.1:0", reg)
	if err != nil {
		b.Fatal(err)
	}
	defer mon.Close()
	benchJob(b, func() stencils.Job {
		return f.New(sizes, steps).Pochoir(pochoir.Options{Metrics: reg})
	}, up)
}

// BenchmarkHeat2DFlightRecorder is the black-box acceptance benchmark: the
// Heat 2D workload with the always-on flight recorder (the default) against
// the same workload opted out. The write path is a handful of atomic stores
// per cut/base event, so the budget is ≤3% — asserted here when both halves
// ran, with the caveat that sub-benchtime noise on a loaded machine can
// exceed the real cost; EXPERIMENTS.md records the number from a quiet run.
func BenchmarkHeat2DFlightRecorder(b *testing.B) {
	f := stencils.NewHeat2DFactory(true)
	sizes, steps := benchdef.AblationHeat2D.Sizes, benchdef.AblationHeat2D.Steps
	up := float64(benchdef.AblationHeat2D.Updates())
	var offNs, onNs float64
	b.Run("Off", func(b *testing.B) {
		benchJob(b, func() stencils.Job {
			return f.New(sizes, steps).Pochoir(pochoir.Options{NoFlightRecorder: true})
		}, up)
		offNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("On", func(b *testing.B) {
		benchJob(b, func() stencils.Job {
			return f.New(sizes, steps).Pochoir(pochoir.Options{})
		}, up)
		onNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if offNs > 0 && onNs > 0 {
		overhead := (onNs/offNs - 1) * 100
		b.ReportMetric(overhead, "overhead_%")
		if overhead > 3.0 {
			b.Errorf("always-on flight recorder costs %.2f%% over disabled, budget is 3%%", overhead)
		}
	}
}

// BenchmarkSupervisedHeat2D measures the resilience supervisor's overhead
// on the Heat 2D workload. NoCheckpoint is the happy path — one segment, no
// state copies, supervisor bookkeeping only — and is the 5%-of-Run
// acceptance bench. Segmented adds a checkpoint every 8 steps (4 deep
// copies of the 512x512 grid per run); Spill additionally persists each
// checkpoint to the durable journal (the ≤10%-over-Segmented acceptance
// bench for crash recovery); Verified instead shadow-recomputes a sampled
// 4x4 box's dependency cone per segment.
func BenchmarkSupervisedHeat2D(b *testing.B) {
	const X, Y, steps, seed = 512, 512, 32, 7
	up := float64(X*Y) * float64(steps)
	benchSup := func(b *testing.B, run func(st *pochoir.Stencil[float64], kern pochoir.Kernel) error) {
		b.Helper()
		b.ReportAllocs()
		sts := make([]*pochoir.Stencil[float64], b.N)
		kerns := make([]pochoir.Kernel, b.N)
		for i := range sts {
			sts[i], _, kerns[i] = heatStencil(b, pochoir.Options{}, X, Y, seed)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := run(sts[i], kerns[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(up*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpts/s")
	}
	b.Run("Run", func(b *testing.B) {
		benchSup(b, func(st *pochoir.Stencil[float64], kern pochoir.Kernel) error {
			return st.Run(steps, kern)
		})
	})
	b.Run("SupervisedNoCheckpoint", func(b *testing.B) {
		benchSup(b, func(st *pochoir.Stencil[float64], kern pochoir.Kernel) error {
			_, err := st.RunSupervised(context.Background(), steps, kern,
				pochoir.SupervisePolicy{NoCheckpoint: true})
			return err
		})
	})
	b.Run("SupervisedSegmented", func(b *testing.B) {
		benchSup(b, func(st *pochoir.Stencil[float64], kern pochoir.Kernel) error {
			_, err := st.RunSupervised(context.Background(), steps, kern,
				pochoir.SupervisePolicy{SegmentSteps: 8})
			return err
		})
	})
	b.Run("SupervisedSpill", func(b *testing.B) {
		dir := b.TempDir()
		benchSup(b, func(st *pochoir.Stencil[float64], kern pochoir.Kernel) error {
			_, err := st.RunSupervised(context.Background(), steps, kern,
				pochoir.SupervisePolicy{SegmentSteps: 8, SpillDir: dir})
			return err
		})
	})
	b.Run("SupervisedVerified", func(b *testing.B) {
		benchSup(b, func(st *pochoir.Stencil[float64], kern pochoir.Kernel) error {
			_, err := st.RunSupervised(context.Background(), steps, kern,
				pochoir.SupervisePolicy{
					SegmentSteps: 8,
					Verify:       pochoir.VerifyPolicy{Enabled: true},
				})
			return err
		})
	})
}

// BenchmarkHeat2DTraced is the causal-tracing acceptance benchmark: the
// supervised Heat 2D workload with a span tree recorded per run (root span,
// supervised-run span, per-segment and per-attempt spans, checkpoint
// markers) against the identical workload untraced. Span recording is an
// append into a preallocated per-trace buffer behind one mutex that only
// the job's own goroutine touches, so the budget is ≤3% — asserted here
// when both halves ran, with the same sub-benchtime-noise caveat as the
// flight-recorder bench; EXPERIMENTS.md records the number from a quiet
// run.
func BenchmarkHeat2DTraced(b *testing.B) {
	const X, Y, steps, seed = 512, 512, 32, 7
	up := float64(X*Y) * float64(steps)
	policy := pochoir.SupervisePolicy{SegmentSteps: 8}
	benchTraced := func(b *testing.B, mkTrace func() *pochoir.ActiveTrace) {
		b.Helper()
		b.ReportAllocs()
		sts := make([]*pochoir.Stencil[float64], b.N)
		kerns := make([]pochoir.Kernel, b.N)
		actives := make([]*pochoir.ActiveTrace, b.N)
		for i := range sts {
			actives[i] = mkTrace()
			sts[i], _, kerns[i] = heatStencil(b, pochoir.Options{Trace: actives[i]}, X, Y, seed)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sts[i].RunSupervised(context.Background(), steps, kerns[i], policy); err != nil {
				b.Fatal(err)
			}
			actives[i].End("ok")
		}
		b.StopTimer()
		b.ReportMetric(up*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpts/s")
	}
	var offNs, onNs float64
	b.Run("Off", func(b *testing.B) {
		benchTraced(b, func() *pochoir.ActiveTrace { return nil })
		offNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("On", func(b *testing.B) {
		tracer := pochoir.NewTracer(pochoir.TracerConfig{Seed: 7})
		benchTraced(b, func() *pochoir.ActiveTrace {
			return tracer.StartTrace("bench", pochoir.TraceContext{})
		})
		onNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if offNs > 0 && onNs > 0 {
		overhead := (onNs/offNs - 1) * 100
		b.ReportMetric(overhead, "overhead_%")
		if overhead > 3.0 {
			b.Errorf("tracing costs %.2f%% over untraced, budget is 3%%", overhead)
		}
	}
}

// BenchmarkHeat2DProfiled is the continuous-profiling acceptance benchmark:
// the supervised Heat 2D workload with the profiler capturing back-to-back
// CPU windows (worst case — the 100Hz sampling interrupt plus armed
// per-base-case phase labels) against the identical workload unprofiled.
// The budget is ≤3% — asserted here when both halves ran, with the same
// sub-benchtime-noise caveat as the flight-recorder bench; EXPERIMENTS.md
// records the number from a quiet run.
func BenchmarkHeat2DProfiled(b *testing.B) {
	const X, Y, steps, seed = 512, 512, 32, 7
	up := float64(X*Y) * float64(steps)
	policy := pochoir.SupervisePolicy{SegmentSteps: 8}
	benchProf := func(b *testing.B) {
		b.Helper()
		b.ReportAllocs()
		sts := make([]*pochoir.Stencil[float64], b.N)
		kerns := make([]pochoir.Kernel, b.N)
		for i := range sts {
			sts[i], _, kerns[i] = heatStencil(b, pochoir.Options{}, X, Y, seed)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sts[i].RunSupervised(context.Background(), steps, kerns[i], policy); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(up*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpts/s")
	}
	var offNs, onNs float64
	b.Run("Off", func(b *testing.B) {
		benchProf(b)
		offNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("On", func(b *testing.B) {
		p := profile.New(profile.Config{
			Window:    100 * time.Millisecond,
			Interval:  -1, // back-to-back windows: the profiler never rests
			Retain:    4,
			HeapEvery: -1,
		})
		p.Start()
		defer p.Stop()
		benchProf(b)
		onNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if offNs > 0 && onNs > 0 {
		overhead := (onNs/offNs - 1) * 100
		b.ReportMetric(overhead, "overhead_%")
		if overhead > 3.0 {
			b.Errorf("continuous profiling costs %.2f%% over unprofiled, budget is 3%%", overhead)
		}
	}
}

// BenchmarkFig3 regenerates the Fig. 3 table: every benchmark under the
// four execution regimes of the paper's columns.
func BenchmarkFig3(b *testing.B) {
	for _, f := range stencils.All() {
		if f.Order > 10 {
			continue
		}
		name := f.Name
		mk := benchInstance(b, name)
		up := updates(mk())
		b.Run(name+"/Pochoir1core", func(b *testing.B) {
			benchJob(b, func() stencils.Job { return mk().Pochoir(pochoir.Options{Serial: true}) }, up)
		})
		b.Run(name+"/PochoirNcore", func(b *testing.B) {
			benchJob(b, func() stencils.Job { return mk().Pochoir(pochoir.Options{}) }, up)
		})
		b.Run(name+"/SerialLoops", func(b *testing.B) {
			benchJob(b, func() stencils.Job { return mk().LoopsSerial() }, up)
		})
		b.Run(name+"/ParallelLoops", func(b *testing.B) {
			benchJob(b, func() stencils.Job { return mk().LoopsParallel() }, up)
		})
	}
}

// BenchmarkFig5 regenerates Fig. 5: the Berkeley 7-point and 27-point
// kernels; Mpts/s here corresponds to the paper's GStencil/s column.
func BenchmarkFig5(b *testing.B) {
	for _, name := range []string{"3D 7-point", "3D 27-point"} {
		mk := benchInstance(b, name)
		up := updates(mk())
		b.Run(name, func(b *testing.B) {
			benchJob(b, func() stencils.Job { return mk().Pochoir(pochoir.Options{}) }, up)
		})
	}
}

// BenchmarkFig9 regenerates Fig. 9: the work/span analysis of TRAP vs
// STRAP (the analyzer itself is what is being timed; its Parallelism
// output is reported as a metric).
func BenchmarkFig9(b *testing.B) {
	for _, c := range benchdef.Fig9Bench {
		for _, alg := range []core.Algorithm{core.TRAP, core.STRAP} {
			c, alg := c, alg
			b.Run(c.Name+"/"+alg.String(), func(b *testing.B) {
				var par float64
				for i := 0; i < b.N; i++ {
					a := cilkview.New(cilkview.Config(c.Dims, c.N, 1, false, alg), cilkview.DefaultCosts())
					par = a.Analyze(1, 1+c.Steps).Parallelism()
				}
				b.ReportMetric(par, "parallelism")
			})
		}
	}
}

// BenchmarkFig10 regenerates Fig. 10: cache-trace simulation of the three
// execution orders; the miss ratio is reported as a metric.
func BenchmarkFig10(b *testing.B) {
	heat := shape.MustNew(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	const n, steps = 128, 32
	const m, bl = benchdef.Fig10CacheM, benchdef.Fig10CacheB
	b.Run("TRAP", func(b *testing.B) {
		var ratio float64
		for i := 0; i < b.N; i++ {
			w := cilkview.Config(2, n, 1, false, core.TRAP)
			tr := cachesim.NewTracer(cachesim.New(m, bl), heat, []int{n, n})
			r, err := cachesim.TraceWalker(w, tr, steps)
			if err != nil {
				b.Fatal(err)
			}
			ratio = r
		}
		b.ReportMetric(ratio, "miss-ratio")
	})
	b.Run("STRAP", func(b *testing.B) {
		var ratio float64
		for i := 0; i < b.N; i++ {
			w := cilkview.Config(2, n, 1, false, core.STRAP)
			tr := cachesim.NewTracer(cachesim.New(m, bl), heat, []int{n, n})
			r, err := cachesim.TraceWalker(w, tr, steps)
			if err != nil {
				b.Fatal(err)
			}
			ratio = r
		}
		b.ReportMetric(ratio, "miss-ratio")
	})
	b.Run("Loops", func(b *testing.B) {
		var ratio float64
		for i := 0; i < b.N; i++ {
			tr := cachesim.NewTracer(cachesim.New(m, bl), heat, []int{n, n})
			ratio = cachesim.TraceLoops(tr, steps)
		}
		b.ReportMetric(ratio, "miss-ratio")
	})
}

// fig13Instance narrows a Heat 2p instance to the macro-shadow runner.
type fig13Instance interface {
	stencils.Instance
	PochoirMacroShadow(pochoir.Options) stencils.Job
}

// BenchmarkFig13 regenerates Fig. 13: the two loop-indexing styles.
func BenchmarkFig13(b *testing.B) {
	f := stencils.NewHeat2DFactory(true)
	w := benchdef.AblationHeat2D
	mk := func() fig13Instance { return f.New(w.Sizes, w.Steps).(fig13Instance) }
	up := updates(mk())
	b.Run("SplitPointer", func(b *testing.B) {
		benchJob(b, func() stencils.Job { return mk().Pochoir(pochoir.Options{}) }, up)
	})
	b.Run("SplitMacroShadow", func(b *testing.B) {
		benchJob(b, func() stencils.Job { return mk().PochoirMacroShadow(pochoir.Options{}) }, up)
	})
}

// modInstance narrows a Heat 2p instance to the no-interior ablation.
type modInstance interface {
	stencils.Instance
	PochoirNoInterior(pochoir.Options) stencils.Job
}

// BenchmarkModuloIndexing regenerates the §4 modular-indexing ablation.
func BenchmarkModuloIndexing(b *testing.B) {
	f := stencils.NewHeat2DFactory(true)
	w := benchdef.AblationHeat2D
	mk := func() modInstance { return f.New(w.Sizes, w.Steps).(modInstance) }
	up := updates(mk())
	b.Run("CodeCloning", func(b *testing.B) {
		benchJob(b, func() stencils.Job { return mk().Pochoir(pochoir.Options{}) }, up)
	})
	b.Run("ModEverywhere", func(b *testing.B) {
		benchJob(b, func() stencils.Job { return mk().PochoirNoInterior(pochoir.Options{}) }, up)
	})
}

// BenchmarkCoarsening regenerates the §4 base-case-coarsening ablation.
func BenchmarkCoarsening(b *testing.B) {
	f := stencils.NewHeat2DFactory(true)
	w := benchdef.AblationHeat2DSmall
	up := float64(w.Updates())
	for _, c := range benchdef.CoarseningAblation {
		opts := pochoir.Options{TimeCutoff: c.TimeCutoff, SpaceCutoff: c.SpaceCutoff, Grain: c.Grain}
		b.Run(c.Name, func(b *testing.B) {
			benchJob(b, func() stencils.Job {
				return f.New(w.Sizes, w.Steps).Pochoir(opts)
			}, up)
		})
	}
}

// BenchmarkAblationHyperspaceVsSpaceCuts measures the wall-clock effect of
// the hyperspace-cut strategy itself (TRAP vs STRAP execution) — the
// design choice Fig. 9 analyzes — on a real kernel.
func BenchmarkAblationHyperspaceVsSpaceCuts(b *testing.B) {
	f := stencils.NewHeat2DFactory(true)
	w := benchdef.AblationHeat2D
	up := float64(w.Updates())
	b.Run("TRAP", func(b *testing.B) {
		benchJob(b, func() stencils.Job {
			return f.New(w.Sizes, w.Steps).Pochoir(pochoir.Options{})
		}, up)
	})
	b.Run("STRAP", func(b *testing.B) {
		benchJob(b, func() stencils.Job {
			return f.New(w.Sizes, w.Steps).Pochoir(pochoir.Options{Algorithm: core.STRAP})
		}, up)
	})
}

// BenchmarkPhase1VsPhase2 measures the template-library (interpreted)
// path against the compiled path — the cost of the Pochoir Guarantee's
// comfortable debugging mode.
func BenchmarkPhase1VsPhase2(b *testing.B) {
	f := stencils.NewHeat2DFactory(true)
	w := benchdef.AblationHeat2DSmall
	up := float64(w.Updates())
	b.Run("Phase1Generic", func(b *testing.B) {
		benchJob(b, func() stencils.Job {
			return f.New(w.Sizes, w.Steps).PochoirGeneric(pochoir.Options{})
		}, up)
	})
	b.Run("Phase2Specialized", func(b *testing.B) {
		benchJob(b, func() stencils.Job {
			return f.New(w.Sizes, w.Steps).Pochoir(pochoir.Options{})
		}, up)
	})
}
