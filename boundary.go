package pochoir

// Stock boundary functions covering the regimes discussed in the paper:
// periodic wrap (Fig. 6), Dirichlet conditions with time-varying values
// (Fig. 11a), Neumann zero-derivative conditions via clamping (Fig. 11b),
// and constant/zero halos (the ghost-cell value).

// PeriodicBoundary returns a boundary function that wraps every spatial
// coordinate modulo the array extents — a torus in all dimensions.
func PeriodicBoundary[T any]() Boundary[T] {
	return func(a *Array[T], t int, idx []int) T {
		return a.GetPeriodic(t, idx...)
	}
}

// DirichletBoundary returns a boundary function that supplies the value
// v(t, idx) at every off-domain point; v may depend on time, as in the
// paper's "100 + 0.2*t" example.
func DirichletBoundary[T any](v func(t int, idx []int) T) Boundary[T] {
	return func(a *Array[T], t int, idx []int) T {
		return v(t, idx)
	}
}

// ConstBoundary returns a boundary function that supplies the constant v —
// the classic ghost-cell halo value.
func ConstBoundary[T any](v T) Boundary[T] {
	return func(a *Array[T], t int, idx []int) T {
		return v
	}
}

// ZeroBoundary returns a boundary function supplying the zero value of T.
func ZeroBoundary[T any]() Boundary[T] {
	var zero T
	return ConstBoundary[T](zero)
}

// NeumannBoundary returns a boundary function that clamps each coordinate
// to the domain edge, imposing a zero derivative at the boundary.
func NeumannBoundary[T any]() Boundary[T] {
	return func(a *Array[T], t int, idx []int) T {
		return a.GetClamped(t, idx...)
	}
}
