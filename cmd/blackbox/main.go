// Command blackbox renders pochoir post-mortem bundles — the
// pochoir-postmortem/v1 crash artifacts the flight recorder writes when a
// run dies (see Options.FlightRecorder and POCHOIR_POSTMORTEM_DIR).
//
//	blackbox list                 list bundles in the diagnostics directory
//	blackbox show [BUNDLE]        header, per-worker lane timeline, final events
//	blackbox diff [BUNDLE]        failing segment vs the preceding healthy one
//	blackbox trace [BUNDLE]       export the event window as a Chrome trace
//	blackbox checkpoints [TARGET] list a spill journal, or inspect one entry
//
// With BUNDLE omitted every subcommand loads the newest bundle in the
// diagnostics directory (POCHOIR_POSTMORTEM_DIR, default under the OS temp
// dir) — "what just crashed?" is the common case. The trace subcommand
// writes Chrome trace-event JSON (-o FILE, default postmortem-trace.json)
// loadable in chrome://tracing or https://ui.perfetto.dev, one instant-event
// track per worker lane, alongside the span traces the live telemetry
// recorder exports.
//
// checkpoints takes a spill-journal directory (lists every entry, validating
// each end to end) or a single entry file (decodes and prints its header and
// array sections). With no TARGET it follows the newest bundle's resume
// hint — the journal the crashed run was spilling to.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"pochoir/internal/flight"
	"pochoir/internal/profile"
	"pochoir/internal/telemetry"
	"pochoir/internal/wire"
)

func main() {
	args := os.Args[1:]
	cmd := "show"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	var err error
	switch cmd {
	case "list":
		err = runList()
	case "show":
		err = runShow(args)
	case "diff":
		err = runDiff(args)
	case "trace":
		err = runTrace(args)
	case "checkpoints":
		err = runCheckpoints(args)
	case "help", "-h", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "blackbox: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "blackbox: %v\n", err)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprintf(w, `usage: blackbox [list|show|diff|trace|checkpoints] [flags] [ARG]

  list                 list bundles in the diagnostics directory
  show [BUNDLE]        render a bundle (default: the newest one)
  diff [BUNDLE]        compare the failing segment against the preceding one
  trace [BUNDLE]       write a Chrome trace of the event window (-o FILE)
  checkpoints [TARGET] list a spill-journal directory or inspect one entry
                       (default: the newest bundle's resume hint)

diagnostics directory: %s
`, flight.DefaultDir())
}

// bundles lists the post-mortem bundle paths in the diagnostics directory,
// oldest first (the zero-padded timestamp filenames make lexical order
// chronological).
func bundles() ([]string, error) {
	dir := flight.DefaultDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "postmortem-") && strings.HasSuffix(e.Name(), ".json") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// load resolves the bundle argument: an explicit path, or the newest bundle
// in the diagnostics directory.
func load(path string) (*flight.Bundle, string, error) {
	if path == "" {
		all, err := bundles()
		if err != nil {
			return nil, "", err
		}
		if len(all) == 0 {
			return nil, "", fmt.Errorf("no bundles in %s (set %s or pass a path)",
				flight.DefaultDir(), flight.DirEnvVar)
		}
		path = all[len(all)-1]
	}
	b, err := flight.ReadBundle(path)
	if err != nil {
		return nil, "", err
	}
	return b, path, nil
}

func runList() error {
	all, err := bundles()
	if err != nil {
		return err
	}
	if len(all) == 0 {
		fmt.Printf("no bundles in %s\n", flight.DefaultDir())
		return nil
	}
	for _, p := range all {
		b, err := flight.ReadBundle(p)
		if err != nil {
			fmt.Printf("%s  (unreadable: %v)\n", p, err)
			continue
		}
		fmt.Printf("%s  %s  %-15s  %d events  %s\n",
			b.WrittenAt.Format(time.RFC3339), filepath.Base(p), b.Cause.Kind,
			len(b.Events), b.Cause.Error)
	}
	return nil
}

func runShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	tail := fs.Int("tail", 20, "final events to print")
	width := fs.Int("width", 72, "timeline columns")
	fs.Parse(args)
	b, path, err := load(fs.Arg(0))
	if err != nil {
		return err
	}

	fmt.Printf("bundle    %s\n", path)
	fmt.Printf("schema    %s  written %s\n", b.Schema, b.WrittenAt.Format(time.RFC3339))
	fmt.Printf("cause     %s: %s\n", b.Cause.Kind, b.Cause.Error)
	if z := b.Cause.Zoid; z != nil {
		fmt.Printf("zoid      t=[%d,%d) lo=%v hi=%v\n", z.T0, z.T1, z.Lo, z.Hi)
	}
	fmt.Printf("run       %dD sizes=%v steps-run=%d algorithm=%s supervised=%v\n",
		b.Run.NDims, b.Run.Sizes, b.Run.StepsRun, b.Run.Algorithm, b.Run.Supervised)
	if r := b.Resume; r != nil {
		fmt.Printf("resume    durable checkpoint at step %d: %s\n", r.Step, r.Path)
	}
	if len(b.Profile) > 0 {
		var rep profile.Report
		if err := json.Unmarshal(b.Profile, &rep); err == nil {
			fmt.Printf("profile   %.3fs sampled CPU over %d windows, kernel %.1f%%, walker-overhead %.1f%%\n",
				rep.CPUSeconds, rep.Windows, 100*rep.KernelShare, 100*rep.WalkerShare)
			for i, ls := range rep.ByLabel["tenant"] {
				if i >= 3 || ls.Value == "" {
					continue
				}
				fmt.Printf("          tenant %-20s %.3fs (%.1f%%)\n", ls.Value, ls.CPUSeconds, 100*ls.Share)
			}
		}
	}
	fmt.Printf("host      %s %s/%s %d cpus pid=%d", b.Host.GoVersion, b.Host.OS, b.Host.Arch,
		b.Host.NumCPU, b.Host.PID)
	if b.Host.Commit != "" {
		fmt.Printf(" commit=%.12s", b.Host.Commit)
	}
	fmt.Println()
	fmt.Printf("events    %d in window (%d recorded, %d lanes)\n\n",
		len(b.Events), b.TotalEvents, b.Lanes)

	if len(b.Events) == 0 {
		fmt.Println("empty event window")
		return nil
	}

	timeline(b, *width)

	n := *tail
	if n > len(b.Events) {
		n = len(b.Events)
	}
	t0 := b.Events[0].TS
	fmt.Printf("\nfinal %d events:\n", n)
	for _, ev := range b.Events[len(b.Events)-n:] {
		fmt.Printf("  +%-12s w%d  %s\n", relTime(ev.TS-t0), ev.Worker, ev.Describe())
	}
	return nil
}

// kindGlyphs maps event kinds to timeline cell glyphs, ordered by severity:
// when a bucket holds several kinds the most severe one shows.
var kindGlyphs = []struct {
	kind  flight.Kind
	glyph byte
	label string
}{
	{flight.EvPanic, 'P', "panic"},
	{flight.EvFault, 'F', "faultpoint"},
	{flight.EvCancel, 'X', "cancel"},
	{flight.EvSup, 'S', "supervisor"},
	{flight.EvRunStart, 'r', "run-start"},
	{flight.EvRunEnd, 'e', "run-end"},
	{flight.EvCut, 'c', "cut"},
	{flight.EvBase, '.', "base"},
}

// timeline renders the merged window as one ASCII row per worker lane: time
// flows left to right across width buckets, each cell showing the most
// severe event kind that lane recorded in that slice of the window.
func timeline(b *flight.Bundle, width int) {
	if width < 8 {
		width = 8
	}
	t0 := b.Events[0].TS
	t1 := b.Events[len(b.Events)-1].TS
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	sev := make(map[flight.Kind]int, len(kindGlyphs))
	for i, kg := range kindGlyphs {
		sev[kg.kind] = len(kindGlyphs) - i
	}
	rows := make(map[int][]byte)
	counts := make(map[int]int)
	for _, ev := range b.Events {
		row, ok := rows[ev.Worker]
		if !ok {
			row = make([]byte, width)
			for i := range row {
				row[i] = ' '
			}
			rows[ev.Worker] = row
			row = rows[ev.Worker]
		}
		col := int((ev.TS - t0) * int64(width-1) / span)
		cur := row[col]
		best := -1
		for _, kg := range kindGlyphs {
			if kg.glyph == cur {
				best = sev[kg.kind]
			}
		}
		if sev[ev.Kind] > best {
			g := byte('?')
			for _, kg := range kindGlyphs {
				if kg.kind == ev.Kind {
					g = kg.glyph
				}
			}
			row[col] = g
		}
		counts[ev.Worker]++
	}
	lanes := make([]int, 0, len(rows))
	for w := range rows {
		lanes = append(lanes, w)
	}
	sort.Ints(lanes)
	fmt.Printf("timeline  %s per column\n", relTime(span/int64(width)))
	for _, w := range lanes {
		fmt.Printf("  w%-2d |%s| %d ev\n", w, rows[w], counts[w])
	}
	var legend []string
	for _, kg := range kindGlyphs {
		legend = append(legend, fmt.Sprintf("%c=%s", kg.glyph, kg.label))
	}
	fmt.Printf("       %s\n", strings.Join(legend, " "))
}

func relTime(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

// runDiff compares the failing tail of the window against the preceding
// healthy stretch. Supervised bundles split at supervisor segment-start
// markers: the last segment is the one that died, the one before it is the
// baseline. Unsupervised bundles split at the last run-start.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	b, path, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(b.Events) == 0 {
		return fmt.Errorf("%s: empty event window", path)
	}

	// Boundaries of the comparison slices: supervised segment-starts, or the
	// run-start markers of an unsupervised run.
	marker := func(ev flight.Event) bool {
		if b.Run.Supervised {
			return ev.Kind == flight.EvSup && ev.A0 == 0 // segment-start
		}
		return ev.Kind == flight.EvRunStart
	}
	var starts []int
	for i, ev := range b.Events {
		if marker(ev) {
			starts = append(starts, i)
		}
	}
	if len(starts) == 0 {
		starts = []int{0}
	}
	fail := b.Events[starts[len(starts)-1]:]
	var prev []flight.Event
	if len(starts) >= 2 {
		prev = b.Events[starts[len(starts)-2]:starts[len(starts)-1]]
	}

	fmt.Printf("bundle    %s\ncause     %s: %s\n", path, b.Cause.Kind, b.Cause.Error)
	if prev == nil {
		fmt.Println("\nno preceding segment in the window; showing the failing one only")
	} else {
		fmt.Printf("\nfailing segment: %d events over %s; preceding: %d events over %s\n",
			len(fail), relTime(spanOf(fail)), len(prev), relTime(spanOf(prev)))
	}
	fmt.Printf("\n%-12s %10s %10s %10s\n", "kind", "failing", "previous", "delta")
	pc, fc := kindTally(prev), kindTally(fail)
	for k := flight.Kind(0); int(k) < 8; k++ {
		if fc[k] == 0 && pc[k] == 0 {
			continue
		}
		fmt.Printf("%-12s %10d %10d %+10d\n", k.String(), fc[k], pc[k], fc[k]-pc[k])
	}
	fmt.Println("\nfailing segment's final events:")
	n := 10
	if n > len(fail) {
		n = len(fail)
	}
	t0 := fail[0].TS
	for _, ev := range fail[len(fail)-n:] {
		fmt.Printf("  +%-12s w%d  %s\n", relTime(ev.TS-t0), ev.Worker, ev.Describe())
	}
	return nil
}

func spanOf(evs []flight.Event) int64 {
	if len(evs) < 2 {
		return 0
	}
	return evs[len(evs)-1].TS - evs[0].TS
}

func kindTally(evs []flight.Event) map[flight.Kind]int {
	m := make(map[flight.Kind]int)
	for _, ev := range evs {
		m[ev.Kind]++
	}
	return m
}

// runCheckpoints renders durable spill journals. A directory target lists
// every entry, fully validating each (header and section CRCs, no trailing
// bytes) so an operator sees at a glance which checkpoint a resume would
// restore; a file target decodes one entry and prints its header and array
// sections. With no target it follows the newest bundle's resume hint.
func runCheckpoints(args []string) error {
	fs := flag.NewFlagSet("checkpoints", flag.ExitOnError)
	fs.Parse(args)
	target := fs.Arg(0)
	if target == "" {
		b, path, err := load("")
		if err != nil {
			return fmt.Errorf("no journal argument and no bundle to follow: %w", err)
		}
		if b.Resume == nil {
			return fmt.Errorf("%s has no resume hint; pass a journal directory or entry file", path)
		}
		fmt.Printf("journal   from resume hint of %s\n", filepath.Base(path))
		target = b.Resume.Dir
	}
	info, err := os.Stat(target)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return listJournal(target)
	}
	return inspectEntry(target)
}

func listJournal(dir string) error {
	j, err := wire.OpenJournal(dir, 0)
	if err != nil {
		return err
	}
	ents, err := j.Entries()
	if err != nil {
		return err
	}
	if len(ents) == 0 {
		fmt.Printf("no checkpoint entries in %s\n", dir)
		return nil
	}
	fmt.Printf("journal   %s (%d entries, newest last)\n", dir, len(ents))
	var newestGood string
	for _, e := range ents {
		status := "ok"
		if _, rerr := wire.ReadEntry(e.Path); rerr != nil {
			status = "CORRUPT: " + trimPrefixPath(rerr.Error(), e.Path)
		} else {
			newestGood = e.Path
		}
		fmt.Printf("  %-34s step=%-8d seq=%-6d %10d bytes  %s\n",
			filepath.Base(e.Path), e.Steps, e.Seq, e.Bytes, status)
	}
	if newestGood == "" {
		fmt.Println("no entry validates: a resume from this journal cold-starts")
	} else {
		fmt.Printf("resume would restore %s\n", filepath.Base(newestGood))
	}
	return nil
}

// trimPrefixPath strips the entry's own path from an error string so the
// listing stays one line per entry.
func trimPrefixPath(msg, path string) string {
	msg = strings.ReplaceAll(msg, path+": ", "")
	return strings.ReplaceAll(msg, path, "")
}

func inspectEntry(path string) error {
	cp, err := wire.ReadEntry(path)
	if err != nil {
		return err
	}
	fmt.Printf("entry     %s\n", path)
	fmt.Printf("schema    %s\n", wire.Schema)
	fmt.Printf("steps     %d (resume cursor)\n", cp.StepsRun)
	fmt.Printf("grid      %dD sizes=%v\n", len(cp.Sizes), cp.Sizes)
	pts := 1
	for _, s := range cp.Sizes {
		pts *= s
	}
	for i, a := range cp.Arrays {
		kind, n, _ := wire.KindOf(a.Data)
		fmt.Printf("array %-3d %s, %d slots, %d elements (%d points x %d slots), %d payload bytes\n",
			i, kind, a.Slots, n, pts, a.Slots, n*kind.Size())
	}
	fmt.Println("integrity ok (header and all section CRCs validate)")
	return nil
}

// runTrace exports the window through the shared Chrome trace exporter: one
// instant-event track per worker lane plus the decoded description of every
// event, so a crash window drops into the same Perfetto UI as the live
// telemetry span traces.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "postmortem-trace.json", "output `FILE`")
	fs.Parse(args)
	b, path, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	tracks := make(map[int]string)
	evs := make([]telemetry.ChromeInstant, 0, len(b.Events))
	for _, ev := range b.Events {
		tracks[ev.Worker] = "lane-" + strconv.Itoa(ev.Worker)
		evs = append(evs, telemetry.ChromeInstant{
			Name: ev.Kind.String(),
			TID:  ev.Worker,
			TS:   ev.TS,
			Args: fmt.Sprintf(`"desc":%s,"seq":%d`, strconv.Quote(ev.Describe()), ev.Seq),
		})
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	werr := telemetry.WriteChromeEvents(f, "pochoir post-mortem ("+b.Cause.Kind+")", tracks, evs)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Printf("wrote %d events from %s to %s\n", len(evs), filepath.Base(path), *out)
	return nil
}
