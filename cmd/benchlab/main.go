// Command benchlab is the performance observatory's CLI: it executes the
// paper's benchmark suite across the TRAP/STRAP/LOOPS engines, fuses wall
// clock, execution telemetry, work/span analysis, and cache simulation into
// one schema-versioned JSON report, and gates new reports against a
// recorded baseline with noise-aware thresholds.
//
//	benchlab run  -profile quick -out BENCH_pochoir.json
//	benchlab diff old.json new.json
//	benchlab check -baseline BENCH_baseline.json BENCH_pochoir.json
//
// diff and check exit nonzero when a gated regression is found; check
// -informational reports but always exits zero (for CI jobs that should
// warn, not block, on shared-runner noise).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pochoir/internal/benchlab"
	"pochoir/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "diff":
		diffCmd(os.Args[2:])
	case "check":
		checkCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "benchlab: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchlab run   [-profile quick|full] [-bench names] [-engines list] [-skip-slow] [-out file]
  benchlab diff  [-rel 0.10] [-mad 3] [-markdown] old.json new.json
  benchlab check [-baseline file] [-rel 0.10] [-mad 3] [-markdown] [-informational] new.json

run executes the paper suite and writes the fused JSON report.
diff compares two reports; exit 1 when the noise gate flags a regression.
check is diff against a committed baseline (default BENCH_baseline.json).`)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	profile := fs.String("profile", "quick", "workload profile: quick or full")
	benches := fs.String("bench", "", "comma-separated benchmark names (default: the whole suite)")
	engines := fs.String("engines", "", "comma-separated engines among TRAP,STRAP,LOOPS (default: all)")
	skipSlow := fs.Bool("skip-slow", false, "skip the instrumented telemetry repetition and the cache trace")
	out := fs.String("out", "BENCH_pochoir.json", "output report path")
	quiet := fs.Bool("q", false, "suppress per-configuration progress lines")
	_ = fs.Parse(args)

	cfg := benchlab.Config{Profile: *profile, SkipSlowSignals: *skipSlow}
	if *benches != "" {
		cfg.Benchmarks = splitList(*benches)
	}
	if *engines != "" {
		for _, name := range splitList(*engines) {
			alg, ok := parseEngine(name)
			if !ok {
				fatalf("unknown engine %q (want TRAP, STRAP, or LOOPS)", name)
			}
			cfg.Engines = append(cfg.Engines, alg)
		}
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	rep, err := benchlab.Collect(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if err := rep.WriteFile(*out); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s: %d runs, profile %s, commit %s\n",
		*out, len(rep.Runs), rep.Profile, orDash(rep.Commit))
}

func diffCmd(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	gate, markdown := gateFlags(fs)
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fatalf("diff wants exactly two reports, got %d", fs.NArg())
	}
	os.Exit(compare(fs.Arg(0), fs.Arg(1), *gate, *markdown, false))
}

func checkCmd(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	baseline := fs.String("baseline", "BENCH_baseline.json", "recorded baseline report")
	informational := fs.Bool("informational", false, "report regressions but exit 0 (warn-only CI mode)")
	gate, markdown := gateFlags(fs)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("check wants exactly one new report, got %d", fs.NArg())
	}
	os.Exit(compare(*baseline, fs.Arg(0), *gate, *markdown, *informational))
}

func gateFlags(fs *flag.FlagSet) (*benchlab.Gate, *bool) {
	g := benchlab.DefaultGate()
	gate := &g
	fs.Float64Var(&gate.RelThreshold, "rel", g.RelThreshold,
		"relative median-shift threshold (0.10 = 10%)")
	fs.Float64Var(&gate.MADFactor, "mad", g.MADFactor,
		"noise factor: a shift must also exceed this many MADs")
	markdown := fs.Bool("markdown", false, "render the comparison as a markdown table")
	return gate, markdown
}

// compare loads both reports, renders the comparison, and returns the
// process exit code.
func compare(oldPath, newPath string, gate benchlab.Gate, markdown, informational bool) int {
	old, err := benchlab.ReadFile(oldPath)
	if err != nil {
		fatalf("%v", err)
	}
	cur, err := benchlab.ReadFile(newPath)
	if err != nil {
		fatalf("%v", err)
	}
	deltas := benchlab.Compare(old, cur, gate)
	if markdown {
		benchlab.WriteMarkdown(os.Stdout, deltas)
	} else {
		benchlab.WriteText(os.Stdout, deltas)
	}
	regs := benchlab.Regressions(deltas)
	if len(regs) == 0 {
		fmt.Printf("\nno regressions (%d configurations, gate: >%.0f%% and >%.1f MAD)\n",
			len(deltas), 100*gate.RelThreshold, gate.MADFactor)
		return 0
	}
	fmt.Printf("\n%d regression(s) flagged (gate: >%.0f%% and >%.1f MAD)\n",
		len(regs), 100*gate.RelThreshold, gate.MADFactor)
	if informational {
		fmt.Println("informational mode: exiting 0")
		return 0
	}
	return 1
}

func parseEngine(name string) (core.Algorithm, bool) {
	switch strings.ToUpper(name) {
	case "TRAP":
		return core.TRAP, true
	case "STRAP":
		return core.STRAP, true
	case "LOOPS":
		return core.LOOPS, true
	}
	return 0, false
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchlab: "+format+"\n", args...)
	os.Exit(1)
}
