// Command pochoird is the pochoir stencil daemon: a long-running service
// that accepts stencil specifications over HTTP, compiles them, and runs
// each accepted job as a supervised resilient computation on a bounded
// shared worker pool.
//
// Submit a job:
//
//	curl -s -X POST -H 'X-Tenant: alice' http://127.0.0.1:9700/jobs -d '{
//	  "spec":  "stencil heat { dims: 1; array u; boundary u: periodic; kernel { u(t+1,x) = 0.25*u(t,x-1) + 0.5*u(t,x) + 0.25*u(t,x+1); } }",
//	  "sizes": [4096], "steps": 256, "priority": "high", "deadline_ms": 30000
//	}'
//
// then poll /jobs/<id> (add ?wait_ms=5000 to block until it finishes),
// scrape /metrics, watch /progressz, read the CPU attribution at /profilez
// (enable with POCHOIR_PROFILE=1 or -profile-window), and stop the daemon
// with SIGTERM —
// it stops admitting, finishes or durably spills every accepted job, and
// prints a drain summary before exiting.
//
// Overload is shed, never buffered: a full queue or an exhausted tenant
// quota answers 429 with a Retry-After hint.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pochoir"
	"pochoir/internal/gateway"
	"pochoir/internal/profile"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9700", "listen address (use :0 for an ephemeral port)")
		workers  = flag.Int("workers", 2, "worker pool size — the hard bound on concurrent jobs")
		queue    = flag.Int("queue", 16, "admission queue capacity; past it, submissions shed with 429")
		spillDir = flag.String("spill-dir", "", "directory for durable per-job checkpoint journals (empty = in-memory only)")
		rate     = flag.Float64("tenant-rate", 50, "per-tenant submission tokens per second")
		burst    = flag.Int("tenant-burst", 100, "per-tenant token bucket capacity")
		conc     = flag.Int("tenant-concurrency", 0, "per-tenant cap on admitted-but-unfinished jobs (0 = queue capacity)")
		deadline = flag.Duration("default-deadline", time.Minute, "deadline for jobs that do not set one")
		maxDl    = flag.Duration("max-deadline", 5*time.Minute, "clamp on client-supplied deadlines")
		drain    = flag.Duration("drain-timeout", 2*time.Minute, "how long SIGTERM waits for in-flight jobs before giving up")
		segSteps = flag.Int("segment-steps", 64, "time steps per supervised checkpoint segment (0 = one segment)")
		noTrace  = flag.Bool("no-trace", false, "disable causal job tracing (/tracez answers 404)")
		traceCap = flag.Int("trace-capacity", 256, "retained traces served at /tracez (FIFO eviction)")
		traceSmp = flag.Float64("trace-sample", 0.05, "keep probability for fast successful traces (errors, sheds, and the slow tail are always kept)")
		sloEvery = flag.Duration("slo-interval", 10*time.Second, "SLO burn-rate sampling period")
		profWin  = flag.Duration("profile-window", 0, "continuous-profiling CPU capture window (0 = POCHOIR_PROFILE env, or off)")
		noProf   = flag.Bool("no-profile", false, "disable continuous profiling even when POCHOIR_PROFILE or -profile-window enables it (/profilez answers 404)")
	)
	flag.Parse()

	cfg := gateway.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		SpillDir:        *spillDir,
		TenantRate:      *rate,
		TenantBurst:     *burst,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDl,
		Supervise: pochoir.SupervisePolicy{
			SegmentSteps: *segSteps,
		},
	}
	cfg.SLO.Interval = *sloEvery
	if !*noTrace {
		cfg.Trace = pochoir.NewTracer(pochoir.TracerConfig{
			Capacity:   *traceCap,
			SampleProb: *traceSmp,
		})
	}
	if *conc > 0 {
		cfg.TenantMaxConcurrent = *conc
	}
	if !*noProf {
		if *profWin > 0 {
			cfg.Profiler = profile.New(profile.Config{Window: *profWin})
		} else {
			cfg.Profiler = profile.FromEnv()
		}
	}

	if err := gateway.Daemon(cfg, *addr, *drain, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
