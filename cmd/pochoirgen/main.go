// Command pochoirgen is the Phase-2 Pochoir stencil compiler driver: it
// reads a stencil specification (.pch), checks it (reporting any violation
// of the Pochoir shape rules with a source position), and performs a
// source-to-source translation to Go, emitting the stencil object, the
// checked point kernel, and a specialized interior clone in either the
// -split-pointer or -split-macro-shadow style of §4 of the paper.
//
// Usage:
//
//	pochoirgen [-pkg name] [-style pointer|macro] [-o out.go] spec.pch
//
// With -check only, the specification is validated and its inferred shape,
// depth, and slopes are printed — the Phase-1 compliance report.
package main

import (
	"flag"
	"fmt"
	"os"

	"pochoir/internal/compiler"
)

func main() {
	pkg := flag.String("pkg", "main", "package name for the generated file")
	style := flag.String("style", "pointer", `loop-indexing style: "pointer" (split-pointer) or "macro" (split-macro-shadow)`)
	out := flag.String("o", "", "output file (default: stdout)")
	checkOnly := flag.Bool("check", false, "validate the specification and print its inferred shape without generating code")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pochoirgen [-pkg name] [-style pointer|macro] [-o out.go] spec.pch")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	checked, err := compiler.CompileSource(string(src))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", flag.Arg(0), err))
	}
	if *checkOnly {
		fmt.Printf("stencil %s: dims=%d depth=%d homeDT=%+d\n",
			checked.Prog.Name, checked.Prog.Dims, checked.Depth, checked.HomeDT)
		fmt.Printf("shape: %s\n", checked.Shape)
		fmt.Printf("slopes: %v  reach: %v\n", checked.Shape.Slopes(), checked.Shape.Reaches())
		return
	}

	var st compiler.Style
	switch *style {
	case "pointer":
		st = compiler.SplitPointer
	case "macro":
		st = compiler.SplitMacroShadow
	default:
		fatal(fmt.Errorf("unknown style %q", *style))
	}
	code, err := compiler.Codegen(checked, *pkg, st)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(code)
		return
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pochoirgen:", err)
	os.Exit(1)
}
