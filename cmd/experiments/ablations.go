package main

import (
	"fmt"
	"time"

	"pochoir"
	"pochoir/internal/benchdef"
	"pochoir/internal/stencils"
	"pochoir/internal/tune"
)

// macroShadower is implemented by benchmarks offering a Fig. 12(b)-style
// interior clone alongside the default split-pointer one.
type macroShadower interface {
	stencils.Instance
	PochoirMacroShadow(pochoir.Options) stencils.Job
}

// noInteriorRunner is implemented by benchmarks offering the §4
// modular-indexing ablation (interior clone disabled).
type noInteriorRunner interface {
	stencils.Instance
	PochoirNoInterior(pochoir.Options) stencils.Job
}

// runFig13 regenerates Fig. 13: throughput (grid points per second) of the
// two loop-indexing styles on the 2D periodic heat equation across grid
// sizes. The paper shows split-pointer ahead of split-macro-shadow across
// the sweep (1.2e8 .. 5.3e9 points/s on their hardware).
func runFig13() {
	header("Fig. 13: loop-indexing styles, 2D periodic heat (points/s)")
	ns := []int{100, 200, 400, 800, 1600}
	steps := 200
	if *quick {
		ns = []int{100, 200, 400}
		steps = 50
	}
	f := stencils.NewHeat2DFactory(true)
	fmt.Printf("%8s %16s %20s %8s\n", "N", "split-pointer", "split-macro-shadow", "ratio")
	for _, n := range ns {
		instP := f.New([]int{n, n}, steps)
		dP := timeJob(instP.Pochoir(pochoir.Options{}))
		instM := f.New([]int{n, n}, steps).(macroShadower)
		dM := timeJob(instM.PochoirMacroShadow(pochoir.Options{}))
		updates := float64(instP.Points()) * float64(instP.Steps())
		fmt.Printf("%8d %16.3g %20.3g %7.2fx\n",
			n, updates/dP.Seconds(), updates/dM.Seconds(), dM.Seconds()/dP.Seconds())
	}
	footer()
}

// runMod regenerates the §4 modular-indexing ablation: the same Pochoir
// computation with the interior clone disabled, so every access pays the
// modulo/boundary machinery. The paper measured a 2.3x degradation at
// 5000^2 x 5000.
func runMod() {
	header("§4 ablation: code cloning vs modular indexing everywhere")
	f := stencils.NewHeat2DFactory(true)
	sizes, steps := []int{1000, 1000}, 100
	if *quick {
		sizes, steps = []int{300, 300}, 40
	}
	cloned := timeJob(f.New(sizes, steps).Pochoir(pochoir.Options{}))
	modAll := timeJob(f.New(sizes, steps).(noInteriorRunner).PochoirNoInterior(pochoir.Options{}))
	fmt.Printf("%-36s %10s\n", "with interior clone (code cloning):", seconds(cloned))
	fmt.Printf("%-36s %10s\n", "modular indexing on every access:", seconds(modAll))
	fmt.Printf("%-36s %9.1fx   (paper: 2.3x)\n", "degradation:", modAll.Seconds()/cloned.Seconds())
	footer()
}

// runCoarsen regenerates the §4 coarsening ablation: recursion down to
// single grid points vs the paper's heuristic cutoffs vs an intermediate
// setting. The paper reports a 36x gap between pointwise recursion and
// proper coarsening on the 2D heat equation.
func runCoarsen() {
	header("§4 ablation: base-case coarsening, 2D periodic heat")
	f := stencils.NewHeat2DFactory(true)
	sizes, steps := []int{500, 500}, 50
	if *quick {
		sizes, steps = []int{200, 200}, 20
	}
	var base time.Duration
	for i, c := range benchdef.CoarseningAblation {
		opts := pochoir.Options{TimeCutoff: c.TimeCutoff, SpaceCutoff: c.SpaceCutoff, Grain: c.Grain}
		d := timeJob(f.New(sizes, steps).Pochoir(opts))
		if i == 0 {
			base = d
			fmt.Printf("%-34s %10s\n", c.Name, seconds(d))
			continue
		}
		fmt.Printf("%-34s %10s   %6.1fx faster than pointwise\n",
			c.Name, seconds(d), base.Seconds()/d.Seconds())
	}
	fmt.Println("(paper: proper coarsening is 36x faster than pointwise recursion)")
	footer()
}

// runTune runs the coordinate-descent autotuner (the ISAT substitute) on
// the 2D heat equation and reports the configuration it selects.
func runTune() {
	header("§4 autotuning: coarsening search (ISAT substitute)")
	f := stencils.NewHeat2DFactory(true)
	sizes, steps := []int{500, 500}, 40
	if *quick {
		sizes, steps = []int{200, 200}, 16
	}
	eval := func(c tune.Config) time.Duration {
		opts := pochoir.Options{TimeCutoff: c.TimeCutoff, SpaceCutoff: c.SpaceCutoff}
		return timeJob(f.New(sizes, steps).Pochoir(opts))
	}
	res := tune.Search(2, tune.Config{TimeCutoff: 5, SpaceCutoff: []int{100, 100}}, eval, tune.Options{
		TimeCandidates:  []int{1, 2, 5, 10},
		SpaceCandidates: []int{16, 50, 100, 200},
		MaxPasses:       2,
	})
	fmt.Printf("best: time cutoff %d, space cutoffs %v (%s; %d configurations timed)\n",
		res.Best.TimeCutoff, res.Best.SpaceCutoff, seconds(res.BestCost), res.Evals)
	footer()
}
