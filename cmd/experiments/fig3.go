package main

import (
	"fmt"

	"pochoir"
	"pochoir/internal/benchdef"
	"pochoir/internal/stencils"
)

func instance(f stencils.Factory) stencils.Instance {
	if *quick {
		// The shared smoke-test workload table (internal/benchdef).
		if w, ok := benchdef.Quick(f.Name); ok {
			return f.New(w.Sizes, w.Steps)
		}
	}
	return f.New(nil, 0) // scaled-down defaults
}

// runIntro reproduces the §1 headline: the 2D periodic heat equation, the
// parallel LOOPS implementation vs the Pochoir TRAP code. The paper
// measured 248s vs 24s (>10x) at 5000^2 x 5000 on 12 cores.
func runIntro() {
	header("§1 intro: LOOPS vs Pochoir, 2D periodic heat")
	f := stencils.NewHeat2DFactory(true)
	inst := instance(f)
	fmt.Printf("grid %v, %d steps\n", inst.Sizes(), inst.Steps())
	loops := timeJob(inst.LoopsParallel())
	inst2 := instance(f)
	poch := timeJob(inst2.Pochoir(pochoir.Options{}))
	fmt.Printf("%-24s %s\n", "parallel loops (LOOPS):", seconds(loops))
	fmt.Printf("%-24s %s\n", "Pochoir (TRAP):", seconds(poch))
	fmt.Printf("%-24s %.1fx   (paper: 248s vs 24s, >10x)\n", "advantage:",
		loops.Seconds()/poch.Seconds())
	footer()
}

// runFig3 regenerates the Fig. 3 table: for each benchmark, Pochoir on one
// core and on all cores, the serial loop implementation, and the parallel
// loop implementation, with the paper's two ratio columns.
func runFig3() {
	header("Fig. 3: benchmark table (scaled workloads)")
	fmt.Printf("%-12s %-5s %-16s %6s | %9s %9s %7s | %9s %6s | %9s %6s\n",
		"Benchmark", "Dims", "Grid", "Steps",
		"Poch 1c", "Poch Nc", "speedup", "Ser loops", "ratio", "Par loops", "ratio")
	for _, f := range stencils.All() {
		if f.Order > 10 {
			continue // Fig. 5 kernels have their own table
		}
		if *benchName != "" && f.Name != *benchName {
			continue
		}
		serial1 := timeJob(instance(f).Pochoir(pochoir.Options{Serial: true}))
		parN := timeJob(instance(f).Pochoir(pochoir.Options{}))
		loopsS := timeJob(instance(f).LoopsSerial())
		loopsP := timeJob(instance(f).LoopsParallel())
		inst := instance(f)
		grid := ""
		for i, s := range inst.Sizes() {
			if i > 0 {
				grid += "x"
			}
			grid += fmt.Sprint(s)
		}
		fmt.Printf("%-12s %-5d %-16s %6d | %9s %9s %6.1fx | %9s %5.1fx | %9s %5.1fx\n",
			f.Name, f.Dims, grid, inst.Steps(),
			seconds(serial1), seconds(parN), serial1.Seconds()/parN.Seconds(),
			seconds(loopsS), loopsS.Seconds()/parN.Seconds(),
			seconds(loopsP), loopsP.Seconds()/parN.Seconds())
	}
	fmt.Println("(ratio = that implementation's time / Pochoir-all-cores time, as in the paper)")
	footer()
}

// runFig5 regenerates Fig. 5: throughput of the Berkeley 7-point and
// 27-point kernels in GStencil/s and GFLOPS.
func runFig5() {
	header("Fig. 5: 3D 7-point and 27-point kernels")
	fmt.Printf("%-12s %-14s %6s | %12s %10s\n", "Kernel", "Grid", "Steps", "GStencil/s", "GFLOPS")
	for _, name := range []string{"3D 7-point", "3D 27-point"} {
		f, _ := stencils.Lookup(name)
		inst := instance(f)
		d := timeJob(inst.Pochoir(pochoir.Options{}))
		updates := float64(inst.Points()) * float64(inst.Steps())
		gst := updates / d.Seconds() / 1e9
		grid := ""
		for i, s := range inst.Sizes() {
			if i > 0 {
				grid += "x"
			}
			grid += fmt.Sprint(s)
		}
		fmt.Printf("%-12s %-14s %6d | %12.3f %10.2f\n",
			name, grid, inst.Steps(), gst, gst*inst.FlopsPerPoint())
	}
	fmt.Println("(paper, 8 threads on Xeon X5650: 7-point 2.49 GStencil/s / 19.92 GFLOPS;")
	fmt.Println(" 27-point 0.88 GStencil/s / 26.4 GFLOPS)")
	footer()
}
