package main

import (
	"fmt"
	"os"

	"pochoir"
	"pochoir/internal/cilkview"
	"pochoir/internal/core"
	"pochoir/internal/stencils"
)

// runTelemetry is the observability experiment: a Heat 2D (periodic) run
// executed with the telemetry recorder attached, cross-checking the
// decomposition invariants the paper relies on (§3: hyperspace cuts fan
// out 3^k subzoids over k+1 dependency levels; the decomposition
// partitions space-time exactly) and comparing the run's achieved
// parallelism (Σ worker busy time / wall time) against the Fig. 9-style
// parallelism the cilkview analyzer predicts for the identical recursion.
//
// -stats prints the full aggregate report (counters, base-case volume
// histogram, per-worker busy time); -trace FILE writes a Chrome
// trace-event JSON of the decomposition, loadable in chrome://tracing or
// https://ui.perfetto.dev, with one track per worker.
func runTelemetry() {
	sizes, steps := []int{512, 512}, 64
	if *quick {
		sizes, steps = []int{256, 256}, 16
	}
	header(fmt.Sprintf("Telemetry: instrumented Heat 2p run (%dx%d, %d steps)", sizes[0], sizes[1], steps))

	rec := pochoir.NewRecorder()
	f := stencils.NewHeat2DFactory(true)
	inst := f.New(sizes, steps)
	job := inst.Pochoir(pochoir.Options{Telemetry: rec})
	d := timeJob(job)
	st := rec.Snapshot()

	points := int64(sizes[0]) * int64(sizes[1]) * int64(steps)
	ok := "ok"
	if st.BasePoints != points {
		ok = "MISMATCH"
	}
	fmt.Printf("compute time: %s\n", seconds(d))
	fmt.Printf("base-case point updates: %d, steps x grid volume: %d  [%s]\n",
		st.BasePoints, points, ok)
	fmt.Printf("decomposition: %d hyperspace cuts, %d time cuts, %d base cases (%d interior / %d boundary)\n",
		st.HyperCuts, st.TimeCuts, st.Bases, st.InteriorBases, st.BoundaryBases())
	if st.HyperCuts > 0 {
		fmt.Printf("hyperspace fanout: avg %.1f subzoids over avg %.1f dependency levels per cut\n",
			float64(st.Fanout)/float64(st.HyperCuts), float64(st.Levels)/float64(st.HyperCuts))
	}
	fmt.Printf("scheduler: %d spawns, %d inline tasks across %d worker track(s)\n",
		st.Spawns, st.Inlines, st.Workers)

	// Predicted parallelism of the identical recursion (same coarsening as
	// the §4 heuristic the run used), per the Fig. 9 methodology.
	w := cilkview.Config(2, sizes[0], 1, true, core.TRAP)
	w.TimeCutoff = 5
	w.SpaceCutoff[0], w.SpaceCutoff[1] = 100, 100
	pred := cilkview.New(w, cilkview.DefaultCosts()).Analyze(1, 1+steps).Parallelism()
	fmt.Printf("parallelism: achieved %.2f (busy %.3fs / wall %.3fs) vs cilkview-predicted T1/Tinf %.1f (capped by %d core(s))\n",
		st.AchievedParallelism(), st.BusyTotal().Seconds(), st.Wall.Seconds(), pred, goMaxProcs())

	if *statsFlag {
		fmt.Println()
		st.WriteReport(os.Stdout)
	}
	if *traceFile != "" {
		if err := rec.WriteChromeTraceFile(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace (%d events) to %s — load it at chrome://tracing or https://ui.perfetto.dev\n",
			st.Events, *traceFile)
	}
	footer()
}
