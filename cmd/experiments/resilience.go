package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"pochoir"
	"pochoir/internal/faultpoint"
)

// runResilience measures the supervised-run machinery on Heat 2D:
//
//  1. the happy-path overhead of RunSupervised with checkpointing disabled
//     (supervisor bookkeeping only; the 5%-of-Run acceptance number),
//  2. the cost of segmented checkpointing with no faults,
//  3. the recovery overhead when a kernel panic is injected at >90%
//     progress — the supervisor restores the last segment checkpoint and
//     retries, so the penalty is one segment plus one grid copy, not a
//     whole rerun,
//  4. the degradation ladder under a persistently broken decomposition
//     (unlimited cut-site panics: TRAP and STRAP both fail, LOOPS
//     completes), and
//  5. shadow verification catching a silently corrupted sweep.
//
// Every variant must finish with the same total heat as the uninterrupted
// reference run.
func runResilience() {
	X, Y, steps := 256, 256, 64
	if *quick {
		X, Y, steps = 128, 128, 32
	}
	header(fmt.Sprintf("Resilience: supervised runs on Heat 2p (%dx%d, %d steps)", X, Y, steps))

	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	const cx, cy = 0.125, 0.125
	newHeat := func() (*pochoir.Stencil[float64], *pochoir.Array[float64]) {
		st := pochoir.New[float64](sh)
		u := pochoir.MustArray[float64](sh.Depth(), X, Y)
		u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
		st.MustRegisterArray(u)
		rng := rand.New(rand.NewSource(11))
		for x := 0; x < X; x++ {
			for y := 0; y < Y; y++ {
				u.Set(0, rng.Float64(), x, y)
			}
		}
		return st, u
	}
	heatKernel := func(u *pochoir.Array[float64]) pochoir.Kernel {
		return pochoir.K2(func(t, x, y int) {
			c := u.Get(t, x, y)
			u.Set(t+1, c+
				cx*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
				cy*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
		})
	}
	sum := func(u *pochoir.Array[float64]) float64 {
		var s float64
		for x := 0; x < X; x++ {
			for y := 0; y < Y; y++ {
				s += u.Get(steps, x, y)
			}
		}
		return s
	}
	check := func(got, want float64) string {
		if math.Abs(got-want) <= 1e-9*math.Abs(want) {
			return "ok"
		}
		return "MISMATCH"
	}
	// Each timing is the best of reps runs, like the paper's methodology.
	reps := 3
	if *quick {
		reps = 2
	}
	best := func(run func() time.Duration) time.Duration {
		b := run()
		for i := 1; i < reps; i++ {
			if d := run(); d < b {
				b = d
			}
		}
		return b
	}

	// Reference: plain Run.
	var refSum float64
	tRun := best(func() time.Duration {
		st, u := newHeat()
		start := time.Now()
		if err := st.Run(steps, heatKernel(u)); err != nil {
			panic(err)
		}
		d := time.Since(start)
		refSum = sum(u)
		return d
	})
	fmt.Printf("plain Run:                     %s\n", seconds(tRun))

	// 1. Happy path: supervisor on, checkpoints off.
	var happySum float64
	tHappy := best(func() time.Duration {
		st, u := newHeat()
		start := time.Now()
		if _, err := st.RunSupervised(context.Background(), steps, heatKernel(u),
			pochoir.SupervisePolicy{NoCheckpoint: true}); err != nil {
			panic(err)
		}
		d := time.Since(start)
		happySum = sum(u)
		return d
	})
	fmt.Printf("supervised, no checkpoints:    %s  (%+.1f%% vs Run)  [%s]\n",
		seconds(tHappy), 100*(tHappy.Seconds()/tRun.Seconds()-1), check(happySum, refSum))

	// 2. Segmented checkpointing, no faults.
	segSteps := steps / 8
	var segSum float64
	var segRep *pochoir.RunReport
	tSeg := best(func() time.Duration {
		st, u := newHeat()
		start := time.Now()
		rep, err := st.RunSupervised(context.Background(), steps, heatKernel(u),
			pochoir.SupervisePolicy{SegmentSteps: segSteps})
		if err != nil {
			panic(err)
		}
		d := time.Since(start)
		segSum, segRep = sum(u), rep
		return d
	})
	fmt.Printf("supervised, %2d segments:       %s  (%+.1f%% vs Run, %d checkpoints)  [%s]\n",
		len(segRep.Segments), seconds(tSeg), 100*(tSeg.Seconds()/tRun.Seconds()-1),
		segRep.Checkpoints, check(segSum, refSum))

	// 3. Recovery: a kernel panic at >90% progress. The supervisor pays one
	// segment recomputation instead of the whole run.
	crashAt := steps - steps/16 - 1
	var recSum float64
	var recRep *pochoir.RunReport
	tRec := best(func() time.Duration {
		st, u := newHeat()
		crashed := false
		kern := pochoir.K2(func(t, x, y int) {
			if t == crashAt && x == X/2 && y == Y/2 && !crashed {
				crashed = true
				panic("injected fault at >90% progress")
			}
			c := u.Get(t, x, y)
			u.Set(t+1, c+
				cx*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
				cy*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
		})
		start := time.Now()
		rep, err := st.RunSupervised(context.Background(), steps, kern,
			pochoir.SupervisePolicy{SegmentSteps: segSteps, BaseDelay: time.Microsecond})
		if err != nil {
			panic(err)
		}
		d := time.Since(start)
		recSum, recRep = sum(u), rep
		return d
	})
	fmt.Printf("fault at step %2d, recovered:   %s  (%+.1f%% vs Run, %d retry)  [%s]\n",
		crashAt, seconds(tRec), 100*(tRec.Seconds()/tRun.Seconds()-1),
		recRep.Retries, check(recSum, refSum))

	// 4. Degradation ladder: unlimited cut-site panics break both recursive
	// engines; the serial checked-loops rung finishes the job.
	st, u := newHeat()
	faultpoint.Arm(faultpoint.SiteCut,
		faultpoint.Spec{Kind: faultpoint.KindPanic, Depth: faultpoint.AnyDepth})
	rep, err := st.RunSupervised(context.Background(), steps, heatKernel(u),
		pochoir.SupervisePolicy{MaxAttempts: 6, DegradeAfter: 2, BaseDelay: time.Microsecond})
	faultpoint.DisarmAll()
	if err != nil {
		fmt.Printf("degradation ladder: UNEXPECTED failure: %v\n", err)
	} else {
		fmt.Printf("degradation ladder:            %d attempts, %d degradations, finished on %v  [%s]\n",
			rep.Attempts, rep.Degradations, rep.FinalEngine, check(sum(u), refSum))
	}

	// 5. Shadow verification: a silently corrupted sweep (wrong values, no
	// panic) is caught by the sampled recompute, rolled back, and retried.
	st, u = newHeat()
	var corrupt atomic.Int64
	kern := pochoir.K2(func(t, x, y int) {
		c := u.Get(t, x, y)
		v := c +
			cx*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y)) +
			cy*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1))
		if t == 1 && corrupt.Add(1) <= int64(X*Y) {
			v *= 2
		}
		u.Set(t+1, v, x, y)
	})
	rep, err = st.RunSupervised(context.Background(), steps, kern,
		pochoir.SupervisePolicy{
			SegmentSteps: segSteps,
			BaseDelay:    time.Microsecond,
			Verify:       pochoir.VerifyPolicy{Enabled: true},
		})
	if err != nil {
		fmt.Printf("shadow verification: UNEXPECTED failure: %v\n", err)
	} else {
		fmt.Printf("shadow verification:           %d mismatch caught, %d segments verified  [%s]\n",
			rep.VerifyMismatches, rep.Verified, check(sum(u), refSum))
	}
	footer()
}
