package main

// The flight experiment is the post-mortem acceptance check of the black-box
// flight recorder: a Heat 2D run is killed past 90% of its progress, and the
// experiment then asserts that the always-on recorder turned the death into
// a readable pochoir-postmortem/v1 bundle — parseable, cause-attributed to
// the failing zoid, with a non-empty recent event window holding the panic
// marker. It exits nonzero on any violation, so `make flight-smoke` can gate
// CI on it; the smoke target then renders the same bundle with cmd/blackbox.
//
// Fault placement has two modes:
//
//   - With POCHOIR_FAULTPOINTS set (the smoke target's mode), the armed
//     faultpoint kills the run. The experiment first disarms and runs the
//     workload clean to count its base cases, re-arms the spec, and measures
//     progress as base cases entered before death over that total — the
//     armed `after` count must put the fault past 90%.
//
//   - Otherwise the kernel itself panics at 92% of the time steps, and the
//     attributed zoid must cover that step.

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"pochoir"
	"pochoir/internal/faultpoint"
	"pochoir/internal/flight"
)

func flightFail(format string, args ...any) {
	fmt.Printf("  FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// flightHeat builds the experiment's Heat 2D workload against the process's
// default (always-on) flight recorder, with faultStep < 0 for a clean
// kernel.
func flightHeat(X, Y, faultStep int) (*pochoir.Stencil[float64], pochoir.Kernel) {
	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	heat := pochoir.NewWithOptions[float64](sh, pochoir.Options{})
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	heat.MustRegisterArray(u)
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			u.Set(0, float64((x*31+y*17)%97)/97, x, y)
		}
	}
	kern := pochoir.K2(func(t, x, y int) {
		if t == faultStep && x == X/2 && y == Y/2 {
			panic("injected late-run fault")
		}
		c := u.Get(t, x, y)
		u.Set(t+1, c+
			0.125*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
			0.125*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
	})
	return heat, kern
}

func countKind(evs []pochoir.FlightEvent, k flight.Kind) int {
	n := 0
	for _, ev := range evs {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func runFlight() {
	X, Y, steps := 256, 256, 64
	if *quick {
		X, Y, steps = 128, 128, 32
	}
	envSpec := strings.TrimSpace(os.Getenv(faultpoint.EnvVar))
	header(fmt.Sprintf("Flight: black-box post-mortem of a late fault (Heat 2D %dx%d, %d steps)", X, Y, steps))
	if dir := os.Getenv(flight.DirEnvVar); dir != "" {
		fmt.Printf("bundle directory: %s\n", dir)
	} else {
		fmt.Printf("bundle directory: %s (default)\n", flight.DefaultDir())
	}
	flight.ResetLastIncident()
	if pochoir.DefaultFlightRecorder() == nil {
		flightFail("the default flight recorder is disabled (%s) — this experiment tests the always-on path", flight.EnvVar)
	}

	// Resize the default recorder so large that nothing wraps: the event
	// window then holds every base case, so progress-at-death is countable
	// from the bundle itself. Faultpoint trips land in the default recorder
	// (the observer hook is process-wide), which is also the recorder runs
	// fall back to — the exact always-on configuration being certified.
	const ring = 1 << 15
	faultStep := -1
	totalBases := 0
	if envSpec != "" {
		fmt.Printf("fault source: %s=%s\n", faultpoint.EnvVar, envSpec)
		// Calibration: the same workload, clean, to learn the base-case
		// total the armed `after` count is measured against.
		faultpoint.DisarmAll()
		flight.SetDefaultRing(ring)
		heat, kern := flightHeat(X, Y, -1)
		if err := heat.Run(steps, kern); err != nil {
			flightFail("calibration run: %v", err)
		}
		totalBases = countKind(pochoir.DefaultFlightRecorder().Snapshot(), flight.EvBase)
		fmt.Printf("calibration: %d base cases per clean run\n", totalBases)
		if err := faultpoint.ArmFromSpec(envSpec); err != nil {
			flightFail("re-arming %s: %v", faultpoint.EnvVar, err)
		}
		defer faultpoint.DisarmAll()
	} else {
		faultStep = steps * 92 / 100
		fmt.Printf("fault source: kernel panic at step %d (%d%% of %d steps)\n",
			faultStep, faultStep*100/steps, steps)
	}

	// A fresh default ring for the doomed run, so the bundle's window holds
	// only its own history.
	flight.SetDefaultRing(ring)
	heat, kern := flightHeat(X, Y, faultStep)
	start := time.Now()
	err := heat.Run(steps, kern)
	if err == nil {
		flightFail("faulted run returned nil")
	}
	var kp *pochoir.KernelPanicError
	if !errors.As(err, &kp) {
		flightFail("run died with %T, want *KernelPanicError: %v", err, err)
	}
	fmt.Printf("run died after %v: %v\n", time.Since(start).Round(time.Millisecond), err)

	inc := pochoir.LastIncident()
	if inc == nil {
		flightFail("no incident recorded")
	}
	b := inc.Bundle
	if inc.Path != "" {
		fmt.Printf("bundle written: %s\n", inc.Path)
		// Round-trip through the file exactly as cmd/blackbox does.
		rb, rerr := pochoir.ReadPostmortemBundle(inc.Path)
		if rerr != nil {
			flightFail("bundle does not parse: %v", rerr)
		}
		b = rb
	}
	if b == nil {
		flightFail("incident carries no bundle")
	}
	if b.Cause.Kind != "kernel-panic" {
		flightFail("cause = %q, want kernel-panic", b.Cause.Kind)
	}
	z := b.Cause.Zoid
	if z == nil {
		flightFail("failing zoid not attributed")
	}
	if len(b.Events) == 0 {
		flightFail("event window is empty")
	}
	if countKind(b.Events, flight.EvPanic) == 0 {
		flightFail("window holds no panic marker among %d events", len(b.Events))
	}

	// The >90%-progress acceptance check, per fault mode.
	if envSpec != "" {
		if countKind(b.Events, flight.EvFault) == 0 {
			flightFail("window holds no faultpoint trip")
		}
		var inj *faultpoint.Injected
		if !errors.As(err, &inj) {
			flightFail("panic value is not the injected faultpoint")
		}
		done := countKind(b.Events, flight.EvBase)
		progress := float64(done) / float64(totalBases)
		fmt.Printf("progress at death: %d/%d base cases (%.1f%%)\n", done, totalBases, 100*progress)
		if progress <= 0.90 {
			flightFail("fault fired at %.1f%% progress, want >90%% — retune the armed after= count", 100*progress)
		}
	} else {
		// The kernel writes home time faultStep+1; the attributed zoid must
		// cover it, placing the failure past the 90% mark.
		if z.T0 > faultStep+1 || faultStep+1 >= z.T1 {
			flightFail("zoid t=[%d,%d) does not cover the fault at t=%d", z.T0, z.T1, faultStep+1)
		}
	}
	fmt.Printf("bundle: cause=%s zoid=t[%d,%d)x%vx%v window=%d events (%d recorded)\n",
		b.Cause.Kind, z.T0, z.T1, z.Lo, z.Hi, len(b.Events), b.TotalEvents)

	fmt.Println("\nfinal events before death:")
	tail := 8
	if tail > len(b.Events) {
		tail = len(b.Events)
	}
	for _, ev := range b.Events[len(b.Events)-tail:] {
		fmt.Printf("  w%d  %s\n", ev.Worker, ev.Describe())
	}
	fmt.Println("\nflight-recorder post-mortem: OK")
}
