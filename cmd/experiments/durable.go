package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"pochoir"
)

// runDurable measures the durable-checkpoint machinery on Heat 2D:
//
//  1. the spill overhead — a segmented supervised run with SpillDir
//     (every checkpoint encoded to the versioned wire format and written
//     to the crash-safe journal via temp-file+rename) against the same
//     run spilling nothing; the acceptance criterion is <= 10% over
//     in-memory segmented checkpointing, and
//  2. a full crash-and-resume cycle: the run is killed by a persistent
//     kernel fault at ~60% progress, a fresh stencil resumes from the
//     newest journal entry via ResumeSupervised, and the final grid must
//     match the uninterrupted reference bit for bit.
//
// The journal lives in a throwaway temp directory; sizes and timings are
// printed so EXPERIMENTS.md can record the measured overhead.
func runDurable() {
	X, Y, steps := 256, 256, 64
	if *quick {
		X, Y, steps = 128, 128, 32
	}
	header(fmt.Sprintf("Durable checkpoints: spill overhead and crash resume on Heat 2p (%dx%d, %d steps)", X, Y, steps))

	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	const cx, cy = 0.125, 0.125
	newHeat := func() (*pochoir.Stencil[float64], *pochoir.Array[float64]) {
		st := pochoir.New[float64](sh)
		u := pochoir.MustArray[float64](sh.Depth(), X, Y)
		u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
		st.MustRegisterArray(u)
		for x := 0; x < X; x++ {
			for y := 0; y < Y; y++ {
				u.Set(0, float64((x*37+y*23)%101)/101, x, y)
			}
		}
		return st, u
	}
	heatKernel := func(u *pochoir.Array[float64]) pochoir.Kernel {
		return pochoir.K2(func(t, x, y int) {
			c := u.Get(t, x, y)
			u.Set(t+1, c+
				cx*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
				cy*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
		})
	}
	sum := func(u *pochoir.Array[float64]) float64 {
		var s float64
		for x := 0; x < X; x++ {
			for y := 0; y < Y; y++ {
				s += u.Get(steps, x, y)
			}
		}
		return s
	}
	check := func(got, want float64) string {
		if math.Abs(got-want) <= 1e-9*math.Abs(want) {
			return "ok"
		}
		return "MISMATCH"
	}
	reps := 3
	if *quick {
		reps = 2
	}
	best := func(run func() time.Duration) time.Duration {
		b := run()
		for i := 1; i < reps; i++ {
			if d := run(); d < b {
				b = d
			}
		}
		return b
	}
	segSteps := steps / 8

	// Reference: plain Run, and the in-memory segmented baseline the spill
	// overhead is judged against.
	var refSum float64
	tRun := best(func() time.Duration {
		st, u := newHeat()
		start := time.Now()
		if err := st.Run(steps, heatKernel(u)); err != nil {
			panic(err)
		}
		d := time.Since(start)
		refSum = sum(u)
		return d
	})
	fmt.Printf("plain Run:                       %s\n", seconds(tRun))

	var segSum float64
	tSeg := best(func() time.Duration {
		st, u := newHeat()
		start := time.Now()
		if _, err := st.RunSupervised(context.Background(), steps, heatKernel(u),
			pochoir.SupervisePolicy{SegmentSteps: segSteps}); err != nil {
			panic(err)
		}
		d := time.Since(start)
		segSum = sum(u)
		return d
	})
	fmt.Printf("segmented, in-memory only:       %s  (%+.1f%% vs Run)  [%s]\n",
		seconds(tSeg), 100*(tSeg.Seconds()/tRun.Seconds()-1), check(segSum, refSum))

	// 1. Spill overhead: same segmentation, every checkpoint also persisted.
	var spillSum float64
	var spillRep *pochoir.RunReport
	tSpill := best(func() time.Duration {
		dir, err := os.MkdirTemp("", "pochoir-durable-exp-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		st, u := newHeat()
		start := time.Now()
		rep, err := st.RunSupervised(context.Background(), steps, heatKernel(u),
			pochoir.SupervisePolicy{SegmentSteps: segSteps, SpillDir: dir})
		if err != nil {
			panic(err)
		}
		d := time.Since(start)
		spillSum, spillRep = sum(u), rep
		return d
	})
	overhead := 100 * (tSpill.Seconds()/tSeg.Seconds() - 1)
	verdict := "PASS"
	if overhead > 10 {
		verdict = "FAIL"
	}
	fmt.Printf("segmented + durable spill:       %s  (%+.1f%% vs in-memory; acceptance <=10%%: %s)  [%s]\n",
		seconds(tSpill), overhead, verdict, check(spillSum, refSum))
	fmt.Printf("  %d spills, %d bytes journaled (%.0f KiB per checkpoint)\n",
		spillRep.Spills, spillRep.SpillBytes,
		float64(spillRep.SpillBytes)/float64(spillRep.Spills)/1024)

	// 2. Crash and resume: a persistent fault kills the spilling run at
	// ~60% progress; a fresh stencil resumes from the journal and must
	// reproduce the reference grid exactly.
	dir, err := os.MkdirTemp("", "pochoir-durable-exp-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	crashAt := steps * 6 / 10
	st, u := newHeat()
	broken := pochoir.K2(func(t, x, y int) {
		if t >= crashAt && x == X/2 && y == Y/2 {
			panic("injected persistent fault")
		}
		c := u.Get(t, x, y)
		u.Set(t+1, c+
			cx*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
			cy*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
	})
	_, err = st.RunSupervised(context.Background(), steps, broken,
		pochoir.SupervisePolicy{
			SegmentSteps: segSteps,
			MaxAttempts:  2,
			BaseDelay:    time.Millisecond,
			Ladder:       []pochoir.SupervisorEngine{pochoir.EngineFull},
			SpillDir:     dir,
		})
	if err == nil {
		panic("durable: expected the persistent fault to defeat supervision")
	}
	entries, lerr := pochoir.ListSpillJournal(dir)
	if lerr != nil || len(entries) == 0 {
		panic(fmt.Sprintf("durable: no journal to resume from (%v)", lerr))
	}
	newest := entries[len(entries)-1]

	st2, u2 := newHeat()
	start := time.Now()
	rep2, err := st2.ResumeSupervised(context.Background(), steps, heatKernel(u2),
		pochoir.SupervisePolicy{SegmentSteps: segSteps, SpillDir: dir})
	if err != nil {
		panic(err)
	}
	tResume := time.Since(start)
	fmt.Printf("crash at step %d, resume:         %s recomputing %d/%d steps from journal entry at step %d  [%s]\n",
		crashAt, seconds(tResume), rep2.StepsDone, steps, newest.Steps, check(sum(u2), refSum))
	footer()
}
