package main

import (
	"fmt"

	"pochoir/internal/benchdef"
	"pochoir/internal/cachesim"
	"pochoir/internal/cilkview"
	"pochoir/internal/core"
	"pochoir/internal/shape"
)

// runFig9 regenerates Fig. 9: the parallelism (T1/T-infinity, measured by
// the work/span analyzer standing in for Cilkview) of hyperspace cuts
// (TRAP) vs serial space cuts (STRAP) on uncoarsened recursions.
// (a) 2D nonperiodic heat, space-time 1000*N^2; (b) 3D nonperiodic wave,
// space-time 1000*N^3.
func runFig9() {
	header("Fig. 9(a): parallelism, 2D heat (space-time 1000*N^2, uncoarsened)")
	ns := benchdef.Fig9Sweep2D
	if *quick {
		ns = benchdef.Fig9Sweep2DQuick
	}
	fmt.Printf("%8s %18s %18s %8s\n", "N", "Hyperspace (TRAP)", "Space cut (STRAP)", "ratio")
	for _, n := range ns {
		pt := analyze(2, n, benchdef.Fig9Steps, core.TRAP)
		ps := analyze(2, n, benchdef.Fig9Steps, core.STRAP)
		fmt.Printf("%8d %18.1f %18.1f %7.2fx\n", n, pt, ps, pt/ps)
	}
	fmt.Println("(paper at N=6400: TRAP 1887 vs STRAP 52)")
	footer()

	header("Fig. 9(b): parallelism, 3D wave (space-time 1000*N^3, uncoarsened)")
	ns = benchdef.Fig9Sweep3D
	if *quick {
		ns = benchdef.Fig9Sweep3DQuick
	}
	fmt.Printf("%8s %18s %18s %8s\n", "N", "Hyperspace (TRAP)", "Space cut (STRAP)", "ratio")
	for _, n := range ns {
		pt := analyze(3, n, benchdef.Fig9Steps, core.TRAP)
		ps := analyze(3, n, benchdef.Fig9Steps, core.STRAP)
		fmt.Printf("%8d %18.1f %18.1f %7.2fx\n", n, pt, ps, pt/ps)
	}
	fmt.Println("(paper at N=800: TRAP 337 vs STRAP 23)")
	footer()
}

func analyze(dims, n, steps int, alg core.Algorithm) float64 {
	w := cilkview.Config(dims, n, 1, false, alg)
	a := cilkview.New(w, cilkview.DefaultCosts())
	return a.Analyze(1, 1+steps).Parallelism()
}

// runFig10 regenerates Fig. 10: cache-miss ratios of TRAP, STRAP, and
// LOOPS under the ideal-cache model. The paper measured hardware counters
// with perf on full-size grids; the simulation uses a scaled cache
// (M=4096 points, B=8 points — a 32 KB L1 with 64-byte lines, in doubles)
// and scaled space-time so the trace stays tractable. The qualitative
// content is the same: LOOPS misses at a high flat rate once N^2 >> M,
// while the two trapezoidal orders coincide at a far lower rate.
func runFig10() {
	const mPoints, bPoints = benchdef.Fig10CacheM, benchdef.Fig10CacheB
	heat := shape.MustNew(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	header("Fig. 10(a): cache-miss ratio, 2D heat (ideal cache M=4096, B=8)")
	ns := []int{64, 128, 256, 512, 1024}
	steps := 64
	if *quick {
		ns = []int{64, 128, 256}
		steps = 24
	}
	fmt.Printf("%8s %12s %12s %12s\n", "N", "Hyperspace", "Space cut", "Loops")
	for _, n := range ns {
		rTrap := trace(heat, []int{n, n}, steps, mPoints, bPoints, core.TRAP)
		rStrap := trace(heat, []int{n, n}, steps, mPoints, bPoints, core.STRAP)
		tr := cachesim.NewTracer(cachesim.New(mPoints, bPoints), heat, []int{n, n})
		rLoops := cachesim.TraceLoops(tr, steps)
		fmt.Printf("%8d %12.4f %12.4f %12.4f\n", n, rTrap, rStrap, rLoops)
	}
	footer()

	// The 3D experiment needs a larger model cache: with only M^(1/3)=16
	// points per tile side the cache-oblivious advantage drowns in line
	// fragmentation. M=32768 points (a 256 KB cache of doubles) gives
	// tile side 32, still far below the grids swept.
	const mPoints3 = benchdef.Fig10CacheM3D
	header("Fig. 10(b): cache-miss ratio, 3D wave (ideal cache M=32768, B=8)")
	wave := shape.MustNew(3, [][]int{
		{1, 0, 0, 0}, {0, 0, 0, 0}, {-1, 0, 0, 0},
		{0, 1, 0, 0}, {0, -1, 0, 0}, {0, 0, 1, 0}, {0, 0, -1, 0}, {0, 0, 0, 1}, {0, 0, 0, -1},
	})
	ns3 := []int{32, 64, 96, 128}
	steps3 := 24
	if *quick {
		ns3 = []int{32, 64}
		steps3 = 12
	}
	fmt.Printf("%8s %12s %12s %12s\n", "N", "Hyperspace", "Space cut", "Loops")
	for _, n := range ns3 {
		rTrap := trace(wave, []int{n, n, n}, steps3, mPoints3, bPoints, core.TRAP)
		rStrap := trace(wave, []int{n, n, n}, steps3, mPoints3, bPoints, core.STRAP)
		tr := cachesim.NewTracer(cachesim.New(mPoints3, bPoints), wave, []int{n, n, n})
		rLoops := cachesim.TraceLoops(tr, steps3)
		fmt.Printf("%8d %12.4f %12.4f %12.4f\n", n, rTrap, rStrap, rLoops)
	}
	fmt.Println("(paper: loops plateau near 0.86 (2D) / 0.99 (3D) on hardware LLC counters;")
	fmt.Println(" the two cache-oblivious orders coincide well below the loops curve)")
	footer()
}

func trace(sh *shape.Shape, sizes []int, steps, m, b int, alg core.Algorithm) float64 {
	w := &core.Walker{NDims: len(sizes), Algorithm: alg, TimeCutoff: 1}
	for i, n := range sizes {
		w.Sizes[i] = n
		w.Slopes[i] = sh.Slope(i)
		w.Reach[i] = sh.Reach(i)
	}
	tr := cachesim.NewTracer(cachesim.New(m, b), sh, sizes)
	r, err := cachesim.TraceWalker(w, tr, steps)
	if err != nil {
		panic(err)
	}
	return r
}
