// Command experiments regenerates every table and figure of the paper's
// evaluation on scaled-down workloads:
//
//	-run intro    §1 LOOPS vs Pochoir headline comparison
//	-run fig3     Fig. 3: the ten-benchmark table
//	-run fig5     Fig. 5: 3D 7-point / 27-point throughput
//	-run fig9     Fig. 9: parallelism of TRAP vs STRAP (work/span analysis)
//	-run fig10    Fig. 10: cache-miss ratios (ideal-cache simulation)
//	-run fig13    Fig. 13: split-pointer vs split-macro-shadow
//	-run mod      §4 modular-indexing ablation (interior clone disabled)
//	-run coarsen  §4 base-case-coarsening ablation
//	-run tune     §4 autotuned coarsening (ISAT substitute)
//	-run telemetry  instrumented Heat 2D run: decomposition counters and
//	                achieved-vs-predicted parallelism (Fig. 9 cross-check)
//	-run faults   hardened-execution demo: kernel panic isolation with zoid
//	              attribution, run poisoning, checkpoint/restore retry, and
//	              context-deadline cancellation latency
//	-run resilience  supervised-run measurements: happy-path and segmented
//	              checkpointing overhead, recovery cost of a fault at >90%
//	              progress, the engine degradation ladder, and shadow
//	              verification catching silent corruption
//	-run monitor  live-monitoring smoke test: a supervised run scraped over
//	              HTTP from its own embedded monitor server, with the
//	              exposition validated and the counters checked monotone
//	-run flight   black-box post-mortem check: a run killed by an injected
//	              fault past 90% progress must leave a parseable crash
//	              bundle attributing the failing zoid, with the panic in
//	              its recent-event window (render it with cmd/blackbox)
//	-run durable  durable-checkpoint measurements: the cost of spilling
//	              every segment checkpoint to the crash-safe journal
//	              (acceptance: <=10% over in-memory checkpointing) and a
//	              crash-and-resume cycle restoring a fresh process from
//	              the newest journal entry
//	-run all      everything above
//
// The telemetry experiment additionally honors -stats (print the full
// aggregate report: counters, base-case volume histogram, per-worker busy
// time) and -trace FILE (write a Chrome trace-event JSON of the recursive
// decomposition, one track per worker, loadable in chrome://tracing or
// Perfetto). Giving either flag with another -run value appends the
// telemetry experiment to that run.
//
// Workloads default to roughly 1/8-per-dimension of the paper's sizes so a
// full run finishes in minutes on a laptop; -scale adjusts them, and
// -quick shrinks further for smoke testing. Absolute times differ from the
// paper's 2011 Xeon/icc/Cilk numbers by construction; the quantities to
// compare are the ratios and curve shapes, recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"pochoir/internal/sched"
	"pochoir/internal/stencils"
)

var (
	runFlag   = flag.String("run", "all", "experiment to run (intro, fig3, fig5, fig9, fig10, fig13, mod, coarsen, tune, telemetry, faults, resilience, monitor, flight, durable, all)")
	quick     = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	benchName = flag.String("bench", "", "restrict fig3 to one benchmark name (e.g. \"Heat 2p\")")
	statsFlag = flag.Bool("stats", false, "print the full telemetry stats report (telemetry experiment)")
	traceFile = flag.String("trace", "", "write a Chrome trace-event JSON of the telemetry run to `FILE`")
)

func main() {
	flag.Parse()
	fmt.Printf("pochoir experiments — %d cores (GOMAXPROCS), go %s\n\n",
		sched.Workers(), runtime.Version())
	exps := map[string]func(){
		"intro":      runIntro,
		"fig3":       runFig3,
		"fig5":       runFig5,
		"fig9":       runFig9,
		"fig10":      runFig10,
		"fig13":      runFig13,
		"mod":        runMod,
		"coarsen":    runCoarsen,
		"tune":       runTune,
		"telemetry":  runTelemetry,
		"faults":     runFaults,
		"resilience": runResilience,
		"monitor":    runMonitor,
		"flight":     runFlight,
		"durable":    runDurable,
	}
	order := []string{"intro", "fig3", "fig5", "fig9", "fig10", "fig13", "mod", "coarsen", "tune", "telemetry", "faults", "resilience", "monitor", "flight", "durable"}
	name := strings.ToLower(*runFlag)
	if name == "all" {
		for _, n := range order {
			exps[n]()
		}
		return
	}
	f, ok := exps[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; want one of %v or all\n", name, order)
		os.Exit(2)
	}
	f()
	// -stats / -trace always produce telemetry output, whatever -run said.
	if (*statsFlag || *traceFile != "") && name != "telemetry" {
		runTelemetry()
	}
}

func goMaxProcs() int { return sched.Workers() }

// timeJob runs a job, timing only its Compute phase.
func timeJob(j stencils.Job) time.Duration {
	j.Setup()
	start := time.Now()
	j.Compute()
	return time.Since(start)
}

// scaleDown divides every size (and the step count) by f, keeping minima.
func scaleDown(sizes []int, steps, f int) ([]int, int) {
	out := make([]int, len(sizes))
	for i, s := range sizes {
		out[i] = s / f
		if out[i] < 8 {
			out[i] = 8
		}
	}
	steps /= f
	if steps < 4 {
		steps = 4
	}
	return out, steps
}

func header(title string) {
	fmt.Printf("== %s ==\n", title)
}

func footer() { fmt.Println() }

func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
