package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"pochoir"
)

// runFaults demonstrates the hardened execution model on a parallel Heat 2D
// run: a kernel panic deep inside the recursion surfaces as a structured
// *pochoir.KernelPanicError naming the zoid that was executing (the process
// survives); the failed stencil is poisoned until restored from a
// checkpoint, after which a retry produces the same answer as an
// uninterrupted run; and a context deadline stops a long run within about
// one base case of the cancellation point.
func runFaults() {
	X, Y, steps := 256, 256, 64
	if *quick {
		X, Y, steps = 128, 128, 32
	}
	header(fmt.Sprintf("Faults: failure model on Heat 2p (%dx%d, %d steps)", X, Y, steps))

	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	const cx, cy = 0.125, 0.125
	newHeat := func() (*pochoir.Stencil[float64], *pochoir.Array[float64]) {
		st := pochoir.New[float64](sh)
		u := pochoir.MustArray[float64](sh.Depth(), X, Y)
		u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
		st.MustRegisterArray(u)
		rng := rand.New(rand.NewSource(7))
		for x := 0; x < X; x++ {
			for y := 0; y < Y; y++ {
				u.Set(0, rng.Float64(), x, y)
			}
		}
		return st, u
	}
	kernel := func(u *pochoir.Array[float64], poisonStep int) pochoir.Kernel {
		return pochoir.K2(func(t, x, y int) {
			if t == poisonStep && x == X/2 && y == Y/2 {
				panic(fmt.Sprintf("injected kernel fault at t=%d", t))
			}
			c := u.Get(t, x, y)
			u.Set(t+1, c+
				cx*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
				cy*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
		})
	}

	// Reference: an uninterrupted run.
	ref, refU := newHeat()
	if err := ref.Run(steps, kernel(refU, -1)); err != nil {
		fmt.Printf("reference run failed: %v\n", err)
		footer()
		return
	}
	var refSum float64
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			refSum += refU.Get(steps, x, y)
		}
	}

	// 1. Panic isolation: the fault fires mid-run on some worker goroutine;
	// the first panic wins, siblings drain, and Run returns it with the
	// zoid coordinates attached.
	st, u := newHeat()
	cp, _ := st.Checkpoint()
	err := st.Run(steps, kernel(u, steps/2))
	var kp *pochoir.KernelPanicError
	if errors.As(err, &kp) {
		fmt.Printf("panic isolation: Run returned *KernelPanicError (%v) from zoid t=[%d,%d)\n",
			kp.Value, kp.Zoid.T0, kp.Zoid.T1)
	} else {
		fmt.Printf("panic isolation: UNEXPECTED result %v\n", err)
	}
	fmt.Printf("poisoning: stencil poisoned=%v; rerun says: %v\n",
		st.Poisoned(), st.Run(steps, kernel(u, -1)))

	// 2. Checkpoint/restore: rewind to the pre-run snapshot and retry with
	// the fault gone; the answer must match the uninterrupted run.
	if err := st.Restore(cp); err != nil {
		fmt.Printf("restore failed: %v\n", err)
		footer()
		return
	}
	if err := st.Run(steps, kernel(u, -1)); err != nil {
		fmt.Printf("retry failed: %v\n", err)
		footer()
		return
	}
	var retrySum float64
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			retrySum += u.Get(steps, x, y)
		}
	}
	ok := "ok"
	if math.Abs(retrySum-refSum) > 1e-9*math.Abs(refSum) {
		ok = "MISMATCH"
	}
	fmt.Printf("checkpoint/restore: retry total heat %.6f vs uninterrupted %.6f  [%s]\n",
		retrySum, refSum, ok)

	// 3. Cancellation: give a much longer run a short deadline and measure
	// how far past the deadline RunContext returns.
	st2, u2 := newHeat()
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = st2.RunContext(ctx, steps*50, kernel(u2, -1))
	late := time.Since(start) - 25*time.Millisecond
	fmt.Printf("cancellation: RunContext returned %v, %.1fms after the deadline; poisoned=%v\n",
		err, float64(late.Microseconds())/1000, st2.Poisoned())
	footer()
}
