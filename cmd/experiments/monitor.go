package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"pochoir"
)

var monitorAddr = flag.String("monitor-addr", "127.0.0.1:0",
	"listen address for the monitor experiment's embedded server (port 0 picks a free port)")

// runMonitor is the live-monitoring experiment and the CI smoke test of the
// metrics subsystem: it arms a registry, starts the embedded monitor server,
// executes a supervised Heat 2D run that panics once mid-flight, and scrapes
// its own /metrics and /progressz endpoints over real HTTP while the run
// recovers. Every scrape is validated line-by-line against the Prometheus
// text format; the zoid counter must strictly increase between scrapes, the
// supervisor counters must show the recovery, and the progress estimator
// must end at exactly 100%. Any violation exits nonzero, so
// `go run ./cmd/experiments -run monitor -quick` is a complete smoke test.
func runMonitor() {
	X, Y, steps := 512, 512, 96
	if *quick {
		X, Y, steps = 256, 256, 24
	}
	header(fmt.Sprintf("Monitor: live-scraped supervised Heat 2D run (%dx%d, %d steps)", X, Y, steps))

	reg := pochoir.NewMetrics()
	mon, err := pochoir.ServeMonitor(*monitorAddr, reg)
	if err != nil {
		monFail("starting monitor server: %v", err)
	}
	defer mon.Close()
	fmt.Printf("monitor listening on %s (endpoints: /metrics /statusz /progressz /debug/pprof/ /debug/vars)\n", mon.URL())

	sh := pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
	heat := pochoir.NewWithOptions[float64](sh, pochoir.Options{Metrics: reg})
	u := pochoir.MustArray[float64](sh.Depth(), X, Y)
	u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	heat.MustRegisterArray(u)
	for x := 0; x < X; x++ {
		for y := 0; y < Y; y++ {
			u.Set(0, float64((x*31+y*17)%97)/97, x, y)
		}
	}
	crashed := false
	kern := pochoir.K2(func(t, x, y int) {
		if !crashed && t == steps/2 && x == X/2 && y == Y/2 {
			crashed = true
			panic("injected mid-run fault")
		}
		c := u.Get(t, x, y)
		u.Set(t+1, c+
			0.125*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
			0.125*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
	})

	// Sample /progressz over HTTP while the supervised run executes.
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(150 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if line := progressLine(mon.URL()); line != "" {
					fmt.Printf("  live: %s\n", line)
				}
			}
		}
	}()
	start := time.Now()
	rep, err := heat.RunSupervised(context.Background(), steps, kern, pochoir.SupervisePolicy{
		SegmentSteps: steps / 8,
		BaseDelay:    time.Millisecond,
	})
	close(done)
	if err != nil {
		monFail("supervised run failed: %v", err)
	}
	fmt.Printf("supervised run recovered in %s: %d segments, %d retries, %d restores\n",
		seconds(time.Since(start)), len(rep.Segments), rep.Retries, rep.Restores)

	expo1 := monScrape(mon.URL() + "/metrics")
	zoids1 := monMetric(expo1, "pochoir_zoids_total")
	fmt.Printf("scrape 1: %d bytes, pochoir_zoids_total %.0f, sup_retries %.0f, sup_restores %.0f\n",
		len(expo1), zoids1, monMetric(expo1, "pochoir_sup_retries_total"), monMetric(expo1, "pochoir_sup_restores_total"))
	if zoids1 <= 0 {
		monFail("zoid counter is %v after a run, want > 0", zoids1)
	}
	if monMetric(expo1, "pochoir_sup_retries_total") < 1 {
		monFail("supervisor retry counter did not record the injected fault")
	}

	// A second (plain) run must advance every cumulative counter.
	if err := heat.Run(steps, kern); err != nil {
		monFail("second run failed: %v", err)
	}
	expo2 := monScrape(mon.URL() + "/metrics")
	zoids2 := monMetric(expo2, "pochoir_zoids_total")
	fmt.Printf("scrape 2: %d bytes, pochoir_zoids_total %.0f\n", len(expo2), zoids2)
	if zoids2 <= zoids1 {
		monFail("zoid counter not increasing across scrapes: %v then %v", zoids1, zoids2)
	}
	if pct := monMetric(expo2, "pochoir_progress_percent"); pct != 100 {
		monFail("pochoir_progress_percent = %v after completion, want 100", pct)
	}
	fmt.Printf("final: %s\n", progressLine(mon.URL()))
	fmt.Println("monitor smoke: PASS (2 scrapes validated, counters monotone, progress 100%)")
	footer()
}

// monScrape GETs a monitor URL and validates the exposition, exiting
// nonzero on any transport or format error.
func monScrape(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		monFail("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		monFail("GET %s: status %d, err %v", url, resp.StatusCode, err)
	}
	if err := pochoir.CheckMetricsExposition(body); err != nil {
		monFail("invalid exposition from %s: %v", url, err)
	}
	return body
}

// monMetric sums the samples of one family in a validated exposition.
func monMetric(expo []byte, name string) float64 {
	var sum float64
	for _, line := range strings.Split(string(expo), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		sample := fields[0]
		if brace := strings.IndexByte(sample, '{'); brace >= 0 {
			sample = sample[:brace]
		}
		if sample != name {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			monFail("bad sample %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// progressLine renders the newest run from /progressz as one line.
func progressLine(base string) string {
	resp, err := http.Get(base + "/progressz")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var doc struct {
		Runs []pochoir.ProgressStat `json:"runs"`
	}
	if json.Unmarshal(body, &doc) != nil || len(doc.Runs) == 0 {
		return ""
	}
	r := doc.Runs[0]
	state := "done"
	if r.Active {
		state = "running"
	}
	return fmt.Sprintf("%s %s %.1f%% (%d/%d points, %.1f Mpts/s, ETA %.2fs)",
		r.Label, state, r.Percent, r.PointsDone, r.PointsTotal, r.RateMpts, r.ETASeconds)
}

// monFail prints the failure and exits nonzero — the smoke-test contract.
func monFail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "monitor experiment FAILED: "+format+"\n", args...)
	os.Exit(1)
}
