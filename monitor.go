package pochoir

import (
	"net/http"

	"pochoir/internal/metrics"
)

// MetricsRegistry is the live metrics registry: a set of Prometheus-style
// counters, gauges, and histograms that armed runs update lock-free and a
// monitor scrapes at any moment — the mid-run complement to the
// post-run telemetry Recorder. Pass one via Options.Metrics to instrument
// every Run/RunSupervised of a stencil, and expose it with ServeMonitor or
// MonitorHandler. One registry may be shared by any number of stencils.
type MetricsRegistry = metrics.Registry

// NewMetrics creates an empty metrics registry.
func NewMetrics() *MetricsRegistry { return metrics.NewRegistry() }

// Monitor is the embedded monitor HTTP server; see ServeMonitor.
type Monitor = metrics.Monitor

// ProgressStat is the JSON view of one run's live progress, served by the
// monitor at /progressz and available via MetricsRegistry.ProgressSnapshot.
type ProgressStat = metrics.ProgressStat

// ServeMonitor starts an embedded HTTP server exposing the registry:
//
//	/metrics        Prometheus text exposition
//	/statusz        JSON snapshot of every metric + process vitals
//	/progressz      live percent-complete and ETA of in-flight runs
//	/debug/pprof/   the standard Go runtime profiles
//	/debug/vars     expvar
//
// addr is a TCP listen address; use port 0 to pick a free port (the bound
// address is available from Monitor.Addr). The server runs in the
// background until Monitor.Close.
func ServeMonitor(addr string, reg *MetricsRegistry) (*Monitor, error) {
	return metrics.Serve(addr, reg)
}

// MonitorHandler returns the monitor's http.Handler for mounting on an
// existing server instead of ServeMonitor's embedded one.
func MonitorHandler(reg *MetricsRegistry) http.Handler {
	return metrics.NewHandler(reg)
}

// CheckMetricsExposition validates Prometheus text-format bytes line by
// line — metric and label names, label quoting, sample values, and that
// every sample follows its family's TYPE declaration. The monitor smoke
// test runs every scrape through it.
func CheckMetricsExposition(data []byte) error {
	return metrics.CheckExposition(data)
}

// runMetrics resolves (and caches) the walker instrument set for the
// configured registry; nil when Options.Metrics is unset. The cache makes
// re-arming free: resolving is a handful of map lookups under the registry
// lock, paid once per stencil per registry rather than once per run.
func (s *Stencil[T]) runMetrics() *metrics.RunMetrics {
	reg := s.opts.Metrics
	if reg == nil {
		return nil
	}
	if s.metReg != reg {
		s.metSet = metrics.NewRunMetrics(reg)
		s.metReg = reg
	}
	return s.metSet
}

// progressLabel resolves the label for this stencil's progress entries:
// Options.ProgressLabel when set, the caller's default otherwise.
func (s *Stencil[T]) progressLabel(def string) string {
	if s.opts.ProgressLabel != "" {
		return s.opts.ProgressLabel
	}
	return def
}

// gridVolume returns the number of spatial points per time step. The
// decomposition partitions the space-time box exactly, so a run of n steps
// executes exactly n*gridVolume base-case points — the progress
// estimator's predicted total.
func (s *Stencil[T]) gridVolume() int64 {
	v := int64(1)
	for _, n := range s.sizes {
		v *= int64(n)
	}
	return v
}
