// Package wire is the durable-checkpoint layer: a schema-versioned, compact
// binary encoding of a stencil checkpoint (the full temporal buffer of every
// registered array plus the resume cursor) and a crash-safe spill journal of
// such encodings on disk.
//
// The format, "pochoir-checkpoint/v1", is designed for exactly two failure
// modes a long-running service meets in practice:
//
//   - torn writes: a process killed mid-spill must never leave an entry a
//     resumer mistakes for a good checkpoint. The journal writes entries via
//     temp-file + fsync + atomic rename, so a torn write is only ever a stale
//     temp file the reader ignores;
//
//   - silent corruption: a flipped bit on disk (or a truncated file after a
//     filesystem crash) must be detected, not restored. The header and every
//     array section carry an independent CRC-32, and the journal's loader
//     walks entries newest-first, skipping past any corrupt tail to the
//     newest entry that validates end to end.
//
// Layout (all integers little-endian, fixed width — the format is meant to
// be readable from any host, so no varints and no host-endianness):
//
//	header:
//	  magic     [4]byte  "PCHK"
//	  version   uint32   1
//	  stepsRun  uint64   resume cursor (time steps completed)
//	  ndims     uint32   spatial dimensionality (1..MaxDims)
//	  sizes     ndims x uint64
//	  narrays   uint32   number of array sections that follow
//	  crc       uint32   CRC-32 (IEEE) of every header byte above
//
//	per-array section:
//	  kind      uint8    element kind (ElemKind)
//	  slots     uint32   temporal copies (stencil depth + 1)
//	  nbytes    uint64   payload length; must equal points*slots*elemSize
//	  data      nbytes bytes, elements little-endian in slot-major order
//	  crc       uint32   CRC-32 (IEEE) of kind..data
//
// Encoding streams: the encoder writes through a fixed scratch buffer and
// never materializes a second full copy of the grid. Decoding is fuzz-safe:
// every count is validated against hard caps and against the arithmetic the
// header implies before any allocation, and payloads are read through a
// bounded chunk loop so a hostile nbytes cannot force an over-allocation —
// memory is bounded by the bytes actually present in the input.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// Schema identifies the checkpoint wire format. It is not itself encoded
// (the magic+version pair is); consumers report it in diagnostics.
const Schema = "pochoir-checkpoint/v1"

// Magic opens every encoded checkpoint.
var Magic = [4]byte{'P', 'C', 'H', 'K'}

// Version is the current format version.
const Version = 1

// MaxDims caps the decoded dimensionality; it matches the engine's zoid
// limit with headroom (the package stays dependency-free, so the cap is
// restated here).
const MaxDims = 16

// MaxArrays caps the decoded array-section count. Real stencils register a
// handful of arrays; the cap only exists to bound hostile headers.
const MaxArrays = 1024

// maxSideLen caps one spatial extent; combined extents are additionally
// overflow-checked when multiplied.
const maxSideLen = 1 << 40

// chunk is the scratch-buffer size both the streaming encoder and the
// capped decoder work through.
const chunk = 64 * 1024

// ElemKind identifies the element type of an array section. The codes are
// part of the wire format: never renumber, only append.
type ElemKind uint8

const (
	elemInvalid ElemKind = iota
	ElemF64
	ElemF32
	ElemI64
	ElemI32
	ElemI16
	ElemI8
	ElemU64
	ElemU32
	ElemU16
	ElemU8
	// ElemInt and ElemUint are Go's platform-width int/uint, always encoded
	// as 64-bit so checkpoints relocate across architectures.
	ElemInt
	ElemUint

	numElemKinds
)

var elemNames = [numElemKinds]string{
	ElemF64: "float64", ElemF32: "float32",
	ElemI64: "int64", ElemI32: "int32", ElemI16: "int16", ElemI8: "int8",
	ElemU64: "uint64", ElemU32: "uint32", ElemU16: "uint16", ElemU8: "uint8",
	ElemInt: "int", ElemUint: "uint",
}

func (k ElemKind) String() string {
	if int(k) < len(elemNames) && elemNames[k] != "" {
		return elemNames[k]
	}
	return fmt.Sprintf("elem(%d)", uint8(k))
}

// Size returns the encoded bytes per element, or 0 for an invalid kind.
func (k ElemKind) Size() int {
	switch k {
	case ElemF64, ElemI64, ElemU64, ElemInt, ElemUint:
		return 8
	case ElemF32, ElemI32, ElemU32:
		return 4
	case ElemI16, ElemU16:
		return 2
	case ElemI8, ElemU8:
		return 1
	}
	return 0
}

// Checkpoint is the codec-level view of a stencil checkpoint: the resume
// cursor, the shared spatial extents, and one typed data section per
// registered array. The pochoir root package converts its generic
// Checkpoint[T] to and from this form.
type Checkpoint struct {
	// StepsRun is the resume cursor: time steps completed when the
	// checkpoint was taken.
	StepsRun int
	// Sizes are the spatial extents shared by every array.
	Sizes []int
	// Arrays holds one section per registered array, in registration order.
	Arrays []Array
}

// Array is one array section: the temporal slot count and the full buffer
// as a typed slice (one of the supported element slices; see KindOf).
type Array struct {
	// Slots is the number of temporal copies (stencil depth + 1).
	Slots int
	// Data is the slot-major element buffer: a typed slice of length
	// points*Slots where points is the product of the checkpoint's Sizes.
	Data any
}

// KindOf maps a supported typed slice to its element kind and length.
// ok is false for unsupported element types.
func KindOf(data any) (kind ElemKind, n int, ok bool) {
	switch d := data.(type) {
	case []float64:
		return ElemF64, len(d), true
	case []float32:
		return ElemF32, len(d), true
	case []int64:
		return ElemI64, len(d), true
	case []int32:
		return ElemI32, len(d), true
	case []int16:
		return ElemI16, len(d), true
	case []int8:
		return ElemI8, len(d), true
	case []uint64:
		return ElemU64, len(d), true
	case []uint32:
		return ElemU32, len(d), true
	case []uint16:
		return ElemU16, len(d), true
	case []uint8:
		return ElemU8, len(d), true
	case []int:
		return ElemInt, len(d), true
	case []uint:
		return ElemUint, len(d), true
	}
	return elemInvalid, 0, false
}

// crcWriter tees writes into a CRC-32 and the underlying writer.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: w, crc: crc32.NewIEEE()}
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc.Write(p[:n])
	return n, err
}

func (c *crcWriter) sum() uint32 { return c.crc.Sum32() }
func (c *crcWriter) reset()      { c.crc.Reset() }

// points returns the spatial points per slot implied by sizes, validating
// each extent and guarding the product against overflow.
func points(sizes []int) (int, error) {
	if len(sizes) == 0 || len(sizes) > MaxDims {
		return 0, fmt.Errorf("wire: %d dimensions, want 1..%d", len(sizes), MaxDims)
	}
	total := 1
	for i, s := range sizes {
		if s <= 0 || s > maxSideLen {
			return 0, fmt.Errorf("wire: size of dimension %d is %d, want 1..%d", i, s, maxSideLen)
		}
		if total > math.MaxInt64/s {
			return 0, fmt.Errorf("wire: spatial extents %v overflow", sizes)
		}
		total *= s
	}
	return total, nil
}

// Encode writes cp to w in pochoir-checkpoint/v1 form. The encoder streams
// through a fixed scratch buffer: it never allocates a buffer proportional
// to the grid. Unsupported element types and geometry/data mismatches are
// rejected before any byte is written.
func Encode(w io.Writer, cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("wire: Encode of a nil checkpoint")
	}
	if cp.StepsRun < 0 {
		return fmt.Errorf("wire: negative StepsRun %d", cp.StepsRun)
	}
	pts, err := points(cp.Sizes)
	if err != nil {
		return err
	}
	if len(cp.Arrays) == 0 || len(cp.Arrays) > MaxArrays {
		return fmt.Errorf("wire: %d array sections, want 1..%d", len(cp.Arrays), MaxArrays)
	}
	// Validate every section up front so a failed Encode writes nothing.
	for i, a := range cp.Arrays {
		kind, n, ok := KindOf(a.Data)
		if !ok {
			return fmt.Errorf("wire: array %d has unsupported element type %T", i, a.Data)
		}
		if a.Slots <= 0 {
			return fmt.Errorf("wire: array %d has %d slots, want >= 1", i, a.Slots)
		}
		if n != pts*a.Slots {
			return fmt.Errorf("wire: array %d has %d elements, geometry %v x %d slots implies %d",
				i, n, cp.Sizes, a.Slots, pts*a.Slots)
		}
		_ = kind
	}

	bw := bufio.NewWriterSize(w, chunk)
	cw := newCRCWriter(bw)

	// Header.
	var scratch [8]byte
	if _, err := cw.Write(Magic[:]); err != nil {
		return err
	}
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := cw.Write(scratch[:4])
		return err
	}
	putU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := cw.Write(scratch[:8])
		return err
	}
	if err := putU32(Version); err != nil {
		return err
	}
	if err := putU64(uint64(cp.StepsRun)); err != nil {
		return err
	}
	if err := putU32(uint32(len(cp.Sizes))); err != nil {
		return err
	}
	for _, s := range cp.Sizes {
		if err := putU64(uint64(s)); err != nil {
			return err
		}
	}
	if err := putU32(uint32(len(cp.Arrays))); err != nil {
		return err
	}
	// Header CRC goes to the raw writer: it covers the bytes above only.
	binary.LittleEndian.PutUint32(scratch[:4], cw.sum())
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}

	// Array sections.
	for _, a := range cp.Arrays {
		kind, n, _ := KindOf(a.Data)
		cw.reset()
		if _, err := cw.Write([]byte{byte(kind)}); err != nil {
			return err
		}
		if err := putU32(uint32(a.Slots)); err != nil {
			return err
		}
		if err := putU64(uint64(n) * uint64(kind.Size())); err != nil {
			return err
		}
		if err := encodeElems(cw, a.Data); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[:4], cw.sum())
		if _, err := bw.Write(scratch[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// encodeElems streams a typed slice through a chunk-sized scratch buffer.
func encodeElems(w io.Writer, data any) error {
	buf := make([]byte, chunk)
	flush := func(n int) error {
		_, err := w.Write(buf[:n])
		return err
	}
	switch d := data.(type) {
	case []float64:
		return encode64(d, buf, flush, func(v float64) uint64 { return math.Float64bits(v) })
	case []float32:
		return encode32(d, buf, flush, func(v float32) uint32 { return math.Float32bits(v) })
	case []int64:
		return encode64(d, buf, flush, func(v int64) uint64 { return uint64(v) })
	case []int:
		return encode64(d, buf, flush, func(v int) uint64 { return uint64(int64(v)) })
	case []uint64:
		return encode64(d, buf, flush, func(v uint64) uint64 { return v })
	case []uint:
		return encode64(d, buf, flush, func(v uint) uint64 { return uint64(v) })
	case []int32:
		return encode32(d, buf, flush, func(v int32) uint32 { return uint32(v) })
	case []uint32:
		return encode32(d, buf, flush, func(v uint32) uint32 { return v })
	case []int16:
		return encode16(d, buf, flush, func(v int16) uint16 { return uint16(v) })
	case []uint16:
		return encode16(d, buf, flush, func(v uint16) uint16 { return v })
	case []int8:
		for off := 0; off < len(d); off += chunk {
			n := min(chunk, len(d)-off)
			for i := 0; i < n; i++ {
				buf[i] = byte(d[off+i])
			}
			if err := flush(n); err != nil {
				return err
			}
		}
		return nil
	case []uint8:
		_, err := w.Write(d)
		return err
	}
	return fmt.Errorf("wire: unsupported element type %T", data)
}

func encode64[T any](d []T, buf []byte, flush func(int) error, bits func(T) uint64) error {
	per := len(buf) / 8
	for off := 0; off < len(d); off += per {
		n := min(per, len(d)-off)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], bits(d[off+i]))
		}
		if err := flush(n * 8); err != nil {
			return err
		}
	}
	return nil
}

func encode32[T any](d []T, buf []byte, flush func(int) error, bits func(T) uint32) error {
	per := len(buf) / 4
	for off := 0; off < len(d); off += per {
		n := min(per, len(d)-off)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], bits(d[off+i]))
		}
		if err := flush(n * 4); err != nil {
			return err
		}
	}
	return nil
}

func encode16[T any](d []T, buf []byte, flush func(int) error, bits func(T) uint16) error {
	per := len(buf) / 2
	for off := 0; off < len(d); off += per {
		n := min(per, len(d)-off)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint16(buf[i*2:], bits(d[off+i]))
		}
		if err := flush(n * 2); err != nil {
			return err
		}
	}
	return nil
}

// crcReader tees reads into a CRC-32.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func newCRCReader(r io.Reader) *crcReader {
	return &crcReader{r: r, crc: crc32.NewIEEE()}
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc.Write(p[:n])
	return n, err
}

func (c *crcReader) sum() uint32 { return c.crc.Sum32() }
func (c *crcReader) reset()      { c.crc.Reset() }

// Decode reads one pochoir-checkpoint/v1 checkpoint from r. Arbitrary or
// corrupt input returns an error — never a panic, and never an allocation
// beyond the input's actual size plus a fixed scratch buffer: every count is
// validated against the format's caps and the header's own arithmetic before
// use, and payloads are read through a bounded chunk loop so a hostile
// declared length fails at EOF instead of pre-allocating.
func Decode(r io.Reader) (*Checkpoint, error) {
	// No read-ahead buffering: every read is exact (io.ReadFull of either a
	// fixed header field or a payload chunk), so Decode consumes precisely
	// one encoding and leaves r positioned at its end — which is what lets
	// ReadEntry reject trailing garbage.
	cr := newCRCReader(r)
	var scratch [8]byte

	readFull := func(b []byte) error {
		_, err := io.ReadFull(cr, b)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("wire: truncated checkpoint: %w", io.ErrUnexpectedEOF)
		}
		return err
	}
	getU32 := func() (uint32, error) {
		if err := readFull(scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	getU64 := func() (uint64, error) {
		if err := readFull(scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}

	// Header.
	var magic [4]byte
	if err := readFull(magic[:]); err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, fmt.Errorf("wire: bad magic %q, want %q", magic[:], Magic[:])
	}
	version, err := getU32()
	if err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("wire: unsupported version %d, want %d", version, Version)
	}
	stepsRun, err := getU64()
	if err != nil {
		return nil, err
	}
	if stepsRun > math.MaxInt64 {
		return nil, fmt.Errorf("wire: StepsRun %d out of range", stepsRun)
	}
	ndims, err := getU32()
	if err != nil {
		return nil, err
	}
	if ndims == 0 || ndims > MaxDims {
		return nil, fmt.Errorf("wire: %d dimensions, want 1..%d", ndims, MaxDims)
	}
	sizes := make([]int, ndims)
	for i := range sizes {
		s, err := getU64()
		if err != nil {
			return nil, err
		}
		if s == 0 || s > maxSideLen {
			return nil, fmt.Errorf("wire: size of dimension %d is %d, want 1..%d", i, s, maxSideLen)
		}
		sizes[i] = int(s)
	}
	pts, err := points(sizes)
	if err != nil {
		return nil, err
	}
	narrays, err := getU32()
	if err != nil {
		return nil, err
	}
	if narrays == 0 || narrays > MaxArrays {
		return nil, fmt.Errorf("wire: %d array sections, want 1..%d", narrays, MaxArrays)
	}
	wantCRC := cr.sum()
	gotCRC, err := getU32()
	if err != nil {
		return nil, err
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("wire: header CRC mismatch: stored %08x, computed %08x", gotCRC, wantCRC)
	}

	cp := &Checkpoint{StepsRun: int(stepsRun), Sizes: sizes}
	for ai := 0; ai < int(narrays); ai++ {
		cr.reset()
		if err := readFull(scratch[:1]); err != nil {
			return nil, err
		}
		kind := ElemKind(scratch[0])
		esize := kind.Size()
		if esize == 0 {
			return nil, fmt.Errorf("wire: array %d has unknown element kind %d", ai, scratch[0])
		}
		slots32, err := getU32()
		if err != nil {
			return nil, err
		}
		slots := int(slots32)
		if slots == 0 {
			return nil, fmt.Errorf("wire: array %d has 0 slots", ai)
		}
		if pts > math.MaxInt64/slots || pts*slots > math.MaxInt64/esize {
			return nil, fmt.Errorf("wire: array %d geometry %v x %d slots overflows", ai, sizes, slots)
		}
		elems := pts * slots
		nbytes, err := getU64()
		if err != nil {
			return nil, err
		}
		// nbytes must match what the geometry implies; anything else is a
		// corrupt or hostile header, rejected before allocating.
		if nbytes != uint64(elems)*uint64(esize) {
			return nil, fmt.Errorf("wire: array %d declares %d payload bytes, geometry implies %d",
				ai, nbytes, elems*esize)
		}
		data, err := decodeElems(cr, kind, elems)
		if err != nil {
			return nil, err
		}
		wantCRC := cr.sum()
		gotCRC, err := getU32()
		if err != nil {
			return nil, err
		}
		if gotCRC != wantCRC {
			return nil, fmt.Errorf("wire: array %d CRC mismatch: stored %08x, computed %08x", ai, gotCRC, wantCRC)
		}
		cp.Arrays = append(cp.Arrays, Array{Slots: slots, Data: data})
	}
	return cp, nil
}

// decodeElems reads elems elements of the given kind through a bounded
// chunk loop. The typed result slice grows as bytes actually arrive, so a
// truncated input fails with at most one chunk of waste — the decoder never
// trusts a declared length for an up-front allocation larger than the input.
func decodeElems(r io.Reader, kind ElemKind, elems int) (any, error) {
	switch kind {
	case ElemF64:
		return decode64(r, elems, math.Float64frombits)
	case ElemF32:
		return decode32(r, elems, math.Float32frombits)
	case ElemI64:
		return decode64(r, elems, func(b uint64) int64 { return int64(b) })
	case ElemInt:
		return decode64(r, elems, func(b uint64) int { return int(int64(b)) })
	case ElemU64:
		return decode64(r, elems, func(b uint64) uint64 { return b })
	case ElemUint:
		return decode64(r, elems, func(b uint64) uint { return uint(b) })
	case ElemI32:
		return decode32(r, elems, func(b uint32) int32 { return int32(b) })
	case ElemU32:
		return decode32(r, elems, func(b uint32) uint32 { return b })
	case ElemI16:
		return decode16(r, elems, func(b uint16) int16 { return int16(b) })
	case ElemU16:
		return decode16(r, elems, func(b uint16) uint16 { return b })
	case ElemI8:
		return decodeBytes(r, elems, func(b byte) int8 { return int8(b) })
	case ElemU8:
		return decodeBytes(r, elems, func(b byte) uint8 { return b })
	}
	return nil, fmt.Errorf("wire: unknown element kind %d", kind)
}

func decodeChunked[T any](r io.Reader, elems, esize int, fill func(dst []T, src []byte)) ([]T, error) {
	buf := make([]byte, chunk-chunk%esize)
	per := len(buf) / esize
	// Grow toward elems as data arrives instead of allocating elems up
	// front: truncated input then costs at most one chunk.
	out := make([]T, 0, min(elems, per))
	for got := 0; got < elems; {
		n := min(per, elems-got)
		if _, err := io.ReadFull(r, buf[:n*esize]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("wire: truncated array payload: %w", io.ErrUnexpectedEOF)
			}
			return nil, err
		}
		out = append(out, make([]T, n)...)
		fill(out[got:got+n], buf[:n*esize])
		got += n
	}
	return out, nil
}

func decode64[T any](r io.Reader, elems int, from func(uint64) T) ([]T, error) {
	return decodeChunked(r, elems, 8, func(dst []T, src []byte) {
		for i := range dst {
			dst[i] = from(binary.LittleEndian.Uint64(src[i*8:]))
		}
	})
}

func decode32[T any](r io.Reader, elems int, from func(uint32) T) ([]T, error) {
	return decodeChunked(r, elems, 4, func(dst []T, src []byte) {
		for i := range dst {
			dst[i] = from(binary.LittleEndian.Uint32(src[i*4:]))
		}
	})
}

func decode16[T any](r io.Reader, elems int, from func(uint16) T) ([]T, error) {
	return decodeChunked(r, elems, 2, func(dst []T, src []byte) {
		for i := range dst {
			dst[i] = from(binary.LittleEndian.Uint16(src[i*2:]))
		}
	})
}

func decodeBytes[T any](r io.Reader, elems int, from func(byte) T) ([]T, error) {
	return decodeChunked(r, elems, 1, func(dst []T, src []byte) {
		for i := range dst {
			dst[i] = from(src[i])
		}
	})
}
