package wire

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func ckptAt(steps int) *Checkpoint {
	data := make([]float64, 4*3*2)
	for i := range data {
		data[i] = float64(steps*1000 + i)
	}
	return &Checkpoint{StepsRun: steps, Sizes: []int{4, 3}, Arrays: []Array{{Slots: 2, Data: data}}}
}

func TestJournalAppendLoadLatest(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, steps := range []int{0, 4, 8} {
		if _, err := j.Append(ckptAt(steps)); err != nil {
			t.Fatalf("Append(%d): %v", steps, err)
		}
	}
	cp, ent, skipped, err := j.LoadLatest()
	if err != nil || cp == nil {
		t.Fatalf("LoadLatest: cp=%v err=%v", cp, err)
	}
	if skipped != 0 || cp.StepsRun != 8 || ent.Steps != 8 {
		t.Fatalf("LoadLatest: steps=%d ent=%+v skipped=%d", cp.StepsRun, ent, skipped)
	}
	if got := cp.Arrays[0].Data.([]float64)[5]; got != 8005 {
		t.Fatalf("payload element = %v, want 8005", got)
	}
}

func TestJournalPrunesToKeep(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for steps := 0; steps < 10; steps += 2 {
		if _, err := j.Append(ckptAt(steps)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := j.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries after prune, want 2", len(entries))
	}
	if entries[0].Steps != 6 || entries[1].Steps != 8 {
		t.Fatalf("kept entries %+v, want steps 6 and 8", entries)
	}
}

// TestJournalSkipsCorruptTail covers the two crash shapes the CRCs exist
// for: a flipped byte in the newest entry, and a truncated newest entry.
// Both must be skipped in favor of the preceding good checkpoint.
func TestJournalSkipsCorruptTail(t *testing.T) {
	corrupt := func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	truncate := func(t *testing.T, path string) {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()/3); err != nil {
			t.Fatal(err)
		}
	}
	for name, damage := range map[string]func(*testing.T, string){
		"flipped-byte": corrupt,
		"truncated":    truncate,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			j, err := OpenJournal(dir, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, steps := range []int{0, 4, 8} {
				if _, err := j.Append(ckptAt(steps)); err != nil {
					t.Fatal(err)
				}
			}
			entries, err := j.Entries()
			if err != nil {
				t.Fatal(err)
			}
			damage(t, entries[len(entries)-1].Path)

			cp, ent, skipped, err := j.LoadLatest()
			if err != nil || cp == nil {
				t.Fatalf("LoadLatest: cp=%v err=%v", cp, err)
			}
			if skipped != 1 {
				t.Fatalf("skipped = %d, want 1", skipped)
			}
			if cp.StepsRun != 4 || ent.Steps != 4 {
				t.Fatalf("fell back to steps=%d, want 4", cp.StepsRun)
			}
		})
	}
}

func TestJournalAllCorruptIsColdStart(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, steps := range []int{0, 4} {
		if _, err := j.Append(ckptAt(steps)); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := j.Entries()
	for _, e := range entries {
		if err := os.Truncate(e.Path, 2); err != nil {
			t.Fatal(err)
		}
	}
	cp, _, skipped, err := j.LoadLatest()
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if cp != nil || skipped != 2 {
		t.Fatalf("cp=%v skipped=%d, want nil cp and 2 skipped", cp, skipped)
	}
}

// TestJournalIgnoresTornTempFiles simulates a crash mid-spill: a stale temp
// file must be invisible to Entries and LoadLatest.
func TestJournalIgnoresTornTempFiles(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(ckptAt(4)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"123"), []byte("PCHK torn half-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := j.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries, want 1 (temp file leaked in)", len(entries))
	}
	cp, _, skipped, err := j.LoadLatest()
	if err != nil || cp == nil || skipped != 0 || cp.StepsRun != 4 {
		t.Fatalf("LoadLatest: cp=%v skipped=%d err=%v", cp, skipped, err)
	}
}

// TestJournalSequenceSurvivesReopen checks a fresh process resumes the write
// sequence past existing entries instead of overwriting them.
func TestJournalSequenceSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j1, err := OpenJournal(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := j1.Append(ckptAt(4))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Same resume cursor (a retried segment re-spills from the same step):
	// the sequence number must still advance.
	e2, err := j2.Append(ckptAt(4))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Seq <= e1.Seq {
		t.Fatalf("reopened journal reused sequence: %d then %d", e1.Seq, e2.Seq)
	}
	cp, ent, _, err := j2.LoadLatest()
	if err != nil || cp == nil || ent.Seq != e2.Seq {
		t.Fatalf("LoadLatest after reopen: ent=%+v err=%v", ent, err)
	}
}

func TestReadEntryRejectsTrailingBytes(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	ent, err := j.Append(ckptAt(4))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(ent.Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("junk"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ReadEntry(ent.Path); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("ReadEntry with trailing bytes: err=%v, want trailing-bytes error", err)
	}
}
