package wire

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// sampleCheckpoint builds a two-array checkpoint with deterministic values
// spanning negative, fractional, and special floats.
func sampleCheckpoint() *Checkpoint {
	const X, Y, slots = 7, 5, 2
	a := make([]float64, X*Y*slots)
	b := make([]float64, X*Y*slots)
	for i := range a {
		a[i] = math.Sqrt(float64(i)) - 3.25
		b[i] = float64(i%13) * -0.5
	}
	a[3] = math.Inf(1)
	a[4] = math.NaN()
	return &Checkpoint{
		StepsRun: 42,
		Sizes:    []int{X, Y},
		Arrays:   []Array{{Slots: slots, Data: a}, {Slots: slots, Data: b}},
	}
}

func encodeToBytes(t *testing.T, cp *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, cp); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTripFloat64(t *testing.T) {
	cp := sampleCheckpoint()
	data := encodeToBytes(t, cp)
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.StepsRun != cp.StepsRun {
		t.Fatalf("StepsRun = %d, want %d", got.StepsRun, cp.StepsRun)
	}
	if len(got.Sizes) != 2 || got.Sizes[0] != 7 || got.Sizes[1] != 5 {
		t.Fatalf("Sizes = %v", got.Sizes)
	}
	if len(got.Arrays) != 2 {
		t.Fatalf("arrays = %d, want 2", len(got.Arrays))
	}
	for ai := range got.Arrays {
		want := cp.Arrays[ai].Data.([]float64)
		gotD, ok := got.Arrays[ai].Data.([]float64)
		if !ok {
			t.Fatalf("array %d decoded as %T", ai, got.Arrays[ai].Data)
		}
		if len(gotD) != len(want) {
			t.Fatalf("array %d length %d, want %d", ai, len(gotD), len(want))
		}
		for i := range want {
			// Bit-exact comparison: NaN must round-trip too.
			if math.Float64bits(gotD[i]) != math.Float64bits(want[i]) {
				t.Fatalf("array %d element %d = %v, want %v", ai, i, gotD[i], want[i])
			}
		}
	}
}

func TestRoundTripAllElemKinds(t *testing.T) {
	mk := func(data any) *Checkpoint {
		return &Checkpoint{StepsRun: 1, Sizes: []int{3, 2}, Arrays: []Array{{Slots: 1, Data: data}}}
	}
	cases := []any{
		[]float64{1.5, -2, 3, 4, 5, 6},
		[]float32{1.5, -2, 3, 4, 5, 6},
		[]int64{-1, 2, -3, 4, -5, math.MaxInt64},
		[]int32{-1, 2, -3, 4, -5, math.MaxInt32},
		[]int16{-1, 2, -3, 4, -5, math.MaxInt16},
		[]int8{-1, 2, -3, 4, -5, math.MaxInt8},
		[]uint64{1, 2, 3, 4, 5, math.MaxUint64},
		[]uint32{1, 2, 3, 4, 5, math.MaxUint32},
		[]uint16{1, 2, 3, 4, 5, math.MaxUint16},
		[]uint8{1, 2, 3, 4, 5, math.MaxUint8},
		[]int{-1, 2, -3, 4, -5, math.MaxInt64},
		[]uint{1, 2, 3, 4, 5, 6},
	}
	for _, data := range cases {
		cp := mk(data)
		out := encodeToBytes(t, cp)
		got, err := Decode(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("%T: Decode: %v", data, err)
		}
		if !deepEqualSlices(got.Arrays[0].Data, data) {
			t.Fatalf("%T: round trip mismatch: got %v, want %v", data, got.Arrays[0].Data, data)
		}
	}
}

func deepEqualSlices(a, b any) bool {
	switch x := a.(type) {
	case []float64:
		y, ok := b.([]float64)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				return false
			}
		}
		return true
	case []float32:
		y, ok := b.([]float32)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if math.Float32bits(x[i]) != math.Float32bits(y[i]) {
				return false
			}
		}
		return true
	}
	ka, na, _ := KindOf(a)
	kb, nb, _ := KindOf(b)
	if ka != kb || na != nb {
		return false
	}
	var bufA, bufB bytes.Buffer
	_ = encodeElems(&bufA, a)
	_ = encodeElems(&bufB, b)
	return bytes.Equal(bufA.Bytes(), bufB.Bytes())
}

func TestEncodeRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		name string
		cp   *Checkpoint
	}{
		{"nil", nil},
		{"negative-steps", &Checkpoint{StepsRun: -1, Sizes: []int{2}, Arrays: []Array{{Slots: 1, Data: []float64{0, 0}}}}},
		{"no-sizes", &Checkpoint{Sizes: nil, Arrays: []Array{{Slots: 1, Data: []float64{}}}}},
		{"no-arrays", &Checkpoint{Sizes: []int{2}}},
		{"bad-length", &Checkpoint{Sizes: []int{2}, Arrays: []Array{{Slots: 2, Data: []float64{1, 2, 3}}}}},
		{"zero-slots", &Checkpoint{Sizes: []int{2}, Arrays: []Array{{Slots: 0, Data: []float64{}}}}},
		{"unsupported-type", &Checkpoint{Sizes: []int{1}, Arrays: []Array{{Slots: 1, Data: []string{"x"}}}}},
	}
	for _, tc := range cases {
		buf.Reset()
		if err := Encode(&buf, tc.cp); err == nil {
			t.Errorf("%s: Encode succeeded, want error", tc.name)
		}
		if buf.Len() != 0 {
			t.Errorf("%s: failed Encode wrote %d bytes", tc.name, buf.Len())
		}
	}
}

// TestDecodeDetectsEveryFlippedByte flips each byte of a valid encoding in
// turn and requires the decoder to reject the result (or, for the rare flips
// that keep the checkpoint well-formed, such as the unused high bits of a
// value, to at least not panic). Header and CRC bytes must always be caught.
func TestDecodeDetectsEveryFlippedByte(t *testing.T) {
	data := encodeToBytes(t, sampleCheckpoint())
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		got, err := Decode(bytes.NewReader(mut))
		if err == nil {
			// A flip inside an array payload changes the data; the section
			// CRC must have caught it, so reaching here is a hard failure.
			_ = got
			t.Fatalf("flip at byte %d of %d decoded successfully", i, len(data))
		}
	}
}

func TestDecodeDetectsTruncation(t *testing.T) {
	data := encodeToBytes(t, sampleCheckpoint())
	for _, cut := range []int{0, 1, 3, 4, 11, len(data) / 2, len(data) - 5, len(data) - 1} {
		if _, err := Decode(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", cut, len(data))
		}
	}
}

func TestDecodeRejectsHostileHeader(t *testing.T) {
	// A header declaring astronomically large extents must be rejected
	// before any proportional allocation.
	cp := &Checkpoint{StepsRun: 0, Sizes: []int{2}, Arrays: []Array{{Slots: 1, Data: []float64{1, 2}}}}
	data := encodeToBytes(t, cp)
	// Corrupt the size field (offset: magic 4 + version 4 + steps 8 + ndims 4).
	mut := append([]byte(nil), data...)
	for i := 20; i < 28; i++ {
		mut[i] = 0xff
	}
	if _, err := Decode(bytes.NewReader(mut)); err == nil {
		t.Fatal("hostile sizes decoded successfully")
	}
	if _, err := Decode(strings.NewReader("PCHK garbage")); err == nil {
		t.Fatal("garbage after magic decoded successfully")
	}
}

func TestDecodeRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(512)
		b := make([]byte, n)
		rng.Read(b)
		if rng.Intn(2) == 0 && n >= 4 {
			copy(b, Magic[:]) // exercise past the magic check half the time
		}
		_, _ = Decode(bytes.NewReader(b)) // must not panic
	}
}

func TestElemKindStringAndSize(t *testing.T) {
	for k := ElemF64; k < numElemKinds; k++ {
		if k.Size() == 0 {
			t.Errorf("kind %d has size 0", k)
		}
		if strings.HasPrefix(k.String(), "elem(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if ElemKind(200).Size() != 0 {
		t.Error("invalid kind has nonzero size")
	}
}
