package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode feeds arbitrary bytes to the checkpoint decoder. The
// contract under fuzzing: any input either decodes to a structurally valid
// checkpoint or returns an error — never a panic, and never an allocation
// proportional to a hostile declared size rather than to the input itself
// (section lengths are validated against the header's geometry and payloads
// are read through a bounded chunk loop).
func FuzzWireDecode(f *testing.F) {
	// Seed with valid encodings of a few shapes and element kinds so the
	// fuzzer starts past the magic/version gate.
	seeds := []*Checkpoint{
		{StepsRun: 0, Sizes: []int{2}, Arrays: []Array{{Slots: 1, Data: []float64{1, 2}}}},
		{StepsRun: 9, Sizes: []int{3, 2}, Arrays: []Array{
			{Slots: 2, Data: []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
			{Slots: 1, Data: []float32{1, 2, 3, 4, 5, 6}},
		}},
		{StepsRun: 100, Sizes: []int{2, 2, 2}, Arrays: []Array{{Slots: 1, Data: []uint8{1, 2, 3, 4, 5, 6, 7, 8}}}},
		{StepsRun: 5, Sizes: []int{4}, Arrays: []Array{{Slots: 1, Data: []int{-4, -3, -2, -1}}}},
	}
	for _, cp := range seeds {
		var buf bytes.Buffer
		if err := Encode(&buf, cp); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("PCHK"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must be internally consistent and must
		// re-encode: the invariants Restore relies on.
		pts := 1
		for _, s := range cp.Sizes {
			pts *= s
		}
		for i, a := range cp.Arrays {
			kind, n, ok := KindOf(a.Data)
			if !ok || kind.Size() == 0 {
				t.Fatalf("decoded array %d has unsupported data %T", i, a.Data)
			}
			if n != pts*a.Slots {
				t.Fatalf("decoded array %d has %d elements, geometry implies %d", i, n, pts*a.Slots)
			}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, cp); err != nil {
			t.Fatalf("re-encode of decoded checkpoint failed: %v", err)
		}
	})
}
