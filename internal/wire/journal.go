package wire

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// entryPrefix and entryExt frame journal entry filenames:
//
//	ckpt-<steps:12>-<seq:6>.pchk
//
// steps is the entry's resume cursor and seq a monotonically increasing
// write counter, both zero-padded so lexical order is (steps, seq) order —
// the newest good entry is simply the last name that validates.
const (
	entryPrefix = "ckpt-"
	entryExt    = ".pchk"
	tmpPrefix   = ".tmp-ckpt-"
)

// DefaultKeep is the journal's default retention: enough history to survive
// a corrupt newest entry (and the one before it) without unbounded disk use.
const DefaultKeep = 3

// Journal is a crash-safe spill journal: a directory of encoded checkpoints
// written via temp-file + fsync + atomic rename, pruned to the newest Keep
// entries. One journal has one writer (the supervising process); any number
// of processes may read it.
type Journal struct {
	dir  string
	keep int
	seq  int
}

// Entry describes one journal file.
type Entry struct {
	// Path is the entry's absolute or dir-relative file path.
	Path string
	// Steps is the resume cursor encoded in the entry's name.
	Steps int
	// Seq is the write sequence number encoded in the entry's name.
	Seq int
	// Bytes is the file size.
	Bytes int64
}

// OpenJournal opens (creating if needed) the spill journal in dir, retaining
// the newest keep entries (keep <= 0 selects DefaultKeep). The write
// sequence resumes past any existing entries, so re-opening after a crash
// never reuses a name.
func OpenJournal(dir string, keep int) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("wire: empty journal directory")
	}
	if keep <= 0 {
		keep = DefaultKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	j := &Journal{dir: dir, keep: keep}
	entries, err := j.Entries()
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.Seq >= j.seq {
			j.seq = e.Seq + 1
		}
	}
	return j, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// parseEntryName decodes steps and seq from an entry filename.
func parseEntryName(name string) (steps, seq int, ok bool) {
	if !strings.HasPrefix(name, entryPrefix) || !strings.HasSuffix(name, entryExt) {
		return 0, 0, false
	}
	body := name[len(entryPrefix) : len(name)-len(entryExt)]
	dash := strings.IndexByte(body, '-')
	if dash < 0 {
		return 0, 0, false
	}
	st, err1 := strconv.Atoi(body[:dash])
	sq, err2 := strconv.Atoi(body[dash+1:])
	if err1 != nil || err2 != nil || st < 0 || sq < 0 {
		return 0, 0, false
	}
	return st, sq, true
}

// Entries lists the journal's entries, oldest first. Temp files from torn
// writes and foreign files are ignored.
func (j *Journal) Entries() ([]Entry, error) {
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	var out []Entry
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		steps, seq, ok := parseEntryName(e.Name())
		if !ok {
			continue
		}
		ent := Entry{Path: filepath.Join(j.dir, e.Name()), Steps: steps, Seq: seq}
		if info, err := e.Info(); err == nil {
			ent.Bytes = info.Size()
		}
		out = append(out, ent)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Steps != out[b].Steps {
			return out[a].Steps < out[b].Steps
		}
		return out[a].Seq < out[b].Seq
	})
	return out, nil
}

// Append durably spills cp as the journal's newest entry: encode to a temp
// file in the same directory, fsync, atomically rename into place, then
// prune beyond the retention cap. A crash at any point leaves either the
// complete new entry or none — never a torn one a reader could mistake for
// good.
func (j *Journal) Append(cp *Checkpoint) (Entry, error) {
	f, err := os.CreateTemp(j.dir, tmpPrefix)
	if err != nil {
		return Entry{}, fmt.Errorf("wire: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) (Entry, error) {
		f.Close()
		os.Remove(tmp)
		return Entry{}, err
	}
	if err := Encode(f, cp); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("wire: %w", err))
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return fail(fmt.Errorf("wire: %w", err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("wire: %w", err))
	}
	ent := Entry{Steps: cp.StepsRun, Seq: j.seq, Bytes: size}
	ent.Path = filepath.Join(j.dir, fmt.Sprintf("%s%012d-%06d%s", entryPrefix, ent.Steps, ent.Seq, entryExt))
	if err := os.Rename(tmp, ent.Path); err != nil {
		os.Remove(tmp)
		return Entry{}, fmt.Errorf("wire: %w", err)
	}
	j.seq++
	j.prune()
	return ent, nil
}

// prune removes the oldest entries beyond the retention cap. Best effort: a
// prune failure never fails the spill that triggered it.
func (j *Journal) prune() {
	entries, err := j.Entries()
	if err != nil || len(entries) <= j.keep {
		return
	}
	for _, e := range entries[:len(entries)-j.keep] {
		_ = os.Remove(e.Path)
	}
}

// ReadEntry loads and fully validates one journal entry (header and every
// section CRC). Trailing garbage after a well-formed checkpoint is rejected:
// an entry is exactly one encoding.
func ReadEntry(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cp, err := Decode(f)
	if err != nil {
		// Decode errors already carry the "wire:" prefix; add only the path.
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var tail [1]byte
	if n, _ := f.Read(tail[:]); n != 0 {
		return nil, fmt.Errorf("%s: wire: trailing bytes after checkpoint", path)
	}
	return cp, nil
}

// LoadLatest walks the journal newest-first and returns the newest entry
// that validates end to end, skipping past any corrupt or truncated tail.
// skipped counts the entries rejected on the way. An empty (or fully
// corrupt) journal returns a nil checkpoint and no error — the caller's
// cold-start path.
func (j *Journal) LoadLatest() (cp *Checkpoint, ent Entry, skipped int, err error) {
	entries, err := j.Entries()
	if err != nil {
		return nil, Entry{}, 0, err
	}
	for i := len(entries) - 1; i >= 0; i-- {
		c, rerr := ReadEntry(entries[i].Path)
		if rerr != nil {
			skipped++
			continue
		}
		return c, entries[i], skipped, nil
	}
	return nil, Entry{}, skipped, nil
}
