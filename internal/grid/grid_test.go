package grid

import (
	"testing"

	"pochoir/internal/shape"
)

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray[float64](0, 4); err == nil {
		t.Error("depth 0 should error")
	}
	if _, err := NewArray[float64](1); err == nil {
		t.Error("no dims should error")
	}
	if _, err := NewArray[float64](1, 4, 0); err == nil {
		t.Error("zero size should error")
	}
	a, err := NewArray[float64](2, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.NDims() != 3 || a.Slots() != 3 || a.PointsPerSlot() != 60 {
		t.Fatalf("bad array geometry: ndims=%d slots=%d pts=%d", a.NDims(), a.Slots(), a.PointsPerSlot())
	}
	if a.Stride(2) != 1 || a.Stride(1) != 5 || a.Stride(0) != 20 {
		t.Fatalf("bad strides %d %d %d", a.Stride(0), a.Stride(1), a.Stride(2))
	}
}

func TestGetSetRoundTrip(t *testing.T) {
	a := MustNewArray[float64](1, 4, 6)
	for x := 0; x < 4; x++ {
		for y := 0; y < 6; y++ {
			a.Set(0, float64(10*x+y), x, y)
			a.Set(1, float64(100*x+y), x, y)
		}
	}
	for x := 0; x < 4; x++ {
		for y := 0; y < 6; y++ {
			if got := a.Get(0, x, y); got != float64(10*x+y) {
				t.Fatalf("Get(0,%d,%d) = %v", x, y, got)
			}
			if got := a.Get(1, x, y); got != float64(100*x+y) {
				t.Fatalf("Get(1,%d,%d) = %v", x, y, got)
			}
		}
	}
}

func TestTemporalCircularBuffer(t *testing.T) {
	a := MustNewArray[int](1, 3) // 2 slots
	a.Set(0, 10, 1)
	a.Set(1, 11, 1)
	// Time 2 aliases slot 0, time 3 aliases slot 1.
	if a.Get(2, 1) != 10 || a.Get(3, 1) != 11 {
		t.Fatal("time indices should wrap modulo slots")
	}
	a.Set(2, 20, 1)
	if a.Get(0, 1) != 20 {
		t.Fatal("writing t=2 should overwrite slot 0")
	}
	// Negative time wraps too (virtual time during warm-up).
	if a.Get(-2, 1) != 20 {
		t.Fatal("negative time should wrap")
	}
}

func TestBoundaryFunctionInvocation(t *testing.T) {
	a := MustNewArray[float64](1, 5)
	calls := 0
	a.RegisterBoundary(func(arr *Array[float64], tt int, idx []int) float64 {
		calls++
		return -1
	})
	a.Set(0, 7, 4)
	if got := a.Get(0, 4); got != 7 || calls != 0 {
		t.Fatal("in-domain access must not call boundary")
	}
	if got := a.Get(0, 5); got != -1 || calls != 1 {
		t.Fatalf("off-domain access should call boundary: got %v calls=%d", got, calls)
	}
	if got := a.Get(0, -1); got != -1 || calls != 2 {
		t.Fatal("negative index is off-domain")
	}
}

func TestOffDomainWithoutBoundaryPanics(t *testing.T) {
	a := MustNewArray[float64](1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Get(0, 5)
}

func TestOffDomainWritePanics(t *testing.T) {
	a := MustNewArray[float64](1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Set(0, 1, -1)
}

func TestGetPeriodicAndClamped(t *testing.T) {
	a := MustNewArray[int](1, 4)
	for x := 0; x < 4; x++ {
		a.Set(0, x, x)
	}
	if a.GetPeriodic(0, -1) != 3 || a.GetPeriodic(0, 4) != 0 || a.GetPeriodic(0, 9) != 1 {
		t.Fatal("periodic wrap wrong")
	}
	if a.GetClamped(0, -3) != 0 || a.GetClamped(0, 99) != 3 {
		t.Fatal("clamp wrong")
	}
}

func TestCopyInOut(t *testing.T) {
	a := MustNewArray[float64](1, 2, 3)
	src := []float64{1, 2, 3, 4, 5, 6}
	if err := a.CopyIn(0, src); err != nil {
		t.Fatal(err)
	}
	if a.Get(0, 1, 2) != 6 || a.Get(0, 0, 1) != 2 {
		t.Fatal("CopyIn layout mismatch")
	}
	dst := make([]float64, 6)
	if err := a.CopyOut(0, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatal("CopyOut mismatch")
		}
	}
	if err := a.CopyIn(0, src[:3]); err == nil {
		t.Fatal("short CopyIn should error")
	}
	if err := a.CopyOut(0, dst[:3]); err == nil {
		t.Fatal("short CopyOut should error")
	}
}

func TestFill(t *testing.T) {
	a := MustNewArray[int](1, 3, 3)
	a.Fill(1, 9)
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			if a.Get(1, x, y) != 9 {
				t.Fatal("Fill missed a point")
			}
			if a.Get(0, x, y) != 0 {
				t.Fatal("Fill leaked into other slot")
			}
		}
	}
}

func TestSlotDirectAccess(t *testing.T) {
	a := MustNewArray[float64](1, 3, 4)
	a.Set(1, 42, 2, 3)
	s := a.Slot(1)
	if s[2*a.Stride(0)+3*a.Stride(1)] != 42 {
		t.Fatal("Slot/stride arithmetic inconsistent with Set")
	}
}

func TestSprint(t *testing.T) {
	a := MustNewArray[int](1, 2, 3)
	for x := 0; x < 2; x++ {
		for y := 0; y < 3; y++ {
			a.Set(0, 10*x+y, x, y)
		}
	}
	got := a.Sprint(0)
	want := "0 1 2\n10 11 12\n"
	if got != want {
		t.Fatalf("Sprint = %q, want %q", got, want)
	}
	// 1D arrays print one line.
	b := MustNewArray[float64](1, 3)
	b.Set(0, 1.5, 1)
	if got := b.Sprint(0); got != "0 1.5 0\n" {
		t.Fatalf("1D Sprint = %q", got)
	}
	// 3D arrays separate planes with blank lines.
	c := MustNewArray[int](1, 2, 2, 2)
	if got := c.Sprint(0); got != "0 0\n0 0\n\n0 0\n0 0\n" {
		t.Fatalf("3D Sprint = %q", got)
	}
}

func TestShapeCheck(t *testing.T) {
	sh := shape.MustNew(1, [][]int{{1, 0}, {0, 0}, {0, 1}, {0, -1}})
	a := MustNewArray[float64](1, 8)
	a.RegisterBoundary(func(arr *Array[float64], tt int, idx []int) float64 { return 0 })
	a.EnableShapeCheck(sh)

	// Compliant accesses for home (t=3, x=4).
	a.SetHome(3, []int{4})
	_ = a.Get(3, 4)
	_ = a.Get(3, 5)
	_ = a.Get(3, 3)
	a.Set(4, 1.0, 4)
	if err := a.CheckErr(); err != nil {
		t.Fatalf("compliant kernel flagged: %v", err)
	}

	// Violating access: two cells away.
	_ = a.Get(3, 6)
	err := a.CheckErr()
	if err == nil {
		t.Fatal("expected shape violation")
	}
	if _, ok := err.(*ShapeError); !ok {
		t.Fatalf("want *ShapeError, got %T", err)
	}

	// First violation is kept.
	_ = a.Get(3, 7)
	if a.CheckErr() != err {
		t.Fatal("first violation should be retained")
	}

	a.DisableShapeCheck()
	if a.CheckErr() != nil {
		t.Fatal("disable should clear error")
	}
	_ = a.Get(3, 6) // no longer checked
}

func TestShapeErrorMessage(t *testing.T) {
	sh := shape.MustNew(1, [][]int{{1, 0}, {0, 0}})
	a := MustNewArray[float64](1, 8)
	a.EnableShapeCheck(sh)
	a.SetHome(0, []int{2})
	_ = a.Get(0, 4)
	err := a.CheckErr()
	if err == nil {
		t.Fatal("expected violation")
	}
	msg := err.Error()
	for _, frag := range []string{"pochoir guarantee", "t=0", "[4]"} {
		if !contains(msg, frag) {
			t.Errorf("error message %q missing %q", msg, frag)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
