package grid

import "testing"

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	a := MustNewArray[float64](2, 3, 4)
	for s := 0; s < a.Slots(); s++ {
		slot := a.Slot(s)
		for i := range slot {
			slot[i] = float64(s*100 + i)
		}
	}
	cp := a.Checkpoint()

	// Scribble over every slot, then restore.
	for s := 0; s < a.Slots(); s++ {
		a.Fill(s, -1)
	}
	if err := a.Restore(cp); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < a.Slots(); s++ {
		slot := a.Slot(s)
		for i := range slot {
			if slot[i] != float64(s*100+i) {
				t.Fatalf("slot %d index %d = %v after restore", s, i, slot[i])
			}
		}
	}
}

func TestCheckpointIsDeepCopy(t *testing.T) {
	a := MustNewArray[int](1, 4)
	a.Fill(0, 7)
	cp := a.Checkpoint()
	a.Fill(0, 9) // mutating the array must not touch the checkpoint
	if err := a.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if got := a.Slot(0)[0]; got != 7 {
		t.Fatalf("restore returned %d, want the checkpointed 7", got)
	}
	// And restoring must not alias: mutate after restore, restore again.
	a.Fill(0, 11)
	if err := a.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if got := a.Slot(0)[0]; got != 7 {
		t.Fatalf("second restore returned %d, want 7", got)
	}
}

func TestRestoreRejectsMismatchedGeometry(t *testing.T) {
	a := MustNewArray[float64](1, 4, 4)
	for _, other := range []*Array[float64]{
		MustNewArray[float64](2, 4, 4), // different depth
		MustNewArray[float64](1, 4),    // different dimensionality
		MustNewArray[float64](1, 4, 5), // different extent
	} {
		if err := a.Restore(other.Checkpoint()); err == nil {
			t.Fatalf("restore accepted checkpoint of %v slots=%d", other.Sizes(), other.Slots())
		}
	}
	if err := a.Restore(nil); err == nil {
		t.Fatal("restore accepted nil checkpoint")
	}
}
