// Package grid implements Pochoir arrays (§2): a d-dimensional spatial grid
// crossed with a small circular temporal buffer of depth k+1, where k is the
// depth of the stencil shape the array participates in.
//
// The array provides two access paths, mirroring the paper's two kernel
// clones (§4, "Handling boundary conditions by code cloning"):
//
//   - the checked path (Get/Set and their fixed-arity variants) consults the
//     registered boundary function whenever a spatial index falls outside
//     the computing domain, and optionally enforces the declared stencil
//     shape — this is the Phase-1 "template library" behaviour, including
//     the Pochoir Guarantee check;
//   - the unchecked interior path (Idx and direct Slot access) performs
//     only address arithmetic and is what Phase-2 generated code and the
//     hand-specialized kernels use inside interior zoids.
package grid

import (
	"fmt"

	"pochoir/internal/shape"
)

// Boundary supplies a value for an access that falls outside the computing
// domain of array a: t is the time coordinate and idx the off-domain spatial
// coordinates. It corresponds to Pochoir_Boundary_dimD.
type Boundary[T any] func(a *Array[T], t int, idx []int) T

// Array is a Pochoir array: |sizes[0]| x ... x |sizes[d-1]| spatial points,
// each with slots = depth+1 time copies reused modulo slots as the
// computation proceeds. The last spatial dimension is unit-stride.
type Array[T any] struct {
	ndims   int
	sizes   []int
	strides []int
	total   int // product of sizes: points per time slot
	slots   int // depth + 1
	data    []T

	boundary Boundary[T]

	// Shape-compliance checking (the Pochoir Guarantee, Phase 1).
	checkShape *shape.Shape
	homeT      int
	homeX      []int
	checkErr   error
}

// NewArray allocates a Pochoir array with the given stencil depth (the
// temporal buffer holds depth+1 slots) and spatial sizes. Sizes are listed
// from the slowest-varying dimension to the unit-stride dimension, matching
// the index order of Get/Set.
func NewArray[T any](depth int, sizes ...int) (*Array[T], error) {
	if depth < 1 {
		return nil, fmt.Errorf("grid: depth must be >= 1, got %d", depth)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("grid: need at least one spatial dimension")
	}
	total := 1
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("grid: size of dimension %d is %d, must be positive", i, s)
		}
		total *= s
	}
	a := &Array[T]{
		ndims:   len(sizes),
		sizes:   append([]int(nil), sizes...),
		strides: make([]int, len(sizes)),
		total:   total,
		slots:   depth + 1,
		data:    make([]T, total*(depth+1)),
	}
	st := 1
	for i := a.ndims - 1; i >= 0; i-- {
		a.strides[i] = st
		st *= a.sizes[i]
	}
	return a, nil
}

// MustNewArray is NewArray, panicking on error.
func MustNewArray[T any](depth int, sizes ...int) *Array[T] {
	a, err := NewArray[T](depth, sizes...)
	if err != nil {
		panic(err)
	}
	return a
}

// NDims returns the number of spatial dimensions.
func (a *Array[T]) NDims() int { return a.ndims }

// Size returns the extent of spatial dimension i (same order as Get/Set).
func (a *Array[T]) Size(i int) int { return a.sizes[i] }

// Sizes returns a copy of all spatial extents.
func (a *Array[T]) Sizes() []int { return append([]int(nil), a.sizes...) }

// Stride returns the linear stride of spatial dimension i within a slot.
func (a *Array[T]) Stride(i int) int { return a.strides[i] }

// Slots returns the number of temporal copies (stencil depth + 1).
func (a *Array[T]) Slots() int { return a.slots }

// PointsPerSlot returns the number of spatial points in one time slot.
func (a *Array[T]) PointsPerSlot() int { return a.total }

// Slot returns the backing storage of time step t's slot (t taken modulo
// the number of slots). Phase-2 specialized kernels walk this directly.
func (a *Array[T]) Slot(t int) []T {
	s := t % a.slots
	if s < 0 {
		s += a.slots
	}
	return a.data[s*a.total : (s+1)*a.total]
}

// RegisterBoundary associates the boundary function b with the array.
// Each array has exactly one boundary function at a time; registering a new
// one replaces the old (§2, Register_Boundary).
func (a *Array[T]) RegisterBoundary(b Boundary[T]) { a.boundary = b }

// HasBoundary reports whether a boundary function has been registered.
func (a *Array[T]) HasBoundary() bool { return a.boundary != nil }

// inDomain reports whether idx lies inside the spatial domain.
func (a *Array[T]) inDomain(idx []int) bool {
	for i, x := range idx {
		if x < 0 || x >= a.sizes[i] {
			return false
		}
	}
	return true
}

// Idx returns the linear offset of the in-domain spatial index idx within a
// slot. It performs no checking.
func (a *Array[T]) Idx(idx []int) int {
	off := 0
	for i, x := range idx {
		off += x * a.strides[i]
	}
	return off
}

// Get returns the value at time t and spatial index idx. Off-domain
// accesses are served by the registered boundary function; it is an error
// (panic) to read off-domain without one. When shape checking is active the
// access offset is verified against the declared stencil shape.
func (a *Array[T]) Get(t int, idx ...int) T {
	if a.checkShape != nil {
		a.verify(t, idx)
	}
	if !a.inDomain(idx) {
		if a.boundary == nil {
			panic(fmt.Sprintf("grid: off-domain read at t=%d idx=%v with no boundary function registered", t, idx))
		}
		return a.boundary(a, t, idx)
	}
	return a.Slot(t)[a.Idx(idx)]
}

// Set stores v at time t and spatial index idx, which must be in-domain.
func (a *Array[T]) Set(t int, v T, idx ...int) {
	if a.checkShape != nil {
		a.verify(t, idx)
	}
	if !a.inDomain(idx) {
		panic(fmt.Sprintf("grid: off-domain write at t=%d idx=%v", t, idx))
	}
	a.Slot(t)[a.Idx(idx)] = v
}

// GetClamped returns the value at t with each spatial coordinate clamped to
// the domain; a convenience for Neumann-style boundary functions.
func (a *Array[T]) GetClamped(t int, idx ...int) T {
	off := 0
	for i, x := range idx {
		if x < 0 {
			x = 0
		} else if x >= a.sizes[i] {
			x = a.sizes[i] - 1
		}
		off += x * a.strides[i]
	}
	return a.Slot(t)[off]
}

// GetPeriodic returns the value at t with each spatial coordinate wrapped
// modulo the domain; a convenience for periodic boundary functions.
func (a *Array[T]) GetPeriodic(t int, idx ...int) T {
	off := 0
	for i, x := range idx {
		n := a.sizes[i]
		x %= n
		if x < 0 {
			x += n
		}
		off += x * a.strides[i]
	}
	return a.Slot(t)[off]
}

// Fill sets every point of time step t's slot to v.
func (a *Array[T]) Fill(t int, v T) {
	s := a.Slot(t)
	for i := range s {
		s[i] = v
	}
}

// CopyIn copies src (one full slot's worth of points, linearized in index
// order) into time step t's slot — the copy-in half of Pochoir's
// copy-in/copy-out data policy (§2, Rationale).
func (a *Array[T]) CopyIn(t int, src []T) error {
	if len(src) != a.total {
		return fmt.Errorf("grid: CopyIn got %d points, want %d", len(src), a.total)
	}
	copy(a.Slot(t), src)
	return nil
}

// CopyOut copies time step t's slot into dst.
func (a *Array[T]) CopyOut(t int, dst []T) error {
	if len(dst) != a.total {
		return fmt.Errorf("grid: CopyOut got %d points, want %d", len(dst), a.total)
	}
	copy(dst, a.Slot(t))
	return nil
}

// ArrayCheckpoint is a deep copy of an array's temporal buffer, taken with
// Array.Checkpoint and reapplied with Array.Restore. It is immutable after
// capture: restoring never aliases the checkpoint's storage into the live
// array, so one checkpoint can seed any number of retries.
type ArrayCheckpoint[T any] struct {
	sizes []int
	slots int
	data  []T
}

// Sizes returns the spatial extents the checkpoint was taken with.
func (cp *ArrayCheckpoint[T]) Sizes() []int { return append([]int(nil), cp.sizes...) }

// Slots returns the number of temporal copies the checkpoint was taken with.
func (cp *ArrayCheckpoint[T]) Slots() int { return cp.slots }

// Data returns the checkpoint's slot-major element buffer — a read-only view
// of the underlying storage (points-per-slot x slots elements), used by the
// wire codec to stream a checkpoint to disk without copying it again.
// Callers must not mutate it: checkpoints are immutable after capture.
func (cp *ArrayCheckpoint[T]) Data() []T { return cp.data }

// NewArrayCheckpoint reassembles an array checkpoint from its parts — the
// decode half of the wire round trip. The data slice must hold exactly
// product(sizes)*slots elements; the checkpoint takes ownership of it (the
// caller must not retain a mutable reference).
func NewArrayCheckpoint[T any](sizes []int, slots int, data []T) (*ArrayCheckpoint[T], error) {
	if slots < 2 {
		return nil, fmt.Errorf("grid: checkpoint needs >= 2 time slots, got %d", slots)
	}
	total := 1
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("grid: checkpoint size of dimension %d is %d, must be positive", i, s)
		}
		total *= s
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("grid: checkpoint needs at least one spatial dimension")
	}
	if len(data) != total*slots {
		return nil, fmt.Errorf("grid: checkpoint data holds %d elements, geometry %v x %d slots implies %d",
			len(data), sizes, slots, total*slots)
	}
	return &ArrayCheckpoint[T]{
		sizes: append([]int(nil), sizes...),
		slots: slots,
		data:  data,
	}, nil
}

// Checkpoint deep-copies every live time slot of the array. The caller is
// responsible for quiescence: checkpointing during a run captures a torn
// state.
func (a *Array[T]) Checkpoint() *ArrayCheckpoint[T] {
	return &ArrayCheckpoint[T]{
		sizes: append([]int(nil), a.sizes...),
		slots: a.slots,
		data:  append([]T(nil), a.data...),
	}
}

// Restore overwrites the array's temporal buffer with the checkpoint's
// copy. The checkpoint must come from an array of identical geometry —
// same spatial extents and temporal depth.
func (a *Array[T]) Restore(cp *ArrayCheckpoint[T]) error {
	if cp == nil {
		return fmt.Errorf("grid: Restore of a nil checkpoint")
	}
	if cp.slots != a.slots {
		return fmt.Errorf("grid: checkpoint has %d time slots, array has %d", cp.slots, a.slots)
	}
	if len(cp.sizes) != a.ndims {
		return fmt.Errorf("grid: checkpoint has %d dimensions, array has %d", len(cp.sizes), a.ndims)
	}
	for i, s := range cp.sizes {
		if s != a.sizes[i] {
			return fmt.Errorf("grid: checkpoint sizes %v differ from array sizes %v", cp.sizes, a.sizes)
		}
	}
	copy(a.data, cp.data)
	return nil
}

// Sprint pretty-prints time step t's slot, one line per row of the
// innermost dimension — the analogue of the paper's overloaded "cout << u".
func (a *Array[T]) Sprint(t int) string {
	var b []byte
	inner := a.sizes[a.ndims-1]
	s := a.Slot(t)
	for off := 0; off < a.total; off += inner {
		// Blank line between higher-dimensional blocks.
		if off > 0 && a.ndims >= 2 && off%(inner*a.sizes[a.ndims-2]) == 0 {
			b = append(b, '\n')
		}
		for i := 0; i < inner; i++ {
			if i > 0 {
				b = append(b, ' ')
			}
			b = fmt.Appendf(b, "%v", s[off+i])
		}
		b = append(b, '\n')
	}
	return string(b)
}
