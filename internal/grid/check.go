package grid

import "fmt"

import "pochoir/internal/shape"

// This file implements the Phase-1 compliance checking behind the Pochoir
// Guarantee: while a kernel executes for home point (t, x), every access the
// kernel makes to a registered array must land on an offset declared in the
// stencil shape. The template library "complains during Phase 1 ... if an
// access to a grid point during the kernel computation falls outside the
// region specified by the shape declaration" (§1).

// ShapeError describes a kernel access that violated the declared shape.
type ShapeError struct {
	HomeT int
	HomeX []int
	T     int
	X     []int
	Shape string
}

func (e *ShapeError) Error() string {
	return fmt.Sprintf("pochoir guarantee violated: kernel for home point t=%d x=%v accessed t=%d x=%v, offset (%d,%v) not in declared shape %s",
		e.HomeT, e.HomeX, e.T, e.X, e.T-e.HomeT, diff(e.X, e.HomeX), e.Shape)
}

func diff(a, b []int) []int {
	d := make([]int, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	return d
}

// EnableShapeCheck turns on shape-compliance verification against s for all
// subsequent checked accesses. The engine calls SetHome before each kernel
// application to establish the reference point.
func (a *Array[T]) EnableShapeCheck(s *shape.Shape) {
	a.checkShape = s
	a.homeX = make([]int, a.ndims)
	a.checkErr = nil
}

// DisableShapeCheck turns off verification.
func (a *Array[T]) DisableShapeCheck() {
	a.checkShape = nil
	a.checkErr = nil
}

// SetHome records the home point of the kernel application about to run.
func (a *Array[T]) SetHome(t int, idx []int) {
	a.homeT = t
	copy(a.homeX, idx)
}

// CheckErr returns the first shape violation observed since checking was
// enabled, or nil.
func (a *Array[T]) CheckErr() error { return a.checkErr }

func (a *Array[T]) verify(t int, idx []int) {
	if a.checkErr != nil {
		return // keep the first violation
	}
	dt := t - a.homeT
	dx := make([]int, len(idx))
	for i := range idx {
		dx[i] = idx[i] - a.homeX[i]
	}
	if !a.checkShape.Contains(dt, dx) {
		a.checkErr = &ShapeError{
			HomeT: a.homeT,
			HomeX: append([]int(nil), a.homeX...),
			T:     t,
			X:     append([]int(nil), idx...),
			Shape: a.checkShape.String(),
		}
	}
}
