package compiler

import "fmt"

// Front-door input limits. A stencil specification is a small document —
// the largest real spec in the repository is under a kilobyte — so the
// parser enforces generous but hard caps before and during parsing. A
// service that accepts specs from untrusted clients (cmd/pochoird) can then
// hand any byte string to CompileSource knowing the cost of rejecting a
// pathological input is bounded: an oversized source is refused before the
// lexer runs, a token flood is refused before the parser runs, and deeply
// nested expressions are refused before the recursive-descent parser can
// exhaust the stack.
const (
	// MaxSourceBytes caps the specification's byte length, checked before
	// lexing.
	MaxSourceBytes = 32 << 10
	// MaxTokens caps the token count, checked during lexing.
	MaxTokens = 16 << 10
	// MaxExprDepth caps the nesting depth of expressions (parentheses,
	// unary minus, min/max calls), checked during parsing.
	MaxExprDepth = 64
)

// LimitError reports an input that exceeds one of the front-door limits.
// It is distinguishable from ordinary syntax errors with errors.As, so a
// server can map it to "request too large" rather than "bad request".
type LimitError struct {
	What  string // "source bytes", "tokens", or "expression depth"
	Limit int
	Got   int // for "expression depth" the depth at which parsing stopped
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("compiler: input exceeds the %s limit (%d > %d)", e.What, e.Got, e.Limit)
}
