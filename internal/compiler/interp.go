package compiler

import (
	"fmt"

	"pochoir"
)

// Instance is an executable stencil built from a checked specification:
// the Phase-1 path. The kernel is evaluated directly from the expression
// tree through the checked Array API, so a specification that runs here is
// Pochoir-compliant by construction — the compiled Phase-2 code is then
// guaranteed to behave identically (the Pochoir Guarantee).
type Instance struct {
	Checked *Checked
	Stencil *pochoir.Stencil[float64]
	Arrays  map[string]*pochoir.Array[float64]
}

// NewInstance allocates arrays of the given spatial sizes, registers
// boundaries per the specification, and assembles the stencil object.
func (c *Checked) NewInstance(sizes ...int) (*Instance, error) {
	if len(sizes) != c.Prog.Dims {
		return nil, fmt.Errorf("compiler: stencil %q has %d dims, got %d sizes",
			c.Prog.Name, c.Prog.Dims, len(sizes))
	}
	inst := &Instance{
		Checked: c,
		Stencil: pochoir.New[float64](c.Shape),
		Arrays:  make(map[string]*pochoir.Array[float64]),
	}
	for _, decl := range c.Prog.Arrays {
		a, err := pochoir.NewArray[float64](c.Depth, sizes...)
		if err != nil {
			return nil, err
		}
		switch decl.Boundary {
		case BoundaryPeriodic:
			a.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
		case BoundaryClamp:
			a.RegisterBoundary(pochoir.NeumannBoundary[float64]())
		case BoundaryConstant:
			a.RegisterBoundary(pochoir.ConstBoundary(decl.Constant))
		default:
			a.RegisterBoundary(pochoir.ZeroBoundary[float64]())
		}
		if err := inst.Stencil.RegisterArray(a); err != nil {
			return nil, err
		}
		inst.Arrays[decl.Name] = a
	}
	return inst, nil
}

// evalFn evaluates one expression at a kernel point.
type evalFn func(t int, x []int) float64

// compileExpr lowers an expression tree to nested closures.
func (inst *Instance) compileExpr(e Expr) evalFn {
	switch n := e.(type) {
	case *Num:
		v := n.Value
		return func(int, []int) float64 { return v }
	case *Ref:
		v := inst.Checked.Param(n.Name)
		return func(int, []int) float64 { return v }
	case *Access:
		arr := inst.Arrays[n.Array]
		dt := n.DT
		dx := append([]int(nil), n.DX...)
		d := len(dx)
		return func(t int, x []int) float64 {
			idx := make([]int, d)
			for i := range idx {
				idx[i] = x[i] + dx[i]
			}
			return arr.Get(t+dt, idx...)
		}
	case *Unary:
		x := inst.compileExpr(n.X)
		return func(t int, xs []int) float64 { return -x(t, xs) }
	case *Binary:
		l, r := inst.compileExpr(n.L), inst.compileExpr(n.R)
		switch n.Op {
		case '+':
			return func(t int, xs []int) float64 { return l(t, xs) + r(t, xs) }
		case '-':
			return func(t int, xs []int) float64 { return l(t, xs) - r(t, xs) }
		case '*':
			return func(t int, xs []int) float64 { return l(t, xs) * r(t, xs) }
		default:
			return func(t int, xs []int) float64 { return l(t, xs) / r(t, xs) }
		}
	case *Call:
		a, b := inst.compileExpr(n.Args[0]), inst.compileExpr(n.Args[1])
		if n.Name == "max" {
			return func(t int, xs []int) float64 {
				va, vb := a(t, xs), b(t, xs)
				if va >= vb {
					return va
				}
				return vb
			}
		}
		return func(t int, xs []int) float64 {
			va, vb := a(t, xs), b(t, xs)
			if va <= vb {
				return va
			}
			return vb
		}
	}
	panic(fmt.Sprintf("compiler: unknown expression node %T", e))
}

// Kernel returns the interpreted point kernel.
func (inst *Instance) Kernel() pochoir.Kernel {
	type stmt struct {
		arr *pochoir.Array[float64]
		rhs evalFn
	}
	var stmts []stmt
	for _, st := range inst.Checked.Prog.Kernel {
		stmts = append(stmts, stmt{
			arr: inst.Arrays[st.LHS.Array],
			rhs: inst.compileExpr(st.RHS),
		})
	}
	homeDT := inst.Checked.HomeDT
	return func(t int, x []int) {
		for _, s := range stmts {
			s.arr.Set(t+homeDT, s.rhs(t, x), x...)
		}
	}
}

// Run executes the interpreted stencil for steps time steps.
func (inst *Instance) Run(steps int, opts pochoir.Options) error {
	inst.Stencil.SetOptions(opts)
	return inst.Stencil.Run(steps, inst.Kernel())
}

// RunChecked executes with the Pochoir Guarantee enforced: any access
// outside the inferred shape is reported. Because the shape is inferred
// from these very accesses this should never fire; it exists to guard the
// compiler itself and is exercised by the test suite.
func (inst *Instance) RunChecked(steps int) error {
	return inst.Stencil.RunChecked(steps, inst.Kernel())
}
