package compiler

import (
	goparser "go/parser"
	gotoken "go/token"
	"strings"
	"testing"
)

func compileHeat(t *testing.T) *Checked {
	t.Helper()
	c, err := CompileSource(heatSrc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCodegenParses: output of both styles must be valid Go.
func TestCodegenParses(t *testing.T) {
	c := compileHeat(t)
	for _, style := range []Style{SplitPointer, SplitMacroShadow} {
		code, err := Codegen(c, "gen", style)
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		fset := gotoken.NewFileSet()
		if _, err := goparser.ParseFile(fset, "gen.go", code, 0); err != nil {
			t.Fatalf("%v: generated code does not parse: %v\n%s", style, err, code)
		}
	}
}

func TestCodegenStructure(t *testing.T) {
	c := compileHeat(t)
	code, err := Codegen(c, "mypkg", SplitPointer)
	if err != nil {
		t.Fatal(err)
	}
	s := string(code)
	for _, frag := range []string{
		"package mypkg",
		"DO NOT EDIT",
		"heat2dParamCX = 0.125",
		"func Heat2dShape() *pochoir.Shape",
		"type Heat2d struct",
		"func NewHeat2d(sizes ...int)",
		"PeriodicBoundary",
		"func (s *Heat2d) PointKernel() pochoir.Kernel",
		"func (s *Heat2d) InteriorClone() pochoir.BaseFunc",
		"func (s *Heat2d) BoundaryClone() pochoir.BaseFunc",
		"(i0 % n0) + n0", // periodic wrap in the boundary accessor
		"func (s *Heat2d) BaseKernels() pochoir.BaseKernels",
		"func (s *Heat2d) Run(steps int) error",
		"u.Slot(t - 1)", // split-pointer reads raw slots
		"[i]",           // cursor indexing
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("generated code missing %q", frag)
		}
	}
}

func TestCodegenMacroShadowStructure(t *testing.T) {
	c := compileHeat(t)
	code, err := Codegen(c, "gen", SplitMacroShadow)
	if err != nil {
		t.Fatal(err)
	}
	s := string(code)
	if !strings.Contains(s, "split-macro-shadow") {
		t.Error("style marker missing")
	}
	// Macro-shadow indexes with full address arithmetic, not cursors.
	if strings.Contains(s, "c0[i]") {
		t.Error("macro-shadow output should not contain cursor slices")
	}
	if !strings.Contains(s, "for x1 := lo1; x1 < hi1; x1++") {
		t.Error("macro-shadow inner loop missing")
	}
}

// TestCodegen1D covers the degenerate dimension handling (no outer loops,
// base offset 0).
func TestCodegen1D(t *testing.T) {
	src := `stencil s1 { dims: 1; array u; boundary u: zero;
	  kernel { u(t+1,x) = 0.5*(u(t,x-1) + u(t,x+1)); } }`
	c, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, style := range []Style{SplitPointer, SplitMacroShadow} {
		code, err := Codegen(c, "gen", style)
		if err != nil {
			t.Fatalf("%v: %v\n%s", style, err, code)
		}
	}
}

// TestCodegen3DMultiArray covers multiple arrays, depth 2, and calls.
func TestCodegen3DMultiArray(t *testing.T) {
	src := `stencil mix { dims: 3; param A = 1.5; array p; array q;
	  boundary p: periodic; boundary q: clamp;
	  kernel {
	    p(t+1,x,y,z) = max(q(t,x-1,y,z), p(t-1,x,y,z)) + A;
	    q(t+1,x,y,z) = min(p(t,x,y+1,z-1), q(t,x,y,z));
	  } }`
	c, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Depth != 2 {
		t.Fatalf("depth %d", c.Depth)
	}
	for _, style := range []Style{SplitPointer, SplitMacroShadow} {
		code, err := Codegen(c, "gen", style)
		if err != nil {
			t.Fatalf("%v: %v\n%s", style, err, code)
		}
		s := string(code)
		if !strings.Contains(s, "dstp") || !strings.Contains(s, "dstq") {
			if style == SplitPointer {
				t.Errorf("%v: expected two destination slices", style)
			}
		}
	}
}

func TestCodegenPreservesNumberSpelling(t *testing.T) {
	src := `stencil n { dims: 1; array u;
	  kernel { u(t+1,x) = 0.1 * u(t,x) + 1e-3; } }`
	c, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Codegen(c, "gen", SplitPointer)
	if err != nil {
		t.Fatal(err)
	}
	s := string(code)
	if !strings.Contains(s, "0.1") || !strings.Contains(s, "1e-3") {
		t.Error("numeric literals should keep their source spelling")
	}
}
