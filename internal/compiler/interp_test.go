package compiler

import (
	"math"
	"math/rand"
	"testing"

	"pochoir"
)

// TestInterpMatchesHandWritten: the interpreted DSL heat equation must
// match a hand-written reference loop bit for bit.
func TestInterpMatchesHandWritten(t *testing.T) {
	c, err := CompileSource(heatSrc)
	if err != nil {
		t.Fatal(err)
	}
	const X, Y, steps = 33, 29, 24
	inst, err := c.NewInstance(X, Y)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	init := make([]float64, X*Y)
	for i := range init {
		init[i] = rng.Float64()
	}
	u := inst.Arrays["u"]
	if err := u.CopyIn(0, init); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(steps, pochoir.Options{}); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, X*Y)
	if err := u.CopyOut(steps, got); err != nil {
		t.Fatal(err)
	}

	// Reference loops. The expression tree order matches the DSL source:
	// u + CX*(right - 2u + left) + CY*(up - 2u + down).
	cur := append([]float64(nil), init...)
	next := make([]float64, X*Y)
	at := func(g []float64, x, y int) float64 {
		x = ((x % X) + X) % X
		y = ((y % Y) + Y) % Y
		return g[x*Y+y]
	}
	for s := 0; s < steps; s++ {
		for x := 0; x < X; x++ {
			for y := 0; y < Y; y++ {
				cc := at(cur, x, y)
				next[x*Y+y] = cc +
					0.125*(at(cur, x+1, y)-2*cc+at(cur, x-1, y)) +
					0.125*(at(cur, x, y+1)-2*cc+at(cur, x, y-1))
			}
		}
		cur, next = next, cur
	}
	for i := range got {
		if got[i] != cur[i] {
			t.Fatalf("mismatch at %d: %g vs %g", i, got[i], cur[i])
		}
	}
}

// TestInterpRunChecked: the inferred shape must accept its own kernel —
// the Pochoir Guarantee closing the loop.
func TestInterpRunChecked(t *testing.T) {
	c, err := CompileSource(heatSrc)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := c.NewInstance(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.RunChecked(6); err != nil {
		t.Fatalf("self-inferred shape rejected its kernel: %v", err)
	}
}

// TestInterpMaxMinAndMultiArray exercises calls, multiple arrays, multiple
// statements, and constant boundaries.
func TestInterpMaxMinAndMultiArray(t *testing.T) {
	src := `stencil mm { dims: 1;
	  param K = 10;
	  array a; array b;
	  boundary a: constant -1e30; boundary b: constant -1e30;
	  kernel {
	    a(t+1, x) = max(a(t, x-1), b(t, x));
	    b(t+1, x) = min(b(t, x+1), K);
	  } }`
	c, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	const N, steps = 40, 12
	inst, err := c.NewInstance(N)
	if err != nil {
		t.Fatal(err)
	}
	av, bv := inst.Arrays["a"], inst.Arrays["b"]
	for i := 0; i < N; i++ {
		av.Set(0, float64(i%7), i)
		bv.Set(0, float64((i*3)%11), i)
	}
	if err := inst.Run(steps, pochoir.Options{Serial: true}); err != nil {
		t.Fatal(err)
	}

	// Reference.
	ra := make([]float64, N)
	rb := make([]float64, N)
	for i := 0; i < N; i++ {
		ra[i] = float64(i % 7)
		rb[i] = float64((i * 3) % 11)
	}
	atc := func(g []float64, i int) float64 {
		if i < 0 || i >= N {
			return -1e30
		}
		return g[i]
	}
	for s := 0; s < steps; s++ {
		na, nb := make([]float64, N), make([]float64, N)
		for i := 0; i < N; i++ {
			na[i] = math.Max(atc(ra, i-1), atc(rb, i))
			nb[i] = math.Min(atc(rb, i+1), 10)
		}
		ra, rb = na, nb
	}
	for i := 0; i < N; i++ {
		if av.Get(steps, i) != ra[i] || bv.Get(steps, i) != rb[i] {
			t.Fatalf("mismatch at %d: a %g/%g b %g/%g", i,
				av.Get(steps, i), ra[i], bv.Get(steps, i), rb[i])
		}
	}
}

func TestNewInstanceSizeMismatch(t *testing.T) {
	c, err := CompileSource(heatSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewInstance(16); err == nil {
		t.Fatal("wrong size count should error")
	}
}

// TestInterpParallelDeterminism: interpreted execution is deterministic
// under the parallel decomposition too.
func TestInterpParallelDeterminism(t *testing.T) {
	run := func(opts pochoir.Options) []float64 {
		c, err := CompileSource(heatSrc)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := c.NewInstance(40, 40)
		if err != nil {
			t.Fatal(err)
		}
		init := make([]float64, 40*40)
		rng := rand.New(rand.NewSource(3))
		for i := range init {
			init[i] = rng.Float64()
		}
		if err := inst.Arrays["u"].CopyIn(0, init); err != nil {
			t.Fatal(err)
		}
		if err := inst.Run(20, opts); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 40*40)
		if err := inst.Arrays["u"].CopyOut(20, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(pochoir.Options{Serial: true})
	parallel := run(pochoir.Options{Grain: 1})
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel interp diverged at %d", i)
		}
	}
}
