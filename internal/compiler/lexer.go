package compiler

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single-character punctuation/operator
)

type token struct {
	kind tokKind
	pos  Pos
	text string
	num  float64
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	case tokNumber:
		return fmt.Sprintf("number %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes a stencil specification. Comments run from '#' or '//'
// to end of line.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		return token{kind: tokIdent, pos: pos, text: l.src[start:l.off]}, nil
	case unicode.IsDigit(rune(c)) || (c == '.' && l.off+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.off+1]))):
		start := l.off
		seenDot, seenExp := false, false
		for l.off < len(l.src) {
			c := l.peekByte()
			switch {
			case unicode.IsDigit(rune(c)):
				l.advance()
				continue
			case c == '.' && !seenDot && !seenExp:
				seenDot = true
				l.advance()
				continue
			case (c == 'e' || c == 'E') && !seenExp:
				seenExp = true
				l.advance()
				if s := l.peekByte(); s == '+' || s == '-' {
					l.advance()
				}
				continue
			}
			break
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, errf(pos, "malformed number %q", text)
		}
		return token{kind: tokNumber, pos: pos, text: text, num: v}, nil
	case strings.IndexByte("{}();:,=+-*/", c) >= 0:
		l.advance()
		return token{kind: tokPunct, pos: pos, text: string(c)}, nil
	}
	return token{}, errf(pos, "unexpected character %q", string(c))
}

// lexAll tokenizes the whole input (used by the parser, which needs one
// token of lookahead). Token floods are cut off at MaxTokens.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
		if len(toks) > MaxTokens {
			return nil, &LimitError{What: "tokens", Limit: MaxTokens, Got: len(toks)}
		}
	}
}
