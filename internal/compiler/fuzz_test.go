package compiler

import (
	"errors"
	"strings"
	"testing"
)

// FuzzDSL drives arbitrary byte strings through the full compiler front
// half — lexer, parser, checker, and both code-generator styles — and
// asserts the crash-freedom contract: malformed source must surface as an
// error, never a panic, and source that compiles must yield a coherent
// Checked (shape inferred, depth positive, every read resolvable).
//
// CI runs a short -fuzz smoke of this target; `go test` alone replays the
// seed corpus plus any crashers checked into testdata/fuzz.
func FuzzDSL(f *testing.F) {
	seeds := []string{
		heatSrc,
		// 1D three-point average.
		"stencil s { dims: 1; array u; kernel { u(t+1,x) = (u(t,x-1)+u(t,x)+u(t,x+1))/3; } }",
		// Constant boundary, depth-2 access.
		"stencil w { dims: 1; param C = 2; array u; boundary u: constant 0;\n" +
			"  kernel { u(t+1,x) = C*u(t,x) - u(t-1,x); } }",
		// Structurally broken inputs: the fuzzer mutates from these too.
		"stencil s { dims: 1; array u; kernel { u(t+1,x) = u(t+2,x); } }",
		"stencil s { dims: 0; }",
		"stencil s { dims: 2; array u; kernel { u(t+1,x,y) = v(t,x,y); } }",
		"stencil",
		"# just a comment\n",
		"",
		// Front-door limit probes: an oversized source, a token flood, and
		// deep expression nesting must all surface as typed *LimitError —
		// never a stack overflow or a multi-second parse.
		"stencil s { dims: 1; array u; kernel { u(t+1,x) = u(t,x); } }" +
			strings.Repeat("# pad\n", MaxSourceBytes/6+1),
		"stencil s { dims: 1; array u; kernel { u(t+1,x) = 0" +
			strings.Repeat("+0", MaxTokens/2+64) + "; } }",
		"stencil s { dims: 1; array u; kernel { u(t+1,x) = " +
			strings.Repeat("(", 4*MaxExprDepth) + "u(t,x)" + strings.Repeat(")", 4*MaxExprDepth) + "; } }",
		"stencil s { dims: 1; array u; kernel { u(t+1,x) = " +
			strings.Repeat("-", 4*MaxExprDepth) + "u(t,x); } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Bound the fuzzer's own cost, but stay far enough above
		// MaxSourceBytes that the size cap itself is exercised.
		if len(src) > 2*MaxSourceBytes {
			t.Skip()
		}
		c, err := CompileSource(src)
		if len(src) > MaxSourceBytes {
			var le *LimitError
			if !errors.As(err, &le) {
				t.Fatalf("source of %d bytes not rejected by the size cap: err=%v", len(src), err)
			}
		}
		if err != nil {
			if c != nil {
				t.Fatalf("CompileSource returned both a Checked and an error: %v", err)
			}
			return
		}
		if c.Shape == nil || c.Depth < 1 {
			t.Fatalf("compiled without error but Checked is incoherent: shape=%v depth=%d", c.Shape, c.Depth)
		}
		for _, acc := range c.Reads {
			if c.Array(acc.Array) == nil {
				t.Fatalf("read of undeclared array %q survived checking", acc.Array)
			}
		}
		for _, style := range []Style{SplitPointer, SplitMacroShadow} {
			out, err := Codegen(c, "gen", style)
			if err != nil {
				t.Fatalf("Codegen(%v) failed on checked program: %v\nsource:\n%s", style, err, src)
			}
			if !strings.Contains(string(out), "package gen") {
				t.Fatalf("Codegen(%v) emitted no package clause", style)
			}
		}
	})
}
