package compiler

import "math"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks  []token
	i     int
	dims  int // set once the dims decl is seen; needed to parse accesses
	depth int // current expression nesting depth (see MaxExprDepth)
}

// Parse parses a stencil specification. Inputs beyond the front-door
// limits (MaxSourceBytes, MaxTokens, MaxExprDepth) are rejected with a
// *LimitError before they can make parsing expensive.
func Parse(src string) (*Program, error) {
	if len(src) > MaxSourceBytes {
		return nil, &LimitError{What: "source bytes", Limit: MaxSourceBytes, Got: len(src)}
	}
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	prog.Tokens = len(toks)
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) expectPunct(s string) (token, error) {
	t := p.cur()
	if t.kind != tokPunct || t.text != s {
		return t, errf(t.pos, "expected %q, found %s", s, t)
	}
	return p.advance(), nil
}

func (p *parser) expectIdent(names ...string) (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, errf(t.pos, "expected identifier, found %s", t)
	}
	if len(names) > 0 {
		ok := false
		for _, n := range names {
			if t.text == n {
				ok = true
			}
		}
		if !ok {
			return t, errf(t.pos, "expected %v, found %s", names, t)
		}
	}
	return p.advance(), nil
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) program() (*Program, error) {
	if _, err := p.expectIdent("stencil"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	prog := &Program{Pos: name.pos, Name: name.text}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		if p.cur().kind == tokEOF {
			return nil, errf(p.cur().pos, "unterminated stencil block")
		}
		if err := p.decl(prog); err != nil {
			return nil, err
		}
	}
	p.advance() // '}'
	if t := p.cur(); t.kind != tokEOF {
		return nil, errf(t.pos, "unexpected %s after stencil block", t)
	}
	return prog, nil
}

func (p *parser) decl(prog *Program) error {
	t, err := p.expectIdent()
	if err != nil {
		return err
	}
	switch t.text {
	case "dims":
		if _, err := p.expectPunct(":"); err != nil {
			return err
		}
		n := p.cur()
		if n.kind != tokNumber || n.num != math.Trunc(n.num) || n.num < 1 {
			return errf(n.pos, "dims wants a positive integer, found %s", n)
		}
		if int(n.num) > MaxDSLDims {
			return errf(n.pos, "dims %d exceeds the language limit of %d", int(n.num), MaxDSLDims)
		}
		if prog.Dims != 0 {
			return errf(t.pos, "duplicate dims declaration")
		}
		p.advance()
		prog.Dims = int(n.num)
		p.dims = prog.Dims
		_, err := p.expectPunct(";")
		return err
	case "param":
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if _, err := p.expectPunct("="); err != nil {
			return err
		}
		v, err := p.signedNumber()
		if err != nil {
			return err
		}
		prog.Params = append(prog.Params, &Param{Pos: name.pos, Name: name.text, Value: v})
		_, err = p.expectPunct(";")
		return err
	case "array":
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		prog.Arrays = append(prog.Arrays, &ArrayDecl{Pos: name.pos, Name: name.text})
		_, err = p.expectPunct(";")
		return err
	case "boundary":
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if _, err := p.expectPunct(":"); err != nil {
			return err
		}
		var decl *ArrayDecl
		for _, a := range prog.Arrays {
			if a.Name == name.text {
				decl = a
			}
		}
		if decl == nil {
			return errf(name.pos, "boundary for undeclared array %q", name.text)
		}
		kind, err := p.expectIdent("periodic", "zero", "clamp", "constant")
		if err != nil {
			return err
		}
		switch kind.text {
		case "periodic":
			decl.Boundary = BoundaryPeriodic
		case "zero":
			decl.Boundary = BoundaryZero
		case "clamp":
			decl.Boundary = BoundaryClamp
		case "constant":
			v, err := p.signedNumber()
			if err != nil {
				return err
			}
			decl.Boundary = BoundaryConstant
			decl.Constant = v
		}
		_, err = p.expectPunct(";")
		return err
	case "kernel":
		if prog.Dims == 0 {
			return errf(t.pos, "dims must be declared before the kernel")
		}
		if prog.Kernel != nil {
			return errf(t.pos, "duplicate kernel block")
		}
		if _, err := p.expectPunct("{"); err != nil {
			return err
		}
		for !p.isPunct("}") {
			if p.cur().kind == tokEOF {
				return errf(p.cur().pos, "unterminated kernel block")
			}
			a, err := p.assign()
			if err != nil {
				return err
			}
			prog.Kernel = append(prog.Kernel, a)
		}
		p.advance()
		return nil
	}
	return errf(t.pos, "unknown declaration %q (want dims, param, array, boundary, or kernel)", t.text)
}

func (p *parser) signedNumber() (float64, error) {
	neg := false
	if p.isPunct("-") {
		p.advance()
		neg = true
	}
	n := p.cur()
	if n.kind != tokNumber {
		return 0, errf(n.pos, "expected a number, found %s", n)
	}
	p.advance()
	if neg {
		return -n.num, nil
	}
	return n.num, nil
}

func (p *parser) assign() (*Assign, error) {
	lhs, err := p.access()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("="); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &Assign{Pos: lhs.Pos, LHS: lhs, RHS: rhs}, nil
}

// access parses name(t±k, x±a, y±b, ...).
func (p *parser) access() (*Access, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	a := &Access{Pos: name.pos, Array: name.text}
	a.DT, err = p.indexExpr("t")
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.dims; i++ {
		if _, err := p.expectPunct(","); err != nil {
			return nil, err
		}
		off, err := p.indexExpr(indexNames[i])
		if err != nil {
			return nil, err
		}
		a.DX = append(a.DX, off)
	}
	_, err = p.expectPunct(")")
	return a, err
}

// indexExpr parses `name`, `name+INT`, or `name-INT` where name is the
// expected index variable for this argument position.
func (p *parser) indexExpr(want string) (int, error) {
	id, err := p.expectIdent()
	if err != nil {
		return 0, err
	}
	if id.text != want {
		return 0, errf(id.pos, "index argument must use %q at this position, found %q", want, id.text)
	}
	sign := 0
	switch {
	case p.isPunct("+"):
		sign = 1
	case p.isPunct("-"):
		sign = -1
	default:
		return 0, nil
	}
	p.advance()
	n := p.cur()
	if n.kind != tokNumber || n.num != math.Trunc(n.num) {
		return 0, errf(n.pos, "index offset must be an integer, found %s", n)
	}
	p.advance()
	return sign * int(n.num), nil
}

// ---- Expression grammar (precedence climbing) ----

func (p *parser) expr() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.advance()
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: op.pos, Op: op.text[0], L: l, R: r}
	}
	return l, nil
}

func (p *parser) term() (Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") {
		op := p.advance()
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: op.pos, Op: op.text[0], L: l, R: r}
	}
	return l, nil
}

func (p *parser) factor() (Expr, error) {
	// factor is the recursion point of the expression grammar (parentheses,
	// unary minus, min/max arguments all re-enter through it), so the depth
	// guard here bounds the whole parser's stack use.
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > MaxExprDepth {
		return nil, &LimitError{What: "expression depth", Limit: MaxExprDepth, Got: p.depth}
	}
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &Num{Pos: t.pos, Value: t.num, Text: t.text}, nil
	case p.isPunct("-"):
		p.advance()
		x, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.pos, Op: '-', X: x}, nil
	case p.isPunct("("):
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		_, err = p.expectPunct(")")
		return e, err
	case t.kind == tokIdent:
		if t.text == "max" || t.text == "min" {
			p.advance()
			if _, err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var args []Expr
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.isPunct(",") {
					p.advance()
					continue
				}
				break
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if len(args) != 2 {
				return nil, errf(t.pos, "%s expects exactly 2 arguments, got %d", t.text, len(args))
			}
			return &Call{Pos: t.pos, Name: t.text, Args: args}, nil
		}
		// Array access or parameter reference, disambiguated by '('.
		if p.peek().kind == tokPunct && p.peek().text == "(" {
			return p.access()
		}
		p.advance()
		return &Ref{Pos: t.pos, Name: t.text}, nil
	}
	return nil, errf(t.pos, "expected an expression, found %s", t)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
