// Package compiler implements the Pochoir stencil compiler (§4) for a
// small stencil specification language, mirroring the paper's two-phase
// methodology in Go:
//
//   - Phase 1: Parse + Check validate a specification and Interp executes
//     it directly through the checked template-library path (package
//     pochoir), enforcing the Pochoir Guarantee;
//   - Phase 2: Codegen performs a source-to-source translation, emitting a
//     Go file with specialized base-case kernels in either the
//     -split-pointer style (per-term cursor slices, Fig. 12c) or the
//     -split-macro-shadow style (unchecked address arithmetic, Fig. 12b),
//     plus the boundary clone and the glue to run on the TRAP engine.
//
// The input language covers the constructs of §2: a stencil object with
// dimensionality, named parameters, Pochoir arrays, per-array boundary
// conditions, and an imperative kernel whose accesses use constant
// space-time offsets from the point being updated. Example:
//
//	stencil heat2d {
//	  dims: 2;
//	  param CX = 0.125;
//	  param CY = 0.125;
//	  array u;
//	  boundary u: periodic;
//	  kernel {
//	    u(t+1, x, y) = u(t, x, y)
//	      + CX * (u(t, x+1, y) - 2*u(t, x, y) + u(t, x-1, y))
//	      + CY * (u(t, x, y+1) - 2*u(t, x, y) + u(t, x, y-1));
//	  }
//	}
//
// The stencil shape is inferred from the kernel's accesses — the inverse
// of the paper's arrangement, where the user declares the shape and the
// template library checks accesses against it. Both directions enforce the
// same contract; Check additionally re-verifies the inferred shape against
// the §2 rules (home cell first, reads strictly earlier in time).
package compiler

import "fmt"

// Pos is a source position for diagnostics.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a compile error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ---- Top-level AST ----

// Program is one parsed stencil specification.
type Program struct {
	Pos    Pos
	Name   string
	Dims   int
	Params []*Param
	Arrays []*ArrayDecl
	Kernel []*Assign
	// Tokens is how many lexer tokens the source produced — compile-cost
	// provenance surfaced on trace compile spans.
	Tokens int
}

// Param is a named numeric constant.
type Param struct {
	Pos   Pos
	Name  string
	Value float64
}

// BoundaryKind enumerates the supported boundary conditions.
type BoundaryKind int

const (
	// BoundaryZero supplies 0 off-domain (the default).
	BoundaryZero BoundaryKind = iota
	// BoundaryPeriodic wraps coordinates on a torus.
	BoundaryPeriodic
	// BoundaryConstant supplies a fixed value.
	BoundaryConstant
	// BoundaryClamp clamps coordinates to the domain edge (Neumann).
	BoundaryClamp
)

func (k BoundaryKind) String() string {
	switch k {
	case BoundaryZero:
		return "zero"
	case BoundaryPeriodic:
		return "periodic"
	case BoundaryConstant:
		return "constant"
	case BoundaryClamp:
		return "clamp"
	}
	return fmt.Sprintf("BoundaryKind(%d)", int(k))
}

// ArrayDecl declares a Pochoir array participating in the computation.
type ArrayDecl struct {
	Pos      Pos
	Name     string
	Boundary BoundaryKind
	Constant float64 // for BoundaryConstant
}

// Assign is one kernel statement: array(t+k, x, y, ...) = expr.
type Assign struct {
	Pos Pos
	LHS *Access
	RHS Expr
}

// ---- Expressions ----

// Expr is a kernel expression node.
type Expr interface {
	Position() Pos
	expr()
}

// Num is a numeric literal.
type Num struct {
	Pos   Pos
	Value float64
	Text  string // original spelling, preserved in generated code
}

// Ref is a parameter reference.
type Ref struct {
	Pos  Pos
	Name string
}

// Access is an array access with constant space-time offsets: DT is the
// offset from the kernel's time argument and DX the per-dimension spatial
// offsets from the point being updated.
type Access struct {
	Pos   Pos
	Array string
	DT    int
	DX    []int
}

// Unary is negation.
type Unary struct {
	Pos Pos
	Op  byte // '-'
	X   Expr
}

// Binary is a binary arithmetic operation.
type Binary struct {
	Pos  Pos
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

// Call is a builtin function call: max or min over two arguments.
type Call struct {
	Pos  Pos
	Name string // "max" | "min"
	Args []Expr
}

func (n *Num) Position() Pos    { return n.Pos }
func (r *Ref) Position() Pos    { return r.Pos }
func (a *Access) Position() Pos { return a.Pos }
func (u *Unary) Position() Pos  { return u.Pos }
func (b *Binary) Position() Pos { return b.Pos }
func (c *Call) Position() Pos   { return c.Pos }

func (*Num) expr()    {}
func (*Ref) expr()    {}
func (*Access) expr() {}
func (*Unary) expr()  {}
func (*Binary) expr() {}
func (*Call) expr()   {}

// Walk calls fn for every node of the expression tree, depth first.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	switch n := e.(type) {
	case *Unary:
		Walk(n.X, fn)
	case *Binary:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *Call:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	}
}

// indexNames are the fixed spatial index identifiers by dimension order.
var indexNames = []string{"x", "y", "z", "w"}

// MaxDSLDims is the dimensionality limit of the specification language
// (the engine itself supports more; the DSL's fixed index names t,x,y,z,w
// cap it at four).
const MaxDSLDims = 4
