package compiler

import (
	"fmt"
	"sort"
	"time"

	"pochoir/internal/shape"
)

// Checked is a validated stencil specification with its inferred shape —
// everything the interpreter and the code generator need.
type Checked struct {
	Prog *Program
	// Shape is the inferred stencil shape (home cell first).
	Shape *shape.Shape
	// HomeDT is the time offset of the writes relative to the kernel's
	// time argument, and Depth the stencil depth.
	HomeDT int
	Depth  int
	// Reads lists the distinct read accesses (array, dt, dx), sorted
	// canonically; the code generator allocates one cursor per entry.
	Reads []Access

	params map[string]float64
	arrays map[string]*ArrayDecl
}

// Param returns the value of a declared parameter.
func (c *Checked) Param(name string) float64 { return c.params[name] }

// Array returns the declaration of a named array.
func (c *Checked) Array(name string) *ArrayDecl { return c.arrays[name] }

// Check validates the program and infers its stencil shape.
func Check(prog *Program) (*Checked, error) {
	if prog.Dims < 1 {
		return nil, errf(prog.Pos, "stencil %q has no dims declaration", prog.Name)
	}
	if len(prog.Arrays) == 0 {
		return nil, errf(prog.Pos, "stencil %q declares no arrays", prog.Name)
	}
	if len(prog.Kernel) == 0 {
		return nil, errf(prog.Pos, "stencil %q has no kernel", prog.Name)
	}
	c := &Checked{
		Prog:   prog,
		params: make(map[string]float64),
		arrays: make(map[string]*ArrayDecl),
	}
	reserved := map[string]bool{"t": true, "stencil": true, "max": true, "min": true}
	for _, n := range indexNames {
		reserved[n] = true
	}
	for _, p := range prog.Params {
		if reserved[p.Name] {
			return nil, errf(p.Pos, "param %q shadows a reserved name", p.Name)
		}
		if _, dup := c.params[p.Name]; dup {
			return nil, errf(p.Pos, "duplicate param %q", p.Name)
		}
		c.params[p.Name] = p.Value
	}
	for _, a := range prog.Arrays {
		if reserved[a.Name] {
			return nil, errf(a.Pos, "array %q shadows a reserved name", a.Name)
		}
		if _, dup := c.arrays[a.Name]; dup {
			return nil, errf(a.Pos, "duplicate array %q", a.Name)
		}
		if _, dup := c.params[a.Name]; dup {
			return nil, errf(a.Pos, "array %q collides with a param", a.Name)
		}
		c.arrays[a.Name] = a
	}

	// Kernel statements: every LHS must be a pure home-cell write with a
	// common time offset, one write per array.
	written := map[string]bool{}
	homeSet := false
	for _, st := range prog.Kernel {
		lhs := st.LHS
		if c.arrays[lhs.Array] == nil {
			return nil, errf(lhs.Pos, "assignment to undeclared array %q", lhs.Array)
		}
		for i, dx := range lhs.DX {
			if dx != 0 {
				return nil, errf(lhs.Pos, "write to %s must target the home cell: spatial offset %d in dimension %d", lhs.Array, dx, i)
			}
		}
		if !homeSet {
			c.HomeDT = lhs.DT
			homeSet = true
		} else if lhs.DT != c.HomeDT {
			return nil, errf(lhs.Pos, "all writes must share one time offset: found t%+d after t%+d", lhs.DT, c.HomeDT)
		}
		if written[lhs.Array] {
			return nil, errf(lhs.Pos, "array %q written more than once per point", lhs.Array)
		}
		written[lhs.Array] = true
	}

	// Validate RHS expressions and collect read cells.
	readSet := map[string]Access{}
	for _, st := range prog.Kernel {
		var walkErr error
		Walk(st.RHS, func(e Expr) {
			if walkErr != nil {
				return
			}
			switch n := e.(type) {
			case *Ref:
				if _, ok := c.params[n.Name]; !ok {
					walkErr = errf(n.Pos, "undefined name %q (not a param)", n.Name)
				}
			case *Access:
				if c.arrays[n.Array] == nil {
					walkErr = errf(n.Pos, "read of undeclared array %q", n.Array)
					return
				}
				if n.DT >= c.HomeDT {
					walkErr = errf(n.Pos,
						"read of %s at t%+d violates the Pochoir shape rules: reads must be strictly earlier than the write at t%+d",
						n.Array, n.DT, c.HomeDT)
					return
				}
				readSet[accessKey(n)] = Access{Array: n.Array, DT: n.DT, DX: append([]int(nil), n.DX...)}
			case *Binary:
				if n.Op == '/' {
					if d, ok := n.R.(*Num); ok && d.Value == 0 {
						walkErr = errf(n.Pos, "division by constant zero")
					}
				}
			}
		})
		if walkErr != nil {
			return nil, walkErr
		}
	}

	for _, a := range readSet {
		c.Reads = append(c.Reads, a)
	}
	sort.Slice(c.Reads, func(i, j int) bool { return accessKey(&c.Reads[i]) < accessKey(&c.Reads[j]) })

	// Build the shape: home cell first, then distinct space-time offsets
	// of all reads (array identity does not matter to geometry).
	cellSet := map[string][]int{}
	for _, a := range c.Reads {
		cell := append([]int{a.DT}, a.DX...)
		cellSet[fmt.Sprint(cell)] = cell
	}
	cells := [][]int{append([]int{c.HomeDT}, make([]int, prog.Dims)...)}
	var keys []string
	for k := range cellSet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cells = append(cells, cellSet[k])
	}
	sh, err := shape.New(prog.Dims, cells)
	if err != nil {
		return nil, errf(prog.Pos, "inferred shape invalid: %v", err)
	}
	c.Shape = sh
	c.Depth = sh.Depth()
	return c, nil
}

func accessKey(a *Access) string {
	return fmt.Sprintf("%s|%d|%v", a.Array, a.DT, a.DX)
}

// CompileSource parses and checks in one step.
func CompileSource(src string) (*Checked, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Check(prog)
}

// Stats describes one compilation's cost — the annotations a compile span
// carries so "why was this job's admission slow" is answerable from the
// trace alone.
type Stats struct {
	SourceBytes int
	Tokens      int
	CompileNS   int64
}

// CompileSourceStats is CompileSource plus cost accounting.
func CompileSourceStats(src string) (*Checked, Stats, error) {
	st := Stats{SourceBytes: len(src)}
	begin := time.Now()
	prog, err := Parse(src)
	if err != nil {
		return nil, st, err
	}
	st.Tokens = prog.Tokens
	c, err := Check(prog)
	st.CompileNS = time.Since(begin).Nanoseconds()
	if err != nil {
		return nil, st, err
	}
	return c, st, nil
}
