package compiler

import (
	"strings"
	"testing"
)

const heatSrc = `
# 2D heat equation on a torus (the paper's Fig. 6 program).
stencil heat2d {
  dims: 2;
  param CX = 0.125;
  param CY = 0.125;
  array u;
  boundary u: periodic;
  kernel {
    u(t+1, x, y) = u(t, x, y)
      + CX * (u(t, x+1, y) - 2*u(t, x, y) + u(t, x-1, y))
      + CY * (u(t, x, y+1) - 2*u(t, x, y) + u(t, x, y-1));
  }
}
`

func TestLexer(t *testing.T) {
	toks, err := lexAll("stencil h { dims: 2; } // tail comment")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		kinds = append(kinds, tk.String())
	}
	want := []string{`identifier "stencil"`, `identifier "h"`, `"{"`, `identifier "dims"`,
		`":"`, `number "2"`, `";"`, `"}"`, "end of input"}
	if len(kinds) != len(want) {
		t.Fatalf("got %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexerNumbers(t *testing.T) {
	for _, src := range []string{"1", "0.125", "1e-3", "2.5E+10", ".5"} {
		toks, err := lexAll(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].kind != tokNumber {
			t.Fatalf("%q lexed as %v", src, toks[0])
		}
	}
	if _, err := lexAll("1.2.3"); err == nil {
		// "1.2" then ".3" is valid lexing; ensure it doesn't crash.
		t.Log("1.2.3 lexes as two numbers; fine")
	}
	if _, err := lexAll("@"); err == nil {
		t.Fatal("bad character should error")
	}
}

func TestParseHeat(t *testing.T) {
	prog, err := Parse(heatSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "heat2d" || prog.Dims != 2 {
		t.Fatalf("bad header: %q dims=%d", prog.Name, prog.Dims)
	}
	if len(prog.Params) != 2 || prog.Params[0].Name != "CX" || prog.Params[0].Value != 0.125 {
		t.Fatalf("params: %+v", prog.Params)
	}
	if len(prog.Arrays) != 1 || prog.Arrays[0].Boundary != BoundaryPeriodic {
		t.Fatalf("arrays: %+v", prog.Arrays[0])
	}
	if len(prog.Kernel) != 1 {
		t.Fatalf("kernel stmts: %d", len(prog.Kernel))
	}
	lhs := prog.Kernel[0].LHS
	if lhs.Array != "u" || lhs.DT != 1 || lhs.DX[0] != 0 || lhs.DX[1] != 0 {
		t.Fatalf("lhs: %+v", lhs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing stencil": "foo bar {}",
		"bad dims":        "stencil s { dims: 1.5; }",
		"too many dims":   "stencil s { dims: 9; }",
		"dup dims":        "stencil s { dims: 1; dims: 2; }",
		"unknown decl":    "stencil s { dims: 1; frob x; }",
		"kernel first":    "stencil s { kernel { u(t+1,x) = 1; } }",
		"bad index name":  "stencil s { dims: 2; array u; kernel { u(t+1, y, x) = 1; } }",
		"bad index off":   "stencil s { dims: 1; array u; kernel { u(t+1, x+1.5) = 1; } }",
		"unterminated":    "stencil s { dims: 1;",
		"trailing":        "stencil s { dims: 1; array u; kernel { u(t+1,x)=1; } } extra",
		"boundary undecl": "stencil s { dims: 1; boundary u: periodic; }",
		"max arity":       "stencil s { dims: 1; array u; kernel { u(t+1,x) = max(1,2,3); } }",
		"expr garbage":    "stencil s { dims: 1; array u; kernel { u(t+1,x) = ; } }",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestCheckHeatShape(t *testing.T) {
	c, err := CompileSource(heatSrc)
	if err != nil {
		t.Fatal(err)
	}
	if c.HomeDT != 1 || c.Depth != 1 {
		t.Fatalf("homeDT=%d depth=%d", c.HomeDT, c.Depth)
	}
	if c.Shape.Slope(0) != 1 || c.Shape.Slope(1) != 1 {
		t.Fatalf("slopes %v", c.Shape.Slopes())
	}
	if len(c.Shape.Cells) != 6 {
		t.Fatalf("shape has %d cells, want 6: %s", len(c.Shape.Cells), c.Shape)
	}
	if len(c.Reads) != 5 {
		t.Fatalf("%d distinct reads, want 5", len(c.Reads))
	}
	if c.Param("CX") != 0.125 {
		t.Fatal("param lookup")
	}
}

func TestCheckErrors(t *testing.T) {
	cases := map[string]string{
		"no arrays":  "stencil s { dims: 1; kernel { } }",
		"no kernel":  "stencil s { dims: 1; array u; }",
		"dup param":  "stencil s { dims: 1; param a = 1; param a = 2; array u; kernel { u(t+1,x)=1; } }",
		"dup array":  "stencil s { dims: 1; array u; array u; kernel { u(t+1,x)=1; } }",
		"reserved":   "stencil s { dims: 1; param x = 1; array u; kernel { u(t+1,x)=1; } }",
		"collision":  "stencil s { dims: 1; param u = 1; array u; kernel { u(t+1,x)=1; } }",
		"lhs offset": "stencil s { dims: 1; array u; kernel { u(t+1,x+1) = 1; } }",
		"mixed home": "stencil s { dims: 1; array u; array v; kernel { u(t+1,x)=1; v(t+2,x)=1; } }",
		"dup write":  "stencil s { dims: 1; array u; kernel { u(t+1,x)=1; u(t+1,x)=2; } }",
		"undecl arr": "stencil s { dims: 1; array u; kernel { u(t+1,x) = v(t,x); } }",
		"wrong lhs":  "stencil s { dims: 1; array u; kernel { v(t+1,x) = 1; } }",
		"undef name": "stencil s { dims: 1; array u; kernel { u(t+1,x) = CX; } }",
		"future":     "stencil s { dims: 1; array u; kernel { u(t+1,x) = u(t+1,x-1); } }",
		"same time":  "stencil s { dims: 1; array u; kernel { u(t,x) = u(t,x-1); } }",
		"div zero":   "stencil s { dims: 1; array u; kernel { u(t+1,x) = u(t,x)/0; } }",
	}
	for name, src := range cases {
		if _, err := CompileSource(src); err == nil {
			t.Errorf("%s: expected check error", name)
		}
	}
}

func TestCheckErrorHasPosition(t *testing.T) {
	_, err := CompileSource("stencil s {\n  dims: 1;\n  array u;\n  kernel {\n    u(t+1,x) = u(t+2,x);\n  }\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	ce, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	if ce.Pos.Line != 5 {
		t.Fatalf("error at %v, want line 5: %v", ce.Pos, ce)
	}
	if !strings.Contains(ce.Error(), "5:") {
		t.Fatalf("rendered error lacks position: %v", ce)
	}
}

func TestBoundaryKinds(t *testing.T) {
	src := `stencil s { dims: 1;
	  array a; array b; array c; array d;
	  boundary a: periodic; boundary b: clamp; boundary c: constant -2.5;
	  kernel { a(t+1,x) = a(t,x)+b(t,x)+c(t,x)+d(t,x); } }`
	c, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Array("a").Boundary != BoundaryPeriodic ||
		c.Array("b").Boundary != BoundaryClamp ||
		c.Array("c").Boundary != BoundaryConstant || c.Array("c").Constant != -2.5 ||
		c.Array("d").Boundary != BoundaryZero {
		t.Fatalf("boundaries wrong: %+v %+v %+v %+v", c.Array("a"), c.Array("b"), c.Array("c"), c.Array("d"))
	}
	for _, k := range []BoundaryKind{BoundaryZero, BoundaryPeriodic, BoundaryConstant, BoundaryClamp} {
		if k.String() == "" {
			t.Fatal("BoundaryKind.String empty")
		}
	}
}

func TestDepth2Inference(t *testing.T) {
	src := `stencil wave { dims: 1; param C = 0.25; array u;
	  kernel { u(t+1,x) = 2*u(t,x) - u(t-1,x) + C*(u(t,x+1)-2*u(t,x)+u(t,x-1)); } }`
	c, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Depth != 2 {
		t.Fatalf("depth %d, want 2", c.Depth)
	}
	if c.Shape.Slope(0) != 1 {
		t.Fatalf("slope %d", c.Shape.Slope(0))
	}
}

func TestStyleString(t *testing.T) {
	if SplitPointer.String() != "split-pointer" || SplitMacroShadow.String() != "split-macro-shadow" {
		t.Fatal("style names")
	}
}
