package compiler

import (
	"errors"
	"strings"
	"testing"
)

// The front-door limits must reject pathological inputs with a typed
// *LimitError — before the lexer (size), during lexing (token flood), or
// before the recursive-descent parser can deepen the stack (nesting) — and
// must not reject any real specification in the repository.
func TestLimitOversizedSource(t *testing.T) {
	src := "stencil s { dims: 1; array u; kernel { u(t+1,x) = u(t,x); } }" +
		strings.Repeat("#"+strings.Repeat("x", 127)+"\n", MaxSourceBytes/128)
	_, err := CompileSource(src)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("oversized source: got %v, want *LimitError", err)
	}
	if le.What != "source bytes" || le.Got != len(src) {
		t.Fatalf("wrong limit error: %+v", le)
	}
}

func TestLimitTokenFlood(t *testing.T) {
	// Many tiny tokens in a source well under the byte cap.
	src := "stencil s { dims: 1; array u; kernel { u(t+1,x) = 0" +
		strings.Repeat("+0", MaxTokens/2+64) + "; } }"
	if len(src) > MaxSourceBytes {
		t.Fatalf("test bug: flood source exceeds the byte cap (%d)", len(src))
	}
	_, err := CompileSource(src)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("token flood: got %v, want *LimitError", err)
	}
	if le.What != "tokens" {
		t.Fatalf("wrong limit error: %+v", le)
	}
}

func TestLimitExpressionDepth(t *testing.T) {
	for _, tc := range []struct {
		name, open, close string
	}{
		{"parens", "(", ")"},
		{"unary-minus", "-", ""},
		{"min-calls", "min(1,", ")"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := MaxExprDepth + 8
			src := "stencil s { dims: 1; array u; kernel { u(t+1,x) = " +
				strings.Repeat(tc.open, n) + "u(t,x)" + strings.Repeat(tc.close, n) + "; } }"
			_, err := CompileSource(src)
			var le *LimitError
			if !errors.As(err, &le) {
				t.Fatalf("%s nesting: got %v, want *LimitError", tc.name, err)
			}
			if le.What != "expression depth" {
				t.Fatalf("wrong limit error: %+v", le)
			}
		})
	}
}

// Moderate nesting — real kernels parenthesize freely — must still parse.
func TestLimitModerateNestingAccepted(t *testing.T) {
	n := MaxExprDepth / 2
	src := "stencil s { dims: 1; array u; kernel { u(t+1,x) = " +
		strings.Repeat("(", n) + "u(t,x)" + strings.Repeat(")", n) + "; } }"
	if _, err := CompileSource(src); err != nil {
		t.Fatalf("moderate nesting rejected: %v", err)
	}
}

// Every committed example spec must stay comfortably inside the limits.
func TestLimitsAdmitRepositorySpecs(t *testing.T) {
	for _, src := range []string{heatSrc} {
		if _, err := CompileSource(src); err != nil {
			t.Fatalf("repository spec rejected: %v", err)
		}
	}
}
