package trace

import (
	"fmt"

	"pochoir/internal/telemetry"
)

// SupervisorSpans adapts the supervisor's decision stream (emitted through
// resilience.Policy.OnEvent) into live spans on a trace: one span per time
// segment, one child span per attempt, and zero-duration markers for
// checkpoints, spills, restores, degradations, backoffs, and shadow
// verification — each failure carrying its cause as an attribute. The
// returned callback is driven synchronously from the supervising goroutine,
// so it needs no locking of its own.
//
// Span shape per segment:
//
//	segment-N [engine=TRAP]
//	  checkpoint |            (marker)
//	  spill |                 (marker; error status + cause when the spill failed)
//	  attempt-1 ======        (status=error, cause=... on failure)
//	    shadow-verify |       (marker, ok or error)
//	  restore |               (marker)
//	  attempt-2 ======        (opens at restore; includes its backoff wait)
//	    degrade |             (marker, engine=STRAP — the rung this attempt runs on)
//	    retry-backoff |       (marker, delay=...)
//
// The first attempt's span opens at segment start, so it also covers the
// segment's checkpoint + spill preamble; attempt k>1 opens at the restore
// that precedes it.
func SupervisorSpans(a *Active, parent SpanID) func(telemetry.SupEvent) {
	if a == nil {
		return func(telemetry.SupEvent) {}
	}
	var segSpan, attemptSpan SpanID
	return func(ev telemetry.SupEvent) {
		switch ev.Kind {
		case telemetry.SupSegmentStart:
			segSpan = a.StartSpan(fmt.Sprintf("segment-%d", ev.Segment), parent,
				Attr{Key: "engine", Value: ev.Engine})
			attemptSpan = a.StartSpan("attempt-1", segSpan)

		case telemetry.SupCheckpoint:
			a.Mark("checkpoint", segSpan, StatusOK)

		case telemetry.SupSpill:
			if ev.Err != "" {
				a.Mark("spill", segSpan, StatusError, Attr{Key: "cause", Value: ev.Err})
			} else {
				a.Mark("spill", segSpan, StatusOK)
			}

		case telemetry.SupVerifyOK:
			a.Mark("shadow-verify", attemptSpan, StatusOK)

		case telemetry.SupVerifyMismatch:
			a.Mark("shadow-verify", attemptSpan, StatusError,
				Attr{Key: "cause", Value: ev.Err})

		case telemetry.SupSegmentFail:
			a.EndSpan(attemptSpan, StatusError,
				Attr{Key: "cause", Value: ev.Err},
				Attr{Key: "engine", Value: ev.Engine})
			attemptSpan = SpanID{}

		case telemetry.SupRestore:
			a.Mark("restore", segSpan, StatusOK)
			attemptSpan = a.StartSpan(fmt.Sprintf("attempt-%d", ev.Attempt+1), segSpan)

		case telemetry.SupDegrade:
			a.Mark("degrade", attemptSpan, StatusOK,
				Attr{Key: "engine", Value: ev.Engine})

		case telemetry.SupBackoff:
			a.Mark("retry-backoff", attemptSpan, StatusOK,
				Attr{Key: "delay", Value: ev.Delay.String()})

		case telemetry.SupSegmentDone:
			a.EndSpan(attemptSpan, StatusOK)
			a.EndSpan(segSpan, StatusOK,
				Attr{Key: "attempts", Value: fmt.Sprintf("%d", ev.Attempt)})
			segSpan, attemptSpan = SpanID{}, SpanID{}

		case telemetry.SupGiveUp:
			a.EndSpan(attemptSpan, StatusError)
			a.EndSpan(segSpan, StatusError,
				Attr{Key: "cause", Value: ev.Err},
				Attr{Key: "attempts", Value: fmt.Sprintf("%d", ev.Attempt)})
			segSpan, attemptSpan = SpanID{}, SpanID{}

		case telemetry.SupResume:
			if ev.Err != "" {
				a.Mark("resume", parent, StatusError, Attr{Key: "cause", Value: ev.Err})
			} else {
				a.Mark("resume", parent, StatusOK,
					Attr{Key: "cursor", Value: fmt.Sprintf("%d", ev.Attempt)})
			}
		}
	}
}
