// Package trace is the causal spine of the serving stack: a stdlib-only
// tracer that gives every gateway job a 128-bit trace ID (accepted from or
// emitted as a W3C traceparent header) and a span tree covering the job's
// whole life — admission decision, queue wait, DSL compile, the supervised
// run, every segment attempt with its retry/degradation/spill cause, and
// shadow verification. Coalesced submissions that join an in-flight run get
// link-spans referencing the primary run's trace, so cross-job causality
// survives deduplication.
//
// Recording design:
//
//   - Active traces live in a small sharded map (shard = low bits of the
//     trace ID), so concurrent jobs touch disjoint locks. Within one trace,
//     spans append to a preallocated buffer under a per-trace mutex; a job's
//     spans are produced by at most a handful of goroutines (the HTTP
//     handler, one pool worker, an occasional coalescing submitter), so the
//     per-trace lock is uncontended in practice and the recording cost is a
//     few dozen nanoseconds per span.
//
//   - Completed traces pass through a tail-based sampler: traces that ended
//     in error, shed, or deadline are kept at 100%, traces slower than the
//     tail quantile of recent root durations are kept (the "why was p99
//     slow" evidence), traces carrying cross-trace links are kept, and fast
//     successes are kept with a small probability. Everything else is
//     dropped, so the retained store holds exactly the traces an operator
//     would ask for.
//
//   - The retained store is bounded (FIFO eviction), indexable by trace ID,
//     and serves /tracez: ASCII waterfalls, slowest/errored lists, and the
//     schema-versioned pochoir-trace/v1 JSON export.
//
// ID generation is deterministic under Config.Seed (tests pin the sampler's
// keep/drop sequence), and the clock is injectable, so the whole pipeline
// runs under a fake clock with zero real sleeps.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Status values a span or trace can end with. Any status other than
// StatusOK marks the trace for 100% retention by the tail sampler.
const (
	StatusOK        = "ok"
	StatusError     = "error"
	StatusDeadline  = "deadline"
	StatusShed      = "shed"
	StatusCoalesced = "coalesced"
)

// Attr is one key/value annotation on a span (engine, cause, priority...).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation in a trace. StartNS/EndNS are nanoseconds
// since the tracer's epoch; EndNS == 0 means the span is still open (only
// visible in live snapshots, e.g. a post-mortem of a mid-flight run).
type Span struct {
	ID      SpanID  `json:"span_id"`
	Parent  SpanID  `json:"parent_id,omitempty"`
	Name    string  `json:"name"`
	StartNS int64   `json:"start_ns"`
	EndNS   int64   `json:"end_ns"`
	Status  string  `json:"status,omitempty"`
	Attrs   []Attr  `json:"attrs,omitempty"`
	Link    TraceID `json:"link,omitempty"`
}

// DurationNS returns the span's duration (0 while open).
func (s *Span) DurationNS() int64 {
	if s.EndNS == 0 {
		return 0
	}
	return s.EndNS - s.StartNS
}

// Attr returns the value of the named attribute, or "".
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Trace is one finalized (or snapshotted) trace: the span tree plus the
// sampler's verdict.
type Trace struct {
	ID     TraceID `json:"trace_id"`
	Root   SpanID  `json:"root_id"`
	Status string  `json:"status"`
	// KeepReason records why the tail sampler retained the trace:
	// "status" (error/shed/deadline), "tail" (slow outlier), "link"
	// (cross-trace causality), "sampled" (probabilistic), or "live"
	// (snapshot of a still-active trace).
	KeepReason string `json:"keep_reason"`
	// EpochUnixNS anchors the relative span clocks in absolute time.
	EpochUnixNS int64  `json:"epoch_unix_ns"`
	StartNS     int64  `json:"start_ns"`
	EndNS       int64  `json:"end_ns"`
	Spans       []Span `json:"spans"`
}

// DurationNS returns the root span's duration.
func (t *Trace) DurationNS() int64 { return t.EndNS - t.StartNS }

// Find returns the span with the given ID, or nil.
func (t *Trace) Find(id SpanID) *Span {
	for i := range t.Spans {
		if t.Spans[i].ID == id {
			return &t.Spans[i]
		}
	}
	return nil
}

// Config tunes the tracer. The zero value is usable.
type Config struct {
	// Capacity bounds the retained-trace store (FIFO eviction).
	// Default 256.
	Capacity int
	// SampleProb is the probability a fast, successful, link-free trace
	// is kept anyway. Default 0.05; negative disables probabilistic keeps.
	SampleProb float64
	// TailWindow is how many recent root durations feed the tail
	// estimate. Default 512.
	TailWindow int
	// TailQuantile is the keep threshold over recent durations: a trace
	// at or above this quantile is a tail outlier and is kept. Default
	// 0.99.
	TailQuantile float64
	// MinTailSamples gates the tail rule until enough durations have been
	// observed to estimate the quantile. Default 32.
	MinTailSamples int
	// Seed seeds both ID generation and the sampling RNG, making keep/
	// drop decisions reproducible. 0 seeds from the wall clock.
	Seed int64
	// Clock overrides the span clock: nanoseconds since the tracer's
	// epoch. Nil uses the real monotonic clock.
	Clock func() int64
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SampleProb == 0 {
		c.SampleProb = 0.05
	}
	if c.TailWindow <= 0 {
		c.TailWindow = 512
	}
	if c.TailQuantile <= 0 || c.TailQuantile >= 1 {
		c.TailQuantile = 0.99
	}
	if c.MinTailSamples <= 0 {
		c.MinTailSamples = 32
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	return c
}

const numShards = 16

// actShard is one lane of the active-trace map.
type actShard struct {
	mu     sync.Mutex
	active map[TraceID]*Active
}

// Stats is the tracer's sampling ledger.
type Stats struct {
	Started  uint64 `json:"started"`
	Kept     uint64 `json:"kept"`
	Dropped  uint64 `json:"dropped"`
	Retained int    `json:"retained"`
	// TailNS is the current tail-quantile threshold in nanoseconds (0
	// until MinTailSamples durations have been observed).
	TailNS int64 `json:"tail_ns"`
}

// Tracer records, samples, and retains traces. A nil *Tracer is the
// disabled tracer: StartTrace returns nil and every method on the nil
// Active no-ops, so call sites need no guards.
type Tracer struct {
	cfg   Config
	epoch time.Time
	clock func() int64

	idSeq atomic.Uint64 // ID generation: splitmix64(seed + seq)

	shards [numShards]actShard

	mu       sync.Mutex
	retained map[TraceID]*Trace
	order    []TraceID // FIFO eviction order
	durs     []int64   // ring of recent root durations
	durIdx   int
	durN     int
	rngState uint64 // sampler RNG, guarded by mu

	started atomic.Uint64
	kept    atomic.Uint64
	dropped atomic.Uint64
}

// New creates a tracer.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	t := &Tracer{
		cfg:      cfg,
		epoch:    time.Now(),
		retained: make(map[TraceID]*Trace),
		durs:     make([]int64, cfg.TailWindow),
		rngState: uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15,
	}
	t.idSeq.Store(uint64(cfg.Seed))
	if cfg.Clock != nil {
		t.clock = cfg.Clock
	} else {
		t.clock = func() int64 { return int64(time.Since(t.epoch)) }
	}
	for i := range t.shards {
		t.shards[i].active = make(map[TraceID]*Active)
	}
	return t
}

// Epoch returns the tracer's epoch (span clocks are relative to it).
func (t *Tracer) Epoch() time.Time { return t.epoch }

// splitmix64 is the ID/RNG mixer (Vigna's splitmix64 output function).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newTraceID derives a fresh 128-bit ID from the seeded sequence.
func (t *Tracer) newTraceID() TraceID {
	n := t.idSeq.Add(2)
	var id TraceID
	putUint64(id[:8], splitmix64(n-1))
	putUint64(id[8:], splitmix64(n))
	if id.IsZero() { // astronomically unlikely; zero is the sentinel
		id[15] = 1
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	putUint64(id[:], splitmix64(t.idSeq.Add(1)))
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// Active is one in-flight trace: the span buffer plus the handle every
// recording layer holds. All methods are safe on a nil receiver and safe
// for concurrent use.
type Active struct {
	t    *Tracer
	id   TraceID
	root SpanID

	mu    sync.Mutex
	spans []Span
	links int
	ended bool
}

// StartTrace opens a trace with a root span of the given name. When parent
// carries a trace ID (a caller-supplied traceparent), the trace adopts it
// and the root span records parent.SpanID as its parent; otherwise a fresh
// ID is generated. Returns nil on a nil tracer.
func (t *Tracer) StartTrace(name string, parent Context, attrs ...Attr) *Active {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	id := parent.TraceID
	if id.IsZero() {
		id = t.newTraceID()
	}
	a := &Active{
		t:     t,
		id:    id,
		root:  t.newSpanID(),
		spans: make([]Span, 0, 16),
	}
	a.spans = append(a.spans, Span{
		ID:      a.root,
		Parent:  parent.SpanID,
		Name:    name,
		StartNS: t.clock(),
		Attrs:   attrs,
	})
	sh := &t.shards[id[15]&(numShards-1)]
	sh.mu.Lock()
	sh.active[id] = a
	sh.mu.Unlock()
	return a
}

// TraceID returns the trace's ID (zero on nil).
func (a *Active) TraceID() TraceID {
	if a == nil {
		return TraceID{}
	}
	return a.id
}

// Root returns the root span's ID (zero on nil).
func (a *Active) Root() SpanID {
	if a == nil {
		return SpanID{}
	}
	return a.root
}

// Context returns the trace's propagation context (trace ID + root span),
// the value Traceparent renders.
func (a *Active) Context() Context {
	if a == nil {
		return Context{}
	}
	return Context{TraceID: a.id, SpanID: a.root}
}

// StartSpan opens a child span under parent (zero parent attaches to the
// root span) and returns its ID.
func (a *Active) StartSpan(name string, parent SpanID, attrs ...Attr) SpanID {
	if a == nil {
		return SpanID{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ended {
		return SpanID{}
	}
	if parent.IsZero() {
		parent = a.root
	}
	id := a.t.newSpanID()
	a.spans = append(a.spans, Span{
		ID:      id,
		Parent:  parent,
		Name:    name,
		StartNS: a.t.clock(),
		Attrs:   attrs,
	})
	return id
}

// EndSpan closes the span with a status, appending any final attributes.
func (a *Active) EndSpan(id SpanID, status string, attrs ...Attr) {
	if a == nil || id.IsZero() {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.spans {
		if a.spans[i].ID == id && a.spans[i].EndNS == 0 {
			a.spans[i].EndNS = a.t.clock()
			a.spans[i].Status = status
			a.spans[i].Attrs = append(a.spans[i].Attrs, attrs...)
			return
		}
	}
}

// Mark records a zero-duration marker span (checkpoint, degrade, spill...).
func (a *Active) Mark(name string, parent SpanID, status string, attrs ...Attr) SpanID {
	if a == nil {
		return SpanID{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ended {
		return SpanID{}
	}
	if parent.IsZero() {
		parent = a.root
	}
	now := a.t.clock()
	id := a.t.newSpanID()
	a.spans = append(a.spans, Span{
		ID:      id,
		Parent:  parent,
		Name:    name,
		StartNS: now,
		EndNS:   now,
		Status:  status,
		Attrs:   attrs,
	})
	return id
}

// LinkSpan records a zero-duration span that references another trace —
// the coalesce-join edge. Traces holding links are always retained.
func (a *Active) LinkSpan(name string, parent SpanID, other TraceID, attrs ...Attr) SpanID {
	if a == nil {
		return SpanID{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ended {
		return SpanID{}
	}
	if parent.IsZero() {
		parent = a.root
	}
	now := a.t.clock()
	id := a.t.newSpanID()
	a.spans = append(a.spans, Span{
		ID:      id,
		Parent:  parent,
		Name:    name,
		StartNS: now,
		EndNS:   now,
		Status:  StatusOK,
		Attrs:   attrs,
		Link:    other,
	})
	a.links++
	return id
}

// Snapshot returns a live view of the trace so far (open spans keep
// EndNS 0) — the post-mortem path, which must capture a trace that will
// never be finalized. Safe concurrently with recording.
func (a *Active) Snapshot() *Trace {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	tr := &Trace{
		ID:          a.id,
		Root:        a.root,
		Status:      a.spans[0].Status,
		KeepReason:  "live",
		EpochUnixNS: a.t.epoch.UnixNano(),
		StartNS:     a.spans[0].StartNS,
		EndNS:       a.t.clock(),
		Spans:       append([]Span(nil), a.spans...),
	}
	if tr.Status == "" {
		tr.Status = "running"
	}
	return tr
}

// End finalizes the trace: the root span closes with status, the tail
// sampler decides keep/drop, and a kept trace becomes retrievable from the
// tracer's retained store. Reports whether the trace was kept. Idempotent;
// later span operations on the handle are no-ops.
func (a *Active) End(status string, attrs ...Attr) bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	if a.ended {
		a.mu.Unlock()
		return false
	}
	a.ended = true
	now := a.t.clock()
	root := &a.spans[0]
	if root.EndNS == 0 {
		root.EndNS = now
		root.Status = status
		root.Attrs = append(root.Attrs, attrs...)
	}
	// Close any spans left open so the exported tree is balanced even when
	// a layer above lost track (e.g. a deadline fired mid-segment).
	for i := range a.spans {
		if a.spans[i].EndNS == 0 {
			a.spans[i].EndNS = now
			if a.spans[i].Status == "" {
				a.spans[i].Status = status
			}
		}
	}
	spans := a.spans
	links := a.links
	a.mu.Unlock()

	t := a.t
	sh := &t.shards[a.id[15]&(numShards-1)]
	sh.mu.Lock()
	delete(sh.active, a.id)
	sh.mu.Unlock()

	dur := spans[0].EndNS - spans[0].StartNS
	keep, reason := t.decide(status, dur, links > 0)
	if !keep {
		t.dropped.Add(1)
		return false
	}
	t.kept.Add(1)
	tr := &Trace{
		ID:          a.id,
		Root:        a.root,
		Status:      status,
		KeepReason:  reason,
		EpochUnixNS: t.epoch.UnixNano(),
		StartNS:     spans[0].StartNS,
		EndNS:       spans[0].EndNS,
		Spans:       spans,
	}
	t.mu.Lock()
	if _, dup := t.retained[tr.ID]; !dup {
		t.retained[tr.ID] = tr
		t.order = append(t.order, tr.ID)
		for len(t.order) > t.cfg.Capacity {
			delete(t.retained, t.order[0])
			t.order = t.order[1:]
		}
	} else {
		t.retained[tr.ID] = tr // same ID re-traced: newest wins
	}
	t.mu.Unlock()
	return true
}

// decide is the tail sampler: keep everything abnormal, keep the slow
// tail, keep cross-trace links, probabilistically keep a few fast
// successes, drop the rest. It also feeds the duration ring.
func (t *Tracer) decide(status string, durNS int64, hasLink bool) (bool, string) {
	t.mu.Lock()
	defer t.mu.Unlock()

	tail := t.tailThresholdLocked()
	// Feed the ring before deciding is tempting but wrong: a burst of
	// identical slow traces would raise the bar against itself and drop
	// all but the first. Decide against the prior window, then record.
	t.durs[t.durIdx] = durNS
	t.durIdx = (t.durIdx + 1) % len(t.durs)
	if t.durN < len(t.durs) {
		t.durN++
	}

	if status != StatusOK {
		return true, "status"
	}
	if hasLink {
		return true, "link"
	}
	if tail > 0 && durNS >= tail {
		return true, "tail"
	}
	if t.cfg.SampleProb > 0 {
		t.rngState = splitmix64(t.rngState)
		if float64(t.rngState>>11)/float64(1<<53) < t.cfg.SampleProb {
			return true, "sampled"
		}
	}
	return false, ""
}

// tailThresholdLocked computes the current tail-quantile duration, or 0
// while the window is still warming up.
func (t *Tracer) tailThresholdLocked() int64 {
	if t.durN < t.cfg.MinTailSamples {
		return 0
	}
	tmp := make([]int64, t.durN)
	copy(tmp, t.durs[:t.durN])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(float64(t.durN) * t.cfg.TailQuantile)
	if idx >= t.durN {
		idx = t.durN - 1
	}
	return tmp[idx]
}

// Get returns the retained trace with the given ID, or nil. It also
// resolves still-active traces (as live snapshots), so an exemplar pointing
// at a long run mid-flight still renders.
func (t *Tracer) Get(id TraceID) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tr := t.retained[id]
	t.mu.Unlock()
	if tr != nil {
		return tr
	}
	sh := &t.shards[id[15]&(numShards-1)]
	sh.mu.Lock()
	a := sh.active[id]
	sh.mu.Unlock()
	return a.Snapshot() // nil-safe: nil Active snapshots to nil
}

// Traces returns the retained traces, newest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.order))
	for i := len(t.order) - 1; i >= 0; i-- {
		if tr := t.retained[t.order[i]]; tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Slowest returns up to n retained traces by descending root duration.
func (t *Tracer) Slowest(n int) []*Trace {
	out := t.Traces()
	sort.SliceStable(out, func(i, j int) bool { return out[i].DurationNS() > out[j].DurationNS() })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Errored returns up to n retained traces whose status is not ok, newest
// first.
func (t *Tracer) Errored(n int) []*Trace {
	var out []*Trace
	for _, tr := range t.Traces() {
		if tr.Status != StatusOK {
			out = append(out, tr)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// Stats returns the sampling ledger.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	retained := len(t.retained)
	tail := t.tailThresholdLocked()
	t.mu.Unlock()
	return Stats{
		Started:  t.started.Load(),
		Kept:     t.kept.Load(),
		Dropped:  t.dropped.Load(),
		Retained: retained,
		TailNS:   tail,
	}
}
