package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"pochoir/internal/telemetry"
)

// WriteChrome converts the trace into the Chrome trace-event format via the
// shared telemetry writer (telemetry.WriteChromeSpans): timed spans become
// complete events nested by containment on a single "job" track, and
// zero-duration markers (checkpoints, spills, degrades...) become instant
// events, so /tracez/<id>.json?format=chrome loads directly into
// chrome://tracing or Perfetto.
func WriteChrome(w io.Writer, tr *Trace) error {
	spans := make([]telemetry.ChromeSpan, 0, len(tr.Spans))
	instants := make([]telemetry.ChromeInstant, 0, 8)
	for i := range tr.Spans {
		s := &tr.Spans[i]
		endNS := s.EndNS
		if endNS == 0 {
			endNS = tr.EndNS
		}
		ts := s.StartNS - tr.StartNS
		if s.EndNS == s.StartNS {
			instants = append(instants, telemetry.ChromeInstant{
				Name: s.Name, TID: 0, TS: ts, Args: spanArgs(s),
			})
			continue
		}
		spans = append(spans, telemetry.ChromeSpan{
			Name: s.Name, TID: 0, TS: ts, DurNS: endNS - s.StartNS, Args: spanArgs(s),
		})
	}
	return telemetry.WriteChromeSpans(w, "pochoir trace "+tr.ID.String(),
		map[int]string{0: "job"}, spans, instants)
}

// spanArgs renders a span's status, attrs, and link as a Chrome args body.
func spanArgs(s *Span) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `"span_id":%s`, strconv.Quote(s.ID.String()))
	if s.Status != "" {
		fmt.Fprintf(&sb, `,"status":%s`, strconv.Quote(s.Status))
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(&sb, `,%s:%s`, strconv.Quote(a.Key), strconv.Quote(a.Value))
	}
	if !s.Link.IsZero() {
		fmt.Fprintf(&sb, `,"link":%s`, strconv.Quote(s.Link.String()))
	}
	return sb.String()
}
