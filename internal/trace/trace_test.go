package trace

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pochoir/internal/telemetry"
)

// fakeClock is a manually-advanced span clock.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) advance(d int64) {
	c.mu.Lock()
	c.ns += d
	c.mu.Unlock()
}

func newTestTracer(t *testing.T, cfg Config) (*Tracer, *fakeClock) {
	t.Helper()
	clk := &fakeClock{}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	cfg.Clock = clk.now
	return New(cfg), clk
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr, _ := newTestTracer(t, Config{})
	a := tr.StartTrace("job", Context{})
	hdr := a.Context().Traceparent()
	ctx, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if ctx.TraceID != a.TraceID() || ctx.SpanID != a.Root() {
		t.Fatalf("round trip mismatch: %q -> %+v", hdr, ctx)
	}
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("malformed traceparent %q", hdr)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"00-xyz-abc-01",
		"00-0123456789abcdef-0123456789abcdef-01",  // 16-digit trace id
		"00-" + strings.Repeat("0", 32) + "-0123456789abcdef-01", // zero trace id
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero span id
		"ff-" + strings.Repeat("a", 32) + "-0123456789abcdef-01", // forbidden version
		"00-" + strings.Repeat("a", 32) + "-0123456789abcdef",    // missing flags
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q): want error", bad)
		}
	}
	if ctx, err := ParseTraceparent(""); err != nil || !ctx.IsZero() {
		t.Errorf("empty traceparent: got %+v, %v; want zero, nil", ctx, err)
	}
}

// TestCallerTraceIDAdopted checks a caller-supplied traceparent pins the
// trace ID and parents the root span on the remote span.
func TestCallerTraceIDAdopted(t *testing.T) {
	tr, _ := newTestTracer(t, Config{})
	ctx, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	a := tr.StartTrace("job", ctx)
	if a.TraceID().String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace did not adopt caller id: %s", a.TraceID())
	}
	a.End(StatusError)
	got := tr.Get(a.TraceID())
	if got == nil {
		t.Fatal("error trace not retained")
	}
	if got.Spans[0].Parent.String() != "00f067aa0ba902b7" {
		t.Fatalf("root span parent = %s, want caller span", got.Spans[0].Parent)
	}
}

// TestTailSamplerDeterminism pins the keep/drop sequence under a seeded
// RNG: the same seed must make identical decisions run over run, and the
// keep rate must approximate SampleProb.
func TestTailSamplerDeterminism(t *testing.T) {
	decide := func(seed int64) []bool {
		tr, _ := newTestTracer(t, Config{Seed: seed, SampleProb: 0.1, Capacity: 4096})
		out := make([]bool, 400)
		for i := range out {
			a := tr.StartTrace("job", Context{})
			out[i] = a.End(StatusOK)
		}
		return out
	}
	a, b := decide(7), decide(7)
	kept := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical seeds", i)
		}
		if a[i] {
			kept++
		}
	}
	if kept == 0 || kept > len(a)/2 {
		t.Fatalf("keep rate %d/%d implausible for SampleProb=0.1", kept, len(a))
	}
	c := decide(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

// TestTailSamplerKeepRules checks the 100%-keep classes: abnormal status,
// link-bearing traces, and slow-tail outliers.
func TestTailSamplerKeepRules(t *testing.T) {
	tr, clk := newTestTracer(t, Config{
		SampleProb: -1, MinTailSamples: 8, TailWindow: 64, Capacity: 1024,
	})

	// Seed the duration window with one dominant 100ms sample so the p99
	// threshold sits far above the 1ms "fast" population below (a window
	// of identical durations would flag every member as its own tail).
	seed := tr.StartTrace("job", Context{})
	clk.advance(100_000_000)
	if seed.End(StatusOK) {
		t.Fatal("warmup trace kept before MinTailSamples with sampling disabled")
	}

	for _, status := range []string{StatusError, StatusShed, StatusDeadline} {
		a := tr.StartTrace("job", Context{})
		if !a.End(status) {
			t.Fatalf("status %q trace dropped; must be kept", status)
		}
		if tr.Get(a.TraceID()).KeepReason != "status" {
			t.Fatalf("status %q keep reason = %q", status, tr.Get(a.TraceID()).KeepReason)
		}
	}

	other := tr.newTraceID()
	a := tr.StartTrace("job", Context{})
	a.LinkSpan("coalesce-join", SpanID{}, other)
	if !a.End(StatusOK) {
		t.Fatal("link-bearing trace dropped; must be kept")
	}
	if got := tr.Get(a.TraceID()); got.KeepReason != "link" || got.Spans[1].Link != other {
		t.Fatalf("link trace: reason=%q link=%v", got.KeepReason, got.Spans[1].Link)
	}

	// Warm the duration window with fast traces, then a slow outlier.
	for i := 0; i < 32; i++ {
		f := tr.StartTrace("job", Context{})
		clk.advance(1_000_000) // 1ms
		if f.End(StatusOK) {
			t.Fatalf("fast ok trace %d kept with sampling disabled", i)
		}
	}
	slow := tr.StartTrace("job", Context{})
	clk.advance(500_000_000) // 500ms: beyond even the 100ms seed
	if !slow.End(StatusOK) {
		t.Fatal("tail outlier dropped; must be kept")
	}
	if tr.Get(slow.TraceID()).KeepReason != "tail" {
		t.Fatalf("tail keep reason = %q", tr.Get(slow.TraceID()).KeepReason)
	}
}

// TestConcurrentSpanRecording hammers one tracer from 8 goroutines — some
// sharing one trace, some with their own — under the race detector.
func TestConcurrentSpanRecording(t *testing.T) {
	tr := New(Config{Seed: 1, SampleProb: 1.01, Capacity: 4096})
	shared := tr.StartTrace("shared", Context{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := shared.StartSpan(fmt.Sprintf("g%d-op%d", g, i), SpanID{})
				shared.Mark("mark", sp, StatusOK)
				shared.EndSpan(sp, StatusOK)

				own := tr.StartTrace(fmt.Sprintf("own-g%d-%d", g, i), Context{})
				s2 := own.StartSpan("child", SpanID{})
				own.EndSpan(s2, StatusOK)
				own.End(StatusOK)
			}
		}(g)
	}
	wg.Wait()
	if !shared.End(StatusOK) {
		t.Fatal("shared trace dropped with SampleProb>1")
	}
	got := tr.Get(shared.TraceID())
	if want := 1 + 8*200*2; len(got.Spans) != want {
		t.Fatalf("shared trace has %d spans, want %d", len(got.Spans), want)
	}
	for i := range got.Spans {
		if got.Spans[i].EndNS == 0 && i != 0 {
			t.Fatalf("span %d (%s) left open", i, got.Spans[i].Name)
		}
	}
	// Operations on an ended trace must no-op, not corrupt.
	if id := shared.StartSpan("late", SpanID{}); !id.IsZero() {
		t.Fatal("StartSpan after End returned a live span")
	}
}

func TestCapacityEviction(t *testing.T) {
	tr, _ := newTestTracer(t, Config{Capacity: 4, SampleProb: 1.01})
	var ids []TraceID
	for i := 0; i < 10; i++ {
		a := tr.StartTrace("job", Context{})
		a.End(StatusOK)
		ids = append(ids, a.TraceID())
	}
	for _, id := range ids[:6] {
		if tr.Get(id) != nil {
			t.Fatalf("trace %s not evicted", id)
		}
	}
	for _, id := range ids[6:] {
		if tr.Get(id) == nil {
			t.Fatalf("trace %s evicted too early", id)
		}
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	a := tr.StartTrace("job", Context{})
	if a != nil {
		t.Fatal("nil tracer returned non-nil Active")
	}
	sp := a.StartSpan("x", SpanID{})
	a.EndSpan(sp, StatusOK)
	a.Mark("m", sp, StatusOK)
	a.LinkSpan("l", sp, TraceID{})
	if a.End(StatusError) {
		t.Fatal("nil Active claimed to keep a trace")
	}
	if tr.Get(TraceID{}) != nil || tr.Traces() != nil {
		t.Fatal("nil tracer returned traces")
	}
	if ctx := a.Context(); !ctx.IsZero() {
		t.Fatal("nil Active has non-zero context")
	}
}

func TestExportRoundTripAndWaterfall(t *testing.T) {
	tr, clk := newTestTracer(t, Config{SampleProb: 1.01})
	a := tr.StartTrace("job", Context{}, Attr{Key: "tenant", Value: "t1"})
	q := a.StartSpan("queue-wait", SpanID{}, Attr{Key: "priority", Value: "high"})
	clk.advance(2_000_000)
	a.EndSpan(q, StatusOK)
	run := a.StartSpan("supervised-run", SpanID{})
	emit := SupervisorSpans(a, run)
	emit(telemetry.SupEvent{Kind: telemetry.SupSegmentStart, Segment: 0, Engine: "TRAP"})
	emit(telemetry.SupEvent{Kind: telemetry.SupCheckpoint, Segment: 0})
	clk.advance(1_000_000)
	emit(telemetry.SupEvent{Kind: telemetry.SupSegmentFail, Segment: 0, Attempt: 1,
		Engine: "TRAP", Err: "kernel panic: boom"})
	emit(telemetry.SupEvent{Kind: telemetry.SupRestore, Segment: 0, Attempt: 1})
	emit(telemetry.SupEvent{Kind: telemetry.SupDegrade, Segment: 0, Attempt: 1, Engine: "STRAP"})
	clk.advance(3_000_000)
	emit(telemetry.SupEvent{Kind: telemetry.SupSegmentDone, Segment: 0, Attempt: 2, Engine: "STRAP"})
	a.EndSpan(run, StatusOK)
	a.End(StatusOK)

	got := tr.Get(a.TraceID())
	blob, err := MarshalExport(got)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseExport(blob)
	if err != nil {
		t.Fatalf("ParseExport: %v\n%s", err, blob)
	}
	if back.ID != got.ID || len(back.Spans) != len(got.Spans) {
		t.Fatalf("round trip lost spans: %d vs %d", len(back.Spans), len(got.Spans))
	}
	seg := findSpan(back, "segment-0")
	if seg == nil {
		t.Fatalf("no segment span in export:\n%s", blob)
	}
	a1 := findSpan(back, "attempt-1")
	if a1 == nil || a1.Status != StatusError || a1.Attr("cause") != "kernel panic: boom" {
		t.Fatalf("attempt-1 span wrong: %+v", a1)
	}
	a2 := findSpan(back, "attempt-2")
	if a2 == nil || a2.Status != StatusOK || a2.Parent != seg.ID {
		t.Fatalf("attempt-2 span wrong: %+v", a2)
	}
	if d := findSpan(back, "degrade"); d == nil || d.Attr("engine") != "STRAP" || d.Parent != a2.ID {
		t.Fatalf("degrade marker wrong: %+v", d)
	}

	var wf bytes.Buffer
	WriteWaterfall(&wf, got)
	for _, want := range []string{"queue-wait", "segment-0", "attempt-1", "attempt-2",
		"cause=kernel panic: boom", "engine=STRAP", "priority=high"} {
		if !strings.Contains(wf.String(), want) {
			t.Fatalf("waterfall missing %q:\n%s", want, wf.String())
		}
	}

	var chrome bytes.Buffer
	if err := WriteChrome(&chrome, got); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ph":"X"`, `"ph":"i"`, `"attempt-1"`, `"checkpoint"`} {
		if !strings.Contains(chrome.String(), want) {
			t.Fatalf("chrome export missing %q:\n%s", want, chrome.String())
		}
	}
	if _, err := ParseExport([]byte(`{"schema":"pochoir-trace/v999","trace":{}}`)); err == nil {
		t.Fatal("ParseExport accepted unknown schema")
	}
}

func findSpan(tr *Trace, name string) *Span {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return nil
}

func TestHandler404AndWaterfall(t *testing.T) {
	tr, _ := newTestTracer(t, Config{SampleProb: 1.01})
	a := tr.StartTrace("job", Context{})
	a.End(StatusOK)
	h := Handler(tr)

	for _, path := range []string{
		"/tracez/ffffffffffffffffffffffffffffffff",
		"/tracez/ffffffffffffffffffffffffffffffff.json",
		"/tracez/not-hex",
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 404 {
			t.Fatalf("GET %s = %d, want 404", path, rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez/"+a.TraceID().String(), nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "trace "+a.TraceID().String()) {
		t.Fatalf("waterfall fetch: %d\n%s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez/"+a.TraceID().String()+".json", nil))
	if rec.Code != 200 {
		t.Fatalf("json fetch: %d", rec.Code)
	}
	if _, err := ParseExport(rec.Body.Bytes()); err != nil {
		t.Fatalf("json fetch not parseable: %v", err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "tracer:") {
		t.Fatalf("index fetch: %d\n%s", rec.Code, rec.Body.String())
	}

	disabled := Handler(nil)
	rec = httptest.NewRecorder()
	disabled.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	if rec.Code != 404 {
		t.Fatalf("disabled tracer /tracez = %d, want 404", rec.Code)
	}
}

// TestLiveSnapshot checks exemplars can resolve mid-flight traces and the
// post-mortem path sees open spans.
func TestLiveSnapshot(t *testing.T) {
	tr, clk := newTestTracer(t, Config{})
	a := tr.StartTrace("job", Context{})
	sp := a.StartSpan("supervised-run", SpanID{})
	clk.advance(5_000_000)
	got := tr.Get(a.TraceID())
	if got == nil || got.KeepReason != "live" {
		t.Fatalf("live trace not resolvable: %+v", got)
	}
	if got.Find(sp) == nil || got.Find(sp).EndNS != 0 {
		t.Fatal("open span not visible in live snapshot")
	}
	a.End(StatusError)
	if tr.Get(a.TraceID()).KeepReason != "status" {
		t.Fatal("finalized trace should replace live view")
	}
}
