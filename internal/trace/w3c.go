package trace

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// TraceID is the 128-bit W3C trace identifier. The zero value means "no
// trace".
type TraceID [16]byte

// SpanID is the 64-bit span identifier. The zero value means "no span".
type SpanID [8]byte

// IsZero reports whether the ID is the all-zero sentinel.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is the all-zero sentinel.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// MarshalJSON encodes the ID as its hex string; the zero ID encodes as ""
// so omitempty-adjacent readers see an obviously-absent value.
func (id TraceID) MarshalJSON() ([]byte, error) {
	if id.IsZero() {
		return []byte(`""`), nil
	}
	return json.Marshal(id.String())
}

// UnmarshalJSON decodes a 32-hex-digit string ("" = zero ID).
func (id *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	if s == "" {
		*id = TraceID{}
		return nil
	}
	v, err := ParseTraceID(s)
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// MarshalJSON encodes the ID as its hex string ("" for the zero ID).
func (id SpanID) MarshalJSON() ([]byte, error) {
	if id.IsZero() {
		return []byte(`""`), nil
	}
	return json.Marshal(id.String())
}

// UnmarshalJSON decodes a 16-hex-digit string ("" = zero ID).
func (id *SpanID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	if s == "" {
		*id = SpanID{}
		return nil
	}
	raw, err := hex.DecodeString(strings.ToLower(s))
	if err != nil || len(raw) != 8 {
		return fmt.Errorf("trace: bad span id %q", s)
	}
	copy(id[:], raw)
	return nil
}

// ParseTraceID decodes 32 hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	raw, err := hex.DecodeString(strings.ToLower(s))
	if err != nil || len(raw) != 16 {
		return id, fmt.Errorf("trace: bad trace id %q", s)
	}
	copy(id[:], raw)
	return id, nil
}

// Context is the W3C propagation pair: which trace, and which span within
// it is the caller.
type Context struct {
	TraceID TraceID
	SpanID  SpanID
}

// IsZero reports whether the context carries no trace.
func (c Context) IsZero() bool { return c.TraceID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value,
// version 00 with the sampled flag set (pochoir's sampling is tail-based,
// so every propagated trace is recorded until its fate is decided).
func (c Context) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", c.TraceID, c.SpanID)
}

var errTraceparent = errors.New("trace: malformed traceparent")

// ParseTraceparent decodes a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). The empty string decodes to the zero
// Context (no trace) with no error; a malformed non-empty value is an
// error so the gateway can reject it explicitly rather than silently
// starting a fresh trace.
func ParseTraceparent(s string) (Context, error) {
	if s == "" {
		return Context{}, nil
	}
	parts := strings.Split(s, "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[3]) != 2 {
		return Context{}, errTraceparent
	}
	if _, err := hex.DecodeString(parts[0]); err != nil || parts[0] == "ff" {
		return Context{}, errTraceparent
	}
	tid, err := ParseTraceID(parts[1])
	if err != nil || tid.IsZero() {
		return Context{}, errTraceparent
	}
	raw, err := hex.DecodeString(strings.ToLower(parts[2]))
	if err != nil || len(raw) != 8 {
		return Context{}, errTraceparent
	}
	var sid SpanID
	copy(sid[:], raw)
	if sid.IsZero() {
		return Context{}, errTraceparent
	}
	if _, err := hex.DecodeString(parts[3]); err != nil {
		return Context{}, errTraceparent
	}
	return Context{TraceID: tid, SpanID: sid}, nil
}
