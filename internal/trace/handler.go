package trace

import (
	"fmt"
	"net/http"
	"strings"
)

// Handler serves the tracer's retained traces:
//
//	GET /tracez           — sampling stats + slowest and errored lists
//	GET /tracez/<id>      — ASCII waterfall of one trace
//	GET /tracez/<id>.json — pochoir-trace/v1 JSON (?format=chrome converts
//	                        to a Chrome trace via the telemetry writer)
//
// Unknown or malformed trace IDs answer 404 (not an empty 200), so dead
// exemplar links fail loudly. A nil tracer serves 404 for everything under
// /tracez — the monitor stays mountable with tracing disabled.
func Handler(t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		st := t.Stats()
		fmt.Fprintf(w, "tracer: started=%d kept=%d dropped=%d retained=%d tail_ns=%d\n\n",
			st.Started, st.Kept, st.Dropped, st.Retained, st.TailNS)
		WriteList(w, "slowest:", t.Slowest(10))
		fmt.Fprintln(w)
		WriteList(w, "errored:", t.Errored(10))
		fmt.Fprintln(w)
		WriteList(w, "recent:", firstN(t.Traces(), 20))
	})
	mux.HandleFunc("/tracez/", func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		name := strings.TrimPrefix(r.URL.Path, "/tracez/")
		wantJSON := strings.HasSuffix(name, ".json")
		name = strings.TrimSuffix(name, ".json")
		id, err := ParseTraceID(name)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusNotFound)
			return
		}
		tr := t.Get(id)
		if tr == nil {
			http.Error(w, "no such trace", http.StatusNotFound)
			return
		}
		if wantJSON {
			if r.URL.Query().Get("format") == "chrome" {
				w.Header().Set("Content-Type", "application/json")
				WriteChrome(w, tr)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			WriteJSON(w, tr)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteWaterfall(w, tr)
	})
	return mux
}

func firstN(trs []*Trace, n int) []*Trace {
	if len(trs) > n {
		return trs[:n]
	}
	return trs
}
