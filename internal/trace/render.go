package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// TraceSchema versions the JSON export; bump on incompatible change.
const TraceSchema = "pochoir-trace/v1"

// Export is the schema-versioned wire form of one trace, served at
// /tracez/<id>.json and embedded in post-mortem bundles.
type Export struct {
	Schema string `json:"schema"`
	Trace  *Trace `json:"trace"`
}

// WriteJSON writes the trace as indented pochoir-trace/v1 JSON.
func WriteJSON(w io.Writer, tr *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Export{Schema: TraceSchema, Trace: tr})
}

// MarshalExport returns the trace's pochoir-trace/v1 JSON bytes.
func MarshalExport(tr *Trace) ([]byte, error) {
	return json.MarshalIndent(Export{Schema: TraceSchema, Trace: tr}, "", "  ")
}

// ParseExport decodes pochoir-trace/v1 JSON, rejecting other schemas.
func ParseExport(b []byte) (*Trace, error) {
	var ex Export
	if err := json.Unmarshal(b, &ex); err != nil {
		return nil, err
	}
	if ex.Schema != TraceSchema {
		return nil, fmt.Errorf("trace: unsupported schema %q (want %s)", ex.Schema, TraceSchema)
	}
	if ex.Trace == nil {
		return nil, fmt.Errorf("trace: export has no trace")
	}
	return ex.Trace, nil
}

// node is one span plus its children, for depth-first rendering.
type node struct {
	span     *Span
	children []*node
}

// buildTree orders spans into a root-first forest. Spans whose parent is
// missing (e.g. the caller's remote span from a traceparent) rank as roots.
func buildTree(tr *Trace) []*node {
	byID := make(map[SpanID]*node, len(tr.Spans))
	for i := range tr.Spans {
		byID[tr.Spans[i].ID] = &node{span: &tr.Spans[i]}
	}
	var roots []*node
	for i := range tr.Spans {
		n := byID[tr.Spans[i].ID]
		if p, ok := byID[tr.Spans[i].Parent]; ok && p != n {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortKids func(n *node)
	sortKids = func(n *node) {
		sort.SliceStable(n.children, func(i, j int) bool {
			return n.children[i].span.StartNS < n.children[j].span.StartNS
		})
		for _, c := range n.children {
			sortKids(c)
		}
	}
	for _, r := range roots {
		sortKids(r)
	}
	return roots
}

// WriteWaterfall renders the trace as an ASCII waterfall: one line per
// span, indented by tree depth, with a proportional bar showing where the
// span sits inside the root's time window.
func WriteWaterfall(w io.Writer, tr *Trace) {
	const barWidth = 40
	total := tr.EndNS - tr.StartNS
	if total <= 0 {
		total = 1
	}
	fmt.Fprintf(w, "trace %s  status=%s  keep=%s  duration=%s  spans=%d\n",
		tr.ID, tr.Status, tr.KeepReason, time.Duration(tr.DurationNS()), len(tr.Spans))

	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		s := n.span
		startFrac := float64(s.StartNS-tr.StartNS) / float64(total)
		endNS := s.EndNS
		if endNS == 0 {
			endNS = tr.EndNS
		}
		endFrac := float64(endNS-tr.StartNS) / float64(total)
		lo := int(startFrac * barWidth)
		hi := int(endFrac * barWidth)
		if lo < 0 {
			lo = 0
		}
		if hi > barWidth {
			hi = barWidth
		}
		if hi <= lo {
			hi = lo + 1
			if hi > barWidth {
				lo, hi = barWidth-1, barWidth
			}
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("=", hi-lo) + strings.Repeat(" ", barWidth-hi)
		marker := byte('=')
		if s.EndNS == s.StartNS {
			marker = '|'
		}
		if marker == '|' {
			barB := []byte(bar)
			barB[lo] = '|'
			for i := lo + 1; i < hi; i++ {
				barB[i] = ' '
			}
			bar = string(barB)
		}

		label := s.Name
		if !s.Link.IsZero() {
			label += " -> " + s.Link.String()[:8]
		}
		var extra []string
		if s.Status != "" && s.Status != StatusOK {
			extra = append(extra, s.Status)
		}
		for _, a := range s.Attrs {
			extra = append(extra, a.Key+"="+a.Value)
		}
		suffix := ""
		if len(extra) > 0 {
			suffix = "  [" + strings.Join(extra, " ") + "]"
		}
		dur := time.Duration(endNS - s.StartNS)
		fmt.Fprintf(w, "  [%s] %*s%-*s %10s%s\n",
			bar, 2*depth, "", 34-2*depth, clip(label, 34-2*depth), dur, suffix)
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	for _, r := range buildTree(tr) {
		walk(r, 0)
	}
}

func clip(s string, n int) string {
	if n < 4 {
		n = 4
	}
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// WriteList renders a one-line-per-trace summary (the /tracez index body).
func WriteList(w io.Writer, header string, traces []*Trace) {
	if len(traces) == 0 {
		return
	}
	fmt.Fprintf(w, "%s\n", header)
	for _, tr := range traces {
		root := "?"
		if len(tr.Spans) > 0 {
			root = tr.Spans[0].Name
		}
		fmt.Fprintf(w, "  %s  %-8s  %-8s  %10s  %3d spans  %s\n",
			tr.ID, tr.Status, tr.KeepReason, time.Duration(tr.DurationNS()), len(tr.Spans), root)
	}
}
