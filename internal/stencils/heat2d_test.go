package stencils

import (
	"testing"

	"pochoir"
)

func TestHeat2DPeriodicAllPaths(t *testing.T) {
	f := NewHeat2DFactory(true)
	checkAllPaths(t, func() Instance { return f.New([]int{59, 47}, 33) }, true)
}

func TestHeat2DNonperiodicAllPaths(t *testing.T) {
	f := NewHeat2DFactory(false)
	checkAllPaths(t, func() Instance { return f.New([]int{48, 52}, 30) }, true)
}

func TestHeat2DNoInteriorAblation(t *testing.T) {
	f := NewHeat2DFactory(true)
	ref := f.New([]int{40, 40}, 20).LoopsSerial().Run()
	inst := f.New([]int{40, 40}, 20).(*heat2D)
	got := inst.PochoirNoInterior(pochoir.Options{}).Run()
	agree(t, "Heat2p/NoInterior", ref, got, true)
}

func TestHeat2DMacroShadow(t *testing.T) {
	f := NewHeat2DFactory(true)
	ref := f.New([]int{40, 40}, 20).LoopsSerial().Run()
	inst := f.New([]int{40, 40}, 20).(*heat2D)
	got := inst.PochoirMacroShadow(pochoir.Options{}).Run()
	agree(t, "Heat2p/macro-shadow", ref, got, true)
}

func TestHeat2DOddSizes(t *testing.T) {
	// Sizes that defeat power-of-two cutting patterns.
	f := NewHeat2DFactory(true)
	ref := f.New([]int{17, 23}, 11).LoopsSerial().Run()
	got := f.New([]int{17, 23}, 11).Pochoir(pochoir.Options{Grain: 1}).Run()
	agree(t, "Heat2p/odd", ref, got, true)
}
