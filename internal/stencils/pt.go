package stencils

import (
	"pochoir"
	"pochoir/internal/loops"
)

// The Fig. 5 kernels: the Berkeley autotuner's 3D 7-point and 27-point
// stencils [8,41] on a nonperiodic grid with ghost cells. The 7-point
// stencil performs 8 floating-point operations per point, the 27-point
// stencil 30, matching the paper's accounting.

const (
	ptAlpha = 0.4   // center weight
	ptBeta  = 0.1   // face weight
	ptGamma = 0.02  // edge weight (27-point only)
	ptDelta = 0.005 // corner weight (27-point only)
)

func init() {
	register(NewPt7Factory())
	register(NewPt27Factory())
}

// NewPt7Factory returns the 3D 7-point benchmark of Fig. 5.
func NewPt7Factory() Factory {
	return Factory{
		Name:       "3D 7-point",
		Order:      11,
		Dims:       3,
		PaperSizes: []int{258, 258, 258},
		PaperSteps: 200,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{128, 128, 128}, 50)
			return &pt{sz: [3]int{sizes[0], sizes[1], sizes[2]}, steps: steps, corners: false}
		},
		Shape: func() *pochoir.Shape { return PtShape(false) },
	}
}

// NewPt27Factory returns the 3D 27-point benchmark of Fig. 5.
func NewPt27Factory() Factory {
	return Factory{
		Name:       "3D 27-point",
		Order:      12,
		Dims:       3,
		PaperSizes: []int{258, 258, 258},
		PaperSteps: 200,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{128, 128, 128}, 50)
			return &pt{sz: [3]int{sizes[0], sizes[1], sizes[2]}, steps: steps, corners: true}
		},
		Shape: func() *pochoir.Shape { return PtShape(true) },
	}
}

type pt struct {
	sz      [3]int
	steps   int
	corners bool // false: 7-point; true: 27-point

	st *pochoir.Stencil[float64]
	u  *pochoir.Array[float64]

	cur, next []float64
}

func (p *pt) Name() string {
	if p.corners {
		return "3D 27-point"
	}
	return "3D 7-point"
}
func (p *pt) Dims() int     { return 3 }
func (p *pt) Sizes() []int  { return p.sz[:] }
func (p *pt) Steps() int    { return p.steps }
func (p *pt) Points() int64 { return prod(p.sz[:]) }
func (p *pt) FlopsPerPoint() float64 {
	if p.corners {
		return 30
	}
	return 8
}

// PtShape returns the 7-point or 27-point shape.
func PtShape(corners bool) *pochoir.Shape {
	cells := [][]int{{1, 0, 0, 0}}
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				nz := abs(dx) + abs(dy) + abs(dz)
				if !corners && nz > 1 {
					continue
				}
				cells = append(cells, []int{0, dx, dy, dz})
			}
		}
	}
	return pochoir.MustShape(3, cells)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (p *pt) setupPochoir() {
	sh := PtShape(p.corners)
	p.st = pochoir.New[float64](sh)
	p.u = pochoir.MustArray[float64](sh.Depth(), p.sz[0], p.sz[1], p.sz[2])
	p.u.RegisterBoundary(pochoir.ZeroBoundary[float64]())
	p.st.MustRegisterArray(p.u)
	init := make([]float64, p.Points())
	fillRand(init, 7000)
	if err := p.u.CopyIn(0, init); err != nil {
		panic(err)
	}
}

func (p *pt) pointKernel() pochoir.Kernel {
	u := p.u
	if !p.corners {
		return pochoir.K3(func(t, x, y, z int) {
			u.Set(t+1, ptAlpha*u.Get(t, x, y, z)+
				ptBeta*(u.Get(t, x+1, y, z)+u.Get(t, x-1, y, z)+
					u.Get(t, x, y+1, z)+u.Get(t, x, y-1, z)+
					u.Get(t, x, y, z+1)+u.Get(t, x, y, z-1)), x, y, z)
		})
	}
	return pochoir.K3(func(t, x, y, z int) {
		faces := u.Get(t, x+1, y, z) + u.Get(t, x-1, y, z) +
			u.Get(t, x, y+1, z) + u.Get(t, x, y-1, z) +
			u.Get(t, x, y, z+1) + u.Get(t, x, y, z-1)
		edges := u.Get(t, x+1, y+1, z) + u.Get(t, x+1, y-1, z) +
			u.Get(t, x-1, y+1, z) + u.Get(t, x-1, y-1, z) +
			u.Get(t, x+1, y, z+1) + u.Get(t, x+1, y, z-1) +
			u.Get(t, x-1, y, z+1) + u.Get(t, x-1, y, z-1) +
			u.Get(t, x, y+1, z+1) + u.Get(t, x, y+1, z-1) +
			u.Get(t, x, y-1, z+1) + u.Get(t, x, y-1, z-1)
		corners := u.Get(t, x+1, y+1, z+1) + u.Get(t, x+1, y+1, z-1) +
			u.Get(t, x+1, y-1, z+1) + u.Get(t, x+1, y-1, z-1) +
			u.Get(t, x-1, y+1, z+1) + u.Get(t, x-1, y+1, z-1) +
			u.Get(t, x-1, y-1, z+1) + u.Get(t, x-1, y-1, z-1)
		u.Set(t+1, ptAlpha*u.Get(t, x, y, z)+ptBeta*faces+ptGamma*edges+ptDelta*corners, x, y, z)
	})
}

// update7At and update27 are the shared per-row inner loops: identical code
// runs in the interior clone (on Pochoir slots) and the loop baseline (on
// padded buffers), guaranteeing bit-identical results.
func update27(dst []float64, r []float64, base, s0, s1 int) {
	for i := range dst {
		p := base + i
		faces := r[p+s0] + r[p-s0] + r[p+s1] + r[p-s1] + r[p+1] + r[p-1]
		edges := r[p+s0+s1] + r[p+s0-s1] + r[p-s0+s1] + r[p-s0-s1] +
			r[p+s0+1] + r[p+s0-1] + r[p-s0+1] + r[p-s0-1] +
			r[p+s1+1] + r[p+s1-1] + r[p-s1+1] + r[p-s1-1]
		corners := r[p+s0+s1+1] + r[p+s0+s1-1] + r[p+s0-s1+1] + r[p+s0-s1-1] +
			r[p-s0+s1+1] + r[p-s0+s1-1] + r[p-s0-s1+1] + r[p-s0-s1-1]
		dst[i] = ptAlpha*r[p] + ptBeta*faces + ptGamma*edges + ptDelta*corners
	}
}

func update7At(dst []float64, r []float64, base, s0, s1 int) {
	for i := range dst {
		p := base + i
		dst[i] = ptAlpha*r[p] + ptBeta*(r[p+s0]+r[p-s0]+r[p+s1]+r[p-s1]+r[p+1]+r[p-1])
	}
}

func (p *pt) interiorBase() pochoir.BaseFunc {
	u := p.u
	s0, s1 := u.Stride(0), u.Stride(1)
	return func(z pochoir.Zoid) {
		var lo, hi [3]int
		for i := 0; i < 3; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		for t := z.T0; t < z.T1; t++ {
			w := u.Slot(t)
			r := u.Slot(t - 1)
			for x := lo[0]; x < hi[0]; x++ {
				for y := lo[1]; y < hi[1]; y++ {
					base := x*s0 + y*s1 + lo[2]
					dst := w[base : base+hi[2]-lo[2]]
					if p.corners {
						update27(dst, r, base, s0, s1)
					} else {
						update7At(dst, r, base, s0, s1)
					}
				}
			}
			for i := 0; i < 3; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}
}

// boundaryBase is the specialized boundary clone. Because the ≥3D
// coarsening heuristic never cuts the unit-stride dimension, every zoid
// touches the z edges and this clone carries most of the work, so it must
// run at near-interior speed: for each (x,y) row it selects the nine
// neighbor rows once — substituting a shared all-zeros row for rows that
// fall off the grid, which is exactly the zero-Dirichlet boundary value —
// and then the z-interior segment runs branch-free; only the two z-end
// points take per-access checks.
func (p *pt) boundaryBase() pochoir.BaseFunc {
	u := p.u
	s0, s1 := u.Stride(0), u.Stride(1)
	n0, n1, n2 := p.sz[0], p.sz[1], p.sz[2]
	zeros := make([]float64, n2) // reads of off-grid rows see the zero halo
	generic := p.st.GenericBase(p.pointKernel())
	return func(z pochoir.Zoid) {
		if z.Lo[2] != 0 || z.Hi[2] != n2 || z.DLo[2] != 0 || z.DHi[2] != 0 {
			// Only possible under non-default coarsening that cuts the
			// unit-stride dimension; correctness over speed.
			generic(z)
			return
		}
		var lo, hi [3]int
		for i := 0; i < 3; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		for t := z.T0; t < z.T1; t++ {
			w := u.Slot(t)
			r := u.Slot(t - 1)
			// row returns the z-row at true coordinates (i,j), shifted so
			// that row[k+1] is the value at z=k; off-grid rows read zero.
			row := func(i, j int) []float64 {
				if i < 0 || i >= n0 || j < 0 || j >= n1 {
					return zeros
				}
				base := i*s0 + j*s1
				return r[base : base+n2 : base+n2]
			}
			at := func(g []float64, k int) float64 {
				if k < 0 || k >= n2 {
					return 0
				}
				return g[k]
			}
			for x := lo[0]; x < hi[0]; x++ {
				tx := mod(x, n0)
				for y := lo[1]; y < hi[1]; y++ {
					ty := mod(y, n1)
					// The unit-stride dimension is never cut, so this
					// zoid spans z = [0, n2) with zero slopes.
					cc := row(tx, ty)
					xm, xp := row(tx-1, ty), row(tx+1, ty)
					ym, yp := row(tx, ty-1), row(tx, ty+1)
					dst := w[tx*s0+ty*s1 : tx*s0+ty*s1+n2]
					if !p.corners {
						for k := 0; k < n2; k++ {
							dst[k] = ptAlpha*cc[k] + ptBeta*(xp[k]+xm[k]+yp[k]+ym[k]+at(cc, k+1)+at(cc, k-1))
						}
						continue
					}
					mm, mp := row(tx-1, ty-1), row(tx-1, ty+1)
					pm, pp := row(tx+1, ty-1), row(tx+1, ty+1)
					for k := 0; k < n2; k++ {
						faces := xp[k] + xm[k] + yp[k] + ym[k] + at(cc, k+1) + at(cc, k-1)
						edges := pp[k] + pm[k] + mp[k] + mm[k] +
							at(xp, k+1) + at(xp, k-1) + at(xm, k+1) + at(xm, k-1) +
							at(yp, k+1) + at(yp, k-1) + at(ym, k+1) + at(ym, k-1)
						corners := at(pp, k+1) + at(pp, k-1) + at(pm, k+1) + at(pm, k-1) +
							at(mp, k+1) + at(mp, k-1) + at(mm, k+1) + at(mm, k-1)
						dst[k] = ptAlpha*cc[k] + ptBeta*faces + ptGamma*edges + ptDelta*corners
					}
				}
			}
			for i := 0; i < 3; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}
}

func (p *pt) pochoirResult() []float64 {
	out := make([]float64, p.Points())
	if err := p.u.CopyOut(p.steps, out); err != nil {
		panic(err)
	}
	return out
}

func (p *pt) Pochoir(opts pochoir.Options) Job {
	return Job{
		Setup: func() { p.setupPochoir() },
		Compute: func() {
			p.st.SetOptions(opts)
			b := pochoir.BaseKernels{
				Interior: p.interiorBase(),
				Boundary: p.boundaryBase(),
			}
			if err := p.st.RunSpecialized(p.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return p.pochoirResult() },
	}
}

func (p *pt) PochoirGeneric(opts pochoir.Options) Job {
	return Job{
		Setup: func() { p.setupPochoir() },
		Compute: func() {
			p.st.SetOptions(opts)
			if err := p.st.Run(p.steps, p.pointKernel()); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return p.pochoirResult() },
	}
}

// ---- LOOPS baseline (ghost cells) ----

func (p *pt) padded() (q [3]int) {
	for i := 0; i < 3; i++ {
		q[i] = p.sz[i] + 2
	}
	return q
}

func (p *pt) setupLoops() {
	q := p.padded()
	n := q[0] * q[1] * q[2]
	p.cur = make([]float64, n)
	p.next = make([]float64, n)
	init := make([]float64, p.Points())
	fillRand(init, 7000)
	q1, q2 := q[1]*q[2], q[2]
	for x := 0; x < p.sz[0]; x++ {
		for y := 0; y < p.sz[1]; y++ {
			src := (x*p.sz[1] + y) * p.sz[2]
			dst := (x+1)*q1 + (y+1)*q2 + 1
			copy(p.cur[dst:dst+p.sz[2]], init[src:src+p.sz[2]])
		}
	}
}

func (p *pt) loopsCompute(parallel bool) {
	q := p.padded()
	q1, q2 := q[1]*q[2], q[2]
	loops.Run(0, p.steps, parallel, p.sz[0], 1, func(t, x0, x1 int) {
		cur, next := p.cur, p.next
		if t%2 == 1 {
			cur, next = next, cur
		}
		for x := x0; x < x1; x++ {
			for y := 0; y < p.sz[1]; y++ {
				base := (x+1)*q1 + (y+1)*q2 + 1
				dst := next[base : base+p.sz[2]]
				if p.corners {
					update27(dst, cur, base, q1, q2)
				} else {
					update7At(dst, cur, base, q1, q2)
				}
			}
		}
	})
}

func (p *pt) loopsResult() []float64 {
	final := p.cur
	if p.steps%2 == 1 {
		final = p.next
	}
	q := p.padded()
	q1, q2 := q[1]*q[2], q[2]
	out := make([]float64, p.Points())
	for x := 0; x < p.sz[0]; x++ {
		for y := 0; y < p.sz[1]; y++ {
			dst := (x*p.sz[1] + y) * p.sz[2]
			src := (x+1)*q1 + (y+1)*q2 + 1
			copy(out[dst:dst+p.sz[2]], final[src:src+p.sz[2]])
		}
	}
	return out
}

func (p *pt) LoopsSerial() Job {
	return Job{Setup: p.setupLoops, Compute: func() { p.loopsCompute(false) }, Result: p.loopsResult}
}

func (p *pt) LoopsParallel() Job {
	return Job{Setup: p.setupLoops, Compute: func() { p.loopsCompute(true) }, Result: p.loopsResult}
}
