package stencils

import (
	"pochoir"
	"pochoir/internal/loops"
)

// Heat 4D (Fig. 3 row "Heat 4"): the 9-point star Jacobi update on a
// nonperiodic 4D grid,
//
//	u(t+1,p) = u(t,p) + sum_d CD*(u(t,p+e_d) - 2u(t,p) + u(t,p-e_d)).
//
// The loop baseline uses ghost cells (a zero halo), per the paper's
// treatment of nonperiodic stencils.

const heat4DC = 0.0625

func init() { register(NewHeat4DFactory()) }

// NewHeat4DFactory returns the Heat 4 benchmark.
func NewHeat4DFactory() Factory {
	return Factory{
		Name:       "Heat 4",
		Order:      3,
		Dims:       4,
		PaperSizes: []int{150, 150, 150, 150},
		PaperSteps: 100,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{40, 40, 40, 40}, 20)
			return &heat4D{sz: [4]int{sizes[0], sizes[1], sizes[2], sizes[3]}, steps: steps}
		},
		Shape: Heat4DShape,
	}
}

type heat4D struct {
	sz    [4]int
	steps int

	st *pochoir.Stencil[float64]
	u  *pochoir.Array[float64]

	cur, next []float64 // padded loop buffers
}

func (h *heat4D) Name() string           { return "Heat 4" }
func (h *heat4D) Dims() int              { return 4 }
func (h *heat4D) Sizes() []int           { return h.sz[:] }
func (h *heat4D) Steps() int             { return h.steps }
func (h *heat4D) Points() int64          { return prod(h.sz[:]) }
func (h *heat4D) FlopsPerPoint() float64 { return 20 }

// Heat4DShape is the 9-point star shape.
func Heat4DShape() *pochoir.Shape {
	cells := [][]int{{1, 0, 0, 0, 0}, {0, 0, 0, 0, 0}}
	for d := 0; d < 4; d++ {
		for _, s := range []int{1, -1} {
			c := []int{0, 0, 0, 0, 0}
			c[1+d] = s
			cells = append(cells, c)
		}
	}
	return pochoir.MustShape(4, cells)
}

func (h *heat4D) setupPochoir() {
	sh := Heat4DShape()
	h.st = pochoir.New[float64](sh)
	h.u = pochoir.MustArray[float64](sh.Depth(), h.sz[0], h.sz[1], h.sz[2], h.sz[3])
	h.u.RegisterBoundary(pochoir.ZeroBoundary[float64]())
	h.st.MustRegisterArray(h.u)
	init := make([]float64, h.Points())
	fillRand(init, 4000)
	if err := h.u.CopyIn(0, init); err != nil {
		panic(err)
	}
}

func (h *heat4D) pointKernel() pochoir.Kernel {
	u := h.u
	return pochoir.K4(func(t, a, b, c, d int) {
		v := u.Get(t, a, b, c, d)
		u.Set(t+1, v+
			heat4DC*(u.Get(t, a+1, b, c, d)-2*v+u.Get(t, a-1, b, c, d))+
			heat4DC*(u.Get(t, a, b+1, c, d)-2*v+u.Get(t, a, b-1, c, d))+
			heat4DC*(u.Get(t, a, b, c+1, d)-2*v+u.Get(t, a, b, c-1, d))+
			heat4DC*(u.Get(t, a, b, c, d+1)-2*v+u.Get(t, a, b, c, d-1)), a, b, c, d)
	})
}

func (h *heat4D) interiorBase() pochoir.BaseFunc {
	u := h.u
	s0, s1, s2 := u.Stride(0), u.Stride(1), u.Stride(2)
	return func(z pochoir.Zoid) {
		var lo, hi [4]int
		for i := 0; i < 4; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		for t := z.T0; t < z.T1; t++ {
			w := u.Slot(t)
			r := u.Slot(t - 1)
			for a := lo[0]; a < hi[0]; a++ {
				for b := lo[1]; b < hi[1]; b++ {
					for c := lo[2]; c < hi[2]; c++ {
						base := a*s0 + b*s1 + c*s2
						dst := w[base+lo[3] : base+hi[3]]
						cc := r[base+lo[3]:]
						am := r[base-s0+lo[3]:]
						ap := r[base+s0+lo[3]:]
						bm := r[base-s1+lo[3]:]
						bp := r[base+s1+lo[3]:]
						cm := r[base-s2+lo[3]:]
						cp := r[base+s2+lo[3]:]
						dm := r[base+lo[3]-1:]
						dp := r[base+lo[3]+1:]
						for i := range dst {
							v := cc[i]
							dst[i] = v +
								heat4DC*(ap[i]-2*v+am[i]) +
								heat4DC*(bp[i]-2*v+bm[i]) +
								heat4DC*(cp[i]-2*v+cm[i]) +
								heat4DC*(dp[i]-2*v+dm[i])
						}
					}
				}
			}
			for i := 0; i < 4; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}
}

// boundaryBase is the specialized boundary clone. As in the 3D kernels,
// the unit-stride dimension is never cut, so this clone carries most of
// the work: each (a,b,c) row selects its six neighbor rows once (an
// all-zeros row standing in for rows off the grid — the zero Dirichlet
// value), and only the two d-end points take per-access checks.
func (h *heat4D) boundaryBase() pochoir.BaseFunc {
	u := h.u
	s0, s1, s2 := u.Stride(0), u.Stride(1), u.Stride(2)
	n := h.sz
	zeros := make([]float64, n[3])
	generic := h.st.GenericBase(h.pointKernel())
	return func(z pochoir.Zoid) {
		if z.Lo[3] != 0 || z.Hi[3] != n[3] || z.DLo[3] != 0 || z.DHi[3] != 0 {
			generic(z) // only under non-default coarsening
			return
		}
		var lo, hi [4]int
		for i := 0; i < 4; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		for t := z.T0; t < z.T1; t++ {
			w := u.Slot(t)
			r := u.Slot(t - 1)
			row := func(i, j, k int) []float64 {
				if i < 0 || i >= n[0] || j < 0 || j >= n[1] || k < 0 || k >= n[2] {
					return zeros
				}
				base := i*s0 + j*s1 + k*s2
				return r[base : base+n[3] : base+n[3]]
			}
			at := func(g []float64, k int) float64 {
				if k < 0 || k >= n[3] {
					return 0
				}
				return g[k]
			}
			for a := lo[0]; a < hi[0]; a++ {
				ta := mod(a, n[0])
				for b := lo[1]; b < hi[1]; b++ {
					tb := mod(b, n[1])
					for c := lo[2]; c < hi[2]; c++ {
						tc := mod(c, n[2])
						base := ta*s0 + tb*s1 + tc*s2
						dst := w[base : base+n[3]]
						cc := r[base : base+n[3]]
						am, ap := row(ta-1, tb, tc), row(ta+1, tb, tc)
						bm, bp := row(ta, tb-1, tc), row(ta, tb+1, tc)
						cm, cp := row(ta, tb, tc-1), row(ta, tb, tc+1)
						for k := 0; k < n[3]; k++ {
							v := cc[k]
							dst[k] = v +
								heat4DC*(ap[k]-2*v+am[k]) +
								heat4DC*(bp[k]-2*v+bm[k]) +
								heat4DC*(cp[k]-2*v+cm[k]) +
								heat4DC*(at(cc, k+1)-2*v+at(cc, k-1))
						}
					}
				}
			}
			for i := 0; i < 4; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}
}

func (h *heat4D) pochoirResult() []float64 {
	out := make([]float64, h.Points())
	if err := h.u.CopyOut(h.steps, out); err != nil {
		panic(err)
	}
	return out
}

func (h *heat4D) Pochoir(opts pochoir.Options) Job {
	return Job{
		Setup: func() { h.setupPochoir() },
		Compute: func() {
			h.st.SetOptions(opts)
			b := pochoir.BaseKernels{
				Interior: h.interiorBase(),
				Boundary: h.boundaryBase(),
			}
			if err := h.st.RunSpecialized(h.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return h.pochoirResult() },
	}
}

func (h *heat4D) PochoirGeneric(opts pochoir.Options) Job {
	return Job{
		Setup: func() { h.setupPochoir() },
		Compute: func() {
			h.st.SetOptions(opts)
			if err := h.st.Run(h.steps, h.pointKernel()); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return h.pochoirResult() },
	}
}

// ---- LOOPS baseline (ghost cells) ----

func (h *heat4D) padded() [4]int {
	return [4]int{h.sz[0] + 2, h.sz[1] + 2, h.sz[2] + 2, h.sz[3] + 2}
}

func (h *heat4D) setupLoops() {
	p := h.padded()
	n := p[0] * p[1] * p[2] * p[3]
	h.cur = make([]float64, n)
	h.next = make([]float64, n)
	init := make([]float64, h.Points())
	fillRand(init, 4000)
	q1, q2, q3 := p[1]*p[2]*p[3], p[2]*p[3], p[3]
	for a := 0; a < h.sz[0]; a++ {
		for b := 0; b < h.sz[1]; b++ {
			for c := 0; c < h.sz[2]; c++ {
				src := ((a*h.sz[1]+b)*h.sz[2] + c) * h.sz[3]
				dst := (a+1)*q1 + (b+1)*q2 + (c+1)*q3 + 1
				copy(h.cur[dst:dst+h.sz[3]], init[src:src+h.sz[3]])
			}
		}
	}
}

func (h *heat4D) loopsCompute(parallel bool) {
	p := h.padded()
	q1, q2, q3 := p[1]*p[2]*p[3], p[2]*p[3], p[3]
	loops.Run(0, h.steps, parallel, h.sz[0], 1, func(t, a0, a1 int) {
		cur, next := h.cur, h.next
		if t%2 == 1 {
			cur, next = next, cur
		}
		for a := a0; a < a1; a++ {
			for b := 0; b < h.sz[1]; b++ {
				for c := 0; c < h.sz[2]; c++ {
					base := (a+1)*q1 + (b+1)*q2 + (c+1)*q3 + 1
					dst := next[base : base+h.sz[3]]
					cc := cur[base:]
					am := cur[base-q1:]
					ap := cur[base+q1:]
					bm := cur[base-q2:]
					bp := cur[base+q2:]
					cm := cur[base-q3:]
					cp := cur[base+q3:]
					dm := cur[base-1:]
					dp := cur[base+1:]
					for i := range dst {
						v := cc[i]
						dst[i] = v +
							heat4DC*(ap[i]-2*v+am[i]) +
							heat4DC*(bp[i]-2*v+bm[i]) +
							heat4DC*(cp[i]-2*v+cm[i]) +
							heat4DC*(dp[i]-2*v+dm[i])
					}
				}
			}
		}
	})
}

func (h *heat4D) loopsResult() []float64 {
	final := h.cur
	if h.steps%2 == 1 {
		final = h.next
	}
	p := h.padded()
	q1, q2, q3 := p[1]*p[2]*p[3], p[2]*p[3], p[3]
	out := make([]float64, h.Points())
	for a := 0; a < h.sz[0]; a++ {
		for b := 0; b < h.sz[1]; b++ {
			for c := 0; c < h.sz[2]; c++ {
				dst := ((a*h.sz[1]+b)*h.sz[2] + c) * h.sz[3]
				src := (a+1)*q1 + (b+1)*q2 + (c+1)*q3 + 1
				copy(out[dst:dst+h.sz[3]], final[src:src+h.sz[3]])
			}
		}
	}
	return out
}

func (h *heat4D) LoopsSerial() Job {
	return Job{Setup: h.setupLoops, Compute: func() { h.loopsCompute(false) }, Result: h.loopsResult}
}

func (h *heat4D) LoopsParallel() Job {
	return Job{Setup: h.setupLoops, Compute: func() { h.loopsCompute(true) }, Result: h.loopsResult}
}
