package stencils

import (
	"testing"

	"pochoir"
)

func TestLifeAllPaths(t *testing.T) {
	f := NewLifeFactory()
	checkAllPaths(t, func() Instance { return f.New([]int{53, 49}, 28) }, true)
}

// TestLifeGlider verifies Life semantics absolutely: a glider on an empty
// torus translates by (1,1) every 4 generations.
func TestLifeGlider(t *testing.T) {
	const N, steps = 16, 8 // two full glider periods
	sh := LifeShape()
	st := pochoir.New[uint8](sh)
	u := pochoir.MustArray[uint8](sh.Depth(), N, N)
	u.RegisterBoundary(pochoir.PeriodicBoundary[uint8]())
	st.MustRegisterArray(u)
	glider := [][2]int{{1, 2}, {2, 3}, {3, 1}, {3, 2}, {3, 3}}
	for _, p := range glider {
		u.Set(0, 1, p[0], p[1])
	}
	kern := pochoir.K2(func(tt, x, y int) {
		n := u.Get(tt, x-1, y-1) + u.Get(tt, x-1, y) + u.Get(tt, x-1, y+1) +
			u.Get(tt, x, y-1) + u.Get(tt, x, y+1) +
			u.Get(tt, x+1, y-1) + u.Get(tt, x+1, y) + u.Get(tt, x+1, y+1)
		u.Set(tt+1, lifeRule(u.Get(tt, x, y), n), x, y)
	})
	if err := st.Run(steps, kern); err != nil {
		t.Fatal(err)
	}
	live := 0
	for x := 0; x < N; x++ {
		for y := 0; y < N; y++ {
			v := u.Get(steps, x, y)
			live += int(v)
			want := uint8(0)
			for _, p := range glider {
				if x == p[0]+steps/4 && y == p[1]+steps/4 {
					want = 1
				}
			}
			if v != want {
				t.Fatalf("cell (%d,%d) = %d, want %d", x, y, v, want)
			}
		}
	}
	if live != 5 {
		t.Fatalf("glider should have 5 live cells, got %d", live)
	}
}

func TestWave3DAllPaths(t *testing.T) {
	f := NewWave3DFactory()
	checkAllPaths(t, func() Instance { return f.New([]int{22, 18, 20}, 13) }, true)
}
