package stencils

import (
	"pochoir"
	"pochoir/internal/loops"
)

// RNA (Fig. 3 row "RNA 2"): RNA secondary-structure prediction as a 2D
// stencil. Cell (i,j) of the DP table holds the maximum number of
// complementary base pairings in the subsequence [i..j]; spans are
// finalized in increasing order, one anti-diagonal per time step:
//
//	N(i,j) = max(N(i+1,j), N(i,j-1), N(i+1,j-1) + pair(i,j))
//
// with pair(i,j) allowed when the bases are complementary and j-i >= 2.
//
// Substitution note: full RNA folding (the paper cites Akutsu's pseudoknot
// DP) includes an O(n) bifurcation term per cell, which is not a
// finite-shape stencil; like the paper's own implementation we run the
// stencil-shaped recurrence, in which each sweep touches the entire n x n
// grid but only the active diagonal changes — giving exactly the behaviour
// Fig. 3 reports for RNA: a small grid, a kernel dominated by branch
// conditionals, and limited parallelism.

func init() { register(NewRNAFactory()) }

// NewRNAFactory returns the RNA 2 benchmark.
func NewRNAFactory() Factory {
	return Factory{
		Name:       "RNA 2",
		Order:      7,
		Dims:       2,
		PaperSizes: []int{300, 300},
		PaperSteps: 900,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{150, 150}, 450)
			return &rna{n: sizes[0], steps: steps}
		},
		Shape: RNAShape,
	}
}

type rna struct {
	n     int // sequence length; the grid is n x n
	steps int

	seq []byte

	st *pochoir.Stencil[float64]
	u  *pochoir.Array[float64]

	cur, next []float64
}

func (r *rna) Name() string           { return "RNA 2" }
func (r *rna) Dims() int              { return 2 }
func (r *rna) Sizes() []int           { return []int{r.n, r.n} }
func (r *rna) Steps() int             { return r.steps }
func (r *rna) Points() int64          { return int64(r.n) * int64(r.n) }
func (r *rna) FlopsPerPoint() float64 { return 0 }

// RNAShape reads (i,j), (i+1,j), (i,j-1), (i+1,j-1) at the previous step.
func RNAShape() *pochoir.Shape {
	return pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, 0, -1}, {0, 1, -1},
	})
}

func (r *rna) sequence() {
	if r.seq == nil {
		r.seq = randomSeq(r.n, 9200) // bases 0..3; (0,3) and (1,2) pair
	}
}

// pair reports whether bases i and j may pair (complementary, hairpin >= 2).
func (r *rna) pair(i, j int) bool {
	return j-i >= 2 && r.seq[i]+r.seq[j] == 3
}

// cellRNA advances cell (i,j) to sweep w: the active diagonal j-i == w is
// computed from its three predecessors; everything else carries forward.
func (r *rna) cellRNA(w, i, j int, at func(ii, jj int) float64) float64 {
	if j-i != w {
		return at(i, j) // not on the active diagonal: copy forward
	}
	best := at(i+1, j)
	if v := at(i, j-1); v > best {
		best = v
	}
	if r.pair(i, j) {
		if v := at(i+1, j-1) + 1; v > best {
			best = v
		}
	}
	return best
}

func (r *rna) setupPochoir() {
	r.sequence()
	sh := RNAShape()
	r.st = pochoir.New[float64](sh)
	r.u = pochoir.MustArray[float64](sh.Depth(), r.n, r.n)
	r.u.RegisterBoundary(pochoir.ZeroBoundary[float64]())
	r.st.MustRegisterArray(r.u)
	// Sweep 0 state: all zeros (spans <= 0 score 0).
}

func (r *rna) pointKernel() pochoir.Kernel {
	u := r.u
	return pochoir.K2(func(t, i, j int) {
		u.Set(t+1, r.cellRNA(t+1, i, j, func(ii, jj int) float64 {
			return u.Get(t, ii, jj)
		}), i, j)
	})
}

func (r *rna) interiorBase() pochoir.BaseFunc {
	u := r.u
	ys := u.Stride(0)
	return func(z pochoir.Zoid) {
		lo0, hi0 := z.Lo[0], z.Hi[0]
		lo1, hi1 := z.Lo[1], z.Hi[1]
		for t := z.T0; t < z.T1; t++ {
			w := u.Slot(t)
			rd := u.Slot(t - 1)
			for i := lo0; i < hi0; i++ {
				row := i * ys
				rowp := row + ys
				for j := lo1; j < hi1; j++ {
					if j-i != t {
						w[row+j] = rd[row+j]
						continue
					}
					best := rd[rowp+j]
					if v := rd[row+j-1]; v > best {
						best = v
					}
					if r.pair(i, j) {
						if v := rd[rowp+j-1] + 1; v > best {
							best = v
						}
					}
					w[row+j] = best
				}
			}
			lo0 += z.DLo[0]
			hi0 += z.DHi[0]
			lo1 += z.DLo[1]
			hi1 += z.DHi[1]
		}
	}
}

// boundaryBase is the specialized boundary clone: virtual coordinates
// reduced modulo the grid, off-grid reads seeing the zero boundary value.
func (r *rna) boundaryBase() pochoir.BaseFunc {
	u := r.u
	ys := u.Stride(0)
	n := r.n
	return func(z pochoir.Zoid) {
		lo0, hi0 := z.Lo[0], z.Hi[0]
		lo1, hi1 := z.Lo[1], z.Hi[1]
		for t := z.T0; t < z.T1; t++ {
			w := u.Slot(t)
			rd := u.Slot(t - 1)
			for i := lo0; i < hi0; i++ {
				ti := mod(i, n)
				row := ti * ys
				rowOK := ti+1 < n
				for j := lo1; j < hi1; j++ {
					tj := mod(j, n)
					if tj-ti != t {
						w[row+tj] = rd[row+tj]
						continue
					}
					best := 0.0
					if rowOK {
						best = rd[row+ys+tj]
					}
					if tj-1 >= 0 {
						if v := rd[row+tj-1]; v > best {
							best = v
						}
					}
					if r.pair(ti, tj) {
						d := 0.0
						if rowOK && tj-1 >= 0 {
							d = rd[row+ys+tj-1]
						}
						if v := d + 1; v > best {
							best = v
						}
					}
					w[row+tj] = best
				}
			}
			lo0 += z.DLo[0]
			hi0 += z.DHi[0]
			lo1 += z.DLo[1]
			hi1 += z.DHi[1]
		}
	}
}

func (r *rna) pochoirResult() []float64 {
	out := make([]float64, r.Points())
	if err := r.u.CopyOut(r.steps, out); err != nil {
		panic(err)
	}
	return out
}

func (r *rna) Pochoir(opts pochoir.Options) Job {
	return Job{
		Setup: func() { r.setupPochoir() },
		Compute: func() {
			r.st.SetOptions(opts)
			b := pochoir.BaseKernels{
				Interior: r.interiorBase(),
				Boundary: r.boundaryBase(),
			}
			if err := r.st.RunSpecialized(r.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return r.pochoirResult() },
	}
}

func (r *rna) PochoirGeneric(opts pochoir.Options) Job {
	return Job{
		Setup: func() { r.setupPochoir() },
		Compute: func() {
			r.st.SetOptions(opts)
			if err := r.st.Run(r.steps, r.pointKernel()); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return r.pochoirResult() },
	}
}

// ---- LOOPS baseline ----

func (r *rna) setupLoops() {
	r.sequence()
	r.cur = make([]float64, r.Points())
	r.next = make([]float64, r.Points())
}

func (r *rna) loopsCompute(parallel bool) {
	n := r.n
	loops.Run(1, r.steps+1, parallel, n, 8, func(w, i0, i1 int) {
		cur, next := r.cur, r.next
		if w%2 == 0 {
			cur, next = next, cur
		}
		for i := i0; i < i1; i++ {
			row := i * n
			for j := 0; j < n; j++ {
				if j-i != w {
					next[row+j] = cur[row+j]
					continue
				}
				// On the active diagonal: read neighbors with
				// explicit edge guards (the off-grid value is 0).
				best := 0.0
				if i+1 < n {
					best = cur[row+n+j]
				}
				if j-1 >= 0 {
					if v := cur[row+j-1]; v > best {
						best = v
					}
				}
				if r.pair(i, j) {
					d := 0.0
					if i+1 < n && j-1 >= 0 {
						d = cur[row+n+j-1]
					}
					if v := d + 1; v > best {
						best = v
					}
				}
				next[row+j] = best
			}
		}
	})
}

func (r *rna) loopsResult() []float64 {
	final := r.cur
	if r.steps%2 == 1 {
		final = r.next
	}
	return append([]float64(nil), final...)
}

func (r *rna) LoopsSerial() Job {
	return Job{Setup: r.setupLoops, Compute: func() { r.loopsCompute(false) }, Result: r.loopsResult}
}

func (r *rna) LoopsParallel() Job {
	return Job{Setup: r.setupLoops, Compute: func() { r.loopsCompute(true) }, Result: r.loopsResult}
}

// Score returns N(0, n-1), the optimal pairing count for the whole
// sequence, valid once steps >= n-1.
func (r *rna) Score(final []float64) float64 { return final[r.n-1] }
