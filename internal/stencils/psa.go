package stencils

import (
	"pochoir"
	"pochoir/internal/loops"
)

// PSA (Fig. 3 row "PSA 1"): pairwise global sequence alignment with affine
// gap penalties (Gotoh 1982), the paper's citation [19]. Three DP matrices
//
//	M(i,j) = s(i,j) + max(M(i-1,j-1), X(i-1,j-1), Y(i-1,j-1))
//	X(i,j) = max(M(i-1,j) - open, X(i-1,j) - extend)
//	Y(i,j) = max(M(i,j-1) - open, Y(i,j-1) - extend)
//
// are computed along anti-diagonals as three 1D Pochoir arrays registered
// with one stencil object (a multi-array stencil, §2). The kernel is full
// of diamond-domain conditionals, which is exactly why the paper reports a
// modest speedup for PSA.

const (
	psaMatch    = 2.0
	psaMismatch = -1.0
	psaOpen     = 3.0
	psaExtend   = 0.5
	psaNegInf   = -1e30
)

func init() { register(NewPSAFactory()) }

// NewPSAFactory returns the PSA 1 benchmark.
func NewPSAFactory() Factory {
	return Factory{
		Name:       "PSA 1",
		Order:      8,
		Dims:       1,
		PaperSizes: []int{100000},
		PaperSteps: 200000,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{20000}, 40000)
			n := sizes[0] - 1
			m := steps + 1 - n // the final diagonal n+m == steps+1 holds (n,m)
			if m < 1 {
				m = n
			}
			return &psa{n: n, m: m, steps: steps}
		},
		Shape: PSAShape,
	}
}

type psa struct {
	n, m  int
	steps int

	seqA, seqB []byte

	st         *pochoir.Stencil[float64]
	am, ax, ay *pochoir.Array[float64]

	// Loop baseline: three values per position, diagonals mod 3.
	bm, bx, by [3][]float64
}

func (p *psa) Name() string           { return "PSA 1" }
func (p *psa) Dims() int              { return 1 }
func (p *psa) Sizes() []int           { return []int{p.n + 1} }
func (p *psa) Steps() int             { return p.steps }
func (p *psa) Points() int64          { return int64(p.n + 1) }
func (p *psa) FlopsPerPoint() float64 { return 12 }

// PSAShape: the same anti-diagonal dependency pattern as LCS.
func PSAShape() *pochoir.Shape {
	return pochoir.MustShape(1, [][]int{{1, 0}, {0, 0}, {0, -1}, {-1, -1}})
}

func (p *psa) sequences() {
	if p.seqA == nil {
		p.seqA = randomSeq(p.n, 9100)
		p.seqB = randomSeq(p.m, 9101)
	}
}

func (p *psa) score(i, j int) float64 {
	if p.seqA[i-1] == p.seqB[j-1] {
		return psaMatch
	}
	return psaMismatch
}

func max2(a, b float64) float64 {
	if a >= b {
		return a
	}
	return b
}

func max3(a, b, c float64) float64 { return max2(max2(a, b), c) }

// cellPSA computes (M,X,Y)(w,i) given accessors for the two previous
// diagonals of each matrix. Shared by all paths.
func (p *psa) cellPSA(w, i int,
	mPrev, xPrev, yPrev func(int) float64,
	mPrev2, xPrev2, yPrev2 func(int) float64) (m, x, y float64) {
	j := w - i
	switch {
	case i < 0 || j < 0 || j > p.m:
		return psaNegInf, psaNegInf, psaNegInf // exterior of the table
	case i == 0 && j == 0:
		return 0, psaNegInf, psaNegInf
	case j == 0:
		// Column 0: only a gap in B reaches here.
		return psaNegInf, -(psaOpen + float64(i-1)*psaExtend), psaNegInf
	case i == 0:
		return psaNegInf, psaNegInf, -(psaOpen + float64(j-1)*psaExtend)
	}
	m = p.score(i, j) + max3(mPrev2(i-1), xPrev2(i-1), yPrev2(i-1))
	x = max2(mPrev(i-1)-psaOpen, xPrev(i-1)-psaExtend)
	y = max2(mPrev(i)-psaOpen, yPrev(i)-psaExtend)
	return m, x, y
}

func (p *psa) setupPochoir() {
	p.sequences()
	sh := PSAShape()
	p.st = pochoir.New[float64](sh)
	p.am = pochoir.MustArray[float64](sh.Depth(), p.n+1)
	p.ax = pochoir.MustArray[float64](sh.Depth(), p.n+1)
	p.ay = pochoir.MustArray[float64](sh.Depth(), p.n+1)
	for _, a := range []*pochoir.Array[float64]{p.am, p.ax, p.ay} {
		a.RegisterBoundary(pochoir.ConstBoundary(psaNegInf))
		p.st.MustRegisterArray(a)
	}
	// Initialize diagonals 0 and 1. Every cell on them falls in one of
	// the recurrence's edge cases, so the accessors are never consulted.
	for w := 0; w <= 1; w++ {
		for i := 0; i <= p.n; i++ {
			m, x, y := p.cellPSA(w, i, nil, nil, nil, nil, nil, nil)
			p.am.Set(w, m, i)
			p.ax.Set(w, x, i)
			p.ay.Set(w, y, i)
		}
	}
}

func (p *psa) pointKernel() pochoir.Kernel {
	am, ax, ay := p.am, p.ax, p.ay
	return pochoir.K1(func(t, i int) {
		m, x, y := p.cellPSA(t+1, i,
			func(k int) float64 { return am.Get(t, k) },
			func(k int) float64 { return ax.Get(t, k) },
			func(k int) float64 { return ay.Get(t, k) },
			func(k int) float64 { return am.Get(t-1, k) },
			func(k int) float64 { return ax.Get(t-1, k) },
			func(k int) float64 { return ay.Get(t-1, k) })
		am.Set(t+1, m, i)
		ax.Set(t+1, x, i)
		ay.Set(t+1, y, i)
	})
}

func (p *psa) interiorBase() pochoir.BaseFunc {
	am, ax, ay := p.am, p.ax, p.ay
	return func(z pochoir.Zoid) {
		lo, hi := z.Lo[0], z.Hi[0]
		for t := z.T0; t < z.T1; t++ {
			wm, wx, wy := am.Slot(t), ax.Slot(t), ay.Slot(t)
			rm, rx, ry := am.Slot(t-1), ax.Slot(t-1), ay.Slot(t-1)
			rrm, rrx, rry := am.Slot(t-2), ax.Slot(t-2), ay.Slot(t-2)
			for i := lo; i < hi; i++ {
				j := t - i
				var m, x, y float64
				switch {
				case i < 0 || j < 0 || j > p.m:
					m, x, y = psaNegInf, psaNegInf, psaNegInf
				case i == 0 && j == 0:
					m, x, y = 0, psaNegInf, psaNegInf
				case j == 0:
					m, x, y = psaNegInf, -(psaOpen + float64(i-1)*psaExtend), psaNegInf
				case i == 0:
					m, x, y = psaNegInf, psaNegInf, -(psaOpen + float64(j-1)*psaExtend)
				default:
					m = p.score(i, j) + max3(rrm[i-1], rrx[i-1], rry[i-1])
					x = max2(rm[i-1]-psaOpen, rx[i-1]-psaExtend)
					y = max2(rm[i]-psaOpen, ry[i]-psaExtend)
				}
				wm[i], wx[i], wy[i] = m, x, y
			}
			lo += z.DLo[0]
			hi += z.DHi[0]
		}
	}
}

// boundaryBase is the specialized boundary clone: the interior clone with
// virtual coordinates reduced modulo the grid; the recurrence's edge cases
// cover every point whose accesses would leave the domain.
func (p *psa) boundaryBase() pochoir.BaseFunc {
	am, ax, ay := p.am, p.ax, p.ay
	n1 := p.n + 1
	return func(z pochoir.Zoid) {
		lo, hi := z.Lo[0], z.Hi[0]
		for t := z.T0; t < z.T1; t++ {
			wm, wx, wy := am.Slot(t), ax.Slot(t), ay.Slot(t)
			rm, rx, ry := am.Slot(t-1), ax.Slot(t-1), ay.Slot(t-1)
			rrm, rrx, rry := am.Slot(t-2), ax.Slot(t-2), ay.Slot(t-2)
			for i := lo; i < hi; i++ {
				ti := mod(i, n1)
				j := t - ti
				var m, x, y float64
				switch {
				case j < 0 || j > p.m:
					m, x, y = psaNegInf, psaNegInf, psaNegInf
				case ti == 0 && j == 0:
					m, x, y = 0, psaNegInf, psaNegInf
				case j == 0:
					m, x, y = psaNegInf, -(psaOpen + float64(ti-1)*psaExtend), psaNegInf
				case ti == 0:
					m, x, y = psaNegInf, psaNegInf, -(psaOpen + float64(j-1)*psaExtend)
				default:
					m = p.score(ti, j) + max3(rrm[ti-1], rrx[ti-1], rry[ti-1])
					x = max2(rm[ti-1]-psaOpen, rx[ti-1]-psaExtend)
					y = max2(rm[ti]-psaOpen, ry[ti]-psaExtend)
				}
				wm[ti], wx[ti], wy[ti] = m, x, y
			}
			lo += z.DLo[0]
			hi += z.DHi[0]
		}
	}
}

func (p *psa) pochoirResult() []float64 {
	out := make([]float64, 3*(p.n+1))
	tmp := make([]float64, p.n+1)
	for k, a := range []*pochoir.Array[float64]{p.am, p.ax, p.ay} {
		if err := a.CopyOut(p.steps+1, tmp); err != nil {
			panic(err)
		}
		copy(out[k*(p.n+1):], tmp)
	}
	return out
}

func (p *psa) Pochoir(opts pochoir.Options) Job {
	return Job{
		Setup: func() { p.setupPochoir() },
		Compute: func() {
			p.st.SetOptions(opts)
			b := pochoir.BaseKernels{
				Interior: p.interiorBase(),
				Boundary: p.boundaryBase(),
			}
			if err := p.st.RunSpecialized(p.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return p.pochoirResult() },
	}
}

func (p *psa) PochoirGeneric(opts pochoir.Options) Job {
	return Job{
		Setup: func() { p.setupPochoir() },
		Compute: func() {
			p.st.SetOptions(opts)
			if err := p.st.Run(p.steps, p.pointKernel()); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return p.pochoirResult() },
	}
}

// ---- LOOPS baseline ----

func (p *psa) setupLoops() {
	p.sequences()
	for k := 0; k < 3; k++ {
		p.bm[k] = make([]float64, p.n+1)
		p.bx[k] = make([]float64, p.n+1)
		p.by[k] = make([]float64, p.n+1)
	}
	for w := 0; w <= 1; w++ {
		for i := 0; i <= p.n; i++ {
			m, x, y := p.cellPSA(w, i, nil, nil, nil, nil, nil, nil)
			p.bm[w][i], p.bx[w][i], p.by[w][i] = m, x, y
		}
	}
}

func (p *psa) loopsCompute(parallel bool) {
	loops.Run(2, p.steps+2, parallel, p.n+1, 4096, func(w, i0, i1 int) {
		wm, wx, wy := p.bm[w%3], p.bx[w%3], p.by[w%3]
		rm, rx, ry := p.bm[(w+2)%3], p.bx[(w+2)%3], p.by[(w+2)%3]
		rrm, rrx, rry := p.bm[(w+1)%3], p.bx[(w+1)%3], p.by[(w+1)%3]
		for i := i0; i < i1; i++ {
			j := w - i
			var m, x, y float64
			switch {
			case i < 0 || j < 0 || j > p.m:
				m, x, y = psaNegInf, psaNegInf, psaNegInf
			case i == 0 && j == 0:
				m, x, y = 0, psaNegInf, psaNegInf
			case j == 0:
				m, x, y = psaNegInf, -(psaOpen + float64(i-1)*psaExtend), psaNegInf
			case i == 0:
				m, x, y = psaNegInf, psaNegInf, -(psaOpen + float64(j-1)*psaExtend)
			default:
				m = p.score(i, j) + max3(rrm[i-1], rrx[i-1], rry[i-1])
				x = max2(rm[i-1]-psaOpen, rx[i-1]-psaExtend)
				y = max2(rm[i]-psaOpen, ry[i]-psaExtend)
			}
			wm[i], wx[i], wy[i] = m, x, y
		}
	})
}

func (p *psa) loopsResult() []float64 {
	out := make([]float64, 3*(p.n+1))
	copy(out[0:], p.bm[(p.steps+1)%3])
	copy(out[p.n+1:], p.bx[(p.steps+1)%3])
	copy(out[2*(p.n+1):], p.by[(p.steps+1)%3])
	return out
}

func (p *psa) LoopsSerial() Job {
	return Job{Setup: p.setupLoops, Compute: func() { p.loopsCompute(false) }, Result: p.loopsResult}
}

func (p *psa) LoopsParallel() Job {
	return Job{Setup: p.setupLoops, Compute: func() { p.loopsCompute(true) }, Result: p.loopsResult}
}

// Score returns the global alignment score max(M,X,Y)(n,m) after a run
// reaching diagonal n+m.
func (p *psa) Score(final []float64) float64 {
	n1 := p.n + 1
	return max3(final[p.n], final[n1+p.n], final[2*n1+p.n])
}
