package stencils

import (
	"math/rand"

	"pochoir"
	"pochoir/internal/loops"
)

// LCS (Fig. 3 row "LCS 1"): longest common subsequence of two sequences via
// the classic DP
//
//	D(i,j) = 0                                  if i == 0 or j == 0
//	D(i,j) = max(D(i-1,j), D(i,j-1), D(i-1,j-1) + [A_i == B_j])
//
// expressed, as in the paper, as a 1D stencil over anti-diagonals: grid
// position i at time t holds L(t,i) = D(i, t-i), so
//
//	L(t+1,i) = max(L(t,i-1), L(t,i), L(t-1,i-1) + match(i, t+1-i)),
//
// a depth-2, slope-1 one-dimensional stencil whose kernel carries the
// diamond-domain conditionals the paper calls out for PSA/LCS.

func init() { register(NewLCSFactory()) }

// NewLCSFactory returns the LCS 1 benchmark.
func NewLCSFactory() Factory {
	return Factory{
		Name:       "LCS 1",
		Order:      9,
		Dims:       1,
		PaperSizes: []int{100000},
		PaperSteps: 200000,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{20000}, 40000)
			n := sizes[0] - 1  // sequence A length; grid holds i = 0..n
			m := steps + 1 - n // so the final diagonal n+m == steps+1 holds D(n,m)
			if m < 1 {
				m = n
			}
			return &lcs{n: n, m: m, steps: steps}
		},
		Shape: LCSShape,
	}
}

// randomSeq returns a deterministic sequence over a 4-letter alphabet.
func randomSeq(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

type lcs struct {
	n, m  int // sequence lengths
	steps int

	seqA, seqB []byte

	st *pochoir.Stencil[float64]
	l  *pochoir.Array[float64]

	buf [3][]float64 // loop baseline: diagonals rotated by t mod 3
}

func (s *lcs) Name() string           { return "LCS 1" }
func (s *lcs) Dims() int              { return 1 }
func (s *lcs) Sizes() []int           { return []int{s.n + 1} }
func (s *lcs) Steps() int             { return s.steps }
func (s *lcs) Points() int64          { return int64(s.n + 1) }
func (s *lcs) FlopsPerPoint() float64 { return 0 } // integer-valued kernel

// LCSShape: reads positions i-1 and i at t, and i-1 at t-1.
func LCSShape() *pochoir.Shape {
	return pochoir.MustShape(1, [][]int{{1, 0}, {0, 0}, {0, -1}, {-1, -1}})
}

func (s *lcs) sequences() {
	if s.seqA == nil {
		s.seqA = randomSeq(s.n, 9000)
		s.seqB = randomSeq(s.m, 9001)
	}
}

// cell computes L(t,i) from its three predecessor values, applying the
// diamond-domain conditionals. All paths share it for bit-identical output.
func (s *lcs) cell(w, i int, diagPrev func(int) float64, diag2Prev func(int) float64) float64 {
	j := w - i
	if i < 1 || j < 1 || j > s.m {
		return 0 // exterior of the DP table
	}
	best := diagPrev(i - 1) // D(i-1, j)
	if v := diagPrev(i); v > best {
		best = v // D(i, j-1)
	}
	d := diag2Prev(i - 1) // D(i-1, j-1)
	if s.seqA[i-1] == s.seqB[j-1] {
		d++
	}
	if d > best {
		best = d
	}
	return best
}

func (s *lcs) setupPochoir() {
	s.sequences()
	sh := LCSShape()
	s.st = pochoir.New[float64](sh)
	s.l = pochoir.MustArray[float64](sh.Depth(), s.n+1)
	s.l.RegisterBoundary(pochoir.ZeroBoundary[float64]())
	s.st.MustRegisterArray(s.l)
	// Diagonals 0 and 1 are all zeros (first row/column of the DP table):
	// the arrays are zero-initialized.
}

func (s *lcs) pointKernel() pochoir.Kernel {
	l := s.l
	return pochoir.K1(func(t, i int) {
		l.Set(t+1, s.cell(t+1, i,
			func(k int) float64 { return l.Get(t, k) },
			func(k int) float64 { return l.Get(t-1, k) }), i)
	})
}

func (s *lcs) interiorBase() pochoir.BaseFunc {
	l := s.l
	return func(z pochoir.Zoid) {
		lo, hi := z.Lo[0], z.Hi[0]
		for t := z.T0; t < z.T1; t++ {
			w := l.Slot(t)
			r := l.Slot(t - 1)
			rr := l.Slot(t - 2)
			for i := lo; i < hi; i++ {
				j := t - i
				if i < 1 || j < 1 || j > s.m {
					w[i] = 0
					continue
				}
				best := r[i-1]
				if r[i] > best {
					best = r[i]
				}
				d := rr[i-1]
				if s.seqA[i-1] == s.seqB[j-1] {
					d++
				}
				if d > best {
					best = d
				}
				w[i] = best
			}
			lo += z.DLo[0]
			hi += z.DHi[0]
		}
	}
}

// boundaryBase is the specialized boundary clone: identical to the
// interior clone except that virtual coordinates are reduced modulo the
// grid. The diamond-domain branch already covers the i==0 edge, and no
// access leaves the domain for i >= 1.
func (s *lcs) boundaryBase() pochoir.BaseFunc {
	l := s.l
	n1 := s.n + 1
	return func(z pochoir.Zoid) {
		lo, hi := z.Lo[0], z.Hi[0]
		for t := z.T0; t < z.T1; t++ {
			w := l.Slot(t)
			r := l.Slot(t - 1)
			rr := l.Slot(t - 2)
			for i := lo; i < hi; i++ {
				ti := mod(i, n1)
				j := t - ti
				if ti < 1 || j < 1 || j > s.m {
					w[ti] = 0
					continue
				}
				best := r[ti-1]
				if r[ti] > best {
					best = r[ti]
				}
				d := rr[ti-1]
				if s.seqA[ti-1] == s.seqB[j-1] {
					d++
				}
				if d > best {
					best = d
				}
				w[ti] = best
			}
			lo += z.DLo[0]
			hi += z.DHi[0]
		}
	}
}

func (s *lcs) pochoirResult() []float64 {
	out := make([]float64, s.n+1)
	if err := s.l.CopyOut(s.steps+1, out); err != nil {
		panic(err)
	}
	return out
}

func (s *lcs) Pochoir(opts pochoir.Options) Job {
	return Job{
		Setup: func() { s.setupPochoir() },
		Compute: func() {
			s.st.SetOptions(opts)
			b := pochoir.BaseKernels{
				Interior: s.interiorBase(),
				Boundary: s.boundaryBase(),
			}
			if err := s.st.RunSpecialized(s.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return s.pochoirResult() },
	}
}

func (s *lcs) PochoirGeneric(opts pochoir.Options) Job {
	return Job{
		Setup: func() { s.setupPochoir() },
		Compute: func() {
			s.st.SetOptions(opts)
			if err := s.st.Run(s.steps, s.pointKernel()); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return s.pochoirResult() },
	}
}

// ---- LOOPS baseline ----

func (s *lcs) setupLoops() {
	s.sequences()
	for i := range s.buf {
		s.buf[i] = make([]float64, s.n+1)
	}
}

func (s *lcs) loopsCompute(parallel bool) {
	// Home time w runs 2..steps+1 (diagonals 0 and 1 are zero).
	loops.Run(2, s.steps+2, parallel, s.n+1, 4096, func(w, i0, i1 int) {
		next := s.buf[w%3]
		r := s.buf[(w+2)%3]
		rr := s.buf[(w+1)%3]
		for i := i0; i < i1; i++ {
			j := w - i
			if i < 1 || j < 1 || j > s.m {
				next[i] = 0
				continue
			}
			best := r[i-1]
			if r[i] > best {
				best = r[i]
			}
			d := rr[i-1]
			if s.seqA[i-1] == s.seqB[j-1] {
				d++
			}
			if d > best {
				best = d
			}
			next[i] = best
		}
	})
}

func (s *lcs) loopsResult() []float64 {
	return append([]float64(nil), s.buf[(s.steps+1)%3]...)
}

func (s *lcs) LoopsSerial() Job {
	return Job{Setup: s.setupLoops, Compute: func() { s.loopsCompute(false) }, Result: s.loopsResult}
}

func (s *lcs) LoopsParallel() Job {
	return Job{Setup: s.setupLoops, Compute: func() { s.loopsCompute(true) }, Result: s.loopsResult}
}

// Score returns D(n,m) — the LCS length — after a run that reached diagonal
// n+m (steps >= n+m-1).
func (s *lcs) Score(final []float64) float64 { return final[s.n] }
