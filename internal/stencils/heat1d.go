package stencils

import (
	"pochoir"
	"pochoir/internal/loops"
)

// Heat 1D: the paper's running example for the loop-indexing optimizations
// (Fig. 12),
//
//	a(t+1,i) = 0.125*(a(t,i-1) + 2*a(t,i) + a(t,i+1)).
//
// It is not a Fig. 3 row (so it is not registered with the benchmark
// registry), but it drives the compiler examples and the -split-pointer vs
// -split-macro-shadow comparison alongside Heat 2D.

// NewHeat1DFactory returns the 1D heat benchmark.
func NewHeat1DFactory(periodic bool) Factory {
	name := "Heat 1"
	if periodic {
		name = "Heat 1p"
	}
	return Factory{
		Name:       name,
		Order:      100, // not a Fig. 3 row
		Dims:       1,
		PaperSizes: []int{16000000},
		PaperSteps: 500,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{4000000}, 50)
			return &heat1D{N: sizes[0], steps: steps, periodic: periodic}
		},
		Shape:    Heat1DShape,
		Periodic: []bool{periodic},
	}
}

type heat1D struct {
	N        int
	steps    int
	periodic bool

	st *pochoir.Stencil[float64]
	a  *pochoir.Array[float64]

	cur, next []float64
}

func (h *heat1D) Name() string {
	if h.periodic {
		return "Heat 1p"
	}
	return "Heat 1"
}
func (h *heat1D) Dims() int              { return 1 }
func (h *heat1D) Sizes() []int           { return []int{h.N} }
func (h *heat1D) Steps() int             { return h.steps }
func (h *heat1D) Points() int64          { return int64(h.N) }
func (h *heat1D) FlopsPerPoint() float64 { return 4 }

// Heat1DShape is the three-point shape of Fig. 12(a).
func Heat1DShape() *pochoir.Shape {
	return pochoir.MustShape(1, [][]int{{1, 0}, {0, 0}, {0, 1}, {0, -1}})
}

func (h *heat1D) setupPochoir() {
	sh := Heat1DShape()
	h.st = pochoir.New[float64](sh)
	h.a = pochoir.MustArray[float64](sh.Depth(), h.N)
	if h.periodic {
		h.a.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	} else {
		h.a.RegisterBoundary(pochoir.ZeroBoundary[float64]())
	}
	h.st.MustRegisterArray(h.a)
	init := make([]float64, h.N)
	fillRand(init, 1000)
	if err := h.a.CopyIn(0, init); err != nil {
		panic(err)
	}
}

func (h *heat1D) pointKernel() pochoir.Kernel {
	a := h.a
	return pochoir.K1(func(t, i int) {
		a.Set(t+1, 0.125*(a.Get(t, i-1)+2*a.Get(t, i)+a.Get(t, i+1)), i)
	})
}

// interiorBase is the -split-pointer interior clone of Fig. 12(c): one
// cursor per stencil term, advanced together through the inner loop.
func (h *heat1D) interiorBase() pochoir.BaseFunc {
	a := h.a
	return func(z pochoir.Zoid) {
		lo, hi := z.Lo[0], z.Hi[0]
		for t := z.T0; t < z.T1; t++ {
			w := a.Slot(t)
			r := a.Slot(t - 1)
			dst := w[lo:hi]
			cm := r[lo-1:]
			c := r[lo:]
			cp := r[lo+1:]
			for i := range dst {
				dst[i] = 0.125 * (cm[i] + 2*c[i] + cp[i])
			}
			lo += z.DLo[0]
			hi += z.DHi[0]
		}
	}
}

// interiorBaseMacro is the -split-macro-shadow interior clone of Fig. 12(b):
// full address arithmetic on every access, but no boundary checking.
func (h *heat1D) interiorBaseMacro() pochoir.BaseFunc {
	a := h.a
	return func(z pochoir.Zoid) {
		lo, hi := z.Lo[0], z.Hi[0]
		for t := z.T0; t < z.T1; t++ {
			w := a.Slot(t)
			r := a.Slot(t - 1)
			for i := lo; i < hi; i++ {
				w[i] = 0.125 * (r[i-1] + 2*r[i] + r[i+1])
			}
			lo += z.DLo[0]
			hi += z.DHi[0]
		}
	}
}

// boundaryBase is the specialized boundary clone (wrapped or zero-halo
// accesses, compiled).
func (h *heat1D) boundaryBase() pochoir.BaseFunc {
	a := h.a
	N := h.N
	periodic := h.periodic
	return func(z pochoir.Zoid) {
		lo, hi := z.Lo[0], z.Hi[0]
		for t := z.T0; t < z.T1; t++ {
			w := a.Slot(t)
			r := a.Slot(t - 1)
			for i := lo; i < hi; i++ {
				ti := mod(i, N)
				var vm, vp float64
				if periodic {
					vm = r[mod(ti-1, N)]
					vp = r[mod(ti+1, N)]
				} else {
					if ti-1 >= 0 {
						vm = r[ti-1]
					}
					if ti+1 < N {
						vp = r[ti+1]
					}
				}
				w[ti] = 0.125 * (vm + 2*r[ti] + vp)
			}
			lo += z.DLo[0]
			hi += z.DHi[0]
		}
	}
}

func (h *heat1D) pochoirResult() []float64 {
	out := make([]float64, h.N)
	if err := h.a.CopyOut(h.steps, out); err != nil {
		panic(err)
	}
	return out
}

func (h *heat1D) pochoirJob(opts pochoir.Options, interior func() pochoir.BaseFunc) Job {
	return Job{
		Setup: func() { h.setupPochoir() },
		Compute: func() {
			h.st.SetOptions(opts)
			b := pochoir.BaseKernels{Boundary: h.boundaryBase()}
			if interior != nil {
				b.Interior = interior()
			}
			if err := h.st.RunSpecialized(h.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return h.pochoirResult() },
	}
}

func (h *heat1D) Pochoir(opts pochoir.Options) Job {
	return h.pochoirJob(opts, h.interiorBase)
}

// PochoirMacroShadow runs with the Fig. 12(b)-style interior clone.
func (h *heat1D) PochoirMacroShadow(opts pochoir.Options) Job {
	return h.pochoirJob(opts, h.interiorBaseMacro)
}

func (h *heat1D) PochoirGeneric(opts pochoir.Options) Job {
	return Job{
		Setup: func() { h.setupPochoir() },
		Compute: func() {
			h.st.SetOptions(opts)
			if err := h.st.Run(h.steps, h.pointKernel()); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return h.pochoirResult() },
	}
}

// ---- LOOPS baseline ----

func (h *heat1D) setupLoops() {
	if h.periodic {
		h.cur = make([]float64, h.N)
		h.next = make([]float64, h.N)
		fillRand(h.cur, 1000)
		return
	}
	h.cur = make([]float64, h.N+2)
	h.next = make([]float64, h.N+2)
	init := make([]float64, h.N)
	fillRand(init, 1000)
	copy(h.cur[1:], init)
}

func (h *heat1D) loopsCompute(parallel bool) {
	N := h.N
	if h.periodic {
		loops.Run(0, h.steps, parallel, N, 4096, func(t, i0, i1 int) {
			cur, next := h.cur, h.next
			if t%2 == 1 {
				cur, next = next, cur
			}
			for i := i0; i < i1; i++ {
				im := ((i-1)%N + N) % N
				ip := (i + 1) % N
				next[i] = 0.125 * (cur[im] + 2*cur[i] + cur[ip])
			}
		})
		return
	}
	loops.Run(0, h.steps, parallel, N, 4096, func(t, i0, i1 int) {
		cur, next := h.cur, h.next
		if t%2 == 1 {
			cur, next = next, cur
		}
		dst := next[i0+1 : i1+1]
		cm := cur[i0:]
		c := cur[i0+1:]
		cp := cur[i0+2:]
		for i := range dst {
			dst[i] = 0.125 * (cm[i] + 2*c[i] + cp[i])
		}
	})
}

func (h *heat1D) loopsResult() []float64 {
	final := h.cur
	if h.steps%2 == 1 {
		final = h.next
	}
	if h.periodic {
		return append([]float64(nil), final...)
	}
	return append([]float64(nil), final[1:h.N+1]...)
}

func (h *heat1D) LoopsSerial() Job {
	return Job{Setup: h.setupLoops, Compute: func() { h.loopsCompute(false) }, Result: h.loopsResult}
}

func (h *heat1D) LoopsParallel() Job {
	return Job{Setup: h.setupLoops, Compute: func() { h.loopsCompute(true) }, Result: h.loopsResult}
}
