package stencils

import (
	"pochoir"
	"pochoir/internal/loops"
)

// Wave 3 (Fig. 3 row "Wave 3"): the second-order finite-difference wave
// equation on a nonperiodic 3D grid,
//
//	u(t+1,p) = 2u(t,p) - u(t-1,p) + C*(sum_d (u(t,p+e_d)+u(t,p-e_d)) - 6u(t,p)),
//
// a depth-2 stencil: the Pochoir array keeps three time slots.

const waveC = 0.12

func init() { register(NewWave3DFactory()) }

// NewWave3DFactory returns the Wave 3 benchmark.
func NewWave3DFactory() Factory {
	return Factory{
		Name:       "Wave 3",
		Order:      5,
		Dims:       3,
		PaperSizes: []int{1000, 1000, 1000},
		PaperSteps: 500,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{150, 150, 150}, 30)
			return &wave3D{sz: [3]int{sizes[0], sizes[1], sizes[2]}, steps: steps}
		},
		Shape: Wave3DShape,
	}
}

type wave3D struct {
	sz    [3]int
	steps int

	st *pochoir.Stencil[float64]
	u  *pochoir.Array[float64]

	buf [3][]float64 // padded loop buffers, rotated by time mod 3
}

func (w *wave3D) Name() string           { return "Wave 3" }
func (w *wave3D) Dims() int              { return 3 }
func (w *wave3D) Sizes() []int           { return w.sz[:] }
func (w *wave3D) Steps() int             { return w.steps }
func (w *wave3D) Points() int64          { return prod(w.sz[:]) }
func (w *wave3D) FlopsPerPoint() float64 { return 11 }

// Wave3DShape: reads the 7-point neighborhood at t and the center at t-1.
func Wave3DShape() *pochoir.Shape {
	cells := [][]int{{1, 0, 0, 0}, {0, 0, 0, 0}, {-1, 0, 0, 0}}
	for d := 0; d < 3; d++ {
		for _, s := range []int{1, -1} {
			c := []int{0, 0, 0, 0}
			c[1+d] = s
			cells = append(cells, c)
		}
	}
	return pochoir.MustShape(3, cells)
}

func (w *wave3D) initStates() (u0, u1 []float64) {
	n := w.Points()
	u0 = make([]float64, n)
	fillRand(u0, 5000)
	// Second initial state: a slightly damped copy, bit-reproducible.
	u1 = make([]float64, n)
	for i, v := range u0 {
		u1[i] = 0.98 * v
	}
	return u0, u1
}

func (w *wave3D) setupPochoir() {
	sh := Wave3DShape()
	w.st = pochoir.New[float64](sh)
	w.u = pochoir.MustArray[float64](sh.Depth(), w.sz[0], w.sz[1], w.sz[2])
	w.u.RegisterBoundary(pochoir.ZeroBoundary[float64]())
	w.st.MustRegisterArray(w.u)
	u0, u1 := w.initStates()
	if err := w.u.CopyIn(0, u0); err != nil {
		panic(err)
	}
	if err := w.u.CopyIn(1, u1); err != nil {
		panic(err)
	}
}

func (w *wave3D) pointKernel() pochoir.Kernel {
	u := w.u
	return pochoir.K3(func(t, x, y, z int) {
		c := u.Get(t, x, y, z)
		u.Set(t+1, 2*c-u.Get(t-1, x, y, z)+
			waveC*(u.Get(t, x+1, y, z)+u.Get(t, x-1, y, z)+
				u.Get(t, x, y+1, z)+u.Get(t, x, y-1, z)+
				u.Get(t, x, y, z+1)+u.Get(t, x, y, z-1)-6*c), x, y, z)
	})
}

func (w *wave3D) interiorBase() pochoir.BaseFunc {
	u := w.u
	s0, s1 := u.Stride(0), u.Stride(1)
	return func(z pochoir.Zoid) {
		var lo, hi [3]int
		for i := 0; i < 3; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		for t := z.T0; t < z.T1; t++ {
			wr := u.Slot(t)
			r := u.Slot(t - 1)
			rr := u.Slot(t - 2)
			for x := lo[0]; x < hi[0]; x++ {
				for y := lo[1]; y < hi[1]; y++ {
					base := x*s0 + y*s1
					dst := wr[base+lo[2] : base+hi[2]]
					cc := r[base+lo[2]:]
					pp := rr[base+lo[2]:]
					xm := r[base-s0+lo[2]:]
					xp := r[base+s0+lo[2]:]
					ym := r[base-s1+lo[2]:]
					yp := r[base+s1+lo[2]:]
					zm := r[base+lo[2]-1:]
					zp := r[base+lo[2]+1:]
					for i := range dst {
						c := cc[i]
						dst[i] = 2*c - pp[i] +
							waveC*(xp[i]+xm[i]+yp[i]+ym[i]+zp[i]+zm[i]-6*c)
					}
				}
			}
			for i := 0; i < 3; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}
}

// boundaryBase is the specialized boundary clone. The >=3D coarsening
// heuristic never cuts the unit-stride dimension, so every zoid touches
// the z edges and this clone carries most of the work; it therefore runs
// at near-interior speed by selecting each (x,y) row's neighbor rows once
// — substituting a shared all-zeros row for rows off the grid, which is
// the zero Dirichlet boundary value — and guarding only the z ends.
func (w *wave3D) boundaryBase() pochoir.BaseFunc {
	u := w.u
	s0, s1 := u.Stride(0), u.Stride(1)
	n0, n1, n2 := w.sz[0], w.sz[1], w.sz[2]
	zeros := make([]float64, n2)
	generic := w.st.GenericBase(w.pointKernel())
	return func(z pochoir.Zoid) {
		if z.Lo[2] != 0 || z.Hi[2] != n2 || z.DLo[2] != 0 || z.DHi[2] != 0 {
			generic(z) // only under non-default coarsening
			return
		}
		var lo, hi [3]int
		for i := 0; i < 3; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		for t := z.T0; t < z.T1; t++ {
			wr := u.Slot(t)
			r := u.Slot(t - 1)
			rr := u.Slot(t - 2)
			row := func(i, j int) []float64 {
				if i < 0 || i >= n0 || j < 0 || j >= n1 {
					return zeros
				}
				base := i*s0 + j*s1
				return r[base : base+n2 : base+n2]
			}
			at := func(g []float64, k int) float64 {
				if k < 0 || k >= n2 {
					return 0
				}
				return g[k]
			}
			for a := lo[0]; a < hi[0]; a++ {
				ta := mod(a, n0)
				for b := lo[1]; b < hi[1]; b++ {
					tb := mod(b, n1)
					base := ta*s0 + tb*s1
					dst := wr[base : base+n2]
					cc := r[base : base+n2]
					pp := rr[base : base+n2]
					xm, xp := row(ta-1, tb), row(ta+1, tb)
					ym, yp := row(ta, tb-1), row(ta, tb+1)
					for k := 0; k < n2; k++ {
						c := cc[k]
						dst[k] = 2*c - pp[k] +
							waveC*(xp[k]+xm[k]+yp[k]+ym[k]+at(cc, k+1)+at(cc, k-1)-6*c)
					}
				}
			}
			for i := 0; i < 3; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}
}

func mod(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

func (w *wave3D) pochoirResult() []float64 {
	out := make([]float64, w.Points())
	// Depth 2: the newest state after `steps` more steps is at steps+1.
	if err := w.u.CopyOut(w.steps+1, out); err != nil {
		panic(err)
	}
	return out
}

func (w *wave3D) Pochoir(opts pochoir.Options) Job {
	return Job{
		Setup: func() { w.setupPochoir() },
		Compute: func() {
			w.st.SetOptions(opts)
			b := pochoir.BaseKernels{
				Interior: w.interiorBase(),
				Boundary: w.boundaryBase(),
			}
			if err := w.st.RunSpecialized(w.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return w.pochoirResult() },
	}
}

func (w *wave3D) PochoirGeneric(opts pochoir.Options) Job {
	return Job{
		Setup: func() { w.setupPochoir() },
		Compute: func() {
			w.st.SetOptions(opts)
			if err := w.st.Run(w.steps, w.pointKernel()); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return w.pochoirResult() },
	}
}

// ---- LOOPS baseline (ghost cells, three rotating buffers) ----

func (w *wave3D) padded() (p [3]int) {
	for i := 0; i < 3; i++ {
		p[i] = w.sz[i] + 2
	}
	return p
}

func (w *wave3D) setupLoops() {
	p := w.padded()
	n := p[0] * p[1] * p[2]
	for i := range w.buf {
		w.buf[i] = make([]float64, n)
	}
	u0, u1 := w.initStates()
	q1, q2 := p[1]*p[2], p[2]
	for _, s := range []struct {
		src []float64
		dst []float64
	}{{u0, w.buf[0]}, {u1, w.buf[1]}} {
		for x := 0; x < w.sz[0]; x++ {
			for y := 0; y < w.sz[1]; y++ {
				src := (x*w.sz[1] + y) * w.sz[2]
				dst := (x+1)*q1 + (y+1)*q2 + 1
				copy(s.dst[dst:dst+w.sz[2]], s.src[src:src+w.sz[2]])
			}
		}
	}
}

func (w *wave3D) loopsCompute(parallel bool) {
	p := w.padded()
	q1, q2 := p[1]*p[2], p[2]
	// Home time for step s is s+2 (states 0 and 1 are initial).
	loops.Run(2, w.steps+2, parallel, w.sz[0], 1, func(t, x0, x1 int) {
		next := w.buf[t%3]
		cur := w.buf[(t+2)%3]  // t-1
		prev := w.buf[(t+1)%3] // t-2
		for x := x0; x < x1; x++ {
			for y := 0; y < w.sz[1]; y++ {
				base := (x+1)*q1 + (y+1)*q2 + 1
				dst := next[base : base+w.sz[2]]
				cc := cur[base:]
				pp := prev[base:]
				xm := cur[base-q1:]
				xp := cur[base+q1:]
				ym := cur[base-q2:]
				yp := cur[base+q2:]
				zm := cur[base-1:]
				zp := cur[base+1:]
				for i := range dst {
					c := cc[i]
					dst[i] = 2*c - pp[i] +
						waveC*(xp[i]+xm[i]+yp[i]+ym[i]+zp[i]+zm[i]-6*c)
				}
			}
		}
	})
}

func (w *wave3D) loopsResult() []float64 {
	p := w.padded()
	q1, q2 := p[1]*p[2], p[2]
	final := w.buf[(w.steps+1)%3]
	out := make([]float64, w.Points())
	for x := 0; x < w.sz[0]; x++ {
		for y := 0; y < w.sz[1]; y++ {
			dst := (x*w.sz[1] + y) * w.sz[2]
			src := (x+1)*q1 + (y+1)*q2 + 1
			copy(out[dst:dst+w.sz[2]], final[src:src+w.sz[2]])
		}
	}
	return out
}

func (w *wave3D) LoopsSerial() Job {
	return Job{Setup: w.setupLoops, Compute: func() { w.loopsCompute(false) }, Result: w.loopsResult}
}

func (w *wave3D) LoopsParallel() Job {
	return Job{Setup: w.setupLoops, Compute: func() { w.loopsCompute(true) }, Result: w.loopsResult}
}
