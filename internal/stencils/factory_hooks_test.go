package stencils

import "testing"

// TestFactoryShapeHooks checks the analytical-replay hooks every factory
// exports for the benchmark lab: the shape's dimensionality matches the
// factory's, and the periodicity vector (when present) has one entry per
// spatial dimension.
func TestFactoryShapeHooks(t *testing.T) {
	for _, f := range All() {
		if f.Shape == nil {
			t.Errorf("%q: no Shape hook", f.Name)
			continue
		}
		sh := f.Shape()
		if sh.NDims != f.Dims {
			t.Errorf("%q: shape is %d-dimensional, factory says %d", f.Name, sh.NDims, f.Dims)
		}
		if f.Periodic != nil && len(f.Periodic) != f.Dims {
			t.Errorf("%q: Periodic has %d entries, want %d", f.Name, len(f.Periodic), f.Dims)
		}
		// Slopes must be well defined for the analyzer's walker geometry.
		for i := 0; i < sh.NDims; i++ {
			if sh.Slope(i) < 0 {
				t.Errorf("%q: negative slope in dim %d", f.Name, i)
			}
		}
	}
}
