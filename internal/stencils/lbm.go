package stencils

import (
	"pochoir"
	"pochoir/internal/loops"
)

// LBM 3 (Fig. 3 row "LBM 3"): a D3Q19 lattice Boltzmann method with BGK
// collision. Each grid point carries 19 distribution values; the update
// streams each distribution from the upwind neighbor and relaxes toward
// the local equilibrium — the paper's example of a complex stencil with
// many states per cell.
//
// Substitution note: the paper's LBM (from Mei et al.) uses bounce-back
// walls; we use clamped (zero-gradient) walls, refreshed into the loop
// baseline's ghost halo every step, so that all execution paths compute
// bit-identical results. The memory footprint, state count, and arithmetic
// intensity — the properties Fig. 3 exercises — are unchanged.

// LBMQ is the number of discrete velocities (D3Q19).
const LBMQ = 19

// LBMCell is the per-point state: one distribution per discrete velocity.
type LBMCell [LBMQ]float64

// lbmE lists the D3Q19 velocity set; entry 0 is the rest velocity.
var lbmE = [LBMQ][3]int{
	{0, 0, 0},
	{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
	{1, 1, 0}, {-1, -1, 0}, {1, -1, 0}, {-1, 1, 0},
	{1, 0, 1}, {-1, 0, -1}, {1, 0, -1}, {-1, 0, 1},
	{0, 1, 1}, {0, -1, -1}, {0, 1, -1}, {0, -1, 1},
}

// lbmW are the matching lattice weights.
var lbmW = [LBMQ]float64{
	1.0 / 3,
	1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18,
	1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
	1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
	1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
}

const lbmOmega = 1.2 // BGK relaxation rate 1/tau

// lbmCollide computes the post-collision cell from the streamed-in
// distributions. All execution paths share this function so results are
// bit-identical.
func lbmCollide(f *LBMCell) LBMCell {
	rho := 0.0
	var ux, uy, uz float64
	for i := 0; i < LBMQ; i++ {
		v := f[i]
		rho += v
		ux += v * float64(lbmE[i][0])
		uy += v * float64(lbmE[i][1])
		uz += v * float64(lbmE[i][2])
	}
	inv := 1.0 / rho
	ux *= inv
	uy *= inv
	uz *= inv
	usq := ux*ux + uy*uy + uz*uz
	var out LBMCell
	for i := 0; i < LBMQ; i++ {
		eu := ux*float64(lbmE[i][0]) + uy*float64(lbmE[i][1]) + uz*float64(lbmE[i][2])
		feq := lbmW[i] * rho * (1 + 3*eu + 4.5*eu*eu - 1.5*usq)
		out[i] = f[i] + lbmOmega*(feq-f[i])
	}
	return out
}

func init() { register(NewLBMFactory()) }

// NewLBMFactory returns the LBM 3 benchmark.
func NewLBMFactory() Factory {
	return Factory{
		Name:       "LBM 3",
		Order:      6,
		Dims:       3,
		PaperSizes: []int{100, 100, 130},
		PaperSteps: 3000,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{40, 40, 52}, 60)
			return &lbm{sz: [3]int{sizes[0], sizes[1], sizes[2]}, steps: steps}
		},
		Shape: LBMShape,
	}
}

type lbm struct {
	sz    [3]int
	steps int

	st *pochoir.Stencil[LBMCell]
	f  *pochoir.Array[LBMCell]

	cur, next []LBMCell // padded loop buffers
}

func (l *lbm) Name() string           { return "LBM 3" }
func (l *lbm) Dims() int              { return 3 }
func (l *lbm) Sizes() []int           { return l.sz[:] }
func (l *lbm) Steps() int             { return l.steps }
func (l *lbm) Points() int64          { return prod(l.sz[:]) }
func (l *lbm) FlopsPerPoint() float64 { return 250 }

// LBMShape reads, for each velocity i, the cell at offset -e_i at t.
func LBMShape() *pochoir.Shape {
	cells := [][]int{{1, 0, 0, 0}}
	seen := map[[3]int]bool{}
	for _, e := range lbmE {
		off := [3]int{-e[0], -e[1], -e[2]}
		if seen[off] {
			continue
		}
		seen[off] = true
		cells = append(cells, []int{0, off[0], off[1], off[2]})
	}
	return pochoir.MustShape(3, cells)
}

// lbmInit builds a deterministic initial field: equilibrium at rest with a
// smoothly varying density perturbation.
func (l *lbm) lbmInit() []LBMCell {
	n := int(l.Points())
	raw := make([]float64, n)
	fillRand(raw, 6000)
	out := make([]LBMCell, n)
	for p := range out {
		rho := 1.0 + 0.02*raw[p]
		for i := 0; i < LBMQ; i++ {
			out[p][i] = lbmW[i] * rho
		}
	}
	return out
}

func (l *lbm) setupPochoir() {
	sh := LBMShape()
	l.st = pochoir.New[LBMCell](sh)
	l.f = pochoir.MustArray[LBMCell](sh.Depth(), l.sz[0], l.sz[1], l.sz[2])
	l.f.RegisterBoundary(pochoir.NeumannBoundary[LBMCell]())
	l.st.MustRegisterArray(l.f)
	if err := l.f.CopyIn(0, l.lbmInit()); err != nil {
		panic(err)
	}
}

func (l *lbm) pointKernel() pochoir.Kernel {
	f := l.f
	return pochoir.K3(func(t, x, y, z int) {
		var in LBMCell
		for i := 0; i < LBMQ; i++ {
			e := lbmE[i]
			in[i] = f.Get(t, x-e[0], y-e[1], z-e[2])[i]
		}
		f.Set(t+1, lbmCollide(&in), x, y, z)
	})
}

func (l *lbm) interiorBase() pochoir.BaseFunc {
	f := l.f
	s0, s1 := f.Stride(0), f.Stride(1)
	// Precompute linear offsets of the upwind neighbors.
	var offs [LBMQ]int
	for i, e := range lbmE {
		offs[i] = -e[0]*s0 - e[1]*s1 - e[2]
	}
	return func(z pochoir.Zoid) {
		var lo, hi [3]int
		for i := 0; i < 3; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		for t := z.T0; t < z.T1; t++ {
			w := f.Slot(t)
			r := f.Slot(t - 1)
			for x := lo[0]; x < hi[0]; x++ {
				for y := lo[1]; y < hi[1]; y++ {
					base := x*s0 + y*s1
					for zz := lo[2]; zz < hi[2]; zz++ {
						p := base + zz
						var in LBMCell
						for i := 0; i < LBMQ; i++ {
							in[i] = r[p+offs[i]][i]
						}
						w[p] = lbmCollide(&in)
					}
				}
			}
			for i := 0; i < 3; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}
}

// boundaryBase is the specialized boundary clone: neighbor coordinates are
// clamped to the domain (the Neumann wall condition), with per-row
// clamping of the x/y coordinates so the inner loop only guards the z
// ends. Because the ≥3D heuristic never cuts the unit-stride dimension,
// this clone carries most of the work and is written to run near interior
// speed.
func (l *lbm) boundaryBase() pochoir.BaseFunc {
	f := l.f
	s0, s1 := f.Stride(0), f.Stride(1)
	n0, n1, n2 := l.sz[0], l.sz[1], l.sz[2]
	clamp := func(v, n int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	generic := l.st.GenericBase(l.pointKernel())
	return func(z pochoir.Zoid) {
		if z.Lo[2] != 0 || z.Hi[2] != n2 || z.DLo[2] != 0 || z.DHi[2] != 0 {
			generic(z)
			return
		}
		var lo, hi [3]int
		for i := 0; i < 3; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		for t := z.T0; t < z.T1; t++ {
			w := f.Slot(t)
			r := f.Slot(t - 1)
			for x := lo[0]; x < hi[0]; x++ {
				tx := mod(x, n0)
				for y := lo[1]; y < hi[1]; y++ {
					ty := mod(y, n1)
					// Per-velocity source row with x/y clamped once.
					var rows [LBMQ][]LBMCell
					for i, e := range lbmE {
						sx := clamp(tx-e[0], n0)
						sy := clamp(ty-e[1], n1)
						base := sx*s0 + sy*s1
						rows[i] = r[base : base+n2 : base+n2]
					}
					dst := w[tx*s0+ty*s1 : tx*s0+ty*s1+n2]
					for zz := 0; zz < n2; zz++ {
						var in LBMCell
						for i, e := range lbmE {
							in[i] = rows[i][clamp(zz-e[2], n2)][i]
						}
						dst[zz] = lbmCollide(&in)
					}
				}
			}
			for i := 0; i < 3; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}
}

func lbmToF64(cells []LBMCell) []float64 {
	out := make([]float64, len(cells)*LBMQ)
	for p, c := range cells {
		copy(out[p*LBMQ:], c[:])
	}
	return out
}

func (l *lbm) pochoirResult() []float64 {
	out := make([]LBMCell, l.Points())
	if err := l.f.CopyOut(l.steps, out); err != nil {
		panic(err)
	}
	return lbmToF64(out)
}

func (l *lbm) Pochoir(opts pochoir.Options) Job {
	return Job{
		Setup: func() { l.setupPochoir() },
		Compute: func() {
			l.st.SetOptions(opts)
			b := pochoir.BaseKernels{
				Interior: l.interiorBase(),
				Boundary: l.boundaryBase(),
			}
			if err := l.st.RunSpecialized(l.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return l.pochoirResult() },
	}
}

func (l *lbm) PochoirGeneric(opts pochoir.Options) Job {
	return Job{
		Setup: func() { l.setupPochoir() },
		Compute: func() {
			l.st.SetOptions(opts)
			if err := l.st.Run(l.steps, l.pointKernel()); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return l.pochoirResult() },
	}
}

// ---- LOOPS baseline (ghost halo refreshed with clamped copies) ----

func (l *lbm) padded() (p [3]int) {
	for i := 0; i < 3; i++ {
		p[i] = l.sz[i] + 2
	}
	return p
}

func (l *lbm) setupLoops() {
	p := l.padded()
	n := p[0] * p[1] * p[2]
	l.cur = make([]LBMCell, n)
	l.next = make([]LBMCell, n)
	init := l.lbmInit()
	q1, q2 := p[1]*p[2], p[2]
	for x := 0; x < l.sz[0]; x++ {
		for y := 0; y < l.sz[1]; y++ {
			src := (x*l.sz[1] + y) * l.sz[2]
			dst := (x+1)*q1 + (y+1)*q2 + 1
			copy(l.cur[dst:dst+l.sz[2]], init[src:src+l.sz[2]])
		}
	}
}

// refreshHalo fills the one-cell halo of buf with clamped copies of the
// core, matching the Neumann boundary function of the Pochoir path.
func (l *lbm) refreshHalo(buf []LBMCell) {
	p := l.padded()
	q1, q2 := p[1]*p[2], p[2]
	clamp := func(v, n int) int {
		if v < 1 {
			return 1
		}
		if v > n {
			return n
		}
		return v
	}
	for x := 0; x < p[0]; x++ {
		for y := 0; y < p[1]; y++ {
			for z := 0; z < p[2]; z++ {
				if x >= 1 && x <= l.sz[0] && y >= 1 && y <= l.sz[1] && z >= 1 && z <= l.sz[2] {
					continue
				}
				cx, cy, cz := clamp(x, l.sz[0]), clamp(y, l.sz[1]), clamp(z, l.sz[2])
				buf[x*q1+y*q2+z] = buf[cx*q1+cy*q2+cz]
			}
		}
	}
}

func (l *lbm) loopsCompute(parallel bool) {
	p := l.padded()
	q1, q2 := p[1]*p[2], p[2]
	var offs [LBMQ]int
	for i, e := range lbmE {
		offs[i] = -e[0]*q1 - e[1]*q2 - e[2]
	}
	for t := 0; t < l.steps; t++ {
		cur, next := l.cur, l.next
		if t%2 == 1 {
			cur, next = next, cur
		}
		l.refreshHalo(cur)
		loops.Run(t, t+1, parallel, l.sz[0], 1, func(_, x0, x1 int) {
			for x := x0; x < x1; x++ {
				for y := 0; y < l.sz[1]; y++ {
					base := (x+1)*q1 + (y+1)*q2 + 1
					for z := 0; z < l.sz[2]; z++ {
						pp := base + z
						var in LBMCell
						for i := 0; i < LBMQ; i++ {
							in[i] = cur[pp+offs[i]][i]
						}
						next[pp] = lbmCollide(&in)
					}
				}
			}
		})
	}
}

func (l *lbm) loopsResult() []float64 {
	final := l.cur
	if l.steps%2 == 1 {
		final = l.next
	}
	p := l.padded()
	q1, q2 := p[1]*p[2], p[2]
	out := make([]LBMCell, l.Points())
	for x := 0; x < l.sz[0]; x++ {
		for y := 0; y < l.sz[1]; y++ {
			dst := (x*l.sz[1] + y) * l.sz[2]
			src := (x+1)*q1 + (y+1)*q2 + 1
			copy(out[dst:dst+l.sz[2]], final[src:src+l.sz[2]])
		}
	}
	return lbmToF64(out)
}

func (l *lbm) LoopsSerial() Job {
	return Job{Setup: l.setupLoops, Compute: func() { l.loopsCompute(false) }, Result: l.loopsResult}
}

func (l *lbm) LoopsParallel() Job {
	return Job{Setup: l.setupLoops, Compute: func() { l.loopsCompute(true) }, Result: l.loopsResult}
}
