// Package stencils implements every benchmark of the paper's evaluation
// (Fig. 3, Fig. 5, and the §4 ablations): Heat on 2D/2D-periodic/4D grids,
// Conway's Game of Life, the 3D finite-difference wave equation, a D3Q19
// lattice Boltzmann method, RNA secondary-structure prediction, pairwise
// sequence alignment with affine gaps, longest common subsequence, American
// put option pricing, and the Berkeley 7-point/27-point 3D kernels.
//
// Each benchmark provides four execution paths over identical workloads:
//
//   - Pochoir: the Phase-2 path — TRAP decomposition with a hand-specialized
//     interior clone (split-pointer style, what the stencil compiler emits)
//     and a generic checked boundary clone;
//   - PochoirGeneric: the Phase-1 path — the same decomposition driving the
//     checked point kernel everywhere (the "template library" behaviour);
//   - LoopsSerial / LoopsParallel: the LOOPS baseline of Fig. 1 — a serial
//     or parallel-for loop nest per time step, using ghost cells for
//     nonperiodic stencils and modular indexing for periodic ones, exactly
//     as the paper's baselines do.
//
// All paths compute bit-identical results (same per-point expression
// trees), which the package tests verify.
package stencils

import (
	"math/rand"
	"sort"

	"pochoir"
)

// Job is one self-contained benchmark execution: Setup allocates and
// initializes state, Compute runs the stencil (the only part a harness
// should time), and Result linearizes the final grid for comparison.
type Job struct {
	Setup   func()
	Compute func()
	Result  func() []float64
}

// Run executes all three phases and returns the final state.
func (j Job) Run() []float64 {
	j.Setup()
	j.Compute()
	return j.Result()
}

// Instance is one configured benchmark workload.
type Instance interface {
	// Name returns the benchmark's display name (e.g. "Heat 2p").
	Name() string
	// Dims returns the number of spatial dimensions.
	Dims() int
	// Sizes returns the spatial grid extents.
	Sizes() []int
	// Steps returns the number of time steps.
	Steps() int
	// Points returns the number of grid points per time step.
	Points() int64
	// FlopsPerPoint estimates floating-point operations per point update,
	// for GFLOPS/GStencil reporting (Fig. 5).
	FlopsPerPoint() float64

	// Pochoir is the Phase-2 specialized path.
	Pochoir(opts pochoir.Options) Job
	// PochoirGeneric is the Phase-1 template-library path.
	PochoirGeneric(opts pochoir.Options) Job
	// LoopsSerial is the serial loop-nest baseline.
	LoopsSerial() Job
	// LoopsParallel is the parallel loop-nest baseline ("12-core loops").
	LoopsParallel() Job
}

// Factory builds instances of one benchmark at any scale.
type Factory struct {
	// Name is the Fig. 3 row label.
	Name string
	// Order is the row position in Fig. 3 (Fig. 5 kernels follow).
	Order int
	// Dims is the number of spatial dimensions.
	Dims int
	// PaperSizes and PaperSteps record the workload the paper ran.
	PaperSizes []int
	PaperSteps int
	// New builds an instance; sizes/steps of zero select scaled-down
	// defaults suitable for a laptop-class machine.
	New func(sizes []int, steps int) Instance
	// Shape returns the benchmark's stencil shape, for analytical replays
	// of its decomposition (the work/span analyzer and the cache-trace
	// simulator). Nil when the benchmark has no single
	// translation-invariant shape to replay.
	Shape func() *pochoir.Shape
	// Periodic reports, per spatial dimension, whether the benchmark's
	// boundary wraps around (torus) rather than clamping; nil means
	// nonperiodic in every dimension.
	Periodic []bool
}

var registry []Factory

func register(f Factory) { registry = append(registry, f) }

// All returns every Fig. 3 benchmark in the paper's row order, followed by
// the Fig. 5 Berkeley kernels.
func All() []Factory {
	out := append([]Factory(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// Lookup returns the factory with the given name, or false.
func Lookup(name string) (Factory, bool) {
	for _, f := range All() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// fillRand fills dst with deterministic pseudo-random values in [0,1).
func fillRand(dst []float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range dst {
		dst[i] = rng.Float64()
	}
}

// defaults substitutes scaled-down defaults for zero sizes/steps.
func defaults(sizes []int, steps int, defSizes []int, defSteps int) ([]int, int) {
	if len(sizes) == 0 {
		sizes = defSizes
	}
	if steps == 0 {
		steps = defSteps
	}
	return append([]int(nil), sizes...), steps
}

func prod(sizes []int) int64 {
	p := int64(1)
	for _, s := range sizes {
		p *= int64(s)
	}
	return p
}
