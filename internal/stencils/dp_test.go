package stencils

import (
	"math"
	"testing"

	"pochoir"
)

func TestLCSAllPaths(t *testing.T) {
	f := NewLCSFactory()
	checkAllPaths(t, func() Instance { return f.New([]int{301}, 620) }, true)
}

// TestLCSKnownAnswer compares the stencil formulation against the textbook
// O(nm) dynamic program.
func TestLCSKnownAnswer(t *testing.T) {
	inst := NewLCSFactory().New([]int{121}, 260).(*lcs) // n=120, m=140
	if inst.n+inst.m > inst.steps+1 {
		t.Fatalf("workload does not reach D(n,m): n=%d m=%d steps=%d", inst.n, inst.m, inst.steps)
	}
	final := inst.Pochoir(pochoir.Options{}).Run()
	got := inst.Score(final)

	// Direct DP on the same sequences.
	n, m := inst.n, inst.m
	d := make([][]int, n+1)
	for i := range d {
		d[i] = make([]int, m+1)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			best := d[i-1][j]
			if d[i][j-1] > best {
				best = d[i][j-1]
			}
			diag := d[i-1][j-1]
			if inst.seqA[i-1] == inst.seqB[j-1] {
				diag++
			}
			if diag > best {
				best = diag
			}
			d[i][j] = best
		}
	}
	if got != float64(d[n][m]) {
		t.Fatalf("stencil LCS = %v, direct DP = %d", got, d[n][m])
	}
	if d[n][m] == 0 {
		t.Fatal("degenerate test: LCS should be nonzero for random 4-letter sequences")
	}
}

func TestPSAAllPaths(t *testing.T) {
	f := NewPSAFactory()
	checkAllPaths(t, func() Instance { return f.New([]int{281}, 580) }, true)
}

// TestPSAKnownAnswer compares the anti-diagonal stencil against a direct
// 2D Gotoh implementation.
func TestPSAKnownAnswer(t *testing.T) {
	inst := NewPSAFactory().New([]int{101}, 220).(*psa) // n=100, m=120
	final := inst.Pochoir(pochoir.Options{}).Run()
	got := inst.Score(final)

	n, m := inst.n, inst.m
	alloc := func() [][]float64 {
		g := make([][]float64, n+1)
		for i := range g {
			g[i] = make([]float64, m+1)
		}
		return g
	}
	M, X, Y := alloc(), alloc(), alloc()
	for i := 0; i <= n; i++ {
		for j := 0; j <= m; j++ {
			switch {
			case i == 0 && j == 0:
				M[0][0], X[0][0], Y[0][0] = 0, psaNegInf, psaNegInf
			case j == 0:
				M[i][0] = psaNegInf
				X[i][0] = -(psaOpen + float64(i-1)*psaExtend)
				Y[i][0] = psaNegInf
			case i == 0:
				M[0][j] = psaNegInf
				X[0][j] = psaNegInf
				Y[0][j] = -(psaOpen + float64(j-1)*psaExtend)
			default:
				M[i][j] = inst.score(i, j) + max3(M[i-1][j-1], X[i-1][j-1], Y[i-1][j-1])
				X[i][j] = max2(M[i-1][j]-psaOpen, X[i-1][j]-psaExtend)
				Y[i][j] = max2(M[i][j-1]-psaOpen, Y[i][j-1]-psaExtend)
			}
		}
	}
	want := max3(M[n][m], X[n][m], Y[n][m])
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("stencil PSA = %v, direct Gotoh = %v", got, want)
	}
	if want <= psaNegInf/2 {
		t.Fatal("degenerate: alignment score should be finite")
	}
}

func TestAPOPAllPaths(t *testing.T) {
	f := NewAPOPFactory()
	checkAllPaths(t, func() Instance { return f.New([]int{3000}, 700) }, true)
}

// TestAPOPProperties: an American option is worth at least its immediate
// exercise value everywhere, never more than the strike, and is
// nonincreasing in the asset price.
func TestAPOPProperties(t *testing.T) {
	inst := NewAPOPFactory().New([]int{2000}, 900).(*apop)
	final := inst.Pochoir(pochoir.Options{}).Run()
	prev := math.Inf(1)
	for i, v := range final {
		if p := inst.payoff(i); v < p-1e-9 {
			t.Fatalf("value %g below payoff %g at %d (early exercise violated)", v, p, i)
		}
		if v > apopStrike+1e-9 {
			t.Fatalf("put worth %g > strike at %d", v, i)
		}
		if v > prev+1e-9 {
			t.Fatalf("put value increased with asset price at %d", i)
		}
		prev = v
	}
	// Time value: at the money the option must be worth strictly more
	// than immediate exercise.
	atm := inst.PriceAtStrike(final)
	if atm <= 0 {
		t.Fatalf("at-the-money American put should have positive value, got %g", atm)
	}
}

func TestRNAAllPaths(t *testing.T) {
	f := NewRNAFactory()
	checkAllPaths(t, func() Instance { return f.New([]int{40, 40}, 60) }, true)
}

// TestRNAKnownAnswer compares the sweep formulation with a direct DP over
// the same (bifurcation-free) recurrence.
func TestRNAKnownAnswer(t *testing.T) {
	inst := NewRNAFactory().New([]int{64, 64}, 63).(*rna)
	final := inst.Pochoir(pochoir.Options{}).Run()

	n := inst.n
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			at := func(ii, jj int) float64 {
				if ii < 0 || ii >= n || jj < 0 || jj >= n || jj < ii {
					return 0
				}
				return d[ii][jj]
			}
			best := at(i+1, j)
			if v := at(i, j-1); v > best {
				best = v
			}
			if inst.pair(i, j) {
				if v := at(i+1, j-1) + 1; v > best {
					best = v
				}
			}
			d[i][j] = best
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if final[i*n+j] != d[i][j] {
				t.Fatalf("N(%d,%d): stencil %v, direct %v", i, j, final[i*n+j], d[i][j])
			}
		}
	}
	if inst.Score(final) == 0 {
		t.Fatal("degenerate: random sequence should admit pairings")
	}
}

func TestPt7AllPaths(t *testing.T) {
	f := NewPt7Factory()
	checkAllPaths(t, func() Instance { return f.New([]int{24, 20, 22}, 12) }, true)
}

func TestPt27AllPaths(t *testing.T) {
	f := NewPt27Factory()
	checkAllPaths(t, func() Instance { return f.New([]int{20, 22, 24}, 11) }, true)
}

func TestPtShapes(t *testing.T) {
	if got := len(PtShape(false).Cells); got != 8 {
		t.Fatalf("7-point shape has %d cells, want 8 (home + 7)", got)
	}
	if got := len(PtShape(true).Cells); got != 28 {
		t.Fatalf("27-point shape has %d cells, want 28 (home + 27)", got)
	}
}

// TestAllBenchmarksTinyAgree runs every registered benchmark at a tiny
// scale through all four paths — a safety net for any benchmark whose
// dedicated test above might rot.
func TestAllBenchmarksTinyAgree(t *testing.T) {
	tiny := map[string]struct {
		sizes []int
		steps int
	}{
		"Heat 2":      {[]int{20, 24}, 10},
		"Heat 2p":     {[]int{20, 20}, 12},
		"Heat 4":      {[]int{6, 7, 6, 8}, 5},
		"Life 2p":     {[]int{18, 18}, 9},
		"Wave 3":      {[]int{10, 12, 10}, 6},
		"LBM 3":       {[]int{8, 8, 10}, 5},
		"RNA 2":       {[]int{24, 24}, 30},
		"PSA 1":       {[]int{61}, 130},
		"LCS 1":       {[]int{61}, 130},
		"APOP":        {[]int{500}, 120},
		"3D 7-point":  {[]int{12, 10, 12}, 6},
		"3D 27-point": {[]int{10, 12, 10}, 6},
	}
	for _, f := range All() {
		cfg, ok := tiny[f.Name]
		if !ok {
			t.Errorf("no tiny config for %q — add one", f.Name)
			continue
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			checkAllPaths(t, func() Instance { return f.New(cfg.sizes, cfg.steps) }, true)
		})
	}
}
