package stencils

import (
	"pochoir"
	"pochoir/internal/loops"
)

// Heat 2D (Fig. 3 rows "Heat 2" and "Heat 2p"): the Jacobi update for the
// 2D heat equation of §1,
//
//	u(t+1,x,y) = u(t,x,y) + CX*(u(t,x+1,y) - 2u(t,x,y) + u(t,x-1,y))
//	                      + CY*(u(t,x,y+1) - 2u(t,x,y) + u(t,x,y-1)).
//
// The periodic variant wraps on a torus; the nonperiodic variant has a
// zero Dirichlet boundary. The loop baselines follow the paper exactly:
// modular indexing on every access for the periodic stencil, ghost cells
// for the nonperiodic one.

const heatCX, heatCY = 0.125, 0.125

func init() {
	register(NewHeat2DFactory(false))
	register(NewHeat2DFactory(true))
}

// NewHeat2DFactory returns the Heat 2 / Heat 2p benchmark.
func NewHeat2DFactory(periodic bool) Factory {
	name := "Heat 2"
	order := 1
	if periodic {
		name = "Heat 2p"
		order = 2
	}
	return Factory{
		Name:       name,
		Order:      order,
		Dims:       2,
		PaperSizes: []int{16000, 16000},
		PaperSteps: 500,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{2000, 2000}, 64)
			return &heat2D{X: sizes[0], Y: sizes[1], steps: steps, periodic: periodic}
		},
		Shape:    Heat2DShape,
		Periodic: []bool{periodic, periodic},
	}
}

type heat2D struct {
	X, Y     int
	steps    int
	periodic bool

	// Pochoir-path state.
	st *pochoir.Stencil[float64]
	u  *pochoir.Array[float64]

	// Loops-path state (raw double buffers; padded when nonperiodic).
	cur, next []float64
}

func (h *heat2D) Name() string {
	if h.periodic {
		return "Heat 2p"
	}
	return "Heat 2"
}
func (h *heat2D) Dims() int              { return 2 }
func (h *heat2D) Sizes() []int           { return []int{h.X, h.Y} }
func (h *heat2D) Steps() int             { return h.steps }
func (h *heat2D) Points() int64          { return int64(h.X) * int64(h.Y) }
func (h *heat2D) FlopsPerPoint() float64 { return 10 }

// Shape returns the five-point shape of Fig. 6.
func Heat2DShape() *pochoir.Shape {
	return pochoir.MustShape(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
}

func (h *heat2D) setupPochoir() {
	sh := Heat2DShape()
	h.st = pochoir.New[float64](sh)
	h.u = pochoir.MustArray[float64](sh.Depth(), h.X, h.Y)
	if h.periodic {
		h.u.RegisterBoundary(pochoir.PeriodicBoundary[float64]())
	} else {
		h.u.RegisterBoundary(pochoir.ZeroBoundary[float64]())
	}
	h.st.MustRegisterArray(h.u)
	init := make([]float64, h.X*h.Y)
	fillRand(init, 2000)
	if err := h.u.CopyIn(0, init); err != nil {
		panic(err)
	}
}

// pointKernel is the Phase-1 kernel (and the base of the boundary clone).
func (h *heat2D) pointKernel() pochoir.Kernel {
	u := h.u
	return pochoir.K2(func(t, x, y int) {
		c := u.Get(t, x, y)
		u.Set(t+1, c+
			heatCX*(u.Get(t, x+1, y)-2*c+u.Get(t, x-1, y))+
			heatCY*(u.Get(t, x, y+1)-2*c+u.Get(t, x, y-1)), x, y)
	})
}

// interiorBase is the split-pointer interior clone: raw slot walks with
// per-term cursors, the code shape of the compiler's -split-pointer output
// (Fig. 12c).
func (h *heat2D) interiorBase() pochoir.BaseFunc {
	u := h.u
	ys := u.Stride(0)
	return func(z pochoir.Zoid) {
		lo0, hi0 := z.Lo[0], z.Hi[0]
		lo1, hi1 := z.Lo[1], z.Hi[1]
		for t := z.T0; t < z.T1; t++ {
			w := u.Slot(t)
			r := u.Slot(t - 1)
			for x := lo0; x < hi0; x++ {
				base := x * ys
				dst := w[base+lo1 : base+hi1]
				c := r[base+lo1:]
				cl := r[base+lo1-1:]
				cr := r[base+lo1+1:]
				up := r[base-ys+lo1:]
				dn := r[base+ys+lo1:]
				for i := range dst {
					cc := c[i]
					dst[i] = cc + heatCX*(dn[i]-2*cc+up[i]) + heatCY*(cr[i]-2*cc+cl[i])
				}
			}
			lo0 += z.DLo[0]
			hi0 += z.DHi[0]
			lo1 += z.DLo[1]
			hi1 += z.DHi[1]
		}
	}
}

// boundaryBase is the specialized boundary clone: virtual coordinates are
// reduced modulo the grid and every neighbor access is wrapped (periodic)
// or bounds-checked against the zero Dirichlet halo (nonperiodic) — the
// compiled counterpart of the checked template-library path.
func (h *heat2D) boundaryBase() pochoir.BaseFunc {
	u := h.u
	ys := u.Stride(0)
	X, Y := h.X, h.Y
	periodic := h.periodic
	return func(z pochoir.Zoid) {
		lo0, hi0 := z.Lo[0], z.Hi[0]
		lo1, hi1 := z.Lo[1], z.Hi[1]
		for t := z.T0; t < z.T1; t++ {
			w := u.Slot(t)
			r := u.Slot(t - 1)
			for x := lo0; x < hi0; x++ {
				tx := mod(x, X)
				row := tx * ys
				var rowM, rowP int
				rowMOK, rowPOK := true, true
				if periodic {
					rowM = mod(tx-1, X) * ys
					rowP = mod(tx+1, X) * ys
				} else {
					rowM, rowP = row-ys, row+ys
					rowMOK, rowPOK = tx-1 >= 0, tx+1 < X
				}
				for y := lo1; y < hi1; y++ {
					ty := mod(y, Y)
					var xm, xp, ym, yp float64
					if rowMOK {
						xm = r[rowM+ty]
					}
					if rowPOK {
						xp = r[rowP+ty]
					}
					if periodic {
						ym = r[row+mod(ty-1, Y)]
						yp = r[row+mod(ty+1, Y)]
					} else {
						if ty-1 >= 0 {
							ym = r[row+ty-1]
						}
						if ty+1 < Y {
							yp = r[row+ty+1]
						}
					}
					c := r[row+ty]
					w[row+ty] = c + heatCX*(xp-2*c+xm) + heatCY*(yp-2*c+ym)
				}
			}
			lo0 += z.DLo[0]
			hi0 += z.DHi[0]
			lo1 += z.DLo[1]
			hi1 += z.DHi[1]
		}
	}
}

// interiorBaseMacro is the -split-macro-shadow interior clone (Fig. 12b):
// full address arithmetic per access, no boundary checks, no cursors.
func (h *heat2D) interiorBaseMacro() pochoir.BaseFunc {
	u := h.u
	ys := u.Stride(0)
	return func(z pochoir.Zoid) {
		lo0, hi0 := z.Lo[0], z.Hi[0]
		lo1, hi1 := z.Lo[1], z.Hi[1]
		for t := z.T0; t < z.T1; t++ {
			w := u.Slot(t)
			r := u.Slot(t - 1)
			for x := lo0; x < hi0; x++ {
				for y := lo1; y < hi1; y++ {
					cc := r[x*ys+y]
					w[x*ys+y] = cc + heatCX*(r[(x+1)*ys+y]-2*cc+r[(x-1)*ys+y]) +
						heatCY*(r[x*ys+y+1]-2*cc+r[x*ys+y-1])
				}
			}
			lo0 += z.DLo[0]
			hi0 += z.DHi[0]
			lo1 += z.DLo[1]
			hi1 += z.DHi[1]
		}
	}
}

// PochoirMacroShadow runs with the Fig. 12(b)-style interior clone; the
// Fig. 13 experiment compares it against the split-pointer default.
func (h *heat2D) PochoirMacroShadow(opts pochoir.Options) Job {
	return Job{
		Setup: func() { h.setupPochoir() },
		Compute: func() {
			h.st.SetOptions(opts)
			b := pochoir.BaseKernels{
				Interior: h.interiorBaseMacro(),
				Boundary: h.boundaryBase(),
			}
			if err := h.st.RunSpecialized(h.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return h.pochoirResult() },
	}
}

func (h *heat2D) pochoirResult() []float64 {
	out := make([]float64, h.X*h.Y)
	if err := h.u.CopyOut(h.steps, out); err != nil {
		panic(err)
	}
	return out
}

func (h *heat2D) Pochoir(opts pochoir.Options) Job {
	return Job{
		Setup: func() { h.setupPochoir() },
		Compute: func() {
			h.st.SetOptions(opts)
			b := pochoir.BaseKernels{
				Interior: h.interiorBase(),
				Boundary: h.boundaryBase(),
			}
			if err := h.st.RunSpecialized(h.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return h.pochoirResult() },
	}
}

// PochoirNoInterior is the §4 modular-indexing ablation: every zoid takes
// the boundary clone, so every access pays the modulo/boundary check.
func (h *heat2D) PochoirNoInterior(opts pochoir.Options) Job {
	return Job{
		Setup: func() { h.setupPochoir() },
		Compute: func() {
			h.st.SetOptions(opts)
			// The compiled modular-indexing code everywhere — the paper's
			// comparison point for code cloning.
			b := pochoir.BaseKernels{Boundary: h.boundaryBase()}
			if err := h.st.RunSpecialized(h.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return h.pochoirResult() },
	}
}

func (h *heat2D) PochoirGeneric(opts pochoir.Options) Job {
	return Job{
		Setup: func() { h.setupPochoir() },
		Compute: func() {
			h.st.SetOptions(opts)
			if err := h.st.Run(h.steps, h.pointKernel()); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return h.pochoirResult() },
	}
}

// ---- LOOPS baseline ----

func (h *heat2D) setupLoops() {
	if h.periodic {
		h.cur = make([]float64, h.X*h.Y)
		h.next = make([]float64, h.X*h.Y)
		fillRand(h.cur, 2000)
		return
	}
	// Ghost cells: a zero halo one cell wide around the grid.
	px, py := h.X+2, h.Y+2
	h.cur = make([]float64, px*py)
	h.next = make([]float64, px*py)
	init := make([]float64, h.X*h.Y)
	fillRand(init, 2000)
	for x := 0; x < h.X; x++ {
		copy(h.cur[(x+1)*py+1:(x+1)*py+1+h.Y], init[x*h.Y:(x+1)*h.Y])
	}
}

func (h *heat2D) loopsCompute(parallel bool) {
	X, Y := h.X, h.Y
	if h.periodic {
		// Modular indexing on every access, per the paper's periodic
		// loop baseline (Fig. 1).
		loops.Run(0, h.steps, parallel, X, 1, func(t, x0, x1 int) {
			cur, next := h.cur, h.next
			if t%2 == 1 {
				cur, next = next, cur
			}
			for x := x0; x < x1; x++ {
				xm := ((x-1)%X + X) % X
				xp := (x + 1) % X
				row, rowm, rowp := x*Y, xm*Y, xp*Y
				for y := 0; y < Y; y++ {
					ym := ((y-1)%Y + Y) % Y
					yp := (y + 1) % Y
					c := cur[row+y]
					next[row+y] = c + heatCX*(cur[rowp+y]-2*c+cur[rowm+y]) +
						heatCY*(cur[row+yp]-2*c+cur[row+ym])
				}
			}
		})
		return
	}
	// Ghost-cell halo: branch-free inner loops over the padded grid.
	py := Y + 2
	loops.Run(0, h.steps, parallel, X, 1, func(t, x0, x1 int) {
		cur, next := h.cur, h.next
		if t%2 == 1 {
			cur, next = next, cur
		}
		for x := x0; x < x1; x++ {
			base := (x + 1) * py
			dst := next[base+1 : base+1+Y]
			c := cur[base+1:]
			cl := cur[base:]
			cr := cur[base+2:]
			up := cur[base-py+1:]
			dn := cur[base+py+1:]
			for i := range dst {
				cc := c[i]
				dst[i] = cc + heatCX*(dn[i]-2*cc+up[i]) + heatCY*(cr[i]-2*cc+cl[i])
			}
		}
	})
}

func (h *heat2D) loopsResult() []float64 {
	final := h.cur
	if h.steps%2 == 1 {
		final = h.next
	}
	if h.periodic {
		return append([]float64(nil), final...)
	}
	py := h.Y + 2
	out := make([]float64, h.X*h.Y)
	for x := 0; x < h.X; x++ {
		copy(out[x*h.Y:(x+1)*h.Y], final[(x+1)*py+1:(x+1)*py+1+h.Y])
	}
	return out
}

func (h *heat2D) LoopsSerial() Job {
	return Job{
		Setup:   func() { h.setupLoops() },
		Compute: func() { h.loopsCompute(false) },
		Result:  func() []float64 { return h.loopsResult() },
	}
}

func (h *heat2D) LoopsParallel() Job {
	return Job{
		Setup:   func() { h.setupLoops() },
		Compute: func() { h.loopsCompute(true) },
		Result:  func() []float64 { return h.loopsResult() },
	}
}
