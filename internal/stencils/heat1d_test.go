package stencils

import (
	"testing"

	"pochoir"
)

func TestHeat1DPeriodicAllPaths(t *testing.T) {
	f := NewHeat1DFactory(true)
	checkAllPaths(t, func() Instance { return f.New([]int{211}, 63) }, true)
}

func TestHeat1DNonperiodicAllPaths(t *testing.T) {
	f := NewHeat1DFactory(false)
	checkAllPaths(t, func() Instance { return f.New([]int{190}, 55) }, true)
}

func TestHeat1DMacroShadow(t *testing.T) {
	f := NewHeat1DFactory(true)
	ref := f.New([]int{150}, 40).LoopsSerial().Run()
	inst := f.New([]int{150}, 40).(*heat1D)
	got := inst.PochoirMacroShadow(pochoir.Options{}).Run()
	agree(t, "Heat1p/macro-shadow", ref, got, true)
}

func TestHeat4DAllPaths(t *testing.T) {
	f := NewHeat4DFactory()
	checkAllPaths(t, func() Instance { return f.New([]int{9, 8, 10, 11}, 7) }, true)
}
