package stencils

import (
	"math"
	"testing"

	"pochoir"
)

// agree compares two final states; when exact is true they must be
// bitwise identical (all paths evaluate the same expression tree per point).
func agree(t *testing.T, name string, a, b []float64, exact bool) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: result lengths differ: %d vs %d", name, len(a), len(b))
	}
	worst, worstIdx := 0.0, -1
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > worst {
			worst, worstIdx = d, i
		}
	}
	tol := 0.0
	if !exact {
		tol = 1e-9
	}
	if worst > tol {
		t.Fatalf("%s: results differ by %g at index %d (%g vs %g)",
			name, worst, worstIdx, a[worstIdx], b[worstIdx])
	}
}

// checkAllPaths runs every execution path of the instance factory and
// verifies they agree. mk must return a fresh instance per call.
func checkAllPaths(t *testing.T, mk func() Instance, exact bool) {
	t.Helper()
	ref := mk().LoopsSerial().Run()
	type path struct {
		name string
		job  Job
	}
	paths := []path{
		{"LoopsParallel", mk().LoopsParallel()},
		{"Pochoir", mk().Pochoir(pochoir.Options{})},
		{"Pochoir serial", mk().Pochoir(pochoir.Options{Serial: true})},
		{"Pochoir STRAP", mk().Pochoir(pochoir.Options{Algorithm: 1})},
		{"Pochoir fine", mk().Pochoir(pochoir.Options{TimeCutoff: 2, Grain: 1})},
		{"PochoirGeneric", mk().PochoirGeneric(pochoir.Options{})},
	}
	for _, p := range paths {
		got := p.job.Run()
		agree(t, mk().Name()+"/"+p.name, ref, got, exact)
	}
}

func TestFactoriesRegistered(t *testing.T) {
	all := All()
	if len(all) < 2 {
		t.Fatalf("registry has %d entries", len(all))
	}
	seen := map[string]bool{}
	last := -1
	for _, f := range all {
		if seen[f.Name] {
			t.Fatalf("duplicate factory %q", f.Name)
		}
		seen[f.Name] = true
		if f.Order < last {
			t.Fatalf("registry not ordered at %q", f.Name)
		}
		last = f.Order
		if f.New == nil || f.Dims < 1 {
			t.Fatalf("factory %q incomplete", f.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("Heat 2p"); !ok {
		t.Fatal("Heat 2p should be registered")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown benchmark should not resolve")
	}
}

func TestInstanceMetadata(t *testing.T) {
	for _, f := range All() {
		inst := f.New(nil, 0)
		if inst.Name() == "" || inst.Dims() != f.Dims {
			t.Errorf("%s: bad metadata", f.Name)
		}
		if inst.Steps() <= 0 || inst.Points() <= 0 || inst.FlopsPerPoint() < 0 {
			t.Errorf("%s: nonpositive workload: steps=%d points=%d", f.Name, inst.Steps(), inst.Points())
		}
		if len(inst.Sizes()) != f.Dims {
			t.Errorf("%s: sizes/dims mismatch", f.Name)
		}
		if f.PaperSteps <= 0 || len(f.PaperSizes) != f.Dims {
			t.Errorf("%s: paper workload not recorded", f.Name)
		}
	}
}
