package stencils

import (
	"math"

	"pochoir"
	"pochoir/internal/loops"
)

// APOP (Fig. 3 row "APOP"): American put option pricing by backward
// induction on an explicit finite-difference scheme over a log-price grid
// (Hull, "Options, Futures, and Other Derivatives" — the paper's [24]):
//
//	v(t+1,i) = max(payoff_i, A*v(t,i-1) + B*v(t,i) + C*v(t,i+1)),
//
// where t counts backward steps from expiry and the per-point max encodes
// the early-exercise condition. The time step is set from the explicit
// scheme's stability bound dt <= dx^2/sigma^2, as any explicit FD pricer
// must.

const (
	apopStrike = 100.0
	apopSigma  = 0.3
	apopRate   = 0.05
	apopHalfW  = 4.0 // log-price grid spans ln(K) +- apopHalfW
)

func init() { register(NewAPOPFactory()) }

// NewAPOPFactory returns the APOP benchmark.
func NewAPOPFactory() Factory {
	return Factory{
		Name:       "APOP",
		Order:      10,
		Dims:       1,
		PaperSizes: []int{2000000},
		PaperSteps: 10000,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{400000}, 2000)
			return newAPOP(sizes[0], steps)
		},
		Shape:    APOPShape,
		Periodic: []bool{false},
	}
}

type apop struct {
	N     int
	steps int

	dx, dt     float64
	x0         float64
	ca, cb, cc float64 // FD coefficients

	st *pochoir.Stencil[float64]
	v  *pochoir.Array[float64]

	pay       []float64 // memoized payoff per node
	cur, next []float64 // padded loop buffers
}

func newAPOP(n, steps int) *apop {
	a := &apop{N: n, steps: steps}
	a.x0 = math.Log(apopStrike) - apopHalfW
	a.dx = 2 * apopHalfW / float64(n-1)
	// Stability: dt*sigma^2/dx^2 <= 0.8.
	a.dt = 0.8 * a.dx * a.dx / (apopSigma * apopSigma)
	nu := apopRate - 0.5*apopSigma*apopSigma
	d2 := apopSigma * apopSigma / (a.dx * a.dx)
	a.ca = 0.5 * a.dt * (d2 - nu/a.dx)
	a.cb = 1 - a.dt*(d2+apopRate)
	a.cc = 0.5 * a.dt * (d2 + nu/a.dx)
	return a
}

func (a *apop) Name() string           { return "APOP" }
func (a *apop) Dims() int              { return 1 }
func (a *apop) Sizes() []int           { return []int{a.N} }
func (a *apop) Steps() int             { return a.steps }
func (a *apop) Points() int64          { return int64(a.N) }
func (a *apop) FlopsPerPoint() float64 { return 7 }

// APOPShape is the three-point depth-1 shape.
func APOPShape() *pochoir.Shape {
	return pochoir.MustShape(1, [][]int{{1, 0}, {0, 0}, {0, 1}, {0, -1}})
}

// payoffAt computes the immediate-exercise value at grid index i (which
// may lie off the grid; the boundary function uses that).
func (a *apop) payoffAt(i int) float64 {
	v := apopStrike - math.Exp(a.x0+float64(i)*a.dx)
	if v < 0 {
		return 0
	}
	return v
}

// payoff returns the memoized in-domain payoff table; every execution path
// uses it so the (expensive) exp is evaluated once per node, not once per
// point update.
func (a *apop) payoff(i int) float64 {
	if i < 0 || i >= a.N {
		return a.payoffAt(i)
	}
	return a.pay[i]
}

func (a *apop) fillPayoff() {
	if a.pay == nil {
		a.pay = make([]float64, a.N)
		for i := range a.pay {
			a.pay[i] = a.payoffAt(i)
		}
	}
}

func (a *apop) setupPochoir() {
	a.fillPayoff()
	sh := APOPShape()
	a.st = pochoir.New[float64](sh)
	a.v = pochoir.MustArray[float64](sh.Depth(), a.N)
	// Off-grid values: the payoff extended beyond the grid (deep
	// in-the-money on the left, worthless on the right).
	a.v.RegisterBoundary(pochoir.DirichletBoundary(func(t int, idx []int) float64 {
		return a.payoff(idx[0])
	}))
	a.st.MustRegisterArray(a.v)
	init := make([]float64, a.N)
	for i := range init {
		init[i] = a.payoff(i)
	}
	if err := a.v.CopyIn(0, init); err != nil {
		panic(err)
	}
}

func (a *apop) pointKernel() pochoir.Kernel {
	v := a.v
	return pochoir.K1(func(t, i int) {
		cont := a.ca*v.Get(t, i-1) + a.cb*v.Get(t, i) + a.cc*v.Get(t, i+1)
		if p := a.payoff(i); p > cont {
			cont = p
		}
		v.Set(t+1, cont, i)
	})
}

func (a *apop) interiorBase() pochoir.BaseFunc {
	v := a.v
	return func(z pochoir.Zoid) {
		lo, hi := z.Lo[0], z.Hi[0]
		for t := z.T0; t < z.T1; t++ {
			w := v.Slot(t)
			r := v.Slot(t - 1)
			dst := w[lo:hi]
			cm := r[lo-1:]
			c := r[lo:]
			cp := r[lo+1:]
			for i := range dst {
				cont := a.ca*cm[i] + a.cb*c[i] + a.cc*cp[i]
				if p := a.pay[lo+i]; p > cont {
					cont = p
				}
				dst[i] = cont
			}
			lo += z.DLo[0]
			hi += z.DHi[0]
		}
	}
}

// boundaryBase is the specialized boundary clone: edge accesses see the
// extended payoff, matching the Dirichlet boundary function.
func (a *apop) boundaryBase() pochoir.BaseFunc {
	v := a.v
	N := a.N
	return func(z pochoir.Zoid) {
		lo, hi := z.Lo[0], z.Hi[0]
		for t := z.T0; t < z.T1; t++ {
			w := v.Slot(t)
			r := v.Slot(t - 1)
			for i := lo; i < hi; i++ {
				ti := mod(i, N)
				vm, vp := a.payoff(ti-1), a.payoff(ti+1)
				if ti-1 >= 0 {
					vm = r[ti-1]
				}
				if ti+1 < N {
					vp = r[ti+1]
				}
				cont := a.ca*vm + a.cb*r[ti] + a.cc*vp
				if p := a.pay[ti]; p > cont {
					cont = p
				}
				w[ti] = cont
			}
			lo += z.DLo[0]
			hi += z.DHi[0]
		}
	}
}

func (a *apop) pochoirResult() []float64 {
	out := make([]float64, a.N)
	if err := a.v.CopyOut(a.steps, out); err != nil {
		panic(err)
	}
	return out
}

func (a *apop) Pochoir(opts pochoir.Options) Job {
	return Job{
		Setup: func() { a.setupPochoir() },
		Compute: func() {
			a.st.SetOptions(opts)
			b := pochoir.BaseKernels{
				Interior: a.interiorBase(),
				Boundary: a.boundaryBase(),
			}
			if err := a.st.RunSpecialized(a.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return a.pochoirResult() },
	}
}

func (a *apop) PochoirGeneric(opts pochoir.Options) Job {
	return Job{
		Setup: func() { a.setupPochoir() },
		Compute: func() {
			a.st.SetOptions(opts)
			if err := a.st.Run(a.steps, a.pointKernel()); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return a.pochoirResult() },
	}
}

// ---- LOOPS baseline (ghost cells holding the extended payoff) ----

func (a *apop) setupLoops() {
	a.fillPayoff()
	a.cur = make([]float64, a.N+2)
	a.next = make([]float64, a.N+2)
	for i := 0; i < a.N; i++ {
		a.cur[i+1] = a.payoff(i)
	}
	// The halo is constant in time: set it in both buffers once.
	for _, b := range [][]float64{a.cur, a.next} {
		b[0] = a.payoff(-1)
		b[a.N+1] = a.payoff(a.N)
	}
}

func (a *apop) loopsCompute(parallel bool) {
	loops.Run(0, a.steps, parallel, a.N, 4096, func(t, i0, i1 int) {
		cur, next := a.cur, a.next
		if t%2 == 1 {
			cur, next = next, cur
		}
		dst := next[i0+1 : i1+1]
		cm := cur[i0:]
		c := cur[i0+1:]
		cp := cur[i0+2:]
		for i := range dst {
			cont := a.ca*cm[i] + a.cb*c[i] + a.cc*cp[i]
			if p := a.pay[i0+i]; p > cont {
				cont = p
			}
			dst[i] = cont
		}
	})
}

func (a *apop) loopsResult() []float64 {
	final := a.cur
	if a.steps%2 == 1 {
		final = a.next
	}
	return append([]float64(nil), final[1:a.N+1]...)
}

func (a *apop) LoopsSerial() Job {
	return Job{Setup: a.setupLoops, Compute: func() { a.loopsCompute(false) }, Result: a.loopsResult}
}

func (a *apop) LoopsParallel() Job {
	return Job{Setup: a.setupLoops, Compute: func() { a.loopsCompute(true) }, Result: a.loopsResult}
}

// PriceAtStrike returns the option value at the grid point nearest the
// strike after the run.
func (a *apop) PriceAtStrike(final []float64) float64 {
	i := int((math.Log(apopStrike) - a.x0) / a.dx)
	return final[i]
}
