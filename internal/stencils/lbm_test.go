package stencils

import (
	"math"
	"testing"

	"pochoir"
)

func TestLBMAllPaths(t *testing.T) {
	f := NewLBMFactory()
	checkAllPaths(t, func() Instance { return f.New([]int{14, 12, 16}, 9) }, true)
}

// TestLBMConservesMass: BGK collision conserves density, and clamped walls
// only copy values, so total mass drifts only through wall in/outflow;
// on a uniform-density field it must be exactly conserved.
func TestLBMConservesMass(t *testing.T) {
	f := NewLBMFactory().New([]int{10, 10, 10}, 12).(*lbm)
	// Uniform density: equilibrium at rest is a fixed point.
	job := f.Pochoir(pochoir.Options{})
	job.Setup()
	uniform := make([]LBMCell, f.Points())
	for p := range uniform {
		for i := 0; i < LBMQ; i++ {
			uniform[p][i] = lbmW[i]
		}
	}
	if err := f.f.CopyIn(0, uniform); err != nil {
		t.Fatal(err)
	}
	job.Compute()
	out := job.Result()
	mass := 0.0
	for _, v := range out {
		mass += v
	}
	want := float64(f.Points())
	if math.Abs(mass-want) > 1e-9*want {
		t.Fatalf("mass %g, want %g", mass, want)
	}
	// Uniform equilibrium must be an exact fixed point per distribution.
	for i, v := range out {
		if math.Abs(v-lbmW[i%LBMQ]) > 1e-12 {
			t.Fatalf("distribution %d drifted: %g vs %g", i, v, lbmW[i%LBMQ])
		}
	}
}

func TestLBMShape(t *testing.T) {
	sh := LBMShape()
	if sh.Depth() != 1 {
		t.Fatalf("depth %d", sh.Depth())
	}
	for d := 0; d < 3; d++ {
		if sh.Slope(d) != 1 || sh.Reach(d) != 1 {
			t.Fatalf("dim %d slope/reach %d/%d", d, sh.Slope(d), sh.Reach(d))
		}
	}
	if len(sh.Cells) != 20 {
		t.Fatalf("cells %d, want 20 (home + 19 velocities)", len(sh.Cells))
	}
}

// TestLBMWeightsSum checks the D3Q19 lattice constants.
func TestLBMWeightsSum(t *testing.T) {
	sum := 0.0
	for _, w := range lbmW {
		sum += w
	}
	if math.Abs(sum-1) > 1e-15 {
		t.Fatalf("weights sum to %g", sum)
	}
	// Velocity set must be symmetric: sum of e_i is zero.
	var s [3]int
	for _, e := range lbmE {
		for d := 0; d < 3; d++ {
			s[d] += e[d]
		}
	}
	if s != [3]int{} {
		t.Fatalf("velocity set asymmetric: %v", s)
	}
}
