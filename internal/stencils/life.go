package stencils

import (
	"pochoir"
	"pochoir/internal/loops"
)

// Life 2p (Fig. 3 row "Life 2p"): Conway's Game of Life on a torus. The
// stencil's shape is the full Moore neighborhood (slope 1 in both
// dimensions, including diagonals); the kernel counts live neighbors and
// applies the birth/survival rules.

func init() { register(NewLifeFactory()) }

// NewLifeFactory returns the Life 2p benchmark.
func NewLifeFactory() Factory {
	return Factory{
		Name:       "Life 2p",
		Order:      4,
		Dims:       2,
		PaperSizes: []int{16000, 16000},
		PaperSteps: 500,
		New: func(sizes []int, steps int) Instance {
			sizes, steps = defaults(sizes, steps, []int{2000, 2000}, 64)
			return &life{X: sizes[0], Y: sizes[1], steps: steps}
		},
		Shape:    LifeShape,
		Periodic: []bool{true, true},
	}
}

type life struct {
	X, Y  int
	steps int

	st *pochoir.Stencil[uint8]
	u  *pochoir.Array[uint8]

	cur, next []uint8
}

func (l *life) Name() string           { return "Life 2p" }
func (l *life) Dims() int              { return 2 }
func (l *life) Sizes() []int           { return []int{l.X, l.Y} }
func (l *life) Steps() int             { return l.steps }
func (l *life) Points() int64          { return int64(l.X) * int64(l.Y) }
func (l *life) FlopsPerPoint() float64 { return 0 } // integer kernel

// LifeShape is the Moore-neighborhood shape.
func LifeShape() *pochoir.Shape {
	cells := [][]int{{1, 0, 0}, {0, 0, 0}}
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			cells = append(cells, []int{0, dx, dy})
		}
	}
	return pochoir.MustShape(2, cells)
}

// lifeRule applies Conway's rules given the current state and live count.
func lifeRule(c, n uint8) uint8 {
	if n == 3 || (n == 2 && c == 1) {
		return 1
	}
	return 0
}

func lifeInit(X, Y int) []uint8 {
	f := make([]float64, X*Y)
	fillRand(f, 3000)
	g := make([]uint8, X*Y)
	for i, v := range f {
		if v < 0.35 {
			g[i] = 1
		}
	}
	return g
}

func (l *life) setupPochoir() {
	sh := LifeShape()
	l.st = pochoir.New[uint8](sh)
	l.u = pochoir.MustArray[uint8](sh.Depth(), l.X, l.Y)
	l.u.RegisterBoundary(pochoir.PeriodicBoundary[uint8]())
	l.st.MustRegisterArray(l.u)
	if err := l.u.CopyIn(0, lifeInit(l.X, l.Y)); err != nil {
		panic(err)
	}
}

func (l *life) pointKernel() pochoir.Kernel {
	u := l.u
	return pochoir.K2(func(t, x, y int) {
		n := u.Get(t, x-1, y-1) + u.Get(t, x-1, y) + u.Get(t, x-1, y+1) +
			u.Get(t, x, y-1) + u.Get(t, x, y+1) +
			u.Get(t, x+1, y-1) + u.Get(t, x+1, y) + u.Get(t, x+1, y+1)
		u.Set(t+1, lifeRule(u.Get(t, x, y), n), x, y)
	})
}

func (l *life) interiorBase() pochoir.BaseFunc {
	u := l.u
	ys := u.Stride(0)
	return func(z pochoir.Zoid) {
		lo0, hi0 := z.Lo[0], z.Hi[0]
		lo1, hi1 := z.Lo[1], z.Hi[1]
		for t := z.T0; t < z.T1; t++ {
			w := u.Slot(t)
			r := u.Slot(t - 1)
			for x := lo0; x < hi0; x++ {
				base := x * ys
				dst := w[base+lo1 : base+hi1]
				up := r[base-ys+lo1-1:]
				mid := r[base+lo1-1:]
				dn := r[base+ys+lo1-1:]
				for i := range dst {
					n := up[i] + up[i+1] + up[i+2] +
						mid[i] + mid[i+2] +
						dn[i] + dn[i+1] + dn[i+2]
					dst[i] = lifeRule(mid[i+1], n)
				}
			}
			lo0 += z.DLo[0]
			hi0 += z.DHi[0]
			lo1 += z.DLo[1]
			hi1 += z.DHi[1]
		}
	}
}

// boundaryBase is the specialized boundary clone: wrapped (toroidal)
// neighbor indexing, compiled.
func (l *life) boundaryBase() pochoir.BaseFunc {
	u := l.u
	ys := u.Stride(0)
	X, Y := l.X, l.Y
	return func(z pochoir.Zoid) {
		lo0, hi0 := z.Lo[0], z.Hi[0]
		lo1, hi1 := z.Lo[1], z.Hi[1]
		for t := z.T0; t < z.T1; t++ {
			w := u.Slot(t)
			r := u.Slot(t - 1)
			for x := lo0; x < hi0; x++ {
				tx := mod(x, X)
				row := tx * ys
				rowM := mod(tx-1, X) * ys
				rowP := mod(tx+1, X) * ys
				for y := lo1; y < hi1; y++ {
					ty := mod(y, Y)
					ym := mod(ty-1, Y)
					yp := mod(ty+1, Y)
					n := r[rowM+ym] + r[rowM+ty] + r[rowM+yp] +
						r[row+ym] + r[row+yp] +
						r[rowP+ym] + r[rowP+ty] + r[rowP+yp]
					w[row+ty] = lifeRule(r[row+ty], n)
				}
			}
			lo0 += z.DLo[0]
			hi0 += z.DHi[0]
			lo1 += z.DLo[1]
			hi1 += z.DHi[1]
		}
	}
}

func u8ToF64(g []uint8) []float64 {
	out := make([]float64, len(g))
	for i, v := range g {
		out[i] = float64(v)
	}
	return out
}

func (l *life) pochoirResult() []float64 {
	out := make([]uint8, l.X*l.Y)
	if err := l.u.CopyOut(l.steps, out); err != nil {
		panic(err)
	}
	return u8ToF64(out)
}

func (l *life) Pochoir(opts pochoir.Options) Job {
	return Job{
		Setup: func() { l.setupPochoir() },
		Compute: func() {
			l.st.SetOptions(opts)
			b := pochoir.BaseKernels{
				Interior: l.interiorBase(),
				Boundary: l.boundaryBase(),
			}
			if err := l.st.RunSpecialized(l.steps, b); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return l.pochoirResult() },
	}
}

func (l *life) PochoirGeneric(opts pochoir.Options) Job {
	return Job{
		Setup: func() { l.setupPochoir() },
		Compute: func() {
			l.st.SetOptions(opts)
			if err := l.st.Run(l.steps, l.pointKernel()); err != nil {
				panic(err)
			}
		},
		Result: func() []float64 { return l.pochoirResult() },
	}
}

// ---- LOOPS baseline (modular indexing; periodic) ----

func (l *life) setupLoops() {
	l.cur = lifeInit(l.X, l.Y)
	l.next = make([]uint8, l.X*l.Y)
}

func (l *life) loopsCompute(parallel bool) {
	X, Y := l.X, l.Y
	loops.Run(0, l.steps, parallel, X, 1, func(t, x0, x1 int) {
		cur, next := l.cur, l.next
		if t%2 == 1 {
			cur, next = next, cur
		}
		for x := x0; x < x1; x++ {
			xm := ((x-1)%X + X) % X
			xp := (x + 1) % X
			row, rowm, rowp := x*Y, xm*Y, xp*Y
			for y := 0; y < Y; y++ {
				ym := ((y-1)%Y + Y) % Y
				yp := (y + 1) % Y
				n := cur[rowm+ym] + cur[rowm+y] + cur[rowm+yp] +
					cur[row+ym] + cur[row+yp] +
					cur[rowp+ym] + cur[rowp+y] + cur[rowp+yp]
				next[row+y] = lifeRule(cur[row+y], n)
			}
		}
	})
}

func (l *life) loopsResult() []float64 {
	final := l.cur
	if l.steps%2 == 1 {
		final = l.next
	}
	return u8ToF64(final)
}

func (l *life) LoopsSerial() Job {
	return Job{Setup: l.setupLoops, Compute: func() { l.loopsCompute(false) }, Result: l.loopsResult}
}

func (l *life) LoopsParallel() Job {
	return Job{Setup: l.setupLoops, Compute: func() { l.loopsCompute(true) }, Result: l.loopsResult}
}
