package loops

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"pochoir/internal/core"
)

func TestRunCoversTimeSteps(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		var marks [8][16]atomic.Int32
		Run(2, 10, parallel, 16, 4, func(tt, i0, i1 int) {
			for i := i0; i < i1; i++ {
				marks[tt-2][i].Add(1)
			}
		})
		for tt := range marks {
			for i := range marks[tt] {
				if marks[tt][i].Load() != 1 {
					t.Fatalf("parallel=%v: step %d index %d ran %d times",
						parallel, tt+2, i, marks[tt][i].Load())
				}
			}
		}
	}
}

// TestRunStepsAreSequential: a step must observe all previous steps done —
// the time loop is serial even when the spatial loop is parallel.
func TestRunStepsAreSequential(t *testing.T) {
	var done [6]atomic.Int32
	Run(0, 6, true, 32, 1, func(tt, i0, i1 int) {
		for prev := 0; prev < tt; prev++ {
			if done[prev].Load() != 32 {
				t.Errorf("step %d started before step %d finished", tt, prev)
				return
			}
		}
		done[tt].Add(int32(i1 - i0))
	})
	for tt := range done {
		if done[tt].Load() != 32 {
			t.Fatalf("step %d incomplete", tt)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	called := false
	Run(3, 3, true, 8, 1, func(tt, i0, i1 int) { called = true })
	if called {
		t.Fatal("no steps should run")
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	ref := make([]int, 16)
	Run(0, 4, false, 16, 4, func(tt, i0, i1 int) {
		for i := i0; i < i1; i++ {
			ref[i] += tt + 1
		}
	})
	got := make([]int, 16)
	if err := RunContext(context.Background(), 0, 4, false, 16, 4, func(tt, i0, i1 int) {
		for i := i0; i < i1; i++ {
			got[i] += tt + 1
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("index %d: got %d, want %d", i, got[i], ref[i])
		}
	}
}

func TestRunContextDeadOnArrival(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := RunContext(ctx, 0, 4, true, 16, 4, func(tt, i0, i1 int) { called = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("step ran under a dead context")
	}
}

func TestRunContextCancelsMidRun(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		var steps atomic.Int32
		err := RunContext(ctx, 0, 1000, parallel, 8, 8, func(tt, i0, i1 int) {
			if steps.Add(1) == 3 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%v: err = %v, want context.Canceled", parallel, err)
		}
		// Cancellation is checked once per chunk: the run must stop within
		// a couple of time steps, nowhere near the full 1000.
		if n := steps.Load(); n > 20 {
			t.Fatalf("parallel=%v: %d chunks ran after cancel", parallel, n)
		}
	}
}

func TestRunContextWrapsKernelPanic(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		err := RunContext(context.Background(), 2, 6, parallel, 32, 8, func(tt, i0, i1 int) {
			if tt == 4 && i0 <= 8 && 8 < i1 {
				panic("loop kernel exploded")
			}
		})
		var kp *core.KernelPanicError
		if !errors.As(err, &kp) {
			t.Fatalf("parallel=%v: err = %T %v, want *core.KernelPanicError", parallel, err, err)
		}
		if kp.Value != "loop kernel exploded" {
			t.Fatalf("parallel=%v: Value = %v", parallel, kp.Value)
		}
		if kp.Zoid.T0 != 4 || kp.Zoid.T1 != 5 || kp.Zoid.Lo[0] > 8 || kp.Zoid.Hi[0] <= 8 {
			t.Fatalf("parallel=%v: zoid = %+v, want t=[4,5) covering index 8", parallel, kp.Zoid)
		}
		if len(kp.Stack) == 0 {
			t.Fatalf("parallel=%v: stack not captured", parallel)
		}
	}
}

func TestRunContextEmptyAndReversed(t *testing.T) {
	if err := RunContext(context.Background(), 5, 5, true, 8, 1, func(tt, i0, i1 int) {
		t.Fatal("step ran")
	}); err != nil {
		t.Fatal(err)
	}
	if err := RunContext(context.Background(), 9, 5, true, 8, 1, func(tt, i0, i1 int) {
		t.Fatal("step ran")
	}); err != nil {
		t.Fatal(err)
	}
}
