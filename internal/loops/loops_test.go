package loops

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversTimeSteps(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		var marks [8][16]atomic.Int32
		Run(2, 10, parallel, 16, 4, func(tt, i0, i1 int) {
			for i := i0; i < i1; i++ {
				marks[tt-2][i].Add(1)
			}
		})
		for tt := range marks {
			for i := range marks[tt] {
				if marks[tt][i].Load() != 1 {
					t.Fatalf("parallel=%v: step %d index %d ran %d times",
						parallel, tt+2, i, marks[tt][i].Load())
				}
			}
		}
	}
}

// TestRunStepsAreSequential: a step must observe all previous steps done —
// the time loop is serial even when the spatial loop is parallel.
func TestRunStepsAreSequential(t *testing.T) {
	var done [6]atomic.Int32
	Run(0, 6, true, 32, 1, func(tt, i0, i1 int) {
		for prev := 0; prev < tt; prev++ {
			if done[prev].Load() != 32 {
				t.Errorf("step %d started before step %d finished", tt, prev)
				return
			}
		}
		done[tt].Add(int32(i1 - i0))
	})
	for tt := range done {
		if done[tt].Load() != 32 {
			t.Fatalf("step %d incomplete", tt)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	called := false
	Run(3, 3, true, 8, 1, func(tt, i0, i1 int) { called = true })
	if called {
		t.Fatal("no steps should run")
	}
}
