// Package loops implements the LOOPS baseline of the paper's Fig. 1: a
// stencil computation as a time-serial sequence of (optionally parallel)
// loop nests over the spatial grid. Only the outermost spatial loop is
// parallelized, as the paper notes is sufficient in practice.
//
// The per-benchmark inner loops live with the stencils; this package
// provides the shared driver. Run is the raw baseline used by the
// benchmark comparisons; RunContext is the same driver under the hardened
// execution contract — cooperative context cancellation checked once per
// chunk, and kernel panics converted to *core.KernelPanicError with the
// time step and slab attached — matching what the recursive engines
// promise.
package loops

import (
	"context"
	"runtime/debug"
	"sync/atomic"

	"pochoir/internal/core"
	"pochoir/internal/sched"
	"pochoir/internal/zoid"
)

// Run executes time steps t in [t0, t1). For each step the outermost
// spatial dimension [0, size0) is split into chunks of at least grain
// indices, processed in parallel when parallel is true; step computes the
// slab [i0, i1) of time step t.
func Run(t0, t1 int, parallel bool, size0, grain int, step func(t, i0, i1 int)) {
	for t := t0; t < t1; t++ {
		sched.For(parallel, 0, size0, grain, func(i0, i1 int) {
			step(t, i0, i1)
		})
	}
}

// RunContext is Run under the hardened execution contract. A watcher
// goroutine latches an atomic flag when ctx fires and every chunk checks it
// before running — one atomic load per slab, never inside the inner loops —
// so a cancelled or deadlined run returns ctx.Err() within about one chunk
// duration. A panicking step function is recovered and returned as a
// *core.KernelPanicError whose zoid names the time step and the dimension-0
// slab that was executing (panics that already crossed a sched sync point
// keep their original attribution). Like the recursive engines, a failed or
// cancelled run leaves the buffers partially updated; the caller owns any
// rollback.
func RunContext(ctx context.Context, t0, t1 int, parallel bool, size0, grain int, step func(t, i0, i1 int)) (err error) {
	if err := ctx.Err(); err != nil {
		return err
	}
	if t1 <= t0 {
		return nil
	}
	var flag atomic.Bool
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		watcher := make(chan struct{})
		go func() {
			defer close(watcher)
			select {
			case <-done:
				flag.Store(true)
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			<-watcher
			if err == nil && flag.Load() {
				err = ctx.Err()
			}
		}()
	}
	defer func() {
		if r := recover(); r != nil {
			err = core.PanicToError(r)
		}
	}()
	for t := t0; t < t1; t++ {
		// Between time steps the context is consulted directly — the serial
		// loop would otherwise outrun the watcher goroutine; the watcher's
		// flag remains the chunk-grained fast check inside a step.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if flag.Load() {
			return nil // the watcher defer reports ctx.Err()
		}
		tt := t
		sched.For(parallel, 0, size0, grain, func(i0, i1 int) {
			if flag.Load() {
				return
			}
			defer func() {
				if r := recover(); r != nil {
					switch r.(type) {
					case *core.KernelPanicError, *sched.PanicError:
						panic(r) // already located
					}
					z := zoid.Zoid{N: 1, T0: tt, T1: tt + 1}
					z.Lo[0], z.Hi[0] = i0, i1
					panic(&core.KernelPanicError{Value: r, Stack: debug.Stack(), Zoid: z})
				}
			}()
			step(tt, i0, i1)
		})
	}
	return nil
}
