// Package loops implements the LOOPS baseline of the paper's Fig. 1: a
// stencil computation as a time-serial sequence of (optionally parallel)
// loop nests over the spatial grid. Only the outermost spatial loop is
// parallelized, as the paper notes is sufficient in practice.
//
// The per-benchmark inner loops live with the stencils; this package
// provides the shared driver.
package loops

import "pochoir/internal/sched"

// Run executes time steps t in [t0, t1). For each step the outermost
// spatial dimension [0, size0) is split into chunks of at least grain
// indices, processed in parallel when parallel is true; step computes the
// slab [i0, i1) of time step t.
func Run(t0, t1 int, parallel bool, size0, grain int, step func(t, i0, i1 int)) {
	for t := t0; t < t1; t++ {
		sched.For(parallel, 0, size0, grain, func(i0, i1 int) {
			step(t, i0, i1)
		})
	}
}
