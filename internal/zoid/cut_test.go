package zoid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestHyperspaceCutCounts verifies Lemma 1's structural claims: cutting k
// dimensions yields 3^k subzoids (4 per circle-cut dimension) spread over
// exactly k+1 dependency levels, and the level populations follow the
// binomial pattern implied by the dep formula.
func TestHyperspaceCutCounts(t *testing.T) {
	for k := 1; k <= 4; k++ {
		sizes := make([]int, k)
		for i := range sizes {
			sizes[i] = 64
		}
		z := Box(0, 4, sizes)
		cuts := make([]Cut, k)
		for i := range cuts {
			cuts[i] = Cut{Dim: i, Slope: 1}
		}
		lv := HyperspaceCut(z, cuts)
		want := 1
		for i := 0; i < k; i++ {
			want *= 3
		}
		if lv.Total() != want {
			t.Fatalf("k=%d: %d subzoids, want %d", k, lv.Total(), want)
		}
		if len(lv.Zoids) != k+1 {
			t.Fatalf("k=%d: %d levels, want %d", k, len(lv.Zoids), k+1)
		}
		for l, zs := range lv.Zoids {
			if len(zs) == 0 {
				t.Fatalf("k=%d: level %d empty", k, l)
			}
			// Level l holds C(k,l) gray-choices x 2^(k-l) black-choices.
			binom := 1
			for i := 0; i < l; i++ {
				binom = binom * (k - i) / (i + 1)
			}
			wantL := binom << (k - l)
			if len(zs) != wantL {
				t.Fatalf("k=%d level %d: %d zoids, want %d", k, l, len(zs), wantL)
			}
		}
	}
}

func TestHyperspaceCutVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		d := 1 + rng.Intn(3)
		z := randomZoid(rng, d, 1)
		var cuts []Cut
		for i := 0; i < d; i++ {
			if z.CanSpaceCut(i, 1, 0) {
				cuts = append(cuts, Cut{Dim: i, Slope: 1})
			}
		}
		if len(cuts) == 0 {
			continue
		}
		lv := HyperspaceCut(z, cuts)
		var vol int64
		for _, zs := range lv.Zoids {
			for _, s := range zs {
				vol += s.Volume()
			}
		}
		if vol != z.Volume() {
			t.Fatalf("hyperspace cut volume %d != parent %d for %v", vol, z.Volume(), z)
		}
	}
}

func TestHyperspaceCutDisjointCover(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tested := 0
	for iter := 0; iter < 500 && tested < 40; iter++ {
		z := randomZoid(rng, 2, 1)
		if z.Volume() > 30000 {
			continue
		}
		var cuts []Cut
		for i := 0; i < 2; i++ {
			if z.CanSpaceCut(i, 1, 0) {
				cuts = append(cuts, Cut{Dim: i, Slope: 1})
			}
		}
		if len(cuts) != 2 {
			continue
		}
		tested++
		lv := HyperspaceCut(z, cuts)
		var all []Zoid
		for _, zs := range lv.Zoids {
			all = append(all, zs...)
		}
		checkDisjointCover(t, z, all)
	}
	if tested < 10 {
		t.Fatalf("only exercised %d hyperspace cuts", tested)
	}
}

// TestDependencyLevelsRespectDataFlow is the heart of Lemma 1: for every
// pair of points p (in subzoid A) and q (in subzoid B) where p at time t
// depends on q at time t-1 (within slope distance), either A == B or
// level(B) < level(A). In particular, same-level subzoids are independent.
func TestDependencyLevelsRespectDataFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	slope := 1
	tested := 0
	for iter := 0; iter < 600 && tested < 30; iter++ {
		z := randomZoid(rng, 2, slope)
		if z.Volume() > 15000 || z.Height() < 2 {
			continue
		}
		var cuts []Cut
		for i := 0; i < 2; i++ {
			if z.CanSpaceCut(i, slope, 0) {
				cuts = append(cuts, Cut{Dim: i, Slope: slope})
			}
		}
		if len(cuts) == 0 {
			continue
		}
		tested++
		lv := HyperspaceCut(z, cuts)
		type owner struct{ level, id int }
		find := func(tt, x, y int) (owner, bool) {
			for l, zs := range lv.Zoids {
				for id, c := range zs {
					if c.Contains(tt, []int{x, y}) {
						return owner{l, l*1000 + id}, true
					}
				}
			}
			return owner{}, false
		}
		for tt := z.T0 + 1; tt < z.T1; tt++ {
			dt := tt - z.T0
			for x := z.Lo[0] + z.DLo[0]*dt; x < z.Hi[0]+z.DHi[0]*dt; x++ {
				for y := z.Lo[1] + z.DLo[1]*dt; y < z.Hi[1]+z.DHi[1]*dt; y++ {
					p, ok := find(tt, x, y)
					if !ok {
						t.Fatalf("point (%d,%d,%d) not covered", tt, x, y)
					}
					for dx := -slope; dx <= slope; dx++ {
						for dy := -slope; dy <= slope; dy++ {
							q, ok := find(tt-1, x+dx, y+dy)
							if !ok {
								continue // dependency satisfied outside this cut
							}
							if q.id != p.id && q.level >= p.level {
								t.Fatalf("dependency violation: (%d,%d,%d)@L%d reads (%d,%d,%d)@L%d in %v",
									tt, x, y, p.level, tt-1, x+dx, y+dy, q.level, z)
							}
						}
					}
				}
			}
		}
	}
	if tested < 10 {
		t.Fatalf("only exercised %d zoids", tested)
	}
}

// TestCircleCutDependencies checks the unified-periodic cut: grays depend
// on blacks but blacks never depend on grays or each other, including
// across the wrapped seam.
func TestCircleCutDependencies(t *testing.T) {
	n, h, slope := 24, 6, 1
	z := Box(0, h, []int{n})
	sub, contrib := z.CircleCut(0, slope, n)
	find := func(tt, x int) (int, int) { // returns (piece index, contribution)
		for i, c := range sub {
			if c.Contains(tt, []int{x}) || c.Contains(tt, []int{x + n}) {
				return i, contrib[i]
			}
		}
		t.Fatalf("point (%d,%d) unowned", tt, x)
		return -1, -1
	}
	for tt := 1; tt < h; tt++ {
		for x := 0; x < n; x++ {
			pi, pc := find(tt, x)
			for dx := -slope; dx <= slope; dx++ {
				qx := ((x+dx)%n + n) % n
				qi, qc := find(tt-1, qx)
				if qi != pi && qc >= pc {
					t.Fatalf("circle-cut dependency violation: (%d,%d) piece %d (c=%d) reads (%d,%d) piece %d (c=%d)",
						tt, x, pi, pc, tt-1, qx, qi, qc)
				}
			}
		}
	}
}

// TestHyperspaceWithCircleCut combines a circle cut with a trisection in a
// single hyperspace cut and validates volume and data-flow ordering.
func TestHyperspaceWithCircleCut(t *testing.T) {
	nx, ny, h := 24, 40, 5
	z := Box(0, h, []int{nx, ny})
	// Pretend dim 0 is a full periodic circle and dim 1 was already
	// trisected down to a plain trapezoid: cut both.
	cuts := []Cut{
		{Dim: 0, Slope: 1, Kind: CutCircle, Size: nx},
		{Dim: 1, Slope: 1, Kind: CutTrisect},
	}
	lv := HyperspaceCut(z, cuts)
	if lv.Total() != 4*3 {
		t.Fatalf("expected 12 subzoids, got %d", lv.Total())
	}
	if len(lv.Zoids) != 3 {
		t.Fatalf("expected 3 levels, got %d", len(lv.Zoids))
	}
	var vol int64
	for _, zs := range lv.Zoids {
		for _, s := range zs {
			vol += s.Volume()
		}
	}
	if vol != z.Volume() {
		t.Fatalf("volume %d != %d", vol, z.Volume())
	}
	// Data-flow check with dim-0 wraparound and dim-1 plain.
	type owner struct{ level, id int }
	find := func(tt, x, y int) (owner, bool) {
		for l, zs := range lv.Zoids {
			for id, c := range zs {
				for _, xx := range [...]int{x, x + nx} {
					if c.Contains(tt, []int{xx, y}) {
						return owner{l, l*1000 + id}, true
					}
				}
			}
		}
		return owner{}, false
	}
	for tt := 1; tt < h; tt++ {
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				p, ok := find(tt, x, y)
				if !ok {
					t.Fatalf("point (%d,%d,%d) unowned", tt, x, y)
				}
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						qx := ((x+dx)%nx + nx) % nx
						qy := y + dy
						if qy < 0 || qy >= ny {
							continue // nonperiodic edge in dim 1
						}
						q, ok := find(tt-1, qx, qy)
						if !ok {
							continue
						}
						if q.id != p.id && q.level >= p.level {
							t.Fatalf("violation at (%d,%d,%d)@L%d <- (%d,%d,%d)@L%d",
								tt, x, y, p.level, tt-1, qx, qy, q.level)
						}
					}
				}
			}
		}
	}
}

// Property: SpaceCut never changes height or the untouched dimensions.
func TestSpaceCutPreservesOtherDims(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z := randomZoid(rng, 3, 1)
		i := rng.Intn(3)
		if !z.CanSpaceCut(i, 1, 0) {
			return true
		}
		sub, _ := z.SpaceCut(i, 1)
		for _, s := range sub {
			if s.T0 != z.T0 || s.T1 != z.T1 {
				return false
			}
			for d := 0; d < 3; d++ {
				if d == i {
					continue
				}
				if s.Lo[d] != z.Lo[d] || s.Hi[d] != z.Hi[d] ||
					s.DLo[d] != z.DLo[d] || s.DHi[d] != z.DHi[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
