// Package zoid implements the space-time hypertrapezoid ("zoid") geometry
// underlying Pochoir's trapezoidal decomposition (Tang et al., SPAA 2011, §3).
//
// A (d+1)-zoid Z = (ta,tb; xa0,xb0,dxa0,dxb0; ...; xa_{d-1},...) is the set of
// integer grid points (t, x0, ..., x_{d-1}) with ta <= t < tb and
//
//	xai + dxai*(t-ta) <= xi < xbi + dxbi*(t-ta)
//
// for every spatial dimension i. The dxai/dxbi values are the (inverse)
// slopes of the zoid's sides, following Frigo and Strumpen's terminology.
//
// This package provides the three decomposition primitives of the TRAP
// algorithm — parallel space cuts (trisection), time cuts, and hyperspace
// cuts with dependency-level assignment per Lemma 1 — as pure geometric
// operations. The execution engines (internal/core) and the analytical
// substrates (internal/cilkview, internal/cachesim) all share this code so
// that they decompose space-time identically.
package zoid

import "fmt"

// MaxDims is the maximum number of spatial dimensions a zoid may have.
// Fixed-size arrays keep the recursion allocation-free.
const MaxDims = 8

// Zoid is a (d+1)-dimensional space-time hypertrapezoid.
// The zero value is an empty 0-dimensional zoid.
type Zoid struct {
	T0, T1 int          // time extent: T0 <= t < T1
	N      int          // number of spatial dimensions (d)
	Lo, Hi [MaxDims]int // base coordinates xa_i, xb_i at time T0
	DLo    [MaxDims]int // inverse slope of the lower side, dxa_i
	DHi    [MaxDims]int // inverse slope of the upper side, dxb_i
}

// New constructs a zoid spanning [t0,t1) in time with the given per-dimension
// bases and slopes. The slices must all have the same length, at most MaxDims.
func New(t0, t1 int, lo, hi, dlo, dhi []int) (Zoid, error) {
	n := len(lo)
	if len(hi) != n || len(dlo) != n || len(dhi) != n {
		return Zoid{}, fmt.Errorf("zoid: mismatched dimension slices (%d,%d,%d,%d)",
			len(lo), len(hi), len(dlo), len(dhi))
	}
	if n > MaxDims {
		return Zoid{}, fmt.Errorf("zoid: %d dimensions exceeds MaxDims=%d", n, MaxDims)
	}
	z := Zoid{T0: t0, T1: t1, N: n}
	copy(z.Lo[:], lo)
	copy(z.Hi[:], hi)
	copy(z.DLo[:], dlo)
	copy(z.DHi[:], dhi)
	return z, nil
}

// Box returns the zoid covering the axis-aligned space-time box
// [t0,t1) x [0,size0) x ... — the shape of an initial full-grid computation
// (all slopes zero).
func Box(t0, t1 int, sizes []int) Zoid {
	z := Zoid{T0: t0, T1: t1, N: len(sizes)}
	copy(z.Hi[:], sizes)
	return z
}

// Height returns the time extent tb - ta.
func (z Zoid) Height() int { return z.T1 - z.T0 }

// BottomBase returns the length of the base at time T0 along dimension i.
func (z Zoid) BottomBase(i int) int { return z.Hi[i] - z.Lo[i] }

// TopBase returns the length of the base at time T1 along dimension i
// (the side the zoid would have after Height more steps of slope motion).
func (z Zoid) TopBase(i int) int {
	dt := z.Height()
	return (z.Hi[i] + z.DHi[i]*dt) - (z.Lo[i] + z.DLo[i]*dt)
}

// Width returns the length of the longer of the two bases of the projection
// trapezoid along dimension i.
func (z Zoid) Width(i int) int {
	b, t := z.BottomBase(i), z.TopBase(i)
	if b >= t {
		return b
	}
	return t
}

// Upright reports whether the projection trapezoid along dimension i is
// upright, i.e. its longer base lies at time T0.
func (z Zoid) Upright(i int) bool { return z.BottomBase(i) >= z.TopBase(i) }

// Minimal reports whether the projection trapezoid along dimension i is
// minimal: upright with a zero top base, or inverted with a zero bottom base.
func (z Zoid) MinimalDim(i int) bool {
	if z.Upright(i) {
		return z.TopBase(i) == 0
	}
	return z.BottomBase(i) == 0
}

// Minimal reports whether every projection trapezoid of z is minimal.
func (z Zoid) Minimal() bool {
	for i := 0; i < z.N; i++ {
		if !z.MinimalDim(i) {
			return false
		}
	}
	return true
}

// WellDefined reports whether z has positive height, positive widths, and
// nonnegative base lengths in every spatial dimension.
func (z Zoid) WellDefined() bool {
	if z.Height() <= 0 {
		return false
	}
	for i := 0; i < z.N; i++ {
		b, t := z.BottomBase(i), z.TopBase(i)
		if b < 0 || t < 0 {
			return false
		}
		if b == 0 && t == 0 {
			return false // zero width
		}
	}
	return true
}

// Volume returns the number of space-time grid points contained in z.
func (z Zoid) Volume() int64 {
	var vol int64
	for t := z.T0; t < z.T1; t++ {
		dt := t - z.T0
		pts := int64(1)
		for i := 0; i < z.N; i++ {
			ext := (z.Hi[i] + z.DHi[i]*dt) - (z.Lo[i] + z.DLo[i]*dt)
			if ext <= 0 {
				pts = 0
				break
			}
			pts *= int64(ext)
		}
		vol += pts
	}
	return vol
}

// LoAt returns the (inclusive) lower bound along dimension i at time t.
func (z Zoid) LoAt(i, t int) int { return z.Lo[i] + z.DLo[i]*(t-z.T0) }

// HiAt returns the (exclusive) upper bound along dimension i at time t.
func (z Zoid) HiAt(i, t int) int { return z.Hi[i] + z.DHi[i]*(t-z.T0) }

// Extremes returns the minimum lower bound and maximum upper bound attained
// along dimension i over the executed time steps T0 .. T1-1. Because the
// bounds move linearly the extremes occur at the endpoints.
func (z Zoid) Extremes(i int) (minLo, maxHi int) {
	last := z.Height() - 1
	minLo = z.Lo[i]
	if v := z.Lo[i] + z.DLo[i]*last; v < minLo {
		minLo = v
	}
	maxHi = z.Hi[i]
	if v := z.Hi[i] + z.DHi[i]*last; v > maxHi {
		maxHi = v
	}
	return minLo, maxHi
}

// Contains reports whether the space-time point (t, x[0..N)) lies inside z.
func (z Zoid) Contains(t int, x []int) bool {
	if t < z.T0 || t >= z.T1 {
		return false
	}
	dt := t - z.T0
	for i := 0; i < z.N; i++ {
		if x[i] < z.Lo[i]+z.DLo[i]*dt || x[i] >= z.Hi[i]+z.DHi[i]*dt {
			return false
		}
	}
	return true
}

// String renders the zoid in the paper's parameter order.
func (z Zoid) String() string {
	s := fmt.Sprintf("zoid(t=[%d,%d)", z.T0, z.T1)
	for i := 0; i < z.N; i++ {
		s += fmt.Sprintf("; x%d=[%d,%d) dx=(%d,%d)", i, z.Lo[i], z.Hi[i], z.DLo[i], z.DHi[i])
	}
	return s + ")"
}
