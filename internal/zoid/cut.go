package zoid

// This file implements the three decomposition primitives of TRAP:
// parallel space cuts (Fig. 7a/7b), time cuts (Fig. 7c), and hyperspace
// cuts with dependency-level assignment (Lemma 1). It also implements the
// "circle cut" used by the unified periodic/nonperiodic scheme of §4: a
// spatial dimension that still spans its full periodic extent with zero
// slopes is cut into two black zoids and two gray zoids, one of the grays
// wrapping the seam in virtual coordinates (xa > true xb represented as
// (xa, N + xb), exactly as the paper describes).

// CanSpaceCut reports whether a parallel space cut may be applied along
// dimension i of z for a stencil with the given slope in that dimension.
//
// The paper's pseudocode (Fig. 2, line 5) states the condition for the
// top-level zero-slope case as w >= 2*sigma*dt. For zoids whose sides
// already move at +-sigma, trisecting the longer base in half is only
// guaranteed to yield well-defined black subzoids when the longer base is
// at least 4*sigma*dt (each half must absorb up to 2*sigma*dt of slope
// motion). The production Pochoir implementation uses this same threshold
// (thres = 2*slope*lt, cut when base >= 2*thres); we follow it.
//
// minWidth, when positive, suppresses cuts on already-narrow zoids and is
// the space-coarsening knob of §4 ("Coarsening of base cases").
func (z Zoid) CanSpaceCut(i, slope, minWidth int) bool {
	if slope <= 0 {
		return false
	}
	w := z.Width(i)
	if minWidth > 0 && w <= minWidth {
		return false
	}
	return w >= 4*slope*z.Height()
}

// SpaceCut trisects z along dimension i per Fig. 7, returning the three
// subzoids in label order 1,2,3 (labels 1 and 3 are the "black" zoids, label
// 2 the "gray" minimal zoid) together with the uprightness of the projection
// trapezoid that was cut. For an upright projection the blacks precede the
// gray; for an inverted projection the gray precedes the blacks. The caller
// is responsible for having checked CanSpaceCut.
func (z Zoid) SpaceCut(i, slope int) (sub [3]Zoid, upright bool) {
	dt := z.Height()
	upright = z.Upright(i)
	sub[0], sub[1], sub[2] = z, z, z
	if upright {
		// Split the bottom (longer) base at its midpoint. The black
		// halves shrink inward at +-slope; the gray triangle grows
		// outward from the midpoint and is processed after them.
		mid := z.Lo[i] + z.BottomBase(i)/2
		sub[0].Hi[i], sub[0].DHi[i] = mid, -slope // black left
		sub[1].Lo[i], sub[1].DLo[i] = mid, -slope // gray middle
		sub[1].Hi[i], sub[1].DHi[i] = mid, +slope
		sub[2].Lo[i], sub[2].DLo[i] = mid, +slope // black right
		return sub, true
	}
	// Inverted: split the top (longer) base at its midpoint and project the
	// cut lines down at +-slope. The gray triangle at the bottom middle is
	// processed before the two black zoids that widen over it.
	ua := z.Lo[i] + z.DLo[i]*dt
	ub := z.Hi[i] + z.DHi[i]*dt
	um := ua + (ub-ua)/2
	sub[0].Hi[i], sub[0].DHi[i] = um-slope*dt, +slope // black left
	sub[1].Lo[i], sub[1].DLo[i] = um-slope*dt, +slope // gray middle
	sub[1].Hi[i], sub[1].DHi[i] = um+slope*dt, -slope
	sub[2].Lo[i], sub[2].DLo[i] = um+slope*dt, -slope // black right
	return sub, false
}

// IsFullCircle reports whether dimension i of z still spans the whole
// periodic extent n with zero slopes — the only situation in which a wrap
// around the torus is possible and a CircleCut is required instead of an
// ordinary trisection.
func (z Zoid) IsFullCircle(i, n int) bool {
	return z.Lo[i] == 0 && z.Hi[i] == n && z.DLo[i] == 0 && z.DHi[i] == 0
}

// CanCircleCut reports whether the full periodic dimension i (of extent n)
// can be cut. Each of the two black halves must stay well-defined while
// shrinking at +-slope from a base of n/2, which requires n >= 4*slope*dt,
// the same threshold as CanSpaceCut.
func (z Zoid) CanCircleCut(i, slope, n, minWidth int) bool {
	if slope <= 0 {
		return false
	}
	if minWidth > 0 && n <= minWidth {
		return false
	}
	return n >= 4*slope*z.Height()
}

// CircleCut cuts the full periodic dimension i (extent n) into four pieces:
// two black zoids shrinking away from the cut lines at 0 and n/2, processed
// first in parallel, and two gray triangles growing over the cut lines,
// processed second in parallel. The gray covering the seam at 0==n is
// expressed in virtual coordinates [n, n) growing to [n-s*dt, n+s*dt); the
// base-case boundary clone reduces virtual coordinates modulo n.
// The pieces are returned with their dependency contributions (0 for the
// blacks, 1 for the grays), composable with trisections in a hyperspace cut.
func (z Zoid) CircleCut(i, slope, n int) (sub [4]Zoid, contrib [4]int) {
	mid := n / 2
	sub[0], sub[1], sub[2], sub[3] = z, z, z, z
	// Black A: [0, mid) shrinking inward.
	sub[0].Lo[i], sub[0].DLo[i] = 0, +slope
	sub[0].Hi[i], sub[0].DHi[i] = mid, -slope
	// Black B: [mid, n) shrinking inward.
	sub[1].Lo[i], sub[1].DLo[i] = mid, +slope
	sub[1].Hi[i], sub[1].DHi[i] = n, -slope
	// Gray at mid: grows outward over the interior cut line.
	sub[2].Lo[i], sub[2].DLo[i] = mid, -slope
	sub[2].Hi[i], sub[2].DHi[i] = mid, +slope
	// Gray at the seam: grows outward over 0==n in virtual coordinates.
	sub[3].Lo[i], sub[3].DLo[i] = n, -slope
	sub[3].Hi[i], sub[3].DHi[i] = n, +slope
	contrib = [4]int{0, 0, 1, 1}
	return sub, contrib
}

// TimeCut halves z at the midpoint of its time dimension (Fig. 7c),
// returning the lower subzoid (which must be processed first) and the upper.
func (z Zoid) TimeCut() (lower, upper Zoid) {
	return z.TimeCutAt(z.Height() / 2)
}

// TimeCutAt cuts z after the first h time steps. It is used by coarsened
// walkers whose time threshold is not a power-of-two divisor of the height.
func (z Zoid) TimeCutAt(h int) (lower, upper Zoid) {
	lower, upper = z, z
	lower.T1 = z.T0 + h
	upper.T0 = z.T0 + h
	for i := 0; i < z.N; i++ {
		upper.Lo[i] = z.Lo[i] + z.DLo[i]*h
		upper.Hi[i] = z.Hi[i] + z.DHi[i]*h
	}
	return lower, upper
}

// CutKind selects the decomposition applied along one dimension of a
// hyperspace cut.
type CutKind int

const (
	// CutTrisect is the ordinary parallel space cut of Fig. 7(a)/(b).
	CutTrisect CutKind = iota
	// CutCircle is the periodic full-extent cut (see CircleCut).
	CutCircle
)

// Cut names one dimension participating in a hyperspace cut.
type Cut struct {
	Dim   int
	Slope int
	Kind  CutKind
	Size  int // periodic extent; used by CutCircle only
}

// Levels holds the subzoids of a hyperspace cut grouped by dependency level:
// Levels.Zoids[l] are the zoids with dep = l, which are mutually independent
// and may be processed in parallel once all zoids of levels < l have
// completed (Lemma 1).
type Levels struct {
	Zoids  [][]Zoid
	NumCut int // k, the number of dimensions that were cut
}

// Total returns the total number of subzoids across all levels.
func (lv Levels) Total() int {
	n := 0
	for _, zs := range lv.Zoids {
		n += len(zs)
	}
	return n
}

// HyperspaceCut applies parallel space cuts simultaneously along every
// dimension listed in cuts (each of which must satisfy CanSpaceCut or
// CanCircleCut as appropriate), producing the full set of subzoids (3 per
// trisected dimension, 4 per circle-cut dimension) and assigning each its
// dependency level per Lemma 1:
//
//	dep(u) = sum_i (u_i + I_i) mod 2
//
// where the per-dimension contribution is 0 for pieces that may run in the
// first parallel step along that dimension (blacks of an upright or circle
// cut, gray of an inverted cut) and 1 for the pieces that must wait.
// The k+1 levels returned are in processing order.
func HyperspaceCut(z Zoid, cuts []Cut) Levels {
	k := len(cuts)
	var pieces [MaxDims][]Zoid
	var contribs [MaxDims][]int
	for j, c := range cuts {
		switch c.Kind {
		case CutCircle:
			sub, con := z.CircleCut(c.Dim, c.Slope, c.Size)
			pieces[j] = sub[:]
			contribs[j] = con[:]
		default:
			sub, upright := z.SpaceCut(c.Dim, c.Slope)
			pieces[j] = sub[:]
			if upright {
				// blacks (labels 1,3) first, gray (label 2) second
				contribs[j] = []int{0, 1, 0}
			} else {
				// gray first, blacks second
				contribs[j] = []int{1, 0, 1}
			}
		}
	}
	lv := Levels{NumCut: k, Zoids: make([][]Zoid, k+1)}
	total := 1
	for j := 0; j < k; j++ {
		total *= len(pieces[j])
	}
	var digits [MaxDims]int
	for code := 0; code < total; code++ {
		sz := z
		dep := 0
		for j := 0; j < k; j++ {
			u := digits[j]
			piece := pieces[j][u]
			d := cuts[j].Dim
			sz.Lo[d], sz.Hi[d] = piece.Lo[d], piece.Hi[d]
			sz.DLo[d], sz.DHi[d] = piece.DLo[d], piece.DHi[d]
			dep += contribs[j][u]
		}
		lv.Zoids[dep] = append(lv.Zoids[dep], sz)
		// Advance mixed-radix digits.
		for j := 0; j < k; j++ {
			digits[j]++
			if digits[j] < len(pieces[j]) {
				break
			}
			digits[j] = 0
		}
	}
	return lv
}
