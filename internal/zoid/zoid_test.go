package zoid

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, []int{0}, []int{8}, []int{0}, []int{0, 1}); err == nil {
		t.Fatal("mismatched slices should error")
	}
	lo := make([]int, MaxDims+1)
	if _, err := New(0, 4, lo, lo, lo, lo); err == nil {
		t.Fatal("too many dims should error")
	}
	z, err := New(2, 6, []int{1, 2}, []int{9, 10}, []int{1, 0}, []int{-1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if z.Height() != 4 || z.N != 2 {
		t.Fatalf("bad zoid %v", z)
	}
}

func TestBoxProperties(t *testing.T) {
	z := Box(0, 10, []int{8, 6})
	if z.Volume() != 10*8*6 {
		t.Fatalf("volume = %d, want %d", z.Volume(), 480)
	}
	if !z.WellDefined() {
		t.Fatal("box should be well-defined")
	}
	for i := 0; i < 2; i++ {
		if !z.Upright(i) {
			t.Fatalf("box dim %d should be upright (equal bases)", i)
		}
		if z.MinimalDim(i) {
			t.Fatalf("box dim %d should not be minimal", i)
		}
	}
	if z.Width(0) != 8 || z.Width(1) != 6 {
		t.Fatal("bad widths")
	}
}

func TestBasesAndExtremes(t *testing.T) {
	// Inverted trapezoid: expands from [4,6) to [0,10) over height 4.
	z, _ := New(0, 4, []int{4}, []int{6}, []int{-1}, []int{1})
	if z.BottomBase(0) != 2 || z.TopBase(0) != 10 {
		t.Fatalf("bases %d/%d", z.BottomBase(0), z.TopBase(0))
	}
	if z.Upright(0) {
		t.Fatal("should be inverted")
	}
	if z.Width(0) != 10 {
		t.Fatal("width should be longer base")
	}
	minLo, maxHi := z.Extremes(0)
	// Executed steps are t=0..3, so bounds reach [1,9) at t=3.
	if minLo != 1 || maxHi != 9 {
		t.Fatalf("extremes (%d,%d), want (1,9)", minLo, maxHi)
	}
}

func TestContains(t *testing.T) {
	z, _ := New(0, 4, []int{4}, []int{6}, []int{-1}, []int{1})
	cases := []struct {
		t    int
		x    int
		want bool
	}{
		{0, 4, true}, {0, 5, true}, {0, 3, false}, {0, 6, false},
		{3, 1, true}, {3, 8, true}, {3, 0, false}, {3, 9, false},
		{4, 5, false}, {-1, 5, false},
	}
	for _, c := range cases {
		if got := z.Contains(c.t, []int{c.x}); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.t, c.x, got, c.want)
		}
	}
}

func TestMinimal(t *testing.T) {
	// Upright triangle shrinking to nothing: minimal.
	z, _ := New(0, 3, []int{0}, []int{6}, []int{1}, []int{-1})
	if !z.MinimalDim(0) || !z.Minimal() {
		t.Fatal("shrinking-to-zero trapezoid should be minimal")
	}
	// Gray growing triangle: minimal (inverted, zero bottom base).
	g, _ := New(0, 3, []int{5}, []int{5}, []int{-1}, []int{1})
	if !g.Minimal() {
		t.Fatal("growing triangle should be minimal")
	}
}

// randomZoid produces a well-defined zoid by starting from a random box and
// applying a few random legal cuts, yielding realistic slope combinations.
func randomZoid(rng *rand.Rand, ndims, slope int) Zoid {
	sizes := make([]int, ndims)
	for i := range sizes {
		sizes[i] = 8 + rng.Intn(64)
	}
	h := 1 + rng.Intn(12)
	z := Box(0, h, sizes)
	for depth := 0; depth < 4; depth++ {
		// Try a random cut.
		switch rng.Intn(3) {
		case 0: // space cut on a random dim
			i := rng.Intn(ndims)
			if z.CanSpaceCut(i, slope, 0) {
				sub, _ := z.SpaceCut(i, slope)
				z = sub[rng.Intn(3)]
			}
		case 1: // time cut
			if z.Height() > 1 {
				lo, up := z.TimeCut()
				if rng.Intn(2) == 0 {
					z = lo
				} else {
					z = up
				}
			}
		case 2: // keep
		}
	}
	return z
}

// pointCount enumerates the zoid's points directly, cross-checking Volume.
func pointCount(z Zoid) int64 {
	var n int64
	var x [MaxDims]int
	var rec func(t, dim int)
	rec = func(t, dim int) {
		if dim == z.N {
			n++
			return
		}
		dt := t - z.T0
		for v := z.Lo[dim] + z.DLo[dim]*dt; v < z.Hi[dim]+z.DHi[dim]*dt; v++ {
			x[dim] = v
			rec(t, dim+1)
		}
	}
	for t := z.T0; t < z.T1; t++ {
		rec(t, 0)
	}
	return n
}

func TestVolumeMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		ndims := 1 + rng.Intn(3)
		z := randomZoid(rng, ndims, 1+rng.Intn(2))
		if v, p := z.Volume(), pointCount(z); v != p {
			t.Fatalf("%v: Volume=%d, enumeration=%d", z, v, p)
		}
	}
}

func TestSpaceCutInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tested := 0
	for iter := 0; iter < 2000 && tested < 300; iter++ {
		ndims := 1 + rng.Intn(3)
		slope := 1 + rng.Intn(2)
		z := randomZoid(rng, ndims, slope)
		i := rng.Intn(ndims)
		if !z.CanSpaceCut(i, slope, 0) {
			continue
		}
		tested++
		sub, upright := z.SpaceCut(i, slope)
		if upright != z.Upright(i) {
			t.Fatalf("uprightness mismatch for %v", z)
		}
		var vol int64
		for j, s := range sub {
			if s.Height() != z.Height() {
				t.Fatalf("child %d height changed", j)
			}
			// Children must be geometrically sound: nonnegative bases.
			for d := 0; d < s.N; d++ {
				if s.BottomBase(d) < 0 || s.TopBase(d) < 0 {
					t.Fatalf("child %d of %v ill-defined: %v", j, z, s)
				}
			}
			vol += s.Volume()
		}
		if vol != z.Volume() {
			t.Fatalf("space cut volume %d != parent %d for %v", vol, z.Volume(), z)
		}
		// The gray child must be minimal along the cut dimension.
		if !sub[1].MinimalDim(i) {
			t.Fatalf("gray child not minimal along cut dim: %v", sub[1])
		}
	}
	if tested < 100 {
		t.Fatalf("only exercised %d cuts; generator too weak", tested)
	}
}

func TestSpaceCutDisjointCover(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tested := 0
	for iter := 0; iter < 2000 && tested < 100; iter++ {
		z := randomZoid(rng, 2, 1)
		i := rng.Intn(2)
		if !z.CanSpaceCut(i, 1, 0) || z.Volume() > 20000 {
			continue
		}
		tested++
		sub, _ := z.SpaceCut(i, 1)
		checkDisjointCover(t, z, sub[:])
	}
	if tested < 30 {
		t.Fatalf("only exercised %d cuts", tested)
	}
}

// checkDisjointCover verifies that children partition the parent exactly.
func checkDisjointCover(t *testing.T, parent Zoid, children []Zoid) {
	t.Helper()
	var x [MaxDims]int
	var rec func(tt, dim int)
	rec = func(tt, dim int) {
		if dim == parent.N {
			owners := 0
			for _, c := range children {
				if c.Contains(tt, x[:parent.N]) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("point t=%d x=%v owned by %d children of %v", tt, x[:parent.N], owners, parent)
			}
			return
		}
		dt := tt - parent.T0
		for v := parent.Lo[dim] + parent.DLo[dim]*dt; v < parent.Hi[dim]+parent.DHi[dim]*dt; v++ {
			x[dim] = v
			rec(tt, dim+1)
		}
	}
	for tt := parent.T0; tt < parent.T1; tt++ {
		rec(tt, 0)
	}
}

func TestTimeCutInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 300; iter++ {
		z := randomZoid(rng, 1+rng.Intn(3), 1)
		if z.Height() < 2 {
			continue
		}
		lo, up := z.TimeCut()
		if lo.T1 != up.T0 || lo.T0 != z.T0 || up.T1 != z.T1 {
			t.Fatalf("time cut extents wrong: %v -> %v / %v", z, lo, up)
		}
		if lo.Volume()+up.Volume() != z.Volume() {
			t.Fatalf("time cut volume mismatch for %v", z)
		}
		// Upper zoid's bases must equal parent bounds evaluated at the cut.
		h := lo.Height()
		for i := 0; i < z.N; i++ {
			if up.Lo[i] != z.Lo[i]+z.DLo[i]*h || up.Hi[i] != z.Hi[i]+z.DHi[i]*h {
				t.Fatalf("upper zoid bases wrong for %v", z)
			}
		}
	}
}

func TestCircleCutInvariants(t *testing.T) {
	for _, n := range []int{16, 20, 33, 64, 100} {
		for h := 1; h <= n/4; h *= 2 {
			z := Box(0, h, []int{n})
			if !z.CanCircleCut(0, 1, n, 0) {
				t.Fatalf("n=%d h=%d should allow circle cut", n, h)
			}
			sub, contrib := z.CircleCut(0, 1, n)
			if contrib != [4]int{0, 0, 1, 1} {
				t.Fatalf("bad contributions %v", contrib)
			}
			var vol int64
			for _, s := range sub {
				vol += s.Volume()
			}
			if vol != z.Volume() {
				t.Fatalf("circle cut volume %d != %d (n=%d h=%d)", vol, z.Volume(), n, h)
			}
			// Every true point must be covered exactly once after
			// reducing virtual coordinates mod n.
			for tt := 0; tt < h; tt++ {
				for x := 0; x < n; x++ {
					owners := 0
					for _, c := range sub {
						// Check both representations.
						if c.Contains(tt, []int{x}) || c.Contains(tt, []int{x + n}) {
							owners++
						}
					}
					if owners != 1 {
						t.Fatalf("n=%d h=%d point (%d,%d) owned %d times", n, h, tt, x, owners)
					}
				}
			}
		}
	}
}

func TestIsFullCircle(t *testing.T) {
	z := Box(0, 4, []int{32, 32})
	if !z.IsFullCircle(0, 32) || !z.IsFullCircle(1, 32) {
		t.Fatal("box should be full circle in both dims")
	}
	sub, _ := z.SpaceCut(0, 1)
	for _, s := range sub {
		if s.IsFullCircle(0, 32) {
			t.Fatal("children of a space cut are not full circles")
		}
	}
}

func TestCanSpaceCutThresholds(t *testing.T) {
	z := Box(0, 4, []int{16}) // width 16, height 4: 16 >= 4*1*4
	if !z.CanSpaceCut(0, 1, 0) {
		t.Fatal("16 >= 16 should cut")
	}
	z2 := Box(0, 5, []int{16})
	if z2.CanSpaceCut(0, 1, 0) {
		t.Fatal("16 < 20 should not cut")
	}
	if z.CanSpaceCut(0, 0, 0) {
		t.Fatal("zero slope never cuts")
	}
	if z.CanSpaceCut(0, 1, 16) {
		t.Fatal("coarsening cutoff should suppress cut")
	}
	if !z.CanSpaceCut(0, 1, 15) {
		t.Fatal("width above cutoff should cut")
	}
}
