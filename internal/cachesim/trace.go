package cachesim

import (
	"pochoir/internal/core"
	"pochoir/internal/shape"
	"pochoir/internal/zoid"
)

// This file generates the memory traces of Fig. 10: the same stencil
// executed in TRAP order, STRAP order, and LOOPS order, with every kernel
// application touching the addresses its shape implies in the Pochoir
// array layout (slot*pointsPerSlot + row-major spatial offset).

// Tracer replays a stencil's memory accesses through a Cache.
type Tracer struct {
	Cache *Cache
	Shape *shape.Shape
	Sizes []int

	strides []int
	total   int64
	slots   int64
	offs    []traceOff
}

type traceOff struct {
	dt int
	dx []int
}

// NewTracer builds a tracer for the stencil shape over the given grid.
func NewTracer(c *Cache, sh *shape.Shape, sizes []int) *Tracer {
	tr := &Tracer{Cache: c, Shape: sh, Sizes: sizes}
	d := len(sizes)
	tr.strides = make([]int, d)
	st := 1
	for i := d - 1; i >= 0; i-- {
		tr.strides[i] = st
		st *= sizes[i]
	}
	tr.total = int64(st)
	tr.slots = int64(sh.Depth() + 1)
	home := sh.Cells[0]
	for _, cell := range sh.Cells {
		tr.offs = append(tr.offs, traceOff{dt: cell.DT - home.DT, dx: cell.DX})
	}
	return tr
}

// visit issues the shape's accesses for the kernel application writing
// time w at true spatial coordinates x. Reads are issued before the write,
// as a kernel would.
func (tr *Tracer) visit(w int, x []int) {
	for k := len(tr.offs) - 1; k >= 1; k-- {
		tr.access(w+tr.offs[k].dt, x, tr.offs[k].dx)
	}
	tr.access(w, x, tr.offs[0].dx)
}

func (tr *Tracer) access(t int, x, dx []int) {
	slot := int64(t) % tr.slots
	if slot < 0 {
		slot += tr.slots
	}
	lin := int64(0)
	for i, v := range x {
		c := v + dx[i]
		// Wrap out-of-range neighbors; a boundary function's access
		// pattern is grid-local either way (periodic wrap or clamped
		// edge), and modulo keeps the trace well defined.
		n := tr.Sizes[i]
		c %= n
		if c < 0 {
			c += n
		}
		lin += int64(c) * int64(tr.strides[i])
	}
	tr.Cache.Access(slot*tr.total + lin)
}

// BaseFunc returns a base-case function that walks the zoid exactly as the
// generic executor does (time-major, bounds advancing by slopes, virtual
// coordinates reduced) and issues each point's accesses.
func (tr *Tracer) BaseFunc() core.BaseFunc {
	d := len(tr.Sizes)
	return func(z zoid.Zoid) {
		var lo, hi [zoid.MaxDims]int
		for i := 0; i < d; i++ {
			lo[i], hi[i] = z.Lo[i], z.Hi[i]
		}
		x := make([]int, d)
		var rec func(t, dim int)
		rec = func(t, dim int) {
			if dim == d {
				tr.visit(t, x)
				return
			}
			for v := lo[dim]; v < hi[dim]; v++ {
				c := v % tr.Sizes[dim]
				if c < 0 {
					c += tr.Sizes[dim]
				}
				x[dim] = c
				rec(t, dim+1)
			}
		}
		for t := z.T0; t < z.T1; t++ {
			rec(t, 0)
			for i := 0; i < d; i++ {
				lo[i] += z.DLo[i]
				hi[i] += z.DHi[i]
			}
		}
	}
}

// TraceWalker replays the decomposition of the given walker configuration
// (serial execution order) for `steps` home times and returns the
// resulting miss ratio. The walker's base functions are installed by this
// call.
func TraceWalker(w *core.Walker, tr *Tracer, steps int) (float64, error) {
	w.Serial = true
	base := tr.BaseFunc()
	w.Interior = base
	w.Boundary = base
	if err := w.Run(1, 1+steps); err != nil {
		return 0, err
	}
	return tr.Cache.Ratio(), nil
}

// TraceLoops replays the LOOPS order: for each time step, a row-major
// sweep of the whole grid.
func TraceLoops(tr *Tracer, steps int) float64 {
	d := len(tr.Sizes)
	x := make([]int, d)
	var rec func(t, dim int)
	rec = func(t, dim int) {
		if dim == d {
			tr.visit(t, x)
			return
		}
		for v := 0; v < tr.Sizes[dim]; v++ {
			x[dim] = v
			rec(t, dim+1)
		}
	}
	for t := 1; t <= steps; t++ {
		rec(t, 0)
	}
	return tr.Cache.Ratio()
}
