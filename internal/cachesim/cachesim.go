// Package cachesim implements the ideal-cache model [15] the paper's
// theory is stated in: a fully associative cache of M grid points with
// lines of B grid points and optimal-replacement-approximating LRU. It
// stands in for the hardware cache counters (Linux perf) behind Fig. 10:
// replaying the memory trace of a stencil execution through the model
// yields the cache-miss ratio (misses / memory references) for the TRAP,
// STRAP, and LOOPS orders.
package cachesim

// Cache is a fully associative LRU cache over cache lines. Addresses are
// in units of grid points; a line holds B consecutive points and the cache
// holds M/B lines.
type Cache struct {
	b        int64
	capacity int // lines

	lines map[int64]*node
	head  *node // most recently used
	tail  *node // least recently used

	accesses, misses int64
}

type node struct {
	line       int64
	prev, next *node
}

// New builds a cache of mPoints capacity with bPoints-sized lines.
func New(mPoints, bPoints int) *Cache {
	if bPoints < 1 {
		bPoints = 1
	}
	cap := mPoints / bPoints
	if cap < 1 {
		cap = 1
	}
	return &Cache{
		b:        int64(bPoints),
		capacity: cap,
		lines:    make(map[int64]*node, cap+1),
	}
}

// M returns the capacity in points; B the line size in points.
func (c *Cache) M() int { return c.capacity * int(c.b) }
func (c *Cache) B() int { return int(c.b) }

// Access references the grid point at addr, updating hit/miss statistics.
func (c *Cache) Access(addr int64) {
	c.accesses++
	line := addr / c.b
	if n, ok := c.lines[line]; ok {
		c.touch(n)
		return
	}
	c.misses++
	n := &node{line: line}
	c.lines[line] = n
	c.pushFront(n)
	if len(c.lines) > c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.lines, lru.line)
	}
}

func (c *Cache) pushFront(n *node) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache) touch(n *node) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// Accesses returns the number of memory references seen.
func (c *Cache) Accesses() int64 { return c.accesses }

// Misses returns the number of cache misses incurred.
func (c *Cache) Misses() int64 { return c.misses }

// Ratio returns the cache-miss ratio misses/accesses — the Fig. 10 metric.
func (c *Cache) Ratio() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Stats is the JSON-marshalable summary of a simulation: the model's
// geometry plus the access/miss counts and the derived miss ratio.
type Stats struct {
	MPoints   int     `json:"m_points"`
	BPoints   int     `json:"b_points"`
	Accesses  int64   `json:"accesses"`
	Misses    int64   `json:"misses"`
	MissRatio float64 `json:"miss_ratio"`
}

// Stats returns the current summary of the cache.
func (c *Cache) Stats() Stats {
	return Stats{
		MPoints:   c.M(),
		BPoints:   c.B(),
		Accesses:  c.accesses,
		Misses:    c.misses,
		MissRatio: c.Ratio(),
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	c.lines = make(map[int64]*node, c.capacity+1)
	c.head, c.tail = nil, nil
	c.accesses, c.misses = 0, 0
}
