package cachesim

import (
	"testing"

	"pochoir/internal/cilkview"
	"pochoir/internal/core"
	"pochoir/internal/shape"
)

func TestCacheBasics(t *testing.T) {
	c := New(4, 1) // 4 lines of 1 point
	for _, a := range []int64{0, 1, 2, 3} {
		c.Access(a)
	}
	if c.Misses() != 4 || c.Accesses() != 4 {
		t.Fatalf("cold misses: %d/%d", c.Misses(), c.Accesses())
	}
	for _, a := range []int64{0, 1, 2, 3} {
		c.Access(a)
	}
	if c.Misses() != 4 {
		t.Fatalf("all warm accesses should hit, misses=%d", c.Misses())
	}
	c.Access(4) // evicts LRU line 0
	c.Access(4)
	if c.Misses() != 5 {
		t.Fatalf("misses=%d", c.Misses())
	}
	c.Access(0) // must have been evicted
	if c.Misses() != 6 {
		t.Fatalf("line 0 should have been evicted (LRU), misses=%d", c.Misses())
	}
	// 1 was touched after 0, so with 5 lines inserted and capacity 4,
	// accessing 1 now misses too (evicted by 0's reinsertion).
	c.Access(2)
	if c.Misses() != 6 {
		t.Fatalf("line 2 should still be resident, misses=%d", c.Misses())
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := New(2, 1)
	c.Access(10)
	c.Access(20)
	c.Access(10) // 10 MRU, 20 LRU
	c.Access(30) // evicts 20
	m := c.Misses()
	c.Access(10)
	if c.Misses() != m {
		t.Fatal("10 should be resident")
	}
	c.Access(20)
	if c.Misses() != m+1 {
		t.Fatal("20 should have been evicted")
	}
}

func TestCacheLineGranularity(t *testing.T) {
	c := New(64, 8)
	for a := int64(0); a < 64; a++ {
		c.Access(a)
	}
	if c.Misses() != 8 {
		t.Fatalf("streaming 64 points with B=8 should miss 8 times, got %d", c.Misses())
	}
	if r := c.Ratio(); r != 0.125 {
		t.Fatalf("ratio %v, want 0.125", r)
	}
}

func TestCacheReset(t *testing.T) {
	c := New(8, 2)
	c.Access(1)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 || c.Ratio() != 0 {
		t.Fatal("reset should clear stats")
	}
	c.Access(1)
	if c.Misses() != 1 {
		t.Fatal("reset should clear contents")
	}
}

func heatShape2D(t *testing.T) *shape.Shape {
	t.Helper()
	return shape.MustNew(2, [][]int{
		{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1},
	})
}

// TestTraceAccessCounts: every path must issue exactly
// points*steps*len(shape cells) references.
func TestTraceAccessCounts(t *testing.T) {
	sh := heatShape2D(t)
	n, steps := 32, 16
	wantRefs := int64(n*n*steps) * int64(len(sh.Cells))

	trL := NewTracer(New(1024, 8), sh, []int{n, n})
	TraceLoops(trL, steps)
	if trL.Cache.Accesses() != wantRefs {
		t.Fatalf("loops refs %d, want %d", trL.Cache.Accesses(), wantRefs)
	}

	for _, alg := range []core.Algorithm{core.TRAP, core.STRAP} {
		w := cilkview.Config(2, n, 1, false, alg)
		tr := NewTracer(New(1024, 8), sh, []int{n, n})
		if _, err := TraceWalker(w, tr, steps); err != nil {
			t.Fatal(err)
		}
		if tr.Cache.Accesses() != wantRefs {
			t.Fatalf("%v refs %d, want %d", alg, tr.Cache.Accesses(), wantRefs)
		}
	}
}

// TestFig10Shape reproduces Fig. 10's qualitative content at model scale:
// once the grid exceeds the cache, LOOPS has a much higher miss ratio than
// TRAP and STRAP, and TRAP matches STRAP (they make exactly the same time
// cuts, §3 Discussion).
func TestFig10Shape(t *testing.T) {
	sh := heatShape2D(t)
	const mPoints, bPoints = 4096, 8
	n := 256 // grid 64k points >> cache 4k points
	steps := 64

	loopsTr := NewTracer(New(mPoints, bPoints), sh, []int{n, n})
	loopsRatio := TraceLoops(loopsTr, steps)

	ratios := map[core.Algorithm]float64{}
	for _, alg := range []core.Algorithm{core.TRAP, core.STRAP} {
		w := cilkview.Config(2, n, 1, false, alg)
		tr := NewTracer(New(mPoints, bPoints), sh, []int{n, n})
		r, err := TraceWalker(w, tr, steps)
		if err != nil {
			t.Fatal(err)
		}
		ratios[alg] = r
	}
	t.Logf("miss ratios: loops=%.4f trap=%.4f strap=%.4f", loopsRatio, ratios[core.TRAP], ratios[core.STRAP])
	if loopsRatio < 3*ratios[core.TRAP] {
		t.Fatalf("LOOPS ratio %.4f should far exceed TRAP %.4f", loopsRatio, ratios[core.TRAP])
	}
	// TRAP and STRAP: same cache complexity (same time cuts); allow a
	// small tolerance for differing same-level interleavings.
	if d := ratios[core.TRAP] / ratios[core.STRAP]; d < 0.8 || d > 1.25 {
		t.Fatalf("TRAP/STRAP miss ratios should match: %.4f vs %.4f", ratios[core.TRAP], ratios[core.STRAP])
	}
}

// TestSmallGridFitsInCache: when the whole problem fits in cache, every
// order has only compulsory misses and the ratios converge.
func TestSmallGridFitsInCache(t *testing.T) {
	sh := heatShape2D(t)
	n, steps := 16, 32 // 2 slots * 256 points << 4096-point cache
	lo := NewTracer(New(4096, 8), sh, []int{n, n})
	lr := TraceLoops(lo, steps)
	w := cilkview.Config(2, n, 1, false, core.TRAP)
	tr := NewTracer(New(4096, 8), sh, []int{n, n})
	rr, err := TraceWalker(w, tr, steps)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Cache.Misses() != tr.Cache.Misses() {
		t.Fatalf("in-cache problem: both orders should incur only compulsory misses (%d vs %d)",
			lo.Cache.Misses(), tr.Cache.Misses())
	}
	if lr != rr {
		t.Fatalf("ratios should match exactly: %v vs %v", lr, rr)
	}
}
