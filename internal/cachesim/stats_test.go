package cachesim

import (
	"encoding/json"
	"testing"
)

// TestStatsView: the JSON summary reflects the model geometry and counters.
func TestStatsView(t *testing.T) {
	c := New(64, 8)
	for i := int64(0); i < 128; i++ {
		c.Access(i) // sequential sweep: one miss per 8-point line
	}
	s := c.Stats()
	if s.MPoints != 64 || s.BPoints != 8 {
		t.Fatalf("geometry %d/%d, want 64/8", s.MPoints, s.BPoints)
	}
	if s.Accesses != 128 || s.Misses != 16 {
		t.Fatalf("accesses/misses %d/%d, want 128/16", s.Accesses, s.Misses)
	}
	if s.MissRatio != c.Ratio() {
		t.Fatalf("ratio %f diverges from Ratio() %f", s.MissRatio, c.Ratio())
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip changed stats: %+v vs %+v", back, s)
	}
}

// TestStatsEmpty: a fresh cache reports zeros, not NaN.
func TestStatsEmpty(t *testing.T) {
	if s := New(64, 8).Stats(); s.Accesses != 0 || s.Misses != 0 || s.MissRatio != 0 {
		t.Fatalf("fresh cache stats not zero: %+v", s)
	}
}
