package sched

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
)

// recovered runs f and returns the value it panics with, nil if none.
func recovered(f func()) (r any) {
	defer func() { r = recover() }()
	f()
	return nil
}

func TestDo2PanicInSpawnedTask(t *testing.T) {
	var sibling atomic.Bool
	r := recovered(func() {
		Do2(true,
			func() { panic("boom-a") },
			func() { sibling.Store(true) })
	})
	pe, ok := r.(*PanicError)
	if !ok {
		t.Fatalf("recovered %T %v, want *PanicError", r, r)
	}
	if pe.Value != "boom-a" {
		t.Fatalf("Value = %v, want boom-a", pe.Value)
	}
	if len(pe.Stack) == 0 || !bytes.Contains(pe.Stack, []byte("goroutine")) {
		t.Fatalf("Stack not captured: %q", pe.Stack)
	}
	if !sibling.Load() {
		t.Fatal("inline sibling did not drain before the rethrow")
	}
}

func TestDo2PanicInInlineTask(t *testing.T) {
	var sibling atomic.Bool
	r := recovered(func() {
		Do2(true,
			func() { sibling.Store(true) },
			func() { panic("boom-b") })
	})
	pe, ok := r.(*PanicError)
	if !ok {
		t.Fatalf("recovered %T %v, want *PanicError", r, r)
	}
	if pe.Value != "boom-b" {
		t.Fatalf("Value = %v, want boom-b", pe.Value)
	}
	if !sibling.Load() {
		t.Fatal("spawned sibling did not drain before the rethrow")
	}
}

func TestDo2SerialPanicUnwrapped(t *testing.T) {
	// Serial execution has no goroutines in flight: the panic must unwind
	// naturally, unwrapped, so purely serial users see the original value.
	r := recovered(func() {
		Do2(false, func() { panic("serial") }, func() {})
	})
	if r != "serial" {
		t.Fatalf("recovered %v, want the raw value", r)
	}
}

func TestDoAllPanicDrainsAllSiblings(t *testing.T) {
	const n = 16
	var ran atomic.Int64
	r := recovered(func() {
		fns := make([]func(), n)
		for i := range fns {
			i := i
			fns[i] = func() {
				ran.Add(1)
				if i == 3 {
					panic(i)
				}
			}
		}
		DoAll(true, fns)
	})
	pe, ok := r.(*PanicError)
	if !ok {
		t.Fatalf("recovered %T %v, want *PanicError", r, r)
	}
	if pe.Value != 3 {
		t.Fatalf("Value = %v, want 3", pe.Value)
	}
	if ran.Load() != n {
		t.Fatalf("%d of %d siblings ran", ran.Load(), n)
	}
}

func TestNestedSyncPreservesOriginalPanic(t *testing.T) {
	// A panic crossing two sync points must arrive as the same
	// *PanicError, not re-wrapped, so the stack names the real culprit.
	r := recovered(func() {
		Do2(true,
			func() {
				Do2(true, func() { panic("inner") }, func() {})
			},
			func() {})
	})
	pe, ok := r.(*PanicError)
	if !ok {
		t.Fatalf("recovered %T %v, want *PanicError", r, r)
	}
	if pe.Value != "inner" {
		t.Fatalf("Value = %v, want inner (no re-wrap)", pe.Value)
	}
	if pv, ok := pe.Value.(*PanicError); ok {
		t.Fatalf("double-wrapped: %v", pv)
	}
}

func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	r := recovered(func() {
		Do2(true, func() { panic(sentinel) }, func() {})
	})
	pe, ok := r.(*PanicError)
	if !ok {
		t.Fatalf("recovered %T, want *PanicError", r)
	}
	if !errors.Is(pe, sentinel) {
		t.Fatal("errors.Is does not see through PanicError to an error panic value")
	}
	if (&PanicError{Value: "not an error"}).Unwrap() != nil {
		t.Fatal("Unwrap of a non-error value must be nil")
	}
}

func TestForPanicPropagates(t *testing.T) {
	var visited atomic.Int64
	r := recovered(func() {
		For(true, 0, 1000, 1, func(i0, i1 int) {
			visited.Add(int64(i1 - i0))
			if i0 == 0 {
				panic("chunk")
			}
		})
	})
	pe, ok := r.(*PanicError)
	if !ok {
		t.Fatalf("recovered %T %v, want *PanicError", r, r)
	}
	if pe.Value != "chunk" {
		t.Fatalf("Value = %v", pe.Value)
	}
	// The serial path still unwinds raw.
	r = recovered(func() {
		For(false, 0, 10, 1, func(i0, i1 int) { panic("serial-for") })
	})
	if r != "serial-for" {
		t.Fatalf("serial For recovered %v", r)
	}
}
