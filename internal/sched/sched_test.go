package sched

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDo2(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		var a, b atomic.Bool
		Do2(parallel, func() { a.Store(true) }, func() { b.Store(true) })
		if !a.Load() || !b.Load() {
			t.Fatalf("parallel=%v: both closures must run", parallel)
		}
	}
}

func TestDo2SerialOrder(t *testing.T) {
	var order []int
	Do2(false, func() { order = append(order, 1) }, func() { order = append(order, 2) })
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("serial Do2 order = %v", order)
	}
}

func TestDoAll(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		for _, n := range []int{0, 1, 2, 7, 33} {
			var count atomic.Int64
			fns := make([]func(), n)
			for i := range fns {
				fns[i] = func() { count.Add(1) }
			}
			DoAll(parallel, fns)
			if count.Load() != int64(n) {
				t.Fatalf("parallel=%v n=%d: ran %d", parallel, n, count.Load())
			}
		}
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	f := func(lo8, span8 uint8, grain8 uint8, parallel bool) bool {
		lo := int(lo8)
		hi := lo + int(span8)
		grain := int(grain8)
		marks := make([]atomic.Int32, int(span8)+1)
		For(parallel, lo, hi, grain, func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				marks[i-lo].Add(1)
			}
		})
		for i := 0; i < hi-lo; i++ {
			if marks[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	called := false
	For(true, 5, 5, 1, func(i0, i1 int) { called = true })
	For(true, 5, 3, 1, func(i0, i1 int) { called = true })
	if called {
		t.Fatal("empty ranges must not invoke the body")
	}
}

func TestForChunksRespectBounds(t *testing.T) {
	For(true, 10, 1000, 7, func(i0, i1 int) {
		if i0 < 10 || i1 > 1000 || i0 >= i1 {
			t.Errorf("bad chunk [%d,%d)", i0, i1)
		}
	})
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers must be at least 1")
	}
}
