package sched

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDo2(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		var a, b atomic.Bool
		Do2(parallel, func() { a.Store(true) }, func() { b.Store(true) })
		if !a.Load() || !b.Load() {
			t.Fatalf("parallel=%v: both closures must run", parallel)
		}
	}
}

func TestDo2SerialOrder(t *testing.T) {
	var order []int
	Do2(false, func() { order = append(order, 1) }, func() { order = append(order, 2) })
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("serial Do2 order = %v", order)
	}
}

func TestDoAll(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		for _, n := range []int{0, 1, 2, 7, 33} {
			var count atomic.Int64
			fns := make([]func(), n)
			for i := range fns {
				fns[i] = func() { count.Add(1) }
			}
			DoAll(parallel, fns)
			if count.Load() != int64(n) {
				t.Fatalf("parallel=%v n=%d: ran %d", parallel, n, count.Load())
			}
		}
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	f := func(lo8, span8 uint8, grain8 uint8, parallel bool) bool {
		lo := int(lo8)
		hi := lo + int(span8)
		grain := int(grain8)
		marks := make([]atomic.Int32, int(span8)+1)
		For(parallel, lo, hi, grain, func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				marks[i-lo].Add(1)
			}
		})
		for i := 0; i < hi-lo; i++ {
			if marks[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	called := false
	For(true, 5, 5, 1, func(i0, i1 int) { called = true })
	For(true, 5, 3, 1, func(i0, i1 int) { called = true })
	if called {
		t.Fatal("empty ranges must not invoke the body")
	}
}

func TestForChunksRespectBounds(t *testing.T) {
	For(true, 10, 1000, 7, func(i0, i1 int) {
		if i0 < 10 || i1 > 1000 || i0 >= i1 {
			t.Errorf("bad chunk [%d,%d)", i0, i1)
		}
	})
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers must be at least 1")
	}
}

// tally is a test Counter.
type tally struct{ spawned, inlined int }

func (c *tally) Spawned(n int) { c.spawned += n }
func (c *tally) Inlined(n int) { c.inlined += n }

func TestDo2Counted(t *testing.T) {
	var c tally
	Do2Counted(false, &c, func() {}, func() {})
	if c.spawned != 0 || c.inlined != 2 {
		t.Fatalf("serial Do2: %+v", c)
	}
	c = tally{}
	Do2Counted(true, &c, func() {}, func() {})
	if c.spawned != 1 || c.inlined != 1 {
		t.Fatalf("parallel Do2: %+v", c)
	}
}

func TestDoAllCounted(t *testing.T) {
	mk := func(n int) []func() {
		fns := make([]func(), n)
		for i := range fns {
			fns[i] = func() {}
		}
		return fns
	}
	var c tally
	DoAllCounted(true, &c, mk(5))
	if c.spawned != 4 || c.inlined != 1 {
		t.Fatalf("parallel DoAll(5): %+v", c)
	}
	c = tally{}
	DoAllCounted(false, &c, mk(5))
	if c.spawned != 0 || c.inlined != 5 {
		t.Fatalf("serial DoAll(5): %+v", c)
	}
	c = tally{}
	DoAllCounted(true, &c, mk(1))
	if c.spawned != 0 || c.inlined != 1 {
		t.Fatalf("parallel DoAll(1) must inline: %+v", c)
	}
	c = tally{}
	DoAllCounted(true, &c, nil)
	if c.spawned != 0 || c.inlined != 0 {
		t.Fatalf("empty DoAll must count nothing: %+v", c)
	}
	// nil counter must not panic.
	DoAllCounted(true, nil, mk(3))
}
