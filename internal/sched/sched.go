// Package sched provides the small fork-join runtime used by the execution
// engines. It stands in for the Intel Cilk Plus work-stealing scheduler the
// paper's generated code targets: goroutines multiplexed over GOMAXPROCS
// threads give the same near-greedy fork-join semantics, and the engines
// gate spawning by subproblem volume so goroutine-creation overhead stays a
// small fraction of the work, as base-case coarsening does for Cilk spawns.
//
// Continuous-profiling attribution rides on a runtime guarantee this
// package relies on and pins with a test (see profile_labels_test.go):
// goroutines started with the go statement inherit the spawner's pprof
// label set. Every worker goroutine Do2/DoAll spawns therefore carries the
// calling goroutine's labels (the gateway's tenant/job/priority, the
// supervisor's engine, the walker's phase) without the scheduler touching
// its hot path — CPU samples on spawned workers self-attribute for free.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers returns the current parallelism level (GOMAXPROCS).
func Workers() int { return runtime.GOMAXPROCS(0) }

// PanicError is a panic recovered at a fork-join sync point. The scheduler
// never lets a panic escape on a spawned goroutine (which would kill the
// process): every task — spawned or inlined next to spawned siblings — runs
// under a recover, the first recovered value wins, the remaining siblings
// drain to completion, and the winner is re-raised on the calling goroutine
// once the join completes. Purely serial execution paths are left alone:
// with no goroutines in flight, natural unwinding is already correct and
// costs nothing.
//
// Value holds the original panic value; when a panic crosses several nested
// sync points it is re-raised as the same *PanicError, never re-wrapped, so
// Value and Stack always describe the goroutine that actually panicked.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // stack of the panicking goroutine, from runtime/debug.Stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task panic: %v", e.Value)
}

// Unwrap exposes a panic value that was itself an error to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// panicHook, when set, is notified each time a task's panic is first
// captured at a sync point — once per real panic, not once per sync point it
// crosses (nested joins re-raise the same *PanicError, which does not
// re-notify). The flight recorder uses it to stamp scheduler-captured panics
// into the black-box event stream.
var panicHook atomic.Pointer[func(*PanicError)]

// SetPanicHook installs (or, with nil, removes) the captured-panic callback.
// The callback runs on the panicking goroutine while the region's siblings
// drain, so it must not itself panic or block.
func SetPanicHook(fn func(*PanicError)) {
	if fn == nil {
		panicHook.Store(nil)
		return
	}
	panicHook.Store(&fn)
}

// panicSlot collects the first panic of a fork-join region.
type panicSlot struct {
	p atomic.Pointer[PanicError]
}

// capture is deferred inside every task of a parallel region: it records
// the first panic (preserving an already-wrapped *PanicError from a nested
// join) and swallows the rest so the join's WaitGroup always completes.
func (s *panicSlot) capture() {
	r := recover()
	if r == nil {
		return
	}
	if pe, ok := r.(*PanicError); ok {
		s.p.CompareAndSwap(nil, pe)
		return
	}
	pe := &PanicError{Value: r, Stack: debug.Stack()}
	if hook := panicHook.Load(); hook != nil {
		(*hook)(pe)
	}
	s.p.CompareAndSwap(nil, pe)
}

// rethrow re-raises the captured panic, if any, after the join.
func (s *panicSlot) rethrow() {
	if pe := s.p.Load(); pe != nil {
		panic(pe)
	}
}

// Counter observes the scheduler's spawn-vs-inline decisions. Implementations
// (telemetry shards) are goroutine-private: the scheduler only invokes the
// counter on the calling goroutine, never from a spawned one. A nil Counter
// disables observation at the cost of one comparison.
type Counter interface {
	// Spawned reports n tasks handed to fresh goroutines.
	Spawned(n int)
	// Inlined reports n tasks run on the calling goroutine.
	Inlined(n int)
}

// WorkerObserver extends Counter with notifications bracketing the lifetime
// of each spawned worker goroutine, detected by type assertion on the
// Counter passed to Do2Counted/DoAllCounted. Unlike the Counter methods,
// which fire only on the calling goroutine, WorkerStarted and WorkerFinished
// fire on the spawned goroutine itself, so implementations must be safe for
// concurrent use (the metrics active-workers gauge is a single atomic).
type WorkerObserver interface {
	Counter
	// WorkerStarted fires on a spawned goroutine before its task runs.
	WorkerStarted()
	// WorkerFinished fires when the spawned task returns, panicking or not.
	WorkerFinished()
}

// Do2 runs a and b, in parallel when parallel is true ("spawn a; call b;
// sync" in Cilk terms), serially otherwise. If a task panics in a parallel
// region, the sibling still runs to completion and the first panic is
// re-raised as a *PanicError on the calling goroutine at the sync point.
func Do2(parallel bool, a, b func()) { Do2Counted(parallel, nil, a, b) }

// Do2Counted is Do2 with the spawn-vs-inline decision reported to c.
func Do2Counted(parallel bool, c Counter, a, b func()) {
	if !parallel {
		if c != nil {
			c.Inlined(2)
		}
		a()
		b()
		return
	}
	if c != nil {
		c.Spawned(1)
		c.Inlined(1)
	}
	obs, _ := c.(WorkerObserver)
	var first panicSlot
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer first.capture()
		if obs != nil {
			obs.WorkerStarted()
			defer obs.WorkerFinished()
		}
		a()
	}()
	func() {
		defer first.capture()
		b()
	}()
	wg.Wait()
	first.rethrow()
}

// DoAll runs every function in fns, in parallel when parallel is true.
// The final function runs on the calling goroutine, so a single-element
// list never spawns.
func DoAll(parallel bool, fns []func()) { DoAllCounted(parallel, nil, fns) }

// DoAllCounted is DoAll with the spawn-vs-inline decisions reported to c.
func DoAllCounted(parallel bool, c Counter, fns []func()) {
	n := len(fns)
	if n == 0 {
		return
	}
	if !parallel || n == 1 {
		if c != nil {
			c.Inlined(n)
		}
		for _, f := range fns {
			f()
		}
		return
	}
	if c != nil {
		c.Spawned(n - 1)
		c.Inlined(1)
	}
	obs, _ := c.(WorkerObserver)
	var first panicSlot
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for _, f := range fns[:n-1] {
		f := f
		go func() {
			defer wg.Done()
			defer first.capture()
			if obs != nil {
				obs.WorkerStarted()
				defer obs.WorkerFinished()
			}
			f()
		}()
	}
	func() {
		defer first.capture()
		fns[n-1]()
	}()
	wg.Wait()
	first.rethrow()
}

// For divides the half-open index range [lo, hi) into contiguous chunks of
// at least grain indices and runs body on each chunk, in parallel when
// parallel is true. It is the "cilk_for" of the LOOPS baseline. body
// receives a half-open subrange [i0, i1).
func For(parallel bool, lo, hi, grain int, body func(i0, i1 int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if !parallel || n <= grain {
		body(lo, hi)
		return
	}
	// Choose a chunk count that keeps every worker busy without drowning
	// the scheduler: ~4 chunks per worker, bounded below by the grain.
	chunks := Workers() * 4
	if chunks > (n+grain-1)/grain {
		chunks = (n + grain - 1) / grain
	}
	if chunks <= 1 {
		body(lo, hi)
		return
	}
	size := (n + chunks - 1) / chunks
	var first panicSlot
	var wg sync.WaitGroup
	for start := lo; start < hi; start += size {
		end := start + size
		if end > hi {
			end = hi
		}
		if end == hi {
			// Run the last chunk inline.
			func() {
				defer first.capture()
				body(start, end)
			}()
			break
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			defer first.capture()
			body(s, e)
		}(start, end)
	}
	wg.Wait()
	first.rethrow()
}
