package sched_test

// Pins the runtime guarantee the continuous-profiling subsystem rests on:
// goroutines the scheduler spawns inherit the spawner's pprof label set,
// so CPU samples taken on worker goroutines attribute to the labels the
// gateway and supervisor applied upstream. If a future runtime or
// scheduler change broke inheritance, per-tenant attribution would
// silently collapse into the unlabeled bucket — this test turns that into
// a loud failure.

import (
	"bytes"
	"context"
	"math"
	"runtime/pprof"
	"testing"
	"time"

	"pochoir/internal/profile"
	"pochoir/internal/sched"
)

var labelBurnSink float64

func labelBurn(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 1.0001
	for time.Now().Before(deadline) {
		for i := 0; i < 10000; i++ {
			x = math.Sqrt(x*x + 1.0001)
		}
	}
	labelBurnSink = x
}

func TestSpawnedWorkersInheritProfilerLabels(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiler unavailable: %v", err)
	}
	pprof.Do(context.Background(), pprof.Labels("tenant", "sched-label-test"), func(context.Context) {
		fns := make([]func(), 4)
		for i := range fns {
			fns[i] = func() { labelBurn(150 * time.Millisecond) }
		}
		// parallel=true: all but the last run on spawned goroutines, so
		// most samples land on workers the calling goroutine did not run.
		sched.DoAllCounted(true, nil, fns)
	})
	pprof.StopCPUProfile()

	rep, err := profile.Analyze(buf.Bytes(), 10)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if rep.CPUSeconds <= 0 {
		t.Skip("no CPU samples landed (starved CI runner)")
	}
	var labeled float64
	for _, ls := range rep.ByLabel["tenant"] {
		if ls.Value == "sched-label-test" {
			labeled = ls.Share
		}
	}
	// The burn dominates the process during the window; if inheritance
	// broke, its samples would carry no tenant label at all.
	if labeled < 0.5 {
		t.Fatalf("spawned workers carried the label on only %.0f%% of CPU, want >=50%%: %+v",
			100*labeled, rep.ByLabel["tenant"])
	}
}
