package benchdef

import "testing"

// TestProfilesAgree checks that every benchmark appears in both profiles
// with positive extents, matching dimensionality, and that the quick
// workload is never larger than the bench workload.
func TestProfilesAgree(t *testing.T) {
	if len(bench) != len(quick) {
		t.Fatalf("bench has %d entries, quick has %d", len(bench), len(quick))
	}
	for name, b := range bench {
		q, ok := quick[name]
		if !ok {
			t.Fatalf("%q missing from quick profile", name)
		}
		if len(b.Sizes) != len(q.Sizes) {
			t.Fatalf("%q: bench is %d-dimensional, quick is %d-dimensional",
				name, len(b.Sizes), len(q.Sizes))
		}
		if b.Steps <= 0 || q.Steps <= 0 {
			t.Fatalf("%q: nonpositive steps", name)
		}
		for i := range b.Sizes {
			if b.Sizes[i] <= 0 || q.Sizes[i] <= 0 {
				t.Fatalf("%q: nonpositive size in dim %d", name, i)
			}
		}
		if q.Updates() > b.Updates() {
			t.Errorf("%q: quick workload (%d updates) exceeds bench workload (%d)",
				name, q.Updates(), b.Updates())
		}
	}
}

func TestUpdates(t *testing.T) {
	w := Workload{Sizes: []int{10, 20}, Steps: 3}
	if got := w.Updates(); got != 600 {
		t.Fatalf("Updates() = %d, want 600", got)
	}
}
