// Package benchdef is the single source of truth for benchmark workload
// definitions. The sizes and step counts of the paper's evaluation suite
// were historically duplicated between the go-test benchmarks
// (bench_test.go), the experiment driver (cmd/experiments), and now the
// benchmark lab (internal/benchlab); this package centralizes them so every
// harness times the same space-time boxes and their numbers stay
// comparable. It holds only data — no execution — so anything may import
// it without cycles.
package benchdef

// Workload is one benchmark's space-time box: spatial extents and time
// steps.
type Workload struct {
	Sizes []int `json:"sizes"`
	Steps int   `json:"steps"`
}

// Updates returns the number of space-time point updates the workload
// executes (grid volume x steps).
func (w Workload) Updates() int64 {
	p := int64(1)
	for _, s := range w.Sizes {
		p *= int64(s)
	}
	return p * int64(w.Steps)
}

// bench is the go-test bench profile: sized so `go test -bench=.` finishes
// in minutes (historically bench_test.go's benchWorkloads table).
var bench = map[string]Workload{
	"Heat 2":      {[]int{512, 512}, 32},
	"Heat 2p":     {[]int{512, 512}, 32},
	"Heat 4":      {[]int{16, 16, 16, 16}, 8},
	"Life 2p":     {[]int{512, 512}, 32},
	"Wave 3":      {[]int{64, 64, 64}, 16},
	"LBM 3":       {[]int{24, 24, 28}, 12},
	"RNA 2":       {[]int{96, 96}, 96},
	"PSA 1":       {[]int{4001}, 8200},
	"LCS 1":       {[]int{4001}, 8200},
	"APOP":        {[]int{100000}, 200},
	"3D 7-point":  {[]int{64, 64, 64}, 16},
	"3D 27-point": {[]int{64, 64, 64}, 16},
}

// quick is the smoke-test profile: the smallest workloads that still
// exercise every code path (historically cmd/experiments' quickWorkloads).
var quick = map[string]Workload{
	"Heat 2":      {[]int{300, 300}, 30},
	"Heat 2p":     {[]int{300, 300}, 30},
	"Heat 4":      {[]int{16, 16, 16, 16}, 8},
	"Life 2p":     {[]int{300, 300}, 30},
	"Wave 3":      {[]int{48, 48, 48}, 12},
	"LBM 3":       {[]int{16, 16, 20}, 16},
	"RNA 2":       {[]int{64, 64}, 128},
	"PSA 1":       {[]int{2001}, 4200},
	"LCS 1":       {[]int{2001}, 4200},
	"APOP":        {[]int{40000}, 300},
	"3D 7-point":  {[]int{48, 48, 48}, 16},
	"3D 27-point": {[]int{48, 48, 48}, 16},
}

// Bench returns the go-test bench workload for a benchmark name.
func Bench(name string) (Workload, bool) {
	w, ok := bench[name]
	return w, ok
}

// Quick returns the smoke-test workload for a benchmark name.
func Quick(name string) (Workload, bool) {
	w, ok := quick[name]
	return w, ok
}

// BenchNames returns every benchmark name the tables define (all profiles
// cover the same set).
func BenchNames() []string {
	out := make([]string, 0, len(bench))
	for n := range bench {
		out = append(out, n)
	}
	return out
}

// AblationHeat2D and AblationHeat2DSmall are the Heat 2p workloads the §4
// ablation benchmarks (coarsening, modular indexing, loop-indexing styles,
// Phase 1 vs Phase 2) share with the Fig. 3 Heat 2p row.
var (
	AblationHeat2D      = Workload{Sizes: []int{512, 512}, Steps: 32}
	AblationHeat2DSmall = Workload{Sizes: []int{256, 256}, Steps: 16}
)

// CoarseningConfig is one base-case-coarsening setting of the §4 ablation,
// as plain data (zero values select the paper's heuristic, as in
// pochoir.Options).
type CoarseningConfig struct {
	Name        string
	TimeCutoff  int
	SpaceCutoff []int
	Grain       int64
}

// CoarseningAblation are the three settings both the go-test coarsening
// benchmark and the `-run coarsen` experiment sweep: recursion down to
// single points, a small fixed tile, and the paper's heuristic.
var CoarseningAblation = []CoarseningConfig{
	{Name: "pointwise", TimeCutoff: 1, SpaceCutoff: []int{1, 1}, Grain: 1 << 10},
	{Name: "small-8x8", TimeCutoff: 2, SpaceCutoff: []int{8, 8}},
	{Name: "paper-heuristic"},
}

// Fig9Case is one work/span analyzer configuration of the Fig. 9
// parallelism study: a uniform-slope cubic grid of side N swept for Steps
// home times, uncoarsened.
type Fig9Case struct {
	Name  string
	Dims  int
	N     int
	Steps int
}

// Fig9Bench are the fixed configurations the go-test Fig. 9 benchmark
// analyzes under both TRAP and STRAP.
var Fig9Bench = []Fig9Case{
	{"2DHeat", 2, 800, 1000},
	{"3DWave", 3, 200, 1000},
}

// Fig9Sweep2D / Fig9Sweep3D are the N sweeps of the fig9 experiment, with
// the quick (smoke-test) prefixes.
var (
	Fig9Sweep2D      = []int{100, 200, 400, 800, 1600, 3200, 6400}
	Fig9Sweep2DQuick = []int{100, 200, 400, 800}
	Fig9Sweep3D      = []int{100, 200, 400, 800}
	Fig9Sweep3DQuick = []int{100, 200}
	Fig9Steps        = 1000
)

// Fig. 10 ideal-cache geometry: a 32 KB L1 of doubles with 64-byte lines
// (M=4096 points, B=8 points); the 3D experiment models a 256 KB cache so
// the cache-oblivious tile side stays meaningful.
const (
	Fig10CacheM   = 4096
	Fig10CacheM3D = 32768
	Fig10CacheB   = 8
)
