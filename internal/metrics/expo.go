package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"

	"pochoir/internal/flight"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one # HELP and # TYPE comment per
// family, then the samples, families sorted by name and members by label
// string so scrapes are deterministic. Histograms emit the standard
// cumulative _bucket{le="..."} series plus _sum and _count. The progress
// set (see progress.go) contributes the gauges of the most recent run.
//
// It may be called at any time, including while instrumented runs execute:
// instrument reads are atomic, so a scrape sees a near-instantaneous view
// that is exact per cell and monotone across scrapes for counters.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range f.members {
			d := m.describe()
			switch mm := m.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", d.Name, d.labelString(), mm.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", d.Name, d.labelString(), formatFloat(mm.Value()))
			case *Histogram:
				writeHistogram(bw, d, mm)
			}
		}
	}
	r.prog.writePrometheus(bw)
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket series of one histogram.
// Buckets a traced observation landed in carry an OpenMetrics-style
// exemplar suffix (`# {trace_id="..."} <value> <unix seconds>`), linking
// the aggregate to a retrievable /tracez entry.
func writeHistogram(bw *bufio.Writer, d *Desc, h *Histogram) {
	bounds, counts := h.Buckets()
	exemplars := h.Exemplars()
	labels := d.labelString()
	// Merge the le label into any constant labels.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(bw, "%s_bucket%sle=\"%d\"} %d%s\n", d.Name, open, b, cum, exemplarSuffix(exemplars[i]))
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(bw, "%s_bucket%sle=\"+Inf\"} %d%s\n", d.Name, open, cum, exemplarSuffix(exemplars[len(exemplars)-1]))
	fmt.Fprintf(bw, "%s_sum%s %d\n", d.Name, labels, h.Sum())
	fmt.Fprintf(bw, "%s_count%s %d\n", d.Name, labels, cum)
}

// exemplarSuffix renders a bucket's exemplar annotation, or "" when none.
func exemplarSuffix(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %d %d", escapeLabelValue(e.TraceID), e.Value, e.UnixNS/1e9)
}

// formatFloat renders a gauge value: integral values print without an
// exponent so the common case (worker counts) stays readable.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricStatus is one metric's JSON form in the /statusz snapshot.
type MetricStatus struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Type   string            `json:"type"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Count, Sum, and Buckets are set for histograms; Buckets maps the
	// upper bound (le) to the cumulative count.
	Count   *int64            `json:"count,omitempty"`
	Sum     *int64            `json:"sum,omitempty"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one cumulative histogram bucket; Le is the upper bound
// rendered as a string so "+Inf" survives JSON.
type HistogramBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Status is the /statusz JSON snapshot: process vitals, every registered
// metric, the progress set, and — after a failed run — a summary of the
// last post-mortem incident.
type Status struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	GoVersion     string                  `json:"go_version"`
	GOMAXPROCS    int                     `json:"gomaxprocs"`
	NumGoroutine  int                     `json:"num_goroutine"`
	LastIncident  *flight.IncidentSummary `json:"last_incident,omitempty"`
	Metrics       []MetricStatus          `json:"metrics"`
	Progress      []ProgressStat          `json:"progress,omitempty"`
}

// Snapshot builds the Status view of the registry.
func (r *Registry) Snapshot() Status {
	st := Status{
		UptimeSeconds: r.Uptime().Seconds(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumGoroutine:  runtime.NumGoroutine(),
		LastIncident:  flight.LastIncidentSummary(),
		Progress:      r.ProgressSnapshot(),
	}
	for _, f := range r.snapshotFamilies() {
		for _, m := range f.members {
			d := m.describe()
			ms := MetricStatus{Name: d.Name, Type: f.kind.String()}
			if len(d.Labels) > 0 {
				ms.Labels = make(map[string]string, len(d.Labels))
				for _, l := range d.Labels {
					ms.Labels[l.Key] = l.Value
				}
			}
			switch mm := m.(type) {
			case *Counter:
				v := float64(mm.Value())
				ms.Value = &v
			case *Gauge:
				v := mm.Value()
				ms.Value = &v
			case *Histogram:
				bounds, counts := mm.Buckets()
				var cum int64
				for i, b := range bounds {
					cum += counts[i]
					ms.Buckets = append(ms.Buckets, HistogramBucket{Le: strconv.FormatInt(b, 10), Count: cum})
				}
				cum += counts[len(counts)-1]
				ms.Buckets = append(ms.Buckets, HistogramBucket{Le: "+Inf", Count: cum})
				sum := mm.Sum()
				ms.Count, ms.Sum = &cum, &sum
			}
			st.Metrics = append(st.Metrics, ms)
		}
	}
	return st
}

// WriteStatusz writes the indented JSON snapshot.
func (r *Registry) WriteStatusz(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// CheckExposition validates Prometheus text-format data line by line: every
// comment must be a well-formed HELP or TYPE, every sample must have a legal
// metric name, balanced label syntax, and a parseable value, and every
// sample's family must have been declared by a preceding TYPE line. It
// returns the first violation with its line number, or nil. The monitor
// smoke test and the CI scrape check both run scraped bytes through it.
func CheckExposition(data []byte) error {
	typed := make(map[string]Kind)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	samples := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line, typed); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := checkSample(line, typed); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("exposition holds no samples")
	}
	return nil
}

// checkComment validates a # HELP or # TYPE line, recording TYPE
// declarations in typed.
func checkComment(line string, typed map[string]Kind) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if !validName(fields[2]) {
			return fmt.Errorf("HELP for invalid metric name %q", fields[2])
		}
	case "TYPE":
		if !validName(fields[2]) {
			return fmt.Errorf("TYPE for invalid metric name %q", fields[2])
		}
		if len(fields) < 4 {
			return fmt.Errorf("TYPE %s missing a type", fields[2])
		}
		switch fields[3] {
		case "counter":
			typed[fields[2]] = KindCounter
		case "gauge":
			typed[fields[2]] = KindGauge
		case "histogram":
			typed[fields[2]] = KindHistogram
		case "summary", "untyped":
			typed[fields[2]] = KindGauge // legal types this registry never emits
		default:
			return fmt.Errorf("TYPE %s has unknown type %q", fields[2], fields[3])
		}
	default:
		return fmt.Errorf("unknown comment directive %q", fields[1])
	}
	return nil
}

// checkSample validates one sample line against the declared families.
func checkSample(line string, typed map[string]Kind) error {
	name, rest, err := splitSampleName(line)
	if err != nil {
		return err
	}
	value := strings.TrimSpace(rest)
	if value == "" {
		return fmt.Errorf("sample %q has no value", name)
	}
	// Optional OpenMetrics exemplar: " # {labels} value [timestamp]".
	if i := strings.Index(value, " # "); i >= 0 {
		ex := strings.TrimSpace(value[i+3:])
		value = strings.TrimSpace(value[:i])
		if err := checkExemplar(name, ex); err != nil {
			return err
		}
	}
	// Optional trailing timestamp.
	if i := strings.IndexByte(value, ' '); i >= 0 {
		ts := strings.TrimSpace(value[i+1:])
		value = value[:i]
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return fmt.Errorf("sample %s has malformed timestamp %q", name, ts)
		}
	}
	if _, err := parseSampleValue(value); err != nil {
		return fmt.Errorf("sample %s has malformed value %q", name, value)
	}
	family := name
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if k, ok := typed[base]; ok && k == KindHistogram {
				family = base
			}
			break
		}
	}
	if _, ok := typed[family]; !ok {
		return fmt.Errorf("sample %s precedes its TYPE declaration", name)
	}
	return nil
}

// checkExemplar validates the body of an exemplar annotation: a label
// block, a value, and an optional timestamp.
func checkExemplar(name, ex string) error {
	if !strings.HasPrefix(ex, "{") {
		return fmt.Errorf("sample %s exemplar missing label block: %q", name, ex)
	}
	end, err := scanLabels(ex, 0)
	if err != nil {
		return fmt.Errorf("sample %s exemplar: %w", name, err)
	}
	fields := strings.Fields(ex[end:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %s exemplar has malformed value %q", name, ex[end:])
	}
	if _, err := parseSampleValue(fields[0]); err != nil {
		return fmt.Errorf("sample %s exemplar has malformed value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("sample %s exemplar has malformed timestamp %q", name, fields[1])
		}
	}
	return nil
}

// splitSampleName parses the metric name and optional label block off a
// sample line, returning the remainder (the value, and possibly timestamp).
func splitSampleName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if i < len(line) && line[i] == '{' {
		j, err := scanLabels(line, i)
		if err != nil {
			return "", "", fmt.Errorf("sample %s: %w", name, err)
		}
		i = j
	}
	if i >= len(line) || line[i] != ' ' {
		return "", "", fmt.Errorf("sample %s has no value separator", name)
	}
	return name, line[i+1:], nil
}

// scanLabels walks a {k="v",...} block starting at the opening brace,
// returning the index one past the closing brace.
func scanLabels(line string, open int) (int, error) {
	i := open + 1
	for {
		if i >= len(line) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if line[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(line) && line[i] != '=' {
			i++
		}
		if i >= len(line) || !validName(line[start:i]) {
			return 0, fmt.Errorf("invalid label key %q", line[start:min(i, len(line))])
		}
		i++ // '='
		if i >= len(line) || line[i] != '"' {
			return 0, fmt.Errorf("label value not quoted")
		}
		i++
		for i < len(line) && line[i] != '"' {
			if line[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(line) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // closing quote
		if i < len(line) && line[i] == ',' {
			i++
		}
	}
}

// parseSampleValue parses a sample value, accepting the +Inf/-Inf/NaN
// spellings the format allows.
func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
