package metrics

// This file defines the pre-resolved instrument sets the engine layers hold.
// Resolving a metric means a map lookup under the registry lock, so the
// walker, scheduler, and supervisor each resolve their whole set once (at
// arm time / run start) and then touch only the cached pointers on hot
// paths. A nil set pointer disarms every instrumentation point with a
// single comparison, mirroring the telemetry recorder's discipline.

// Engine names index RunMetrics.EnginePoints; the values match
// core.Algorithm (TRAP=0, STRAP=1, LOOPS=2).
var engineNames = [3]string{"TRAP", "STRAP", "LOOPS"}

// RunMetrics is the walker/scheduler instrument set.
type RunMetrics struct {
	// Run lifecycle.
	RunsStarted *Counter
	RunsActive  *Gauge

	// Decomposition: every zoid visited, and the cut decisions by kind.
	Zoids     *Counter
	TimeCuts  *Counter
	HyperCuts *Counter
	SpaceCuts *Counter

	// Base cases: executions by clone, total space-time points, and the
	// volume distribution.
	BaseInterior *Counter
	BaseBoundary *Counter
	BasePoints   *Counter
	BaseVolume   *Histogram

	// EnginePoints[core.Algorithm] attributes base-case points to the
	// engine that executed them.
	EnginePoints [3]*Counter

	// Scheduler: forks spawned vs inlined, concurrently active workers,
	// and the fork-depth distribution.
	Spawns        *Counter
	Inlines       *Counter
	ActiveWorkers *Gauge
	ForkDepth     *Histogram

	// RunStats bridge, set from the telemetry delta at run/segment
	// boundaries when both systems are armed.
	LastParallelism *Gauge
	LastWallSeconds *Gauge
	LastWorkers     *Gauge
}

// NewRunMetrics resolves the walker/scheduler instrument set against r.
// Idempotent: the registry dedupes by name+labels, so every caller gets
// pointers to the same instruments.
func NewRunMetrics(r *Registry) *RunMetrics {
	m := &RunMetrics{
		RunsStarted: r.Counter("pochoir_runs_started_total", "Run/RunSupervised segment executions started."),
		RunsActive:  r.Gauge("pochoir_runs_active", "Walker runs currently executing."),

		Zoids:     r.Counter("pochoir_zoids_total", "Zoids visited by the decomposition (cuts and base cases)."),
		TimeCuts:  r.Counter("pochoir_cuts_total", "Zoid cut decisions by kind.", Label{"kind", "time"}),
		HyperCuts: r.Counter("pochoir_cuts_total", "Zoid cut decisions by kind.", Label{"kind", "hyperspace"}),
		SpaceCuts: r.Counter("pochoir_cuts_total", "Zoid cut decisions by kind.", Label{"kind", "space_serial"}),

		BaseInterior: r.Counter("pochoir_base_cases_total", "Base-case kernel invocations by clone.", Label{"clone", "interior"}),
		BaseBoundary: r.Counter("pochoir_base_cases_total", "Base-case kernel invocations by clone.", Label{"clone", "boundary"}),
		BasePoints:   r.Counter("pochoir_base_points_total", "Space-time points executed by base cases."),
		BaseVolume:   r.Histogram("pochoir_base_volume_points", "Base-case zoid volume distribution in points.", 24),

		Spawns:        r.Counter("pochoir_forks_total", "Fork-join forks by placement.", Label{"placement", "spawned"}),
		Inlines:       r.Counter("pochoir_forks_total", "Fork-join forks by placement.", Label{"placement", "inlined"}),
		ActiveWorkers: r.Gauge("pochoir_active_workers", "Worker goroutines currently executing spawned zoid tasks."),
		ForkDepth:     r.Histogram("pochoir_fork_depth", "Recursion depth at which tasks were forked.", 10),

		LastParallelism: r.Gauge("pochoir_last_parallelism", "Achieved parallelism of the last telemetry-armed run segment."),
		LastWallSeconds: r.Gauge("pochoir_last_wall_seconds", "Wall time of the last telemetry-armed run segment."),
		LastWorkers:     r.Gauge("pochoir_last_workers", "Distinct workers of the last telemetry-armed run segment."),
	}
	for i, name := range engineNames {
		m.EnginePoints[i] = r.Counter("pochoir_engine_points_total",
			"Base-case points executed, by engine.", Label{"engine", name})
	}
	return m
}

// SupervisorMetrics is the resilience supervisor's instrument set.
type SupervisorMetrics struct {
	SegmentsDone   *Counter
	SegmentsFailed *Counter
	Retries        *Counter
	Degradations   *Counter
	WatchdogTrips  *Counter
	VerifyOK       *Counter
	VerifyMismatch *Counter
	Checkpoints    *Counter
	Restores       *Counter
	GiveUps        *Counter
	BackoffNS      *Counter

	// Durable spill journal: checkpoints persisted (or failed), the bytes
	// and wall time they cost, so /statusz shows what durability is costing
	// a run while it happens.
	Spills      *Counter
	SpillErrors *Counter
	SpillBytes  *Counter
	SpillNS     *Counter

	// Cross-process resume outcomes: a fresh process restored a journal
	// entry, started cold (empty or fully corrupt journal), plus every
	// corrupt or torn entry skipped on the way to the newest good one.
	ResumeRestored *Counter
	ResumeCold     *Counter
	ResumeCorrupt  *Counter
}

// NewSupervisorMetrics resolves the supervisor instrument set against r.
func NewSupervisorMetrics(r *Registry) *SupervisorMetrics {
	return &SupervisorMetrics{
		SegmentsDone:   r.Counter("pochoir_sup_segments_total", "Supervised segments by outcome.", Label{"outcome", "ok"}),
		SegmentsFailed: r.Counter("pochoir_sup_segments_total", "Supervised segments by outcome.", Label{"outcome", "failed"}),
		Retries:        r.Counter("pochoir_sup_retries_total", "Segment attempts retried after a failure."),
		Degradations:   r.Counter("pochoir_sup_degradations_total", "Degradation-ladder demotions (e.g. TRAP to STRAP)."),
		WatchdogTrips:  r.Counter("pochoir_sup_watchdog_trips_total", "Segment attempts killed by the watchdog timeout."),
		VerifyOK:       r.Counter("pochoir_sup_verify_total", "Shadow verifications by outcome.", Label{"outcome", "ok"}),
		VerifyMismatch: r.Counter("pochoir_sup_verify_total", "Shadow verifications by outcome.", Label{"outcome", "mismatch"}),
		Checkpoints:    r.Counter("pochoir_sup_checkpoints_total", "Checkpoints taken at segment boundaries."),
		Restores:       r.Counter("pochoir_sup_restores_total", "Checkpoint restores after failed attempts."),
		GiveUps:        r.Counter("pochoir_sup_giveups_total", "Supervised runs abandoned after exhausting retries."),
		BackoffNS:      r.Counter("pochoir_sup_backoff_ns_total", "Nanoseconds spent in retry backoff sleeps."),

		Spills:      r.Counter("pochoir_sup_spills_total", "Durable checkpoint spills by outcome.", Label{"outcome", "ok"}),
		SpillErrors: r.Counter("pochoir_sup_spills_total", "Durable checkpoint spills by outcome.", Label{"outcome", "error"}),
		SpillBytes:  r.Counter("pochoir_sup_spill_bytes_total", "Bytes written to the durable spill journal."),
		SpillNS:     r.Counter("pochoir_sup_spill_ns_total", "Nanoseconds spent writing durable checkpoint spills."),

		ResumeRestored: r.Counter("pochoir_resume_total", "Cross-process resume decisions by outcome.", Label{"outcome", "restored"}),
		ResumeCold:     r.Counter("pochoir_resume_total", "Cross-process resume decisions by outcome.", Label{"outcome", "cold_start"}),
		ResumeCorrupt:  r.Counter("pochoir_resume_corrupt_entries_total", "Corrupt or torn journal entries skipped while resuming."),
	}
}

// ProfilerMetrics is the continuous profiler's self-instrument set:
// capture windows completed by kind, ring evictions under retention
// pressure, and decode/capture failures. The capture loop holds these via
// the profile package's narrow Counter interface, keeping that package
// dependency-free.
type ProfilerMetrics struct {
	Captures      *Counter
	HeapCaptures  *Counter
	Evictions     *Counter
	DecodeErrors  *Counter
	CaptureErrors *Counter
}

// NewProfilerMetrics resolves the profiler instrument set against r.
// Idempotent, like the other sets.
func NewProfilerMetrics(r *Registry) *ProfilerMetrics {
	return &ProfilerMetrics{
		Captures:      r.Counter("pochoir_profile_captures_total", "Completed profile capture windows by kind.", Label{"kind", "cpu"}),
		HeapCaptures:  r.Counter("pochoir_profile_captures_total", "Completed profile capture windows by kind.", Label{"kind", "heap"}),
		Evictions:     r.Counter("pochoir_profile_ring_evictions_total", "Captures evicted from the in-memory ring under retention pressure."),
		DecodeErrors:  r.Counter("pochoir_profile_decode_errors_total", "Captured profiles the pprof decoder rejected."),
		CaptureErrors: r.Counter("pochoir_profile_capture_errors_total", "Capture windows that could not start (CPU profiler busy)."),
	}
}
