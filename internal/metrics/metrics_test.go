package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrentExact is the -race registry concurrency test:
// GOMAXPROCS goroutines hammer one striped counter and the total must be
// exact — striping may spread increments anywhere, but no increment may be
// lost or double-counted.
func TestCounterConcurrentExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_concurrent_total", "concurrency test")
	g := r.Gauge("test_concurrent_gauge", "concurrency test")
	h := r.Histogram("test_concurrent_hist", "concurrency test", 16)

	workers := runtime.GOMAXPROCS(0) * 4
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(2)
				g.Add(1)
				h.Observe(seed%1000 + 1)
			}
		}(int64(w))
	}
	// Concurrent scrapes must be safe while increments run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("concurrent scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	want := int64(workers * perWorker * 2)
	if got := c.Value(); got != want {
		t.Fatalf("counter sum = %d, want %d", got, want)
	}
	if got := g.Value(); got != float64(workers*perWorker) {
		t.Fatalf("gauge sum = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != int64(workers*perWorker) {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	_, counts := h.Buckets()
	var bucketSum int64
	for _, n := range counts {
		bucketSum += n
	}
	if bucketSum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count())
	}
}

func TestGaugeOps(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "g")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("Set: got %v", g.Value())
	}
	g.Inc()
	g.Dec()
	g.Add(-1.5)
	if g.Value() != 2 {
		t.Fatalf("Add: got %v", g.Value())
	}
	g.SetMax(1)
	if g.Value() != 2 {
		t.Fatalf("SetMax lowered the gauge: %v", g.Value())
	}
	g.SetMax(10)
	if g.Value() != 10 {
		t.Fatalf("SetMax: got %v", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "h", 4) // bounds 1,2,4,8 then +Inf
	for _, v := range []int64{0, 1, 2, 3, 4, 8, 9, 100} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || bounds[3] != 8 {
		t.Fatalf("bounds = %v", bounds)
	}
	// 0,1 -> le=1; 2 -> le=2; 3,4 -> le=4; 8 -> le=8; 9,100 -> +Inf
	want := []int64{2, 1, 2, 1, 2}
	for i, n := range want {
		if counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], n, counts)
		}
	}
	if h.Sum() != 127 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestRegistryIdempotentAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_dup_total", "dup")
	b := r.Counter("test_dup_total", "dup")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	l1 := r.Counter("test_labeled_total", "dup", Label{"k", "v1"})
	l2 := r.Counter("test_labeled_total", "dup", Label{"k", "v2"})
	if l1 == l2 {
		t.Fatal("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("test_dup_total", "dup")
}

// TestPrometheusGolden pins the exposition format: deterministic order,
// HELP/TYPE comments, cumulative histogram buckets, progress gauges.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_events_total", "Events processed.", Label{"kind", "cut"})
	c.Add(7)
	g := r.Gauge("app_workers", "Active workers.")
	g.Set(3)
	h := r.Histogram("app_sizes", "Size distribution.", 3) // 1,2,4,+Inf
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)
	p := r.StartProgress("golden", 200)
	p.Add(50)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := strings.Join([]string{
		`# HELP app_events_total Events processed.`,
		`# TYPE app_events_total counter`,
		`app_events_total{kind="cut"} 7`,
		`# HELP app_sizes Size distribution.`,
		`# TYPE app_sizes histogram`,
		`app_sizes_bucket{le="1"} 1`,
		`app_sizes_bucket{le="2"} 1`,
		`app_sizes_bucket{le="4"} 2`,
		`app_sizes_bucket{le="+Inf"} 3`,
		`app_sizes_sum 104`,
		`app_sizes_count 3`,
		`# HELP app_workers Active workers.`,
		`# TYPE app_workers gauge`,
		`app_workers 3`,
	}, "\n") + "\n"
	if !strings.HasPrefix(got, want) {
		t.Fatalf("exposition prefix mismatch:\n--- got ---\n%s\n--- want prefix ---\n%s", got, want)
	}
	for _, line := range []string{
		"pochoir_progress_percent 25\n",
		"pochoir_progress_points_done 50\n",
		"pochoir_progress_points_total 200\n",
		"pochoir_progress_active 1\n",
	} {
		if !strings.Contains(got, line) {
			t.Fatalf("exposition missing %q:\n%s", line, got)
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("golden exposition fails its own validator: %v", err)
	}
}

// TestPrometheusGoldenSupervisorSpill pins the durable-spill and
// cross-process-resume instruments on /statusz: both outcome labels of
// each family are pre-registered (a scrape sees "error"/"cold_start" at 0
// before anything goes wrong), and the byte/time/corruption counters
// expose exactly as named in README and EXPERIMENTS.md.
func TestPrometheusGoldenSupervisorSpill(t *testing.T) {
	r := NewRegistry()
	sm := NewSupervisorMetrics(r)
	sm.Spills.Add(4)
	sm.SpillBytes.Add(1 << 20)
	sm.SpillNS.Add(2500)
	sm.ResumeRestored.Inc()
	sm.ResumeCorrupt.Add(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, line := range []string{
		`pochoir_sup_spills_total{outcome="ok"} 4` + "\n",
		`pochoir_sup_spills_total{outcome="error"} 0` + "\n",
		"pochoir_sup_spill_bytes_total 1048576\n",
		"pochoir_sup_spill_ns_total 2500\n",
		`pochoir_resume_total{outcome="restored"} 1` + "\n",
		`pochoir_resume_total{outcome="cold_start"} 0` + "\n",
		"pochoir_resume_corrupt_entries_total 2\n",
	} {
		if !strings.Contains(got, line) {
			t.Fatalf("exposition missing %q:\n%s", line, got)
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("supervisor exposition fails the validator: %v", err)
	}
	// Get-or-create: a second resolution against the same registry must
	// return the same underlying counters, not panic on re-registration.
	if NewSupervisorMetrics(r).Spills.Value() != 4 {
		t.Fatal("re-resolved instrument set lost the counts")
	}
}

// TestPrometheusGoldenProfiler pins the continuous profiler's exposition:
// the self-metrics (capture counts by kind, ring evictions, decode and
// capture errors — both kinds pre-registered so a scrape sees heap at 0
// before the first snapshot) and the per-tenant CPU attribution gauge,
// exactly as named in README and EXPERIMENTS.md. CPU seconds are
// fractional, so the family is a gauge that only ever accumulates.
func TestPrometheusGoldenProfiler(t *testing.T) {
	r := NewRegistry()
	pm := NewProfilerMetrics(r)
	pm.Captures.Add(6)
	pm.Evictions.Add(2)
	pm.DecodeErrors.Add(1)
	r.Gauge("pochoir_tenant_cpu_seconds_total",
		"Cumulative CPU seconds attributed to each tenant by the continuous profiler.",
		Label{"tenant", "acme"}).Add(1.5)
	r.Gauge("pochoir_tenant_cpu_seconds_total",
		"Cumulative CPU seconds attributed to each tenant by the continuous profiler.",
		Label{"tenant", "batch"}).Add(0.25)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, line := range []string{
		`pochoir_profile_captures_total{kind="cpu"} 6` + "\n",
		`pochoir_profile_captures_total{kind="heap"} 0` + "\n",
		"pochoir_profile_ring_evictions_total 2\n",
		"pochoir_profile_decode_errors_total 1\n",
		"pochoir_profile_capture_errors_total 0\n",
		`pochoir_tenant_cpu_seconds_total{tenant="acme"} 1.5` + "\n",
		`pochoir_tenant_cpu_seconds_total{tenant="batch"} 0.25` + "\n",
	} {
		if !strings.Contains(got, line) {
			t.Fatalf("exposition missing %q:\n%s", line, got)
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("profiler exposition fails the validator: %v", err)
	}
	if NewProfilerMetrics(r).Captures.Value() != 6 {
		t.Fatal("re-resolved profiler set lost the counts")
	}
}

func TestCheckExposition(t *testing.T) {
	valid := []byte(strings.Join([]string{
		"# HELP x_total stuff",
		"# TYPE x_total counter",
		`x_total{a="b",c="d\"e"} 12`,
		"# TYPE h histogram",
		`h_bucket{le="+Inf"} 3`,
		"h_sum 10",
		"h_count 3",
		"# TYPE g gauge",
		"g -1.5e-3",
		"g2 NaN",
		"# TYPE g2 gauge",
	}, "\n"))
	// g2 precedes its TYPE — that variant must fail; fix the order first.
	bad := valid
	valid = []byte(strings.Replace(string(valid), "g2 NaN\n# TYPE g2 gauge", "# TYPE g2 gauge\ng2 NaN", 1))
	if err := CheckExposition(valid); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if err := CheckExposition(bad); err == nil {
		t.Fatal("sample before TYPE accepted")
	}
	cases := map[string]string{
		"empty":          "",
		"comments only":  "# TYPE x counter",
		"bad name":       "# TYPE x counter\n1x 3",
		"no value":       "# TYPE x counter\nx",
		"bad value":      "# TYPE x counter\nx forty",
		"unterminated":   "# TYPE x counter\nx{a=\"b 3",
		"bad type":       "# TYPE x widget\nx 3",
		"bad directive":  "# FOO x counter\nx 3",
		"undeclared":     "y 3",
		"bad label key":  "# TYPE x counter\nx{1a=\"b\"} 3",
		"unquoted label": "# TYPE x counter\nx{a=b} 3",
		"bad timestamp":  "# TYPE x counter\nx 3 soon",
	}
	for name, data := range cases {
		if err := CheckExposition([]byte(data)); err == nil {
			t.Errorf("%s: accepted %q", name, data)
		}
	}
}

func TestProgress(t *testing.T) {
	r := NewRegistry()
	p := r.StartProgress("run", 1000)
	if p.Percent() != 0 {
		t.Fatalf("fresh percent = %v", p.Percent())
	}
	p.Add(250)
	if p.Percent() != 25 {
		t.Fatalf("percent = %v, want 25", p.Percent())
	}
	// Redone work overshoots; percent clamps and stays monotone.
	p.Add(900)
	if p.Percent() != 100 {
		t.Fatalf("overshoot percent = %v, want 100", p.Percent())
	}
	if p.ETA() != 0 {
		t.Fatalf("ETA with no work remaining = %v", p.ETA())
	}
	p.Finish(true)
	if !p.Finished() || p.Percent() != 100 || p.Done() < p.Total() {
		t.Fatalf("after Finish: finished=%v percent=%v done=%d", p.Finished(), p.Percent(), p.Done())
	}
	p.Finish(false) // idempotent: first call won
	st := p.stat()
	if st.Active || !st.OK {
		t.Fatalf("stat after ok finish: %+v", st)
	}

	// A failed run keeps its partial percent.
	q := r.StartProgress("fail", 1000)
	q.Add(100)
	q.Finish(false)
	if got := q.Percent(); got != 10 {
		t.Fatalf("failed-run percent = %v, want 10", got)
	}
	if st := q.stat(); st.OK || st.Active {
		t.Fatalf("failed-run stat: %+v", st)
	}

	// Zero-total runs: 0% until a successful finish, never NaN.
	z := r.StartProgress("empty", 0)
	if z.Percent() != 0 {
		t.Fatalf("zero-total percent = %v", z.Percent())
	}
	z.Finish(true)
	if z.Percent() != 100 {
		t.Fatalf("zero-total finished percent = %v", z.Percent())
	}

	snap := r.ProgressSnapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot holds %d runs, want 3", len(snap))
	}
	if snap[0].Label != "empty" {
		t.Fatalf("snapshot not newest-first: %+v", snap)
	}
}

func TestProgressETA(t *testing.T) {
	r := NewRegistry()
	p := r.StartProgress("eta", 100)
	p.Add(50)
	time.Sleep(10 * time.Millisecond)
	eta := p.ETA()
	if eta <= 0 {
		t.Fatalf("ETA = %v, want > 0 at 50%%", eta)
	}
	// Half done: the ETA should be on the order of the elapsed time.
	if el := p.elapsed(); eta > el*10 {
		t.Fatalf("ETA %v wildly exceeds elapsed %v at 50%%", eta, el)
	}
}

func TestProgressHistoryBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < keepFinished*3; i++ {
		p := r.StartProgress(fmt.Sprintf("run-%d", i), 10)
		p.Finish(true)
	}
	snap := r.ProgressSnapshot()
	if len(snap) > keepFinished+2 {
		t.Fatalf("history unbounded: %d entries", len(snap))
	}
}

func TestRunAndSupervisorSets(t *testing.T) {
	r := NewRegistry()
	m := NewRunMetrics(r)
	m2 := NewRunMetrics(r)
	if m.Zoids != m2.Zoids || m.EnginePoints[0] != m2.EnginePoints[0] {
		t.Fatal("NewRunMetrics is not idempotent")
	}
	m.Zoids.Inc()
	m.EnginePoints[2].Add(5)
	s := NewSupervisorMetrics(r)
	s.Retries.Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pochoir_zoids_total 1",
		`pochoir_engine_points_total{engine="LOOPS"} 5`,
		`pochoir_engine_points_total{engine="TRAP"} 0`,
		"pochoir_sup_retries_total 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, buf.String())
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("instrument-set exposition invalid: %v", err)
	}
}

func TestMonitorEndpoints(t *testing.T) {
	r := NewRegistry()
	NewRunMetrics(r).Zoids.Add(42)
	p := r.StartProgress("monitored", 100)
	p.Add(40)

	m, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	get := func(path string) []byte {
		resp, err := http.Get(m.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	metricsBody := get("/metrics")
	if !strings.Contains(string(metricsBody), "pochoir_zoids_total 42") {
		t.Fatalf("/metrics missing zoid counter:\n%s", metricsBody)
	}
	if err := CheckExposition(metricsBody); err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}

	var status Status
	if err := json.Unmarshal(get("/statusz"), &status); err != nil {
		t.Fatalf("/statusz: %v", err)
	}
	if status.GoVersion == "" || len(status.Metrics) == 0 {
		t.Fatalf("/statusz incomplete: %+v", status)
	}

	var prog struct {
		Runs []ProgressStat `json:"runs"`
	}
	if err := json.Unmarshal(get("/progressz"), &prog); err != nil {
		t.Fatalf("/progressz: %v", err)
	}
	if len(prog.Runs) != 1 || prog.Runs[0].Percent != 40 {
		t.Fatalf("/progressz = %+v", prog)
	}

	if !strings.Contains(string(get("/")), "/metrics") {
		t.Fatal("index page missing endpoint listing")
	}
	if !bytes.Contains(get("/debug/vars"), []byte("memstats")) {
		t.Fatal("/debug/vars missing expvar memstats")
	}
	if !bytes.Contains(get("/debug/pprof/"), []byte("goroutine")) {
		t.Fatal("/debug/pprof/ index missing profiles")
	}
}
