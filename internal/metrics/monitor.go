package metrics

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"pochoir/internal/flight"
)

// HandlerOption extends the monitor mux with optional subsystems.
type HandlerOption func(*handlerOptions)

type handlerOptions struct {
	tracez   http.Handler
	slo      *SLOEngine
	profilez http.Handler
}

// WithTracez mounts a trace viewer (trace.Handler) at /tracez and
// /tracez/. Without it, those paths 404 — the monitor never serves an
// empty 200 for a trace it cannot have.
func WithTracez(h http.Handler) HandlerOption {
	return func(o *handlerOptions) { o.tracez = h }
}

// WithSLO mounts an SLO engine's JSON view at /slo.
func WithSLO(e *SLOEngine) HandlerOption {
	return func(o *handlerOptions) { o.slo = e }
}

// WithProfilez mounts the continuous profiler's attribution views
// (profile.NewHandler) at /profilez and /profilez.json. Without it, those
// paths 404 — the monitor never pretends to attribution it cannot have.
func WithProfilez(h http.Handler) HandlerOption {
	return func(o *handlerOptions) { o.profilez = h }
}

// NewHandler builds the monitor's HTTP mux for a registry:
//
//	/metrics        Prometheus text exposition (WritePrometheus)
//	/statusz        JSON snapshot of every metric + process vitals
//	/progressz      JSON progress of in-flight and recent runs
//	/slo            SLO burn-rate status (with WithSLO)
//	/profilez       continuous-profiling CPU attribution (with WithProfilez)
//	/tracez         retained traces: lists, waterfalls, JSON (with WithTracez)
//	/debug/flightz  JSON post-mortem bundle of the last incident
//	/debug/pprof/*  the standard runtime profiles
//	/debug/vars     expvar (runtime memstats and any user vars)
//	/               a plain-text index of the above
//
// The handler holds no state beyond the registry pointer, so it can be
// mounted on an existing server instead of using Serve.
func NewHandler(r *Registry, opts ...HandlerOption) http.Handler {
	var o handlerOptions
	for _, opt := range opts {
		opt(&o)
	}
	mux := http.NewServeMux()
	if o.tracez != nil {
		mux.Handle("/tracez", o.tracez)
		mux.Handle("/tracez/", o.tracez)
	}
	if o.slo != nil {
		mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = o.slo.WriteSLO(w)
		})
	}
	if o.profilez != nil {
		mux.Handle("/profilez", o.profilez)
		mux.Handle("/profilez.json", o.profilez)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteStatusz(w)
	})
	mux.HandleFunc("/progressz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteProgressz(w)
	})
	mux.HandleFunc("/debug/flightz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		inc := flight.LastIncident()
		if inc == nil {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintln(w, `{"error": "no incident recorded"}`)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Serve the full bundle when it is still in memory; the summary
		// otherwise (a fresh process after a crash loads nothing).
		if inc.Bundle != nil {
			_ = enc.Encode(inc.Bundle)
			return
		}
		_ = enc.Encode(inc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "pochoir monitor (up %s)\n\n", r.Uptime().Round(time.Second))
		fmt.Fprintln(w, "/metrics        Prometheus text exposition")
		fmt.Fprintln(w, "/statusz        JSON metric snapshot")
		fmt.Fprintln(w, "/progressz      JSON run progress + ETA")
		if o.slo != nil {
			fmt.Fprintln(w, "/slo            SLO burn-rate status")
		}
		if o.profilez != nil {
			fmt.Fprintln(w, "/profilez       where the CPU goes (tenant/engine/phase attribution)")
		}
		if o.tracez != nil {
			fmt.Fprintln(w, "/tracez         retained traces (waterfalls, JSON)")
		}
		fmt.Fprintln(w, "/debug/flightz  last post-mortem incident")
		fmt.Fprintln(w, "/debug/pprof/   runtime profiles")
		fmt.Fprintln(w, "/debug/vars     expvar")
	})
	return mux
}

// Monitor is an embedded HTTP server exposing a registry. It owns its
// listener, so addr may use port 0 and Addr reports the bound port.
type Monitor struct {
	ln  net.Listener
	srv *http.Server
}

// HardenedServer wraps a handler in an http.Server with full timeout
// coverage, so a slow or stalled client can never pin a handler goroutine
// (and its scrape or job state) forever:
//
//   - ReadHeaderTimeout/ReadTimeout bound a client trickling its request;
//   - WriteTimeout bounds a client draining a response one byte at a time
//     (generous, because /debug/pprof/profile legitimately streams for its
//     whole profiling window);
//   - IdleTimeout reclaims keep-alive connections between scrapes.
//
// Both the embedded monitor (Serve) and the serving gateway (cmd/pochoird)
// build their servers through it, so the hardening is shared, not copied.
func HardenedServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      90 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Serve starts the monitor on addr ("127.0.0.1:9600", ":0", ...). The
// server runs on a background goroutine until Close.
func Serve(addr string, r *Registry) (*Monitor, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	m := &Monitor{ln: ln, srv: HardenedServer(NewHandler(r))}
	go func() { _ = m.srv.Serve(ln) }()
	return m, nil
}

// Addr returns the bound listen address.
func (m *Monitor) Addr() string { return m.ln.Addr().String() }

// URL returns the base http:// URL of the monitor.
func (m *Monitor) URL() string { return "http://" + m.Addr() }

// Close shuts the server down immediately, closing the listener. It is
// idempotent: closing an already-closed monitor returns nil.
func (m *Monitor) Close() error {
	err := m.srv.Close()
	// srv.Close only closes listeners the Serve goroutine has already
	// registered; close ours directly so Close never leaks the port even
	// when it races the goroutine's startup.
	if lnErr := m.ln.Close(); lnErr != nil && !errors.Is(lnErr, net.ErrClosed) && err == nil {
		err = lnErr
	}
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
