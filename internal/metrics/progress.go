package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live run-progress estimator of one in-flight Run or
// RunSupervised call. The engine adds every executed base-case volume to it
// (completed time steps × touched points), and the monitor compares the
// running total against the predicted total — steps × grid volume, which
// the decomposition partitions exactly — to publish percent-complete and an
// ETA while the run executes.
//
// The executed-points counter is cumulative and never decremented, so the
// published percent is monotonically non-decreasing even when the
// resilience supervisor restores a checkpoint and re-executes a segment:
// redone work counts again, and the percent (clamped at 100) simply
// approaches completion faster than the committed state does. A successful
// run always reaches exactly 100.
type Progress struct {
	id    int64
	label string
	total int64
	reg   *Registry

	done       atomic.Int64
	startNS    int64 // nanoseconds since the registry epoch
	finishedNS atomic.Int64
	failed     atomic.Bool
}

// Add records n executed space-time points. It is called from worker
// goroutines at base-case granularity — one striped-free atomic add,
// amortized over the zoid's whole point set.
func (p *Progress) Add(n int64) { p.done.Add(n) }

// Done returns the cumulative executed points (redone segments included).
func (p *Progress) Done() int64 { return p.done.Load() }

// Total returns the predicted total points.
func (p *Progress) Total() int64 { return p.total }

// Percent returns the completion estimate in [0, 100].
func (p *Progress) Percent() float64 {
	if p.total <= 0 {
		if p.finishedNS.Load() != 0 && !p.failed.Load() {
			return 100
		}
		return 0
	}
	pct := 100 * float64(p.done.Load()) / float64(p.total)
	if pct > 100 {
		pct = 100
	}
	return pct
}

// elapsed returns the active duration: start to now while running, start to
// finish once finished.
func (p *Progress) elapsed() time.Duration {
	end := p.finishedNS.Load()
	if end == 0 {
		end = p.reg.nowNS()
	}
	return time.Duration(end - p.startNS)
}

// ETA estimates the remaining duration from the observed point rate; zero
// when the run is finished, complete, or too young to have a rate.
func (p *Progress) ETA() time.Duration {
	if p.finishedNS.Load() != 0 {
		return 0
	}
	done := p.done.Load()
	remaining := p.total - done
	if done <= 0 || remaining <= 0 {
		return 0
	}
	el := p.elapsed()
	if el <= 0 {
		return 0
	}
	return time.Duration(float64(el) * float64(remaining) / float64(done))
}

// Finish marks the run complete. On success the done counter is raised to
// the total (a successful run has executed at least every point once, but a
// total of 0 steps or a counter armed mid-run should still read 100%).
// Finish is idempotent; the first call wins.
func (p *Progress) Finish(ok bool) {
	if !p.finishedNS.CompareAndSwap(0, p.reg.nowNS()) {
		return
	}
	if !ok {
		p.failed.Store(true)
		return
	}
	if d := p.done.Load(); d < p.total {
		p.done.Add(p.total - d)
	}
}

// Finished reports whether Finish was called.
func (p *Progress) Finished() bool { return p.finishedNS.Load() != 0 }

// ProgressStat is the JSON view of one run's progress, served at /progressz
// and embedded in /statusz.
type ProgressStat struct {
	ID             int64   `json:"id"`
	Label          string  `json:"label"`
	Active         bool    `json:"active"`
	OK             bool    `json:"ok"` // meaningful once Active is false
	Percent        float64 `json:"percent"`
	PointsDone     int64   `json:"points_done"`
	PointsTotal    int64   `json:"points_total"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	ETASeconds     float64 `json:"eta_seconds"`
	// RateMpts is the observed throughput in millions of points per second.
	RateMpts float64 `json:"rate_mpts"`
}

// stat builds the JSON view.
func (p *Progress) stat() ProgressStat {
	el := p.elapsed()
	st := ProgressStat{
		ID:             p.id,
		Label:          p.label,
		Active:         !p.Finished(),
		OK:             p.Finished() && !p.failed.Load(),
		Percent:        p.Percent(),
		PointsDone:     p.done.Load(),
		PointsTotal:    p.total,
		ElapsedSeconds: el.Seconds(),
		ETASeconds:     p.ETA().Seconds(),
	}
	if el > 0 {
		st.RateMpts = float64(st.PointsDone) / el.Seconds() / 1e6
	}
	return st
}

// keepFinished bounds the finished-run history served by /progressz.
const keepFinished = 8

// progressSet tracks the in-flight runs plus a short history of finished
// ones. The set's lock covers only StartProgress/snapshot bookkeeping;
// Progress updates themselves are atomic.
type progressSet struct {
	mu       sync.Mutex
	nextID   int64
	active   []*Progress
	finished []*Progress
}

// nowNS is the registry's monotonic progress clock.
func (r *Registry) nowNS() int64 { return time.Since(r.epoch).Nanoseconds() }

// StartProgress registers a new in-flight run with the predicted total
// point count and returns its estimator. The caller must call Finish when
// the run ends, whatever the outcome.
func (r *Registry) StartProgress(label string, totalPoints int64) *Progress {
	p := &Progress{label: label, total: totalPoints, reg: r, startNS: r.nowNS()}
	s := &r.prog
	s.mu.Lock()
	s.nextID++
	p.id = s.nextID
	// Sweep previously finished runs into the bounded history first so the
	// active list holds only live runs plus the most recently finished.
	live := s.active[:0]
	for _, q := range s.active {
		if q.Finished() {
			s.finished = append(s.finished, q)
		} else {
			live = append(live, q)
		}
	}
	s.active = append(live, p)
	if n := len(s.finished); n > keepFinished {
		s.finished = append(s.finished[:0], s.finished[n-keepFinished:]...)
	}
	s.mu.Unlock()
	return p
}

// ProgressSnapshot returns the current runs (finished ones included until
// they age out of the history), newest first.
func (r *Registry) ProgressSnapshot() []ProgressStat {
	s := &r.prog
	s.mu.Lock()
	all := make([]*Progress, 0, len(s.active)+len(s.finished))
	all = append(all, s.active...)
	all = append(all, s.finished...)
	s.mu.Unlock()
	out := make([]ProgressStat, 0, len(all))
	for _, p := range all {
		out = append(out, p.stat())
	}
	// Newest first: ids are assigned in start order.
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// latest returns the most recently started run, preferring an unfinished
// one; nil when no run was ever tracked.
func (s *progressSet) latest() *Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	var last *Progress
	for _, p := range s.active {
		if !p.Finished() {
			last = p // active list is in start order; keep the newest
		}
	}
	if last != nil {
		return last
	}
	if n := len(s.active); n > 0 {
		return s.active[n-1]
	}
	if n := len(s.finished); n > 0 {
		return s.finished[n-1]
	}
	return nil
}

// writePrometheus contributes the latest run's progress gauges to the
// /metrics exposition.
func (s *progressSet) writePrometheus(bw *bufio.Writer) {
	p := s.latest()
	if p == nil {
		return
	}
	st := p.stat()
	fmt.Fprintf(bw, "# HELP pochoir_progress_percent Completion estimate of the most recent run (monotone per run).\n")
	fmt.Fprintf(bw, "# TYPE pochoir_progress_percent gauge\n")
	fmt.Fprintf(bw, "pochoir_progress_percent %s\n", formatFloat(st.Percent))
	fmt.Fprintf(bw, "# HELP pochoir_progress_points_done Space-time points executed by the most recent run (redone segments included).\n")
	fmt.Fprintf(bw, "# TYPE pochoir_progress_points_done gauge\n")
	fmt.Fprintf(bw, "pochoir_progress_points_done %d\n", st.PointsDone)
	fmt.Fprintf(bw, "# HELP pochoir_progress_points_total Predicted total points of the most recent run.\n")
	fmt.Fprintf(bw, "# TYPE pochoir_progress_points_total gauge\n")
	fmt.Fprintf(bw, "pochoir_progress_points_total %d\n", st.PointsTotal)
	fmt.Fprintf(bw, "# HELP pochoir_progress_eta_seconds Estimated seconds to completion of the most recent run.\n")
	fmt.Fprintf(bw, "# TYPE pochoir_progress_eta_seconds gauge\n")
	fmt.Fprintf(bw, "pochoir_progress_eta_seconds %s\n", formatFloat(st.ETASeconds))
	active := 0.0
	if st.Active {
		active = 1
	}
	fmt.Fprintf(bw, "# HELP pochoir_progress_active Whether the most recent run is still in flight.\n")
	fmt.Fprintf(bw, "# TYPE pochoir_progress_active gauge\n")
	fmt.Fprintf(bw, "pochoir_progress_active %s\n", formatFloat(active))
}

// WriteProgressz writes the /progressz JSON document.
func (r *Registry) WriteProgressz(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Runs []ProgressStat `json:"runs"`
	}{Runs: r.ProgressSnapshot()})
}
