package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"

	"pochoir/internal/flight"
)

// This file is the SLO burn-rate engine: declarative objectives ("99% of
// jobs complete under 500ms", "99.9% of requests are non-5xx") evaluated
// over multi-window burn rates from the registry's own histograms and
// counters, in the style of the SRE-workbook multi-window multi-burn-rate
// alerts.
//
// The burn rate of an objective over a window W is
//
//	burn(W) = (bad events in W / total events in W) / (1 - target)
//
// i.e. how many times faster than "exactly on budget" the error budget is
// being spent. burn == 1 consumes the budget exactly at the objective's
// rate; burn == 14.4 over 5 minutes spends 2% of a 30-day budget in one
// hour. The engine samples each objective's cumulative good/total counters
// on a fixed interval into a ring, differences the ring against now to get
// windowed rates, and raises:
//
//   - a fast-burn breach when BOTH fast windows (default 5m and 1h) burn at
//     ≥ FastBurn (default 14.4) — the page-worthy "budget is vanishing now"
//     signal; the short window makes it responsive, the long window
//     debounces blips;
//   - a slow-burn breach when the slow window (default 6h) burns at ≥
//     SlowBurn (default 6) — the ticket-worthy signal.
//
// Breach transitions stamp EvSLO events into the flight recorder, so a
// post-mortem bundle shows when the budget started burning relative to the
// faults that caused it; current burn rates and breach states are also
// published as pochoir_slo_* metrics and served as JSON at /slo.

// Objective is one declarative SLO: Target is the good fraction promised
// (0 < Target < 1), and Good/Total read the cumulative event counts from
// the underlying instruments.
type Objective struct {
	Name   string
	Target float64
	Good   func() int64
	Total  func() int64
}

// LatencyObjective declares "target fraction of observations complete
// within maxValue" over a histogram (for pochoir histograms, milliseconds).
// The histogram's power-of-two bucket bounds quantize the threshold: the
// effective bound is the smallest bucket bound >= maxValue (e.g. 500ms
// reads the le="512" bucket), which the returned objective's Name should
// make peace with.
func LatencyObjective(name string, h *Histogram, maxValue int64, target float64) Objective {
	return Objective{
		Name:   name,
		Target: target,
		Good: func() int64 {
			bounds, counts := h.Buckets()
			var cum int64
			for i, b := range bounds {
				cum += counts[i]
				if b >= maxValue {
					break
				}
			}
			return cum
		},
		Total: func() int64 { return h.Count() },
	}
}

// RatioObjective declares "target fraction of total events are good" over
// two cumulative readers (typically counter Values).
func RatioObjective(name string, target float64, good, total func() int64) Objective {
	return Objective{Name: name, Target: target, Good: good, Total: total}
}

// SLOConfig tunes the engine. The zero value gets workbook defaults.
type SLOConfig struct {
	// FastWindows are the two windows that must burn together for a
	// fast-burn breach. Default 5m and 1h.
	FastWindows [2]time.Duration
	// SlowWindow is the long ticket-severity window. Default 6h.
	SlowWindow time.Duration
	// FastBurn and SlowBurn are the breach thresholds. Default 14.4 / 6.
	FastBurn float64
	SlowBurn float64
	// Interval is the sampling period. Default 10s. The ring holds
	// SlowWindow/Interval samples, so a smaller interval buys resolution
	// for memory.
	Interval time.Duration
	// Flight, when non-nil, receives EvSLO events on breach transitions.
	Flight *flight.Recorder
	// Now overrides the clock for tests.
	Now func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.FastWindows[0] <= 0 {
		c.FastWindows[0] = 5 * time.Minute
	}
	if c.FastWindows[1] <= 0 {
		c.FastWindows[1] = time.Hour
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 6 * time.Hour
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 14.4
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 6
	}
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Severity of an objective's current state.
const (
	SLOHealthy  = 0
	SLOSlowBurn = 1
	SLOFastBurn = 2
)

// sloSample is one ring entry: cumulative counts at a sampling instant.
type sloSample struct {
	t           time.Time
	good, total int64
}

// sloState is one objective plus its ring and published instruments.
type sloState struct {
	obj  Objective
	ring []sloSample // chronological, capacity slowWindow/interval

	severity  int
	burnFastA *Gauge // burn over FastWindows[0]
	burnFastB *Gauge
	burnSlow  *Gauge
	ratio     *Gauge
	breach    *Gauge
}

// SLOWindowStatus is one window's JSON view.
type SLOWindowStatus struct {
	Window  string  `json:"window"`
	Burn    float64 `json:"burn_rate"`
	Breach  bool    `json:"breach"`
	IsSlow  bool    `json:"slow_window"`
	GoodInW int64   `json:"good"`
	TotalW  int64   `json:"total"`
}

// SLOStatus is one objective's JSON view at /slo.
type SLOStatus struct {
	Name      string            `json:"name"`
	Target    float64           `json:"target"`
	Severity  string            `json:"severity"`
	GoodRatio float64           `json:"good_ratio"`
	Good      int64             `json:"good_total"`
	Total     int64             `json:"total"`
	Windows   []SLOWindowStatus `json:"windows"`
}

// SLOEngine evaluates objectives against the clock. Create with NewSLO,
// register objectives, then either Start a background evaluator or drive
// Evaluate manually (tests use a fake clock).
type SLOEngine struct {
	cfg SLOConfig
	reg *Registry

	mu     sync.Mutex
	states []*sloState

	breaches *Counter
	stop     chan struct{}
	done     chan struct{}
}

// NewSLO creates an engine publishing its instruments into r.
func NewSLO(r *Registry, cfg SLOConfig) *SLOEngine {
	cfg = cfg.withDefaults()
	return &SLOEngine{
		cfg: cfg,
		reg: r,
		breaches: r.Counter("pochoir_slo_breaches_total",
			"SLO breach transitions (healthy -> burning) across all objectives."),
	}
}

// Add registers an objective. The ring is sized to cover the slow window
// at the configured interval.
func (e *SLOEngine) Add(obj Objective) {
	if e == nil {
		return
	}
	ringCap := int(e.cfg.SlowWindow/e.cfg.Interval) + 2
	lbl := Label{Key: "objective", Value: obj.Name}
	st := &sloState{
		obj:  obj,
		ring: make([]sloSample, 0, ringCap),
		burnFastA: e.reg.Gauge("pochoir_slo_burn_rate",
			"Error-budget burn rate per objective and window.",
			lbl, Label{Key: "window", Value: e.cfg.FastWindows[0].String()}),
		burnFastB: e.reg.Gauge("pochoir_slo_burn_rate", "",
			lbl, Label{Key: "window", Value: e.cfg.FastWindows[1].String()}),
		burnSlow: e.reg.Gauge("pochoir_slo_burn_rate", "",
			lbl, Label{Key: "window", Value: e.cfg.SlowWindow.String()}),
		ratio: e.reg.Gauge("pochoir_slo_good_ratio",
			"All-time good/total ratio per objective.", lbl),
		breach: e.reg.Gauge("pochoir_slo_breach",
			"Breach severity per objective: 0 healthy, 1 slow burn, 2 fast burn.", lbl),
	}
	e.mu.Lock()
	e.states = append(e.states, st)
	e.mu.Unlock()
}

// Evaluate takes one sample of every objective and updates burn rates,
// severities, gauges, and the flight recorder. Start calls it on the
// configured interval; tests call it directly under a fake clock.
func (e *SLOEngine) Evaluate() {
	if e == nil {
		return
	}
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	for idx, st := range e.states {
		good, total := st.obj.Good(), st.obj.Total()
		st.push(sloSample{t: now, good: good, total: total})

		bFastA := st.burnAt(now, e.cfg.FastWindows[0], st.obj.Target)
		bFastB := st.burnAt(now, e.cfg.FastWindows[1], st.obj.Target)
		bSlow := st.burnAt(now, e.cfg.SlowWindow, st.obj.Target)
		st.burnFastA.Set(bFastA)
		st.burnFastB.Set(bFastB)
		st.burnSlow.Set(bSlow)
		if total > 0 {
			st.ratio.Set(float64(good) / float64(total))
		} else {
			st.ratio.Set(1)
		}

		severity := SLOHealthy
		if bSlow >= e.cfg.SlowBurn {
			severity = SLOSlowBurn
		}
		if bFastA >= e.cfg.FastBurn && bFastB >= e.cfg.FastBurn {
			severity = SLOFastBurn
		}
		if severity != st.severity {
			burn := bSlow
			if severity == SLOFastBurn {
				burn = bFastA
			}
			if severity > SLOHealthy && st.severity == SLOHealthy {
				e.breaches.Inc()
			}
			e.cfg.Flight.Record(flight.EvSLO, int64(severity), int64(idx),
				int64(math.Min(burn, math.MaxInt64/2000)*1000))
			st.severity = severity
		}
		st.breach.Set(float64(st.severity))
	}
}

// push appends a sample, dropping the oldest once the ring covers the slow
// window.
func (st *sloState) push(s sloSample) {
	if len(st.ring) == cap(st.ring) {
		copy(st.ring, st.ring[1:])
		st.ring[len(st.ring)-1] = s
		return
	}
	st.ring = append(st.ring, s)
}

// sampleAt returns the newest sample at or before t (the window's far
// edge), or the oldest available when history is shorter than the window.
func (st *sloState) sampleAt(t time.Time) sloSample {
	best := st.ring[0]
	for _, s := range st.ring {
		if s.t.After(t) {
			break
		}
		best = s
	}
	return best
}

// burnAt computes the burn rate over the window ending now. No traffic in
// the window burns nothing.
func (st *sloState) burnAt(now time.Time, window time.Duration, target float64) float64 {
	if len(st.ring) == 0 {
		return 0
	}
	cur := st.ring[len(st.ring)-1]
	then := st.sampleAt(now.Add(-window))
	total := cur.total - then.total
	if total <= 0 {
		return 0
	}
	bad := (cur.total - cur.good) - (then.total - then.good)
	errRate := float64(bad) / float64(total)
	return errRate / (1 - target)
}

// Start launches the periodic evaluator; Close stops it.
func (e *SLOEngine) Start() {
	if e == nil || e.stop != nil {
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go func() {
		defer close(e.done)
		tick := time.NewTicker(e.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				e.Evaluate()
			case <-e.stop:
				return
			}
		}
	}()
}

// Close stops the evaluator started by Start. Idempotent.
func (e *SLOEngine) Close() {
	if e == nil || e.stop == nil {
		return
	}
	select {
	case <-e.stop:
	default:
		close(e.stop)
		<-e.done
	}
}

// Status returns every objective's current view (most recent Evaluate).
func (e *SLOEngine) Status() []SLOStatus {
	if e == nil {
		return nil
	}
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, 0, len(e.states))
	for _, st := range e.states {
		s := SLOStatus{Name: st.obj.Name, Target: st.obj.Target, GoodRatio: 1}
		switch st.severity {
		case SLOFastBurn:
			s.Severity = "fast-burn"
		case SLOSlowBurn:
			s.Severity = "slow-burn"
		default:
			s.Severity = "healthy"
		}
		if len(st.ring) > 0 {
			cur := st.ring[len(st.ring)-1]
			s.Good, s.Total = cur.good, cur.total
			if cur.total > 0 {
				s.GoodRatio = float64(cur.good) / float64(cur.total)
			}
		}
		for i, w := range []time.Duration{e.cfg.FastWindows[0], e.cfg.FastWindows[1], e.cfg.SlowWindow} {
			slow := i == 2
			burn := st.burnAt(now, w, st.obj.Target)
			thresh := e.cfg.FastBurn
			if slow {
				thresh = e.cfg.SlowBurn
			}
			cur := sloSample{}
			then := sloSample{}
			if len(st.ring) > 0 {
				cur = st.ring[len(st.ring)-1]
				then = st.sampleAt(now.Add(-w))
			}
			s.Windows = append(s.Windows, SLOWindowStatus{
				Window: w.String(), Burn: burn, Breach: burn >= thresh, IsSlow: slow,
				GoodInW: cur.good - then.good, TotalW: cur.total - then.total,
			})
		}
		out = append(out, s)
	}
	return out
}

// WriteSLO writes the /slo JSON body: every objective with its windows.
func (e *SLOEngine) WriteSLO(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Schema     string      `json:"schema"`
		Objectives []SLOStatus `json:"objectives"`
	}{Schema: "pochoir-slo/v1", Objectives: e.Status()})
}
