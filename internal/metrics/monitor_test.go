package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMonitorPortZero: serving on :0 binds an ephemeral port and Addr
// reports one that actually answers requests.
func TestMonitorPortZero(t *testing.T) {
	r := NewRegistry()
	r.StartProgress("probe", 100).Finish(true)
	m, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if strings.HasSuffix(m.Addr(), ":0") {
		t.Fatalf("Addr %q still reports port 0", m.Addr())
	}
	resp, err := http.Get(m.URL() + "/metrics")
	if err != nil {
		t.Fatalf("monitor not reachable at %s: %v", m.Addr(), err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "pochoir_") {
		t.Fatalf("exposition has no pochoir metrics:\n%s", body)
	}
}

// TestMonitorCloseIdempotent: Close can be called repeatedly without
// panicking or reporting an error, and the port is released.
func TestMonitorCloseIdempotent(t *testing.T) {
	r := NewRegistry()
	m, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	addr := m.Addr()
	if err := m.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := m.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+2, err)
		}
	}
	// The address must be rebindable once closed.
	m2, err := Serve(addr, r)
	if err != nil {
		t.Fatalf("port %s not released after Close: %v", addr, err)
	}
	m2.Close()
}

// The monitor's server must carry full timeout coverage — a slow client
// must not be able to pin a handler goroutine forever — and the shared
// HardenedServer constructor is where every serving surface gets it.
func TestMonitorServerHardened(t *testing.T) {
	r := NewRegistry()
	m, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := m.srv
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset")
	}
	if srv.WriteTimeout <= 0 {
		t.Error("WriteTimeout unset")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset")
	}
}
