// Package metrics is the live-observability substrate: a Prometheus-style
// registry of counters, gauges, and histograms that instrumented runs update
// lock-free while an embedded monitor server (see monitor.go) scrapes them.
//
// It complements internal/telemetry, which records every decomposition
// decision into goroutine-private shards but may only be aggregated while
// the run is quiescent. Metrics invert that trade: far fewer instruments
// (a handful of counters per layer), but every one readable at any moment —
// mid-run, from another goroutine, over HTTP — which is what a long-running
// service needs.
//
// Concurrency design:
//
//   - Counters are striped: each holds a small power-of-two array of
//     cache-line-padded atomic cells, and an increment picks its cell from
//     the address of a stack variable, so concurrent workers (whose stacks
//     occupy disjoint address ranges) land on different cells without any
//     registration, locks, or per-goroutine state. Reads sum the cells.
//
//   - Gauges are a single float64-bits atomic (set/add/max via CAS).
//
//   - Histograms have fixed log-scale (power-of-two) buckets, one atomic
//     cell per bucket; the bucket index is a bit-length computation.
//
//   - The registry lock covers only registration and enumeration (scrapes),
//     never the instrument hot paths.
//
// Like telemetry, arming is strictly opt-in: engines carry nil instrument
// sets by default and every instrumentation point is guarded by a single
// pointer check, so disarmed runs execute the unmodified hot path.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Kind classifies a registered metric for exposition.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one constant key/value pair attached to a metric at registration
// (e.g. engine="TRAP"). Labels distinguish metrics within a family; they are
// fixed for the metric's lifetime.
type Label struct {
	Key, Value string
}

// Desc identifies a metric: family name, help text, and its constant labels
// (sorted by key at registration).
type Desc struct {
	Name   string
	Help   string
	Labels []Label
	kind   Kind
}

// Kind returns the metric kind.
func (d *Desc) Kind() Kind { return d.kind }

// labelString renders the {k="v",...} sample suffix, empty for no labels.
func (d *Desc) labelString() string {
	if len(d.Labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range d.Labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// metric is the common interface of registered instruments.
type metric interface {
	describe() *Desc
}

// numStripes is the per-counter cell count: enough to spread GOMAXPROCS
// incrementers, bounded so a registry of dozens of counters stays small.
func numStripes() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n > 64 {
		n = 64
	}
	return n
}

// stripe is one padded counter cell; the padding keeps cells on distinct
// cache lines so concurrent incrementers do not false-share.
type stripe struct {
	n atomic.Int64
	_ [120]byte
}

// stripeIndex derives a cell index from the address of a stack variable.
// Goroutine stacks occupy disjoint address ranges, so concurrent
// incrementers spread across cells with no registration and no shared
// state; the Fibonacci multiplier mixes the high bits so nearby stacks land
// apart. Any distribution is correct — Value sums every cell — this only
// affects contention.
func stripeIndex() uint32 {
	var b byte
	return uint32((uint64(uintptr(unsafe.Pointer(&b))) >> 6) * 0x9e3779b97f4a7c15 >> 32)
}

// Counter is a monotonically increasing striped atomic counter.
type Counter struct {
	desc    *Desc
	mask    uint32
	stripes []stripe
}

func newCounter(d *Desc) *Counter {
	n := numStripes()
	return &Counter{desc: d, mask: uint32(n - 1), stripes: make([]stripe, n)}
}

func (c *Counter) describe() *Desc { return c.desc }

// Add increments the counter by n (n must be >= 0 for Prometheus semantics;
// this is not checked on the hot path).
func (c *Counter) Add(n int64) {
	c.stripes[stripeIndex()&c.mask].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total. It is safe to call concurrently with
// increments; the result is the sum of a consistent-enough snapshot of the
// cells (each cell read is atomic).
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}

// Gauge is a float64-valued instrument that can go up and down.
type Gauge struct {
	desc *Desc
	bits atomic.Uint64
}

func newGauge(d *Desc) *Gauge { return &Gauge{desc: d} }

func (g *Gauge) describe() *Desc { return g.desc }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge (CAS loop; gauges are updated at coarse
// boundaries — goroutine spawns, segment ends — never per point).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc and Dec adjust the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Exemplar ties a histogram bucket to a recent observation's trace: "a
// request that landed here looked like this". Exposed on _bucket lines in
// the OpenMetrics-style `# {trace_id="..."} value ts` suffix, it is the
// bridge from an aggregate ("p99 is 800ms") to a concrete /tracez entry
// answering why.
type Exemplar struct {
	TraceID string
	Value   int64
	UnixNS  int64
}

// Histogram is a fixed log-scale histogram: bucket i counts observations v
// with v <= 2^i, plus one overflow bucket (+Inf). Observations are a single
// atomic add on the bucket (contention spreads across buckets naturally)
// plus atomic adds on the running sum and count. Each bucket additionally
// holds an optional exemplar pointer — last-writer-wins, one atomic store,
// no coordination — so traced observations leave a resolvable breadcrumb at
// near-zero cost and untraced observations pay only the nil they ignore.
type Histogram struct {
	desc      *Desc
	bounds    []int64        // upper bounds 2^0 .. 2^(n-1)
	counts    []atomic.Int64 // len(bounds)+1; last is +Inf
	exemplars []atomic.Pointer[Exemplar]
	sum       atomic.Int64
	count     atomic.Int64
}

func newHistogram(d *Desc, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	if buckets > 62 {
		buckets = 62
	}
	h := &Histogram{
		desc:      d,
		bounds:    make([]int64, buckets),
		counts:    make([]atomic.Int64, buckets+1),
		exemplars: make([]atomic.Pointer[Exemplar], buckets+1),
	}
	for i := range h.bounds {
		h.bounds[i] = 1 << i
	}
	return h
}

func (h *Histogram) describe() *Desc { return h.desc }

// bucketIndex returns the bucket v lands in: the smallest i with v <= 2^i
// (the bit length of v-1), clamped to +Inf.
func (h *Histogram) bucketIndex(v int64) int {
	idx := 0
	if v > 1 {
		idx = bits.Len64(uint64(v - 1))
	}
	if idx >= len(h.bounds) {
		idx = len(h.bounds)
	}
	return idx
}

// Observe records one observation of v. Values below 1 land in the first
// bucket; values above the last bound land in +Inf.
func (h *Histogram) Observe(v int64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveExemplar records v like Observe and, when traceID is non-empty,
// stamps the landing bucket's exemplar with the trace that produced it.
func (h *Histogram) ObserveExemplar(v int64, traceID string, unixNS int64) {
	idx := h.bucketIndex(v)
	h.counts[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[idx].Store(&Exemplar{TraceID: traceID, Value: v, UnixNS: unixNS})
	}
}

// Exemplars returns the current per-bucket exemplars (nil where no traced
// observation has landed), aligned with Buckets' counts.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Count and Sum return the total observations and their sum.
func (h *Histogram) Count() int64 { return h.count.Load() }
func (h *Histogram) Sum() int64   { return h.sum.Load() }

// Buckets returns the upper bounds and per-bucket (non-cumulative) counts;
// the final count (one past the last bound) is the +Inf overflow bucket.
func (h *Histogram) Buckets() (bounds []int64, counts []int64) {
	bounds = append([]int64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// family groups the metrics sharing one name (differing only in labels) for
// exposition: one HELP/TYPE block, then one sample set per member.
type family struct {
	name    string
	help    string
	kind    Kind
	members []metric
}

// Registry holds named metrics and the run-progress set. Registration and
// enumeration take the registry lock; instrument updates never do.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	metrics  map[string]metric
	families map[string]*family
	epoch    time.Time

	prog progressSet
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics:  make(map[string]metric),
		families: make(map[string]*family),
		epoch:    time.Now(),
	}
}

// metricKey is the dedup key: family name plus the sorted label string.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte(0)
		sb.WriteString(l.Key)
		sb.WriteByte(0)
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// newDesc validates and normalizes a metric identity. Invalid names and
// label keys panic: they are programming errors, caught by the first run of
// any instrumented path.
func newDesc(name, help string, kind Kind, labels []Label) *Desc {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for _, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label key %q on %q", l.Key, name))
		}
	}
	return &Desc{Name: name, Help: help, Labels: ls, kind: kind}
}

// register returns the existing metric under the same name+labels (checking
// the kind matches) or stores and returns make().
func (r *Registry) register(name, help string, kind Kind, labels []Label, make func(*Desc) metric) metric {
	d := newDesc(name, help, kind, labels)
	key := metricKey(d.Name, d.Labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.describe().kind != kind {
			panic(fmt.Sprintf("metrics: %s already registered as a %s, requested as %s",
				name, m.describe().kind, kind))
		}
		return m
	}
	m := make(d)
	r.metrics[key] = m
	f, ok := r.families[d.Name]
	if !ok {
		f = &family{name: d.Name, help: d.Help, kind: kind}
		r.families[d.Name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: family %s holds %s metrics, requested %s", name, f.kind, kind))
	}
	f.members = append(f.members, m)
	return m
}

// Counter returns the counter registered under name and labels, creating it
// on first use. Repeated registration with the same identity returns the
// same instrument, so instrument sets may be resolved once per run.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, KindCounter, labels, func(d *Desc) metric { return newCounter(d) }).(*Counter)
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, KindGauge, labels, func(d *Desc) metric { return newGauge(d) }).(*Gauge)
}

// Histogram returns the log-scale histogram registered under name and
// labels, creating it with the given bucket count (upper bounds 2^0 ..
// 2^(buckets-1), plus +Inf) on first use. The bucket count of an existing
// histogram is not changed.
func (r *Registry) Histogram(name, help string, buckets int, labels ...Label) *Histogram {
	return r.register(name, help, KindHistogram, labels, func(d *Desc) metric { return newHistogram(d, buckets) }).(*Histogram)
}

// Uptime reports the time since the registry was created.
func (r *Registry) Uptime() time.Duration { return time.Since(r.epoch) }

// snapshotFamilies returns the families sorted by name, each with members
// sorted by label string — the deterministic enumeration order used by both
// exposition formats.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		members := append([]metric(nil), f.members...)
		sort.Slice(members, func(i, j int) bool {
			return members[i].describe().labelString() < members[j].describe().labelString()
		})
		out = append(out, &family{name: f.name, help: f.help, kind: f.kind, members: members})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// validName reports whether s is a legal Prometheus metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(c)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
