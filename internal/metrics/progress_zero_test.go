package metrics

import (
	"math"
	"testing"
)

// TestProgressZeroTotal: a run predicted at zero points (zero steps, or a
// zero-volume grid) must never divide by the total — percent stays 0 while
// running, ETA stays 0, and a successful Finish reads exactly 100.
func TestProgressZeroTotal(t *testing.T) {
	r := NewRegistry()
	p := r.StartProgress("empty", 0)
	if got := p.Percent(); got != 0 {
		t.Fatalf("running zero-total percent %f, want 0", got)
	}
	if got := p.ETA(); got != 0 {
		t.Fatalf("running zero-total ETA %v, want 0", got)
	}
	st := p.stat()
	if math.IsNaN(st.Percent) || math.IsNaN(st.ETASeconds) || math.IsNaN(st.RateMpts) {
		t.Fatalf("zero-total stat has NaN: %+v", st)
	}
	p.Finish(true)
	if got := p.Percent(); got != 100 {
		t.Fatalf("finished zero-total percent %f, want 100", got)
	}
	st = p.stat()
	if st.Percent != 100 || !st.OK || st.Active {
		t.Fatalf("finished zero-total stat wrong: %+v", st)
	}
}

// TestProgressZeroTotalFailed: a failed zero-total run stays at 0, not 100.
func TestProgressZeroTotalFailed(t *testing.T) {
	r := NewRegistry()
	p := r.StartProgress("empty-fail", 0)
	p.Finish(false)
	if got := p.Percent(); got != 0 {
		t.Fatalf("failed zero-total percent %f, want 0", got)
	}
	if st := p.stat(); st.OK || st.Active || math.IsNaN(st.Percent) {
		t.Fatalf("failed zero-total stat wrong: %+v", st)
	}
}

// TestProgressNoWork: a run with a total but no recorded points yet has no
// rate to extrapolate — ETA and rate must be 0, never NaN or negative.
func TestProgressNoWork(t *testing.T) {
	r := NewRegistry()
	p := r.StartProgress("idle", 1000)
	if got := p.ETA(); got != 0 {
		t.Fatalf("no-work ETA %v, want 0", got)
	}
	st := p.stat()
	if st.Percent != 0 || math.IsNaN(st.RateMpts) || st.RateMpts < 0 {
		t.Fatalf("no-work stat wrong: %+v", st)
	}
	// Overshoot (redone segments) clamps at 100 while running.
	p.Add(2000)
	if got := p.Percent(); got != 100 {
		t.Fatalf("overshoot percent %f, want clamp at 100", got)
	}
	if got := p.ETA(); got != 0 {
		t.Fatalf("overshoot ETA %v, want 0", got)
	}
	p.Finish(true)
	if got := p.Percent(); got != 100 {
		t.Fatalf("finished percent %f, want 100", got)
	}
}
