package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pochoir/internal/flight"
)

// sloHarness drives an engine with a fake clock and a synthetic workload.
type sloHarness struct {
	reg  *Registry
	eng  *SLOEngine
	rec  *flight.Recorder
	now  time.Time
	hist *Histogram
}

func newSLOHarness(t *testing.T) *sloHarness {
	t.Helper()
	h := &sloHarness{
		reg: NewRegistry(),
		rec: flight.New(1024),
		now: time.Unix(1_700_000_000, 0),
	}
	h.hist = h.reg.Histogram("job_latency_ms", "test latency", 24)
	h.eng = NewSLO(h.reg, SLOConfig{
		FastWindows: [2]time.Duration{5 * time.Minute, time.Hour},
		SlowWindow:  6 * time.Hour,
		Interval:    10 * time.Second,
		Flight:      h.rec,
		Now:         func() time.Time { return h.now },
	})
	h.eng.Add(LatencyObjective("latency-500ms", h.hist, 500, 0.99))
	return h
}

// tick advances the fake clock one interval, records traffic, evaluates.
func (h *sloHarness) tick(fast, slow int) {
	h.now = h.now.Add(10 * time.Second)
	for i := 0; i < fast; i++ {
		h.hist.Observe(20)
	}
	for i := 0; i < slow; i++ {
		h.hist.Observe(5000)
	}
	h.eng.Evaluate()
}

func (h *sloHarness) severity() string { return h.eng.Status()[0].Severity }

// TestSLOFastBurnBreachAndRecovery pushes an objective through healthy ->
// fast-burn -> healthy and checks gauges, flight events, and /slo JSON.
func TestSLOFastBurnBreachAndRecovery(t *testing.T) {
	h := newSLOHarness(t)

	// Two minutes of clean traffic: no burn.
	for i := 0; i < 12; i++ {
		h.tick(50, 0)
	}
	if got := h.severity(); got != "healthy" {
		t.Fatalf("clean traffic severity = %q", got)
	}

	// A fault window: half the jobs blow the 500ms budget. Over the 5m
	// window (which still holds the clean preamble) that is a 25% error
	// rate — burn 25 against a 1% budget, past the 14.4 threshold on both
	// fast windows since history is short enough that the 1h window sees
	// the same spike.
	for i := 0; i < 12; i++ {
		h.tick(25, 25)
	}
	if got := h.severity(); got != "fast-burn" {
		t.Fatalf("fault window severity = %q, want fast-burn", got)
	}
	if v := h.reg.Gauge("pochoir_slo_breach", "", Label{Key: "objective", Value: "latency-500ms"}).Value(); v != 2 {
		t.Fatalf("pochoir_slo_breach gauge = %v, want 2", v)
	}

	// Recovery: clean traffic until the 5m window slides past the fault.
	for i := 0; i < 40; i++ {
		h.tick(100, 0)
	}
	if got := h.severity(); got == "fast-burn" {
		t.Fatalf("severity stuck at fast-burn after recovery")
	}

	var breach, recover bool
	for _, ev := range h.rec.Snapshot() {
		if ev.Kind != flight.EvSLO {
			continue
		}
		switch ev.A0 {
		case 2:
			breach = true
			if ev.A2 < 1000 {
				t.Fatalf("breach event burn=%d, want >= 1.0 in thousandths", ev.A2)
			}
			if !strings.Contains(ev.Describe(), "fast-burn breach") {
				t.Fatalf("Describe = %q", ev.Describe())
			}
		case 0:
			recover = true
		}
	}
	if !breach {
		t.Fatal("no EvSLO breach event recorded")
	}
	if !recover {
		t.Fatal("no EvSLO recovery event recorded")
	}

	var slo bytes.Buffer
	if err := h.eng.WriteSLO(&slo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"pochoir-slo/v1"`, `"latency-500ms"`, `"5m0s"`, `"6h0m0s"`} {
		if !strings.Contains(slo.String(), want) {
			t.Fatalf("/slo body missing %q:\n%s", want, slo.String())
		}
	}

	var expo bytes.Buffer
	if err := h.reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pochoir_slo_burn_rate", "pochoir_slo_breach", "pochoir_slo_breaches_total 1"} {
		if !strings.Contains(expo.String(), want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
	if err := CheckExposition(expo.Bytes()); err != nil {
		t.Fatalf("SLO exposition invalid: %v", err)
	}
}

// TestSLOSlowBurnSeverity checks a moderate sustained error rate trips the
// slow window but not the fast threshold.
func TestSLOSlowBurnSeverity(t *testing.T) {
	h := newSLOHarness(t)
	// 8% bad sustains burn 8: above SlowBurn (6), below FastBurn (14.4).
	for i := 0; i < 60; i++ {
		h.tick(92, 8)
	}
	if got := h.severity(); got != "slow-burn" {
		t.Fatalf("severity = %q, want slow-burn", got)
	}
}

// TestSLONoTraffic checks an idle objective burns nothing.
func TestSLONoTraffic(t *testing.T) {
	h := newSLOHarness(t)
	for i := 0; i < 10; i++ {
		h.now = h.now.Add(10 * time.Second)
		h.eng.Evaluate()
	}
	st := h.eng.Status()[0]
	if st.Severity != "healthy" || st.GoodRatio != 1 {
		t.Fatalf("idle objective: %+v", st)
	}
	for _, w := range st.Windows {
		if w.Burn != 0 {
			t.Fatalf("idle burn %v in window %s", w.Burn, w.Window)
		}
	}
}

// TestRatioObjective checks the counter-backed form.
func TestRatioObjective(t *testing.T) {
	reg := NewRegistry()
	good := reg.Counter("ok_total", "")
	all := reg.Counter("req_total", "")
	eng := NewSLO(reg, SLOConfig{Now: time.Now, Interval: time.Second})
	eng.Add(RatioObjective("non-5xx", 0.999, good.Value, all.Value))
	for i := 0; i < 1000; i++ {
		all.Inc()
		if i%10 != 0 {
			good.Inc()
		}
	}
	eng.Evaluate()
	st := eng.Status()[0]
	if st.GoodRatio > 0.91 || st.GoodRatio < 0.89 {
		t.Fatalf("good ratio = %v, want ~0.9", st.GoodRatio)
	}
}

// TestLatencyObjectiveQuantization pins the power-of-two threshold
// behavior: a 500ms objective reads the le=512 bucket.
func TestLatencyObjectiveQuantization(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("lat", "", 24)
	obj := LatencyObjective("p", hist, 500, 0.99)
	hist.Observe(100) // le=128: good
	hist.Observe(510) // le=512: good under quantization
	hist.Observe(513) // le=1024: bad
	if g, tot := obj.Good(), obj.Total(); g != 2 || tot != 3 {
		t.Fatalf("good=%d total=%d, want 2/3", g, tot)
	}
}

// TestExemplarExposition checks traced observations surface as bucket
// exemplars and survive CheckExposition; untraced buckets stay bare.
func TestExemplarExposition(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("pochoir_gateway_job_latency_ms", "job latency", 24)
	hist.Observe(3)
	hist.ObserveExemplar(100, "4bf92f3577b34da6a3ce929d0e0e4736", 1_700_000_000_000_000_000)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `le="128"} 2 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 100 1700000000`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar %q:\n%s", want, out)
	}
	if strings.Contains(out, `le="4"} 1 #`) {
		t.Fatalf("untraced bucket grew an exemplar:\n%s", out)
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("exemplar exposition rejected: %v", err)
	}
	ex := hist.Exemplars()
	found := false
	for _, e := range ex {
		if e != nil && e.TraceID == "4bf92f3577b34da6a3ce929d0e0e4736" && e.Value == 100 {
			found = true
		}
	}
	if !found {
		t.Fatal("Exemplars() lost the stored exemplar")
	}

	if err := CheckExposition([]byte("# TYPE h histogram\nh_bucket{le=\"1\"} 1 # {trace_id=\"x\" 1\n")); err == nil {
		t.Fatal("CheckExposition accepted malformed exemplar")
	}
}
