// Package shape implements Pochoir stencil shapes (§2 of the paper): the set
// of space-time offsets a kernel's memory footprint occupies relative to the
// home cell, together with the derived quantities the algorithm needs —
// depth, per-dimension slopes, and per-dimension spatial reach.
package shape

import (
	"fmt"
	"sort"
)

// Cell is one entry of a stencil shape: a time offset followed by one
// spatial offset per dimension, relative to the space-time point being
// updated (the home cell's coordinates).
type Cell struct {
	DT int
	DX []int
}

// Shape describes the memory footprint of a stencil kernel. The first cell
// is the home cell: its spatial coordinates must all be zero, and it names
// the point being written. All other cells must have strictly smaller time
// offsets and are read-only during the computation.
type Shape struct {
	NDims int
	Cells []Cell

	depth  int
	slopes []int
	reach  []int
}

// New validates the given cells (each of length ndims+1, time offset first)
// and returns the Shape. It enforces the §2 rules: the home cell comes
// first with all-zero spatial coordinates, and every other cell has a time
// offset strictly less than the home cell's.
func New(ndims int, cells [][]int) (*Shape, error) {
	if ndims < 1 {
		return nil, fmt.Errorf("shape: need at least 1 spatial dimension, got %d", ndims)
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("shape: empty cell list")
	}
	s := &Shape{NDims: ndims}
	for ci, c := range cells {
		if len(c) != ndims+1 {
			return nil, fmt.Errorf("shape: cell %d has %d entries, want %d (time offset + %d spatial offsets)",
				ci, len(c), ndims+1, ndims)
		}
		dx := make([]int, ndims)
		copy(dx, c[1:])
		s.Cells = append(s.Cells, Cell{DT: c[0], DX: dx})
	}
	home := s.Cells[0]
	for i, v := range home.DX {
		if v != 0 {
			return nil, fmt.Errorf("shape: home cell spatial coordinate %d is %d, must be 0", i, v)
		}
	}
	minDT := home.DT
	for ci, c := range s.Cells[1:] {
		if c.DT >= home.DT {
			return nil, fmt.Errorf("shape: cell %d has time offset %d >= home cell's %d; reads must be at earlier times",
				ci+1, c.DT, home.DT)
		}
		if c.DT < minDT {
			minDT = c.DT
		}
	}
	s.depth = home.DT - minDT
	if s.depth == 0 {
		// A shape with only the home cell: degenerate but legal (a map
		// over the grid); give it depth 1 so a 2-slot time buffer works.
		s.depth = 1
	}
	s.slopes = make([]int, ndims)
	s.reach = make([]int, ndims)
	for _, c := range s.Cells[1:] {
		k := home.DT - c.DT // >= 1: how many steps back this cell reads
		for i, dx := range c.DX {
			a := dx
			if a < 0 {
				a = -a
			}
			// The paper defines slope_i = max over cells of
			// ceil(|dx_i| / k), which bounds how far a dependency can
			// cross a zoid's sloped side (containment). For stencils of
			// depth K > 1 a second constraint applies that the paper's
			// benchmarks all satisfy implicitly: the circular time
			// buffer holds only K+1 slots, so a zoid processed later
			// must read neighbor cells' values before the earlier zoid
			// has cycled them out, which requires
			// |dx_i| <= slope * (K - k + 1). We take the max of both
			// bounds; they coincide for k == 1 and k == K (where both
			// equal |dx_i|), so for every stencil in the paper this is
			// exactly the paper's definition.
			sl := (a + k - 1) / k
			if d := s.depth - k + 1; d >= 1 {
				if s2 := (a + d - 1) / d; s2 > sl {
					sl = s2
				}
			}
			if sl > s.slopes[i] {
				s.slopes[i] = sl
			}
			if a > s.reach[i] {
				s.reach[i] = a
			}
		}
	}
	return s, nil
}

// MustNew is New, panicking on error; for package-level shape literals.
func MustNew(ndims int, cells [][]int) *Shape {
	s, err := New(ndims, cells)
	if err != nil {
		panic(err)
	}
	return s
}

// Depth returns the number of earlier time steps a grid point depends on:
// the home cell's time offset minus the minimum time offset of any cell.
// A Pochoir array for this shape keeps Depth()+1 time slots, and the user
// must initialize time steps 0 .. Depth()-1 before running.
func (s *Shape) Depth() int { return s.depth }

// Slope returns the stencil slope sigma_i along spatial dimension i:
// max over cells of ceil(|dx_i| / (t_home - t_cell)).
func (s *Shape) Slope(i int) int { return s.slopes[i] }

// Slopes returns a copy of all per-dimension slopes.
func (s *Shape) Slopes() []int { return append([]int(nil), s.slopes...) }

// Reach returns the maximum absolute spatial offset along dimension i over
// all cells. Reach bounds how far off a zoid's footprint any access may
// land, and so governs the interior/boundary zoid classification; it can
// exceed Slope when the stencil depth is larger than one.
func (s *Shape) Reach(i int) int { return s.reach[i] }

// Reaches returns a copy of all per-dimension reaches.
func (s *Shape) Reaches() []int { return append([]int(nil), s.reach...) }

// HomeDT returns the time offset of the home cell (the write).
func (s *Shape) HomeDT() int { return s.Cells[0].DT }

// Contains reports whether the offset (dt, dx) appears in the shape. The
// Phase-1 template-library path uses this to enforce the Pochoir Guarantee:
// every access a kernel makes must fall within the declared shape.
func (s *Shape) Contains(dt int, dx []int) bool {
	for _, c := range s.Cells {
		if c.DT != dt {
			continue
		}
		match := true
		for i := range c.DX {
			if c.DX[i] != dx[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// String renders the shape in the paper's brace-list syntax, cells sorted
// for stable output.
func (s *Shape) String() string {
	cells := append([]Cell(nil), s.Cells...)
	sort.Slice(cells[1:], func(a, b int) bool {
		ca, cb := cells[a+1], cells[b+1]
		if ca.DT != cb.DT {
			return ca.DT < cb.DT
		}
		for i := range ca.DX {
			if ca.DX[i] != cb.DX[i] {
				return ca.DX[i] < cb.DX[i]
			}
		}
		return false
	})
	out := "{"
	for ci, c := range cells {
		if ci > 0 {
			out += ", "
		}
		out += fmt.Sprintf("{%d", c.DT)
		for _, v := range c.DX {
			out += fmt.Sprintf(",%d", v)
		}
		out += "}"
	}
	return out + "}"
}
