package shape

import "testing"

func heat2DCells() [][]int {
	return [][]int{{1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 1}}
}

func TestHeat2DShape(t *testing.T) {
	s, err := New(2, heat2DCells())
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", s.Depth())
	}
	if s.Slope(0) != 1 || s.Slope(1) != 1 {
		t.Fatalf("slopes = %v, want [1 1]", s.Slopes())
	}
	if s.Reach(0) != 1 || s.Reach(1) != 1 {
		t.Fatalf("reach = %v, want [1 1]", s.Reaches())
	}
	if s.HomeDT() != 1 {
		t.Fatalf("home dt = %d", s.HomeDT())
	}
}

func TestPaperNormalizedShape(t *testing.T) {
	// The §2 example written with home at t (reads at t-1).
	s, err := New(2, [][]int{{0, 0, 0}, {-1, 1, 0}, {-1, 0, 0}, {-1, -1, 0}, {-1, 0, 1}, {-1, 0, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 1 || s.HomeDT() != 0 {
		t.Fatalf("depth=%d homeDT=%d", s.Depth(), s.HomeDT())
	}
	if s.Slope(0) != 1 || s.Slope(1) != 1 {
		t.Fatalf("slopes = %v", s.Slopes())
	}
}

func TestDepth2Shape(t *testing.T) {
	// Wave-equation-like: u(t+1) reads u(t, x+-1) and u(t-1, x).
	s, err := New(1, [][]int{{1, 0}, {0, 0}, {0, 1}, {0, -1}, {-1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", s.Depth())
	}
	if s.Slope(0) != 1 {
		t.Fatalf("slope = %d, want 1", s.Slope(0))
	}
}

func TestSlopeCeiling(t *testing.T) {
	// An access 3 cells away at 2 steps back, depth 2. The paper's
	// containment bound alone gives ceil(3/2) = 2, but the circular time
	// buffer's freshness constraint (|dx| <= slope*(depth-k+1), here
	// 3 <= slope*1) forces slope 3 — see the comment in New. The engine
	// fuzz test fails with slope 2 on such shapes.
	s, err := New(1, [][]int{{1, 0}, {-1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Slope(0) != 3 {
		t.Fatalf("slope = %d, want 3", s.Slope(0))
	}
	if s.Reach(0) != 3 {
		t.Fatalf("reach = %d, want 3", s.Reach(0))
	}
	// A depth-3 shape where the intermediate cell genuinely benefits from
	// the ceil(|dx|/k) form: reads 2 away at k=2 with depth 3 allow
	// slope max(ceil(2/2), ceil(2/(3-2+1))) = 1.
	s3, err := New(1, [][]int{{1, 0}, {-1, 2}, {-2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Depth() != 3 {
		t.Fatalf("depth = %d", s3.Depth())
	}
	if s3.Slope(0) != 1 {
		t.Fatalf("depth-3 slope = %d, want 1", s3.Slope(0))
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		ndims int
		cells [][]int
	}{
		{"empty", 2, nil},
		{"zero dims", 0, [][]int{{1, 0}}},
		{"bad arity", 2, [][]int{{1, 0}}},
		{"nonzero home", 2, [][]int{{1, 1, 0}, {0, 0, 0}}},
		{"future read", 2, [][]int{{0, 0, 0}, {0, 1, 0}}},
		{"same-time read", 1, [][]int{{1, 0}, {1, 1}}},
	}
	for _, c := range cases {
		if _, err := New(c.ndims, c.cells); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestHomeOnlyShape(t *testing.T) {
	s, err := New(1, [][]int{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 1 {
		t.Fatalf("degenerate shape should get depth 1, got %d", s.Depth())
	}
	if s.Slope(0) != 0 {
		t.Fatalf("degenerate shape slope = %d, want 0", s.Slope(0))
	}
}

func TestContains(t *testing.T) {
	s := MustNew(2, heat2DCells())
	if !s.Contains(1, []int{0, 0}) {
		t.Error("home cell should be contained")
	}
	if !s.Contains(0, []int{-1, 0}) || !s.Contains(0, []int{0, 1}) {
		t.Error("declared reads should be contained")
	}
	if s.Contains(0, []int{1, 1}) {
		t.Error("diagonal not declared")
	}
	if s.Contains(-1, []int{0, 0}) {
		t.Error("t-1 not declared")
	}
}

func TestString(t *testing.T) {
	s := MustNew(1, [][]int{{1, 0}, {0, 1}, {0, -1}})
	got := s.String()
	want := "{{1,0}, {0,-1}, {0,1}}"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid shape")
		}
	}()
	MustNew(1, [][]int{{0, 1}})
}
