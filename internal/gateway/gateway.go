// Package gateway turns the pochoir library into a long-running service:
// cmd/pochoird accepts stencil specifications over HTTP, compiles them with
// internal/compiler, and executes each accepted job as a supervised
// resilient run on a bounded shared worker pool.
//
// The robustness spine, in admission order:
//
//   - Front-door validation: the compiler's input limits reject
//     pathological specs before parse; grid volume and step counts are
//     capped so one request cannot allocate the host away.
//
//   - Per-tenant quotas: a token bucket bounds each tenant's submission
//     rate and a concurrency cap bounds its admitted-but-unfinished jobs;
//     exhausting either sheds the request with 429 + Retry-After.
//
//   - Coalescing: a submission identical to an in-flight job (same spec
//     bytes, grid, steps, seed) joins that job instead of running again.
//
//   - A bounded priority queue: when it is full the gateway sheds (429 +
//     Retry-After) — it never buffers without bound. Workers never exceed
//     the configured pool size.
//
//   - Per-job deadlines propagated as context deadlines into the run; the
//     supervisor absorbs worker faults (retry, degrade, restore) so a
//     fault mid-job does not surface to the client.
//
//   - Graceful drain on SIGTERM: admission stops (503), queued and running
//     jobs finish (or spill durably via SpillDir), then the process exits.
//
// Every transition is observable: counters/gauges/histograms in the shared
// metrics registry, per-job progress entries (label = job id) served at
// /jobs/<id>, and job-lifecycle events stamped into the black-box flight
// recorder so a crashed daemon's post-mortem bundle names the in-flight
// jobs.
package gateway

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"pochoir"
	"pochoir/internal/compiler"
	"pochoir/internal/flight"
	"pochoir/internal/metrics"
	"pochoir/internal/profile"
	"pochoir/internal/trace"
)

// Config configures a Gateway. The zero value is usable; see the field
// comments for the defaults.
type Config struct {
	// Workers is the shared pool size — the hard bound on concurrently
	// executing jobs. Default 2.
	Workers int
	// QueueDepth bounds the admission queue (jobs admitted but not yet
	// running). A full queue sheds with 429 + Retry-After. Default 16.
	QueueDepth int
	// MaxBodyBytes bounds a submission's HTTP body. Default 1 MiB (the
	// compiler's own MaxSourceBytes caps the spec inside it).
	MaxBodyBytes int64
	// MaxSteps bounds a job's time steps. Default 100000.
	MaxSteps int
	// MaxGridPoints bounds a job's spatial grid volume (points per time
	// slot). Default 1<<20.
	MaxGridPoints int64
	// DefaultDeadline applies when a submission carries no deadline;
	// MaxDeadline clamps client-supplied ones. Defaults 1m and 5m. The
	// deadline runs from admission, so time spent queued counts.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RetryAfter is the Retry-After hint attached to queue-full and drain
	// sheds (quota sheds compute the exact token-refill time). Default 1s.
	RetryAfter time.Duration
	// TenantRate and TenantBurst configure each tenant's submission token
	// bucket (tokens/second and bucket capacity); TenantMaxConcurrent
	// bounds a tenant's admitted-but-unfinished jobs. Defaults 50/s, 100,
	// and QueueDepth.
	TenantRate          float64
	TenantBurst         int
	TenantMaxConcurrent int
	// SpillDir, when non-empty, gives every job durable checkpoints: job
	// <id> spills to SpillDir/<id> (see SupervisePolicy.SpillDir), so a
	// killed daemon leaves resumable journals.
	SpillDir string
	// Supervise is the resilience policy template applied to every job
	// (segmenting, retry budget, degradation ladder, verification). The
	// per-job SpillDir and deadline are layered on top of it.
	Supervise pochoir.SupervisePolicy
	// Metrics is the shared registry all jobs and the gateway itself
	// instrument; nil creates a private one.
	Metrics *metrics.Registry
	// Flight is the black-box recorder job lifecycle events are stamped
	// into; nil uses the process-wide default recorder.
	Flight *flight.Recorder
	// Trace, when non-nil, gives every submission an end-to-end causal
	// trace: admission, compile, queue wait, and every supervised segment
	// attempt, tail-sampled into the tracer's retained store and served at
	// /tracez. Nil disables tracing (and /tracez answers 404).
	Trace *trace.Tracer
	// SLO tunes the burn-rate engine evaluating the gateway's built-in
	// objectives (99% of jobs under 500ms, 99.9% of jobs succeeding). The
	// zero value uses the SRE-workbook defaults; its Flight field defaults
	// to the gateway's recorder so breaches land in post-mortem bundles.
	SLO metrics.SLOConfig
	// Profiler, when non-nil, is the continuous profiler the gateway owns
	// for its lifetime: started by New, stopped by Drain/Close. Each
	// capture window's per-tenant CPU attribution accumulates into the
	// pochoir_tenant_cpu_seconds_total gauge family, and the HTTP layer
	// serves the capture ring at /profilez. Nil disables profiling (and
	// /profilez answers 404), matching the flight recorder's off-by-default
	// discipline.
	Profiler *profile.Profiler

	// now overrides the clock (tests).
	now func() time.Time
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 100000
	}
	if c.MaxGridPoints <= 0 {
		c.MaxGridPoints = 1 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = time.Minute
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.TenantRate <= 0 {
		c.TenantRate = 50
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 100
	}
	if c.TenantMaxConcurrent <= 0 {
		c.TenantMaxConcurrent = c.QueueDepth
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Flight == nil {
		c.Flight = flight.Default()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// JobState names a job's lifecycle state.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Submission is one job request: a stencil specification plus its grid,
// step count, and scheduling hints.
type Submission struct {
	// Spec is the .pch stencil specification source.
	Spec string `json:"spec"`
	// Sizes are the spatial extents (must match the spec's dims).
	Sizes []int `json:"sizes"`
	// Steps is the number of time steps to run.
	Steps int `json:"steps"`
	// Priority is "high", "normal" (default), or "low".
	Priority string `json:"priority,omitempty"`
	// DeadlineMS bounds the job's total age (queue + run) in milliseconds;
	// 0 selects the gateway default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Seed parameterizes the deterministic initial condition, so distinct
	// seeds are distinct computations (and identical seeds coalesce).
	Seed int64 `json:"seed,omitempty"`

	// TraceParent is the caller's W3C trace context, parsed by the HTTP
	// layer from the traceparent header. It deliberately stays out of the
	// JSON body (and out of jobKey): propagation context never changes
	// what a computation is, so it must not defeat coalescing.
	TraceParent trace.Context `json:"-"`
}

// SubmitError is a rejected submission: the HTTP status to serve, the shed
// reason, and (for shedding) the Retry-After hint.
type SubmitError struct {
	Code       int
	Reason     string
	RetryAfter time.Duration
	Err        error
	// Traceparent is the refused submission's trace context — refusals are
	// always retained by the tail sampler, so the client can still pull
	// the shed trace from /tracez.
	Traceparent string
}

func (e *SubmitError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("gateway: %s: %v", e.Reason, e.Err)
	}
	return "gateway: " + e.Reason
}

func (e *SubmitError) Unwrap() error { return e.Err }

// JobStatus is the JSON view of one job, served at /jobs/<id>.
type JobStatus struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	State     JobState `json:"state"`
	Priority  string   `json:"priority"`
	Steps     int      `json:"steps"`
	Sizes     []int    `json:"sizes"`
	Coalesced int      `json:"coalesced"`

	// TraceID and Traceparent identify the job's causal trace; the trace
	// itself (if sampled in, or still live) is at /tracez/<trace_id>.
	TraceID     string `json:"trace_id,omitempty"`
	Traceparent string `json:"traceparent,omitempty"`

	QueuedSeconds float64 `json:"queued_seconds"`
	RunSeconds    float64 `json:"run_seconds"`
	DeadlineMS    int64   `json:"deadline_ms"`
	Checksum      string  `json:"checksum,omitempty"`
	Error         string  `json:"error,omitempty"`
	Retries       int     `json:"retries"`
	Degradations  int     `json:"degradations"`

	// Progress is the job's live run-progress entry from the shared
	// registry (label = job id); nil until the run starts.
	Progress *metrics.ProgressStat `json:"progress,omitempty"`
}

// job is the gateway's record of one admitted computation.
type job struct {
	id       string
	num      int64 // numeric id for flight events
	tenant   string
	key      uint64
	Priority Priority
	steps    int
	sizes    []int
	seed     int64
	deadline time.Time

	inst *compiler.Instance

	// trace is the job's causal trace (nil when tracing is disabled) and
	// queueSpan its open queue-wait span, closed when a worker pops it.
	// Both are set before the job is published and immutable after.
	trace     *trace.Active
	queueSpan trace.SpanID

	mu          sync.Mutex
	state       JobState
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	errText     string
	checksum    string
	retries     int
	degrades    int
	coalesced   int

	done chan struct{}
}

// Gateway is the multi-tenant stencil service: admission control, a
// bounded priority queue, a fixed worker pool of supervised runs, and
// graceful drain.
type Gateway struct {
	cfg     Config
	met     *gwMetrics
	queue   *jobQueue
	tenants *tenantSet
	slo     *metrics.SLOEngine

	baseCtx context.Context
	cancel  context.CancelFunc
	workers sync.WaitGroup

	// recentWaits is a small ring of observed queue waits; its median
	// folds into Retry-After hints so a shed client backs off by how long
	// the queue actually is, not just a static guess.
	waitMu      sync.Mutex
	recentWaits []time.Duration
	waitIdx     int

	mu       sync.Mutex
	jobs     map[string]*job
	byKey    map[uint64]*job // queued or running jobs only, for coalescing
	jobSeq   int64
	draining bool

	running    int
	maxRunning int // high-water mark; tests assert it never exceeds Workers
}

// New builds a gateway and starts its worker pool and SLO evaluator.
func New(cfg Config) *Gateway {
	cfg = cfg.withDefaults()
	if cfg.SLO.Flight == nil {
		cfg.SLO.Flight = cfg.Flight
	}
	g := &Gateway{
		cfg:     cfg,
		met:     newGwMetrics(cfg.Metrics),
		queue:   newJobQueue(cfg.QueueDepth),
		tenants: newTenantSet(cfg.TenantRate, cfg.TenantBurst, cfg.TenantMaxConcurrent, cfg.now),
		jobs:    make(map[string]*job),
		byKey:   make(map[uint64]*job),
	}
	g.slo = metrics.NewSLO(cfg.Metrics, cfg.SLO)
	g.slo.Add(metrics.LatencyObjective("job-latency-500ms", g.met.latencyMS, 500, 0.99))
	okC, errC, dlC := g.met.completed("ok"), g.met.completed("error"), g.met.completed("deadline")
	g.slo.Add(metrics.RatioObjective("job-success", 0.999,
		func() int64 { return okC.Value() },
		func() int64 { return okC.Value() + errC.Value() + dlC.Value() }))
	g.slo.Start()
	if cfg.Profiler != nil {
		// Export each window's per-tenant attribution, point the profiler's
		// self-metrics at the shared registry, publish it process-wide so
		// post-mortem bundles can embed the incident window, then begin
		// capturing.
		cfg.Profiler.SetOnReport(g.onProfileReport)
		pm := metrics.NewProfilerMetrics(cfg.Metrics)
		cfg.Profiler.SetInstruments(&profile.Instruments{
			Captures:      pm.Captures,
			HeapCaptures:  pm.HeapCaptures,
			Evictions:     pm.Evictions,
			DecodeErrors:  pm.DecodeErrors,
			CaptureErrors: pm.CaptureErrors,
		})
		profile.SetGlobal(cfg.Profiler)
		cfg.Profiler.Start()
	}
	g.baseCtx, g.cancel = context.WithCancel(context.Background())
	g.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go g.worker()
	}
	return g
}

// SLO returns the gateway's burn-rate engine (serving /slo via the monitor).
func (g *Gateway) SLO() *metrics.SLOEngine { return g.slo }

// Tracer returns the causal tracer, or nil when tracing is disabled.
func (g *Gateway) Tracer() *trace.Tracer { return g.cfg.Trace }

// Profiler returns the continuous profiler, or nil when profiling is
// disabled.
func (g *Gateway) Profiler() *profile.Profiler { return g.cfg.Profiler }

// onProfileReport folds one capture window's per-tenant CPU attribution
// into the cumulative pochoir_tenant_cpu_seconds_total gauges. Runs on the
// profiler's capture goroutine, one report at a time.
func (g *Gateway) onProfileReport(rep *profile.Report) {
	for _, ls := range rep.ByLabel["tenant"] {
		if ls.Value == "" || ls.CPUSeconds <= 0 {
			continue
		}
		g.met.tenantCPU(ls.Value).Add(ls.CPUSeconds)
	}
}

// Registry returns the shared metrics registry (for mounting a monitor).
func (g *Gateway) Registry() *metrics.Registry { return g.cfg.Metrics }

// Draining reports whether drain has begun (admission closed).
func (g *Gateway) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// jobKey identifies a computation for coalescing: the exact spec bytes,
// grid extents, step count, and seed.
func jobKey(sub Submission) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(sub.Spec))
	var b [8]byte
	for _, n := range sub.Sizes {
		binary.LittleEndian.PutUint64(b[:], uint64(n))
		_, _ = h.Write(b[:])
	}
	binary.LittleEndian.PutUint64(b[:], uint64(sub.Steps))
	_, _ = h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(sub.Seed))
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// Submit validates, admits, and enqueues one job for tenant. On success the
// returned status is the job's snapshot (state "queued", or the coalesced
// target's current state). A non-nil *SubmitError carries the HTTP status:
// 400 for an invalid spec, 413 for one over the input limits, 429 with
// Retry-After for load shedding, 503 while draining.
func (g *Gateway) Submit(tenant string, sub Submission) (*JobStatus, *SubmitError) {
	if tenant == "" {
		tenant = "anonymous"
	}
	g.met.submitted(tenant).Inc()
	g.cfg.Flight.Record(flight.EvJob, flight.JobSubmit, 0, int64(g.queue.depth()))

	prio, _ := ParsePriority(sub.Priority)
	// The trace opens before the first admission gate: a refused submission
	// ends with a shed/error status, which the tail sampler always keeps,
	// so "why was my job refused" is answerable from /tracez.
	tr := g.cfg.Trace.StartTrace("job", sub.TraceParent,
		trace.Attr{Key: "tenant", Value: tenant},
		trace.Attr{Key: "priority", Value: prio.String()})
	admitSpan := tr.StartSpan("admission", trace.SpanID{})

	// Front-door validation, before any lock: the compiler's input limits
	// bound the parse, and the grid/step caps bound the allocation.
	checked, serr := g.validate(sub, tr, admitSpan)
	if serr != nil {
		if serr.Code == 429 || serr.Code == 503 {
			g.shed(serr.Reason)
		}
		return nil, g.refuse(tr, admitSpan, serr)
	}

	key := jobKey(sub)

	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		g.shed("draining")
		return nil, g.refuse(tr, admitSpan,
			&SubmitError{Code: 503, Reason: "draining", RetryAfter: g.cfg.RetryAfter})
	}
	if prev, ok := g.byKey[key]; ok {
		g.mu.Unlock()
		// Identical spec+grid+steps+seed already queued or running: join it.
		// The token still gets charged — coalescing must not bypass quota —
		// but no new concurrency slot is taken.
		if ok, retry := g.tenants.chargeToken(tenant); !ok {
			g.shed("quota")
			return nil, g.refuse(tr, admitSpan,
				&SubmitError{Code: 429, Reason: "quota", RetryAfter: g.retryHint("quota", retry)})
		}
		return g.join(tr, admitSpan, prev), nil
	}
	g.mu.Unlock()

	if reason, retry := g.tenants.admit(tenant); reason != "" {
		g.shed(reason)
		return nil, g.refuse(tr, admitSpan,
			&SubmitError{Code: 429, Reason: reason, RetryAfter: g.retryHint(reason, retry)})
	}

	// Materialize the instance (arrays + deterministic initial condition)
	// only after every admission gate has passed.
	inst, err := checked.NewInstance(sub.Sizes...)
	if err != nil {
		g.tenants.release(tenant)
		return nil, g.refuse(tr, admitSpan, &SubmitError{Code: 400, Reason: "bad_spec", Err: err})
	}
	if err := initArrays(inst, sub.Seed); err != nil {
		g.tenants.release(tenant)
		return nil, g.refuse(tr, admitSpan, &SubmitError{Code: 400, Reason: "bad_spec", Err: err})
	}

	deadline := time.Duration(sub.DeadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = g.cfg.DefaultDeadline
	}
	if deadline > g.cfg.MaxDeadline {
		deadline = g.cfg.MaxDeadline
	}

	tr.EndSpan(admitSpan, trace.StatusOK)
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		g.tenants.release(tenant)
		g.shed("draining")
		return nil, g.refuse(tr, admitSpan,
			&SubmitError{Code: 503, Reason: "draining", RetryAfter: g.cfg.RetryAfter})
	}
	// Re-check the coalesce map: an identical submission may have landed
	// while the instance was being built.
	if prev, ok := g.byKey[key]; ok {
		g.mu.Unlock()
		g.tenants.release(tenant)
		return g.join(tr, admitSpan, prev), nil
	}
	g.jobSeq++
	now := g.cfg.now()
	j := &job{
		id:          fmt.Sprintf("j-%d", g.jobSeq),
		num:         g.jobSeq,
		tenant:      tenant,
		key:         key,
		Priority:    prio,
		steps:       sub.Steps,
		sizes:       append([]int(nil), sub.Sizes...),
		seed:        sub.Seed,
		deadline:    now.Add(deadline),
		inst:        inst,
		state:       StateQueued,
		submittedAt: now,
		done:        make(chan struct{}),
		trace:       tr,
	}
	// The queue-wait span must exist before the job is published: a worker
	// may pop it the instant push returns.
	j.queueSpan = tr.StartSpan("queue-wait", trace.SpanID{},
		trace.Attr{Key: "priority", Value: prio.String()})
	if !g.queue.push(j) {
		g.mu.Unlock()
		g.tenants.release(tenant)
		g.shed("queue_full")
		return nil, g.refuse(tr, admitSpan,
			&SubmitError{Code: 429, Reason: "queue_full", RetryAfter: g.retryHint("queue_full", 0)})
	}
	g.jobs[j.id] = j
	g.byKey[key] = j
	g.mu.Unlock()

	g.met.admitted.Inc()
	g.met.queueDepth.Set(float64(g.queue.depth()))
	g.cfg.Flight.Record(flight.EvJob, flight.JobAdmit, j.num, int64(g.queue.depth()))
	return g.status(j), nil
}

// join records one coalesced submission onto the in-flight primary: the
// joiner's trace ends as "coalesced" with a link-span to the primary's
// trace, the primary's trace gets the reverse link, and the caller is
// served the primary's status. Link-carrying traces are always retained,
// so the cross-job causality survives the tail sampler on both sides.
func (g *Gateway) join(tr *trace.Active, admitSpan trace.SpanID, prev *job) *JobStatus {
	prev.mu.Lock()
	prev.coalesced++
	prev.mu.Unlock()
	g.met.coalesced.Inc()
	g.cfg.Flight.Record(flight.EvJob, flight.JobCoalesce, prev.num, int64(g.queue.depth()))
	if tr != nil {
		tr.LinkSpan("coalesce-join", admitSpan, prev.trace.TraceID(),
			trace.Attr{Key: "job", Value: prev.id})
		tr.EndSpan(admitSpan, trace.StatusOK, trace.Attr{Key: "reason", Value: "coalesced"})
		prev.trace.LinkSpan("coalesced-submission", trace.SpanID{}, tr.TraceID())
		tr.End(trace.StatusCoalesced, trace.Attr{Key: "primary", Value: prev.id})
	}
	return g.status(prev)
}

// refuse finalizes a refused submission's trace — shed (429/503) or error
// (4xx) status, both kept unconditionally by the tail sampler — and stamps
// the trace context into the error so the HTTP layer can echo it.
func (g *Gateway) refuse(tr *trace.Active, admitSpan trace.SpanID, serr *SubmitError) *SubmitError {
	if tr == nil {
		return serr
	}
	status := trace.StatusError
	if serr.Code == 429 || serr.Code == 503 {
		status = trace.StatusShed
	}
	tr.Mark("refused", admitSpan, status, trace.Attr{Key: "reason", Value: serr.Reason})
	tr.EndSpan(admitSpan, status)
	tr.End(status)
	serr.Traceparent = tr.Context().Traceparent()
	return serr
}

// validate runs the front-door checks and compiles the spec, recording the
// compile as a child span of the admission decision.
func (g *Gateway) validate(sub Submission, tr *trace.Active, admitSpan trace.SpanID) (*compiler.Checked, *SubmitError) {
	if int64(len(sub.Spec)) > g.cfg.MaxBodyBytes {
		return nil, &SubmitError{Code: 413, Reason: "spec_too_large",
			Err: fmt.Errorf("spec of %d bytes exceeds the %d byte cap", len(sub.Spec), g.cfg.MaxBodyBytes)}
	}
	cspan := tr.StartSpan("compile", admitSpan)
	checked, cst, err := compiler.CompileSourceStats(sub.Spec)
	if err != nil {
		tr.EndSpan(cspan, trace.StatusError, trace.Attr{Key: "cause", Value: err.Error()})
		var le *compiler.LimitError
		if errors.As(err, &le) {
			return nil, &SubmitError{Code: 413, Reason: "spec_limit", Err: err}
		}
		return nil, &SubmitError{Code: 400, Reason: "bad_spec", Err: err}
	}
	tr.EndSpan(cspan, trace.StatusOK,
		trace.Attr{Key: "source_bytes", Value: strconv.Itoa(cst.SourceBytes)},
		trace.Attr{Key: "tokens", Value: strconv.Itoa(cst.Tokens)})
	if sub.Steps <= 0 || sub.Steps > g.cfg.MaxSteps {
		return nil, &SubmitError{Code: 400, Reason: "bad_steps",
			Err: fmt.Errorf("steps %d outside (0, %d]", sub.Steps, g.cfg.MaxSteps)}
	}
	if len(sub.Sizes) != checked.Prog.Dims {
		return nil, &SubmitError{Code: 400, Reason: "bad_sizes",
			Err: fmt.Errorf("spec has %d dims, submission has %d sizes", checked.Prog.Dims, len(sub.Sizes))}
	}
	vol := int64(1)
	for _, n := range sub.Sizes {
		if n < 1 {
			return nil, &SubmitError{Code: 400, Reason: "bad_sizes",
				Err: fmt.Errorf("non-positive extent %d", n)}
		}
		vol *= int64(n)
		if vol > g.cfg.MaxGridPoints {
			return nil, &SubmitError{Code: 413, Reason: "grid_too_large",
				Err: fmt.Errorf("grid volume exceeds the %d point cap", g.cfg.MaxGridPoints)}
		}
	}
	return checked, nil
}

// shed counts one shed submission under its reason.
func (g *Gateway) shed(reason string) {
	g.met.shed(reason).Inc()
	g.cfg.Flight.Record(flight.EvJob, flight.JobShed, 0, int64(g.queue.depth()))
}

// queueWaitRingSize bounds the observed-wait history behind Retry-After.
const queueWaitRingSize = 64

// recordQueueWait feeds one observed queue wait into the hint ring.
func (g *Gateway) recordQueueWait(d time.Duration) {
	g.waitMu.Lock()
	if len(g.recentWaits) < queueWaitRingSize {
		g.recentWaits = append(g.recentWaits, d)
	} else {
		g.recentWaits[g.waitIdx] = d
		g.waitIdx = (g.waitIdx + 1) % queueWaitRingSize
	}
	g.waitMu.Unlock()
}

// queueWaitMedian returns the median observed queue wait, 0 with no history.
func (g *Gateway) queueWaitMedian() time.Duration {
	g.waitMu.Lock()
	tmp := append([]time.Duration(nil), g.recentWaits...)
	g.waitMu.Unlock()
	if len(tmp) == 0 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[len(tmp)/2]
}

// retryHint folds the observed queue-wait median into a shed's Retry-After:
// a quota shed must wait for the token refill AND then ride the queue, so
// the hint is their sum; a queue-full shed is bounded below by the static
// hint but grows to the median once the queue is demonstrably slower —
// retrying before a queue-length of time has passed cannot succeed.
func (g *Gateway) retryHint(reason string, refill time.Duration) time.Duration {
	med := g.queueWaitMedian()
	switch reason {
	case "quota":
		if refill <= 0 {
			refill = g.cfg.RetryAfter
		}
		return refill + med
	case "queue_full":
		if med > g.cfg.RetryAfter {
			return med
		}
		return g.cfg.RetryAfter
	default:
		if refill > 0 {
			return refill
		}
		return g.cfg.RetryAfter
	}
}

// traceIDOf renders a job trace's ID for exemplars ("" when untraced).
func traceIDOf(a *trace.Active) string {
	if a == nil {
		return ""
	}
	return a.TraceID().String()
}

// Job returns the status of a job by id, or nil when unknown.
func (g *Gateway) Job(id string) *JobStatus {
	g.mu.Lock()
	j, ok := g.jobs[id]
	g.mu.Unlock()
	if !ok {
		return nil
	}
	return g.status(j)
}

// JobList snapshots every known job, newest first.
func (g *Gateway) JobList() []*JobStatus {
	g.mu.Lock()
	js := make([]*job, 0, len(g.jobs))
	for _, j := range g.jobs {
		js = append(js, j)
	}
	g.mu.Unlock()
	sort.Slice(js, func(a, b int) bool { return js[a].num > js[b].num })
	out := make([]*JobStatus, len(js))
	for i, j := range js {
		out[i] = g.status(j)
	}
	return out
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (g *Gateway) Wait(ctx context.Context, id string) (*JobStatus, error) {
	g.mu.Lock()
	j, ok := g.jobs[id]
	g.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("gateway: unknown job %q", id)
	}
	select {
	case <-j.done:
		return g.status(j), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// status snapshots a job for serving.
func (g *Gateway) status(j *job) *JobStatus {
	j.mu.Lock()
	st := &JobStatus{
		ID:           j.id,
		Tenant:       j.tenant,
		State:        j.state,
		Priority:     j.Priority.String(),
		Steps:        j.steps,
		Sizes:        append([]int(nil), j.sizes...),
		Coalesced:    j.coalesced,
		DeadlineMS:   j.deadline.Sub(j.submittedAt).Milliseconds(),
		Checksum:     j.checksum,
		Error:        j.errText,
		Retries:      j.retries,
		Degradations: j.degrades,
	}
	if j.trace != nil {
		st.TraceID = j.trace.TraceID().String()
		st.Traceparent = j.trace.Context().Traceparent()
	}
	now := g.cfg.now()
	switch {
	case j.startedAt.IsZero():
		st.QueuedSeconds = now.Sub(j.submittedAt).Seconds()
	case j.finishedAt.IsZero():
		st.QueuedSeconds = j.startedAt.Sub(j.submittedAt).Seconds()
		st.RunSeconds = now.Sub(j.startedAt).Seconds()
	default:
		st.QueuedSeconds = j.startedAt.Sub(j.submittedAt).Seconds()
		st.RunSeconds = j.finishedAt.Sub(j.startedAt).Seconds()
	}
	j.mu.Unlock()

	// The job's live progress entry shares the registry with every other
	// job; the per-job label (= job id) is what makes it findable here.
	if st.State == StateRunning || st.State == StateDone || st.State == StateFailed {
		for _, p := range g.cfg.Metrics.ProgressSnapshot() {
			if p.Label == j.id {
				prog := p
				st.Progress = &prog
				break // snapshot is newest-first
			}
		}
	}
	return st
}

// worker is one slot of the shared pool: it pops admitted jobs until the
// queue reports closed-and-empty (drain or shutdown).
func (g *Gateway) worker() {
	defer g.workers.Done()
	for {
		j, ok := g.queue.pop()
		if !ok {
			return
		}
		g.met.queueDepth.Set(float64(g.queue.depth()))
		g.runJob(j)
	}
}

// runJob executes one admitted job as a supervised resilient run under its
// deadline and records the terminal state.
func (g *Gateway) runJob(j *job) {
	g.mu.Lock()
	g.running++
	if g.running > g.maxRunning {
		g.maxRunning = g.running
	}
	g.mu.Unlock()
	g.met.running.Inc()
	defer func() {
		g.mu.Lock()
		g.running--
		g.mu.Unlock()
		g.met.running.Dec()
	}()

	now := g.cfg.now()
	j.mu.Lock()
	j.state = StateRunning
	j.startedAt = now
	wait := now.Sub(j.submittedAt)
	j.mu.Unlock()
	g.cfg.Flight.Record(flight.EvJob, flight.JobStart, j.num, int64(g.queue.depth()))
	j.trace.EndSpan(j.queueSpan, trace.StatusOK)
	g.recordQueueWait(wait)
	g.met.queueWait(j.Priority.String()).ObserveExemplar(
		wait.Milliseconds(), traceIDOf(j.trace), now.UnixNano())

	var (
		rep *pochoir.RunReport
		err error
	)
	if !now.Before(j.deadline) {
		err = fmt.Errorf("gateway: deadline expired while queued: %w", context.DeadlineExceeded)
		j.trace.Mark("deadline-expired-queued", trace.SpanID{}, trace.StatusDeadline)
	} else {
		ctx, cancel := context.WithDeadline(g.baseCtx, j.deadline)
		opts := pochoir.Options{
			Metrics:       g.cfg.Metrics,
			ProgressLabel: j.id,
			Trace:         j.trace,
		}
		if g.cfg.Flight != nil {
			opts.FlightRecorder = g.cfg.Flight
		}
		j.inst.Stencil.SetOptions(opts)
		policy := g.cfg.Supervise
		if g.cfg.SpillDir != "" {
			policy.SpillDir = g.cfg.SpillDir + "/" + j.id
		}
		// The whole supervised run carries the job's identity as pprof
		// labels. The supervisor layers engine=..., the walker layers
		// phase=..., and sched workers inherit the merged set, so every
		// CPU sample below attributes to tenant/job/priority whether the
		// capture comes from our own profiler or an external
		// /debug/pprof/profile scrape.
		pprof.Do(ctx, pprof.Labels(
			"tenant", j.tenant,
			"job", j.id,
			"priority", j.Priority.String(),
		), func(rc context.Context) {
			rep, err = j.inst.Stencil.RunSupervised(rc, j.steps, j.inst.Kernel(), policy)
		})
		cancel()
	}

	var sum string
	if err == nil {
		sum, err = resultChecksum(j.inst, j.steps)
	}

	now = g.cfg.now()
	j.mu.Lock()
	j.finishedAt = now
	if rep != nil {
		j.retries = rep.Retries
		j.degrades = rep.Degradations
	}
	if err != nil {
		j.state = StateFailed
		j.errText = err.Error()
	} else {
		j.state = StateDone
		j.checksum = sum
	}
	latency := now.Sub(j.submittedAt)
	j.mu.Unlock()

	g.mu.Lock()
	if g.byKey[j.key] == j {
		delete(g.byKey, j.key)
	}
	g.mu.Unlock()
	g.tenants.release(j.tenant)

	outcome := "ok"
	code := int64(flight.JobDone)
	if err != nil {
		code = flight.JobFail
		outcome = "error"
		if errors.Is(err, context.DeadlineExceeded) {
			outcome = "deadline"
		}
	}
	g.met.completed(outcome).Inc()
	g.met.latencyMS.ObserveExemplar(latency.Milliseconds(), traceIDOf(j.trace), now.UnixNano())
	if j.trace != nil {
		status := trace.StatusOK
		switch outcome {
		case "deadline":
			status = trace.StatusDeadline
		case "error":
			status = trace.StatusError
		}
		attrs := []trace.Attr{{Key: "job", Value: j.id}, {Key: "outcome", Value: outcome}}
		if err != nil {
			attrs = append(attrs, trace.Attr{Key: "cause", Value: err.Error()})
		}
		j.trace.End(status, attrs...)
	}
	g.cfg.Flight.Record(flight.EvJob, code, j.num, int64(g.queue.depth()))
	close(j.done)
}

// DrainSummary reports what a graceful drain accomplished.
type DrainSummary struct {
	Completed int  `json:"completed"`
	Failed    int  `json:"failed"`
	TimedOut  bool `json:"timed_out"`
}

// Drain gracefully shuts the gateway down: admission stops (submissions are
// refused with 503), the workers finish every queued and running job (or
// spill it durably when SpillDir is set), and Drain returns once the pool
// is idle or ctx expires. It is the SIGTERM path of cmd/pochoird.
func (g *Gateway) Drain(ctx context.Context) DrainSummary {
	g.mu.Lock()
	already := g.draining
	g.draining = true
	inflight := int64(g.running + g.queue.depth())
	g.mu.Unlock()
	if !already {
		g.cfg.Flight.Record(flight.EvJob, flight.JobDrainBeg, 0, inflight)
	}
	g.queue.close()

	idle := make(chan struct{})
	go func() {
		g.workers.Wait()
		close(idle)
	}()
	var sum DrainSummary
	select {
	case <-idle:
	case <-ctx.Done():
		sum.TimedOut = true
	}

	g.mu.Lock()
	for _, j := range g.jobs {
		j.mu.Lock()
		switch j.state {
		case StateDone:
			sum.Completed++
		case StateFailed:
			sum.Failed++
		}
		j.mu.Unlock()
	}
	g.mu.Unlock()
	g.slo.Close()
	if g.cfg.Profiler != nil {
		g.cfg.Profiler.Stop()
	}
	g.cfg.Flight.Record(flight.EvJob, flight.JobDrainEnd, 0, int64(sum.Completed))
	return sum
}

// Close hard-stops the gateway: running jobs are cancelled through their
// contexts, the queue is closed, and the workers are awaited. Tests use it;
// the daemon prefers Drain.
func (g *Gateway) Close() {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
	g.cancel()
	g.queue.close()
	g.workers.Wait()
	g.slo.Close()
	if g.cfg.Profiler != nil {
		g.cfg.Profiler.Stop()
	}
}

// MaxRunning returns the high-water mark of concurrently executing jobs;
// the smoke test asserts it never exceeds Config.Workers.
func (g *Gateway) MaxRunning() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.maxRunning
}

// initArrays fills every array's initial time slots with a deterministic
// hash-based field: a pure function of (seed, array order, slot, flat
// index), so identical submissions are identical computations — the
// foundation coalescing and the fault-absorption bit-identity check stand
// on.
func initArrays(inst *compiler.Instance, seed int64) error {
	depth := inst.Checked.Depth
	for ai, decl := range inst.Checked.Prog.Arrays {
		arr := inst.Arrays[decl.Name]
		buf := make([]float64, arr.PointsPerSlot())
		for t := 0; t < depth; t++ {
			h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(ai)<<32 + uint64(t)
			for i := range buf {
				h ^= uint64(i) + 0x9e3779b97f4a7c15 + h<<6 + h>>2
				h *= 0xbf58476d1ce4e5b9
				buf[i] = float64(h>>11) / float64(1<<53)
			}
			if err := arr.CopyIn(t, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// resultChecksum hashes the final states (times steps..steps+depth-1) of
// every array in declaration order — the job's bit-identity fingerprint.
func resultChecksum(inst *compiler.Instance, steps int) (string, error) {
	h := fnv.New64a()
	depth := inst.Checked.Depth
	var b [8]byte
	for _, decl := range inst.Checked.Prog.Arrays {
		arr := inst.Arrays[decl.Name]
		buf := make([]float64, arr.PointsPerSlot())
		for t := steps; t < steps+depth; t++ {
			if err := arr.CopyOut(t, buf); err != nil {
				return "", err
			}
			for _, v := range buf {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				_, _ = h.Write(b[:])
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
