package gateway

// Trace smoke suite: the end-to-end acceptance scenario of causal job
// tracing, exercised over real HTTP under the race detector via
// `make trace-smoke`:
//
//   - a faulted, retried, deadline-bounded job submitted with a caller
//     traceparent yields ONE retrievable trace showing the admission
//     decision, the compile, the queue wait, and every supervised segment
//     attempt with its retry cause and spill markers — and the trace
//     survives tail sampling by construction (retried-but-recovered jobs
//     are fast ok traces; the smoke proves the exemplar path keeps them
//     reachable while live and the sampler's keep rules take over on
//     error);
//   - the latency exemplars in /metrics resolve to live /tracez entries;
//   - unknown trace IDs answer 404, never an empty 200;
//   - /statusz's last_incident names the incident's trace and links it;
//   - the SLO engine reports a fast-burn breach during a fault window and
//     recovers after it.
//
// When POCHOIR_TRACE_SMOKE_OUT is set, the trace JSON and its rendered
// waterfall are written there as CI artifacts.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"pochoir"
	"pochoir/internal/faultpoint"
	"pochoir/internal/metrics"
	"pochoir/internal/trace"
)

// postJobTraced is postJob plus a caller traceparent header.
func postJobTraced(t *testing.T, base, tenant, traceparent string, s Submission) (*JobStatus, int, http.Header) {
	t.Helper()
	body, _ := json.Marshal(s)
	req, err := http.NewRequest("POST", base+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, data)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode 202 body: %v", err)
	}
	return &st, resp.StatusCode, resp.Header
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, data
}

func TestTraceSmoke(t *testing.T) {
	// SampleProb -1 disables probabilistic keeps: the faulted job's trace
	// must survive through the tail sampler's slow-outlier rule, not luck.
	// MinTailSamples is lowered so a short warm-up burst arms that rule.
	tracer := trace.New(trace.Config{Seed: 99, SampleProb: -1, MinTailSamples: 4, TailWindow: 64})
	reg := metrics.NewRegistry()
	g := New(Config{
		Workers:             1,
		QueueDepth:          32,
		Metrics:             reg,
		Trace:               tracer,
		SpillDir:            t.TempDir(),
		TenantBurst:         1000,
		TenantMaxConcurrent: 1000,
		Supervise:           pochoir.SupervisePolicy{SegmentSteps: 32},
		// Compressed SLO windows so the burn-rate engine breaches and
		// recovers within the smoke's real-time budget.
		SLO: metrics.SLOConfig{
			FastWindows: [2]time.Duration{200 * time.Millisecond, time.Second},
			SlowWindow:  2 * time.Second,
			Interval:    20 * time.Millisecond,
		},
	})
	srv, err := Serve("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := srv.URL()

	// Warm-up: fast successes feed the sampler's duration ring, so the
	// slow faulted job below registers as a p99 tail outlier.
	for i := 0; i < 8; i++ {
		st, _, _ := postJobTraced(t, base, "smoke", "", sub(8, 16, int64(100+i)))
		if fin := waitJob(t, base, st.ID); fin.State != StateDone {
			t.Fatalf("warm-up job failed: %+v", fin)
		}
	}

	// Phase 1 — the faulted, retried, deadline-bounded job. The caller
	// supplies a W3C traceparent; the injected one-shot worker panic forces
	// attempt-1 of a segment to fail and the supervisor to restore + retry.
	const callerTrace = "0af7651916cd43dd8448eb211c80319c"
	if err := faultpoint.ArmFromSpec("walker/base=panic:after=0,times=1"); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.DisarmAll()
	job := sub(96, 128, 4242)
	job.DeadlineMS = 20000
	st, _, hdr := postJobTraced(t, base, "smoke", "00-"+callerTrace+"-b7ad6b7169203331-01", job)
	if st.TraceID != callerTrace {
		t.Fatalf("job did not adopt the caller's trace ID: %q", st.TraceID)
	}
	if tp := hdr.Get("traceparent"); !strings.HasPrefix(tp, "00-"+callerTrace+"-") {
		t.Fatalf("response traceparent %q does not continue the caller's trace", tp)
	}
	fin := waitJob(t, base, st.ID)
	if fin.State != StateDone {
		t.Fatalf("faulted job did not recover: %+v", fin)
	}
	if fin.Retries < 1 {
		t.Fatalf("injected fault forced no retry: %+v", fin)
	}

	// The trace is retrievable by its ID and shows the whole causal story.
	code, raw := httpGet(t, base+"/tracez/"+callerTrace+".json")
	if code != 200 {
		t.Fatalf("GET /tracez/%s.json: %d", callerTrace, code)
	}
	tr, err := trace.ParseExport(raw)
	if err != nil {
		t.Fatalf("trace export: %v", err)
	}
	names := map[string]int{}
	var failedAttempt *trace.Span
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		names[sp.Name]++
		if strings.HasPrefix(sp.Name, "attempt-") && sp.Status == trace.StatusError {
			failedAttempt = sp
		}
	}
	for _, want := range []string{"job", "admission", "compile", "queue-wait",
		"supervised-run", "segment-0", "attempt-1", "attempt-2", "spill", "restore"} {
		if names[want] == 0 {
			t.Errorf("trace is missing a %q span (got %v)", want, names)
		}
	}
	if failedAttempt == nil {
		t.Fatal("no failed attempt span despite the injected panic")
	}
	if cause := failedAttempt.Attr("cause"); !strings.Contains(cause, "panic") {
		t.Errorf("failed attempt cause %q does not name the panic", cause)
	}
	if compile := findSpan(tr, "compile"); compile.Attr("tokens") == "" {
		t.Error("compile span carries no tokens attr")
	}

	// The ASCII waterfall renders, and an unknown ID is a 404 — never an
	// empty 200.
	code, wf := httpGet(t, base+"/tracez/"+callerTrace)
	if code != 200 || !bytes.Contains(wf, []byte("attempt-2")) {
		t.Fatalf("waterfall render: %d (%d bytes)", code, len(wf))
	}
	if code, _ := httpGet(t, base+"/tracez/ffffffffffffffffffffffffffffffff"); code != 404 {
		t.Fatalf("unknown trace ID answered %d, want 404", code)
	}
	if dir := os.Getenv("POCHOIR_TRACE_SMOKE_OUT"); dir != "" {
		if err := os.WriteFile(filepath.Join(dir, "trace-"+callerTrace+".json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "waterfall.txt"), wf, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2 — exemplars: the latency histogram's exposition carries a
	// trace ID that resolves at /tracez.
	_, expo := httpGet(t, base+"/metrics")
	if err := metrics.CheckExposition(expo); err != nil {
		t.Fatalf("/metrics exposition: %v", err)
	}
	exRe := regexp.MustCompile(`pochoir_gateway_job_latency_ms_bucket.*# \{trace_id="([0-9a-f]{32})"\}`)
	ms := exRe.FindAllSubmatch(expo, -1)
	if len(ms) == 0 {
		t.Fatal("no exemplar on the job latency histogram")
	}
	// Warm-up exemplars may name tail-dropped traces; the faulted job's
	// bucket exemplar must name its retained trace and resolve live.
	resolved := 0
	sawFaulted := false
	for _, m := range ms {
		id := string(m[1])
		if code, _ := httpGet(t, base+"/tracez/"+id+".json"); code == 200 {
			resolved++
			sawFaulted = sawFaulted || id == callerTrace
		}
	}
	if resolved == 0 {
		t.Fatal("no latency exemplar resolves at /tracez")
	}
	if !sawFaulted {
		t.Errorf("no bucket exemplar names the faulted job's trace %s", callerTrace)
	}
	if !bytes.Contains(expo, []byte("pochoir_gateway_queue_wait_ms_bucket")) {
		t.Error("exposition missing the per-priority queue-wait histogram")
	}

	// Phase 3 — SLO burn: a burst of deadline-doomed jobs must drive the
	// job-success objective into a fast-burn breach...
	for i := 0; i < 12; i++ {
		job := sub(2000, 128, int64(9000+i))
		job.DeadlineMS = 1
		st, _, _ := postJobTraced(t, base, "smoke", "", job)
		if fin := waitJob(t, base, st.ID); fin.State != StateFailed {
			t.Fatalf("deadline-doomed job %d finished: %+v", i, fin)
		}
	}
	waitSeverity(t, base, "job-success", "fast-burn", 5*time.Second)
	_, expo = httpGet(t, base+"/metrics")
	if !exemplarBreachRecorded(expo) {
		t.Error("no pochoir_slo_breaches_total increment after the fault window")
	}

	// ... and /statusz's last_incident must name the incident's trace.
	var status struct {
		LastIncident *struct {
			TraceID  string `json:"trace_id"`
			TraceURL string `json:"trace_url"`
		} `json:"last_incident"`
	}
	_, statusRaw := httpGet(t, base+"/statusz")
	if err := json.Unmarshal(statusRaw, &status); err != nil {
		t.Fatalf("statusz: %v", err)
	}
	if status.LastIncident == nil || status.LastIncident.TraceID == "" {
		t.Fatal("statusz last_incident carries no trace ID")
	}
	if want := "/tracez/" + status.LastIncident.TraceID; status.LastIncident.TraceURL != want {
		t.Fatalf("last_incident trace_url %q, want %q", status.LastIncident.TraceURL, want)
	}
	if code, _ := httpGet(t, base+status.LastIncident.TraceURL+".json"); code != 200 {
		t.Fatal("last_incident trace does not resolve at /tracez")
	}

	// Recovery: good traffic + the fault window aging out of every SLO
	// window returns the objective to healthy.
	for i := 0; i < 4; i++ {
		st, _, _ := postJobTraced(t, base, "smoke", "", sub(16, 32, int64(9900+i)))
		if fin := waitJob(t, base, st.ID); fin.State != StateDone {
			t.Fatalf("recovery job failed: %+v", fin)
		}
	}
	waitSeverity(t, base, "job-success", "healthy", 10*time.Second)
}

// findSpan returns the first span with the given name (zero Span if none).
func findSpan(tr *trace.Trace, name string) *trace.Span {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return &trace.Span{}
}

// waitSeverity polls /slo until the named objective reaches the wanted
// severity or the deadline passes.
func waitSeverity(t *testing.T, base, objective, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	last := ""
	for time.Now().Before(deadline) {
		var view struct {
			Objectives []metrics.SLOStatus `json:"objectives"`
		}
		_, raw := httpGet(t, base+"/slo")
		if err := json.Unmarshal(raw, &view); err != nil {
			t.Fatalf("/slo: %v", err)
		}
		for _, o := range view.Objectives {
			if o.Name == objective {
				last = o.Severity
			}
		}
		if last == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("objective %s never reached %q (last %q)", objective, want, last)
}

// exemplarBreachRecorded reports whether the breach counter is nonzero.
func exemplarBreachRecorded(expo []byte) bool {
	for _, line := range strings.Split(string(expo), "\n") {
		if strings.HasPrefix(line, "pochoir_slo_breaches_total") {
			var v float64
			if _, err := fmt.Sscanf(line[len("pochoir_slo_breaches_total"):], "%f", &v); err == nil && v > 0 {
				return true
			}
		}
	}
	return false
}
