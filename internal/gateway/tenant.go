package gateway

import (
	"sync"
	"time"
)

// tenantState is one tenant's admission-control state: a token bucket for
// submission rate and a count of jobs currently admitted (queued or
// running) for the concurrency cap. Both are small and per-tenant, so a
// noisy tenant exhausts its own budget, never the pool's.
type tenantState struct {
	mu       sync.Mutex
	tokens   float64
	last     time.Time
	inFlight int
}

// tenantSet lazily materializes tenantState per tenant name.
type tenantSet struct {
	mu      sync.Mutex
	tenants map[string]*tenantState
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	maxConc int     // admitted-but-unfinished cap
	now     func() time.Time
}

func newTenantSet(rate float64, burst, maxConc int, now func() time.Time) *tenantSet {
	return &tenantSet{
		tenants: make(map[string]*tenantState),
		rate:    rate,
		burst:   float64(burst),
		maxConc: maxConc,
		now:     now,
	}
}

func (ts *tenantSet) get(name string) *tenantState {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.tenants[name]
	if !ok {
		// A fresh tenant starts with a full bucket.
		t = &tenantState{tokens: ts.burst, last: ts.now()}
		ts.tenants[name] = t
	}
	return t
}

// admit charges one token and one concurrency slot for tenant name.
// It reports the shed reason ("" = admitted) and, for rate sheds, how long
// until the next token accrues — the Retry-After hint.
func (ts *tenantSet) admit(name string) (reason string, retryAfter time.Duration) {
	t := ts.get(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	now := ts.now()
	t.tokens += ts.rate * now.Sub(t.last).Seconds()
	if t.tokens > ts.burst {
		t.tokens = ts.burst
	}
	t.last = now
	if t.inFlight >= ts.maxConc {
		return "concurrency", 0
	}
	if t.tokens < 1 {
		need := (1 - t.tokens) / ts.rate
		return "quota", time.Duration(need * float64(time.Second))
	}
	t.tokens--
	t.inFlight++
	return "", 0
}

// chargeToken spends one token without taking a concurrency slot — the
// coalesced-submission path, which joins an existing run instead of adding
// one, but must not become a free way around the rate quota.
func (ts *tenantSet) chargeToken(name string) (ok bool, retryAfter time.Duration) {
	t := ts.get(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	now := ts.now()
	t.tokens += ts.rate * now.Sub(t.last).Seconds()
	if t.tokens > ts.burst {
		t.tokens = ts.burst
	}
	t.last = now
	if t.tokens < 1 {
		need := (1 - t.tokens) / ts.rate
		return false, time.Duration(need * float64(time.Second))
	}
	t.tokens--
	return true, 0
}

// release returns the concurrency slot taken by admit once the job reaches
// a terminal state.
func (ts *tenantSet) release(name string) {
	t := ts.get(name)
	t.mu.Lock()
	if t.inFlight > 0 {
		t.inFlight--
	}
	t.mu.Unlock()
}
