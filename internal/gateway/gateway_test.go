package gateway

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"pochoir/internal/flight"
	"pochoir/internal/metrics"
)

// testSpec is a small 1D periodic heat kernel; cheap enough to run many
// times under -race, real enough to exercise the full compile-run path.
const testSpec = `stencil heat { dims: 1; array u; boundary u: periodic;
kernel { u(t+1,x) = 0.25*u(t,x-1) + 0.5*u(t,x) + 0.25*u(t,x+1); } }`

// sub builds a Submission; seed differentiates otherwise-identical jobs so
// tests opt in to coalescing explicitly.
func sub(steps, size int, seed int64) Submission {
	return Submission{Spec: testSpec, Sizes: []int{size}, Steps: steps, Seed: seed}
}

// waitDone blocks until job id is terminal.
func waitDone(t *testing.T, g *Gateway, id string) *JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := g.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}

// TestGatewayRunsAJob: the basic contract — a valid submission is admitted,
// runs supervised, reaches "done" with a checksum, and the same submission
// on a fresh gateway produces the identical checksum (deterministic init).
func TestGatewayRunsAJob(t *testing.T) {
	var sums []string
	for i := 0; i < 2; i++ {
		g := New(Config{Workers: 1})
		st, serr := g.Submit("alice", sub(64, 128, 7))
		if serr != nil {
			t.Fatalf("submit: %v", serr)
		}
		if st.State != StateQueued && st.State != StateRunning && st.State != StateDone {
			t.Fatalf("unexpected state %q", st.State)
		}
		fin := waitDone(t, g, st.ID)
		if fin.State != StateDone || fin.Checksum == "" {
			t.Fatalf("job did not finish cleanly: %+v", fin)
		}
		sums = append(sums, fin.Checksum)
		g.Close()
	}
	if sums[0] != sums[1] {
		t.Fatalf("same submission, different checksums: %s vs %s", sums[0], sums[1])
	}
}

// TestGatewayValidation: malformed specs, bad steps/sizes, and over-limit
// grids are refused with the right HTTP code before any work is queued.
func TestGatewayValidation(t *testing.T) {
	g := New(Config{Workers: 1, MaxGridPoints: 1024, MaxSteps: 100})
	defer g.Close()
	for _, tc := range []struct {
		name string
		s    Submission
		code int
	}{
		{"bad spec", Submission{Spec: "stencil {", Sizes: []int{8}, Steps: 1}, 400},
		{"zero steps", sub(0, 8, 0), 400},
		{"too many steps", sub(101, 8, 0), 400},
		{"wrong dims", Submission{Spec: testSpec, Sizes: []int{8, 8}, Steps: 1}, 400},
		{"non-positive extent", Submission{Spec: testSpec, Sizes: []int{0}, Steps: 1}, 400},
		{"grid too large", sub(1, 2048, 0), 413},
		{"spec over limit", Submission{Spec: testSpec + strings.Repeat("# pad\n", 40000), Sizes: []int{8}, Steps: 1}, 413},
	} {
		_, serr := g.Submit("t", tc.s)
		if serr == nil || serr.Code != tc.code {
			t.Errorf("%s: got %+v, want code %d", tc.name, serr, tc.code)
		}
	}
	if n := len(g.JobList()); n != 0 {
		t.Fatalf("invalid submissions created %d jobs", n)
	}
}

// TestGatewayQueueFullSheds: with the pool busy and the queue full, further
// submissions shed with 429 "queue_full" — bounded buffering, never growth.
func TestGatewayQueueFullSheds(t *testing.T) {
	g := New(Config{Workers: 1, QueueDepth: 2, TenantBurst: 1000, TenantMaxConcurrent: 100})
	defer g.Close()

	// A slow blocker occupies the single worker; two more fill the queue.
	blocker, serr := g.Submit("t", sub(4000, 512, 1))
	if serr != nil {
		t.Fatalf("blocker: %v", serr)
	}
	admitted := []string{blocker.ID}
	var shed int
	for i := 0; i < 8; i++ {
		st, serr := g.Submit("t", sub(16, 64, int64(100+i)))
		if serr != nil {
			if serr.Code != 429 || serr.Reason != "queue_full" {
				t.Fatalf("wrong shed: %+v", serr)
			}
			if serr.RetryAfter <= 0 {
				t.Fatalf("queue_full shed carried no Retry-After hint")
			}
			shed++
			continue
		}
		admitted = append(admitted, st.ID)
	}
	if shed == 0 {
		t.Fatalf("burst past queue capacity shed nothing (admitted %d)", len(admitted))
	}
	// Zero accepted-job losses: every admitted job still reaches "done".
	for _, id := range admitted {
		if fin := waitDone(t, g, id); fin.State != StateDone {
			t.Fatalf("admitted job %s lost: %+v", id, fin)
		}
	}
}

// TestGatewayTenantQuota: a tenant that exhausts its token bucket is shed
// with "quota" and a positive Retry-After; other tenants are unaffected.
func TestGatewayTenantQuota(t *testing.T) {
	g := New(Config{Workers: 2, QueueDepth: 32, TenantRate: 0.001, TenantBurst: 2})
	defer g.Close()
	for i := 0; i < 2; i++ {
		if _, serr := g.Submit("noisy", sub(4, 16, int64(i))); serr != nil {
			t.Fatalf("submission %d inside burst: %v", i, serr)
		}
	}
	_, serr := g.Submit("noisy", sub(4, 16, 99))
	if serr == nil || serr.Code != 429 || serr.Reason != "quota" || serr.RetryAfter <= 0 {
		t.Fatalf("exhausted bucket not shed with quota+Retry-After: %+v", serr)
	}
	if _, serr := g.Submit("quiet", sub(4, 16, 0)); serr != nil {
		t.Fatalf("other tenant caught in noisy tenant's quota: %v", serr)
	}
}

// TestGatewayTenantConcurrency: the per-tenant cap on unfinished jobs sheds
// with "concurrency" while a job is in flight and readmits after it ends.
func TestGatewayTenantConcurrency(t *testing.T) {
	g := New(Config{Workers: 1, QueueDepth: 8, TenantMaxConcurrent: 1, TenantBurst: 1000})
	defer g.Close()
	st, serr := g.Submit("t", sub(2000, 512, 1))
	if serr != nil {
		t.Fatalf("first job: %v", serr)
	}
	_, serr = g.Submit("t", sub(4, 16, 2))
	if serr == nil || serr.Reason != "concurrency" {
		t.Fatalf("second in-flight job not shed: %+v", serr)
	}
	waitDone(t, g, st.ID)
	if _, serr = g.Submit("t", sub(4, 16, 3)); serr != nil {
		t.Fatalf("slot not released after completion: %v", serr)
	}
}

// TestGatewayCoalesce: an identical spec+grid+steps+seed submission joins
// the in-flight job — same job id, one execution, coalesce counter bumped —
// while a different seed stays a separate job.
func TestGatewayCoalesce(t *testing.T) {
	reg := metrics.NewRegistry()
	g := New(Config{Workers: 1, QueueDepth: 8, Metrics: reg, TenantBurst: 1000})
	defer g.Close()

	blocker, serr := g.Submit("t", sub(2000, 512, 1))
	if serr != nil {
		t.Fatalf("blocker: %v", serr)
	}
	first, serr := g.Submit("t", sub(32, 64, 42))
	if serr != nil {
		t.Fatalf("first: %v", serr)
	}
	same, serr := g.Submit("t", sub(32, 64, 42))
	if serr != nil {
		t.Fatalf("identical submission shed instead of coalesced: %v", serr)
	}
	if same.ID != first.ID {
		t.Fatalf("identical submission got its own job: %s vs %s", same.ID, first.ID)
	}
	if same.Coalesced != 1 {
		t.Fatalf("coalesce count = %d, want 1", same.Coalesced)
	}
	other, serr := g.Submit("t", sub(32, 64, 43))
	if serr != nil {
		t.Fatalf("different seed: %v", serr)
	}
	if other.ID == first.ID {
		t.Fatal("different seed coalesced onto a different computation")
	}
	if n := len(g.JobList()); n != 3 {
		t.Fatalf("expected 3 distinct jobs, have %d", n)
	}
	waitDone(t, g, blocker.ID)
	waitDone(t, g, first.ID)
	// After the job finishes it must NOT coalesce: a rerun is a new job.
	rerun, serr := g.Submit("t", sub(32, 64, 42))
	if serr != nil {
		t.Fatalf("rerun: %v", serr)
	}
	if rerun.ID == first.ID {
		t.Fatal("finished job still coalescing")
	}
}

// TestGatewayDeadline: a job whose deadline cannot be met fails with a
// deadline outcome instead of running forever.
func TestGatewayDeadline(t *testing.T) {
	g := New(Config{Workers: 1, TenantBurst: 1000})
	defer g.Close()
	st, serr := g.Submit("t", Submission{Spec: testSpec, Sizes: []int{1024}, Steps: 50000, DeadlineMS: 20})
	if serr != nil {
		t.Fatalf("submit: %v", serr)
	}
	fin := waitDone(t, g, st.ID)
	if fin.State != StateFailed {
		t.Fatalf("1s of work beat a 20ms deadline: %+v", fin)
	}
	if !strings.Contains(fin.Error, "deadline") && !strings.Contains(fin.Error, "context") {
		t.Fatalf("failure does not name the deadline: %q", fin.Error)
	}
}

// TestGatewayPriority: with the pool busy, a high-priority job admitted
// after a low-priority one still runs first.
func TestGatewayPriority(t *testing.T) {
	g := New(Config{Workers: 1, QueueDepth: 8, TenantBurst: 1000})
	defer g.Close()
	blocker, _ := g.Submit("t", sub(2000, 512, 1))
	low, serr := g.Submit("t", Submission{Spec: testSpec, Sizes: []int{64}, Steps: 16, Priority: "low", Seed: 2})
	if serr != nil {
		t.Fatalf("low: %v", serr)
	}
	high, serr := g.Submit("t", Submission{Spec: testSpec, Sizes: []int{64}, Steps: 16, Priority: "high", Seed: 3})
	if serr != nil {
		t.Fatalf("high: %v", serr)
	}
	waitDone(t, g, blocker.ID)
	waitDone(t, g, low.ID)
	waitDone(t, g, high.ID)
	g.mu.Lock()
	lo, hi := g.jobs[low.ID], g.jobs[high.ID]
	g.mu.Unlock()
	if !hi.startedAt.Before(lo.startedAt) {
		t.Fatalf("high priority started %v, low %v — wrong order", hi.startedAt, lo.startedAt)
	}
}

// TestGatewayWorkerBound: a burst far wider than the pool never pushes
// concurrent executions past Config.Workers.
func TestGatewayWorkerBound(t *testing.T) {
	g := New(Config{Workers: 2, QueueDepth: 32, TenantBurst: 1000})
	defer g.Close()
	var ids []string
	for i := 0; i < 12; i++ {
		st, serr := g.Submit("t", sub(64, 128, int64(i)))
		if serr != nil {
			t.Fatalf("submit %d: %v", i, serr)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitDone(t, g, id)
	}
	if mr := g.MaxRunning(); mr > 2 {
		t.Fatalf("worker bound violated: %d concurrent jobs on a 2-worker pool", mr)
	}
}

// TestGatewayDrain: Drain stops admission (503 draining), completes every
// admitted job, and reports them in the summary.
func TestGatewayDrain(t *testing.T) {
	fr := flight.New(512)
	g := New(Config{Workers: 2, QueueDepth: 32, TenantBurst: 1000, Flight: fr})
	var ids []string
	for i := 0; i < 6; i++ {
		st, serr := g.Submit("t", sub(64, 128, int64(i)))
		if serr != nil {
			t.Fatalf("submit %d: %v", i, serr)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sum := g.Drain(ctx)
	if sum.TimedOut || sum.Completed != 6 || sum.Failed != 0 {
		t.Fatalf("drain summary %+v, want 6 completed", sum)
	}
	for _, id := range ids {
		if st := g.Job(id); st.State != StateDone {
			t.Fatalf("drain left job %s in state %q", id, st.State)
		}
	}
	if _, serr := g.Submit("t", sub(4, 16, 99)); serr == nil || serr.Code != 503 || serr.Reason != "draining" {
		t.Fatalf("post-drain submission not refused with 503: %+v", serr)
	}
	// The black box carries the lifecycle: drain-begin and drain-end events.
	var beg, end bool
	for _, ev := range fr.Snapshot() {
		if ev.Kind == flight.EvJob && ev.A0 == flight.JobDrainBeg {
			beg = true
		}
		if ev.Kind == flight.EvJob && ev.A0 == flight.JobDrainEnd {
			end = true
		}
	}
	if !beg || !end {
		t.Fatalf("flight recorder missing drain events (begin=%v end=%v)", beg, end)
	}
}

// TestGatewayMetrics: the gateway's instrument set lands in the shared
// registry and the exposition stays parseable.
func TestGatewayMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	g := New(Config{Workers: 1, QueueDepth: 1, Metrics: reg, TenantBurst: 1000, TenantMaxConcurrent: 100})
	defer g.Close()
	blocker, _ := g.Submit("alice", sub(2000, 512, 1))
	g.Submit("alice", sub(8, 32, 2)) // queued
	for i := 0; i < 6; i++ {
		g.Submit("alice", sub(8, 32, int64(10+i))) // mostly shed
	}
	waitDone(t, g, blocker.ID)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	data := buf.Bytes()
	if err := metrics.CheckExposition(data); err != nil {
		t.Fatalf("exposition: %v\n%s", err, data)
	}
	for _, want := range []string{
		`pochoir_gateway_jobs_submitted_total{tenant="alice"}`,
		`pochoir_gateway_jobs_shed_total{reason="queue_full"}`,
		"pochoir_gateway_jobs_admitted_total",
		"pochoir_gateway_queue_depth",
		"pochoir_gateway_jobs_running",
		"pochoir_gateway_job_latency_ms",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}
