package gateway

import "sync"

// Priority orders jobs in the admission queue. Within a priority level the
// queue is FIFO; a higher level is always drained first.
type Priority int

const (
	PriorityHigh Priority = iota
	PriorityNormal
	PriorityLow
	numPriorities
)

// ParsePriority maps the wire names onto Priority; the empty string is
// PriorityNormal.
func ParsePriority(s string) (Priority, bool) {
	switch s {
	case "high":
		return PriorityHigh, true
	case "", "normal":
		return PriorityNormal, true
	case "low":
		return PriorityLow, true
	}
	return PriorityNormal, false
}

func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	case PriorityLow:
		return "low"
	}
	return "priority(?)"
}

// jobQueue is the bounded three-level priority queue between admission and
// the worker pool. Its capacity is the gateway's only buffer: a push against
// a full queue fails immediately (the caller sheds with 429 + Retry-After)
// instead of buffering without bound. close() flips the queue into drain
// mode: pops keep returning queued jobs until the queue is empty, then
// report closed — exactly the SIGTERM-drain semantics.
type jobQueue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	cap      int
	levels   [numPriorities][]*job
	n        int
	closed   bool
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// push enqueues j, or reports false when the queue is full or closed.
func (q *jobQueue) push(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.n >= q.cap {
		return false
	}
	q.levels[j.Priority] = append(q.levels[j.Priority], j)
	q.n++
	q.nonEmpty.Signal()
	return true
}

// pop blocks until a job is available (highest priority first) or the queue
// is closed AND empty, reporting ok=false in the latter case.
func (q *jobQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for p := range q.levels {
			if len(q.levels[p]) > 0 {
				j := q.levels[p][0]
				q.levels[p] = q.levels[p][1:]
				q.n--
				return j, true
			}
		}
		if q.closed {
			return nil, false
		}
		q.nonEmpty.Wait()
	}
}

// close flips the queue into drain mode (no further pushes; pops drain the
// backlog, then report closed). Idempotent.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nonEmpty.Broadcast()
}

// depth returns the number of queued (not yet running) jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
