package gateway

import "pochoir/internal/metrics"

// gwMetrics is the gateway's instrument set in the shared registry. The
// per-tenant and per-reason families are materialized lazily (the registry
// dedupes by name+labels), so a new tenant's first submission mints its
// counter.
type gwMetrics struct {
	reg        *metrics.Registry
	admitted   *metrics.Counter
	coalesced  *metrics.Counter
	queueDepth *metrics.Gauge
	running    *metrics.Gauge
	latencyMS  *metrics.Histogram
}

func newGwMetrics(reg *metrics.Registry) *gwMetrics {
	return &gwMetrics{
		reg: reg,
		admitted: reg.Counter("pochoir_gateway_jobs_admitted_total",
			"Jobs accepted into the bounded queue."),
		coalesced: reg.Counter("pochoir_gateway_jobs_coalesced_total",
			"Submissions joined onto an identical in-flight job."),
		queueDepth: reg.Gauge("pochoir_gateway_queue_depth",
			"Jobs admitted but not yet running."),
		running: reg.Gauge("pochoir_gateway_jobs_running",
			"Jobs currently executing on the worker pool."),
		latencyMS: reg.Histogram("pochoir_gateway_job_latency_ms",
			"End-to-end job latency (submit to terminal state), milliseconds.", 24),
	}
}

// submitted returns the per-tenant submission counter.
func (m *gwMetrics) submitted(tenant string) *metrics.Counter {
	return m.reg.Counter("pochoir_gateway_jobs_submitted_total",
		"Job submissions received, accepted or not.",
		metrics.Label{Key: "tenant", Value: tenant})
}

// shed returns the per-reason load-shed counter.
func (m *gwMetrics) shed(reason string) *metrics.Counter {
	return m.reg.Counter("pochoir_gateway_jobs_shed_total",
		"Submissions refused by admission control.",
		metrics.Label{Key: "reason", Value: reason})
}

// queueWait returns the per-priority queue-wait histogram. The exemplar on
// each bucket names the trace of a recent job that landed there, so a slow
// wait in /metrics resolves to its waterfall at /tracez.
func (m *gwMetrics) queueWait(priority string) *metrics.Histogram {
	return m.reg.Histogram("pochoir_gateway_queue_wait_ms",
		"Time jobs spent queued before a worker picked them up, milliseconds.", 24,
		metrics.Label{Key: "priority", Value: priority})
}

// tenantCPU returns the per-tenant attributed-CPU gauge the profiler's
// report callback accumulates into. A gauge rather than a counter because
// attributed CPU is fractional seconds; it only ever increases.
func (m *gwMetrics) tenantCPU(tenant string) *metrics.Gauge {
	return m.reg.Gauge("pochoir_tenant_cpu_seconds_total",
		"Cumulative CPU seconds attributed to each tenant by the continuous profiler.",
		metrics.Label{Key: "tenant", Value: tenant})
}

// completed returns the per-outcome completion counter.
func (m *gwMetrics) completed(outcome string) *metrics.Counter {
	return m.reg.Counter("pochoir_gateway_jobs_completed_total",
		"Jobs reaching a terminal state.",
		metrics.Label{Key: "outcome", Value: outcome})
}
