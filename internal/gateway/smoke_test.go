package gateway

// Gateway smoke suite: the overload/drain safety contract of cmd/pochoird,
// exercised end to end over real HTTP (and, for SIGTERM, a real re-exec'd
// daemon process). CI runs these under -race via `make gateway-smoke`:
//
//   - a burst past queue capacity sheds with 429 + Retry-After and loses
//     zero accepted jobs;
//   - concurrent executions never exceed the worker pool bound;
//   - an injected worker fault (POCHOIR_FAULTPOINTS grammar) is absorbed
//     by the supervisor and the result stays bit-identical to an
//     unfaulted run;
//   - SIGTERM mid-burst drains: every admitted job completes, then the
//     process exits cleanly with a drain summary;
//   - the self-scraped /metrics exposition stays parseable throughout.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"pochoir/internal/faultpoint"
	"pochoir/internal/metrics"
)

// postJob submits over HTTP and returns the decoded status (202) or the
// shed response and code.
func postJob(t *testing.T, base, tenant string, s Submission) (*JobStatus, *shedResponse, int, http.Header) {
	t.Helper()
	body, _ := json.Marshal(s)
	req, err := http.NewRequest("POST", base+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode 202 body: %v", err)
		}
		return &st, nil, resp.StatusCode, resp.Header
	}
	var shed shedResponse
	_ = json.NewDecoder(resp.Body).Decode(&shed)
	return nil, &shed, resp.StatusCode, resp.Header
}

// waitJob polls GET /jobs/{id}?wait_ms until the job is terminal.
func waitJob(t *testing.T, base, id string) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id + "?wait_ms=2000")
		if err != nil {
			t.Fatalf("GET /jobs/%s: %v", id, err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job %s: %v", id, err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return &st
		}
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return nil
}

func TestGatewaySmoke(t *testing.T) {
	reg := metrics.NewRegistry()
	g := New(Config{
		Workers:             2,
		QueueDepth:          4,
		Metrics:             reg,
		TenantBurst:         1000,
		TenantMaxConcurrent: 1000,
	})
	srv, err := Serve("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := srv.URL()

	// Phase 1 — overload: occupy both workers with slow jobs, then burst
	// far past queue capacity. Excess must shed with 429 + Retry-After;
	// every accepted job must still complete.
	var accepted []string
	for i := 0; i < 2; i++ {
		st, shed, code, _ := postJob(t, base, "burst", sub(4000, 512, int64(1+i)))
		if code != 202 {
			t.Fatalf("blocker %d: %d %+v", i, code, shed)
		}
		accepted = append(accepted, st.ID)
	}
	// Each burst job costs strictly more CPU than serving its POST (1M
	// point-updates vs a localhost roundtrip), so on a shared core the
	// backlog must grow and the 4-deep queue must overflow — the shed
	// below is deterministic, not a timing accident.
	var sheds int
	for i := 0; i < 24; i++ {
		st, shed, code, hdr := postJob(t, base, "burst", sub(2000, 512, int64(100+i)))
		switch code {
		case 202:
			accepted = append(accepted, st.ID)
		case 429:
			if shed.Reason != "queue_full" {
				t.Fatalf("unexpected shed reason %q", shed.Reason)
			}
			if hdr.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			sheds++
		default:
			t.Fatalf("unexpected status %d (%+v)", code, shed)
		}
	}
	if sheds == 0 {
		t.Fatalf("burst of 24 past a 4-deep queue shed nothing (%d accepted)", len(accepted))
	}
	for _, id := range accepted {
		if st := waitJob(t, base, id); st.State != StateDone || st.Checksum == "" {
			t.Fatalf("accepted job %s lost under overload: %+v", id, st)
		}
	}
	if mr := g.MaxRunning(); mr > 2 {
		t.Fatalf("pool bound violated: %d concurrent jobs on 2 workers", mr)
	}

	// Phase 2 — fault absorption: an unfaulted reference run, then the
	// identical submission with a one-shot injected worker panic (same
	// grammar as POCHOIR_FAULTPOINTS). The supervisor must retry and the
	// result must be bit-identical.
	ref, _, code, _ := postJob(t, base, "fault", sub(64, 128, 777))
	if code != 202 {
		t.Fatalf("reference job: %d", code)
	}
	refSt := waitJob(t, base, ref.ID)
	if refSt.State != StateDone {
		t.Fatalf("reference job failed: %+v", refSt)
	}
	if err := faultpoint.ArmFromSpec("walker/base=panic:after=0,times=1"); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.DisarmAll()
	faulted, _, code, _ := postJob(t, base, "fault", sub(64, 128, 777))
	if code != 202 {
		t.Fatalf("faulted job: %d", code)
	}
	faultSt := waitJob(t, base, faulted.ID)
	if faultSt.State != StateDone {
		t.Fatalf("injected fault not absorbed: %+v", faultSt)
	}
	if faultSt.Retries < 1 {
		t.Fatalf("fault did not force a retry: %+v", faultSt)
	}
	if faultSt.Checksum != refSt.Checksum {
		t.Fatalf("faulted result diverged: %s vs %s", faultSt.Checksum, refSt.Checksum)
	}

	// Phase 3 — observability: the self-scraped exposition parses, carries
	// the gateway instrument set, and /healthz answers while admitting.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := metrics.CheckExposition(data); err != nil {
		t.Fatalf("/metrics exposition: %v", err)
	}
	for _, want := range []string{
		"pochoir_gateway_jobs_admitted_total",
		`pochoir_gateway_jobs_shed_total{reason="queue_full"}`,
		"pochoir_gateway_job_latency_ms_bucket",
		"pochoir_sup_", // the supervised runs self-scrape into the same registry
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if resp, err = http.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

// childEnv guards the re-exec'd daemon child below.
const childEnv = "POCHOIRD_CHILD"

// TestPochoirdDaemonChild is the re-exec target of TestPochoirdSIGTERM: it
// runs the real Daemon lifecycle (serve, announce, SIGTERM, drain, summary)
// in a separate process so the signal path is exercised for real.
func TestPochoirdDaemonChild(t *testing.T) {
	if os.Getenv(childEnv) == "" {
		t.Skip("daemon child; run via TestPochoirdSIGTERM")
	}
	cfg := Config{
		Workers:             2,
		QueueDepth:          16,
		TenantBurst:         1000,
		TenantMaxConcurrent: 1000,
		SpillDir:            os.Getenv("POCHOIRD_SPILL_DIR"),
	}
	if err := Daemon(cfg, "127.0.0.1:0", 60*time.Second, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

// TestPochoirdSIGTERM re-execs this binary as a pochoird daemon, bursts
// jobs at it, SIGTERMs it mid-flight, and requires a clean graceful drain:
// every admitted job completes (the child also carries a POCHOIR_FAULTPOINTS
// one-shot panic, absorbed by the supervisor), the drain summary says so,
// and the process exits 0.
func TestPochoirdSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess harness skipped in -short")
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestPochoirdDaemonChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		childEnv+"=1",
		"POCHOIRD_SPILL_DIR="+t.TempDir(),
		// One injected worker panic inside the daemon: the drain must still
		// complete every job, proving the supervisor absorbs it in service.
		faultpoint.EnvVar+"=walker/base=panic:after=1,times=1",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	sc := bufio.NewScanner(stdout)
	base := ""
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "pochoird listening on "); ok {
			base = strings.TrimSpace(rest)
			break
		}
	}
	if base == "" {
		t.Fatalf("child never announced its address: %v", sc.Err())
	}

	// Burst admitted work, then SIGTERM while it is still in flight.
	admitted := 0
	for i := 0; i < 6; i++ {
		_, shed, code, _ := postJob(t, base, "drainer", sub(3000, 512, int64(i)))
		if code != 202 {
			t.Fatalf("job %d not admitted: %d %+v", i, code, shed)
		}
		admitted++
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// A submission after the signal is either refused with 503 (drain has
	// begun — never buffered) or, if it wins the race with asynchronous
	// signal delivery, admitted — in which case the drain must complete it
	// too. Both outcomes keep the zero-loss invariant.
	if _, _, code, _ := postJob(t, base, "late", sub(8, 32, 999)); code == 202 {
		admitted++
	} else if code != 503 {
		t.Logf("post-SIGTERM submission answered %d", code)
	}

	var sum struct {
		Drain DrainSummary `json:"drain"`
	}
	found := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, `{"drain":`) {
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatalf("drain summary %q: %v", line, err)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no drain summary on child stdout: %v", sc.Err())
	}
	for sc.Scan() {
		// Drain the pipe so the child can exit.
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("child exit: %v", err)
	}
	if sum.Drain.TimedOut || sum.Drain.Completed != admitted || sum.Drain.Failed != 0 {
		t.Fatalf("drain lost admitted jobs: %+v (want %d completed)", sum.Drain, admitted)
	}
}
