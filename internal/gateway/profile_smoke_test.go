package gateway

// Profile smoke suite: the end-to-end acceptance scenario of continuous
// profiling, exercised over real HTTP under the race detector via
// `make profile-smoke`:
//
//   - two tenants submit jobs through POST /jobs, one deliberately
//     CPU-skewed (big grids, many steps) and one nearly idle; the
//     /profilez.json attribution must show the skewed tenant dominating
//     the tenant breakdown, proving the labels survive the whole chain
//     (gateway pprof.Do -> supervisor engine label -> walker phase label
//     -> sched worker inheritance -> capture -> decode);
//   - the engine, phase, job, and priority breakdowns are populated, so
//     every layer's label demonstrably reached the samples;
//   - /metrics exports pochoir_tenant_cpu_seconds_total for the skewed
//     tenant with a positive value, plus the profiler's self-metrics;
//   - the regression sentinel stays silent across two clean views of the
//     same workload and flags a synthetically injected kernel-share
//     collapse;
//   - the ASCII /profilez view renders the per-tenant breakdown.
//
// When POCHOIR_PROFILE_SMOKE_OUT is set, the JSON report, the ASCII view,
// and the sentinel findings are written there as CI artifacts.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"pochoir"
	"pochoir/internal/metrics"
	"pochoir/internal/profile"
)

// profilezDoc mirrors the /profilez.json document shape.
type profilezDoc struct {
	Schema   string          `json:"schema"`
	Captures map[string]int  `json:"captures"`
	Report   *profile.Report `json:"report"`
}

// tenantCPUOf returns a tenant's attributed CPU seconds from a report
// (0 when absent).
func tenantCPUOf(rep *profile.Report, tenant string) float64 {
	if rep == nil {
		return 0
	}
	for _, ls := range rep.ByLabel["tenant"] {
		if ls.Value == tenant {
			return ls.CPUSeconds
		}
	}
	return 0
}

func TestProfileSmoke(t *testing.T) {
	// Short back-to-back windows so attribution accumulates quickly; heap
	// snapshots off to keep the ring purely CPU for the aggregate.
	prof := profile.New(profile.Config{
		Window:    150 * time.Millisecond,
		Interval:  -1,
		Retain:    64,
		HeapEvery: -1,
	})
	reg := metrics.NewRegistry()
	g := New(Config{
		Workers:             2,
		QueueDepth:          64,
		Metrics:             reg,
		Profiler:            prof,
		TenantRate:          10000,
		TenantBurst:         10000,
		TenantMaxConcurrent: 1000,
		Supervise:           pochoir.SupervisePolicy{SegmentSteps: 64},
	})
	srv, err := Serve("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := srv.URL()

	// /profilez must be mounted (and indexed) from the first request, even
	// before the first window lands.
	code, body := httpGet(t, base+"/profilez")
	if code != 200 || !strings.Contains(string(body), profile.Schema) {
		t.Fatalf("GET /profilez before first capture: %d %q", code, body)
	}

	// The workload: batches of two heavy jobs for tenant "grid-hog" plus
	// one tiny job for tenant "thrifty", repeated until the aggregate
	// attributes enough CPU to the heavy tenant to judge shares reliably.
	// Distinct seeds keep submissions from coalescing.
	const heavy, light = "grid-hog", "thrifty"
	seed := int64(1)
	runBatch := func() {
		ids := make([]string, 0, 3)
		for i := 0; i < 2; i++ {
			st, shed, code, _ := postJob(t, base, heavy, sub(3000, 8192, seed))
			seed++
			if st == nil {
				t.Fatalf("heavy submit refused: %d %+v", code, shed)
			}
			ids = append(ids, st.ID)
		}
		st, shed, code, _ := postJob(t, base, light, sub(20, 64, seed))
		seed++
		if st == nil {
			t.Fatalf("light submit refused: %d %+v", code, shed)
		}
		ids = append(ids, st.ID)
		for _, id := range ids {
			if fin := waitJob(t, base, id); fin.State != StateDone {
				t.Fatalf("job %s did not finish: %+v", id, fin)
			}
		}
	}
	fetch := func() *profilezDoc {
		_, raw := httpGet(t, base+"/profilez.json")
		var doc profilezDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("/profilez.json: %v\n%s", err, raw)
		}
		return &doc
	}

	var doc *profilezDoc
	deadline := time.Now().Add(60 * time.Second)
	for {
		runBatch()
		doc = fetch()
		if tenantCPUOf(doc.Report, heavy) >= 0.3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heavy tenant never accumulated 0.3 attributed CPU seconds: %+v", doc.Report)
		}
	}

	if doc.Schema != profile.Schema {
		t.Fatalf("schema %q, want %q", doc.Schema, profile.Schema)
	}
	if doc.Captures["cpu"] == 0 {
		t.Fatalf("no cpu captures in the ring: %v", doc.Captures)
	}
	rep := doc.Report

	// The skewed tenant dominates the tenant breakdown: its attributed CPU
	// must dwarf the thrifty tenant's, and lead all named tenants.
	heavyCPU, lightCPU := tenantCPUOf(rep, heavy), tenantCPUOf(rep, light)
	if heavyCPU < 4*lightCPU {
		t.Fatalf("tenant skew not attributed: %s=%.3fs vs %s=%.3fs\n%+v",
			heavy, heavyCPU, light, lightCPU, rep.ByLabel["tenant"])
	}
	for _, ls := range rep.ByLabel["tenant"] {
		if ls.Value != "" && ls.Value != heavy && ls.CPUSeconds > heavyCPU {
			t.Fatalf("tenant %q out-attributed the skewed tenant: %+v", ls.Value, rep.ByLabel["tenant"])
		}
	}

	// Every layer's label reached the samples: the gateway's job/priority,
	// the supervisor's engine, the walker's phase.
	wantValue := func(key, value string) {
		t.Helper()
		for _, ls := range rep.ByLabel[key] {
			if ls.Value == value && ls.CPUSeconds > 0 {
				return
			}
		}
		t.Errorf("no CPU attributed to %s=%s: %+v", key, value, rep.ByLabel[key])
	}
	wantValue("priority", "normal")
	wantValue("engine", "TRAP")
	jobLabeled := false
	for _, ls := range rep.ByLabel["job"] {
		if strings.HasPrefix(ls.Value, "j-") && ls.CPUSeconds > 0 {
			jobLabeled = true
		}
	}
	if !jobLabeled {
		t.Errorf("no CPU attributed to any job id: %+v", rep.ByLabel["job"])
	}
	phased := false
	for _, ls := range rep.ByLabel["phase"] {
		switch ls.Value {
		case "walk", "base", "boundary":
			if ls.CPUSeconds > 0 {
				phased = true
			}
		}
	}
	if !phased {
		t.Errorf("no CPU attributed to a walker phase: %+v", rep.ByLabel["phase"])
	}

	// The exporter side: /metrics carries the cumulative per-tenant gauge
	// and the profiler's self-metrics, and the exposition stays valid.
	_, expo := httpGet(t, base+"/metrics")
	if err := metrics.CheckExposition(expo); err != nil {
		t.Fatalf("/metrics exposition: %v", err)
	}
	gaugeRe := regexp.MustCompile(`pochoir_tenant_cpu_seconds_total\{tenant="` + heavy + `"\} ([0-9.eE+-]+)`)
	m := gaugeRe.FindSubmatch(expo)
	if m == nil {
		t.Fatalf("no pochoir_tenant_cpu_seconds_total for %s in /metrics", heavy)
	}
	var gv float64
	if _, err := fmt.Sscanf(string(m[1]), "%g", &gv); err != nil || gv <= 0 {
		t.Fatalf("tenant CPU gauge %q not positive", m[1])
	}
	if !strings.Contains(string(expo), `pochoir_profile_captures_total{kind="cpu"}`) {
		t.Error("profiler self-metrics missing from /metrics")
	}

	// The sentinel: silent across two clean views of the same workload,
	// loud on an injected kernel-share collapse.
	var sen profile.Sentinel
	clean := *rep
	clean.KernelShare += 0.02 // sampling wobble well inside the noise floor
	if fs := sen.Compare(rep, &clean); len(fs) != 0 {
		t.Fatalf("sentinel flagged a clean run: %v", fs)
	}
	regressed := *rep
	regressed.KernelShare = rep.KernelShare - 0.25
	regressed.WalkerShare = rep.WalkerShare + 0.25
	findings := sen.Compare(rep, &regressed)
	metricsFlagged := map[string]bool{}
	for _, f := range findings {
		metricsFlagged[f.Metric] = true
	}
	if !metricsFlagged["kernel_share"] || !metricsFlagged["walker_share"] {
		t.Fatalf("sentinel missed the injected shift: %v", findings)
	}

	// The human view renders the tenant breakdown.
	_, ascii := httpGet(t, base+"/profilez")
	if !strings.Contains(string(ascii), "by tenant:") || !strings.Contains(string(ascii), heavy) {
		t.Fatalf("/profilez ASCII view missing the tenant breakdown:\n%s", ascii)
	}

	if dir := os.Getenv("POCHOIR_PROFILE_SMOKE_OUT"); dir != "" {
		_, raw := httpGet(t, base+"/profilez.json")
		if err := os.WriteFile(filepath.Join(dir, "profilez.json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "profilez.txt"), ascii, 0o644); err != nil {
			t.Fatal(err)
		}
		fj, _ := json.MarshalIndent(findings, "", "  ")
		if err := os.WriteFile(filepath.Join(dir, "sentinel-findings.json"), fj, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
