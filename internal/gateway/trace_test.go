package gateway

import (
	"testing"
	"time"

	"pochoir/internal/metrics"
	"pochoir/internal/trace"
)

// TestCoalescedJobLinkSpans pins the cross-trace causality contract of
// coalescing: the joiner's trace must end "coalesced" carrying a link-span
// to the primary's trace, the primary's trace must carry the reverse link,
// and both must survive the tail sampler even with probabilistic sampling
// disabled — link-carrying traces are always kept.
func TestCoalescedJobLinkSpans(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 11, SampleProb: -1})
	g := New(Config{
		Workers:             1,
		QueueDepth:          8,
		Metrics:             metrics.NewRegistry(),
		Trace:               tracer,
		TenantBurst:         1000,
		TenantMaxConcurrent: 1000,
	})
	defer g.Close()

	// Occupy the single worker so the primary stays queued while its
	// duplicate arrives.
	blocker, serr := g.Submit("a", sub(3000, 512, 1))
	if serr != nil {
		t.Fatal(serr)
	}
	primary, serr := g.Submit("a", sub(200, 64, 42))
	if serr != nil {
		t.Fatal(serr)
	}
	joiner, serr := g.Submit("a", sub(200, 64, 42))
	if serr != nil {
		t.Fatal(serr)
	}
	if joiner.ID != primary.ID {
		t.Fatalf("identical submission did not coalesce: %s vs %s", joiner.ID, primary.ID)
	}
	if joiner.Coalesced != 1 {
		t.Fatalf("coalesced count = %d, want 1", joiner.Coalesced)
	}
	waitDone(t, g, blocker.ID)
	if st := waitDone(t, g, primary.ID); st.State != StateDone {
		t.Fatalf("primary failed: %+v", st)
	}

	pid, err := trace.ParseTraceID(primary.TraceID)
	if err != nil {
		t.Fatalf("primary trace id %q: %v", primary.TraceID, err)
	}
	ptr := tracer.Get(pid)
	if ptr == nil {
		t.Fatalf("primary trace %s not retained", primary.TraceID)
	}
	if ptr.KeepReason != "link" {
		t.Fatalf("primary keep reason %q, want \"link\" (a fast ok trace survives only through its link)", ptr.KeepReason)
	}
	var back *trace.Span
	for i := range ptr.Spans {
		if ptr.Spans[i].Name == "coalesced-submission" {
			back = &ptr.Spans[i]
		}
	}
	if back == nil {
		t.Fatal("primary trace has no coalesced-submission link-span")
	}

	var jtr *trace.Trace
	for _, cand := range tracer.Traces() {
		if cand.Status == trace.StatusCoalesced {
			jtr = cand
			break
		}
	}
	if jtr == nil {
		t.Fatal("no coalesced trace retained for the joiner")
	}
	if back.Link != jtr.ID {
		t.Fatalf("reverse link %s != joiner trace %s", back.Link, jtr.ID)
	}
	var fwd *trace.Span
	for i := range jtr.Spans {
		if jtr.Spans[i].Name == "coalesce-join" {
			fwd = &jtr.Spans[i]
		}
	}
	if fwd == nil {
		t.Fatal("joiner trace has no coalesce-join link-span")
	}
	if fwd.Link != pid {
		t.Fatalf("forward link %s != primary trace %s", fwd.Link, pid)
	}
	if got := fwd.Attr("job"); got != primary.ID {
		t.Fatalf("coalesce-join job attr %q, want %q", got, primary.ID)
	}
	if root := jtr.Find(jtr.Root); root == nil || root.Attr("primary") != primary.ID {
		t.Fatalf("joiner root does not name the primary job %q", primary.ID)
	}
}

// TestRetryAfterFoldsQueueWait pins the Retry-After fold in both regimes:
// with no (or a fast) wait history the static hints dominate — quota sheds
// return the token refill time, queue-full sheds the configured floor —
// and once the observed median queue wait grows past them, it folds in:
// quota = refill + median, queue_full = median.
func TestRetryAfterFoldsQueueWait(t *testing.T) {
	g := New(Config{Metrics: metrics.NewRegistry(), RetryAfter: time.Second})
	defer g.Close()

	// Regime 1 — fast queue: static hints win.
	if got := g.retryHint("quota", 200*time.Millisecond); got != 200*time.Millisecond {
		t.Fatalf("quota hint with no history = %v, want the 200ms refill", got)
	}
	if got := g.retryHint("queue_full", 0); got != time.Second {
		t.Fatalf("queue_full hint with no history = %v, want the 1s floor", got)
	}
	for i := 0; i < 5; i++ {
		g.recordQueueWait(10 * time.Millisecond)
	}
	if got := g.retryHint("quota", 200*time.Millisecond); got != 210*time.Millisecond {
		t.Fatalf("quota hint = %v, want refill+median = 210ms", got)
	}
	if got := g.retryHint("queue_full", 0); got != time.Second {
		t.Fatalf("queue_full hint = %v, want the 1s floor over a 10ms median", got)
	}

	// Regime 2 — slow queue: the observed median folds in.
	for i := 0; i < 20; i++ {
		g.recordQueueWait(3 * time.Second)
	}
	if med := g.queueWaitMedian(); med != 3*time.Second {
		t.Fatalf("median = %v, want 3s", med)
	}
	if got := g.retryHint("quota", 200*time.Millisecond); got != 3200*time.Millisecond {
		t.Fatalf("quota hint = %v, want refill+median = 3.2s", got)
	}
	if got := g.retryHint("queue_full", 0); got != 3*time.Second {
		t.Fatalf("queue_full hint = %v, want the 3s median", got)
	}
	// A quota shed with no refill estimate falls back to the floor, then
	// folds the median on top.
	if got := g.retryHint("quota", 0); got != 4*time.Second {
		t.Fatalf("quota hint with zero refill = %v, want floor+median = 4s", got)
	}
}
