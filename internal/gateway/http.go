package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pochoir/internal/metrics"
	"pochoir/internal/profile"
	"pochoir/internal/trace"
)

// shedResponse is the JSON body of every refused submission.
type shedResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

// NewHandler builds the gateway's HTTP surface:
//
//	POST /jobs       submit a Submission (tenant from X-Tenant, trace
//	                 context from traceparent); 202 + status, traceparent
//	                 echoed (or minted) on the response
//	GET  /jobs       list job statuses
//	GET  /jobs/{id}  one job's status, including its live run progress
//	GET  /healthz    200 while admitting, 503 while draining
//
// plus the full metrics monitor (/metrics, /progressz, /healthz is ours,
// /debug/pprof/...) from the shared registry, so a single hardened listener
// serves both the control plane and its own observability.
func NewHandler(g *Gateway) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
		var sub Submission
		if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
			code := http.StatusBadRequest
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				code = http.StatusRequestEntityTooLarge
			}
			writeJSON(w, code, shedResponse{Error: err.Error(), Reason: "bad_request"})
			return
		}
		// A caller-supplied W3C traceparent joins the job to the caller's
		// distributed trace; a malformed one is rejected explicitly rather
		// than silently starting a fresh trace.
		tp, err := trace.ParseTraceparent(r.Header.Get("traceparent"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				shedResponse{Error: err.Error(), Reason: "bad_traceparent"})
			return
		}
		sub.TraceParent = tp
		st, serr := g.Submit(r.Header.Get("X-Tenant"), sub)
		if serr != nil {
			if serr.RetryAfter > 0 {
				secs := int(math.Ceil(serr.RetryAfter.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			}
			if serr.Traceparent != "" {
				w.Header().Set("traceparent", serr.Traceparent)
			}
			writeJSON(w, serr.Code, shedResponse{Error: serr.Error(), Reason: serr.Reason})
			return
		}
		if st.Traceparent != "" {
			w.Header().Set("traceparent", st.Traceparent)
		}
		writeJSON(w, http.StatusAccepted, st)
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		// ?wait_ms=N blocks (bounded) until the job is terminal — the smoke
		// harness polls less and the CLI gets synchronous submit-and-wait.
		if ms := r.URL.Query().Get("wait_ms"); ms != "" {
			var n int
			if _, err := fmt.Sscanf(ms, "%d", &n); err == nil && n > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), time.Duration(n)*time.Millisecond)
				st, err := g.Wait(ctx, id)
				cancel()
				if err == nil {
					writeJSON(w, http.StatusOK, st)
					return
				}
				// Unknown job falls through to the 404; a wait timeout
				// serves the current (non-terminal) snapshot below.
			}
		}
		st := g.Job(id)
		if st == nil {
			writeJSON(w, http.StatusNotFound, shedResponse{Error: "unknown job " + id, Reason: "not_found"})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, g.JobList())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if g.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	// Everything else — /metrics, /progressz, /slo, /tracez (when tracing
	// is on), /profilez (when profiling is on), /debug/pprof/... — is the
	// registry's monitor surface.
	monOpts := []metrics.HandlerOption{metrics.WithSLO(g.SLO())}
	if tr := g.Tracer(); tr != nil {
		monOpts = append(monOpts, metrics.WithTracez(trace.Handler(tr)))
	}
	if p := g.Profiler(); p != nil {
		monOpts = append(monOpts, metrics.WithProfilez(profile.NewHandler(p)))
	}
	mux.Handle("/", metrics.NewHandler(g.Registry(), monOpts...))
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Server is the gateway bound to a listener.
type Server struct {
	g   *Gateway
	ln  net.Listener
	srv *http.Server
}

// Serve starts the gateway's hardened HTTP server on addr (":0" for an
// ephemeral port).
func Serve(addr string, g *Gateway) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	s := &Server{g: g, ln: ln, srv: metrics.HardenedServer(NewHandler(g))}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the base http:// URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close hard-stops the HTTP server and the gateway.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.g.Close()
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// Daemon runs the full pochoird lifecycle: serve on addr, announce the
// bound address on out, and on SIGTERM/SIGINT drain gracefully — stop
// admitting (new submissions get 503), let the pool finish or durably
// spill every admitted job, emit a JSON DrainSummary line on out, and
// return. cmd/pochoird is a flag-parsing shim around this function, and
// the smoke test re-executes it as a child process to prove the signal
// path end to end.
func Daemon(cfg Config, addr string, drainTimeout time.Duration, out io.Writer) error {
	g := New(cfg)
	s, err := Serve(addr, g)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pochoird listening on %s\n", s.URL())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	signal.Stop(sig)
	fmt.Fprintf(out, "pochoird: %v: draining\n", got)

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	sum := g.Drain(ctx)
	cancel()

	// The listener closes only after the drain: in-flight status polls and
	// the final metrics scrape keep working while the pool empties.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = s.srv.Shutdown(sctx)
	scancel()
	_ = s.ln.Close()

	enc := json.NewEncoder(out)
	if err := enc.Encode(struct {
		Drain DrainSummary `json:"drain"`
	}{sum}); err != nil {
		return err
	}
	if sum.TimedOut {
		return fmt.Errorf("pochoird: drain timed out after %v", drainTimeout)
	}
	return nil
}
