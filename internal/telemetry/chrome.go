package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// WriteChromeTrace renders the recorded events in the Chrome trace-event
// JSON format (the "JSON Array with metadata" flavor), loadable in
// chrome://tracing and https://ui.perfetto.dev. Each worker shard becomes
// one thread track; every span is a balanced pair of duration events
// (ph "B"/"E"), so the recursive decomposition renders as a span tree per
// worker. Timestamps are microseconds since the recorder's epoch.
//
// Like Snapshot, it must only be called while no instrumented run is
// executing.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	emit(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"pochoir"}}`)
	for _, s := range r.shards {
		emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"worker-%d"}}`, s.id, s.id)
	}
	for _, s := range r.shards {
		for _, ev := range s.events {
			ts := float64(ev.TS) / 1e3
			if !ev.Begin {
				emit(`{"name":"%s","cat":"pochoir","ph":"E","pid":1,"tid":%d,"ts":%.3f}`,
					ev.Kind, s.id, ts)
				continue
			}
			emit(`{"name":"%s","cat":"pochoir","ph":"B","pid":1,"tid":%d,"ts":%.3f,"args":{%s}}`,
				ev.Kind, s.id, ts, beginArgs(ev))
		}
	}
	if len(r.sup) > 0 {
		// Supervisor decisions render as instant events on a dedicated
		// track above the worker span trees.
		supTid := len(r.shards)
		emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"supervisor"}}`, supTid)
		for _, ev := range r.sup {
			emit(`{"name":"%s","cat":"supervisor","ph":"i","s":"p","pid":1,"tid":%d,"ts":%.3f,"args":{%s}}`,
				ev.Kind, supTid, float64(ev.TS)/1e3, supArgs(ev))
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// beginArgs renders the kind-specific args object body of a begin event.
func beginArgs(ev Event) string {
	switch ev.Kind {
	case SpanHyperCut:
		return fmt.Sprintf(`"dims_cut":%d,"fanout":%d,"levels":%d`, ev.A0, ev.A1, ev.A2)
	case SpanSpaceCut, SpanCircleCut:
		return fmt.Sprintf(`"dim":%d`, ev.A0)
	case SpanTimeCut:
		return fmt.Sprintf(`"height":%d`, ev.A0)
	case SpanBase:
		clone := "boundary"
		if ev.A1 != 0 {
			clone = "interior"
		}
		return fmt.Sprintf(`"volume":%d,"clone":"%s","height":%d`, ev.A0, clone, ev.A2)
	}
	return ""
}

// supArgs renders the args object body of a supervisor instant event.
// Error strings come from arbitrary panic values, so they are JSON-quoted.
func supArgs(ev SupEvent) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `"segment":%d,"attempt":%d`, ev.Segment, ev.Attempt)
	if ev.Engine != "" {
		fmt.Fprintf(&sb, `,"engine":%s`, strconv.Quote(ev.Engine))
	}
	if ev.Delay > 0 {
		fmt.Fprintf(&sb, `,"delay_us":%d`, ev.Delay.Microseconds())
	}
	if ev.Err != "" {
		fmt.Fprintf(&sb, `,"err":%s`, strconv.Quote(ev.Err))
	}
	return sb.String()
}

// ChromeInstant is one instant event of a generic Chrome trace: a named
// marker on a track at a point in time. Args, when non-empty, is the
// pre-rendered JSON body of the args object (no surrounding braces).
type ChromeInstant struct {
	Name string
	TID  int   // track the event renders on
	TS   int64 // nanoseconds since the trace's epoch
	Args string
}

// WriteChromeEvents renders an arbitrary list of instant events in the same
// Chrome trace-event format as WriteChromeTrace, one named thread track per
// entry of tracks (tid → display name). It is the exporter behind
// cmd/blackbox's trace subcommand: post-mortem flight-recorder windows
// become per-worker instant-event lanes loadable in chrome://tracing and
// Perfetto alongside the span traces the live recorder writes.
func WriteChromeEvents(w io.Writer, process string, tracks map[int]string, evs []ChromeInstant) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	emit(`{"name":"process_name","ph":"M","pid":1,"args":{"name":%s}}`, strconv.Quote(process))
	tids := make([]int, 0, len(tracks))
	for tid := range tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
			tid, strconv.Quote(tracks[tid]))
	}
	for _, ev := range evs {
		emit(`{"name":%s,"cat":"flight","ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,"args":{%s}}`,
			strconv.Quote(ev.Name), ev.TID, float64(ev.TS)/1e3, ev.Args)
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ChromeSpan is one complete-event ("X") span of a generic Chrome trace:
// a named bar on a track with an explicit duration. Unlike the B/E pairs
// WriteChromeTrace emits, complete events need no stack discipline — the
// viewer nests them by time containment — which suits span trees assembled
// from concurrent recorders. Args, when non-empty, is the pre-rendered JSON
// body of the args object (no surrounding braces).
type ChromeSpan struct {
	Name  string
	TID   int   // track the span renders on
	TS    int64 // nanoseconds since the trace's epoch
	DurNS int64
	Args  string
}

// WriteChromeSpans renders spans (plus optional instant markers) in the
// Chrome trace-event format, one named thread track per entry of tracks.
// It is the converter behind the /tracez Chrome export: a pochoir-trace/v1
// span tree becomes a browsable flame chart in chrome://tracing or
// Perfetto, reusing the exact envelope WriteChromeTrace established.
func WriteChromeSpans(w io.Writer, process string, tracks map[int]string, spans []ChromeSpan, instants []ChromeInstant) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	emit(`{"name":"process_name","ph":"M","pid":1,"args":{"name":%s}}`, strconv.Quote(process))
	tids := make([]int, 0, len(tracks))
	for tid := range tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
			tid, strconv.Quote(tracks[tid]))
	}
	for _, sp := range spans {
		emit(`{"name":%s,"cat":"trace","ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{%s}}`,
			strconv.Quote(sp.Name), sp.TID, float64(sp.TS)/1e3, float64(sp.DurNS)/1e3, sp.Args)
	}
	for _, ev := range instants {
		emit(`{"name":%s,"cat":"trace","ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,"args":{%s}}`,
			strconv.Quote(ev.Name), ev.TID, float64(ev.TS)/1e3, ev.Args)
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTraceFile writes the Chrome trace to path.
func (r *Recorder) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
