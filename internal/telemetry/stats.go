package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Stats is the aggregate view of a recorder: decomposition counters, the
// base-case volume histogram, scheduler decisions, and per-worker busy
// time. It is a plain value; Delta subtracts an earlier snapshot to get a
// per-Run summary.
type Stats struct {
	// Wall is the accumulated wall-clock time of instrumented runs.
	Wall time.Duration
	// Workers is the number of worker shards (concurrently live worker
	// goroutines at peak).
	Workers int

	// Decomposition node counts by cut kind.
	TimeCuts   int64
	HyperCuts  int64
	SpaceCuts  int64 // STRAP trisections
	CircleCuts int64 // STRAP periodic circle cuts
	// HyperByK[k] counts hyperspace cuts that cut k dimensions at once;
	// each should fan out ~3^k subzoids over k+1 dependency levels.
	HyperByK [MaxCutDims + 1]int64
	// Fanout and Levels total the subzoids and dependency levels produced
	// by all hyperspace cuts.
	Fanout int64
	Levels int64

	// Base-case accounting. BasePoints is the total number of space-time
	// point updates executed; for a full run it must equal
	// steps x grid volume (the decomposition partitions space-time).
	Bases         int64
	InteriorBases int64
	BasePoints    int64
	// BaseVolumeHist[b] counts base cases whose zoid volume v satisfies
	// floor(log2(v)) == b.
	BaseVolumeHist [volumeBuckets]int64

	// Scheduler decisions: tasks run on fresh goroutines vs. inline.
	Spawns  int64
	Inlines int64

	// WorkerBusy[i] is the time worker shard i spent inside base cases
	// (kernel work, excluding decomposition and blocking).
	WorkerBusy []time.Duration

	// Events is the total number of recorded begin/end events.
	Events int64

	// SupEvents is the number of recorded supervisor decision events
	// (segments, retries, backoffs, degradations, verifications).
	SupEvents int64
}

// Zoids returns the total number of decomposition nodes visited: every
// cut of any kind plus every base case.
func (st Stats) Zoids() int64 {
	return st.TimeCuts + st.HyperCuts + st.SpaceCuts + st.CircleCuts + st.Bases
}

// BoundaryBases returns the base cases dispatched to the boundary clone.
func (st Stats) BoundaryBases() int64 { return st.Bases - st.InteriorBases }

// BusyTotal returns the summed busy time across workers.
func (st Stats) BusyTotal() time.Duration {
	var t time.Duration
	for _, b := range st.WorkerBusy {
		t += b
	}
	return t
}

// AchievedParallelism is total worker busy time over wall time — the
// empirical counterpart of the work/span parallelism Fig. 9 predicts
// (capped in practice by GOMAXPROCS, unlike the analytical T1/T∞).
func (st Stats) AchievedParallelism() float64 {
	if st.Wall <= 0 {
		return 0
	}
	return float64(st.BusyTotal()) / float64(st.Wall)
}

// BaseVolumePercentile returns an estimate of the q-th percentile
// (q in [0,1]) of the base-case zoid volume, computed from the log2
// histogram: the bucket holding the q-th ranked base case contributes its
// geometric-midpoint volume, 1.5*2^b. With zero recorded base cases it
// returns 0 rather than dividing by the empty total.
func (st Stats) BaseVolumePercentile(q float64) float64 {
	var total int64
	for _, n := range st.BaseVolumeHist {
		total += n
	}
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank percentile: the ceil(q*total)-th ranked sample.
	rank := int64(math.Ceil(q*float64(total))) - 1
	if rank < 0 {
		rank = 0
	}
	var cum int64
	for b, n := range st.BaseVolumeHist {
		cum += n
		if n > 0 && cum > rank {
			return math.Ldexp(1.5, b)
		}
	}
	return math.Ldexp(1.5, len(st.BaseVolumeHist)-1)
}

// AvgBaseVolume returns the mean base-case volume in points, 0 with no
// recorded base cases.
func (st Stats) AvgBaseVolume() float64 {
	if st.Bases <= 0 {
		return 0
	}
	return float64(st.BasePoints) / float64(st.Bases)
}

// Summary is the compact JSON-marshalable view of Stats: the decomposition
// counters plus the derived base-volume percentiles and achieved
// parallelism, without the histograms and per-worker arrays. It is what the
// benchmark lab embeds in its fused per-run records.
type Summary struct {
	WallSeconds         float64 `json:"wall_seconds"`
	Zoids               int64   `json:"zoids"`
	TimeCuts            int64   `json:"time_cuts"`
	HyperCuts           int64   `json:"hyper_cuts"`
	SpaceCuts           int64   `json:"space_cuts"`
	CircleCuts          int64   `json:"circle_cuts"`
	Bases               int64   `json:"bases"`
	InteriorBases       int64   `json:"interior_bases"`
	BasePoints          int64   `json:"base_points"`
	BaseVolP50          float64 `json:"base_vol_p50"`
	BaseVolP90          float64 `json:"base_vol_p90"`
	BaseVolP99          float64 `json:"base_vol_p99"`
	Spawns              int64   `json:"spawns"`
	Inlines             int64   `json:"inlines"`
	AchievedParallelism float64 `json:"achieved_parallelism"`
}

// Summary returns the compact JSON view of st.
func (st Stats) Summary() Summary {
	return Summary{
		WallSeconds:         st.Wall.Seconds(),
		Zoids:               st.Zoids(),
		TimeCuts:            st.TimeCuts,
		HyperCuts:           st.HyperCuts,
		SpaceCuts:           st.SpaceCuts,
		CircleCuts:          st.CircleCuts,
		Bases:               st.Bases,
		InteriorBases:       st.InteriorBases,
		BasePoints:          st.BasePoints,
		BaseVolP50:          st.BaseVolumePercentile(0.50),
		BaseVolP90:          st.BaseVolumePercentile(0.90),
		BaseVolP99:          st.BaseVolumePercentile(0.99),
		Spawns:              st.Spawns,
		Inlines:             st.Inlines,
		AchievedParallelism: st.AchievedParallelism(),
	}
}

// Delta returns the difference st - prev, the activity between two
// snapshots of the same recorder (e.g. one Stencil.Run).
func (st Stats) Delta(prev Stats) Stats {
	out := st
	out.Wall -= prev.Wall
	out.TimeCuts -= prev.TimeCuts
	out.HyperCuts -= prev.HyperCuts
	out.SpaceCuts -= prev.SpaceCuts
	out.CircleCuts -= prev.CircleCuts
	for k := range out.HyperByK {
		out.HyperByK[k] -= prev.HyperByK[k]
	}
	out.Fanout -= prev.Fanout
	out.Levels -= prev.Levels
	out.Bases -= prev.Bases
	out.InteriorBases -= prev.InteriorBases
	out.BasePoints -= prev.BasePoints
	for b := range out.BaseVolumeHist {
		out.BaseVolumeHist[b] -= prev.BaseVolumeHist[b]
	}
	out.Spawns -= prev.Spawns
	out.Inlines -= prev.Inlines
	out.WorkerBusy = append([]time.Duration(nil), st.WorkerBusy...)
	for i := range out.WorkerBusy {
		if i < len(prev.WorkerBusy) {
			out.WorkerBusy[i] -= prev.WorkerBusy[i]
		}
	}
	out.Events -= prev.Events
	out.SupEvents -= prev.SupEvents
	return out
}

// WriteReport renders the human-readable stats report.
func (st Stats) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "telemetry: wall %.3fs, %d worker track(s), %d events\n",
		st.Wall.Seconds(), st.Workers, st.Events)
	fmt.Fprintf(w, "decomposition: %d zoids — %d hyperspace cuts, %d time cuts, %d trisections, %d circle cuts, %d base cases\n",
		st.Zoids(), st.HyperCuts, st.TimeCuts, st.SpaceCuts, st.CircleCuts, st.Bases)
	if st.HyperCuts > 0 {
		fmt.Fprintf(w, "hyperspace cuts by dims cut:")
		for k, n := range st.HyperByK {
			if n > 0 {
				fmt.Fprintf(w, "  k=%d: %d", k, n)
			}
		}
		fmt.Fprintf(w, "  (avg fanout %.1f subzoids over avg %.1f levels)\n",
			float64(st.Fanout)/float64(st.HyperCuts), float64(st.Levels)/float64(st.HyperCuts))
	}
	fmt.Fprintf(w, "base cases: %d interior, %d boundary; %d point updates\n",
		st.InteriorBases, st.BoundaryBases(), st.BasePoints)
	if st.Bases > 0 {
		fmt.Fprintf(w, "base-case volume histogram (points per zoid):\n")
		lo, hi := 0, len(st.BaseVolumeHist)-1
		for lo < len(st.BaseVolumeHist) && st.BaseVolumeHist[lo] == 0 {
			lo++
		}
		for hi >= 0 && st.BaseVolumeHist[hi] == 0 {
			hi--
		}
		var max int64
		for b := lo; b <= hi; b++ {
			if st.BaseVolumeHist[b] > max {
				max = st.BaseVolumeHist[b]
			}
		}
		for b := lo; b <= hi; b++ {
			n := st.BaseVolumeHist[b]
			bar := ""
			if max > 0 {
				bar = strings.Repeat("#", int(40*n/max))
			}
			fmt.Fprintf(w, "  [2^%-2d, 2^%-2d): %8d %s\n", b, b+1, n, bar)
		}
		fmt.Fprintf(w, "base-case volume: avg %.0f, p50 ~%.0f, p90 ~%.0f, p99 ~%.0f points\n",
			st.AvgBaseVolume(), st.BaseVolumePercentile(0.50),
			st.BaseVolumePercentile(0.90), st.BaseVolumePercentile(0.99))
	}
	fmt.Fprintf(w, "scheduler: %d goroutines spawned, %d tasks inlined\n", st.Spawns, st.Inlines)
	if len(st.WorkerBusy) > 0 {
		fmt.Fprintf(w, "worker busy time:")
		for i, b := range st.WorkerBusy {
			fmt.Fprintf(w, "  w%d=%.3fs", i, b.Seconds())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "achieved parallelism: %.2f (busy %.3fs / wall %.3fs)\n",
		st.AchievedParallelism(), st.BusyTotal().Seconds(), st.Wall.Seconds())
	if st.SupEvents > 0 {
		fmt.Fprintf(w, "supervisor: %d decision events\n", st.SupEvents)
	}
}

// Report returns WriteReport's output as a string.
func (st Stats) Report() string {
	var sb strings.Builder
	st.WriteReport(&sb)
	return sb.String()
}
