package telemetry

import (
	"strings"
	"testing"
)

// TestReleaseClosesOpenSpans models a panic unwinding through the walker:
// begin events whose End calls were skipped must be closed on Release so
// the exported trace stays a balanced span tree.
func TestReleaseClosesOpenSpans(t *testing.T) {
	r := New()
	r.RunStarted()
	s := r.Acquire()
	s.HyperCut(2, 9, 3) // never ended
	s.TimeCut(8)        // never ended
	b := s.Base(50, true, 2)
	s.End(b)             // balanced pair
	s.Base(40, false, 2) // aborted base, never ended
	r.Release(s)
	r.RunFinished()

	// 4 begins + 4 ends after release-time closing.
	if got := len(s.events); got != 8 {
		t.Fatalf("event count = %d, want 8 (every span closed)", got)
	}
	begins, ends := 0, 0
	depth := 0
	for _, ev := range s.events {
		if ev.Begin {
			begins++
			depth++
		} else {
			ends++
			depth--
		}
		if depth < 0 {
			t.Fatal("end before begin")
		}
	}
	if begins != 4 || ends != 4 || depth != 0 {
		t.Fatalf("unbalanced: %d begins %d ends depth %d", begins, ends, depth)
	}

	// The aborted base's partial busy time was charged.
	st := r.Snapshot()
	if st.Bases != 2 {
		t.Fatalf("bases = %d, want 2", st.Bases)
	}

	var sb strings.Builder
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	trace := sb.String()
	if b, e := strings.Count(trace, `"ph":"B"`), strings.Count(trace, `"ph":"E"`); b != e {
		t.Fatalf("chrome trace unbalanced: %d B, %d E", b, e)
	}
}

// TestEndPopsNestedOpens checks the open-stack bookkeeping when End is
// called normally on nested spans: the stack must track exactly the
// unclosed prefix.
func TestEndPopsNestedOpens(t *testing.T) {
	r := New()
	s := r.Acquire()
	a := s.TimeCut(8)
	bIdx := s.Base(10, true, 1)
	s.End(bIdx)
	if len(s.open) != 1 {
		t.Fatalf("open stack = %v, want just the time cut", s.open)
	}
	s.End(a)
	if len(s.open) != 0 {
		t.Fatalf("open stack = %v, want empty", s.open)
	}
	r.Release(s)
	if got := len(s.events); got != 4 {
		t.Fatalf("release appended spurious ends: %d events", got)
	}
}
