package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

// TestSummary: the compact view carries the counters and derived values and
// marshals to JSON without loss.
func TestSummary(t *testing.T) {
	st := Stats{
		Wall:          2 * time.Second,
		TimeCuts:      10,
		HyperCuts:     4,
		SpaceCuts:     3,
		Bases:         20,
		InteriorBases: 15,
		BasePoints:    4000,
		Spawns:        8,
		Inlines:       12,
		WorkerBusy:    []time.Duration{3 * time.Second, time.Second},
	}
	st.BaseVolumeHist[7] = 20

	s := st.Summary()
	if s.Zoids != st.Zoids() {
		t.Fatalf("summary zoids %d, want %d", s.Zoids, st.Zoids())
	}
	if s.WallSeconds != 2 {
		t.Fatalf("wall seconds %f, want 2", s.WallSeconds)
	}
	if s.AchievedParallelism != 2 {
		t.Fatalf("achieved parallelism %f, want 2", s.AchievedParallelism)
	}
	if s.BaseVolP50 != st.BaseVolumePercentile(0.50) || s.BaseVolP99 != st.BaseVolumePercentile(0.99) {
		t.Fatalf("percentiles diverge from Stats: %+v", s)
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip changed summary: %+v vs %+v", back, s)
	}
}

// TestSummaryZero: an empty Stats produces a finite, all-zero summary — no
// NaN from the parallelism or percentile divisions.
func TestSummaryZero(t *testing.T) {
	s := Stats{}.Summary()
	if s != (Summary{}) {
		t.Fatalf("zero stats summary not zero: %+v", s)
	}
}
