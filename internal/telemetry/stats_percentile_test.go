package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestBaseVolumePercentileZeroGuard pins the zero-sample guard: percentile
// and average queries on an empty Stats return 0 instead of dividing by the
// empty total.
func TestBaseVolumePercentileZeroGuard(t *testing.T) {
	var st Stats
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := st.BaseVolumePercentile(q); got != 0 {
			t.Fatalf("empty stats percentile(%v) = %v, want 0", q, got)
		}
	}
	if got := st.AvgBaseVolume(); got != 0 {
		t.Fatalf("empty stats avg volume = %v, want 0", got)
	}
	// An empty report must also render without a division panic or NaN.
	if rep := st.Report(); strings.Contains(rep, "NaN") {
		t.Fatalf("empty report contains NaN:\n%s", rep)
	}
}

func TestBaseVolumePercentile(t *testing.T) {
	r := New()
	s := r.Acquire()
	// 9 bases of volume 64 (bucket 6) and 1 of volume 1024 (bucket 10).
	for i := 0; i < 9; i++ {
		s.End(s.Base(64, true, 1))
	}
	s.End(s.Base(1024, true, 1))
	r.Release(s)
	st := r.Snapshot()

	if p50 := st.BaseVolumePercentile(0.50); p50 != 1.5*64 {
		t.Fatalf("p50 = %v, want %v", p50, 1.5*64)
	}
	if p99 := st.BaseVolumePercentile(0.99); p99 != 1.5*1024 {
		t.Fatalf("p99 = %v, want %v", p99, 1.5*1024)
	}
	if avg := st.AvgBaseVolume(); avg != (9*64+1024)/10.0 {
		t.Fatalf("avg = %v, want %v", avg, (9*64+1024)/10.0)
	}
	rep := st.Report()
	if !strings.Contains(rep, "p50") || !strings.Contains(rep, "p99") {
		t.Fatalf("report missing percentile line:\n%s", rep)
	}
}

// TestChromeTraceSupInstantEvents pins the satellite contract: supervisor
// decisions export as Chrome-trace instant events ("ph":"i") on a dedicated
// supervisor track, alongside the span tree.
func TestChromeTraceSupInstantEvents(t *testing.T) {
	r := New()
	s := r.Acquire()
	s.End(s.Base(16, true, 1))
	r.Release(s)
	for _, ev := range []SupEvent{
		{Kind: SupSegmentStart, Segment: 0, Engine: "TRAP"},
		{Kind: SupSegmentFail, Segment: 0, Attempt: 1, Engine: "TRAP", Err: "kernel panic"},
		{Kind: SupRestore, Segment: 0, Attempt: 1},
		{Kind: SupDegrade, Segment: 0, Attempt: 1, Engine: "STRAP"},
		{Kind: SupSegmentDone, Segment: 0, Attempt: 2, Engine: "STRAP"},
	} {
		r.Supervisor(ev)
	}

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	instants := map[string]bool{}
	supTid := -1
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" && ev.Cat == "supervisor" {
			instants[ev.Name] = true
			if supTid == -1 {
				supTid = ev.Tid
			} else if ev.Tid != supTid {
				t.Fatalf("supervisor instants on multiple tracks: %d and %d", supTid, ev.Tid)
			}
		}
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if name, _ := ev.Args["name"].(string); name == "supervisor" && supTid >= 0 && ev.Tid != supTid {
				t.Fatalf("supervisor track metadata tid %d != instant tid %d", ev.Tid, supTid)
			}
		}
	}
	for _, want := range []string{"segment-start", "segment-fail", "restore", "degrade", "segment-done"} {
		if !instants[want] {
			t.Fatalf("trace missing supervisor instant %q; got %v\n%s", want, instants, buf.String())
		}
	}
}
