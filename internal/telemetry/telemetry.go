// Package telemetry is the execution-observability substrate for the TRAP
// engine: a low-overhead event recorder that captures every decomposition
// decision the walker makes — time cuts, hyperspace cuts with their 3^k
// fanout and k+1 dependency levels, STRAP trisections and circle cuts,
// base-case invocations with zoid volume and clone kind, and the
// scheduler's spawn-vs-inline choices — without perturbing the run it
// observes.
//
// The design has two halves:
//
//   - Recorder owns the clock epoch and a pool of Shards. Telemetry is
//     strictly opt-in: engines carry a *Recorder that is nil by default,
//     and every instrumentation point is guarded by a single pointer
//     check, so disabled runs execute the exact seed code path.
//
//   - Shard is a per-worker-goroutine event buffer plus counters. A
//     goroutine acquires a shard when it starts working and releases it
//     when it finishes; all recording then happens on goroutine-private
//     state, so the hot path is an append and a few integer adds with no
//     atomics and no lock contention. Shards are recycled through a free
//     list, so the shard count tracks the number of concurrently live
//     workers — which is exactly the "one track per worker" grouping the
//     Chrome-trace exporter wants.
//
// Aggregation (Snapshot) and export (WriteChromeTrace) must only run while
// the instrumented computation is quiescent — after Walker.Run returns,
// whose fork-join sync publishes every shard's writes.
package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// SpanKind identifies what a recorded span covers.
type SpanKind uint8

const (
	// SpanHyperCut is a TRAP hyperspace cut: k dimensions cut at once,
	// 3^k-ish subzoids processed in k+1 dependency levels (§3, Lemma 1).
	SpanHyperCut SpanKind = iota
	// SpanSpaceCut is a STRAP trisection along a single dimension.
	SpanSpaceCut
	// SpanCircleCut is a STRAP circle cut of a full periodic dimension.
	SpanCircleCut
	// SpanTimeCut is a cut at the midpoint of the time dimension.
	SpanTimeCut
	// SpanBase is a base-case invocation (interior or boundary clone).
	SpanBase
)

func (k SpanKind) String() string {
	switch k {
	case SpanHyperCut:
		return "hyperspace-cut"
	case SpanSpaceCut:
		return "space-cut"
	case SpanCircleCut:
		return "circle-cut"
	case SpanTimeCut:
		return "time-cut"
	case SpanBase:
		return "base"
	}
	return "unknown"
}

// Event is one begin or end marker of a span. Begin events carry the
// span's kind-specific arguments:
//
//	SpanHyperCut:  A0 = dims cut (k), A1 = subzoid fanout, A2 = levels
//	SpanSpaceCut:  A0 = dimension
//	SpanCircleCut: A0 = dimension
//	SpanTimeCut:   A0 = zoid height
//	SpanBase:      A0 = zoid volume (points), A1 = 1 if interior clone,
//	               A2 = zoid height
type Event struct {
	TS    int64 // nanoseconds since the recorder's epoch
	Kind  SpanKind
	Begin bool
	A0    int64
	A1    int64
	A2    int64
}

// MaxCutDims bounds the per-k hyperspace-cut counter array; it matches
// zoid.MaxDims without importing it (telemetry stays dependency-free).
const MaxCutDims = 8

// volumeBuckets is the number of power-of-two histogram buckets; 2^63
// points is beyond any addressable grid.
const volumeBuckets = 64

// Shard is the goroutine-private recording surface. A shard must only be
// used by the goroutine that acquired it, between Acquire and Release.
type Shard struct {
	id     int
	rec    *Recorder
	events []Event
	// open is the stack of begin-event indices with no matching End yet.
	// A panic unwinding through the walker skips End calls; Release closes
	// whatever remains so aborted runs still export balanced span trees.
	open []int

	timeCuts   int64
	hyperCuts  int64
	spaceCuts  int64
	circleCuts int64
	hyperByK   [MaxCutDims + 1]int64
	fanout     int64
	levels     int64

	bases         int64
	interiorBases int64
	basePoints    int64
	baseHist      [volumeBuckets]int64

	spawns  int64
	inlines int64
	busyNS  int64
}

// ID returns the shard's worker-track number.
func (s *Shard) ID() int { return s.id }

func (s *Shard) begin(kind SpanKind, a0, a1, a2 int64) int {
	idx := len(s.events)
	s.events = append(s.events, Event{TS: s.rec.now(), Kind: kind, Begin: true, A0: a0, A1: a1, A2: a2})
	s.open = append(s.open, idx)
	return idx
}

// End closes the span opened by the begin call that returned idx. For base
// spans it also accumulates the shard's busy time.
func (s *Shard) End(idx int) {
	// Pop the open stack down through idx; on the non-failing path the top
	// is exactly idx and this is a single pop.
	for n := len(s.open); n > 0 && s.open[n-1] >= idx; n-- {
		s.open = s.open[:n-1]
	}
	ev := s.events[idx]
	now := s.rec.now()
	s.events = append(s.events, Event{TS: now, Kind: ev.Kind})
	if ev.Kind == SpanBase {
		s.busyNS += now - ev.TS
	}
}

// closeOpenSpans emits End events for every span a panic left open,
// innermost first, charging any aborted base span's partial busy time.
func (s *Shard) closeOpenSpans() {
	for n := len(s.open); n > 0; n-- {
		ev := s.events[s.open[n-1]]
		now := s.rec.now()
		s.events = append(s.events, Event{TS: now, Kind: ev.Kind})
		if ev.Kind == SpanBase {
			s.busyNS += now - ev.TS
		}
	}
	s.open = s.open[:0]
}

// HyperCut records the start of a hyperspace cut over k dimensions that
// produced fanout subzoids in levels dependency levels.
func (s *Shard) HyperCut(k, fanout, levels int) int {
	s.hyperCuts++
	if k >= 0 && k <= MaxCutDims {
		s.hyperByK[k]++
	}
	s.fanout += int64(fanout)
	s.levels += int64(levels)
	return s.begin(SpanHyperCut, int64(k), int64(fanout), int64(levels))
}

// SpaceCut records the start of a STRAP cut along dim; circle selects the
// periodic full-extent variant.
func (s *Shard) SpaceCut(dim int, circle bool) int {
	if circle {
		s.circleCuts++
		return s.begin(SpanCircleCut, int64(dim), 0, 0)
	}
	s.spaceCuts++
	return s.begin(SpanSpaceCut, int64(dim), 0, 0)
}

// TimeCut records the start of a time cut of a height-h zoid.
func (s *Shard) TimeCut(h int) int {
	s.timeCuts++
	return s.begin(SpanTimeCut, int64(h), 0, 0)
}

// Base records the start of a base-case invocation over volume space-time
// points of a height-h zoid, dispatched to the interior or boundary clone.
func (s *Shard) Base(volume int64, interior bool, h int) int {
	s.bases++
	s.basePoints += volume
	s.baseHist[log2Bucket(volume)]++
	in := int64(0)
	if interior {
		s.interiorBases++
		in = 1
	}
	return s.begin(SpanBase, volume, in, int64(h))
}

// Spawned and Inlined implement sched.Counter: they count the scheduler's
// decisions to run tasks on fresh goroutines vs. the current one.
func (s *Shard) Spawned(n int) { s.spawns += int64(n) }
func (s *Shard) Inlined(n int) { s.inlines += int64(n) }

// log2Bucket returns the histogram bucket of v: floor(log2(v)), clamped.
func log2Bucket(v int64) int {
	b := 0
	for v > 1 && b < volumeBuckets-1 {
		v >>= 1
		b++
	}
	return b
}

// SupKind classifies one supervisor decision (see SupEvent). The
// supervision layer in internal/resilience emits these; telemetry only
// stores and exports them, keeping the package dependency-free.
type SupKind uint8

const (
	// SupSegmentStart marks the beginning of a time segment.
	SupSegmentStart SupKind = iota
	// SupSegmentDone marks a segment that completed (and, when enabled,
	// verified) successfully.
	SupSegmentDone
	// SupSegmentFail marks one failed attempt at a segment: kernel panic,
	// engine panic, deadline blowout, or verification mismatch.
	SupSegmentFail
	// SupCheckpoint marks an inter-segment checkpoint.
	SupCheckpoint
	// SupRestore marks a rollback to the segment's checkpoint before a retry.
	SupRestore
	// SupBackoff marks a jittered exponential-backoff wait before a retry.
	SupBackoff
	// SupDegrade marks a step down the engine degradation ladder.
	SupDegrade
	// SupVerifyOK marks a shadow verification that matched.
	SupVerifyOK
	// SupVerifyMismatch marks a shadow verification that caught divergence.
	SupVerifyMismatch
	// SupGiveUp marks attempt-budget exhaustion: the supervisor returns the
	// segment's last error to the caller.
	SupGiveUp
	// SupSpill marks a segment checkpoint persisted to the durable spill
	// journal (or, with Err set, a spill that failed; the run continues
	// with durability degraded).
	SupSpill
	// SupResume marks a cross-process resume decision: a fresh process
	// restored the newest good journal entry (Err empty; Attempt carries the
	// restored resume cursor) or fell back to a cold start (Err describes
	// why).
	SupResume
)

func (k SupKind) String() string {
	switch k {
	case SupSegmentStart:
		return "segment-start"
	case SupSegmentDone:
		return "segment-done"
	case SupSegmentFail:
		return "segment-fail"
	case SupCheckpoint:
		return "checkpoint"
	case SupRestore:
		return "restore"
	case SupBackoff:
		return "retry-backoff"
	case SupDegrade:
		return "degrade"
	case SupVerifyOK:
		return "verify-ok"
	case SupVerifyMismatch:
		return "verify-mismatch"
	case SupGiveUp:
		return "give-up"
	case SupSpill:
		return "spill"
	case SupResume:
		return "resume"
	}
	return "unknown"
}

// SupEvent is one typed, timestamped supervisor decision. Events are rare
// (a handful per segment), so they are recorded under the recorder's lock
// rather than through shards.
type SupEvent struct {
	TS      int64 // nanoseconds since the recorder's epoch; stamped on record
	Kind    SupKind
	Segment int           // segment index, 0-based
	Attempt int           // attempt number within the segment, 1-based
	Engine  string        // engine in effect (TRAP, STRAP, LOOPS)
	Delay   time.Duration // backoff delay (SupBackoff) or watchdog timeout
	Err     string        // failure description, when applicable
}

// String renders the event as a one-line log entry:
//
//	+12.345ms seg 3 attempt 2 [STRAP] retry-backoff delay=20ms
func (e SupEvent) String() string {
	s := fmt.Sprintf("%+9.3fms seg %d attempt %d [%s] %s",
		float64(e.TS)/1e6, e.Segment, e.Attempt, e.Engine, e.Kind)
	if e.Delay != 0 {
		s += fmt.Sprintf(" delay=%v", e.Delay)
	}
	if e.Err != "" {
		s += ": " + e.Err
	}
	return s
}

// Recorder owns the epoch clock, the shard pool, and the wall-time
// accounting. The zero value is not usable; call New.
type Recorder struct {
	epoch time.Time

	mu       sync.Mutex
	shards   []*Shard
	free     []*Shard
	sup      []SupEvent
	wallNS   int64
	runStart time.Time
	running  int
}

// New creates an empty recorder. Pass it to the engine (via
// pochoir.Options.Telemetry or core.Walker.Rec) to enable recording.
func New() *Recorder {
	return &Recorder{epoch: time.Now()}
}

func (r *Recorder) now() int64 { return time.Since(r.epoch).Nanoseconds() }

// Acquire hands out a worker shard, recycling released ones so shard ids
// track concurrently live workers. It is called at goroutine spawn
// boundaries only, never per event.
func (r *Recorder) Acquire() *Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.free); n > 0 {
		s := r.free[n-1]
		r.free = r.free[:n-1]
		return s
	}
	s := &Shard{id: len(r.shards), rec: r}
	r.shards = append(r.shards, s)
	return s
}

// Release returns a shard to the pool when its goroutine finishes. Spans
// the goroutine left open — only possible when a panic unwound through the
// instrumented recursion — are closed first, so every released shard holds
// a balanced event sequence (a no-op on the ordinary path).
func (r *Recorder) Release(s *Shard) {
	s.closeOpenSpans()
	r.mu.Lock()
	r.free = append(r.free, s)
	r.mu.Unlock()
}

// RunStarted marks the beginning of an instrumented run; wall time
// accumulates between RunStarted and RunFinished (nested pairs count the
// outermost interval once).
func (r *Recorder) RunStarted() {
	r.mu.Lock()
	if r.running == 0 {
		r.runStart = time.Now()
	}
	r.running++
	r.mu.Unlock()
}

// RunFinished closes the interval opened by RunStarted.
func (r *Recorder) RunFinished() {
	r.mu.Lock()
	r.running--
	if r.running == 0 {
		r.wallNS += time.Since(r.runStart).Nanoseconds()
	}
	r.mu.Unlock()
}

// Supervisor records one supervisor decision event, stamping it with the
// recorder's epoch clock. Unlike span recording it may be called while an
// instrumented run executes on other goroutines: supervisor events live in
// their own slice under the recorder lock.
func (r *Recorder) Supervisor(ev SupEvent) {
	r.mu.Lock()
	ev.TS = r.now()
	r.sup = append(r.sup, ev)
	r.mu.Unlock()
}

// SupervisorEvents returns a copy of the recorded supervisor decisions in
// order.
func (r *Recorder) SupervisorEvents() []SupEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SupEvent(nil), r.sup...)
}

// Workers returns the number of distinct worker shards created so far.
func (r *Recorder) Workers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.shards)
}

// Snapshot aggregates all shards into cumulative Stats. It must only be
// called while no instrumented run is executing.
func (r *Recorder) Snapshot() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Wall:       time.Duration(r.wallNS),
		Workers:    len(r.shards),
		WorkerBusy: make([]time.Duration, len(r.shards)),
	}
	for i, s := range r.shards {
		st.TimeCuts += s.timeCuts
		st.HyperCuts += s.hyperCuts
		st.SpaceCuts += s.spaceCuts
		st.CircleCuts += s.circleCuts
		for k := range s.hyperByK {
			st.HyperByK[k] += s.hyperByK[k]
		}
		st.Fanout += s.fanout
		st.Levels += s.levels
		st.Bases += s.bases
		st.InteriorBases += s.interiorBases
		st.BasePoints += s.basePoints
		for b := range s.baseHist {
			st.BaseVolumeHist[b] += s.baseHist[b]
		}
		st.Spawns += s.spawns
		st.Inlines += s.inlines
		st.WorkerBusy[i] = time.Duration(s.busyNS)
		st.Events += int64(len(s.events))
	}
	st.SupEvents = int64(len(r.sup))
	return st
}
