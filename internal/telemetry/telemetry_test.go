package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestShardRecordingAndSnapshot(t *testing.T) {
	r := New()
	r.RunStarted()
	s := r.Acquire()
	h := s.HyperCut(2, 9, 3)
	tc := s.TimeCut(8)
	b := s.Base(100, true, 4)
	s.End(b)
	b2 := s.Base(28, false, 4)
	s.End(b2)
	s.End(tc)
	s.End(h)
	s.Spawned(3)
	s.Inlined(1)
	r.Release(s)
	r.RunFinished()

	st := r.Snapshot()
	if st.HyperCuts != 1 || st.HyperByK[2] != 1 || st.Fanout != 9 || st.Levels != 3 {
		t.Fatalf("hyper-cut counters wrong: %+v", st)
	}
	if st.TimeCuts != 1 || st.Bases != 2 || st.InteriorBases != 1 || st.BoundaryBases() != 1 {
		t.Fatalf("cut/base counters wrong: %+v", st)
	}
	if st.BasePoints != 128 {
		t.Fatalf("BasePoints = %d, want 128", st.BasePoints)
	}
	if st.BaseVolumeHist[6] != 1 || st.BaseVolumeHist[4] != 1 {
		t.Fatalf("histogram wrong: 2^6 bucket=%d 2^4 bucket=%d", st.BaseVolumeHist[6], st.BaseVolumeHist[4])
	}
	if st.Spawns != 3 || st.Inlines != 1 {
		t.Fatalf("spawn counters wrong: %+v", st)
	}
	if st.Zoids() != 4 {
		t.Fatalf("Zoids() = %d, want 4", st.Zoids())
	}
	if st.Events != 8 {
		t.Fatalf("Events = %d, want 8", st.Events)
	}
	if st.Wall <= 0 {
		t.Fatal("wall time not recorded")
	}
	if st.BusyTotal() <= 0 || st.AchievedParallelism() <= 0 {
		t.Fatal("busy time not recorded")
	}
}

func TestShardReuse(t *testing.T) {
	r := New()
	a := r.Acquire()
	b := r.Acquire()
	if a.ID() == b.ID() {
		t.Fatal("concurrent shards must have distinct ids")
	}
	r.Release(b)
	c := r.Acquire()
	if c != b {
		t.Fatal("released shard should be recycled")
	}
	r.Release(a)
	r.Release(c)
	if r.Workers() != 2 {
		t.Fatalf("Workers = %d, want 2", r.Workers())
	}
}

func TestLog2Bucket(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for v, want := range cases {
		if got := log2Bucket(v); got != want {
			t.Errorf("log2Bucket(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestStatsDelta(t *testing.T) {
	r := New()
	s := r.Acquire()
	s.End(s.Base(10, true, 1))
	pre := r.Snapshot()
	s.End(s.Base(20, false, 1))
	s.Spawned(2)
	r.Release(s)
	d := r.Snapshot().Delta(pre)
	if d.Bases != 1 || d.BasePoints != 20 || d.InteriorBases != 0 || d.Spawns != 2 {
		t.Fatalf("delta wrong: %+v", d)
	}
	if d.BaseVolumeHist[4] != 1 || d.BaseVolumeHist[3] != 0 {
		t.Fatal("delta histogram wrong")
	}
}

func TestReportRenders(t *testing.T) {
	r := New()
	r.RunStarted()
	s := r.Acquire()
	h := s.HyperCut(1, 3, 2)
	s.End(s.Base(64, true, 2))
	s.End(h)
	r.Release(s)
	r.RunFinished()
	rep := r.Snapshot().Report()
	for _, want := range []string{"hyperspace cuts", "point updates", "achieved parallelism", "volume histogram"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// chromeEvent mirrors the fields the tests verify.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
}

func decodeTrace(t *testing.T, data []byte) []chromeEvent {
	t.Helper()
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return doc.TraceEvents
}

// checkBalanced verifies every tid's B/E events nest and balance.
func checkBalanced(t *testing.T, evs []chromeEvent) {
	t.Helper()
	stacks := map[int][]string{}
	for _, ev := range evs {
		switch ev.Ph {
		case "B":
			stacks[ev.Tid] = append(stacks[ev.Tid], ev.Name)
		case "E":
			st := stacks[ev.Tid]
			if len(st) == 0 {
				t.Fatalf("tid %d: E %q with empty stack", ev.Tid, ev.Name)
			}
			if st[len(st)-1] != ev.Name {
				t.Fatalf("tid %d: E %q does not match open span %q", ev.Tid, ev.Name, st[len(st)-1])
			}
			stacks[ev.Tid] = st[:len(st)-1]
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("tid %d: %d unclosed spans %v", tid, len(st), st)
		}
	}
}

func TestChromeTraceBalancedJSON(t *testing.T) {
	r := New()
	s := r.Acquire()
	h := s.HyperCut(2, 9, 3)
	s.End(s.Base(50, false, 2))
	tc := s.TimeCut(4)
	s.End(s.Base(30, true, 2))
	s.End(tc)
	s.End(h)
	r.Release(s)
	s2 := r.Acquire() // recycled: same track
	sc := s2.SpaceCut(1, false)
	cc := s2.SpaceCut(0, true)
	s2.End(cc)
	s2.End(sc)
	r.Release(s2)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())
	checkBalanced(t, evs)
	var b, e int
	names := map[string]bool{}
	for _, ev := range evs {
		switch ev.Ph {
		case "B":
			b++
			names[ev.Name] = true
		case "E":
			e++
		}
	}
	if b != e || b != 6 {
		t.Fatalf("B=%d E=%d, want 6 balanced pairs", b, e)
	}
	for _, want := range []string{"hyperspace-cut", "base", "time-cut", "space-cut", "circle-cut"} {
		if !names[want] {
			t.Fatalf("trace missing span kind %q", want)
		}
	}
}

// TestConcurrentShards exercises the acquire/record/release cycle from many
// goroutines at once; run under -race this validates the sharding contract.
func TestConcurrentShards(t *testing.T) {
	r := New()
	r.RunStarted()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := r.Acquire()
				h := s.HyperCut(1, 3, 2)
				s.End(s.Base(int64(i+1), i%2 == 0, 1))
				s.End(h)
				s.Spawned(1)
				r.Release(s)
			}
		}()
	}
	wg.Wait()
	r.RunFinished()
	st := r.Snapshot()
	if st.Bases != 16*50 || st.HyperCuts != 16*50 || st.Spawns != 16*50 {
		t.Fatalf("lost events: %+v", st)
	}
	if st.Workers < 1 || st.Workers > 16 {
		t.Fatalf("Workers = %d, want in [1,16]", st.Workers)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, decodeTrace(t, buf.Bytes()))
}
