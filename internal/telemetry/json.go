package telemetry

import (
	"encoding/json"
	"fmt"
	"time"
)

// MarshalJSON renders the kind as its stable String() name, so supervisor
// decision logs embedded in post-mortem bundles and /statusz read as
// "segment-fail" rather than an opaque code.
func (k SupKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses the string name back (bundles round-trip through
// cmd/blackbox).
func (k *SupKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for c := SupSegmentStart; c <= SupResume; c++ {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown supervisor event kind %q", s)
}

// supEventJSON fixes SupEvent's wire field names independently of the Go
// field names, so bundles stay parseable across refactors.
type supEventJSON struct {
	TS      int64   `json:"ts_ns"`
	Kind    SupKind `json:"kind"`
	Segment int     `json:"segment"`
	Attempt int     `json:"attempt,omitempty"`
	Engine  string  `json:"engine,omitempty"`
	DelayNS int64   `json:"delay_ns,omitempty"`
	Err     string  `json:"error,omitempty"`
}

// MarshalJSON renders the event with stable field names and the kind as a
// string; the one-line String() rendering is unchanged.
func (e SupEvent) MarshalJSON() ([]byte, error) {
	return json.Marshal(supEventJSON{
		TS: e.TS, Kind: e.Kind, Segment: e.Segment, Attempt: e.Attempt,
		Engine: e.Engine, DelayNS: e.Delay.Nanoseconds(), Err: e.Err,
	})
}

// UnmarshalJSON reverses MarshalJSON.
func (e *SupEvent) UnmarshalJSON(data []byte) error {
	var j supEventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*e = SupEvent{
		TS: j.TS, Kind: j.Kind, Segment: j.Segment, Attempt: j.Attempt,
		Engine: j.Engine, Delay: time.Duration(j.DelayNS), Err: j.Err,
	}
	return nil
}
