package benchlab

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pochoir/internal/profile"
)

// Gate is the noise-aware regression criterion. A configuration is flagged
// only when the median shift clears BOTH thresholds:
//
//   - the relative shift |new-old|/old exceeds RelThreshold, AND
//   - the absolute shift exceeds MADFactor x the larger of the two runs'
//     MADs (so a shift indistinguishable from run-to-run jitter never
//     trips the gate, however large the relative number looks on a
//     microsecond-scale benchmark).
//
// With both MADs zero (synthetic or single-shot data) the MAD clause is
// vacuous and the relative threshold decides alone.
type Gate struct {
	RelThreshold float64
	MADFactor    float64
}

// DefaultGate flags shifts above 10% that also exceed 3 MADs.
func DefaultGate() Gate { return Gate{RelThreshold: 0.10, MADFactor: 3} }

// exceeds reports whether a median shift of delta (positive = slower) is
// distinguishable from noise under the gate.
func (g Gate) exceeds(old, delta, oldMAD, newMAD float64) bool {
	if old <= 0 || delta <= 0 {
		return false
	}
	if delta/old <= g.RelThreshold {
		return false
	}
	mad := oldMAD
	if newMAD > mad {
		mad = newMAD
	}
	return delta > g.MADFactor*mad
}

// Delta is the comparison of one configuration across two reports.
type Delta struct {
	Benchmark string  `json:"benchmark"`
	Engine    string  `json:"engine"`
	OldMedian float64 `json:"old_median_seconds"`
	NewMedian float64 `json:"new_median_seconds"`
	OldMAD    float64 `json:"old_mad_seconds"`
	NewMAD    float64 `json:"new_mad_seconds"`
	// Rel is (new-old)/old: positive = slower.
	Rel float64 `json:"rel"`
	// Regression / Improvement report whether the shift cleared the gate
	// in the slower / faster direction.
	Regression  bool `json:"regression"`
	Improvement bool `json:"improvement"`
	// Missing marks a configuration present in only one report: "old"
	// (dropped from the new run) or "new" (added since the baseline).
	Missing string `json:"missing,omitempty"`
	// ProfileWarnings are warn-only hot-path shifts from the continuous-
	// profiling sentinel — kernel share falling or walker overhead rising
	// beyond sampling noise. They never flip Regression (wall clock owns
	// the gate); they explain it, or flag erosion the medians hide. Empty
	// when either report lacks the profile signal (e.g. an older baseline).
	ProfileWarnings []string `json:"profile_warnings,omitempty"`
}

// Compare matches the two reports' runs by benchmark/engine and applies the
// gate to each pair. Configurations present in only one report are included
// with Missing set. The result is sorted: regressions first (largest
// relative shift first), then improvements, then the rest.
func Compare(old, new *Report, g Gate) []Delta {
	oldRuns := old.ByKey()
	newRuns := new.ByKey()
	keys := make([]string, 0, len(oldRuns)+len(newRuns))
	for k := range oldRuns {
		keys = append(keys, k)
	}
	for k := range newRuns {
		if _, ok := oldRuns[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	out := make([]Delta, 0, len(keys))
	for _, k := range keys {
		o, haveOld := oldRuns[k]
		n, haveNew := newRuns[k]
		switch {
		case !haveNew:
			out = append(out, Delta{
				Benchmark: o.Benchmark, Engine: o.Engine,
				OldMedian: o.Wall.MedianSeconds, OldMAD: o.Wall.MADSeconds,
				Missing: "new",
			})
		case !haveOld:
			out = append(out, Delta{
				Benchmark: n.Benchmark, Engine: n.Engine,
				NewMedian: n.Wall.MedianSeconds, NewMAD: n.Wall.MADSeconds,
				Missing: "old",
			})
		default:
			d := Delta{
				Benchmark: n.Benchmark, Engine: n.Engine,
				OldMedian: o.Wall.MedianSeconds, NewMedian: n.Wall.MedianSeconds,
				OldMAD: o.Wall.MADSeconds, NewMAD: n.Wall.MADSeconds,
			}
			if d.OldMedian > 0 {
				d.Rel = (d.NewMedian - d.OldMedian) / d.OldMedian
			}
			d.Regression = g.exceeds(d.OldMedian, d.NewMedian-d.OldMedian, d.OldMAD, d.NewMAD)
			d.Improvement = g.exceeds(d.NewMedian, d.OldMedian-d.NewMedian, d.OldMAD, d.NewMAD)
			d.ProfileWarnings = profileWarnings(o.Profile, n.Profile)
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return rank(out[i]) < rank(out[j]) ||
			rank(out[i]) == rank(out[j]) && out[i].Rel > out[j].Rel
	})
	return out
}

func rank(d Delta) int {
	switch {
	case d.Regression:
		return 0
	case d.Improvement:
		return 1
	case d.Missing != "":
		return 2
	default:
		return 3
	}
}

// profileWarnings runs the hot-path sentinel over the two profile signals,
// nil-safe on both sides (baselines recorded before the signal existed
// simply produce no warnings).
func profileWarnings(old, new *ProfileSignal) []string {
	if old == nil || new == nil {
		return nil
	}
	toReport := func(s *ProfileSignal) *profile.Report {
		return &profile.Report{
			CPUSeconds:  s.CPUSeconds,
			Samples:     s.Samples,
			KernelShare: s.KernelShare,
			WalkerShare: s.WalkerShare,
			PhaseShares: s.PhaseShares,
		}
	}
	var out []string
	for _, f := range (profile.Sentinel{}).Compare(toReport(old), toReport(new)) {
		out = append(out, f.Message)
	}
	return out
}

// Regressions filters the comparison down to gated regressions.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

func (d Delta) verdict() string {
	switch {
	case d.Missing == "new":
		return "GONE"
	case d.Missing == "old":
		return "NEW"
	case d.Regression:
		return "REGRESSION"
	case d.Improvement:
		return "improved"
	default:
		return "ok"
	}
}

// WriteText renders the comparison as an aligned terminal table.
func WriteText(w io.Writer, deltas []Delta) {
	fmt.Fprintf(w, "%-12s %-6s %12s %12s %8s %10s  %s\n",
		"benchmark", "engine", "old median", "new median", "delta", "noise", "verdict")
	for _, d := range deltas {
		if d.Missing != "" {
			fmt.Fprintf(w, "%-12s %-6s %12s %12s %8s %10s  %s\n",
				d.Benchmark, d.Engine, ms(d.OldMedian), ms(d.NewMedian), "-", "-", d.verdict())
			continue
		}
		mad := d.OldMAD
		if d.NewMAD > mad {
			mad = d.NewMAD
		}
		fmt.Fprintf(w, "%-12s %-6s %12s %12s %+7.1f%% %10s  %s\n",
			d.Benchmark, d.Engine, ms(d.OldMedian), ms(d.NewMedian), 100*d.Rel,
			"±"+ms(mad), d.verdict())
		for _, warn := range d.ProfileWarnings {
			fmt.Fprintf(w, "%-12s %-6s   profile warning: %s\n", "", "", warn)
		}
	}
}

// WriteMarkdown renders the comparison as a GitHub-flavored markdown table
// (for CI job summaries).
func WriteMarkdown(w io.Writer, deltas []Delta) {
	fmt.Fprintln(w, "| benchmark | engine | old median | new median | delta | noise (max MAD) | verdict |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|---:|---|")
	for _, d := range deltas {
		if d.Missing != "" {
			fmt.Fprintf(w, "| %s | %s | %s | %s | - | - | %s |\n",
				d.Benchmark, d.Engine, ms(d.OldMedian), ms(d.NewMedian), d.verdict())
			continue
		}
		mad := d.OldMAD
		if d.NewMAD > mad {
			mad = d.NewMAD
		}
		verdict := d.verdict()
		if d.Regression {
			verdict = "**" + verdict + "**"
		}
		if len(d.ProfileWarnings) > 0 {
			verdict += " ⚠ " + strings.Join(d.ProfileWarnings, "; ")
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %+.1f%% | ±%s | %s |\n",
			d.Benchmark, d.Engine, ms(d.OldMedian), ms(d.NewMedian), 100*d.Rel, ms(mad), verdict)
	}
}

// ms formats seconds as milliseconds with sensible precision.
func ms(sec float64) string {
	if sec == 0 {
		return "-"
	}
	v := sec * 1e3
	switch {
	case v < 10:
		return fmt.Sprintf("%.2fms", v)
	case v < 1000:
		return fmt.Sprintf("%.1fms", v)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}
