// Package benchlab is the performance observatory: a harness that executes
// the paper's benchmark suite across the decomposition engines and fuses
// five observability signals per configuration into one structured record —
//
//   - wall clock: a calibrated repetition loop with warm-up, summarized by
//     the robust median and the median absolute deviation (MAD);
//   - execution telemetry: one additional instrumented repetition captures
//     the decomposition's RunStats (zoids, cut kinds, base-case volume
//     percentiles, achieved parallelism);
//   - work/span analysis: the cilkview analyzer replays the decomposition
//     analytically and reports work, span, and parallelism;
//   - cache simulation: the ideal-cache model replays the memory trace of a
//     scaled-down copy of the workload and reports the miss ratio;
//   - CPU attribution: one more repetition runs inside a continuous-profiling
//     capture window, and the decoded profile reports the kernel share and
//     the walker's decomposition overhead — the hot-path shares the
//     regression sentinel (internal/profile) diffs against the baseline.
//
// Reports are schema-versioned JSON with host/commit provenance, so runs
// recorded on different days or machines are comparable, and the diff gate
// (diff.go) can tell a real regression from run-to-run noise.
package benchlab

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pochoir"
	"pochoir/internal/benchdef"
	"pochoir/internal/cachesim"
	"pochoir/internal/cilkview"
	"pochoir/internal/core"
	"pochoir/internal/stencils"
	"pochoir/internal/telemetry"
)

// Schema identifies the report format; Version counts compatible revisions
// of it. A reader must refuse a report whose Schema string differs.
const (
	Schema  = "pochoir-benchlab/v1"
	Version = 1
)

// Suite is the paper benchmark suite the lab executes, in Fig. 3 row order
// (the Fig. 5 Berkeley kernels last). The names key both the stencils
// registry and the benchdef workload tables.
var Suite = []string{
	"Heat 2", "Heat 2p", "Heat 4", "Life 2p", "Wave 3", "LBM 3",
	"APOP", "3D 7-point", "3D 27-point",
}

// Engines are the decomposition engines every benchmark runs under:
// hyperspace cuts (TRAP, the paper's contribution), serial space cuts
// (STRAP, the Frigo–Strumpen baseline), and the loop-nest sweep (LOOPS).
var Engines = []core.Algorithm{core.TRAP, core.STRAP, core.LOOPS}

// HostInfo records where a report was produced.
type HostInfo struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
}

// Host describes the current machine.
func Host() HostInfo {
	return HostInfo{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// WallStats summarizes the calibrated repetition loop of one configuration.
// Median and MAD are the robust location/scale pair the regression gate
// reasons about; min and max bound the observed spread.
type WallStats struct {
	Reps          int     `json:"reps"`
	MedianSeconds float64 `json:"median_seconds"`
	MADSeconds    float64 `json:"mad_seconds"`
	MinSeconds    float64 `json:"min_seconds"`
	MaxSeconds    float64 `json:"max_seconds"`
	// MedianMpts is the median throughput in millions of point updates per
	// second — the Fig. 5 unit.
	MedianMpts float64 `json:"median_mpts"`
}

// CacheSignal is the ideal-cache simulation signal. The trace replays a
// scaled-down copy of the workload (TracedSizes/TracedSteps) so the
// simulation stays tractable; the cache stats are for that traced box.
type CacheSignal struct {
	cachesim.Stats
	TracedSizes []int `json:"traced_sizes"`
	TracedSteps int   `json:"traced_steps"`
}

// ProfileSignal is the CPU-attribution signal: one repetition runs inside a
// continuous-profiling capture window and the decoded samples report where
// the CPU went. KernelShare/WalkerShare are the hot-path fractions the
// regression sentinel watches; PhaseShares carries the full phase split.
type ProfileSignal struct {
	CPUSeconds  float64            `json:"cpu_seconds"`
	Samples     int64              `json:"samples"`
	KernelShare float64            `json:"kernel_share"`
	WalkerShare float64            `json:"walker_share"`
	PhaseShares map[string]float64 `json:"phase_shares,omitempty"`
}

// Run is the fused record of one benchmark x engine configuration.
type Run struct {
	Benchmark string `json:"benchmark"`
	Engine    string `json:"engine"`
	Sizes     []int  `json:"sizes"`
	Steps     int    `json:"steps"`
	Updates   int64  `json:"updates"`
	// Periodic is the benchmark's boundary wrap per dimension (provenance;
	// the unified decomposition is identical either way). Omitted when
	// nonperiodic everywhere.
	Periodic []bool `json:"periodic,omitempty"`

	Wall      WallStats             `json:"wall"`
	Telemetry *telemetry.Summary    `json:"telemetry,omitempty"`
	Cilkview  *cilkview.MetricsView `json:"cilkview,omitempty"`
	CacheSim  *CacheSignal          `json:"cachesim,omitempty"`
	Profile   *ProfileSignal        `json:"profile,omitempty"`
}

// Key returns the identity a baseline comparison matches runs on.
func (r Run) Key() string { return r.Benchmark + "/" + r.Engine }

// Report is the schema-versioned document a lab session produces.
type Report struct {
	Schema    string   `json:"schema"`
	Version   int      `json:"version"`
	CreatedAt string   `json:"created_at,omitempty"` // RFC 3339
	Host      HostInfo `json:"host"`
	Commit    string   `json:"commit,omitempty"`
	Profile   string   `json:"profile"`
	Runs      []Run    `json:"runs"`
}

// ByKey indexes the report's runs by Run.Key.
func (rep *Report) ByKey() map[string]Run {
	out := make(map[string]Run, len(rep.Runs))
	for _, r := range rep.Runs {
		out[r.Key()] = r
	}
	return out
}

// Config controls a lab session.
type Config struct {
	// Profile selects the workload table: "quick" (smoke-test sizes) or
	// "full" (the go-test bench sizes).
	Profile string
	// Benchmarks restricts the suite to the named benchmarks; nil runs all.
	Benchmarks []string
	// Engines restricts the engine sweep; nil runs all three.
	Engines []core.Algorithm
	// Budget is the target total measuring time per configuration; the
	// calibrator picks the repetition count from it. Zero selects the
	// profile default (300ms quick, 2s full).
	Budget time.Duration
	// MaxReps caps the calibrated repetition count (min is always 3).
	// Zero selects the profile default (8 quick, 20 full).
	MaxReps int
	// SkipSlowSignals drops the instrumented telemetry repetition and the
	// cache-trace simulation, measuring wall clock and cilkview only.
	SkipSlowSignals bool
	// Logf, when non-nil, receives one progress line per configuration.
	Logf func(format string, args ...any)
}

func (c *Config) defaults() error {
	switch c.Profile {
	case "", "quick":
		c.Profile = "quick"
		if c.Budget == 0 {
			c.Budget = 300 * time.Millisecond
		}
		if c.MaxReps == 0 {
			c.MaxReps = 8
		}
	case "full":
		if c.Budget == 0 {
			c.Budget = 2 * time.Second
		}
		if c.MaxReps == 0 {
			c.MaxReps = 20
		}
	default:
		return fmt.Errorf("benchlab: unknown profile %q (want quick or full)", c.Profile)
	}
	if c.Benchmarks == nil {
		c.Benchmarks = Suite
	}
	if c.Engines == nil {
		c.Engines = Engines
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// workload resolves a benchmark's space-time box for the profile.
func (c *Config) workload(name string) (benchdef.Workload, bool) {
	if c.Profile == "full" {
		return benchdef.Bench(name)
	}
	return benchdef.Quick(name)
}

// Collect executes the configured suite and returns the fused report.
func Collect(cfg Config) (*Report, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rep := &Report{
		Schema:    Schema,
		Version:   Version,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Host:      Host(),
		Commit:    gitCommit(),
		Profile:   cfg.Profile,
	}
	for _, name := range cfg.Benchmarks {
		f, ok := stencils.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("benchlab: unknown benchmark %q", name)
		}
		w, ok := cfg.workload(name)
		if !ok {
			return nil, fmt.Errorf("benchlab: no %s workload for %q", cfg.Profile, name)
		}
		for _, alg := range cfg.Engines {
			run, err := collectOne(&cfg, f, w, alg)
			if err != nil {
				return nil, fmt.Errorf("benchlab: %s/%v: %w", name, alg, err)
			}
			rep.Runs = append(rep.Runs, run)
			cfg.Logf("%-12s %-6s median %8.1fms  mad %6.2fms  reps %d",
				name, alg, run.Wall.MedianSeconds*1e3, run.Wall.MADSeconds*1e3, run.Wall.Reps)
		}
	}
	return rep, nil
}

// collectOne measures one benchmark x engine configuration: the calibrated
// wall-clock loop on uninstrumented repetitions, then the three analytical
// and instrumented signals.
func collectOne(cfg *Config, f stencils.Factory, w benchdef.Workload, alg core.Algorithm) (Run, error) {
	job := func() stencils.Job {
		return f.New(w.Sizes, w.Steps).Pochoir(pochoir.Options{Algorithm: alg})
	}
	wall, err := measure(job, cfg.Budget, cfg.MaxReps)
	if err != nil {
		return Run{}, err
	}
	updates := w.Updates()
	if wall.MedianSeconds > 0 {
		wall.MedianMpts = float64(updates) / wall.MedianSeconds / 1e6
	}
	run := Run{
		Benchmark: f.Name,
		Engine:    alg.String(),
		Sizes:     append([]int(nil), w.Sizes...),
		Steps:     w.Steps,
		Updates:   updates,
		Periodic:  append([]bool(nil), f.Periodic...),
		Wall:      wall,
	}
	if !cfg.SkipSlowSignals {
		sum, err := telemetrySignal(f, w, alg)
		if err != nil {
			return Run{}, err
		}
		run.Telemetry = sum
		// The attribution repetition is also separate from the timing loop:
		// the profiler's sampling interrupt must never pollute the medians.
		run.Profile = profileSignal(f, w, alg)
	}
	if f.Shape != nil {
		cv := cilkviewSignal(f, w, alg)
		run.Cilkview = &cv
		if !cfg.SkipSlowSignals {
			cs, err := cacheSignal(f, w, alg)
			if err != nil {
				return Run{}, err
			}
			run.CacheSim = cs
		}
	}
	return run, nil
}

// gitCommit returns the current short commit hash, best-effort: empty when
// not in a git checkout or git is unavailable.
func gitCommit() string {
	out, err := gitRevParse()
	if err != nil {
		return ""
	}
	return out
}

// WriteFile writes the report as indented JSON.
func (rep *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchlab: %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("benchlab: %s: schema %q, this tool reads %q", path, rep.Schema, Schema)
	}
	return &rep, nil
}
