package benchlab

import (
	"fmt"
	"time"

	"pochoir"
	"pochoir/internal/benchdef"
	"pochoir/internal/cachesim"
	"pochoir/internal/cilkview"
	"pochoir/internal/core"
	"pochoir/internal/profile"
	"pochoir/internal/stencils"
	"pochoir/internal/telemetry"
)

// telemetrySignal runs one additional instrumented repetition and returns
// the decomposition's RunStats summary. The repetition is separate from the
// wall-clock loop so instrumentation cost never pollutes the timing sample.
func telemetrySignal(f stencils.Factory, w benchdef.Workload, alg core.Algorithm) (*telemetry.Summary, error) {
	rec := telemetry.New()
	j := f.New(w.Sizes, w.Steps).Pochoir(pochoir.Options{Algorithm: alg, Telemetry: rec})
	j.Setup()
	pre := rec.Snapshot()
	if err := safeCompute(j); err != nil {
		return nil, err
	}
	sum := rec.Snapshot().Delta(pre).Summary()
	return &sum, nil
}

// profileSignal runs repetitions inside a continuous-profiling capture
// window and reduces the decoded attribution to the sentinel's hot-path
// shares. The quick-profile workloads finish in single-digit milliseconds —
// under the 100Hz sampler that is zero samples — so the window repeats
// fresh jobs until ~300ms have elapsed (one repetition when a single run
// already exceeds that). Best-effort: a capture failure (another CPU
// profile active, e.g. go test -cpuprofile) or an empty sample set yields
// nil, never an error — the other four signals stand on their own.
func profileSignal(f stencils.Factory, w benchdef.Workload, alg core.Algorithm) *ProfileSignal {
	p := profile.New(profile.Config{})
	rep, err := p.CaptureDuring(func() {
		deadline := time.Now().Add(300 * time.Millisecond)
		for {
			j := f.New(w.Sizes, w.Steps).Pochoir(pochoir.Options{Algorithm: alg})
			j.Setup()
			if safeCompute(j) != nil || !time.Now().Before(deadline) {
				return
			}
		}
	})
	if err != nil || rep == nil || rep.Samples == 0 {
		return nil
	}
	return &ProfileSignal{
		CPUSeconds:  rep.CPUSeconds,
		Samples:     rep.Samples,
		KernelShare: rep.KernelShare,
		WalkerShare: rep.WalkerShare,
		PhaseShares: rep.PhaseShares,
	}
}

func safeCompute(j stencils.Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	j.Compute()
	return nil
}

// engineWalker builds the walker geometry the engine itself would use for
// this benchmark — same slopes, the §4 unified periodic scheme, the paper's
// coarsening heuristic — so the analytical signals replay the decomposition
// the wall-clock repetitions actually executed.
func engineWalker(sh *pochoir.Shape, sizes []int, alg core.Algorithm) *core.Walker {
	d := len(sizes)
	w := &core.Walker{NDims: d, Algorithm: alg}
	for i := 0; i < d; i++ {
		w.Sizes[i] = sizes[i]
		w.Slopes[i] = sh.Slope(i)
		w.Reach[i] = sh.Reach(i)
		w.Periodic[i] = true // the §4 unified scheme treats every dim as periodic
	}
	tc, sc := pochoir.DefaultCoarsening(d)
	w.TimeCutoff = tc
	copy(w.SpaceCutoff[:], sc)
	return w
}

// cilkviewSignal replays the configuration through the work/span analyzer.
func cilkviewSignal(f stencils.Factory, w benchdef.Workload, alg core.Algorithm) cilkview.MetricsView {
	wk := engineWalker(f.Shape(), w.Sizes, alg)
	return cilkview.New(wk, cilkview.DefaultCosts()).Analyze(1, 1+w.Steps).View()
}

// traceScale caps the cache-trace box per dimensionality: the LRU model
// costs a map operation per access, so the trace replays a scaled-down copy
// of the workload (recorded in the signal) rather than the full grid. The
// caps keep each trace around a million accesses while leaving the grid
// large relative to the model cache, which is what shapes the miss ratio.
func traceScale(sizes []int, steps int) ([]int, int) {
	var side, st int
	switch d := len(sizes); {
	case d == 1:
		side, st = 4096, 64
	case d == 2:
		side, st = 96, 16
	case d == 3:
		side, st = 24, 8
	default:
		side, st = 10, 4
	}
	out := make([]int, len(sizes))
	for i, s := range sizes {
		out[i] = min(s, side)
	}
	return out, min(steps, st)
}

// cacheSignal replays the (scaled) workload's memory trace through the
// ideal-cache model in the engine's execution order and reports the miss
// ratio. The model geometry follows Fig. 10: a 4096-point cache with
// 8-point lines for 1D/2D, a 32768-point cache for 3D and above.
func cacheSignal(f stencils.Factory, w benchdef.Workload, alg core.Algorithm) (*CacheSignal, error) {
	sh := f.Shape()
	sizes, steps := traceScale(w.Sizes, w.Steps)
	m := benchdef.Fig10CacheM
	if sh.NDims >= 3 {
		m = benchdef.Fig10CacheM3D
	}
	c := cachesim.New(m, benchdef.Fig10CacheB)
	tr := cachesim.NewTracer(c, sh, sizes)
	if alg == core.LOOPS {
		cachesim.TraceLoops(tr, steps)
	} else {
		if _, err := cachesim.TraceWalker(engineWalker(sh, sizes, alg), tr, steps); err != nil {
			return nil, err
		}
	}
	return &CacheSignal{Stats: c.Stats(), TracedSizes: sizes, TracedSteps: steps}, nil
}
