package benchlab

import (
	"fmt"
	"os/exec"
	"sort"
	"strings"
	"time"

	"pochoir/internal/stencils"
)

// measure times repeated executions of a job: one untimed warm-up, then a
// repetition count calibrated so the timed repetitions together fill
// roughly the budget (at least 3, at most maxReps — robust statistics need
// a sample, a lab session needs to finish).
func measure(job func() stencils.Job, budget time.Duration, maxReps int) (WallStats, error) {
	// Warm-up: faults the pages in, warms the scheduler, and yields the
	// calibration estimate.
	est, err := timeOnce(job)
	if err != nil {
		return WallStats{}, err
	}
	reps := maxReps
	if est > 0 {
		reps = int(budget / est)
	}
	if reps < 3 {
		reps = 3
	}
	if reps > maxReps {
		reps = maxReps
	}
	samples := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		d, err := timeOnce(job)
		if err != nil {
			return WallStats{}, err
		}
		samples = append(samples, d.Seconds())
	}
	min, max := samples[0], samples[0]
	for _, s := range samples {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return WallStats{
		Reps:          reps,
		MedianSeconds: Median(samples),
		MADSeconds:    MAD(samples),
		MinSeconds:    min,
		MaxSeconds:    max,
	}, nil
}

// timeOnce runs one full job, timing only Compute (Setup allocates and
// initializes; Result linearizes — neither is the stencil).
func timeOnce(job func() stencils.Job) (d time.Duration, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	j := job()
	j.Setup()
	start := time.Now()
	j.Compute()
	return time.Since(start), nil
}

// Median returns the sample median (mean of the middle pair for even n),
// 0 for an empty sample. The input is not modified.
func Median(samples []float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation from the median — the robust
// scale estimate the regression gate uses (unscaled: no 1.4826 consistency
// factor, since the gate compares MADs to MADs, not to standard deviations).
func MAD(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	med := Median(samples)
	dev := make([]float64, len(samples))
	for i, s := range samples {
		d := s - med
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	return Median(dev)
}

// gitRevParse returns the short commit hash of the working tree.
func gitRevParse() (string, error) {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(out)), nil
}
