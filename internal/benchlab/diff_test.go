package benchlab

import (
	"strings"
	"testing"
)

// report builds a synthetic report from key -> (median, mad) seconds.
func report(runs map[string][2]float64) *Report {
	rep := &Report{Schema: Schema, Version: Version, Profile: "quick"}
	for key, v := range runs {
		parts := strings.SplitN(key, "/", 2)
		rep.Runs = append(rep.Runs, Run{
			Benchmark: parts[0],
			Engine:    parts[1],
			Wall:      WallStats{Reps: 5, MedianSeconds: v[0], MADSeconds: v[1]},
		})
	}
	return rep
}

// TestDiffFlagsSlowdown: a synthetic 2x slowdown on one configuration is
// flagged as a regression; the untouched configurations stay quiet.
func TestDiffFlagsSlowdown(t *testing.T) {
	old := report(map[string][2]float64{
		"Heat 2/TRAP":  {0.100, 0.002},
		"Heat 2/STRAP": {0.120, 0.002},
		"Wave 3/TRAP":  {0.300, 0.004},
	})
	cur := report(map[string][2]float64{
		"Heat 2/TRAP":  {0.200, 0.002}, // 2x slower
		"Heat 2/STRAP": {0.120, 0.002},
		"Wave 3/TRAP":  {0.300, 0.004},
	})
	deltas := Compare(old, cur, DefaultGate())
	regs := Regressions(deltas)
	if len(regs) != 1 {
		t.Fatalf("want exactly the 2x slowdown flagged, got %+v", regs)
	}
	if regs[0].Benchmark != "Heat 2" || regs[0].Engine != "TRAP" {
		t.Fatalf("flagged the wrong configuration: %+v", regs[0])
	}
	if regs[0].Rel < 0.9 || regs[0].Rel > 1.1 {
		t.Fatalf("relative shift %f, want ~1.0", regs[0].Rel)
	}
	// Regressions sort first in the rendered comparison.
	if !deltas[0].Regression {
		t.Fatalf("regression not sorted first: %+v", deltas[0])
	}
}

// TestDiffSilentOnIdentical: comparing a report against itself flags
// nothing in either direction.
func TestDiffSilentOnIdentical(t *testing.T) {
	rep := report(map[string][2]float64{
		"Heat 2/TRAP":     {0.100, 0.002},
		"Heat 2/STRAP":    {0.120, 0.003},
		"Heat 2/LOOPS":    {0.090, 0.001},
		"Wave 3/TRAP":     {0.300, 0.004},
		"3D 7-point/TRAP": {0.250, 0.010},
	})
	for _, d := range Compare(rep, rep, DefaultGate()) {
		if d.Regression || d.Improvement || d.Missing != "" {
			t.Fatalf("identical reports produced a verdict: %+v", d)
		}
		if d.Rel != 0 {
			t.Fatalf("identical reports produced a shift: %+v", d)
		}
	}
}

// TestDiffNoiseGate: shifts within run-to-run jitter stay silent — a +-1
// MAD wobble, and even a large *relative* shift that is small next to the
// observed MAD (the microsecond-benchmark case).
func TestDiffNoiseGate(t *testing.T) {
	old := report(map[string][2]float64{
		"Heat 2/TRAP": {0.100, 0.005},
		"APOP/LOOPS":  {0.001, 0.001}, // noisy microbenchmark
	})
	cur := report(map[string][2]float64{
		"Heat 2/TRAP": {0.105, 0.005},  // +1 MAD, +5%: both clauses reject
		"APOP/LOOPS":  {0.0018, 0.001}, // +80% relative, but < 3 MAD
	})
	if regs := Regressions(Compare(old, cur, DefaultGate())); len(regs) != 0 {
		t.Fatalf("noise flagged as regression: %+v", regs)
	}
	// The same +80% with tight MADs IS a regression: the gate keys on
	// noise, not on absolute magnitude.
	old = report(map[string][2]float64{"APOP/LOOPS": {0.001, 0.00001}})
	cur = report(map[string][2]float64{"APOP/LOOPS": {0.0018, 0.00001}})
	if regs := Regressions(Compare(old, cur, DefaultGate())); len(regs) != 1 {
		t.Fatalf("tight-noise 80%% slowdown not flagged: %+v", regs)
	}
}

// TestDiffImprovementAndMissing: speedups are reported as improvements (not
// regressions), and configurations present in only one report are marked.
func TestDiffImprovementAndMissing(t *testing.T) {
	old := report(map[string][2]float64{
		"Heat 2/TRAP": {0.200, 0.002},
		"LBM 3/TRAP":  {0.500, 0.002},
	})
	cur := report(map[string][2]float64{
		"Heat 2/TRAP":  {0.100, 0.002}, // 2x faster
		"Life 2p/TRAP": {0.050, 0.001}, // new configuration
	})
	deltas := Compare(old, cur, DefaultGate())
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}
	var improved, gone, added bool
	for _, d := range deltas {
		switch {
		case d.Benchmark == "Heat 2" && d.Improvement:
			improved = true
		case d.Benchmark == "LBM 3" && d.Missing == "new":
			gone = true
		case d.Benchmark == "Life 2p" && d.Missing == "old":
			added = true
		}
	}
	if !improved || !gone || !added {
		t.Fatalf("improved=%v gone=%v added=%v, want all true: %+v", improved, gone, added, deltas)
	}
}

// TestDiffRendering: both renderers cover every row and mark regressions.
func TestDiffRendering(t *testing.T) {
	old := report(map[string][2]float64{"Heat 2/TRAP": {0.100, 0.001}})
	cur := report(map[string][2]float64{"Heat 2/TRAP": {0.250, 0.001}})
	deltas := Compare(old, cur, DefaultGate())

	var text, md strings.Builder
	WriteText(&text, deltas)
	WriteMarkdown(&md, deltas)
	if !strings.Contains(text.String(), "REGRESSION") {
		t.Fatalf("text report missing regression verdict:\n%s", text.String())
	}
	if !strings.Contains(md.String(), "**REGRESSION**") || !strings.Contains(md.String(), "| Heat 2 |") {
		t.Fatalf("markdown report malformed:\n%s", md.String())
	}
}

// TestProfileWarnings: the hot-path sentinel's warn-only verdicts ride the
// diff — a kernel-share collapse beyond noise annotates the delta without
// flipping the wall-clock verdict, and a baseline recorded before the
// profile signal existed stays silent.
func TestProfileWarnings(t *testing.T) {
	withProfile := func(rep *Report, sig *ProfileSignal) *Report {
		for i := range rep.Runs {
			rep.Runs[i].Profile = sig
		}
		return rep
	}
	old := withProfile(report(map[string][2]float64{"Heat 2/TRAP": {0.100, 0.001}}),
		&ProfileSignal{CPUSeconds: 0.3, Samples: 30, KernelShare: 0.85, WalkerShare: 0.05})
	cur := withProfile(report(map[string][2]float64{"Heat 2/TRAP": {0.102, 0.001}}),
		&ProfileSignal{CPUSeconds: 0.3, Samples: 30, KernelShare: 0.60, WalkerShare: 0.30})

	deltas := Compare(old, cur, DefaultGate())
	if len(deltas) != 1 {
		t.Fatalf("want 1 delta, got %+v", deltas)
	}
	d := deltas[0]
	if d.Regression {
		t.Fatalf("profile warnings must not flip the wall-clock verdict: %+v", d)
	}
	if len(d.ProfileWarnings) != 2 {
		t.Fatalf("want kernel+walker warnings, got %v", d.ProfileWarnings)
	}
	joined := strings.Join(d.ProfileWarnings, "; ")
	if !strings.Contains(joined, "kernel share fell") || !strings.Contains(joined, "walker overhead rose") {
		t.Fatalf("unexpected warning text: %v", d.ProfileWarnings)
	}

	var text, md strings.Builder
	WriteText(&text, deltas)
	WriteMarkdown(&md, deltas)
	if !strings.Contains(text.String(), "profile warning: kernel share fell") {
		t.Fatalf("text report missing profile warning:\n%s", text.String())
	}
	if !strings.Contains(md.String(), "⚠") {
		t.Fatalf("markdown report missing profile warning marker:\n%s", md.String())
	}

	// A pre-signal baseline (nil profile) produces no warnings.
	bare := Compare(
		report(map[string][2]float64{"Heat 2/TRAP": {0.100, 0.001}}), cur, DefaultGate())
	if len(bare) != 1 || bare[0].ProfileWarnings != nil {
		t.Fatalf("nil-profile baseline should stay silent: %+v", bare)
	}
}
