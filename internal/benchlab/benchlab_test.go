package benchlab

import (
	"path/filepath"
	"testing"
	"time"
)

// TestCollectFusesSignals: a one-benchmark quick session produces one run
// per engine with all four signals present and mutually consistent.
func TestCollectFusesSignals(t *testing.T) {
	rep, err := Collect(Config{
		Profile:    "quick",
		Benchmarks: []string{"Heat 2"},
		Budget:     30 * time.Millisecond,
		MaxReps:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.Version != Version {
		t.Fatalf("report not schema-versioned: %q v%d", rep.Schema, rep.Version)
	}
	if rep.Host.CPUs <= 0 || rep.Host.GoVersion == "" {
		t.Fatalf("missing host provenance: %+v", rep.Host)
	}
	if len(rep.Runs) != len(Engines) {
		t.Fatalf("got %d runs, want one per engine (%d)", len(rep.Runs), len(Engines))
	}
	seen := map[string]bool{}
	for _, r := range rep.Runs {
		seen[r.Engine] = true
		if r.Wall.Reps < 3 || r.Wall.MedianSeconds <= 0 {
			t.Fatalf("%s: wall stats not measured: %+v", r.Key(), r.Wall)
		}
		if r.Wall.MinSeconds > r.Wall.MedianSeconds || r.Wall.MedianSeconds > r.Wall.MaxSeconds {
			t.Fatalf("%s: median outside [min,max]: %+v", r.Key(), r.Wall)
		}
		if r.Telemetry == nil {
			t.Fatalf("%s: no telemetry signal", r.Key())
		}
		// The decomposition partitions space-time exactly: the instrumented
		// repetition's point updates must equal the workload's updates.
		if r.Telemetry.BasePoints != r.Updates {
			t.Fatalf("%s: telemetry saw %d point updates, workload is %d",
				r.Key(), r.Telemetry.BasePoints, r.Updates)
		}
		if r.Cilkview == nil || r.Cilkview.Work <= 0 || r.Cilkview.Span <= 0 {
			t.Fatalf("%s: no cilkview signal: %+v", r.Key(), r.Cilkview)
		}
		if r.Engine == "LOOPS" && r.Cilkview.Parallelism != 1 {
			t.Fatalf("LOOPS cilkview parallelism %f, want 1", r.Cilkview.Parallelism)
		}
		if r.CacheSim == nil || r.CacheSim.Accesses <= 0 {
			t.Fatalf("%s: no cache signal: %+v", r.Key(), r.CacheSim)
		}
		if ratio := r.CacheSim.MissRatio; ratio <= 0 || ratio > 1 {
			t.Fatalf("%s: miss ratio %f out of (0,1]", r.Key(), ratio)
		}
	}
	for _, alg := range Engines {
		if !seen[alg.String()] {
			t.Fatalf("engine %v missing from report", alg)
		}
	}
}

// TestReportRoundTrip: WriteFile/ReadFile preserve the document, and a
// foreign schema is refused.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{
		Schema: Schema, Version: Version, Profile: "quick", Host: Host(),
		Runs: []Run{{
			Benchmark: "Heat 2", Engine: "TRAP", Sizes: []int{300, 300}, Steps: 30,
			Updates: 2700000,
			Wall:    WallStats{Reps: 5, MedianSeconds: 0.1, MADSeconds: 0.001},
		}},
	}
	path := filepath.Join(dir, "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != 1 || back.Runs[0].Key() != "Heat 2/TRAP" ||
		back.Runs[0].Wall.MedianSeconds != 0.1 {
		t.Fatalf("round trip mangled report: %+v", back)
	}

	rep.Schema = "somebody-elses/v9"
	bad := filepath.Join(dir, "bad.json")
	if err := rep.WriteFile(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

// TestMedianMAD: the robust statistics behave on known samples.
func TestMedianMAD(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median %f, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median %f, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Fatalf("empty median %f, want 0", got)
	}
	// {1,2,3,4,100}: median 3, |dev| {2,1,0,1,97} -> MAD 1: the outlier
	// moves the mean but not the robust pair.
	if got := MAD([]float64{1, 2, 3, 4, 100}); got != 1 {
		t.Fatalf("MAD %f, want 1", got)
	}
}

// TestUnknownBenchmark: a typo fails fast instead of silently skipping.
func TestUnknownBenchmark(t *testing.T) {
	if _, err := Collect(Config{Benchmarks: []string{"Heat 9"}}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Collect(Config{Profile: "nope"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
