// Package tune searches base-case coarsening parameters by timing, the
// role the ISAT autotuner plays in §4 of the paper ("Coarsening of base
// cases"). The paper notes that full autotuning can take hours; like
// Pochoir, this tuner is optional — the engine's default heuristic is used
// unless a caller asks for a tuned configuration.
//
// The search is coordinate descent over a small lattice of candidate
// cutoffs: each coordinate (the time cutoff, then each spatial cutoff) is
// optimized in turn while the others are held fixed, repeating until a
// full pass makes no improvement. This finds the same kind of local optima
// ISAT's guided search does at a tiny fraction of the cost.
package tune

import "time"

// Config is one coarsening configuration.
type Config struct {
	TimeCutoff  int
	SpaceCutoff []int
}

// Evaluator measures the cost of one configuration (typically the wall
// time of a representative run). Lower is better.
type Evaluator func(Config) time.Duration

// Options control the search.
type Options struct {
	// TimeCandidates and SpaceCandidates are the lattices searched.
	// Empty slices select defaults informed by the paper's heuristics.
	TimeCandidates  []int
	SpaceCandidates []int
	// MaxPasses bounds the coordinate-descent sweeps (default 3).
	MaxPasses int
}

func (o *Options) fill() {
	if len(o.TimeCandidates) == 0 {
		o.TimeCandidates = []int{1, 2, 3, 5, 10, 20}
	}
	if len(o.SpaceCandidates) == 0 {
		o.SpaceCandidates = []int{0, 8, 16, 32, 64, 100, 200, 500}
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 3
	}
}

// Result reports the best configuration found and the measurements taken.
type Result struct {
	Best     Config
	BestCost time.Duration
	// Evals counts evaluator invocations.
	Evals int
}

// Search runs coordinate descent for a stencil with the given number of
// spatial dimensions, starting from the supplied initial configuration
// (pass the engine's heuristic defaults to refine them).
func Search(dims int, initial Config, eval Evaluator, opts Options) Result {
	opts.fill()
	cur := Config{
		TimeCutoff:  initial.TimeCutoff,
		SpaceCutoff: make([]int, dims),
	}
	copy(cur.SpaceCutoff, initial.SpaceCutoff)
	if cur.TimeCutoff < 1 {
		cur.TimeCutoff = 1
	}

	res := Result{}
	measure := func(c Config) time.Duration {
		res.Evals++
		return eval(c)
	}
	best := measure(cur)

	for pass := 0; pass < opts.MaxPasses; pass++ {
		improved := false
		// Coordinate 0: the time cutoff.
		for _, tc := range opts.TimeCandidates {
			if tc == cur.TimeCutoff {
				continue
			}
			cand := cur
			cand.SpaceCutoff = append([]int(nil), cur.SpaceCutoff...)
			cand.TimeCutoff = tc
			if d := measure(cand); d < best {
				best, cur, improved = d, cand, true
			}
		}
		// Spatial coordinates.
		for i := 0; i < dims; i++ {
			for _, sc := range opts.SpaceCandidates {
				if sc == cur.SpaceCutoff[i] {
					continue
				}
				cand := cur
				cand.SpaceCutoff = append([]int(nil), cur.SpaceCutoff...)
				cand.SpaceCutoff[i] = sc
				if d := measure(cand); d < best {
					best, cur, improved = d, cand, true
				}
			}
		}
		if !improved {
			break
		}
	}
	res.Best = cur
	res.BestCost = best
	return res
}
