package tune

import (
	"testing"
	"time"
)

// synthetic cost: quadratic bowl with minimum at (TimeCutoff=5,
// SpaceCutoff=[100, 32]).
func bowl(c Config) time.Duration {
	d := func(a, b int) int64 {
		v := int64(a - b)
		return v * v
	}
	cost := d(c.TimeCutoff, 5) * 1000
	cost += d(c.SpaceCutoff[0], 100)
	cost += d(c.SpaceCutoff[1], 32) * 10
	return time.Duration(cost + 1)
}

func TestSearchFindsBowlMinimum(t *testing.T) {
	res := Search(2, Config{TimeCutoff: 1, SpaceCutoff: []int{0, 0}}, bowl, Options{})
	if res.Best.TimeCutoff != 5 {
		t.Fatalf("time cutoff %d, want 5", res.Best.TimeCutoff)
	}
	if res.Best.SpaceCutoff[0] != 100 || res.Best.SpaceCutoff[1] != 32 {
		t.Fatalf("space cutoffs %v, want [100 32]", res.Best.SpaceCutoff)
	}
	if res.BestCost != 1 {
		t.Fatalf("best cost %v, want 1", res.BestCost)
	}
	if res.Evals == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestSearchRespectsCandidates(t *testing.T) {
	res := Search(1, Config{TimeCutoff: 1, SpaceCutoff: []int{0}}, bowl1, Options{
		TimeCandidates:  []int{1, 7},
		SpaceCandidates: []int{0, 50},
	})
	if res.Best.TimeCutoff != 7 || res.Best.SpaceCutoff[0] != 50 {
		t.Fatalf("best %+v; candidates restricted to {1,7}x{0,50}", res.Best)
	}
}

func bowl1(c Config) time.Duration {
	d := func(a, b int) int64 {
		v := int64(a - b)
		return v * v
	}
	return time.Duration(d(c.TimeCutoff, 5)*1000 + d(c.SpaceCutoff[0], 100) + 1)
}

func TestSearchDoesNotRegress(t *testing.T) {
	// Starting at the optimum must stay there.
	res := Search(2, Config{TimeCutoff: 5, SpaceCutoff: []int{100, 32}}, bowl, Options{})
	if res.Best.TimeCutoff != 5 || res.Best.SpaceCutoff[0] != 100 || res.Best.SpaceCutoff[1] != 32 {
		t.Fatalf("regressed from the optimum: %+v", res.Best)
	}
}

func TestSearchZeroInitial(t *testing.T) {
	res := Search(1, Config{}, bowl1, Options{MaxPasses: 1})
	if res.Best.TimeCutoff < 1 {
		t.Fatal("time cutoff must be at least 1")
	}
}
