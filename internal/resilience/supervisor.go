package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"

	"pochoir/internal/flight"
	"pochoir/internal/metrics"
	"pochoir/internal/profile"
	"pochoir/internal/telemetry"
)

// engineLabels are the per-engine pprof label sets applied around segment
// attempts, precomputed so the supervisor loop allocates none. A CPU
// sample taken mid-attempt then attributes to the engine that executed it
// — including attempts re-run on a lower rung of the degradation ladder.
var engineLabels = [...]pprof.LabelSet{
	EngineFull:  pprof.Labels("engine", "TRAP"),
	EngineSTRAP: pprof.Labels("engine", "STRAP"),
	EngineLoops: pprof.Labels("engine", "LOOPS"),
}

func engineLabelSet(e Engine) pprof.LabelSet {
	if int(e) >= 0 && int(e) < len(engineLabels) {
		return engineLabels[e]
	}
	return pprof.Labels("engine", e.String())
}

// Driver is the set of operations the supervisor orchestrates. The stencil
// layer (pochoir.Stencil.RunSupervised) supplies closures over a concrete
// run; tests supply stubs. All callbacks are invoked from the supervising
// goroutine, never concurrently.
type Driver struct {
	// Steps is the total number of time steps to complete.
	Steps int
	// Run executes steps time steps starting at absolute step fromStep
	// with the given engine, honouring ctx. It must leave the computation
	// either advanced by steps (nil return) or in a state Restore can roll
	// back (error return).
	Run func(ctx context.Context, eng Engine, fromStep, steps int) error
	// Checkpoint snapshots the state at a segment boundary; Restore rolls
	// back to the most recent snapshot. Only called when checkpointing is
	// enabled.
	Checkpoint func() error
	Restore    func() error
	// Spill, when non-nil (the stencil layer supplies it iff
	// Policy.SpillDir is set), durably persists the checkpoint just taken
	// and returns the journal path and bytes written. A spill failure is
	// not a segment failure: the supervisor records it and continues.
	Spill func(segment, fromStep int) (path string, bytes int64, err error)
	// Verify, when non-nil and enabled by Policy.Verify, shadow-checks the
	// just-completed segment; a non-nil return (typically a *VerifyError)
	// is treated as a segment failure.
	Verify func(ctx context.Context, segment, fromStep, steps int) error
}

// Supervise runs d.Steps time steps under policy p: segment by segment,
// checkpointing at each boundary, retrying failed segments from their
// checkpoint under jittered exponential backoff, and degrading down the
// engine ladder when a segment keeps failing. It returns a Report in all
// cases; the error is non-nil when the run could not be completed (attempt
// budget exhausted, checkpointing disabled, parent context cancelled, or a
// checkpoint/restore operation itself failed).
func Supervise(ctx context.Context, d Driver, p Policy) (*Report, error) {
	p = p.WithDefaults()
	if p.Verify.Enabled {
		// Shadow verification recomputes from the segment-start snapshot,
		// so it needs the checkpoints NoCheckpoint would skip.
		p.NoCheckpoint = false
	}
	if p.SpillDir != "" {
		// Durable spilling persists the segment checkpoints, so it needs
		// them taken.
		p.NoCheckpoint = false
	}
	segSteps := p.SegmentSteps
	if segSteps <= 0 || segSteps > d.Steps {
		segSteps = d.Steps
	}
	rung := 0
	rep := &Report{Steps: d.Steps, FinalEngine: p.Ladder[0]}
	var sm *metrics.SupervisorMetrics
	if p.Metrics != nil {
		sm = metrics.NewSupervisorMetrics(p.Metrics)
	}
	start := p.Clock.Now()
	emit := func(ev telemetry.SupEvent) {
		if p.Telemetry != nil {
			p.Telemetry.Supervisor(ev) // the recorder stamps its copy itself
		}
		p.Flight.Record(flight.EvSup, int64(ev.Kind), int64(ev.Segment), int64(ev.Attempt))
		ev.TS = p.Clock.Now().Sub(start).Nanoseconds()
		rep.Events = append(rep.Events, ev)
		if p.OnEvent != nil {
			p.OnEvent(ev)
		}
	}
	fail := func(seg SegmentReport, err error) (*Report, error) {
		if sm != nil {
			sm.GiveUps.Inc()
		}
		rep.Segments = append(rep.Segments, seg)
		rep.FinalEngine = p.Ladder[rung]
		rep.Err = err
		emit(telemetry.SupEvent{Kind: telemetry.SupGiveUp, Segment: seg.Index,
			Attempt: seg.Attempts, Engine: p.Ladder[rung].String(), Err: err.Error()})
		return rep, err
	}

	for from := 0; from < d.Steps; {
		steps := segSteps
		if from+steps > d.Steps {
			steps = d.Steps - from
		}
		seg := SegmentReport{Index: len(rep.Segments), FromStep: from, Steps: steps, Engine: p.Ladder[rung]}
		emit(telemetry.SupEvent{Kind: telemetry.SupSegmentStart, Segment: seg.Index,
			Engine: p.Ladder[rung].String()})

		if !p.NoCheckpoint {
			// phase=checkpoint covers the snapshot and its durable spill, so
			// attribution separates checkpoint overhead from kernel time.
			var cperr error
			pprof.Do(ctx, profile.LabelsCheckpoint, func(context.Context) {
				cperr = d.Checkpoint()
			})
			if cperr != nil {
				return fail(seg, fmt.Errorf("resilience: checkpoint before segment %d: %w", seg.Index, cperr))
			}
			rep.Checkpoints++
			if sm != nil {
				sm.Checkpoints.Inc()
			}
			emit(telemetry.SupEvent{Kind: telemetry.SupCheckpoint, Segment: seg.Index})

			if d.Spill != nil {
				spillStart := p.Clock.Now()
				var path string
				var bytes int64
				var serr error
				pprof.Do(ctx, profile.LabelsCheckpoint, func(context.Context) {
					path, bytes, serr = d.Spill(seg.Index, from)
				})
				spillNS := p.Clock.Now().Sub(spillStart).Nanoseconds()
				if serr != nil {
					// Durability degraded, run intact: record and move on.
					rep.SpillErrors++
					if sm != nil {
						sm.SpillErrors.Inc()
					}
					emit(telemetry.SupEvent{Kind: telemetry.SupSpill, Segment: seg.Index,
						Err: serr.Error()})
				} else {
					rep.Spills++
					rep.SpillBytes += bytes
					rep.LastSpillPath = path
					rep.LastSpillStep = from
					if sm != nil {
						sm.Spills.Inc()
						sm.SpillBytes.Add(bytes)
						sm.SpillNS.Add(spillNS)
					}
					emit(telemetry.SupEvent{Kind: telemetry.SupSpill, Segment: seg.Index})
				}
			}
		}

		var segErr error
		failures := 0
		for attempt := 1; ; attempt++ {
			rep.Attempts++
			if attempt > 1 {
				rep.Retries++
				if sm != nil {
					sm.Retries.Inc()
				}
			}
			seg.Attempts = attempt
			eng := p.Ladder[rung]
			seg.Engine = eng

			runCtx := ctx
			var cancel context.CancelFunc
			if p.SegmentTimeout > 0 {
				runCtx, cancel = p.Clock.WithTimeout(ctx, p.SegmentTimeout)
			}
			// The attempt runs under its engine label; the walker adds
			// phase=walk (and, armed, base/boundary) beneath it, and any
			// labels on the parent context (tenant/job/priority from the
			// gateway) ride along.
			var err error
			pprof.Do(runCtx, engineLabelSet(eng), func(rc context.Context) {
				err = d.Run(rc, eng, from, steps)
			})
			if cancel != nil {
				cancel()
			}

			if err == nil && p.Verify.Enabled && d.Verify != nil && seg.Index%p.Verify.Every == 0 {
				var verr error
				pprof.Do(ctx, profile.LabelsVerify, func(vc context.Context) {
					verr = d.Verify(vc, seg.Index, from, steps)
				})
				if verr != nil {
					rep.VerifyMismatches++
					if sm != nil {
						sm.VerifyMismatch.Inc()
					}
					seg.VerifyMismatch = true
					emit(telemetry.SupEvent{Kind: telemetry.SupVerifyMismatch, Segment: seg.Index,
						Attempt: attempt, Engine: eng.String(), Err: verr.Error()})
					err = verr
				} else {
					rep.Verified++
					if sm != nil {
						sm.VerifyOK.Inc()
					}
					seg.Verified = true
					emit(telemetry.SupEvent{Kind: telemetry.SupVerifyOK, Segment: seg.Index,
						Attempt: attempt, Engine: eng.String()})
				}
			}

			if err == nil {
				segErr = nil
				break
			}
			segErr = err
			failures++
			if sm != nil {
				sm.SegmentsFailed.Inc()
				// A deadline error with the parent still live means the
				// per-attempt watchdog fired, not an outside cancellation.
				if p.SegmentTimeout > 0 && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
					sm.WatchdogTrips.Inc()
				}
			}
			seg.Failures = append(seg.Failures, err.Error())
			emit(telemetry.SupEvent{Kind: telemetry.SupSegmentFail, Segment: seg.Index,
				Attempt: attempt, Engine: eng.String(), Err: err.Error()})

			if ctx.Err() != nil {
				// The parent gave up; retrying would spin on a dead context.
				break
			}
			if p.NoCheckpoint {
				// Nothing to restore to: the first failure is terminal and
				// the underlying state stays poisoned.
				break
			}
			if attempt >= p.MaxAttempts {
				break
			}

			var rerr error
			pprof.Do(ctx, profile.LabelsCheckpoint, func(context.Context) {
				rerr = d.Restore()
			})
			if rerr != nil {
				segErr = fmt.Errorf("resilience: restore for segment %d retry: %w", seg.Index, rerr)
				break
			}
			rep.Restores++
			if sm != nil {
				sm.Restores.Inc()
			}
			emit(telemetry.SupEvent{Kind: telemetry.SupRestore, Segment: seg.Index, Attempt: attempt})

			if failures%p.DegradeAfter == 0 && rung < len(p.Ladder)-1 {
				rung++
				rep.Degradations++
				if sm != nil {
					sm.Degradations.Inc()
				}
				emit(telemetry.SupEvent{Kind: telemetry.SupDegrade, Segment: seg.Index,
					Attempt: attempt, Engine: p.Ladder[rung].String()})
			}

			delay := p.backoffDelay(failures)
			rep.BackoffTotal += delay
			if sm != nil {
				sm.BackoffNS.Add(delay.Nanoseconds())
			}
			seg.Backoff += delay
			emit(telemetry.SupEvent{Kind: telemetry.SupBackoff, Segment: seg.Index,
				Attempt: attempt, Delay: delay})
			if serr := p.Clock.Sleep(ctx, delay); serr != nil {
				break // parent cancelled mid-backoff; segErr keeps the run error
			}
		}

		if segErr != nil {
			return fail(seg, segErr)
		}
		rep.FinalEngine = p.Ladder[rung]
		rep.Segments = append(rep.Segments, seg)
		rep.StepsDone = from + steps
		if sm != nil {
			sm.SegmentsDone.Inc()
		}
		emit(telemetry.SupEvent{Kind: telemetry.SupSegmentDone, Segment: seg.Index,
			Attempt: seg.Attempts, Engine: seg.Engine.String()})
		from += steps
	}
	return rep, nil
}
