package resilience

import (
	"context"
	"fmt"

	"pochoir/internal/telemetry"
)

// Driver is the set of operations the supervisor orchestrates. The stencil
// layer (pochoir.Stencil.RunSupervised) supplies closures over a concrete
// run; tests supply stubs. All callbacks are invoked from the supervising
// goroutine, never concurrently.
type Driver struct {
	// Steps is the total number of time steps to complete.
	Steps int
	// Run executes steps time steps starting at absolute step fromStep
	// with the given engine, honouring ctx. It must leave the computation
	// either advanced by steps (nil return) or in a state Restore can roll
	// back (error return).
	Run func(ctx context.Context, eng Engine, fromStep, steps int) error
	// Checkpoint snapshots the state at a segment boundary; Restore rolls
	// back to the most recent snapshot. Only called when checkpointing is
	// enabled.
	Checkpoint func() error
	Restore    func() error
	// Verify, when non-nil and enabled by Policy.Verify, shadow-checks the
	// just-completed segment; a non-nil return (typically a *VerifyError)
	// is treated as a segment failure.
	Verify func(ctx context.Context, segment, fromStep, steps int) error
}

// Supervise runs d.Steps time steps under policy p: segment by segment,
// checkpointing at each boundary, retrying failed segments from their
// checkpoint under jittered exponential backoff, and degrading down the
// engine ladder when a segment keeps failing. It returns a Report in all
// cases; the error is non-nil when the run could not be completed (attempt
// budget exhausted, checkpointing disabled, parent context cancelled, or a
// checkpoint/restore operation itself failed).
func Supervise(ctx context.Context, d Driver, p Policy) (*Report, error) {
	p = p.WithDefaults()
	if p.Verify.Enabled {
		// Shadow verification recomputes from the segment-start snapshot,
		// so it needs the checkpoints NoCheckpoint would skip.
		p.NoCheckpoint = false
	}
	segSteps := p.SegmentSteps
	if segSteps <= 0 || segSteps > d.Steps {
		segSteps = d.Steps
	}
	rung := 0
	rep := &Report{Steps: d.Steps, FinalEngine: p.Ladder[0]}
	start := p.Clock.Now()
	emit := func(ev telemetry.SupEvent) {
		if p.Telemetry != nil {
			p.Telemetry.Supervisor(ev) // the recorder stamps its copy itself
		}
		ev.TS = p.Clock.Now().Sub(start).Nanoseconds()
		rep.Events = append(rep.Events, ev)
	}
	fail := func(seg SegmentReport, err error) (*Report, error) {
		rep.Segments = append(rep.Segments, seg)
		rep.FinalEngine = p.Ladder[rung]
		rep.Err = err
		emit(telemetry.SupEvent{Kind: telemetry.SupGiveUp, Segment: seg.Index,
			Attempt: seg.Attempts, Engine: p.Ladder[rung].String(), Err: err.Error()})
		return rep, err
	}

	for from := 0; from < d.Steps; {
		steps := segSteps
		if from+steps > d.Steps {
			steps = d.Steps - from
		}
		seg := SegmentReport{Index: len(rep.Segments), FromStep: from, Steps: steps, Engine: p.Ladder[rung]}
		emit(telemetry.SupEvent{Kind: telemetry.SupSegmentStart, Segment: seg.Index,
			Engine: p.Ladder[rung].String()})

		if !p.NoCheckpoint {
			if err := d.Checkpoint(); err != nil {
				return fail(seg, fmt.Errorf("resilience: checkpoint before segment %d: %w", seg.Index, err))
			}
			rep.Checkpoints++
			emit(telemetry.SupEvent{Kind: telemetry.SupCheckpoint, Segment: seg.Index})
		}

		var segErr error
		failures := 0
		for attempt := 1; ; attempt++ {
			rep.Attempts++
			if attempt > 1 {
				rep.Retries++
			}
			seg.Attempts = attempt
			eng := p.Ladder[rung]
			seg.Engine = eng

			runCtx := ctx
			var cancel context.CancelFunc
			if p.SegmentTimeout > 0 {
				runCtx, cancel = p.Clock.WithTimeout(ctx, p.SegmentTimeout)
			}
			err := d.Run(runCtx, eng, from, steps)
			if cancel != nil {
				cancel()
			}

			if err == nil && p.Verify.Enabled && d.Verify != nil && seg.Index%p.Verify.Every == 0 {
				if verr := d.Verify(ctx, seg.Index, from, steps); verr != nil {
					rep.VerifyMismatches++
					seg.VerifyMismatch = true
					emit(telemetry.SupEvent{Kind: telemetry.SupVerifyMismatch, Segment: seg.Index,
						Attempt: attempt, Engine: eng.String(), Err: verr.Error()})
					err = verr
				} else {
					rep.Verified++
					seg.Verified = true
					emit(telemetry.SupEvent{Kind: telemetry.SupVerifyOK, Segment: seg.Index,
						Attempt: attempt, Engine: eng.String()})
				}
			}

			if err == nil {
				segErr = nil
				break
			}
			segErr = err
			failures++
			seg.Failures = append(seg.Failures, err.Error())
			emit(telemetry.SupEvent{Kind: telemetry.SupSegmentFail, Segment: seg.Index,
				Attempt: attempt, Engine: eng.String(), Err: err.Error()})

			if ctx.Err() != nil {
				// The parent gave up; retrying would spin on a dead context.
				break
			}
			if p.NoCheckpoint {
				// Nothing to restore to: the first failure is terminal and
				// the underlying state stays poisoned.
				break
			}
			if attempt >= p.MaxAttempts {
				break
			}

			if rerr := d.Restore(); rerr != nil {
				segErr = fmt.Errorf("resilience: restore for segment %d retry: %w", seg.Index, rerr)
				break
			}
			rep.Restores++
			emit(telemetry.SupEvent{Kind: telemetry.SupRestore, Segment: seg.Index, Attempt: attempt})

			if failures%p.DegradeAfter == 0 && rung < len(p.Ladder)-1 {
				rung++
				rep.Degradations++
				emit(telemetry.SupEvent{Kind: telemetry.SupDegrade, Segment: seg.Index,
					Attempt: attempt, Engine: p.Ladder[rung].String()})
			}

			delay := p.backoffDelay(failures)
			rep.BackoffTotal += delay
			seg.Backoff += delay
			emit(telemetry.SupEvent{Kind: telemetry.SupBackoff, Segment: seg.Index,
				Attempt: attempt, Delay: delay})
			if serr := p.Clock.Sleep(ctx, delay); serr != nil {
				break // parent cancelled mid-backoff; segErr keeps the run error
			}
		}

		if segErr != nil {
			return fail(seg, segErr)
		}
		rep.FinalEngine = p.Ladder[rung]
		rep.Segments = append(rep.Segments, seg)
		rep.StepsDone = from + steps
		emit(telemetry.SupEvent{Kind: telemetry.SupSegmentDone, Segment: seg.Index,
			Attempt: seg.Attempts, Engine: seg.Engine.String()})
		from += steps
	}
	return rep, nil
}
