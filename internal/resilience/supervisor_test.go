package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"pochoir/internal/telemetry"
)

// fakeClock is a deterministic Clock: Sleep records the request and
// advances virtual time instantly, WithTimeout records the deadline but
// never fires it. No supervisor test sleeps for real.
type fakeClock struct {
	now      time.Time
	sleeps   []time.Duration
	timeouts []time.Duration
}

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	return nil
}

func (c *fakeClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	c.timeouts = append(c.timeouts, d)
	return context.WithCancel(ctx)
}

// noJitter is the base test policy: deterministic delays, fake clock.
func noJitter(clk *fakeClock) Policy {
	return Policy{
		BaseDelay:  10 * time.Millisecond,
		MaxDelay:   time.Second,
		Multiplier: 2,
		Jitter:     -1,
		Clock:      clk,
	}
}

type call struct {
	eng         Engine
	from, steps int
}

func TestSuperviseHappyPathSegments(t *testing.T) {
	clk := &fakeClock{}
	var calls []call
	checkpoints, restores := 0, 0
	d := Driver{
		Steps: 10,
		Run: func(ctx context.Context, eng Engine, from, steps int) error {
			calls = append(calls, call{eng, from, steps})
			return nil
		},
		Checkpoint: func() error { checkpoints++; return nil },
		Restore:    func() error { restores++; return nil },
	}
	p := noJitter(clk)
	p.SegmentSteps = 3
	rep, err := Supervise(context.Background(), d, p)
	if err != nil {
		t.Fatal(err)
	}
	want := []call{{EngineFull, 0, 3}, {EngineFull, 3, 3}, {EngineFull, 6, 3}, {EngineFull, 9, 1}}
	if len(calls) != len(want) {
		t.Fatalf("calls = %+v, want %+v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("call %d = %+v, want %+v", i, calls[i], want[i])
		}
	}
	if rep.StepsDone != 10 || rep.Attempts != 4 || rep.Retries != 0 ||
		rep.Checkpoints != 4 || checkpoints != 4 || restores != 0 ||
		rep.Degradations != 0 || rep.FinalEngine != EngineFull {
		t.Fatalf("report = %+v", rep)
	}
	if len(clk.sleeps) != 0 {
		t.Fatalf("happy path slept: %v", clk.sleeps)
	}
	if len(rep.Segments) != 4 || rep.Segments[3].FromStep != 9 || rep.Segments[3].Steps != 1 {
		t.Fatalf("segments = %+v", rep.Segments)
	}
}

func TestSuperviseZeroSteps(t *testing.T) {
	rep, err := Supervise(context.Background(), Driver{Steps: 0}, noJitter(&fakeClock{}))
	if err != nil || rep.StepsDone != 0 || len(rep.Segments) != 0 || len(rep.Events) != 0 {
		t.Fatalf("rep = %+v, err = %v", rep, err)
	}
}

func TestSuperviseRetryBackoffAndDegrade(t *testing.T) {
	clk := &fakeClock{}
	boom := errors.New("injected")
	fails := 2 // segment 0 fails twice, then succeeds
	var engines []Engine
	restores := 0
	d := Driver{
		Steps: 4,
		Run: func(ctx context.Context, eng Engine, from, steps int) error {
			engines = append(engines, eng)
			if from == 0 && fails > 0 {
				fails--
				return boom
			}
			return nil
		},
		Checkpoint: func() error { return nil },
		Restore:    func() error { restores++; return nil },
	}
	p := noJitter(clk)
	p.SegmentSteps = 2
	p.MaxAttempts = 4
	p.DegradeAfter = 2
	rec := telemetry.New()
	p.Telemetry = rec
	rep, err := Supervise(context.Background(), d, p)
	if err != nil {
		t.Fatal(err)
	}
	// Attempts 1–2 on the full engine fail; the second failure triggers a
	// degradation, so attempt 3 and the following segment run on STRAP.
	wantEng := []Engine{EngineFull, EngineFull, EngineSTRAP, EngineSTRAP}
	for i := range wantEng {
		if engines[i] != wantEng[i] {
			t.Fatalf("engines = %v, want %v", engines, wantEng)
		}
	}
	if rep.Retries != 2 || rep.Restores != 2 || restores != 2 || rep.Degradations != 1 ||
		rep.FinalEngine != EngineSTRAP || rep.StepsDone != 4 {
		t.Fatalf("report = %+v", rep)
	}
	wantSleeps := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(clk.sleeps) != 2 || clk.sleeps[0] != wantSleeps[0] || clk.sleeps[1] != wantSleeps[1] {
		t.Fatalf("sleeps = %v, want %v", clk.sleeps, wantSleeps)
	}
	if rep.BackoffTotal != 30*time.Millisecond {
		t.Fatalf("BackoffTotal = %v", rep.BackoffTotal)
	}
	if got := rep.Segments[0].Failures; len(got) != 2 || got[0] != "injected" {
		t.Fatalf("failures = %v", got)
	}
	// The same decision log reached the recorder.
	if evs := rec.SupervisorEvents(); len(evs) != len(rep.Events) {
		t.Fatalf("recorder has %d events, report has %d", len(evs), len(rep.Events))
	}
	var kinds []telemetry.SupKind
	for _, ev := range rep.Events {
		if ev.Segment == 0 {
			kinds = append(kinds, ev.Kind)
		}
	}
	wantKinds := []telemetry.SupKind{
		telemetry.SupSegmentStart, telemetry.SupCheckpoint,
		telemetry.SupSegmentFail, telemetry.SupRestore, telemetry.SupBackoff,
		telemetry.SupSegmentFail, telemetry.SupRestore, telemetry.SupDegrade, telemetry.SupBackoff,
		telemetry.SupSegmentDone,
	}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("segment-0 kinds = %v, want %v", kinds, wantKinds)
	}
	for i := range wantKinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("segment-0 kinds = %v, want %v", kinds, wantKinds)
		}
	}
}

func TestSuperviseWalksFullLadderThenGivesUp(t *testing.T) {
	clk := &fakeClock{}
	boom := errors.New("always broken")
	var engines []Engine
	d := Driver{
		Steps: 2,
		Run: func(ctx context.Context, eng Engine, from, steps int) error {
			engines = append(engines, eng)
			return boom
		},
		Checkpoint: func() error { return nil },
		Restore:    func() error { return nil },
	}
	p := noJitter(clk)
	p.MaxAttempts = 6
	p.DegradeAfter = 2
	rep, err := Supervise(context.Background(), d, p)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the driver error", err)
	}
	wantEng := []Engine{EngineFull, EngineFull, EngineSTRAP, EngineSTRAP, EngineLoops, EngineLoops}
	if len(engines) != len(wantEng) {
		t.Fatalf("engines = %v, want %v", engines, wantEng)
	}
	for i := range wantEng {
		if engines[i] != wantEng[i] {
			t.Fatalf("engines = %v, want %v", engines, wantEng)
		}
	}
	if rep.Err == nil || rep.Degradations != 2 || rep.FinalEngine != EngineLoops || rep.StepsDone != 0 {
		t.Fatalf("report = %+v", rep)
	}
	last := rep.Events[len(rep.Events)-1]
	if last.Kind != telemetry.SupGiveUp || last.Err == "" {
		t.Fatalf("last event = %+v, want give-up", last)
	}
	// The ladder bottoms out at LOOPS: no rung below, so exactly 2
	// degradations despite 5 failures after the first.
	if len(clk.sleeps) != 5 {
		t.Fatalf("sleeps = %v, want 5 backoffs", clk.sleeps)
	}
}

func TestSuperviseNoCheckpointFailsFast(t *testing.T) {
	clk := &fakeClock{}
	boom := errors.New("unrecoverable")
	runs, checkpoints := 0, 0
	d := Driver{
		Steps: 4,
		Run: func(ctx context.Context, eng Engine, from, steps int) error {
			runs++
			return boom
		},
		Checkpoint: func() error { checkpoints++; return nil },
		Restore:    func() error { t.Fatal("restore without checkpoint"); return nil },
	}
	p := noJitter(clk)
	p.NoCheckpoint = true
	rep, err := Supervise(context.Background(), d, p)
	if !errors.Is(err, boom) || runs != 1 || checkpoints != 0 ||
		rep.Checkpoints != 0 || rep.Retries != 0 || len(clk.sleeps) != 0 {
		t.Fatalf("err = %v, runs = %d, report = %+v", err, runs, rep)
	}
}

func TestSuperviseParentCancelStopsRetries(t *testing.T) {
	clk := &fakeClock{}
	ctx, cancel := context.WithCancel(context.Background())
	runs := 0
	d := Driver{
		Steps: 4,
		Run: func(ctx context.Context, eng Engine, from, steps int) error {
			runs++
			cancel() // the parent gives up while the segment is failing
			return errors.New("crash")
		},
		Checkpoint: func() error { return nil },
		Restore:    func() error { t.Fatal("restored after parent cancel"); return nil },
	}
	rep, err := Supervise(ctx, d, noJitter(clk))
	if err == nil || runs != 1 || rep.Retries != 0 || len(clk.sleeps) != 0 {
		t.Fatalf("err = %v, runs = %d, report = %+v", err, runs, rep)
	}
}

func TestSuperviseWatchdogDeadlinePerAttempt(t *testing.T) {
	clk := &fakeClock{}
	fails := 1
	d := Driver{
		Steps: 2,
		Run: func(ctx context.Context, eng Engine, from, steps int) error {
			if fails > 0 {
				fails--
				return context.DeadlineExceeded
			}
			return nil
		},
		Checkpoint: func() error { return nil },
		Restore:    func() error { return nil },
	}
	p := noJitter(clk)
	p.SegmentTimeout = 50 * time.Millisecond
	rep, err := Supervise(context.Background(), d, p)
	if err != nil {
		t.Fatal(err)
	}
	// One watchdog context per attempt, each with the configured deadline.
	if len(clk.timeouts) != 2 || clk.timeouts[0] != 50*time.Millisecond {
		t.Fatalf("timeouts = %v", clk.timeouts)
	}
	if rep.Retries != 1 || rep.StepsDone != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSuperviseVerifyMismatchRetries(t *testing.T) {
	clk := &fakeClock{}
	mismatch := &VerifyError{Segment: 0, Step: 2, Diff: 1}
	verifies, restores := 0, 0
	d := Driver{
		Steps: 4,
		Run: func(ctx context.Context, eng Engine, from, steps int) error {
			return nil
		},
		Checkpoint: func() error { return nil },
		Restore:    func() error { restores++; return nil },
		Verify: func(ctx context.Context, segment, from, steps int) error {
			verifies++
			if verifies == 1 {
				return mismatch
			}
			return nil
		},
	}
	p := noJitter(clk)
	p.SegmentSteps = 2
	p.Verify = VerifyPolicy{Enabled: true}
	rep, err := Supervise(context.Background(), d, p)
	if err != nil {
		t.Fatal(err)
	}
	if verifies != 3 || rep.Verified != 2 || rep.VerifyMismatches != 1 ||
		rep.Retries != 1 || restores != 1 {
		t.Fatalf("verifies = %d, report = %+v", verifies, rep)
	}
	if !rep.Segments[0].VerifyMismatch || !rep.Segments[0].Verified {
		t.Fatalf("segment 0 = %+v", rep.Segments[0])
	}
}

func TestSuperviseVerifyEvery(t *testing.T) {
	clk := &fakeClock{}
	var verified []int
	d := Driver{
		Steps: 6,
		Run: func(ctx context.Context, eng Engine, from, steps int) error {
			return nil
		},
		Checkpoint: func() error { return nil },
		Restore:    func() error { return nil },
		Verify: func(ctx context.Context, segment, from, steps int) error {
			verified = append(verified, segment)
			return nil
		},
	}
	p := noJitter(clk)
	p.SegmentSteps = 2
	p.Verify = VerifyPolicy{Enabled: true, Every: 2}
	if _, err := Supervise(context.Background(), d, p); err != nil {
		t.Fatal(err)
	}
	if len(verified) != 2 || verified[0] != 0 || verified[1] != 2 {
		t.Fatalf("verified segments = %v, want [0 2]", verified)
	}
}

func TestSuperviseVerifyForcesCheckpointing(t *testing.T) {
	clk := &fakeClock{}
	checkpoints := 0
	d := Driver{
		Steps: 2,
		Run: func(ctx context.Context, eng Engine, from, steps int) error {
			return nil
		},
		Checkpoint: func() error { checkpoints++; return nil },
		Restore:    func() error { return nil },
		Verify: func(ctx context.Context, segment, from, steps int) error {
			return nil
		},
	}
	p := noJitter(clk)
	p.NoCheckpoint = true
	p.Verify = VerifyPolicy{Enabled: true}
	if _, err := Supervise(context.Background(), d, p); err != nil {
		t.Fatal(err)
	}
	if checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1 (verify needs the snapshot)", checkpoints)
	}
}

func TestSuperviseCheckpointFailureIsTerminal(t *testing.T) {
	boom := errors.New("disk full")
	d := Driver{
		Steps: 2,
		Run: func(ctx context.Context, eng Engine, from, steps int) error {
			t.Fatal("run after failed checkpoint")
			return nil
		},
		Checkpoint: func() error { return boom },
		Restore:    func() error { return nil },
	}
	rep, err := Supervise(context.Background(), d, noJitter(&fakeClock{}))
	if !errors.Is(err, boom) || rep.Err == nil {
		t.Fatalf("err = %v, report = %+v", err, rep)
	}
}
