package resilience

import (
	"fmt"
	"time"

	"pochoir/internal/telemetry"
)

// Report summarizes one supervised run: what completed, what it cost in
// attempts and backoff, how far the engine ladder degraded, and the full
// ordered decision log. Returned by Supervise even on failure, alongside
// the error.
type Report struct {
	// Steps is the requested number of time steps; StepsDone is how many
	// completed (a multiple of the segment size unless the run succeeded).
	Steps     int
	StepsDone int
	// Segments holds one entry per segment in execution order, including
	// the failed final segment of an unsuccessful run.
	Segments []SegmentReport
	// Attempts counts segment executions (first tries included); Retries
	// counts only the re-executions after a failure.
	Attempts int
	Retries  int
	// Degradations counts ladder steps taken; FinalEngine is the sticky
	// rung the run ended on.
	Degradations int
	FinalEngine  Engine
	// Checkpoints and Restores count state snapshots taken and rolled
	// back to.
	Checkpoints int
	Restores    int
	// BackoffTotal is the summed backoff delay (as chosen; under a fake
	// clock no real time passes).
	BackoffTotal time.Duration
	// Verified counts shadow verifications that passed; VerifyMismatches
	// counts the ones that failed (each also counts as a segment failure).
	Verified         int
	VerifyMismatches int
	// Spills counts segment checkpoints persisted to the durable journal
	// (Policy.SpillDir); SpillErrors counts persists that failed (the run
	// continues with durability degraded); SpillBytes is the total bytes
	// written.
	Spills      int
	SpillErrors int
	SpillBytes  int64
	// LastSpillPath is the newest durably spilled checkpoint's journal
	// file and LastSpillStep its resume cursor — the "resume from here"
	// pointer the post-mortem bundle carries for a crashed run.
	LastSpillPath string
	LastSpillStep int
	// Events is the ordered supervisor decision log, the same records
	// emitted to Policy.Telemetry.
	Events []telemetry.SupEvent
	// Err is the terminal error of an unsuccessful run (also returned by
	// Supervise).
	Err error
}

// SegmentReport describes one segment's execution.
type SegmentReport struct {
	// Index is the segment's position (0-based); it covers time steps
	// [FromStep, FromStep+Steps).
	Index    int
	FromStep int
	Steps    int
	// Attempts is how many times the segment was executed; Engine is the
	// rung that finally ran it (or the last one tried on failure).
	Attempts int
	Engine   Engine
	// Failures holds the error string of every failed attempt in order.
	Failures []string
	// Verified reports a passed shadow verification of this segment;
	// VerifyMismatch reports that at least one attempt failed verification.
	Verified       bool
	VerifyMismatch bool
	// Backoff is the summed backoff delay spent on this segment.
	Backoff time.Duration
}

// VerifyError reports a shadow-verification mismatch: the re-executed
// reference value at a grid point disagreed with the segment's result
// beyond the tolerance.
type VerifyError struct {
	// Segment is the segment index; Step is the absolute time step whose
	// state was compared.
	Segment int
	Step    int
	// Index is the grid point (one coordinate per dimension).
	Index []int
	// Diff is the absolute difference observed.
	Diff float64
	// Detail carries the got/want values formatted by the comparer.
	Detail string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("resilience: shadow verification mismatch in segment %d at step %d, point %v: |diff|=%.6g (%s)",
		e.Segment, e.Step, e.Index, e.Diff, e.Detail)
}
