// Package resilience is the supervision layer over the hardened execution
// primitives of PR 2: it turns one long stencil run into a sequence of
// checkpointed time segments, each executed under a per-segment watchdog
// deadline and retried — after restoring the segment's checkpoint — under a
// jittered exponential-backoff policy with a bounded attempt budget. A
// fault at step 9,900 of 10,000 then costs one segment, not the run.
//
// Repeated failures of the same segment walk a degradation ladder of
// execution engines, by default
//
//	TRAP (hyperspace cuts)  →  STRAP (serial space cuts)  →  LOOPS
//	(time-serial checked sweeps)
//
// so a bug in the recursive decomposition degrades service instead of
// denying it: the LOOPS rung never decomposes and never spawns. An optional
// shadow-verification mode re-executes a sampled sub-box of each completed
// segment with the reference executor and compares the results within a
// tolerance, catching silent corruption that panics never surface; a
// mismatch is treated exactly like a segment failure (restore, back off,
// retry, degrade).
//
// The supervisor is generic: it drives a Driver of closures (run a segment
// with a given engine, checkpoint, restore, verify) supplied by
// pochoir.Stencil.RunSupervised, and reports every decision twice — as
// typed telemetry.SupEvent records through the run's Recorder, and in the
// Report returned to the caller. Time is abstracted behind Clock so the
// backoff and watchdog logic is testable with a fake clock and zero real
// sleeps.
package resilience

import (
	"context"
	"math/rand"
	"time"

	"pochoir/internal/flight"
	"pochoir/internal/metrics"
	"pochoir/internal/telemetry"
)

// Engine names a rung of the degradation ladder. The supervisor itself
// attaches no semantics to the values beyond their order in Policy.Ladder;
// the Driver maps them onto real execution engines.
type Engine int

const (
	// EngineFull is the configured recursive engine (TRAP with hyperspace
	// cuts by default).
	EngineFull Engine = iota
	// EngineSTRAP is the serial-space-cut decomposition — still recursive,
	// but a different cut strategy, so it sidesteps hyperspace-cut bugs.
	EngineSTRAP
	// EngineLoops is the time-serial checked loop engine of last resort:
	// no decomposition, no parallelism, every access checked.
	EngineLoops
)

func (e Engine) String() string {
	switch e {
	case EngineFull:
		return "TRAP"
	case EngineSTRAP:
		return "STRAP"
	case EngineLoops:
		return "LOOPS"
	}
	return "Engine(?)"
}

// Clock abstracts time for the supervisor so the backoff and watchdog
// logic runs deterministically under test with no real sleeps.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case and nil otherwise.
	Sleep(ctx context.Context, d time.Duration) error
	// WithTimeout derives the per-attempt watchdog context.
	WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// SystemClock is the real-time Clock used when Policy.Clock is nil.
var SystemClock Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (systemClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, d)
}

// VerifyPolicy configures shadow verification of completed segments.
type VerifyPolicy struct {
	// Enabled turns shadow verification on.
	Enabled bool
	// Every verifies one segment in Every (1 = every segment, the
	// default).
	Every int
	// BoxSide is the per-dimension side of the sampled sub-box compared
	// at the segment's final state; the re-executed dependency cone widens
	// from it by the stencil's reach per time step. Default 4.
	BoxSide int
	// Tolerance is the comparison tolerance, applied both absolutely and
	// relative to the larger magnitude. Zero — the default — demands
	// bit-identical values.
	Tolerance float64
}

// Policy configures the supervisor. The zero value is usable: one segment
// covering the whole run, 3 attempts with ~10ms–1s jittered exponential
// backoff, degradation after every 2 failures, no watchdog, no shadow
// verification, real clock.
type Policy struct {
	// SegmentSteps is the number of time steps per segment; <= 0 runs the
	// whole computation as a single segment.
	SegmentSteps int
	// MaxAttempts bounds the attempts per segment (first try included);
	// <= 0 means 3.
	MaxAttempts int
	// DegradeAfter steps down the engine ladder after every DegradeAfter
	// consecutive failures of the current segment; <= 0 means 2.
	// Degradation is sticky for the remainder of the run: an engine that
	// broke once is not trusted with later segments.
	DegradeAfter int
	// SegmentTimeout is the per-attempt watchdog deadline; 0 disables it.
	SegmentTimeout time.Duration
	// BaseDelay is the backoff before the first retry; <= 0 means 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (before jitter); <= 0 means 1s.
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor; values <= 1 mean 2.
	Multiplier float64
	// Jitter spreads each delay uniformly over [d*(1-J), d*(1+J)]. Zero
	// selects the default 0.2; negative disables jitter.
	Jitter float64
	// NoCheckpoint skips the inter-segment checkpoints — the minimal-
	// overhead happy path. Failures are then unrecoverable: the first
	// failed attempt ends the run (the stencil stays poisoned).
	NoCheckpoint bool
	// SpillDir, when non-empty, makes every segment checkpoint durable:
	// the driver persists it to the crash-safe spill journal in this
	// directory (versioned wire format, atomic temp-file+rename writes,
	// newest SpillKeep entries retained), so a kill -9, OOM, or host
	// reboot costs at most one segment — a fresh process resumes from the
	// newest good entry (pochoir.Stencil.ResumeSupervised). Implies
	// checkpointing: SpillDir overrides NoCheckpoint. A failed spill never
	// fails the run; it is reported (SupSpill event with Err, spill-error
	// counter) and the run continues with durability degraded.
	SpillDir string
	// SpillKeep bounds the journal's retained entries; <= 0 means 3.
	SpillKeep int
	// Ladder overrides the degradation ladder; empty means
	// [EngineFull, EngineSTRAP, EngineLoops].
	Ladder []Engine
	// Verify configures shadow verification of completed segments.
	Verify VerifyPolicy
	// Clock overrides the time source (tests); nil means SystemClock.
	Clock Clock
	// Rand overrides the jitter source with a func returning [0,1);
	// nil means math/rand.
	Rand func() float64
	// Telemetry, when non-nil, receives every supervisor decision as a
	// typed SupEvent (pochoir defaults it to the run's recorder).
	Telemetry *telemetry.Recorder
	// Metrics, when non-nil, also counts every decision in the live
	// metrics registry (retries, degradations, watchdog trips, verify
	// outcomes, ...), so a monitor sees a supervised run's health mid-run.
	Metrics *metrics.Registry
	// Flight, when non-nil, stamps every decision into the black-box flight
	// recorder, so a post-mortem bundle interleaves supervisor decisions
	// with the engine events around them (pochoir defaults it to the
	// process-wide recorder).
	Flight *flight.Recorder
	// OnEvent, when non-nil, receives every supervisor decision
	// synchronously from the supervising goroutine, after its report
	// timestamp is stamped. The causal tracer hangs off this hook
	// (trace.SupervisorSpans) to grow the run's span tree live; any other
	// observer may too. It must not block.
	OnEvent func(telemetry.SupEvent)
}

// WithDefaults returns p with every unset knob replaced by its default.
// It is idempotent (Supervise applies it internally; callers that need the
// effective values — e.g. to share them with their own closures — may apply
// it first). A negative Jitter stays negative: that is the "disabled"
// encoding, distinguishable from the unset zero.
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.DegradeAfter <= 0 {
		p.DegradeAfter = 2
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = 0.2
	case p.Jitter > 1:
		p.Jitter = 1
	}
	if len(p.Ladder) == 0 {
		p.Ladder = []Engine{EngineFull, EngineSTRAP, EngineLoops}
	}
	if p.Clock == nil {
		p.Clock = SystemClock
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	if p.Verify.Every <= 0 {
		p.Verify.Every = 1
	}
	if p.Verify.BoxSide <= 0 {
		p.Verify.BoxSide = 4
	}
	if p.Verify.Tolerance < 0 {
		p.Verify.Tolerance = 0
	}
	return p
}
