package resilience

import (
	"testing"
	"time"
)

func TestBackoffExponentialGrowthAndCap(t *testing.T) {
	p := Policy{
		BaseDelay:  10 * time.Millisecond,
		MaxDelay:   100 * time.Millisecond,
		Multiplier: 2,
		Jitter:     -1, // disabled
	}.WithDefaults()
	want := []time.Duration{
		10 * time.Millisecond,  // retry 1
		20 * time.Millisecond,  // retry 2
		40 * time.Millisecond,  // retry 3
		80 * time.Millisecond,  // retry 4
		100 * time.Millisecond, // retry 5: capped
		100 * time.Millisecond, // retry 6: stays capped
	}
	for i, w := range want {
		if got := p.backoffDelay(i + 1); got != w {
			t.Errorf("retry %d: delay = %v, want %v", i+1, got, w)
		}
	}
	// Out-of-range retry numbers clamp to the first retry.
	if got := p.backoffDelay(0); got != want[0] {
		t.Errorf("retry 0: delay = %v, want %v", got, want[0])
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// With jitter j, every delay must land in [d*(1-j), d*(1+j)]; the
	// extremes of the unit roll map to the extremes of the window.
	const base = 100 * time.Millisecond
	for _, roll := range []float64{0, 0.25, 0.5, 0.75, 0.999999} {
		p := Policy{
			BaseDelay:  base,
			MaxDelay:   time.Second,
			Multiplier: 2,
			Jitter:     0.2,
			Rand:       func() float64 { return roll },
		}.WithDefaults()
		got := p.backoffDelay(1)
		lo := time.Duration(0.8 * float64(base))
		hi := time.Duration(1.2 * float64(base))
		if got < lo || got > hi {
			t.Errorf("roll %v: delay %v outside [%v, %v]", roll, got, lo, hi)
		}
		want := time.Duration(float64(base) * (0.8 + 0.4*roll))
		if got != want {
			t.Errorf("roll %v: delay %v, want %v", roll, got, want)
		}
	}
}

func TestBackoffJitterAppliesAfterCap(t *testing.T) {
	// The cap bounds the exponential growth, not the jittered result: a
	// high roll may exceed MaxDelay by at most the jitter fraction.
	p := Policy{
		BaseDelay:  80 * time.Millisecond,
		MaxDelay:   100 * time.Millisecond,
		Multiplier: 2,
		Jitter:     0.2,
		Rand:       func() float64 { return 1 },
	}.WithDefaults()
	got := p.backoffDelay(5)
	if want := 120 * time.Millisecond; got != want {
		t.Errorf("delay = %v, want capped 100ms * 1.2 = %v", got, want)
	}
}

func TestBackoffDefaultJitterIsOn(t *testing.T) {
	p := Policy{Rand: func() float64 { return 0 }}.WithDefaults()
	if p.Jitter != 0.2 {
		t.Fatalf("default jitter = %v, want 0.2", p.Jitter)
	}
	if got, want := p.backoffDelay(1), time.Duration(0.8*float64(10*time.Millisecond)); got != want {
		t.Errorf("delay = %v, want %v", got, want)
	}
}
