package resilience

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"pochoir/internal/telemetry"
)

// MarshalJSON renders the engine as its stable String() name.
func (e Engine) MarshalJSON() ([]byte, error) {
	return json.Marshal(e.String())
}

// UnmarshalJSON parses the engine name back.
func (e *Engine) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "TRAP":
		*e = EngineFull
	case "STRAP":
		*e = EngineSTRAP
	case "LOOPS":
		*e = EngineLoops
	default:
		return fmt.Errorf("resilience: unknown engine %q", s)
	}
	return nil
}

// segmentReportJSON fixes SegmentReport's wire field names so reports embed
// stably in post-mortem bundles and /statusz.
type segmentReportJSON struct {
	Index          int      `json:"index"`
	FromStep       int      `json:"from_step"`
	Steps          int      `json:"steps"`
	Attempts       int      `json:"attempts"`
	Engine         Engine   `json:"engine"`
	Failures       []string `json:"failures,omitempty"`
	Verified       bool     `json:"verified,omitempty"`
	VerifyMismatch bool     `json:"verify_mismatch,omitempty"`
	BackoffNS      int64    `json:"backoff_ns,omitempty"`
}

// MarshalJSON renders the segment with stable field names.
func (s SegmentReport) MarshalJSON() ([]byte, error) {
	return json.Marshal(segmentReportJSON{
		Index: s.Index, FromStep: s.FromStep, Steps: s.Steps, Attempts: s.Attempts,
		Engine: s.Engine, Failures: s.Failures, Verified: s.Verified,
		VerifyMismatch: s.VerifyMismatch, BackoffNS: s.Backoff.Nanoseconds(),
	})
}

// UnmarshalJSON reverses MarshalJSON.
func (s *SegmentReport) UnmarshalJSON(data []byte) error {
	var j segmentReportJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = SegmentReport{
		Index: j.Index, FromStep: j.FromStep, Steps: j.Steps, Attempts: j.Attempts,
		Engine: j.Engine, Failures: j.Failures, Verified: j.Verified,
		VerifyMismatch: j.VerifyMismatch, Backoff: time.Duration(j.BackoffNS),
	}
	return nil
}

// reportJSON fixes Report's wire field names; Err flattens to its string.
type reportJSON struct {
	Steps            int                  `json:"steps"`
	StepsDone        int                  `json:"steps_done"`
	Segments         []SegmentReport      `json:"segments"`
	Attempts         int                  `json:"attempts"`
	Retries          int                  `json:"retries,omitempty"`
	Degradations     int                  `json:"degradations,omitempty"`
	FinalEngine      Engine               `json:"final_engine"`
	Checkpoints      int                  `json:"checkpoints,omitempty"`
	Restores         int                  `json:"restores,omitempty"`
	BackoffNS        int64                `json:"backoff_ns,omitempty"`
	Verified         int                  `json:"verified,omitempty"`
	VerifyMismatches int                  `json:"verify_mismatches,omitempty"`
	Spills           int                  `json:"spills,omitempty"`
	SpillErrors      int                  `json:"spill_errors,omitempty"`
	SpillBytes       int64                `json:"spill_bytes,omitempty"`
	LastSpillPath    string               `json:"last_spill_path,omitempty"`
	LastSpillStep    int                  `json:"last_spill_step,omitempty"`
	Events           []telemetry.SupEvent `json:"events,omitempty"`
	Err              string               `json:"error,omitempty"`
}

// MarshalJSON renders the report with stable field names, the engines as
// strings, and the terminal error flattened to its message, so reports embed
// cleanly in pochoir-postmortem bundles.
func (r Report) MarshalJSON() ([]byte, error) {
	j := reportJSON{
		Steps: r.Steps, StepsDone: r.StepsDone, Segments: r.Segments,
		Attempts: r.Attempts, Retries: r.Retries, Degradations: r.Degradations,
		FinalEngine: r.FinalEngine, Checkpoints: r.Checkpoints, Restores: r.Restores,
		BackoffNS: r.BackoffTotal.Nanoseconds(), Verified: r.Verified,
		VerifyMismatches: r.VerifyMismatches, Spills: r.Spills,
		SpillErrors: r.SpillErrors, SpillBytes: r.SpillBytes,
		LastSpillPath: r.LastSpillPath, LastSpillStep: r.LastSpillStep,
		Events: r.Events,
	}
	if r.Err != nil {
		j.Err = r.Err.Error()
	}
	return json.Marshal(j)
}

// UnmarshalJSON reverses MarshalJSON; a non-empty error string loads as an
// opaque error (the concrete type does not survive the wire).
func (r *Report) UnmarshalJSON(data []byte) error {
	var j reportJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*r = Report{
		Steps: j.Steps, StepsDone: j.StepsDone, Segments: j.Segments,
		Attempts: j.Attempts, Retries: j.Retries, Degradations: j.Degradations,
		FinalEngine: j.FinalEngine, Checkpoints: j.Checkpoints, Restores: j.Restores,
		BackoffTotal: time.Duration(j.BackoffNS), Verified: j.Verified,
		VerifyMismatches: j.VerifyMismatches, Spills: j.Spills,
		SpillErrors: j.SpillErrors, SpillBytes: j.SpillBytes,
		LastSpillPath: j.LastSpillPath, LastSpillStep: j.LastSpillStep,
		Events: j.Events,
	}
	if j.Err != "" {
		r.Err = errors.New(j.Err)
	}
	return nil
}
