package resilience

import "time"

// backoffDelay returns the delay before retry number retry (1 = the first
// retry): exponential growth from BaseDelay by Multiplier, capped at
// MaxDelay before jitter, then spread uniformly over
// [d*(1-Jitter), d*(1+Jitter)]. Policy must already have defaults applied.
func (p Policy) backoffDelay(retry int) time.Duration {
	if retry < 1 {
		retry = 1
	}
	d := float64(p.BaseDelay)
	cap := float64(p.MaxDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= cap {
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter + 2*p.Jitter*p.Rand()
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
