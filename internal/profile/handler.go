package profile

// The /profilez endpoints: an ASCII top-N + per-label view for humans and
// a pochoir-profile/v1 JSON document for machines. Both serve the
// aggregate of the capture ring by default (more samples, steadier
// shares); ?window=last narrows to the newest capture, and ?kind=heap
// downloads the newest raw heap snapshot. Serving is a ring copy under
// the profiler's mutex, so scraping while a capture lands is race-free.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// handlerReport is the /profilez.json document.
type handlerReport struct {
	Schema string `json:"schema"`
	// Captures counts ring entries by kind at serve time.
	Captures map[string]int `json:"captures"`
	// Report is the aggregated (or, with ?window=last, the newest)
	// attribution; null until the first window completes.
	Report *Report `json:"report"`
}

// NewHandler serves the profiler's state. It handles both /profilez and
// /profilez.json, dispatching on the path suffix.
func NewHandler(p *Profiler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p == nil {
			http.Error(w, "continuous profiler disabled", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("kind") == "heap" {
			c := p.Latest("heap")
			if c == nil {
				http.Error(w, "no heap snapshot captured yet", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="heap.pb.gz"`)
			w.Write(c.Raw)
			return
		}
		var rep *Report
		if r.URL.Query().Get("window") == "last" {
			if c := p.Latest("cpu"); c != nil {
				rep = c.Report
			}
		} else {
			rep = p.Aggregate()
		}
		counts := map[string]int{}
		for _, c := range p.Snapshot() {
			counts[c.Kind]++
		}
		if r.URL.Path == "/profilez.json" || r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(handlerReport{Schema: Schema, Captures: counts, Report: rep})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if rep == nil {
			fmt.Fprintf(w, "%s\nno CPU capture completed yet (captures: %v)\n", Schema, counts)
			return
		}
		if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n > 0 && n < len(rep.Top) {
			trimmed := *rep
			trimmed.Top = rep.Top[:n]
			rep = &trimmed
		}
		rep.WriteText(w)
	})
}
