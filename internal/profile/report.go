package profile

// Analysis: aggregate a decoded pprof profile into the schema-versioned
// pochoir-profile/v1 report — CPU seconds by function (flat and
// cumulative), by goroutine label (tenant, job, priority, engine, phase),
// and the hot-path shares the regression sentinel watches: the fraction of
// CPU spent inside labeled base-case kernels versus the walker's own
// decomposition machinery.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Schema identifies the report wire format.
const Schema = "pochoir-profile/v1"

// AttributionKeys are the label keys the analyzer breaks CPU down by.
// They match the labels applied by the gateway (tenant, job, priority),
// the supervisor (engine, phase=walk|checkpoint|verify), and the walker's
// armed base-case labels (phase=base|boundary).
var AttributionKeys = []string{"tenant", "job", "priority", "engine", "phase"}

// walkerFramePrefix classifies a stack frame as walker machinery: the
// trapezoidal decomposition itself, as opposed to the user kernel it
// drives.
const walkerFramePrefix = "pochoir/internal/core."

// Report is one analyzed capture window (or an aggregate of several).
type Report struct {
	Schema     string    `json:"schema"`
	CapturedAt time.Time `json:"captured_at"`
	// Windows is the number of capture windows merged into this report
	// (1 for a single window).
	Windows    int   `json:"windows"`
	DurationNS int64 `json:"duration_ns"`
	PeriodNS   int64 `json:"period_ns,omitempty"`
	Samples    int64 `json:"samples"`
	// CPUSeconds is the total sampled CPU time in the window(s).
	CPUSeconds float64 `json:"cpu_seconds"`
	// Top holds per-function CPU, sorted by flat time descending.
	Top []FuncStat `json:"top,omitempty"`
	// ByLabel maps each attribution key to its per-value CPU breakdown,
	// sorted by CPU descending. Samples carrying no value for a key are
	// accounted under the empty value "".
	ByLabel map[string][]LabelStat `json:"by_label,omitempty"`
	// PhaseShares is ByLabel["phase"] re-expressed as shares of total
	// CPU, the sentinel's primary signal.
	PhaseShares map[string]float64 `json:"phase_shares,omitempty"`
	// KernelShare is the fraction of CPU inside labeled base-case
	// kernels (phase=base plus phase=boundary).
	KernelShare float64 `json:"kernel_share"`
	// WalkerShare is the fraction of CPU in walker decomposition frames
	// outside the kernels — the overhead the paper argues stays small.
	WalkerShare float64 `json:"walker_share"`
}

// FuncStat is one function's CPU attribution.
type FuncStat struct {
	Name        string  `json:"name"`
	FlatSeconds float64 `json:"flat_seconds"`
	CumSeconds  float64 `json:"cum_seconds"`
	// Share is FlatSeconds over the report's total CPUSeconds.
	Share float64 `json:"share"`
}

// LabelStat is one label value's CPU attribution.
type LabelStat struct {
	Value      string  `json:"value"`
	CPUSeconds float64 `json:"cpu_seconds"`
	Share      float64 `json:"share"`
}

// Analyze decodes a pprof CPU profile and aggregates it into a Report.
// topN bounds the function table; topN <= 0 keeps the default of 20.
func Analyze(raw []byte, topN int) (*Report, error) {
	if topN <= 0 {
		topN = 20
	}
	p, err := decodeProfile(raw)
	if err != nil {
		return nil, err
	}
	// Pick the value column measured in nanoseconds (cpu/nanoseconds for
	// CPU profiles). Fall back to the last column, which is the default
	// sample type for every runtime profile.
	valueIdx := len(p.sampleTypes) - 1
	for i, vt := range p.sampleTypes {
		if vt.unit == "nanoseconds" {
			valueIdx = i
			break
		}
	}
	if valueIdx < 0 {
		return nil, fmt.Errorf("profile: no sample types")
	}

	r := &Report{
		Schema:     Schema,
		Windows:    1,
		DurationNS: p.durationNS,
		PeriodNS:   p.periodNS,
		ByLabel:    make(map[string][]LabelStat, len(AttributionKeys)),
	}
	if p.timeNS > 0 {
		r.CapturedAt = time.Unix(0, p.timeNS).UTC()
	}

	type funcAgg struct{ flat, cum int64 }
	funcs := make(map[string]*funcAgg)
	labels := make(map[string]map[string]int64, len(AttributionKeys))
	for _, k := range AttributionKeys {
		labels[k] = make(map[string]int64)
	}
	var totalNS, kernelNS, walkerNS int64
	seen := make(map[string]bool)
	for _, s := range p.samples {
		if valueIdx >= len(s.values) {
			return nil, fmt.Errorf("profile: sample has %d values, want index %d", len(s.values), valueIdx)
		}
		ns := s.values[valueIdx]
		if ns <= 0 {
			continue
		}
		totalNS += ns
		phase := s.labels["phase"]
		kernel := phase == "base" || phase == "boundary"
		if kernel {
			kernelNS += ns
		}
		for _, k := range AttributionKeys {
			labels[k][s.labels[k]] += ns
		}
		// Flat time goes to the leaf function; cumulative time to every
		// distinct function on the stack. locs[0] is the leaf location
		// and each location's first line is its deepest inline frame.
		clear(seen)
		inWalker := false
		for li, loc := range s.locs {
			for fi, fn := range p.locFuncs[loc] {
				if li == 0 && fi == 0 {
					agg := funcs[fn]
					if agg == nil {
						agg = &funcAgg{}
						funcs[fn] = agg
					}
					agg.flat += ns
				}
				if !seen[fn] {
					seen[fn] = true
					agg := funcs[fn]
					if agg == nil {
						agg = &funcAgg{}
						funcs[fn] = agg
					}
					agg.cum += ns
					if !inWalker && strings.HasPrefix(fn, walkerFramePrefix) {
						inWalker = true
					}
				}
			}
		}
		if inWalker && !kernel {
			walkerNS += ns
		}
	}

	r.Samples = int64(len(p.samples))
	r.CPUSeconds = float64(totalNS) / 1e9
	if totalNS > 0 {
		r.KernelShare = float64(kernelNS) / float64(totalNS)
		r.WalkerShare = float64(walkerNS) / float64(totalNS)
	}
	for name, agg := range funcs {
		fs := FuncStat{
			Name:        name,
			FlatSeconds: float64(agg.flat) / 1e9,
			CumSeconds:  float64(agg.cum) / 1e9,
		}
		if totalNS > 0 {
			fs.Share = float64(agg.flat) / float64(totalNS)
		}
		r.Top = append(r.Top, fs)
	}
	sort.Slice(r.Top, func(i, j int) bool {
		if r.Top[i].FlatSeconds != r.Top[j].FlatSeconds {
			return r.Top[i].FlatSeconds > r.Top[j].FlatSeconds
		}
		return r.Top[i].Name < r.Top[j].Name
	})
	if len(r.Top) > topN {
		r.Top = r.Top[:topN]
	}
	for _, k := range AttributionKeys {
		for v, ns := range labels[k] {
			if ns == 0 {
				continue
			}
			ls := LabelStat{Value: v, CPUSeconds: float64(ns) / 1e9}
			if totalNS > 0 {
				ls.Share = float64(ns) / float64(totalNS)
			}
			r.ByLabel[k] = append(r.ByLabel[k], ls)
		}
		sort.Slice(r.ByLabel[k], func(i, j int) bool {
			if r.ByLabel[k][i].CPUSeconds != r.ByLabel[k][j].CPUSeconds {
				return r.ByLabel[k][i].CPUSeconds > r.ByLabel[k][j].CPUSeconds
			}
			return r.ByLabel[k][i].Value < r.ByLabel[k][j].Value
		})
	}
	r.PhaseShares = make(map[string]float64, len(r.ByLabel["phase"]))
	for _, ls := range r.ByLabel["phase"] {
		key := ls.Value
		if key == "" {
			key = "unlabeled"
		}
		r.PhaseShares[key] = ls.Share
	}
	return r, nil
}

// Merge combines several single-window reports into one aggregate:
// CPU seconds add, shares are recomputed over the combined total, and the
// function table is re-ranked. Nil reports are skipped; Merge returns nil
// when nothing remains.
func Merge(reports []*Report) *Report {
	var live []*Report
	for _, r := range reports {
		if r != nil {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return nil
	}
	out := &Report{
		Schema:  Schema,
		ByLabel: make(map[string][]LabelStat),
	}
	type funcAgg struct{ flat, cum float64 }
	funcs := make(map[string]*funcAgg)
	labels := make(map[string]map[string]float64)
	var kernel, walker float64
	for _, r := range live {
		out.Windows += r.Windows
		out.DurationNS += r.DurationNS
		out.Samples += r.Samples
		out.CPUSeconds += r.CPUSeconds
		if r.PeriodNS > out.PeriodNS {
			out.PeriodNS = r.PeriodNS
		}
		if r.CapturedAt.After(out.CapturedAt) {
			out.CapturedAt = r.CapturedAt
		}
		kernel += r.KernelShare * r.CPUSeconds
		walker += r.WalkerShare * r.CPUSeconds
		for _, fs := range r.Top {
			agg := funcs[fs.Name]
			if agg == nil {
				agg = &funcAgg{}
				funcs[fs.Name] = agg
			}
			agg.flat += fs.FlatSeconds
			agg.cum += fs.CumSeconds
		}
		for k, stats := range r.ByLabel {
			if labels[k] == nil {
				labels[k] = make(map[string]float64)
			}
			for _, ls := range stats {
				labels[k][ls.Value] += ls.CPUSeconds
			}
		}
	}
	if out.CPUSeconds > 0 {
		out.KernelShare = kernel / out.CPUSeconds
		out.WalkerShare = walker / out.CPUSeconds
	}
	for name, agg := range funcs {
		fs := FuncStat{Name: name, FlatSeconds: agg.flat, CumSeconds: agg.cum}
		if out.CPUSeconds > 0 {
			fs.Share = agg.flat / out.CPUSeconds
		}
		out.Top = append(out.Top, fs)
	}
	sort.Slice(out.Top, func(i, j int) bool {
		if out.Top[i].FlatSeconds != out.Top[j].FlatSeconds {
			return out.Top[i].FlatSeconds > out.Top[j].FlatSeconds
		}
		return out.Top[i].Name < out.Top[j].Name
	})
	if len(out.Top) > 20 {
		out.Top = out.Top[:20]
	}
	for k, vals := range labels {
		for v, sec := range vals {
			ls := LabelStat{Value: v, CPUSeconds: sec}
			if out.CPUSeconds > 0 {
				ls.Share = sec / out.CPUSeconds
			}
			out.ByLabel[k] = append(out.ByLabel[k], ls)
		}
		sort.Slice(out.ByLabel[k], func(i, j int) bool {
			if out.ByLabel[k][i].CPUSeconds != out.ByLabel[k][j].CPUSeconds {
				return out.ByLabel[k][i].CPUSeconds > out.ByLabel[k][j].CPUSeconds
			}
			return out.ByLabel[k][i].Value < out.ByLabel[k][j].Value
		})
	}
	out.PhaseShares = make(map[string]float64, len(out.ByLabel["phase"]))
	for _, ls := range out.ByLabel["phase"] {
		key := ls.Value
		if key == "" {
			key = "unlabeled"
		}
		out.PhaseShares[key] = ls.Share
	}
	return out
}

// WriteText renders the report as the /profilez ASCII view: totals, the
// top-N function table, and the per-label breakdowns.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%s — where the CPU goes\n", Schema)
	fmt.Fprintf(w, "windows %d  samples %d  cpu %.3fs  kernel %.1f%%  walker-overhead %.1f%%\n",
		r.Windows, r.Samples, r.CPUSeconds, 100*r.KernelShare, 100*r.WalkerShare)
	if !r.CapturedAt.IsZero() {
		fmt.Fprintf(w, "captured %s\n", r.CapturedAt.Format(time.RFC3339))
	}
	if len(r.Top) > 0 {
		fmt.Fprintf(w, "\n%8s %8s %7s  function\n", "flat(s)", "cum(s)", "share")
		for _, fs := range r.Top {
			fmt.Fprintf(w, "%8.3f %8.3f %6.1f%%  %s\n", fs.FlatSeconds, fs.CumSeconds, 100*fs.Share, fs.Name)
		}
	}
	for _, k := range AttributionKeys {
		stats := r.ByLabel[k]
		if len(stats) == 0 {
			continue
		}
		fmt.Fprintf(w, "\nby %s:\n", k)
		for _, ls := range stats {
			v := ls.Value
			if v == "" {
				v = "(unlabeled)"
			}
			fmt.Fprintf(w, "  %6.1f%% %8.3fs  %s\n", 100*ls.Share, ls.CPUSeconds, v)
		}
	}
}
