package profile

// A minimal decoder for the pprof wire format (gzip-compressed protobuf,
// profile.proto) built on a hand-rolled varint walker — no generated code,
// no dependencies. It decodes exactly the subset the analyzer needs: the
// sample-type table, every sample with its stack and string labels, the
// location→function tables, and the sampling period.
//
// The decoder follows the exact-read discipline of internal/wire: every
// byte of the input must be consumed (a nested message that over- or
// under-runs its declared length is an error, and trailing garbage after
// the top-level message is an error), declared lengths are validated
// against the bytes actually present before anything is allocated, and all
// allocation is proportional to the input itself — protobuf carries no
// up-front element counts, so slices and maps only ever grow as bytes are
// parsed. Gzip output is capped so a tiny hostile input cannot balloon
// into an arbitrarily large decompression.

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// maxDecompressed caps the size of a decompressed profile. Real runtime
// profiles are a few hundred KiB; 64 MiB leaves two orders of magnitude of
// headroom while bounding decompression bombs.
const maxDecompressed = 64 << 20

var errTruncated = errors.New("profile: truncated input")

// rawProfile is the decoded, string-resolved subset of profile.proto.
type rawProfile struct {
	sampleTypes []valueType
	samples     []rawSample
	// locFuncs maps a location id to its function names, leaf-most
	// (deepest inline frame) first, matching Location.Line order.
	locFuncs   map[uint64][]string
	periodNS   int64
	durationNS int64
	timeNS     int64
}

type valueType struct {
	typ  string
	unit string
}

type rawSample struct {
	locs   []uint64
	values []int64
	labels map[string]string
}

// decodeProfile parses a pprof profile, transparently decompressing the
// gzip framing the runtime emits. Plain (uncompressed) protobuf is also
// accepted so analysis can round-trip its own buffers.
func decodeProfile(data []byte) (*rawProfile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile: gzip: %w", err)
		}
		zr.Multistream(false)
		plain, err := io.ReadAll(io.LimitReader(zr, maxDecompressed+1))
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		if len(plain) > maxDecompressed {
			return nil, fmt.Errorf("profile: decompressed size exceeds %d bytes", maxDecompressed)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("profile: gzip close: %w", err)
		}
		data = plain
	}
	return parseProfile(data)
}

// pbuf is a protobuf wire-format cursor over one message's bytes.
type pbuf struct {
	b []byte
	i int
}

func (p *pbuf) done() bool { return p.i >= len(p.b) }

func (p *pbuf) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if p.i >= len(p.b) {
			return 0, errTruncated
		}
		c := p.b[p.i]
		p.i++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, errors.New("profile: varint overflows 64 bits")
}

// field reads one field tag, returning the field number and wire type.
func (p *pbuf) field() (num int, wt int, err error) {
	tag, err := p.varint()
	if err != nil {
		return 0, 0, err
	}
	if tag>>3 == 0 || tag>>3 > 1<<29 {
		return 0, 0, fmt.Errorf("profile: invalid field number %d", tag>>3)
	}
	return int(tag >> 3), int(tag & 7), nil
}

// bytesField reads a length-delimited payload, validating the declared
// length against the bytes actually present.
func (p *pbuf) bytesField() ([]byte, error) {
	n, err := p.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p.b)-p.i) {
		return nil, fmt.Errorf("profile: declared length %d exceeds remaining %d bytes", n, len(p.b)-p.i)
	}
	out := p.b[p.i : p.i+int(n)]
	p.i += int(n)
	return out, nil
}

// skip consumes one field's payload for an unhandled field number.
func (p *pbuf) skip(wt int) error {
	switch wt {
	case 0:
		_, err := p.varint()
		return err
	case 1:
		if len(p.b)-p.i < 8 {
			return errTruncated
		}
		p.i += 8
		return nil
	case 2:
		_, err := p.bytesField()
		return err
	case 5:
		if len(p.b)-p.i < 4 {
			return errTruncated
		}
		p.i += 4
		return nil
	default:
		return fmt.Errorf("profile: unsupported wire type %d", wt)
	}
}

// repeatedVarints parses a repeated integer field that may arrive packed
// (wire type 2) or as a single scalar (wire type 0), appending to dst.
func repeatedVarints(p *pbuf, wt int, dst []uint64) ([]uint64, error) {
	switch wt {
	case 0:
		v, err := p.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, v), nil
	case 2:
		raw, err := p.bytesField()
		if err != nil {
			return nil, err
		}
		sub := pbuf{b: raw}
		for !sub.done() {
			v, err := sub.varint()
			if err != nil {
				return nil, err
			}
			dst = append(dst, v)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("profile: repeated int with wire type %d", wt)
	}
}

// Intermediate (index-based) forms, resolved against the string table once
// the whole message has been read — profile.proto gives no ordering
// guarantee between the string table and its referents.
type pbValueType struct{ typ, unit int64 }

type pbLabel struct{ key, str int64 }

type pbSample struct {
	locs   []uint64
	values []uint64
	labels []pbLabel
}

func parseProfile(data []byte) (*rawProfile, error) {
	var (
		strings     []string
		sampleTypes []pbValueType
		samples     []pbSample
		funcNames   = map[uint64]int64{}  // function id → name string index
		locLines    = map[uint64][]uint64{} // location id → function ids, leaf first
		periodType  pbValueType
		period      int64
		durationNS  int64
		timeNS      int64
	)
	p := pbuf{b: data}
	for !p.done() {
		num, wt, err := p.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			raw, err := expectBytes(&p, wt, "sample_type")
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(raw)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			raw, err := expectBytes(&p, wt, "sample")
			if err != nil {
				return nil, err
			}
			s, err := parseSample(raw)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			raw, err := expectBytes(&p, wt, "location")
			if err != nil {
				return nil, err
			}
			id, fns, err := parseLocation(raw)
			if err != nil {
				return nil, err
			}
			locLines[id] = fns
		case 5: // function
			raw, err := expectBytes(&p, wt, "function")
			if err != nil {
				return nil, err
			}
			id, name, err := parseFunction(raw)
			if err != nil {
				return nil, err
			}
			funcNames[id] = name
		case 6: // string_table
			raw, err := expectBytes(&p, wt, "string_table")
			if err != nil {
				return nil, err
			}
			strings = append(strings, string(raw))
		case 9: // time_nanos
			v, err := expectVarint(&p, wt, "time_nanos")
			if err != nil {
				return nil, err
			}
			timeNS = int64(v)
		case 10: // duration_nanos
			v, err := expectVarint(&p, wt, "duration_nanos")
			if err != nil {
				return nil, err
			}
			durationNS = int64(v)
		case 11: // period_type
			raw, err := expectBytes(&p, wt, "period_type")
			if err != nil {
				return nil, err
			}
			periodType, err = parseValueType(raw)
			if err != nil {
				return nil, err
			}
		case 12: // period
			v, err := expectVarint(&p, wt, "period")
			if err != nil {
				return nil, err
			}
			period = int64(v)
		default:
			if err := p.skip(wt); err != nil {
				return nil, err
			}
		}
	}

	str := func(idx int64) (string, error) {
		if idx < 0 || idx >= int64(len(strings)) {
			return "", fmt.Errorf("profile: string index %d out of range (table holds %d)", idx, len(strings))
		}
		return strings[idx], nil
	}

	out := &rawProfile{
		locFuncs:   make(map[uint64][]string, len(locLines)),
		durationNS: durationNS,
		timeNS:     timeNS,
	}
	for _, vt := range sampleTypes {
		t, err := str(vt.typ)
		if err != nil {
			return nil, err
		}
		u, err := str(vt.unit)
		if err != nil {
			return nil, err
		}
		out.sampleTypes = append(out.sampleTypes, valueType{typ: t, unit: u})
	}
	if period > 0 {
		unit, err := str(periodType.unit)
		if err != nil {
			return nil, err
		}
		if unit == "nanoseconds" {
			out.periodNS = period
		}
	}
	for id, fids := range locLines {
		names := make([]string, 0, len(fids))
		for _, fid := range fids {
			nameIdx, ok := funcNames[fid]
			if !ok {
				return nil, fmt.Errorf("profile: location %d references unknown function %d", id, fid)
			}
			name, err := str(nameIdx)
			if err != nil {
				return nil, err
			}
			names = append(names, name)
		}
		out.locFuncs[id] = names
	}
	for _, s := range samples {
		rs := rawSample{locs: s.locs, values: make([]int64, len(s.values))}
		for i, v := range s.values {
			rs.values[i] = int64(v)
		}
		for _, loc := range s.locs {
			if _, ok := out.locFuncs[loc]; !ok {
				return nil, fmt.Errorf("profile: sample references unknown location %d", loc)
			}
		}
		for _, l := range s.labels {
			if l.str == 0 {
				continue // numeric label; the analyzer only attributes strings
			}
			k, err := str(l.key)
			if err != nil {
				return nil, err
			}
			v, err := str(l.str)
			if err != nil {
				return nil, err
			}
			if rs.labels == nil {
				rs.labels = make(map[string]string, 4)
			}
			rs.labels[k] = v
		}
		out.samples = append(out.samples, rs)
	}
	return out, nil
}

func expectBytes(p *pbuf, wt int, what string) ([]byte, error) {
	if wt != 2 {
		return nil, fmt.Errorf("profile: %s has wire type %d, want 2", what, wt)
	}
	return p.bytesField()
}

func expectVarint(p *pbuf, wt int, what string) (uint64, error) {
	if wt != 0 {
		return 0, fmt.Errorf("profile: %s has wire type %d, want 0", what, wt)
	}
	return p.varint()
}

func parseValueType(data []byte) (pbValueType, error) {
	var vt pbValueType
	p := pbuf{b: data}
	for !p.done() {
		num, wt, err := p.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1:
			v, err := expectVarint(&p, wt, "value_type.type")
			if err != nil {
				return vt, err
			}
			vt.typ = int64(v)
		case 2:
			v, err := expectVarint(&p, wt, "value_type.unit")
			if err != nil {
				return vt, err
			}
			vt.unit = int64(v)
		default:
			if err := p.skip(wt); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(data []byte) (pbSample, error) {
	var s pbSample
	p := pbuf{b: data}
	for !p.done() {
		num, wt, err := p.field()
		if err != nil {
			return s, err
		}
		switch num {
		case 1: // location_id
			s.locs, err = repeatedVarints(&p, wt, s.locs)
			if err != nil {
				return s, err
			}
		case 2: // value
			s.values, err = repeatedVarints(&p, wt, s.values)
			if err != nil {
				return s, err
			}
		case 3: // label
			raw, err := expectBytes(&p, wt, "sample.label")
			if err != nil {
				return s, err
			}
			l, err := parseLabel(raw)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, l)
		default:
			if err := p.skip(wt); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLabel(data []byte) (pbLabel, error) {
	var l pbLabel
	p := pbuf{b: data}
	for !p.done() {
		num, wt, err := p.field()
		if err != nil {
			return l, err
		}
		switch num {
		case 1:
			v, err := expectVarint(&p, wt, "label.key")
			if err != nil {
				return l, err
			}
			l.key = int64(v)
		case 2:
			v, err := expectVarint(&p, wt, "label.str")
			if err != nil {
				return l, err
			}
			l.str = int64(v)
		default:
			if err := p.skip(wt); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

// parseLocation returns the location id and its function ids, leaf-most
// inline frame first (the order Location.Line carries them).
func parseLocation(data []byte) (uint64, []uint64, error) {
	var id uint64
	var fns []uint64
	p := pbuf{b: data}
	for !p.done() {
		num, wt, err := p.field()
		if err != nil {
			return 0, nil, err
		}
		switch num {
		case 1:
			id, err = expectVarint(&p, wt, "location.id")
			if err != nil {
				return 0, nil, err
			}
		case 4: // line
			raw, err := expectBytes(&p, wt, "location.line")
			if err != nil {
				return 0, nil, err
			}
			fid, err := parseLine(raw)
			if err != nil {
				return 0, nil, err
			}
			fns = append(fns, fid)
		default:
			if err := p.skip(wt); err != nil {
				return 0, nil, err
			}
		}
	}
	return id, fns, nil
}

func parseLine(data []byte) (uint64, error) {
	var fid uint64
	p := pbuf{b: data}
	for !p.done() {
		num, wt, err := p.field()
		if err != nil {
			return 0, err
		}
		switch num {
		case 1:
			v, err := expectVarint(&p, wt, "line.function_id")
			if err != nil {
				return 0, err
			}
			fid = v
		default:
			if err := p.skip(wt); err != nil {
				return 0, err
			}
		}
	}
	return fid, nil
}

func parseFunction(data []byte) (id uint64, name int64, err error) {
	p := pbuf{b: data}
	for !p.done() {
		num, wt, err := p.field()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case 1:
			v, err := expectVarint(&p, wt, "function.id")
			if err != nil {
				return 0, 0, err
			}
			id = v
		case 2:
			v, err := expectVarint(&p, wt, "function.name")
			if err != nil {
				return 0, 0, err
			}
			name = int64(v)
		default:
			if err := p.skip(wt); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, name, nil
}
