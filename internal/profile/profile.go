// Package profile is the continuous-profiling subsystem: a background
// profiler that takes fixed-window CPU profiles and periodic heap
// snapshots into a bounded in-memory ring, a dependency-free pprof
// decoder, and an analyzer that attributes CPU to stencil semantics via
// goroutine labels (tenant, job, priority, engine, phase).
//
// The paper's central performance claim is that cache-oblivious
// trapezoidal decomposition keeps the CPU in the base-case kernels rather
// than in scheduling overhead. The rest of the observability stack can say
// what happened and how long it took; this package answers where the CPU
// actually went, and its regression sentinel (diff.go) flags when the
// kernel share erodes.
//
// Everything is off by default and costs one atomic load per
// instrumentation point when disarmed, mirroring the flight recorder's
// discipline.
package profile

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// armed reports whether a CPU capture window is currently open. Hot-path
// instrumentation (the walker's per-base-case phase labels) is gated on
// it, so the disarmed cost is a single atomic load.
var armed atomic.Bool

// Armed reports whether a CPU capture window is in flight. The walker
// consults it before applying per-base-case phase labels.
func Armed() bool { return armed.Load() }

// Precomputed label sets for the walker's base-case dispatch, so the armed
// path pays no label construction.
var (
	// LabelsBase marks CPU spent in interior base-case kernels.
	LabelsBase = pprof.Labels("phase", "base")
	// LabelsBoundary marks CPU spent in boundary-clone kernels.
	LabelsBoundary = pprof.Labels("phase", "boundary")
	// LabelsWalk marks a whole engine run; base/boundary override it
	// sample by sample while a capture is armed.
	LabelsWalk = pprof.Labels("phase", "walk")
	// LabelsCheckpoint marks checkpoint/spill/restore work in the
	// supervisor.
	LabelsCheckpoint = pprof.Labels("phase", "checkpoint")
	// LabelsVerify marks shadow-verification work in the supervisor.
	LabelsVerify = pprof.Labels("phase", "verify")
)

// captureMu serializes CPU capture process-wide: the runtime allows only
// one active CPU profile, so the background loop, CaptureNow, and any
// second Profiler must take turns.
var captureMu sync.Mutex

// Counter is the minimal metrics hook, satisfied by *metrics.Counter. A
// nil Counter is legal and ignored.
type Counter interface {
	Add(delta int64)
}

// Instruments holds the profiler's self-metrics. Any field may be nil.
type Instruments struct {
	Captures      Counter // completed CPU capture windows
	HeapCaptures  Counter // completed heap snapshots
	Evictions     Counter // ring evictions under retention pressure
	DecodeErrors  Counter // captures whose pprof payload failed to decode
	CaptureErrors Counter // windows that could not start (profiler busy)
}

func add(c Counter, d int64) {
	if c != nil {
		c.Add(d)
	}
}

// Config tunes a Profiler. The zero value is usable: 10s windows, a 10s
// gap between windows (50% duty cycle), a ring of 8 captures, a heap
// snapshot every 4th window.
type Config struct {
	// Window is the length of each CPU capture.
	Window time.Duration
	// Interval is the idle gap between capture windows. Zero means
	// "equal to Window"; negative means back-to-back windows.
	Interval time.Duration
	// Retain bounds the capture ring; the oldest capture is evicted.
	Retain int
	// HeapEvery takes a heap snapshot after every Nth CPU window.
	// Zero means every 4th; negative disables heap snapshots.
	HeapEvery int
	// TopN bounds the per-report function table (default 20).
	TopN int
	// Inst receives self-metrics. Nil disables them.
	Inst *Instruments
	// OnReport, when non-nil, is called with each window's analyzed
	// report from the capture goroutine (never concurrently). The
	// gateway uses it to export per-tenant CPU seconds.
	OnReport func(*Report)
	// Logf, when non-nil, receives capture-loop diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Interval == 0 {
		c.Interval = c.Window
	}
	if c.Interval < 0 {
		c.Interval = 0
	}
	if c.Retain <= 0 {
		c.Retain = 8
	}
	if c.HeapEvery == 0 {
		c.HeapEvery = 4
	}
	if c.TopN <= 0 {
		c.TopN = 20
	}
	return c
}

// Capture is one ring entry: a raw (gzipped pprof) payload plus, for CPU
// captures, its analyzed report.
type Capture struct {
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"` // "cpu" or "heap"
	Raw    []byte    `json:"-"`
	Report *Report   `json:"report,omitempty"`
}

// Profiler owns the background capture loop and the bounded ring.
type Profiler struct {
	cfg Config

	mu   sync.Mutex
	ring []Capture

	started   atomic.Bool
	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a Profiler; call Start to begin capturing.
func New(cfg Config) *Profiler {
	return &Profiler{
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// FromEnv builds a Profiler from the POCHOIR_PROFILE environment variable:
// unset, "0", or "false" returns nil (profiling off); a duration value
// ("250ms") sets the capture window; any other non-empty value enables the
// defaults. Mirrors the flight recorder's env gating.
func FromEnv() *Profiler {
	v := os.Getenv("POCHOIR_PROFILE")
	switch v {
	case "", "0", "false", "off":
		return nil
	}
	var cfg Config
	if d, err := time.ParseDuration(v); err == nil && d > 0 {
		cfg.Window = d
	}
	return New(cfg)
}

// SetInstruments installs the self-metric hooks, replacing any configured
// at construction. Like SetOnReport it must be called before Start. The
// gateway uses it to point a handed-in profiler at its shared registry.
func (p *Profiler) SetInstruments(i *Instruments) { p.cfg.Inst = i }

// SetOnReport installs fn as a report callback, chaining after any
// callback already configured. It must be called before Start: the
// capture goroutine reads the callback without synchronization. The
// gateway uses it to export per-tenant CPU from a profiler it received
// already constructed.
func (p *Profiler) SetOnReport(fn func(*Report)) {
	if fn == nil {
		return
	}
	if prev := p.cfg.OnReport; prev != nil {
		p.cfg.OnReport = func(r *Report) { prev(r); fn(r) }
		return
	}
	p.cfg.OnReport = fn
}

// Start launches the background capture loop. Idempotent.
func (p *Profiler) Start() {
	p.startOnce.Do(func() {
		p.started.Store(true)
		go p.loop()
	})
}

// Stop ends the capture loop and waits for an in-flight window to finish.
// Idempotent; safe to call without Start.
func (p *Profiler) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	if p.started.Load() {
		<-p.done
	}
}

func (p *Profiler) loop() {
	defer close(p.done)
	windows := 0
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		if rep, err := p.captureWindow(p.cfg.Window, p.stop); err != nil {
			add(p.cfg.Inst.instOr().CaptureErrors, 1)
			p.logf("profile: capture window failed: %v", err)
			// Back off before retrying: the usual cause is another
			// CPU profile (e.g. go test -cpuprofile) being active.
			if !sleepOrStop(p.cfg.Window, p.stop) {
				return
			}
		} else if rep != nil {
			windows++
			if p.cfg.OnReport != nil {
				p.cfg.OnReport(rep)
			}
			if p.cfg.HeapEvery > 0 && windows%p.cfg.HeapEvery == 0 {
				p.captureHeap()
			}
		}
		if !sleepOrStop(p.cfg.Interval, p.stop) {
			return
		}
	}
}

// instOr lets nil *Instruments flow through the add helper.
func (i *Instruments) instOr() *Instruments {
	if i == nil {
		return &Instruments{}
	}
	return i
}

func (p *Profiler) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	if d <= 0 {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}

// captureWindow opens one CPU capture window, arms the hot-path labels for
// its duration, then decodes and files the result. A nil stop channel
// makes the window uninterruptible.
func (p *Profiler) captureWindow(window time.Duration, stop <-chan struct{}) (*Report, error) {
	captureMu.Lock()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		captureMu.Unlock()
		return nil, err
	}
	armed.Store(true)
	sleepOrStop(window, stop)
	pprof.StopCPUProfile()
	armed.Store(false)
	captureMu.Unlock()

	inst := p.cfg.Inst.instOr()
	rep, err := Analyze(buf.Bytes(), p.cfg.TopN)
	if err != nil {
		add(inst.DecodeErrors, 1)
		return nil, fmt.Errorf("analyze captured profile: %w", err)
	}
	rep.CapturedAt = time.Now().UTC()
	rep.DurationNS = int64(window)
	add(inst.Captures, 1)
	p.push(Capture{At: rep.CapturedAt, Kind: "cpu", Raw: append([]byte(nil), buf.Bytes()...), Report: rep})
	return rep, nil
}

// CaptureNow takes one synchronous CPU capture window of the given length
// (the configured Window when d <= 0), independent of the background loop.
func (p *Profiler) CaptureNow(d time.Duration) (*Report, error) {
	if d <= 0 {
		d = p.cfg.Window
	}
	return p.captureWindow(d, nil)
}

// CaptureDuring opens a capture window for exactly the duration of f: the
// window brackets one run instead of a fixed wall-clock span. Benchlab
// uses it to attribute a single measured repetition.
func (p *Profiler) CaptureDuring(f func()) (*Report, error) {
	captureMu.Lock()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		captureMu.Unlock()
		add(p.cfg.Inst.instOr().CaptureErrors, 1)
		return nil, err
	}
	armed.Store(true)
	start := time.Now()
	f()
	elapsed := time.Since(start)
	pprof.StopCPUProfile()
	armed.Store(false)
	captureMu.Unlock()

	inst := p.cfg.Inst.instOr()
	rep, err := Analyze(buf.Bytes(), p.cfg.TopN)
	if err != nil {
		add(inst.DecodeErrors, 1)
		return nil, fmt.Errorf("analyze captured profile: %w", err)
	}
	rep.CapturedAt = time.Now().UTC()
	rep.DurationNS = elapsed.Nanoseconds()
	add(inst.Captures, 1)
	p.push(Capture{At: rep.CapturedAt, Kind: "cpu", Raw: append([]byte(nil), buf.Bytes()...), Report: rep})
	return rep, nil
}

func (p *Profiler) captureHeap() {
	hp := pprof.Lookup("heap")
	if hp == nil {
		return
	}
	var buf bytes.Buffer
	if err := hp.WriteTo(&buf, 0); err != nil {
		p.logf("profile: heap snapshot failed: %v", err)
		return
	}
	add(p.cfg.Inst.instOr().HeapCaptures, 1)
	p.push(Capture{At: time.Now().UTC(), Kind: "heap", Raw: buf.Bytes()})
}

func (p *Profiler) push(c Capture) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ring) >= p.cfg.Retain {
		n := copy(p.ring, p.ring[1:])
		p.ring = p.ring[:n]
		add(p.cfg.Inst.instOr().Evictions, 1)
	}
	p.ring = append(p.ring, c)
}

// Snapshot returns a copy of the ring, oldest first.
func (p *Profiler) Snapshot() []Capture {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Capture(nil), p.ring...)
}

// Latest returns the newest capture of the given kind, or nil.
func (p *Profiler) Latest(kind string) *Capture {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.ring) - 1; i >= 0; i-- {
		if p.ring[i].Kind == kind {
			c := p.ring[i]
			return &c
		}
	}
	return nil
}

// Aggregate merges every CPU report currently in the ring; nil when none.
func (p *Profiler) Aggregate() *Report {
	p.mu.Lock()
	var reps []*Report
	for _, c := range p.ring {
		if c.Kind == "cpu" && c.Report != nil {
			reps = append(reps, c.Report)
		}
	}
	p.mu.Unlock()
	return Merge(reps)
}

// global is the process-wide profiler hook the post-mortem path reads so
// crash bundles can embed the incident window's attribution without the
// flight package importing this one's owner.
var global atomic.Pointer[Profiler]

// SetGlobal installs (or, with nil, clears) the process-wide profiler.
func SetGlobal(p *Profiler) { global.Store(p) }

// Global returns the process-wide profiler, or nil.
func Global() *Profiler { return global.Load() }

// DoPhase runs f under the parent labels in ctx plus the given phase
// label. With a nil ctx it falls back to context.Background so callers
// outside a labeled request still attribute their phase.
func DoPhase(ctx context.Context, labels pprof.LabelSet, f func(context.Context)) {
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, labels, f)
}
